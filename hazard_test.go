package tcqr

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"tcqr/internal/matgen"
)

// TestOverflowLadderAcceptance is the headline robustness scenario: a
// 2048×512 matrix with one column scaled far past the binary16 maximum,
// factored with the §3.5 scaling safeguard disabled so the engine actually
// overflows. Under the default HazardFail policy the overflow must surface
// as a typed error; under HazardFallback the ladder must recover (re-enable
// scaling), report what it did, and land at fp16-level accuracy.
func TestOverflowLadderAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("2048x512 factorization")
	}
	rng := rand.New(rand.NewSource(21))
	a64 := matgen.Normal(rng, 2048, 512)
	// Scale the last column to ~1e5: far past 65504, and in the trailing
	// block of the recursion so it flows through the engine GEMMs raw.
	for i, v := range a64.Col(511) {
		a64.Col(511)[i] = v * 1e5
	}
	a := ToFloat32(a64)
	cfg := Config{DisableColumnScaling: true}

	// Fail policy: typed error, not garbage.
	_, err := Factorize(a, cfg)
	if err == nil {
		t.Fatal("unscaled overflow must produce a typed error under HazardFail")
	}
	if !errors.Is(err, ErrOverflow) && !errors.Is(err, ErrBreakdown) {
		t.Fatalf("got %v, want ErrOverflow or ErrBreakdown", err)
	}

	// Fallback policy: the ladder recovers and says so.
	cfg.OnHazard = HazardFallback
	f, err := Factorize(a, cfg)
	if err != nil {
		t.Fatalf("fallback ladder failed: %v", err)
	}
	if len(f.Hazards) == 0 {
		t.Fatal("recovery must be recorded in Hazards")
	}
	retried := false
	for _, h := range f.Hazards {
		if h.Action != "" {
			retried = true
		}
	}
	if !retried {
		t.Errorf("no retry action recorded: %v", f.Hazards)
	}
	if f.ColumnScales == nil {
		t.Error("recovery should have re-enabled column scaling")
	}
	if be := f.BackwardError(a); be > 5e-4 {
		t.Errorf("recovered backward error %g, want <= 5e-4", be)
	}
}

// TestAdversarialBattery runs every adversarial generator through both
// hazard policies and asserts the "no silent garbage" property: each run
// ends in a typed error, or in finite factors whose backward error is
// bounded — never in NaN/Inf output without a hazard report.
func TestAdversarialBattery(t *testing.T) {
	const m, n = 256, 64
	rng := rand.New(rand.NewSource(22))
	cases := []struct {
		name string
		a    *Matrix
	}{
		{"rank-deficient", matgen.RankDeficient(rng, m, n, n/2)},
		{"zero-columns", matgen.WithZeroColumns(rng, m, n, 0, n/2, n-1)},
		{"cond-1e8", matgen.WithCond(rng, m, n, 1e8, matgen.Geometric)},
		{"denormal-scaled", matgen.DenormalScaled(rng, m, n)},
		{"single-huge-entry", matgen.SingleHugeEntry(rng, m, n)},
		{"badly-scaled", matgen.BadlyScaled(rng, m, n, 7)},
		{"exponent-ladder", matgen.ExponentLadder(rng, m, n, -20, 10)},
	}
	for _, tc := range cases {
		for _, pol := range []HazardPolicy{HazardFail, HazardFallback} {
			t.Run(tc.name+"/"+pol.String(), func(t *testing.T) {
				a := ToFloat32(tc.a)
				f, err := Factorize(a, Config{Cutoff: 32, OnHazard: pol})
				if err != nil {
					if !isTypedHazard(err) {
						t.Fatalf("untyped error: %v", err)
					}
					return // a typed refusal satisfies the property
				}
				assertFinite(t, f.Q.Data, "Q")
				assertFinite(t, f.R.Data, "R")
				if be := f.BackwardError(a); !(be <= 5e-3) {
					t.Errorf("backward error %g, want <= 5e-3", be)
				}
			})
		}
	}
}

// TestAdversarialFallbackRecovers pins the ladder outcomes the battery only
// bounds: a zero column breaks every Gram-Schmidt panel (typed error under
// Fail), and the Householder rung of the ladder factors it anyway.
func TestAdversarialFallbackRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := ToFloat32(matgen.WithZeroColumns(rng, 256, 64, 10))
	_, err := Factorize(a, Config{Cutoff: 32})
	if !errors.Is(err, ErrBreakdown) {
		t.Fatalf("zero column under HazardFail: got %v, want ErrBreakdown", err)
	}
	f, err := Factorize(a, Config{Cutoff: 32, OnHazard: HazardFallback})
	if err != nil {
		t.Fatalf("ladder did not recover from a zero column: %v", err)
	}
	if len(f.Hazards) == 0 {
		t.Error("recovery must be recorded in Hazards")
	}
	assertFinite(t, f.Q.Data, "Q")
	assertFinite(t, f.R.Data, "R")
	if be := f.BackwardError(a); be > 5e-3 {
		t.Errorf("recovered backward error %g", be)
	}
}

// TestInputValidation checks the typed rejection of malformed inputs at
// every public entry point; the ladder must never mask them (a retry cannot
// fix a NaN that was already in the data).
func TestInputValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	nan := matgen.WithNaN(rng, 64, 16, 3, 5)
	inf := matgen.WithInf(rng, 64, 16, 0, 0)
	b := make([]float64, 64)

	for _, pol := range []HazardPolicy{HazardFail, HazardFallback} {
		cfg := Config{Cutoff: 8, OnHazard: pol}
		if _, err := Factorize(ToFloat32(nan), cfg); !errors.Is(err, ErrNonFinite) {
			t.Errorf("policy %v: NaN input: %v", pol, err)
		}
		if _, err := Factorize(ToFloat32(inf), cfg); !errors.Is(err, ErrNonFinite) {
			t.Errorf("policy %v: Inf input: %v", pol, err)
		}
	}
	if _, err := Factorize(nil, Config{}); !errors.Is(err, ErrEmpty) {
		t.Errorf("nil matrix: %v", err)
	}
	if _, err := Factorize(NewMatrix32(0, 4), Config{}); !errors.Is(err, ErrEmpty) {
		t.Errorf("zero rows: %v", err)
	}
	if _, err := Factorize(NewMatrix32(3, 5), Config{}); !errors.Is(err, ErrShape) {
		t.Errorf("wide matrix: %v", err)
	}

	if _, err := SolveLeastSquares(nan, b, SolveOptions{}); !errors.Is(err, ErrNonFinite) {
		t.Errorf("solve NaN matrix: %v", err)
	}
	good := matgen.Normal(rng, 64, 16)
	bNaN := make([]float64, 64)
	bNaN[7] = math.NaN()
	if _, err := SolveLeastSquares(good, bNaN, SolveOptions{}); !errors.Is(err, ErrNonFinite) {
		t.Errorf("solve NaN rhs: %v", err)
	}
	if _, err := SolveLeastSquares(good, b[:10], SolveOptions{}); !errors.Is(err, ErrShape) {
		t.Errorf("solve short rhs: %v", err)
	}

	if _, err := SolveLinearSystem(matgen.WithNaN(rng, 16, 16, 1, 1), b[:16], Config{}); !errors.Is(err, ErrNonFinite) {
		t.Errorf("linsolve NaN matrix: %v", err)
	}
	if _, err := SolveLinearSystem(good, b, Config{}); !errors.Is(err, ErrShape) {
		t.Errorf("linsolve non-square: %v", err)
	}
	if _, err := LowRank(ToFloat32(nan), 4, Config{}); !errors.Is(err, ErrNonFinite) {
		t.Errorf("lowrank NaN matrix: %v", err)
	}
	if _, err := LowRank(ToFloat32(good), 0, Config{}); !errors.Is(err, ErrShape) {
		t.Errorf("lowrank rank 0: %v", err)
	}
}

// TestSolveHazardsSurface checks that the solve path propagates both the
// factorization hazards and its own refinement events into the result.
func TestSolveHazardsSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	a := matgen.BadlyScaled(rng, 384, 96, 7)
	p := matgen.NewLLSProblem(rng, a, 0.1)

	// Broken QR config under Fallback: the solve result must carry the
	// recorded engine retry.
	sol, err := SolveLeastSquares(p.A, p.B, SolveOptions{
		QR:       Config{Cutoff: 32, DisableColumnScaling: true},
		OnHazard: HazardFallback,
	})
	if err != nil {
		t.Fatalf("fallback solve failed: %v", err)
	}
	if len(sol.Hazards) == 0 {
		t.Error("solve result should surface the factorization hazards")
	}
	assertFinite(t, sol.X, "X")

	// The same broken config under Fail is a typed error.
	_, err = SolveLeastSquares(p.A, p.B, SolveOptions{
		QR: Config{Cutoff: 32, DisableColumnScaling: true},
	})
	if err == nil {
		t.Fatal("broken QR config under HazardFail must error")
	}
	if !isTypedHazard(err) {
		t.Errorf("untyped solve error: %v", err)
	}
}

func isTypedHazard(err error) bool {
	for _, sentinel := range []error{
		ErrNonFinite, ErrEmpty, ErrShape, ErrBreakdown,
		ErrOverflow, ErrStagnation, ErrDivergence, ErrPrecisionLoss,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

func assertFinite[T float32 | float64](t *testing.T, x []T, name string) {
	t.Helper()
	for i, v := range x {
		if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("%s[%d] = %v: silent non-finite output", name, i, v)
		}
	}
}

// TestSolveWithFactorPropagatesLadderHazards covers the serving subsystem's
// cache-reuse contract: when a cached factorization was produced by ladder
// recovery, every later SolveLeastSquaresWithFactor (and the multi-RHS
// variant the request coalescer uses) must carry those recovery events in
// its own Hazards — a client that only ever sees solve responses still
// learns its factorization needed rescuing.
func TestSolveWithFactorPropagatesLadderHazards(t *testing.T) {
	const m, n = 256, 64
	rng := rand.New(rand.NewSource(23))
	a64 := matgen.Normal(rng, m, n)
	for i, v := range a64.Col(n - 1) {
		a64.Col(n - 1)[i] = v * 1e5
	}
	cfg := Config{Cutoff: 16, DisableColumnScaling: true, OnHazard: HazardFallback}
	f, err := Factorize(ToFloat32(a64), cfg)
	if err != nil {
		t.Fatalf("fallback factorization failed: %v", err)
	}
	if len(f.Hazards) == 0 {
		t.Fatal("scenario did not trigger the ladder; the propagation test needs recovery hazards")
	}

	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res, err := SolveLeastSquaresWithFactor(f, a64, b, SolveOptions{OnHazard: HazardFallback})
	if err != nil {
		t.Fatalf("solve with recovered factor: %v", err)
	}
	if len(res.Hazards) < len(f.Hazards) {
		t.Fatalf("solve carries %d hazards, factorization recorded %d; recovery events were dropped",
			len(res.Hazards), len(f.Hazards))
	}
	for i, h := range f.Hazards {
		if res.Hazards[i] != h {
			t.Fatalf("hazard %d mutated in flight: got %+v, want %+v", i, res.Hazards[i], h)
		}
	}
	if !res.Converged {
		t.Errorf("refinement did not converge (optimality %g)", res.Optimality)
	}

	rhs := NewMatrix(m, 2)
	copy(rhs.Col(0), b)
	copy(rhs.Col(1), b)
	multi, err := SolveLeastSquaresMultiWithFactor(f, a64, rhs, SolveOptions{OnHazard: HazardFallback})
	if err != nil {
		t.Fatalf("multi-RHS solve with recovered factor: %v", err)
	}
	if len(multi.Hazards) < len(f.Hazards) {
		t.Fatalf("multi-RHS solve carries %d hazards, factorization recorded %d",
			len(multi.Hazards), len(f.Hazards))
	}
}
