// Command tcqr-tables regenerates every table and figure of the paper's
// evaluation section and prints them as text, side by side with the
// paper's reference values where the paper states them.
//
// Usage:
//
//	tcqr-tables                      # everything at the quick scale
//	tcqr-tables -exp fig3,fig9       # selected experiments
//	tcqr-tables -scale default       # larger numeric experiments
//	tcqr-tables -list                # list experiment ids
//
// Accuracy experiments (fig3, fig4, fig8, fig9, table4, scaling) run the
// real algorithms on the software neural engine at the selected scale;
// performance experiments (table2, table3, fig1, fig2, fig5, fig6, fig7,
// panel) come from the calibrated V100 model. See DESIGN.md and
// EXPERIMENTS.md in the repository root.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"tcqr/internal/experiments"
)

type experiment struct {
	id, desc string
	run      func(experiments.Scale) string
}

var catalogue = []experiment{
	{"table2", "MAGMA hybrid QR with/without TensorCore vs block size", func(experiments.Scale) string { return experiments.Table2().Render() }},
	{"table3", "device GEMM/panel throughput calibration", func(experiments.Scale) string { return experiments.Table3().Render() }},
	{"fig1", "estimated tiled Householder QR throughput (Eq. 4)", func(experiments.Scale) string { return experiments.Fig1().Render() }},
	{"fig2", "estimated RGSQRF throughput vs cutoff (Eq. 7)", func(experiments.Scale) string { return experiments.Fig2().Render() }},
	{"fig3", "QR backward error vs cond(A)", func(s experiments.Scale) string { return experiments.Fig3(s).Render() }},
	{"fig4", "orthogonality vs cond(A), with re-orthogonalization", func(s experiments.Scale) string { return experiments.Fig4(s).Render() }},
	{"fig5", "RGSQRF-ReOrtho vs SGEQRF+SORMQR time", func(experiments.Scale) string { return experiments.Fig5().Render() }},
	{"fig6", "RGSQRF throughput and speedup, CAQR vs SGEQRF panel", func(experiments.Scale) string { return experiments.Fig6().Render() }},
	{"fig7", "TensorCore on/off in panel and update", func(experiments.Scale) string { return experiments.Fig7().Render() }},
	{"fig8", "LLS solver times across matrix families", func(s experiments.Scale) string { return experiments.Fig8(s).Render() }},
	{"fig9", "LLS accuracy across condition numbers", func(s experiments.Scale) string { return experiments.Fig9(s).Render() }},
	{"table4", "QR-SVD low rank approximation quality and time", func(s experiments.Scale) string { return experiments.Table4(s).Render() }},
	{"scaling", "Section 3.5 column-scaling overflow safeguard", func(s experiments.Scale) string { return experiments.Scaling(s).Render() }},
	{"panel", "Section 3.1.3 CAQR panel microbenchmark", func(experiments.Scale) string { return experiments.Panel().Render() }},
	{"formats", "FP16 vs bfloat16 engine trade-off (Section 2.1 extension)", func(s experiments.Scale) string { return experiments.Formats(s).Render() }},
	{"growth", "LU elimination growth vs QR on the neural engine (Section 3.5 extension)", func(s experiments.Scale) string { return experiments.Growth(s).Render() }},
	{"orthomethods", "loss of orthogonality across methods (Section 3.6 extension)", func(s experiments.Scale) string { return experiments.OrthoMethods(s).Render() }},
	{"bounds", "fitted loss-of-orthogonality exponents (Section 3.6 verification)", func(s experiments.Scale) string { return experiments.Bounds(s).Render() }},
	{"errorgrowth", "backward error growth with size (probabilistic rounding, Section 5 refs)", func(s experiments.Scale) string { return experiments.ErrorGrowth(s).Render() }},
	{"breakdown", "RGSQRF time itemization: panel vs engine GEMMs", func(experiments.Scale) string { return experiments.Breakdowns().Render() }},
}

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids (see -list)")
	scaleFlag := flag.String("scale", "quick", "numeric experiment scale: quick, default, full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range catalogue {
			fmt.Printf("%-8s %s\n", e.id, e.desc)
		}
		return
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.QuickScale
	case "default":
		scale = experiments.DefaultScale
	case "full":
		scale = experiments.FullScale
	default:
		fmt.Fprintf(os.Stderr, "tcqr-tables: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *expFlag != "all" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
		known := map[string]bool{}
		for _, e := range catalogue {
			known[e.id] = true
		}
		var unknown []string
		for id := range want {
			if !known[id] {
				unknown = append(unknown, id)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "tcqr-tables: unknown experiments: %s (use -list)\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
	}

	first := true
	for _, e := range catalogue {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		if !first {
			fmt.Println()
		}
		first = false
		fmt.Print(e.run(scale))
	}
}
