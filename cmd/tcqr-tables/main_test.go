package main

import (
	"strings"
	"testing"

	"tcqr/internal/experiments"
)

func TestCatalogueIDsUniqueAndRunnable(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range catalogue {
		if seen[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if e.desc == "" {
			t.Errorf("experiment %q missing description", e.id)
		}
	}
	// The cheap model-only experiments render without panicking.
	for _, id := range []string{"table2", "table3", "fig1", "fig2", "fig5", "fig6", "fig7", "panel"} {
		for _, e := range catalogue {
			if e.id != id {
				continue
			}
			if out := e.run(experiments.QuickScale); !strings.Contains(strings.ToLower(out), id[:3]) && len(out) < 40 {
				t.Errorf("experiment %q produced suspicious output", id)
			}
		}
	}
}
