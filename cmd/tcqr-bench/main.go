// Command tcqr-bench runs the repository's Go benchmarks and distills them
// into a machine-readable JSON report (BENCH_1.json by default): one record
// per benchmark with ns/op, GFLOP/s and allocs/op.
//
// Throughput convention: the GEMM-family benchmarks call b.SetBytes(2·m·n·k),
// i.e. they report *flops* through the bytes channel, so the "MB/s" column of
// `go test -bench` is really Mflop/s and GFLOP/s = MB/s ÷ 1000. Benchmarks
// that do not call SetBytes get a zero GFLOP/s field.
//
// Usage:
//
//	go run ./cmd/tcqr-bench [-out BENCH_1.json] [-bench regex] [-count 1]
//	                        [-procs N[,N...]] [-benchtime t] [pkg ...]
//
// -procs runs every benchmark at each listed GOMAXPROCS (go test -cpu, so
// "-procs 1,4,8" sweeps the multicore scaling curve in one subprocess);
// without it benchmarks run at the inherited GOMAXPROCS. Either way every
// result records the proc count it actually ran at (the -N suffix go test
// appends to benchmark names, which is runtime.GOMAXPROCS(0) inside the
// benchmark binary; the suffix is omitted exactly at 1 proc).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	GFlops      float64 `json:"gflops,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Procs is the GOMAXPROCS the benchmark actually ran at, from the "-N"
	// suffix of its result line (go test omits the suffix at 1 proc).
	Procs int `json:"procs"`
}

// Report is the whole JSON document.
type Report struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	CPU         string `json:"cpu,omitempty"`
	Notes       string `json:"notes,omitempty"`
	// Warning flags a sweep whose numbers are suspect — currently set when
	// -procs asks for more procs than the machine has cores, which measures
	// scheduler thrash, not scaling.
	Warning  string   `json:"warning,omitempty"`
	Bench    string   `json:"bench_regex"`
	Packages []string `json:"packages"`
	Results  []Result `json:"results"`
}

// defaultPackages covers the kernel layer, the simulated engines, and the
// paper-figure benchmarks at the module root.
var defaultPackages = []string{"./internal/blas", "./internal/tcsim", "."}

func main() {
	out := flag.String("out", "BENCH_1.json", "output JSON path")
	bench := flag.String("bench", "Gemm|Trsm|Engines|TrackSpecials|Fig1|Fig2", "benchmark regex passed to go test")
	count := flag.Int("count", 1, "-count passed to go test")
	procs := flag.String("procs", "", "comma-separated GOMAXPROCS sweep (go test -cpu, e.g. 1,4,8; empty = inherit)")
	benchtime := flag.String("benchtime", "", "-benchtime passed to go test (empty = go test default)")
	notes := flag.String("notes", "", "free-text caveats recorded in the report header")
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = defaultPackages
	}
	procList, err := parseProcsList(*procs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcqr-bench: -procs: %v\n", err)
		os.Exit(2)
	}

	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Notes:       *notes,
		Warning:     procsWarning(procList, runtime.NumCPU()),
		Bench:       *bench,
		Packages:    pkgs,
	}
	if rep.Warning != "" {
		fmt.Fprintf(os.Stderr, "tcqr-bench: warning: %s\n", rep.Warning)
	}
	for _, pkg := range pkgs {
		results, cpu, err := runPackage(pkg, *bench, *count, procList, *benchtime)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcqr-bench: %s: %v\n", pkg, err)
			os.Exit(1)
		}
		if cpu != "" {
			rep.CPU = cpu
		}
		rep.Results = append(rep.Results, results...)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcqr-bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "tcqr-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d results to %s\n", len(rep.Results), *out)
}

// parseProcsList decodes the -procs flag: a comma-separated list of positive
// proc counts ("1,4,8"), empty meaning "inherit GOMAXPROCS". The list is
// forwarded verbatim to go test -cpu, which runs every benchmark once per
// entry.
func parseProcsList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	list := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("%q is not a positive proc count", p)
		}
		list = append(list, n)
	}
	return list, nil
}

// procsWarning renders the oversubscription caveat recorded in the report
// header: a -procs entry beyond the physical core count makes the sweep
// measure contention rather than scaling, and readers of BENCH_*.json have
// no other way to tell.
func procsWarning(procs []int, numCPU int) string {
	max := 0
	for _, p := range procs {
		if p > max {
			max = p
		}
	}
	if max <= numCPU {
		return ""
	}
	return fmt.Sprintf("-procs sweep reaches %d but the machine has only %d CPUs; "+
		"results above %d procs measure oversubscription, not scaling", max, numCPU, numCPU)
}

// runPackage shells out to `go test -bench` for one package and parses its
// output. The benchmark binary prints context lines (goos, cpu, pkg) that we
// mine for the report header.
func runPackage(pkg, bench string, count int, procs []int, benchtime string) ([]Result, string, error) {
	args := []string{"test", "-run", "^$",
		"-bench", bench, "-benchmem", "-count", strconv.Itoa(count)}
	if len(procs) > 0 {
		cpu := make([]string, len(procs))
		for i, p := range procs {
			cpu[i] = strconv.Itoa(p)
		}
		args = append(args, "-cpu", strings.Join(cpu, ","))
	}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	cmd := exec.Command("go", append(args, pkg)...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, "", fmt.Errorf("go test: %w", err)
	}
	var results []Result
	// When a result line has no "-N" suffix the benchmark binary ran at
	// GOMAXPROCS 1. Under a -cpu sweep that is exactly the 1-proc entry of
	// the list; without a sweep it means the inherited GOMAXPROCS was 1.
	defaultProcs := 1
	if len(procs) == 0 {
		defaultProcs = runtime.GOMAXPROCS(0)
	}
	var cpu string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = rest
			continue
		}
		if r, ok := parseBenchLine(line, defaultProcs); ok {
			r.Package = pkg
			results = append(results, r)
		}
	}
	return results, cpu, sc.Err()
}

// parseBenchLine decodes one `go test -bench` result line, e.g.
//
//	BenchmarkGemmNN256-4  1455  806146 ns/op  41623.26 MB/s  0 B/op  0 allocs/op
//
// returning ok == false for non-benchmark lines. The "-N" GOMAXPROCS suffix
// becomes the result's Procs field and is stripped from the name. go test
// omits the suffix when the benchmark binary runs at GOMAXPROCS 1, and
// sub-benchmark names like Engines/TC-GEMM legitimately contain dashes, so
// a missing suffix means the caller-supplied defaultProcs — the proc count
// the subprocess actually ran at, not a hardcoded guess.
func parseBenchLine(line string, defaultProcs int) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	var r Result
	r.Name = f[0]
	r.Procs = defaultProcs
	if i := strings.LastIndex(r.Name, "-"); i >= 0 && isDigits(r.Name[i+1:]) {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = p
		}
		r.Name = r.Name[:i]
	}
	iter, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iter
	// The remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			// SetBytes carries flops, so MB/s is Mflop/s.
			r.GFlops = v / 1000
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	return r, true
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}
