package main

import (
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkGemmNN256-4  \t1455\t  806146 ns/op\t41623.26 MB/s\t       0 B/op\t       0 allocs/op", 16)
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.Name != "BenchmarkGemmNN256" || r.Iterations != 1455 {
		t.Errorf("name/iterations = %q/%d", r.Name, r.Iterations)
	}
	if r.Procs != 4 {
		t.Errorf("procs = %d, want 4 (the -4 suffix beats the default)", r.Procs)
	}
	if r.NsPerOp != 806146 {
		t.Errorf("ns/op = %v", r.NsPerOp)
	}
	if r.GFlops < 41.6 || r.GFlops > 41.7 {
		t.Errorf("gflops = %v, want ~41.62", r.GFlops)
	}
	if r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Errorf("mem fields = %d/%d", r.BytesPerOp, r.AllocsPerOp)
	}
}

func TestParseBenchLineNoSuffix(t *testing.T) {
	// The -N suffix is omitted when the benchmark binary ran at GOMAXPROCS 1;
	// the parser must fall back to the caller's default (what the subprocess
	// actually ran at), not a hardcoded constant. Dashed sub-benchmark names
	// keep their dashes.
	r, ok := parseBenchLine("BenchmarkEngines/TC-GEMM \t 100 \t 18281466 ns/op", 1)
	if !ok || r.Name != "BenchmarkEngines/TC-GEMM" {
		t.Fatalf("got ok=%v name=%q", ok, r.Name)
	}
	if r.Procs != 1 {
		t.Errorf("procs = %d, want the default 1 when the suffix is absent", r.Procs)
	}
	r, ok = parseBenchLine("BenchmarkGemmNN256 \t 1455 \t 806146 ns/op \t 41623.26 MB/s", 8)
	if !ok || r.Name != "BenchmarkGemmNN256" {
		t.Fatalf("got ok=%v name=%q", ok, r.Name)
	}
	if r.Procs != 8 {
		t.Errorf("procs = %d, want the default 8 when the suffix is absent", r.Procs)
	}
}

func TestParseBenchLineNoThroughput(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkFig1_HouseholderEstimate-4   12  95000000 ns/op  128 B/op  3 allocs/op", 1)
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.GFlops != 0 || r.AllocsPerOp != 3 {
		t.Errorf("gflops=%v allocs=%d", r.GFlops, r.AllocsPerOp)
	}
}

func TestParseProcsList(t *testing.T) {
	if l, err := parseProcsList(""); err != nil || l != nil {
		t.Errorf("empty list: got %v, %v", l, err)
	}
	l, err := parseProcsList("1,4,8")
	if err != nil || len(l) != 3 || l[0] != 1 || l[1] != 4 || l[2] != 8 {
		t.Errorf("1,4,8: got %v, %v", l, err)
	}
	if l, err := parseProcsList(" 2 , 16 "); err != nil || len(l) != 2 || l[0] != 2 || l[1] != 16 {
		t.Errorf("spaced list: got %v, %v", l, err)
	}
	for _, bad := range []string{"0", "-1", "1,,4", "1,x", ","} {
		if _, err := parseProcsList(bad); err == nil {
			t.Errorf("list %q should be rejected", bad)
		}
	}
}

func TestParseBenchLineSweepSuffixes(t *testing.T) {
	// A -cpu 1,4,8 sweep emits one line per proc count: suffix-less at 1
	// proc, -4/-8 suffixes otherwise. The caller passes defaultProcs=1 for
	// sweeps, so all three lines land on the right Procs.
	cases := []struct {
		line  string
		procs int
	}{
		{"BenchmarkServeCoalescedSolveBinary/clients=64 \t 100 \t 2100000 ns/op", 1},
		{"BenchmarkServeCoalescedSolveBinary/clients=64-4 \t 100 \t 900000 ns/op", 4},
		{"BenchmarkServeCoalescedSolveBinary/clients=64-8 \t 100 \t 600000 ns/op", 8},
	}
	for _, c := range cases {
		r, ok := parseBenchLine(c.line, 1)
		if !ok || r.Name != "BenchmarkServeCoalescedSolveBinary/clients=64" {
			t.Fatalf("line %q: ok=%v name=%q", c.line, ok, r.Name)
		}
		if r.Procs != c.procs {
			t.Errorf("line %q: procs = %d, want %d", c.line, r.Procs, c.procs)
		}
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: tcqr/internal/blas",
		"PASS",
		"ok  \ttcqr/internal/blas\t3.9s",
		"BenchmarkBroken-4 notanumber ns/op",
	} {
		if _, ok := parseBenchLine(line, 1); ok {
			t.Errorf("line %q should be rejected", line)
		}
	}
}

func TestProcsWarning(t *testing.T) {
	cases := []struct {
		procs []int
		cpus  int
		want  bool
	}{
		{nil, 8, false},
		{[]int{1, 4, 8}, 8, false},
		{[]int{1, 4, 16}, 8, true},
		{[]int{32}, 4, true},
		{[]int{4}, 4, false},
	}
	for _, c := range cases {
		got := procsWarning(c.procs, c.cpus)
		if (got != "") != c.want {
			t.Errorf("procsWarning(%v, %d) = %q, want warning=%v", c.procs, c.cpus, got, c.want)
		}
	}
	// The warning must name both the requested and available counts so a
	// reader of BENCH_*.json can judge the sweep without the machine at hand.
	w := procsWarning([]int{16}, 8)
	for _, sub := range []string{"16", "8"} {
		if !strings.Contains(w, sub) {
			t.Errorf("warning %q does not mention %s", w, sub)
		}
	}
}
