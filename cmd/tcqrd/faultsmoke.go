package main

import (
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

// faultSmokeSpec is the schedule scripts/serve_smoke.sh arms the daemon with
// for the fault pass. The shape is chosen so the client below can walk the
// daemon through every failure-policy state deterministically:
//
//   - serve.cache.factorize=error@every=2 fails every second cold
//     factorization. The first factorize (hit 1) passes and warms the cache;
//     the second (hit 2) is injected and — with -retry-attempts 1 disabling
//     retry and -degrade-threshold 1 — surfaces as a 500 that flips the
//     daemon into degraded mode.
//   - -degrade-cooldown is long (5m) so the daemon stays degraded for the
//     rest of the pass: cold factorizations must get 503 + Retry-After while
//     the warm entry keeps serving.
const faultSmokeSpec = "seed=7;serve.cache.factorize=error@every=2"

// runFaultSmoke drives a daemon armed with faultSmokeSpec through the
// failure contract: an injected 500, the flip into degraded cache-only mode,
// Retry-After on degraded 503s, cache hits still served, healthz honest
// about the state, and the fault/degraded metric families non-zero.
func runFaultSmoke(base string) int {
	s := &smoker{base: base, client: &http.Client{Timeout: 60 * time.Second}}

	// Hit 1 of serve.cache.factorize passes: the cache gets one warm entry.
	m, n := 96, 24
	matA := smokeMatrix(m, n, 1)
	var fr struct {
		Key    string `json:"key"`
		Cached bool   `json:"cached"`
	}
	code, err := s.post("/v1/factorize", map[string]any{"matrix": matA}, &fr)
	s.check(err == nil && code == 200 && fr.Key != "",
		"warm-up factorize succeeds (fault hit 1 passes)",
		"code=%d key=%q err=%v", code, fr.Key, err)
	keyA := fr.Key

	// Hit 2 fires. Retry is disabled (-retry-attempts 1), so the injected
	// failure surfaces as a typed 500 — and trips the degrade threshold of 1.
	matB := smokeMatrix(m, n, 2) // different content, so it is a cold miss
	var er struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	code, err = s.post("/v1/factorize", map[string]any{"matrix": matB}, &er)
	s.check(err == nil && code == 500 && er.Error.Code == "internal",
		"injected factorize fault surfaces as 500 internal",
		"code=%d error=%+v err=%v", code, er.Error, err)

	// Degraded mode: cold factorizations are rejected with 503, code
	// "degraded", and a Retry-After header holding a positive integer.
	matC := smokeMatrix(m, n, 4)
	code, hdr, err := s.postHdr("/v1/factorize", map[string]any{"matrix": matC}, &er)
	s.check(err == nil && code == 503 && er.Error.Code == "degraded",
		"cold factorize while degraded returns 503 degraded",
		"code=%d error=%+v err=%v", code, er.Error, err)
	ra, raErr := strconv.Atoi(strings.TrimSpace(hdr.Get("Retry-After")))
	s.check(raErr == nil && ra >= 1,
		"degraded 503 carries an integer Retry-After",
		"Retry-After=%q err=%v", hdr.Get("Retry-After"), raErr)

	// The warm entry keeps serving: solve by key and re-factorize of the
	// resident matrix both succeed while the daemon is degraded.
	xTrue := make([]float64, n)
	for j := range xTrue {
		xTrue[j] = 1 + float64(j%7)
	}
	var sr struct {
		X []float64 `json:"x"`
	}
	code, err = s.post("/v1/solve", map[string]any{"key": keyA, "b": matVec(matA, xTrue)}, &sr)
	s.check(err == nil && code == 200 && maxAbsDiff(sr.X, xTrue) < 1e-6,
		"degraded daemon still serves accurate cache-hit solves",
		"code=%d max|x-x*|=%g err=%v", code, maxAbsDiff(sr.X, xTrue), err)
	code, err = s.post("/v1/factorize", map[string]any{"matrix": matA}, &fr)
	s.check(err == nil && code == 200 && fr.Cached,
		"degraded daemon still serves factorize cache hits",
		"code=%d cached=%v err=%v", code, fr.Cached, err)

	// healthz stays 200 (load balancers must not eject a node that can serve
	// cache traffic) but reports the degraded state honestly.
	var health struct {
		Status string `json:"status"`
	}
	code, err = s.get("/healthz", &health)
	s.check(err == nil && code == 200 && health.Status == "degraded",
		"healthz reports 200 with status degraded",
		"code=%d status=%q err=%v", code, health.Status, err)

	// The fault and degradation families must account for everything above.
	text, code, err := s.getText("/metrics")
	s.check(err == nil && code == 200, "metrics returns 200", "code=%d err=%v", code, err)
	s.check(metricAbove(text, "tcqrd_fault_injected_total", 0),
		"metrics counted injected faults", "tcqrd_fault_injected_total has no non-zero sample")
	s.check(metricAbove(text, "tcqrd_degraded", 0),
		"metrics show the degraded gauge raised", "tcqrd_degraded is zero")
	s.check(metricAbove(text, "tcqrd_degraded_entered_total", 0),
		"metrics counted the degraded-mode entry", "tcqrd_degraded_entered_total is zero")
	s.check(metricAbove(text, "tcqrd_degraded_rejected_total", 0),
		"metrics counted degraded rejections", "tcqrd_degraded_rejected_total is zero")

	if s.failed {
		fmt.Fprintln(os.Stderr, "FAULT SMOKE FAILED")
		return 1
	}
	fmt.Println("FAULT SMOKE OK")
	return 0
}
