package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"tcqr/internal/cluster"
	"tcqr/internal/metrics"
	"tcqr/internal/serve"
)

// runClusterSmoke boots a 3-node tcqrd cluster inside this process (ephemeral
// loopback ports, 2-way replication, fast probes), drives keyed traffic
// through every node as coordinator, then kills one node and keeps going.
// It asserts the cluster contract end to end:
//
//   - every factorize and solve answers 200, before and after the kill —
//     zero lost responses;
//   - every key factored before the kill is still resolvable by solve-by-key
//     through every survivor (local hit, replica, or forward);
//   - each survivor's forwarding accounting balances:
//     routed == served_remote + served_local_fallback.
//
// scripts/check.sh runs it as the cluster tier's CI gate; the in-process
// twin with fault injection is TestClusterChaosSoak in internal/serve.
func runClusterSmoke() int {
	const (
		nodes    = 3
		probeDt  = 50 * time.Millisecond
		settleDt = 400 * time.Millisecond
	)

	// Listeners first: the full membership (ids and addresses) must exist
	// before any node starts probing.
	lns := make([]net.Listener, nodes)
	members := make([]cluster.Member, nodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "cluster smoke: listen: %v\n", err)
			return 1
		}
		lns[i] = ln
		members[i] = cluster.Member{ID: fmt.Sprintf("n%d", i), Addr: ln.Addr().String()}
	}

	type inst struct {
		node *cluster.Node
		srv  *serve.Server
		hs   *http.Server
	}
	insts := make([]*inst, nodes)
	bases := make([]string, nodes)
	for i := range insts {
		reg := metrics.NewRegistry()
		node, err := cluster.New(cluster.Config{
			SelfID:        members[i].ID,
			Members:       members,
			Replicas:      2,
			ProbeInterval: probeDt,
			Registry:      reg,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cluster smoke: node %d: %v\n", i, err)
			return 1
		}
		srv := serve.New(serve.Options{
			Workers:      2,
			QueueDepth:   64,
			CacheEntries: 64,
			Window:       0,
			Registry:     reg,
			Cluster:      node,
		})
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(lns[i])
		insts[i] = &inst{node: node, srv: srv, hs: hs}
		bases[i] = "http://" + members[i].Addr
	}
	defer func() {
		for _, in := range insts {
			if in.hs != nil {
				in.hs.Close()
				in.node.Close()
				in.srv.Close()
			}
		}
	}()

	s := &smoker{client: &http.Client{Timeout: 30 * time.Second}}

	// Phase A: factor 12 distinct matrices, spreading coordinators across the
	// ring so forwards, local-owner serves, and local hits all occur.
	const mrows, ncols, keysA = 48, 12, 12
	type keyed struct {
		key string
		mat map[string]any
	}
	keys := make([]keyed, 0, keysA)
	for i := 0; i < keysA; i++ {
		s.base = bases[i%nodes]
		mat := clusterMatrix(mrows, ncols, uint64(i+1))
		var fr struct {
			Key string `json:"key"`
		}
		code, err := s.post("/v1/factorize", map[string]any{"matrix": mat}, &fr)
		s.check(err == nil && code == 200 && fr.Key != "",
			fmt.Sprintf("phase A factorize %d via %s succeeds", i, insts[i%nodes].node.SelfID()),
			"code=%d key=%q err=%v", code, fr.Key, err)
		keys = append(keys, keyed{key: fr.Key, mat: mat})
	}
	// Let the replica fan-out land before reading through other nodes.
	time.Sleep(settleDt)

	solveKey := func(base string, k keyed, what string) {
		s.base = base
		xTrue := make([]float64, ncols)
		for j := range xTrue {
			xTrue[j] = float64(j%5) - 2
		}
		var sr struct {
			X []float64 `json:"x"`
		}
		code, err := s.post("/v1/solve", map[string]any{"key": k.key, "b": matVec(k.mat, xTrue)}, &sr)
		ok := err == nil && code == 200 && maxAbsDiff(sr.X, xTrue) < 1e-6
		s.check(ok, what, "code=%d err=%v diff=%g", code, err, maxAbsDiff(sr.X, xTrue))
	}
	for i, k := range keys {
		solveKey(bases[(i+1)%nodes], k,
			fmt.Sprintf("phase A solve-by-key %d via a non-computing node succeeds", i))
	}

	// Kill n2 abruptly (no drain — this models node loss, not a deploy).
	victim := insts[nodes-1]
	victim.hs.Close()
	victim.node.Close()
	victim.srv.Close()
	insts[nodes-1].hs = nil
	fmt.Printf("ok   killed node %s mid-run\n", victim.node.SelfID())
	time.Sleep(4 * probeDt) // let the survivors' probes mark it down

	// Phase B: the survivors absorb everything. New keys must still factor
	// (a forward to the dead owner falls back to local compute), and every
	// phase A key must resolve through every survivor.
	survivors := []int{0, 1}
	for i := 0; i < 6; i++ {
		coord := survivors[i%len(survivors)]
		s.base = bases[coord]
		mat := clusterMatrix(mrows, ncols, uint64(100+i))
		var fr struct {
			Key string `json:"key"`
		}
		code, err := s.post("/v1/factorize", map[string]any{"matrix": mat}, &fr)
		s.check(err == nil && code == 200 && fr.Key != "",
			fmt.Sprintf("phase B factorize %d with a node down succeeds", i),
			"code=%d key=%q err=%v", code, fr.Key, err)
		keys = append(keys, keyed{key: fr.Key, mat: mat})
	}
	time.Sleep(settleDt)
	for _, si := range survivors {
		for i, k := range keys {
			solveKey(bases[si], k,
				fmt.Sprintf("key %d resolvable via survivor %s", i, insts[si].node.SelfID()))
		}
	}

	// The accounting invariant: every routed request terminated exactly once.
	for _, si := range survivors {
		st := insts[si].node.Stats()
		s.check(st.Routed == st.ServedRemote+st.ServedLocalFallback,
			fmt.Sprintf("%s forwarding accounting balances", insts[si].node.SelfID()),
			"routed=%d served_remote=%d served_local_fallback=%d",
			st.Routed, st.ServedRemote, st.ServedLocalFallback)
		s.check(st.HandoffDropped == 0,
			fmt.Sprintf("%s dropped no handoff hints", insts[si].node.SelfID()),
			"dropped=%d", st.HandoffDropped)
		fmt.Printf("ok   %s stats: routed=%d remote=%d fallback=%d fwd_errs=%d handoff(q=%d,d=%d) replicate(ok=%d,err=%d)\n",
			insts[si].node.SelfID(), st.Routed, st.ServedRemote, st.ServedLocalFallback,
			st.ForwardErrors, st.HandoffQueued, st.HandoffDelivered, st.ReplicateOK, st.ReplicateErrors)
	}

	if s.failed {
		fmt.Fprintln(os.Stderr, "CLUSTER SMOKE FAILED")
		return 1
	}
	fmt.Println("CLUSTER SMOKE OK")
	return 0
}

// clusterMatrix builds a deterministic well-conditioned column-major wire
// matrix; distinct seeds give distinct content hashes (distinct cache keys).
func clusterMatrix(m, n int, seed uint64) map[string]any {
	state := seed*0x9E3779B97F4A7C15 + 1
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/float64(uint64(1)<<53) - 0.5
	}
	data := make([]float64, m*n)
	for i := range data {
		data[i] = next()
	}
	// Diagonal boost keeps every test matrix comfortably full-rank.
	for j := 0; j < n && j < m; j++ {
		data[j*m+j] += 2
	}
	return map[string]any{"rows": m, "cols": n, "data": data}
}
