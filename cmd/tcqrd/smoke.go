package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"tcqr/internal/wirefmt"
)

// runSmoke drives a running tcqrd through the API contract: factorize
// (cold, then cached), concurrent solves that should coalesce, a
// hazard-triggering matrix under both policies, malformed inputs, and the
// introspection endpoints. It prints one line per check and returns a
// non-zero exit code if anything deviates. scripts/serve_smoke.sh runs it
// against a freshly started daemon.
func runSmoke(base string) int {
	s := &smoker{base: base, client: &http.Client{Timeout: 60 * time.Second}}

	// Liveness first: nothing else is meaningful if the daemon is down.
	var health struct {
		Status string `json:"status"`
	}
	code, err := s.get("/healthz", &health)
	s.check(err == nil && code == 200 && health.Status == "ok",
		"healthz returns 200 ok", "code=%d status=%q err=%v", code, health.Status, err)

	// Cold factorize, then the identical request again: the second must hit
	// the cache.
	m, n := 96, 24
	mat := smokeMatrix(m, n, 1)
	var fr struct {
		Key     string `json:"key"`
		Cached  bool   `json:"cached"`
		Hazards []any  `json:"hazards"`
	}
	code, err = s.post("/v1/factorize", map[string]any{"matrix": mat}, &fr)
	s.check(err == nil && code == 200 && fr.Key != "" && !fr.Cached && len(fr.Hazards) == 0,
		"cold factorize succeeds with a key and no hazards",
		"code=%d key=%q cached=%v hazards=%d err=%v", code, fr.Key, fr.Cached, len(fr.Hazards), err)
	key := fr.Key
	code, err = s.post("/v1/factorize", map[string]any{"matrix": mat}, &fr)
	s.check(err == nil && code == 200 && fr.Cached,
		"repeat factorize is a cache hit", "code=%d cached=%v err=%v", code, fr.Cached, err)

	// Concurrent solves by key against known right-hand sides: every column
	// must come back accurate, and with the daemon's coalescing window open
	// at least some must share a multi-RHS call.
	const clients = 8
	type solveOut struct {
		code    int
		err     error
		x       []float64
		batched int
		timing  string
		wantX   []float64
	}
	outs := make([]solveOut, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			xTrue := make([]float64, n)
			for j := range xTrue {
				xTrue[j] = float64(i + j%5)
			}
			b := matVec(mat, xTrue)
			var sr struct {
				X       []float64 `json:"x"`
				Batched int       `json:"batched"`
			}
			code, hdr, err := s.postHdr("/v1/solve", map[string]any{"key": key, "b": b}, &sr)
			outs[i] = solveOut{code: code, err: err, x: sr.X, batched: sr.Batched,
				timing: hdr.Get("Server-Timing"), wantX: xTrue}
		}(i)
	}
	wg.Wait()
	maxBatched := 0
	for i, o := range outs {
		s.check(o.err == nil && o.code == 200, fmt.Sprintf("concurrent solve %d succeeds", i),
			"code=%d err=%v", o.code, o.err)
		if o.code == 200 {
			s.check(maxAbsDiff(o.x, o.wantX) < 1e-6, fmt.Sprintf("solve %d is accurate", i),
				"max |x-x*| = %g", maxAbsDiff(o.x, o.wantX))
			s.check(o.timing != "", fmt.Sprintf("solve %d carries Server-Timing", i), "header empty")
		}
		if o.batched > maxBatched {
			maxBatched = o.batched
		}
	}
	s.check(maxBatched >= 2, "concurrent same-key solves coalesced",
		"largest batch was %d; expected >= 2 (is the daemon running with -window 0?)", maxBatched)

	// Binary wire protocol (DESIGN.md §12): the same warm solve served as a
	// zero-copy frame, content negotiation across mixed encodings, and the
	// JSON error envelope on a malformed frame.
	xTrue := make([]float64, n)
	for j := range xTrue {
		xTrue[j] = float64(j%7) - 3
	}
	bRHS := matVec(mat, xTrue)
	solveMeta, _ := json.Marshal(map[string]any{"key": key})
	frame, ferr := wirefmt.AppendFrame(nil, wirefmt.JSONSection(solveMeta), wirefmt.VectorSection(bRHS))
	s.check(ferr == nil, "solve request encodes as a frame", "err=%v", ferr)
	body, ct, code, err := s.postRaw("/v1/solve", wirefmt.ContentType, "", frame)
	s.check(err == nil && code == 200 && ct == wirefmt.ContentType,
		"binary solve answers 200 with a frame", "code=%d content-type=%q err=%v", code, ct, err)
	var xBin []float64
	secs, derr := wirefmt.Decode(body, nil)
	if derr == nil {
		if v := wirefmt.FindSection(secs, wirefmt.TagVector); v != nil {
			xBin = v.Float64s()
		}
	}
	s.check(derr == nil && maxAbsDiff(xBin, xTrue) < 1e-6,
		"binary solve is accurate", "decode err=%v max |x-x*| = %g", derr, maxAbsDiff(xBin, xTrue))

	// Mixed encodings: a JSON request may ask for a frame response via
	// Accept, and a binary request may ask for JSON back.
	jbody, _ := json.Marshal(map[string]any{"key": key, "b": bRHS})
	_, ct, code, err = s.postRaw("/v1/solve", "application/json", wirefmt.ContentType, jbody)
	s.check(err == nil && code == 200 && ct == wirefmt.ContentType,
		"JSON request negotiates a frame response via Accept",
		"code=%d content-type=%q err=%v", code, ct, err)
	body, ct, code, err = s.postRaw("/v1/solve", wirefmt.ContentType, "application/json", frame)
	var jsr struct {
		X []float64 `json:"x"`
	}
	jerr := json.Unmarshal(body, &jsr)
	s.check(err == nil && code == 200 && ct == "application/json" &&
		jerr == nil && maxAbsDiff(jsr.X, xTrue) < 1e-6,
		"binary request negotiates a JSON response via Accept",
		"code=%d content-type=%q err=%v unmarshal=%v", code, ct, err, jerr)

	// A malformed frame must come back as the usual typed JSON envelope,
	// never as a frame and never as a 500.
	body, ct, code, err = s.postRaw("/v1/solve", wirefmt.ContentType, "", []byte("TCQFgarbage"))
	var benv struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	jerr = json.Unmarshal(body, &benv)
	s.check(err == nil && code == 400 && strings.HasPrefix(ct, "application/json") &&
		jerr == nil && benv.Error.Code == "bad_input",
		"malformed frame returns 400 bad_input as JSON",
		"code=%d content-type=%q error.code=%q err=%v unmarshal=%v", code, ct, benv.Error.Code, err, jerr)

	// Hazard-triggering matrix: one column far past the binary16 maximum,
	// column scaling disabled. Fail policy must refuse with a typed
	// envelope; fallback must recover and say what it did.
	hazMat := smokeMatrix(m, n, 3e5)
	hazCfg := map[string]any{"cutoff": 8, "disable_column_scaling": true}
	var er struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	code, err = s.post("/v1/factorize", map[string]any{"matrix": hazMat, "config": hazCfg}, &er)
	s.check(err == nil && code == 422 && er.Error.Code == "numerical_hazard",
		"overflow under fail policy returns 422 numerical_hazard",
		"code=%d error.code=%q err=%v", code, er.Error.Code, err)
	hazCfg["on_hazard"] = "fallback"
	var hr struct {
		Hazards []struct {
			Kind   string `json:"kind"`
			Action string `json:"action"`
		} `json:"hazards"`
	}
	code, err = s.post("/v1/factorize", map[string]any{"matrix": hazMat, "config": hazCfg}, &hr)
	recovered := false
	for _, h := range hr.Hazards {
		if h.Action != "" {
			recovered = true
		}
	}
	s.check(err == nil && code == 200 && recovered,
		"overflow under fallback recovers and reports the ladder",
		"code=%d hazards=%+v err=%v", code, hr.Hazards, err)

	// Malformed inputs must be typed 4xx refusals, never 200 or 500.
	code, err = s.post("/v1/solve", map[string]any{"key": key, "b": []float64{1, 2, 3}}, &er)
	s.check(err == nil && code == 400 && er.Error.Code == "bad_input",
		"short rhs returns 400 bad_input", "code=%d error.code=%q err=%v", code, er.Error.Code, err)
	code, err = s.post("/v1/solve", map[string]any{"key": "m0-bogus", "b": make([]float64, m)}, &er)
	s.check(err == nil && code == 404 && er.Error.Code == "unknown_key",
		"unknown key returns 404 unknown_key", "code=%d error.code=%q err=%v", code, er.Error.Code, err)
	code, err = s.post("/v1/factorize", map[string]any{"matrix": map[string]any{
		"rows": 2, "cols": 4, "data": []float64{1, 2, 3, 4, 5, 6, 7, 8}}}, &er)
	s.check(err == nil && code == 400 && er.Error.Code == "bad_input",
		"wide matrix returns 400 bad_input", "code=%d error.code=%q err=%v", code, er.Error.Code, err)

	// Chunked upload (DESIGN.md §13): stream a tall-skinny matrix as three
	// binary row-block frames, commit, and verify the key is exactly what a
	// one-shot upload of the same matrix gets — then solve against it. The
	// shape clears the default TSQR routing threshold, so this also drives
	// the parallel factorization pipeline end to end.
	tm, tn := 2048, 16
	tall := smokeMatrix(tm, tn, 1)
	tallData := tall["data"].([]float64)
	var br struct {
		Session string `json:"session"`
		TTLMS   int64  `json:"ttl_ms"`
	}
	code, err = s.post("/v1/factorize/stream/begin", map[string]any{"cols": tn}, &br)
	s.check(err == nil && code == 200 && br.Session != "" && br.TTLMS > 0,
		"stream begin mints a session", "code=%d session=%q ttl_ms=%d err=%v", code, br.Session, br.TTLMS, err)
	row := 0
	for ci, h := range []int{1024, 512, 512} {
		blk := make([]float64, 0, h*tn)
		for j := 0; j < tn; j++ {
			blk = append(blk, tallData[j*tm+row:j*tm+row+h]...)
		}
		row += h
		meta, _ := json.Marshal(map[string]any{"session": br.Session})
		chunk, cerr := wirefmt.AppendFrame(nil, wirefmt.JSONSection(meta), wirefmt.MatrixSection(h, tn, blk))
		s.check(cerr == nil, fmt.Sprintf("chunk %d encodes as a frame", ci), "err=%v", cerr)
		abody, _, acode, aerr := s.postRaw("/v1/factorize/stream/append", wirefmt.ContentType, "application/json", chunk)
		var ar struct {
			Rows   int `json:"rows"`
			Blocks int `json:"blocks"`
		}
		uerr := json.Unmarshal(abody, &ar)
		s.check(aerr == nil && acode == 200 && uerr == nil && ar.Rows == row && ar.Blocks == ci+1,
			fmt.Sprintf("binary append %d accepted", ci),
			"code=%d rows=%d blocks=%d err=%v unmarshal=%v", acode, ar.Rows, ar.Blocks, aerr, uerr)
	}
	var cr struct {
		Key    string `json:"key"`
		Rows   int    `json:"rows"`
		Cached bool   `json:"cached"`
	}
	code, err = s.post("/v1/factorize/stream/commit", map[string]any{"session": br.Session}, &cr)
	s.check(err == nil && code == 200 && cr.Key != "" && cr.Rows == tm && !cr.Cached,
		"stream commit factorizes the assembled matrix",
		"code=%d key=%q rows=%d cached=%v err=%v", code, cr.Key, cr.Rows, cr.Cached, err)
	var tfr struct {
		Key    string `json:"key"`
		Cached bool   `json:"cached"`
	}
	code, err = s.post("/v1/factorize", map[string]any{"matrix": tall}, &tfr)
	s.check(err == nil && code == 200 && tfr.Cached && tfr.Key == cr.Key,
		"one-shot upload of the streamed matrix is a cache hit on the same key",
		"code=%d key=%q streamed=%q cached=%v err=%v", code, tfr.Key, cr.Key, tfr.Cached, err)
	xTall := make([]float64, tn)
	for j := range xTall {
		xTall[j] = float64(j%3) + 1
	}
	var tsr struct {
		X []float64 `json:"x"`
	}
	code, err = s.post("/v1/solve", map[string]any{"key": cr.Key, "b": matVec(tall, xTall)}, &tsr)
	s.check(err == nil && code == 200 && maxAbsDiff(tsr.X, xTall) < 1e-5,
		"solve against the streamed factorization is accurate",
		"code=%d max |x-x*| = %g err=%v", code, maxAbsDiff(tsr.X, xTall), err)
	// A committed session is consumed: the id must no longer resolve.
	code, err = s.post("/v1/factorize/stream/commit", map[string]any{"session": br.Session}, &er)
	s.check(err == nil && code == 404 && er.Error.Code == "unknown_stream",
		"committed session is consumed", "code=%d error.code=%q err=%v", code, er.Error.Code, err)

	// Introspection: /statz must reflect the traffic above.
	var statz struct {
		Cache struct {
			Hits int64 `json:"hits"`
		} `json:"cache"`
		Coalescer struct {
			MultiSolveCalls int64 `json:"multi_solve_calls"`
		} `json:"coalescer"`
		Timing map[string]struct {
			Count int64 `json:"count"`
		} `json:"timing"`
	}
	code, err = s.get("/statz", &statz)
	s.check(err == nil && code == 200 && statz.Cache.Hits >= 1 &&
		statz.Coalescer.MultiSolveCalls >= 1 && statz.Timing["solve"].Count >= 1,
		"statz reflects cache hits, coalesced calls and stage timings",
		"code=%d cache.hits=%d multi=%d timing[solve].count=%d err=%v",
		code, statz.Cache.Hits, statz.Coalescer.MultiSolveCalls, statz.Timing["solve"].Count, err)

	// Engine selection end-to-end: a factorize that names the error-corrected
	// engine must run its GEMMs on the tensor-core simulant under the tc-ec
	// label — the scrape below asserts that exact series moved, proving the
	// hot path stayed on the simulated device rather than falling back to
	// fp32.
	// Cutoff 8 (< the 24 columns) forces recursion above the panel, so the
	// inter-panel projection GEMMs actually reach the engine.
	ecMat := smokeMatrix(96, 24, 1)
	var ecr, fpr struct {
		Key     string `json:"key"`
		Hazards []any  `json:"hazards"`
	}
	code, err = s.post("/v1/factorize",
		map[string]any{"matrix": ecMat, "config": map[string]any{"engine": "tc-ec", "cutoff": 8}}, &ecr)
	s.check(err == nil && code == 200 && ecr.Key != "" && len(ecr.Hazards) == 0,
		"tc-ec factorize succeeds with no hazards",
		"code=%d key=%q hazards=%d err=%v", code, ecr.Key, len(ecr.Hazards), err)
	code, err = s.post("/v1/factorize",
		map[string]any{"matrix": ecMat, "config": map[string]any{"engine": "fp16", "cutoff": 8}}, &fpr)
	s.check(err == nil && code == 200 && fpr.Key != "" && ecr.Key != fpr.Key,
		"tc-ec factorize keys apart from the fp16 one at equal config",
		"engine missing from the cache-key fingerprint: tc-ec=%q fp16=%q err=%v", ecr.Key, fpr.Key, err)

	// /metrics must serve Prometheus text reflecting the same traffic:
	// serve, hazard, and engine families present, with non-zero request and
	// cache-hit counters.
	text, code, err := s.getText("/metrics")
	s.check(err == nil && code == 200, "metrics returns 200", "code=%d err=%v", code, err)
	for _, family := range []string{
		"tcqrd_requests_total",
		"tcqrd_responses_total",
		"tcqrd_cache_hits_total",
		"tcqrd_stage_duration_seconds_bucket",
		"tcqrd_coalescer_batch_size_bucket",
		"tcqrd_hazards_total",
		"tcqrd_engine_gemm_calls_total",
		"tcqrd_wire_requests_total",
		"tcqrd_wire_responses_total",
		"tcqrd_tsqr_factorize_total",
		"tcqrd_tsqr_stage_seconds_bucket",
		"tcqrd_tsqr_blocks_bucket",
		"tcqrd_stream_sessions",
		"tcqrd_stream_begun_total",
		"tcqrd_stream_committed_total",
		"tcqrd_stream_appends_total",
	} {
		s.check(strings.Contains(text, family),
			fmt.Sprintf("metrics exposes %s", family), "family missing from exposition")
	}
	s.check(metricAbove(text, "tcqrd_requests_total", 0),
		"metrics counted requests", "every tcqrd_requests_total series is zero")
	s.check(metricAbove(text, "tcqrd_cache_hits_total", 0),
		"metrics counted cache hits", "tcqrd_cache_hits_total is zero")
	s.check(metricAbove(text, "tcqrd_hazards_total", 0),
		"metrics counted hazards", "every tcqrd_hazards_total series is zero")
	s.check(metricAbove(text, "tcqrd_engine_gemm_calls_total", 0),
		"metrics counted engine GEMM calls", "every tcqrd_engine_gemm_calls_total series is zero")
	s.check(metricLabelAbove(text, "tcqrd_engine_gemm_calls_total", `engine="tc-ec"`, 0),
		"metrics counted tc-ec engine GEMM calls",
		`no non-zero engine="tc-ec" sample — the tc-ec factorize left the simulant`)
	s.check(metricLabelAbove(text, "tcqrd_wire_requests_total", `encoding="binary"`, 0),
		"metrics counted binary-encoded requests", "no non-zero encoding=binary sample")
	s.check(metricLabelAbove(text, "tcqrd_wire_responses_total", `encoding="binary"`, 0),
		"metrics counted binary-encoded responses", "no non-zero encoding=binary sample")
	s.check(metricAbove(text, "tcqrd_tsqr_factorize_total", 0),
		"metrics counted TSQR factorizations", "tcqrd_tsqr_factorize_total is zero — routing never fired")
	s.check(metricLabelAbove(text, "tcqrd_tsqr_stage_seconds_count", `stage="block_factor"`, 0),
		"metrics timed TSQR block factorization", "no block_factor stage observation")
	s.check(metricAbove(text, "tcqrd_stream_begun_total", 0) &&
		metricAbove(text, "tcqrd_stream_committed_total", 0) &&
		metricAbove(text, "tcqrd_stream_appends_total", 2),
		"metrics counted the chunked upload lifecycle",
		"stream begun/committed/appends counters do not reflect the upload")

	if s.failed {
		fmt.Fprintln(os.Stderr, "SMOKE FAILED")
		return 1
	}
	fmt.Println("SMOKE OK")
	return 0
}

// metricAbove reports whether any sample line of the named family (exact
// name or name{labels}) has a value strictly greater than min.
func metricAbove(exposition, name string, min float64) bool {
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if strings.HasPrefix(rest, "{") {
			if i := strings.Index(rest, "} "); i >= 0 {
				rest = rest[i+1:]
			} else {
				continue
			}
		} else if !strings.HasPrefix(rest, " ") {
			continue // a longer family name sharing the prefix
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err == nil && v > min {
			return true
		}
	}
	return false
}

// metricLabelAbove reports whether any sample line of the named family whose
// label set contains labelSub has a value strictly greater than min.
func metricLabelAbove(exposition, name, labelSub string, min float64) bool {
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, name+"{") || !strings.Contains(line, labelSub) {
			continue
		}
		i := strings.Index(line, "} ")
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64)
		if err == nil && v > min {
			return true
		}
	}
	return false
}

// smoker carries the HTTP plumbing and the running pass/fail state.
type smoker struct {
	base   string
	client *http.Client
	failed bool
}

func (s *smoker) check(ok bool, what, detailFormat string, args ...any) {
	if ok {
		fmt.Printf("ok   %s\n", what)
		return
	}
	s.failed = true
	fmt.Fprintf(os.Stderr, "FAIL %s: %s\n", what, fmt.Sprintf(detailFormat, args...))
}

func (s *smoker) get(path string, out any) (int, error) {
	resp, err := s.client.Get(s.base + path)
	if err != nil {
		return 0, err
	}
	return decodeResp(resp, out)
}

// getText fetches a non-JSON endpoint (the Prometheus exposition) raw.
func (s *smoker) getText(path string) (string, int, error) {
	resp, err := s.client.Get(s.base + path)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), resp.StatusCode, err
}

// postRaw sends body verbatim under the given Content-Type (and Accept when
// non-empty) and returns the raw response body, its Content-Type, and the
// status code — the plumbing for binary-frame requests.
func (s *smoker) postRaw(path, contentType, accept string, body []byte) ([]byte, string, int, error) {
	req, err := http.NewRequest(http.MethodPost, s.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, "", 0, err
	}
	req.Header.Set("Content-Type", contentType)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, "", 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return data, resp.Header.Get("Content-Type"), resp.StatusCode, err
}

func (s *smoker) post(path string, body any, out any) (int, error) {
	code, _, err := s.postHdr(path, body, out)
	return code, err
}

func (s *smoker) postHdr(path string, body any, out any) (int, http.Header, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := s.client.Post(s.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	hdr := resp.Header
	code, err := decodeResp(resp, out)
	return code, hdr, err
}

func decodeResp(resp *http.Response, out any) (int, error) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("undecodable body %q: %w", truncate(data), err)
		}
	}
	return resp.StatusCode, nil
}

func truncate(b []byte) string {
	if len(b) > 200 {
		return string(b[:200]) + "..."
	}
	return string(b)
}

// smokeMatrix builds a deterministic column-major m×n wire matrix with
// entries in [-0.5, 0.5); the last column is multiplied by lastColScale
// (3e5 puts it far past the binary16 maximum of 65504, the §3.5 hazard).
func smokeMatrix(m, n int, lastColScale float64) map[string]any {
	seed := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11)/float64(uint64(1)<<53) - 0.5
	}
	data := make([]float64, m*n)
	for i := range data {
		data[i] = next()
	}
	for i := (n - 1) * m; i < n*m; i++ {
		data[i] *= lastColScale
	}
	return map[string]any{"rows": m, "cols": n, "data": data}
}

func maxAbsDiff(got, want []float64) float64 {
	if len(got) != len(want) {
		return float64(len(got) - len(want)) // force a visible failure
	}
	d := 0.0
	for i := range got {
		e := got[i] - want[i]
		if e < 0 {
			e = -e
		}
		if e > d {
			d = e
		}
	}
	return d
}

// matVec computes A·x for a wire matrix (column-major data).
func matVec(mat map[string]any, x []float64) []float64 {
	m := mat["rows"].(int)
	n := mat["cols"].(int)
	data := mat["data"].([]float64)
	b := make([]float64, m)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			b[i] += data[j*m+i] * x[j]
		}
	}
	return b
}
