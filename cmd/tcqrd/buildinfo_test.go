package main

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"tcqr/internal/metrics"
)

// TestRegisterBuildInfo pins the build-info gauge contract: a constant-1
// sample carrying the stamped version and the Go toolchain as labels, in the
// standard <name>_info shape scrapers join against.
func TestRegisterBuildInfo(t *testing.T) {
	reg := metrics.NewRegistry()
	registerBuildInfo(reg)

	var sb strings.Builder
	reg.WriteText(&sb)
	text := sb.String()
	if !strings.Contains(text, "# TYPE tcqrd_build_info gauge") {
		t.Errorf("exposition lacks the gauge TYPE line:\n%s", text)
	}
	want := fmt.Sprintf("tcqrd_build_info{version=%q,go_version=%q} 1", version, runtime.Version())
	if !strings.Contains(text, want) {
		t.Errorf("exposition lacks %q:\n%s", want, text)
	}
}
