package main

import (
	"runtime"

	"tcqr/internal/metrics"
)

// version identifies the build in the -version flag and the tcqrd_build_info
// metric. "dev" for plain `go build`; releases stamp it with
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/tcqrd
var version = "dev"

// registerBuildInfo publishes the conventional build-info gauge: a constant 1
// whose labels carry the interesting values, so dashboards can join any other
// tcqrd_* series against the version that produced it.
func registerBuildInfo(reg *metrics.Registry) {
	reg.GaugeVec("tcqrd_build_info",
		"Build metadata; constant 1 with version labels.",
		"version", "go_version").
		With(version, runtime.Version()).Set(1)
}
