// Command tcqrd is the factorization-serving daemon: a stdlib net/http JSON
// API over the tcqr library's "factor once, apply many times" pipeline.
//
//	POST /v1/factorize  — factor a matrix (content-hash cached, singleflight)
//	POST /v1/solve      — least squares against a cached factorization;
//	                      concurrent same-matrix solves coalesce into one
//	                      multi-RHS call
//	POST /v1/update     — append rows to (or downdate rows from) a cached
//	                      factorization incrementally, publishing a new
//	                      epoch key@N while in-flight solves keep theirs
//	POST /v1/lowrank    — truncated QR-SVD low-rank approximation
//	GET  /healthz       — liveness (503 while draining)
//	GET  /statz         — cache / coalescer / pool / timing / hazard counters
//	GET  /metrics       — Prometheus text exposition of every counter,
//	                      gauge, and latency histogram
//
// Responses carry a Server-Timing header (queue, factorize, solve, encode)
// and serialize every numerical hazard the fallback ladder detected or
// recovered from. SIGINT/SIGTERM drain gracefully: in-flight and parked
// requests complete, new ones get 503.
//
// Usage:
//
//	tcqrd [-addr :8723] [-workers N] [-queue 64] [-cache 32]
//	      [-cache-max-bytes 0] [-cache-dir path] [-spill-max-bytes 0]
//	      [-engine fp16|tc-ec|bf16|fp32]
//	      [-window 2ms] [-max-batch 32] [-deadline 30s]
//	      [-drain-timeout 10s] [-addr-file path]
//	      [-log-level info] [-debug-addr host:port]
//	      [-retry-attempts 3] [-stage-timeout 0]
//	      [-degrade-threshold 5] [-degrade-cooldown 10s]
//	      [-stream-ttl 2m] [-max-stream-sessions 16]
//	      [-tsqr-min-rows 2048] [-tsqr-workers N] [-tsqr-block-rows 512]
//	      [-node-id a] [-peers a=h:p,b=h:p,...] [-replicas 2]
//	      [-probe-interval 1s] [-fault-spec schedule]
//
// -peers turns the daemon into one member of a tcqrd cluster (DESIGN.md §14):
// keys are sharded over a consistent-hash ring, keyed requests are forwarded
// to their owner nodes over the binary wire protocol, fresh factorizations
// fan out to -replicas owners, and node loss is absorbed by replica reads
// plus hinted handoff. -node-id names this node's entry in the member list;
// -probe-interval paces the peer health probes that fold degraded/down peers
// out of routing. README.md has a 3-node localhost quickstart.
//
// -cache-dir turns on the write-behind persistence tier: every published
// factorization (initial or updated epoch) spills to a checksummed file
// under the directory, and a restarted daemon rewarms its cache from the
// valid ones (torn files are quarantined) — by-key solves hit immediately
// instead of stampeding cold factorizes. -spill-max-bytes bounds the
// directory; -cache-max-bytes bounds resident memory alongside the -cache
// entry cap.
//
// -log-level selects the structured (slog) logging threshold: debug, info,
// warn, error, or off (per-request records log at info, client errors at
// warn, server errors at error). -debug-addr starts a second listener
// serving net/http/pprof under /debug/pprof/ — kept off the public API
// listener so profiling endpoints are never exposed to API clients.
//
// -retry-attempts, -stage-timeout, -degrade-threshold and -degrade-cooldown
// tune the failure policy (DESIGN.md §11): transient internal failures are
// retried with exponential backoff, and a streak of internal failures flips
// the daemon into degraded cache-only mode, where cold factorizations get
// 503 with a Retry-After header until the cooldown expires. -fault-spec
// arms the deterministic failpoint registry (internal/faultinject) with a
// seeded fault schedule — a testing facility; never arm it in production.
//
// The -smoke flag runs the binary as a client instead: it drives a running
// daemon through factorize, cache-hit, coalesced-solve, hazard, bad-input
// and metrics-scrape scenarios, exiting non-zero if any response deviates
// from the contract (scripts/serve_smoke.sh wires this into CI).
// -smoke-fault is its failure-path sibling, run against a daemon armed with
// the specific schedule scripts/serve_smoke.sh passes: it asserts injected
// 500s, the flip into degraded mode, Retry-After on degraded 503s,
// cache-only serving, and the fault/degraded metric families.
// -smoke-update drives the incremental-update path against a running daemon:
// factorize, append rows through /v1/update, solve by the bare key (newest
// epoch) and by the pinned epoch key, downdate, and check the update metric
// families; point the daemon at a -cache-dir first to smoke restart rewarm.
// -smoke-cluster needs no daemon at all: it boots three in-process nodes on
// ephemeral ports, drives keyed traffic through them, kills one mid-wave,
// and exits non-zero unless every response survives and the forwarding
// accounting invariant holds on the survivors.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"tcqr/internal/cluster"
	"tcqr/internal/faultinject"
	"tcqr/internal/metrics"
	"tcqr/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8723", "listen address (host:port; port 0 picks a free port)")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "compute worker count")
		queue        = flag.Int("queue", 64, "admission queue depth (excess requests get 429)")
		cacheEntries = flag.Int("cache", 32, "factorization cache capacity (LRU entries)")
		cacheBytes   = flag.Int64("cache-max-bytes", 0, "factorization cache byte budget on top of the entry cap (0 = entries only)")
		cacheDir     = flag.String("cache-dir", "", "persist factorizations to this directory (write-behind spill; rewarm on restart; empty disables)")
		spillBytes   = flag.Int64("spill-max-bytes", 0, "on-disk byte budget of -cache-dir, oldest files deleted first (0 = unbounded)")
		engine       = flag.String("engine", "", "default engine for requests that name none: fp16, tc-ec (error-corrected TensorCore), bf16, fp32 (empty = fp16)")
		window       = flag.Duration("window", 2*time.Millisecond, "solve coalescing window (0 disables)")
		maxBatch     = flag.Int("max-batch", 32, "max solves coalesced into one multi-RHS call")
		deadline     = flag.Duration("deadline", 30*time.Second, "default per-request deadline")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file once listening")
		logLevel     = flag.String("log-level", "info", "structured log threshold: debug, info, warn, error, off")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty disables)")
		smoke        = flag.String("smoke", "", "run as smoke-test client against this base URL and exit")
		smokeFault   = flag.String("smoke-fault", "", "run as fault-mode smoke client against this base URL and exit (expects a daemon armed by scripts/serve_smoke.sh)")
		smokeUpdate  = flag.String("smoke-update", "", "run as update/rewarm smoke client against this base URL and exit (factorize, update, epoch-pinned solves)")

		streamTTL      = flag.Duration("stream-ttl", 0, "idle deadline of a chunked-upload session before it is reaped (0 = default 2m)")
		streamSessions = flag.Int("max-stream-sessions", 0, "max concurrently open chunked-upload sessions (0 = default 16)")
		tsqrMinRows    = flag.Int("tsqr-min-rows", 0, "min rows for routing a factorization through the parallel TSQR pipeline (0 = default 2048, negative disables)")
		tsqrWorkers    = flag.Int("tsqr-workers", 0, "concurrent TSQR block factorizations (0 = GOMAXPROCS; scheduling only, never changes bits)")
		tsqrBlockRows  = flag.Int("tsqr-block-rows", 0, "TSQR canonical row-block height (0 = library default; part of the numerical identity)")

		nodeID        = flag.String("node-id", "", "this node's cluster member id (required with -peers)")
		peers         = flag.String("peers", "", "static cluster membership as id=host:port,... including this node (empty = single-node)")
		replicas      = flag.Int("replicas", 0, "replica owners per key (0 = default 2; clamped to member count)")
		probeInterval = flag.Duration("probe-interval", 0, "peer health-probe period; also paces handoff delivery (0 = default 1s)")

		showVersion  = flag.Bool("version", false, "print the build version and exit")
		smokeCluster = flag.Bool("smoke-cluster", false, "run an in-process 3-node cluster smoke (kill one node mid-traffic, assert zero lost responses) and exit")

		faultSpec     = flag.String("fault-spec", "", "arm the deterministic failpoint registry with this schedule (DESIGN.md §11 grammar; testing only)")
		retryAttempts = flag.Int("retry-attempts", 0, "max attempts for transient internal failures (0 = default 3, 1 disables retry)")
		stageTimeout  = flag.Duration("stage-timeout", 0, "per-attempt compute stage timeout (0 disables)")
		degradeAfter  = flag.Int("degrade-threshold", 0, "consecutive internal failures before degraded (cache-only) mode (0 = default 5, negative disables)")
		degradeCool   = flag.Duration("degrade-cooldown", 0, "how long degraded mode lasts once entered (0 = default 10s)")
	)
	flag.Parse()

	if *showVersion {
		fmt.Printf("tcqrd %s %s\n", version, runtime.Version())
		return
	}
	if *smoke != "" {
		os.Exit(runSmoke(*smoke))
	}
	if *smokeFault != "" {
		os.Exit(runFaultSmoke(*smokeFault))
	}
	if *smokeUpdate != "" {
		os.Exit(runUpdateSmoke(*smokeUpdate))
	}
	if *smokeCluster {
		os.Exit(runClusterSmoke())
	}

	logger, err := buildLogger(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcqrd: %v\n", err)
		os.Exit(2)
	}

	// Reject a bad -engine at startup: deferring it to serve-time would 400
	// every engine-less request for the daemon's whole lifetime.
	switch *engine {
	case "", "fp16", "tc-ec", "bf16", "fp32":
	default:
		fatal(logger, "unknown -engine", "engine", *engine, "want", "fp16, tc-ec, bf16 or fp32")
	}

	if *faultSpec != "" {
		if err := faultinject.Arm(*faultSpec); err != nil {
			fatal(logger, "bad -fault-spec", "err", err)
		}
		// Loud on purpose: an armed registry injects failures into production
		// traffic, so the fact (and the exact sites) must be in the log.
		warn(logger, "fault injection armed", "sites", faultinject.Sites())
	}

	// One shared registry: the serve tier's tcqrd_* families, the cluster
	// tier's tcqrd_cluster_* families, and the build-info gauge all land on
	// the same /metrics page.
	reg := metrics.NewRegistry()
	registerBuildInfo(reg)

	var node *cluster.Node
	if *peers != "" {
		members, err := cluster.ParsePeers(*peers)
		if err != nil {
			fatal(logger, "bad -peers", "err", err)
		}
		if *nodeID == "" {
			fatal(logger, "-peers requires -node-id")
		}
		node, err = cluster.New(cluster.Config{
			SelfID:        *nodeID,
			Members:       members,
			Replicas:      *replicas,
			ProbeInterval: *probeInterval,
			Registry:      reg,
			Logger:        logger,
		})
		if err != nil {
			fatal(logger, "cluster setup failed", "err", err)
		}
		info(logger, "cluster enabled", "node_id", *nodeID,
			"members", len(members), "replicas", node.Replicas())
	}

	srv := serve.New(serve.Options{
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheEntries:      *cacheEntries,
		CacheMaxBytes:     *cacheBytes,
		CacheDir:          *cacheDir,
		SpillMaxBytes:     *spillBytes,
		Window:            *window,
		MaxBatch:          *maxBatch,
		DefaultEngine:     *engine,
		DefaultDeadline:   *deadline,
		Logger:            logger,
		Retry:             serve.RetryPolicy{MaxAttempts: *retryAttempts},
		StageTimeout:      *stageTimeout,
		DegradeThreshold:  *degradeAfter,
		DegradeCooldown:   *degradeCool,
		StreamTTL:         *streamTTL,
		MaxStreamSessions: *streamSessions,
		Registry:          reg,
		Cluster:           node,
		Backend: serve.LibraryBackend{
			TSQRMinRows:   *tsqrMinRows,
			TSQRWorkers:   *tsqrWorkers,
			TSQRBlockRows: *tsqrBlockRows,
		},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(logger, "listen failed", "addr", *addr, "err", err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fatal(logger, "write -addr-file failed", "err", err)
		}
	}
	info(logger, "listening", "addr", bound, "workers", *workers, "queue", *queue,
		"cache", *cacheEntries, "window", (*window).String(), "max_batch", *maxBatch)

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(logger, "debug listen failed", "addr", *debugAddr, "err", err)
		}
		info(logger, "pprof listening", "addr", dln.Addr().String())
		go func() {
			// The profiling mux is deliberately its own listener (and its own
			// mux — not http.DefaultServeMux) so pprof is never reachable
			// through the public API address.
			dmux := http.NewServeMux()
			dmux.HandleFunc("/debug/pprof/", pprof.Index)
			dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			if err := http.Serve(dln, dmux); err != nil {
				warn(logger, "pprof server exited", "err", err)
			}
		}()
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal(logger, "serve failed", "err", err)
	case <-ctx.Done():
	}

	info(logger, "draining", "budget", (*drainTimeout).String())
	srv.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		warn(logger, "shutdown error", "err", err)
	}
	if err := srv.AwaitIdle(dctx); err != nil {
		warn(logger, "drain incomplete", "err", err)
		os.Exit(1)
	}
	if node != nil {
		// Last chance to re-home queued hints before the process goes away:
		// deliver what the owners will accept, then stop the loops.
		if left := node.DrainHandoff(dctx); left > 0 {
			warn(logger, "handoff drain incomplete", "undelivered", left)
		}
		node.Close()
	}
	info(logger, "drained cleanly")
}

// buildLogger maps the -log-level flag to a text slog.Logger on stderr, or
// nil for "off" (which disables request logging entirely).
func buildLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	case "off", "none":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, error or off)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

// The lifecycle helpers keep the daemon speaking through the same structured
// logger as the request path, while degrading to stderr (fatal) or silence
// when logging is off.

func info(lg *slog.Logger, msg string, args ...any) {
	if lg != nil {
		lg.Info(msg, args...)
	}
}

func warn(lg *slog.Logger, msg string, args ...any) {
	if lg != nil {
		lg.Warn(msg, args...)
	}
}

func fatal(lg *slog.Logger, msg string, args ...any) {
	if lg != nil {
		lg.Error(msg, args...)
	} else {
		fmt.Fprintf(os.Stderr, "tcqrd: %s %v\n", msg, args)
	}
	os.Exit(1)
}
