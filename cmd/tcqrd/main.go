// Command tcqrd is the factorization-serving daemon: a stdlib net/http JSON
// API over the tcqr library's "factor once, apply many times" pipeline.
//
//	POST /v1/factorize  — factor a matrix (content-hash cached, singleflight)
//	POST /v1/solve      — least squares against a cached factorization;
//	                      concurrent same-matrix solves coalesce into one
//	                      multi-RHS call
//	POST /v1/lowrank    — truncated QR-SVD low-rank approximation
//	GET  /healthz       — liveness (503 while draining)
//	GET  /statz         — cache / coalescer / pool / timing / hazard counters
//
// Responses carry a Server-Timing header (queue, factorize, solve, encode)
// and serialize every numerical hazard the fallback ladder detected or
// recovered from. SIGINT/SIGTERM drain gracefully: in-flight and parked
// requests complete, new ones get 503.
//
// Usage:
//
//	tcqrd [-addr :8723] [-workers N] [-queue 64] [-cache 32]
//	      [-window 2ms] [-max-batch 32] [-deadline 30s]
//	      [-drain-timeout 10s] [-addr-file path]
//
// The -smoke flag runs the binary as a client instead: it drives a running
// daemon through factorize, cache-hit, coalesced-solve, hazard and
// bad-input scenarios, exiting non-zero if any response deviates from the
// contract (scripts/serve_smoke.sh wires this into CI).
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"tcqr/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8723", "listen address (host:port; port 0 picks a free port)")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "compute worker count")
		queue        = flag.Int("queue", 64, "admission queue depth (excess requests get 429)")
		cacheEntries = flag.Int("cache", 32, "factorization cache capacity (LRU entries)")
		window       = flag.Duration("window", 2*time.Millisecond, "solve coalescing window (0 disables)")
		maxBatch     = flag.Int("max-batch", 32, "max solves coalesced into one multi-RHS call")
		deadline     = flag.Duration("deadline", 30*time.Second, "default per-request deadline")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file once listening")
		smoke        = flag.String("smoke", "", "run as smoke-test client against this base URL and exit")
	)
	flag.Parse()

	if *smoke != "" {
		os.Exit(runSmoke(*smoke))
	}

	srv := serve.New(serve.Options{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cacheEntries,
		Window:          *window,
		MaxBatch:        *maxBatch,
		DefaultDeadline: *deadline,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("tcqrd: listen %s: %v", *addr, err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatalf("tcqrd: write -addr-file: %v", err)
		}
	}
	log.Printf("tcqrd: listening on %s (workers=%d queue=%d cache=%d window=%s max-batch=%d)",
		bound, *workers, *queue, *cacheEntries, *window, *maxBatch)

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatalf("tcqrd: serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("tcqrd: draining (budget %s)", *drainTimeout)
	srv.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("tcqrd: shutdown: %v", err)
	}
	if err := srv.AwaitIdle(dctx); err != nil {
		log.Printf("tcqrd: drain incomplete: %v", err)
		os.Exit(1)
	}
	log.Printf("tcqrd: drained cleanly")
}
