package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"tcqr/internal/wirefmt"
)

// runUpdateSmoke drives the incremental-update contract against a running
// daemon: factorize, append rows through /v1/update (JSON and binary
// frames), solve against the bare base key (newest epoch) and an explicit
// epoch-pinned key, downdate back to the original shape, and verify the
// error paths and the tcqrd_update_* metric families. Run the daemon with
// -cache-dir and re-run this smoke after a restart to additionally exercise
// rewarm (the first factorize then reports cached=true).
func runUpdateSmoke(base string) int {
	s := &smoker{base: base, client: &http.Client{Timeout: 60 * time.Second}}

	var health struct {
		Status string `json:"status"`
	}
	code, err := s.get("/healthz", &health)
	s.check(err == nil && code == 200 && health.Status == "ok",
		"healthz returns 200 ok", "code=%d status=%q err=%v", code, health.Status, err)

	// A shape distinct from -smoke's so the two runs never share cache keys.
	m, n := 120, 24
	mat := smokeMatrix(m, n, 1)
	var fr struct {
		Key    string `json:"key"`
		Cached bool   `json:"cached"`
	}
	code, err = s.post("/v1/factorize", map[string]any{"matrix": mat}, &fr)
	s.check(err == nil && code == 200 && fr.Key != "",
		"factorize succeeds with a key", "code=%d key=%q err=%v", code, fr.Key, err)
	baseKey := fr.Key

	// Append a row block (JSON): epoch 1 publishes under key@1.
	blockRows := 8
	block := smokeMatrix(blockRows, n, 1)
	var ur struct {
		Key     string `json:"key"`
		BaseKey string `json:"base_key"`
		Epoch   uint64 `json:"epoch"`
		Rows    int    `json:"rows"`
		Cols    int    `json:"cols"`
	}
	code, err = s.post("/v1/update", map[string]any{"key": baseKey, "append": block}, &ur)
	s.check(err == nil && code == 200 && ur.Epoch == 1 && ur.Key == baseKey+"@1" &&
		ur.BaseKey == baseKey && ur.Rows == m+blockRows && ur.Cols == n,
		"append update publishes epoch 1",
		"code=%d key=%q epoch=%d rows=%d err=%v", code, ur.Key, ur.Epoch, ur.Rows, err)

	// Solving by the bare base key resolves the newest epoch, and the
	// response names the exact epoch it ran against.
	full := stackWire(mat, block)
	xTrue := make([]float64, n)
	for j := range xTrue {
		xTrue[j] = float64(j%5) - 2
	}
	b := matVec(full, xTrue)
	var sr struct {
		X   []float64 `json:"x"`
		Key string    `json:"key"`
	}
	code, err = s.post("/v1/solve", map[string]any{"key": baseKey, "b": b}, &sr)
	s.check(err == nil && code == 200 && sr.Key == baseKey+"@1",
		"bare-key solve resolves the new epoch", "code=%d key=%q err=%v", code, sr.Key, err)
	if code == 200 {
		s.check(maxAbsDiff(sr.X, xTrue) < 1e-6, "post-update solve is accurate",
			"max |x-x*| = %g", maxAbsDiff(sr.X, xTrue))
	}

	// The versioned key pins exactly that epoch.
	code, err = s.post("/v1/solve", map[string]any{"key": baseKey + "@1", "b": b}, &sr)
	s.check(err == nil && code == 200 && sr.Key == baseKey+"@1" && maxAbsDiff(sr.X, xTrue) < 1e-6,
		"epoch-pinned solve answers from epoch 1",
		"code=%d key=%q diff=%g err=%v", code, sr.Key, maxAbsDiff(sr.X, xTrue), err)

	// Binary frame append: [JSON meta, block] publishes epoch 2.
	meta, _ := json.Marshal(map[string]any{"key": baseKey})
	blockData := wireData(block)
	frame, ferr := wirefmt.AppendFrame(nil, wirefmt.JSONSection(meta),
		wirefmt.MatrixSection(blockRows, n, blockData))
	s.check(ferr == nil, "update request encodes as a frame", "err=%v", ferr)
	body, _, code, err := s.postRaw("/v1/update", wirefmt.ContentType, "application/json", frame)
	var ur2 struct {
		Epoch uint64 `json:"epoch"`
		Rows  int    `json:"rows"`
	}
	if err == nil {
		err = json.Unmarshal(body, &ur2)
	}
	s.check(err == nil && code == 200 && ur2.Epoch == 2 && ur2.Rows == m+2*blockRows,
		"binary-frame append publishes epoch 2",
		"code=%d epoch=%d rows=%d err=%v", code, ur2.Epoch, ur2.Rows, err)

	// Downdate both appended blocks: epoch 3 factors the original matrix.
	code, err = s.post("/v1/update", map[string]any{"key": baseKey, "remove_rows": 2 * blockRows}, &ur)
	s.check(err == nil && code == 200 && ur.Epoch == 3 && ur.Rows == m,
		"downdate publishes epoch 3 at the original shape",
		"code=%d epoch=%d rows=%d err=%v", code, ur.Epoch, ur.Rows, err)
	b0 := matVec(mat, xTrue)
	code, err = s.post("/v1/solve", map[string]any{"key": baseKey, "b": b0}, &sr)
	s.check(err == nil && code == 200 && maxAbsDiff(sr.X, xTrue) < 1e-6,
		"post-downdate solve matches the original matrix",
		"code=%d diff=%g err=%v", code, maxAbsDiff(sr.X, xTrue), err)

	// Error contract: unknown key is 404, append+remove together is 400.
	var errBody struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	code, err = s.post("/v1/update", map[string]any{"key": "m0000000000000000-nope", "remove_rows": 1}, &errBody)
	s.check(err == nil && code == 404 && errBody.Error.Code == "unknown_key",
		"update of an unknown key is 404 unknown_key",
		"code=%d code_str=%q err=%v", code, errBody.Error.Code, err)
	code, err = s.post("/v1/update", map[string]any{"key": baseKey, "append": block, "remove_rows": 1}, &errBody)
	s.check(err == nil && code == 400 && errBody.Error.Code == "bad_input",
		"append+remove together is 400 bad_input",
		"code=%d code_str=%q err=%v", code, errBody.Error.Code, err)

	// The update metric families must reflect the three published epochs.
	expo, code, err := s.getText("/metrics")
	s.check(err == nil && code == 200, "metrics endpoint scrapes", "code=%d err=%v", code, err)
	s.check(metricAbove(expo, "tcqrd_update_epochs_total", 2),
		"tcqrd_update_epochs_total counted the epochs", "family missing or <= 2")
	s.check(metricLabelAbove(expo, "tcqrd_update_applied_total", `op="append"`, 1),
		"tcqrd_update_applied_total{op=append} counted both appends", "family missing or <= 1")
	s.check(metricLabelAbove(expo, "tcqrd_update_applied_total", `op="downdate"`, 0),
		"tcqrd_update_applied_total{op=downdate} counted the downdate", "family missing or 0")
	s.check(metricAbove(expo, "tcqrd_update_retired_total", 2),
		"tcqrd_update_retired_total retired the superseded epochs", "family missing or <= 2")

	if s.failed {
		fmt.Println("update smoke: FAILED")
		return 1
	}
	fmt.Println("update smoke: all checks passed")
	return 0
}

// wireData extracts the column-major payload of a smokeMatrix value.
func wireData(mat map[string]any) []float64 {
	return mat["data"].([]float64)
}

// stackWire stacks two wire matrices with matching column counts.
func stackWire(top, bottom map[string]any) map[string]any {
	mt, mb := top["rows"].(int), bottom["rows"].(int)
	n := top["cols"].(int)
	td, bd := wireData(top), wireData(bottom)
	out := make([]float64, (mt+mb)*n)
	for j := 0; j < n; j++ {
		copy(out[j*(mt+mb):], td[j*mt:(j+1)*mt])
		copy(out[j*(mt+mb)+mt:], bd[j*mb:(j+1)*mb])
	}
	return map[string]any{"rows": mt + mb, "cols": n, "data": out}
}
