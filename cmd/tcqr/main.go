// Command tcqr is a small driver around the public tcqr API: it factors,
// solves, orthonormalizes or low-rank-approximates a matrix on the
// simulated neural engine and reports the accuracy metrics the paper uses.
//
// The matrix is either generated (-gen with -m/-n/-cond/-dist) or read
// from a CSV file of rows (-in file.csv). For solves, the right-hand side
// is the last CSV column or a generated consistent system.
//
// Examples:
//
//	tcqr -op qr    -gen -m 2048 -n 512 -cond 1e4 -dist geometric
//	tcqr -op solve -gen -m 4096 -n 512 -cond 1e6 -dist cluster2
//	tcqr -op ortho -gen -m 2048 -n 256 -cond 1e6
//	tcqr -op lowrank -gen -m 8192 -n 256 -rank 32
//	tcqr -op solve -in data.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"

	"tcqr"
	"tcqr/internal/accuracy"
	"tcqr/internal/dense"
	"tcqr/internal/matgen"
)

func main() {
	op := flag.String("op", "qr", "operation: qr, solve, linsolve, ortho, lowrank, cond")
	gen := flag.Bool("gen", false, "generate a random matrix instead of reading CSV")
	in := flag.String("in", "", "CSV input (rows of the matrix; for solve, last column is b)")
	m := flag.Int("m", 2048, "rows (with -gen)")
	n := flag.Int("n", 512, "columns (with -gen)")
	cond := flag.Float64("cond", 1e4, "condition number (with -gen)")
	dist := flag.String("dist", "geometric", "singular value distribution: geometric, arithmetic, cluster2, uniform, normal")
	rank := flag.Int("rank", 16, "truncation rank (with -op lowrank)")
	seed := flag.Int64("seed", 1, "random seed (with -gen)")
	noTC := flag.Bool("no-tensorcore", false, "disable the simulated neural engine (plain FP32; same as -engine fp32)")
	engine := flag.String("engine", "fp16", "simulated engine: fp16 (plain TensorCore), tc-ec (error-corrected, fp32-grade accuracy at 3x GEMMs), bf16, fp32")
	reortho := flag.Bool("reortho", false, "re-orthogonalize the Q factor")
	onHazard := flag.String("on-hazard", "fail", "numerical hazard policy: fail (typed error) or fallback (recovery ladder)")
	noScale := flag.Bool("no-scaling", false, "disable the §3.5 column scaling overflow safeguard")
	flag.Parse()

	cfg := tcqr.Config{
		DisableTensorCore:    *noTC,
		ReOrthogonalize:      *reortho,
		DisableColumnScaling: *noScale,
	}
	switch *engine {
	case "", "fp16":
	case "tc-ec":
		cfg.UseTCEC = true
	case "bf16":
		cfg.UseBFloat16 = true
	case "fp32":
		cfg.DisableTensorCore = true
	default:
		fatalf("unknown -engine %q (want fp16, tc-ec, bf16 or fp32)", *engine)
	}
	switch *onHazard {
	case "fail":
		cfg.OnHazard = tcqr.HazardFail
	case "fallback":
		cfg.OnHazard = tcqr.HazardFallback
	default:
		fatalf("unknown -on-hazard policy %q (want fail or fallback)", *onHazard)
	}

	var a *tcqr.Matrix
	var b []float64
	switch {
	case *gen:
		rng := rand.New(rand.NewSource(*seed))
		switch *dist {
		case "uniform":
			a = matgen.Uniform01(rng, *m, *n)
		case "normal":
			a = matgen.Normal(rng, *m, *n)
		case "geometric":
			a = matgen.WithCond(rng, *m, *n, *cond, matgen.Geometric)
		case "arithmetic":
			a = matgen.WithCond(rng, *m, *n, *cond, matgen.Arithmetic)
		case "cluster2":
			a = matgen.WithCond(rng, *m, *n, *cond, matgen.Cluster2)
		default:
			fatalf("unknown distribution %q", *dist)
		}
		switch *op {
		case "solve":
			prob := matgen.NewLLSProblem(rng, a, 0.1)
			b = prob.B
		case "linsolve":
			if *m != *n {
				fatalf("linsolve needs a square matrix (-m == -n)")
			}
			x := make([]float64, *n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			b = make([]float64, *m)
			for j := 0; j < *n; j++ {
				for i := 0; i < *m; i++ {
					b[i] += a.At(i, j) * x[j]
				}
			}
		}
	case *in != "":
		var err error
		a, b, err = readCSV(*in, *op == "solve" || *op == "linsolve")
		if err != nil {
			fatalf("reading %s: %v", *in, err)
		}
	default:
		fatalf("provide -gen or -in (see -h)")
	}

	a32 := tcqr.ToFloat32(a)
	switch *op {
	case "qr":
		f, err := tcqr.Factorize(a32, cfg)
		check(err)
		fmt.Printf("RGSQRF of %dx%d\n", a.Rows, a.Cols)
		fmt.Printf("backward error ‖A−QR‖/‖A‖:  %.3e\n", f.BackwardError(a32))
		fmt.Printf("orthogonality ‖I−QᵀQ‖:      %.3e\n", f.OrthogonalityError())
		printStats(f)
	case "ortho":
		cfg.ReOrthogonalize = true
		f, err := tcqr.Factorize(a32, cfg)
		check(err)
		fmt.Printf("orthonormal basis of %dx%d (re-orthogonalized)\n", a.Rows, a.Cols)
		fmt.Printf("orthogonality ‖I−QᵀQ‖: %.3e\n", f.OrthogonalityError())
		printStats(f)
	case "solve":
		if b == nil {
			fatalf("solve needs a right-hand side (last CSV column)")
		}
		sol, err := tcqr.SolveLeastSquares(a, b, tcqr.SolveOptions{QR: cfg, OnHazard: cfg.OnHazard})
		check(err)
		fmt.Printf("least squares solve of %dx%d system\n", a.Rows, a.Cols)
		fmt.Printf("refinement iterations:  %d (converged: %v)\n", sol.Iterations, sol.Converged)
		fmt.Printf("optimality ‖Aᵀ(Ax−b)‖:  %.3e\n", sol.Optimality)
		fmt.Printf("residual ‖Ax−b‖:        %.3e\n", accuracy.ResidualNorm(a, sol.X, b))
		printHazards(sol.Hazards)
	case "linsolve":
		if b == nil {
			fatalf("linsolve needs a right-hand side (last CSV column)")
		}
		res, err := tcqr.SolveLinearSystem(a, b, cfg)
		check(err)
		fmt.Printf("linear solve of %dx%d system (TC-LU + iterative refinement)\n", a.Rows, a.Cols)
		fmt.Printf("refinement iterations: %d (converged: %v)\n", res.Iterations, res.Converged)
		if len(res.ResidualNorms) > 0 {
			fmt.Printf("final residual ‖b−Ax‖:  %.3e\n", res.ResidualNorms[len(res.ResidualNorms)-1])
		}
		fmt.Printf("elimination growth:     %.3g\n", res.GrowthFactor)
	case "cond":
		kappa, err := tcqr.ConditionNumber(a32, cfg)
		check(err)
		fmt.Printf("estimated condition number κ₂(A) of %dx%d: %.4g\n", a.Rows, a.Cols, kappa)
	case "lowrank":
		lr, err := tcqr.LowRank(a32, *rank, cfg)
		check(err)
		fmt.Printf("rank-%d approximation of %dx%d\n", lr.Rank, a.Rows, a.Cols)
		fmt.Printf("relative error ‖A−UΣVᵀ‖/‖A‖: %.3e\n", lr.Error(a32))
		fmt.Printf("leading singular values: ")
		for i := 0; i < min(8, len(lr.S)); i++ {
			fmt.Printf("%.4g ", lr.S[i])
		}
		fmt.Println()
	default:
		fatalf("unknown operation %q", *op)
	}
}

func printStats(f *tcqr.Factorization) {
	s := f.EngineStats
	if s.GemmCalls == 0 {
		fmt.Println("neural engine: no GEMM work (engine disabled, or n <= cutoff so the panel did everything)")
		return
	}
	fmt.Printf("neural engine: %d GEMMs, %.2f Gflop, %d fp16 overflows, %d underflows\n",
		s.GemmCalls, float64(s.Flops)/1e9, s.Overflows, s.Underflows)
	printHazards(f.Hazards)
}

func printHazards(hazards []tcqr.Hazard) {
	for _, h := range hazards {
		fmt.Printf("hazard: %s\n", h)
	}
}

func readCSV(path string, wantRHS bool) (*tcqr.Matrix, []float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, nil, err
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("empty file")
	}
	cols := len(rows[0])
	if wantRHS {
		cols--
	}
	if cols < 1 {
		return nil, nil, fmt.Errorf("need at least %d columns", 1+btoi(wantRHS))
	}
	a := dense.New[float64](len(rows), cols)
	var b []float64
	if wantRHS {
		b = make([]float64, len(rows))
	}
	for i, row := range rows {
		if len(row) != len(rows[0]) {
			return nil, nil, fmt.Errorf("row %d has %d fields, want %d", i, len(row), len(rows[0]))
		}
		for j, field := range row {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("row %d field %d: %v", i, j, err)
			}
			if wantRHS && j == cols {
				b[i] = v
			} else {
				a.Set(i, j, v)
			}
		}
	}
	return a, b, nil
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func check(err error) {
	if err != nil {
		// Library errors already carry the "tcqr: " prefix fatalf adds.
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tcqr: "+format+"\n", args...)
	os.Exit(1)
}
