package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "m.csv")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReadCSVMatrixOnly(t *testing.T) {
	p := writeTemp(t, "1,2\n3,4\n5,6\n")
	a, b, err := readCSV(p, false)
	if err != nil {
		t.Fatal(err)
	}
	if b != nil {
		t.Fatal("unexpected rhs")
	}
	if a.Rows != 3 || a.Cols != 2 || a.At(2, 1) != 6 || a.At(1, 0) != 3 {
		t.Fatalf("parsed wrong: %+v", a)
	}
}

func TestReadCSVWithRHS(t *testing.T) {
	p := writeTemp(t, "1,2,10\n3,4,20\n")
	a, b, err := readCSV(p, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cols != 2 || b == nil || len(b) != 2 || b[1] != 20 {
		t.Fatalf("rhs parsing wrong: %+v %v", a, b)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, _, err := readCSV(writeTemp(t, ""), false); err == nil {
		t.Error("empty file accepted")
	}
	if _, _, err := readCSV(writeTemp(t, "1,x\n"), false); err == nil {
		t.Error("non-numeric field accepted")
	}
	if _, _, err := readCSV(writeTemp(t, "1\n2\n"), true); err == nil {
		t.Error("single column with rhs accepted")
	}
	if _, _, err := readCSV(filepath.Join(t.TempDir(), "missing.csv"), false); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCatalogueSanity(t *testing.T) {
	// Keep btoi honest while it exists.
	if btoi(true) != 1 || btoi(false) != 0 {
		t.Error("btoi")
	}
}
