package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "m.csv")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReadCSVMatrixOnly(t *testing.T) {
	p := writeTemp(t, "1,2\n3,4\n5,6\n")
	a, b, err := readCSV(p, false)
	if err != nil {
		t.Fatal(err)
	}
	if b != nil {
		t.Fatal("unexpected rhs")
	}
	if a.Rows != 3 || a.Cols != 2 || a.At(2, 1) != 6 || a.At(1, 0) != 3 {
		t.Fatalf("parsed wrong: %+v", a)
	}
}

func TestReadCSVWithRHS(t *testing.T) {
	p := writeTemp(t, "1,2,10\n3,4,20\n")
	a, b, err := readCSV(p, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cols != 2 || b == nil || len(b) != 2 || b[1] != 20 {
		t.Fatalf("rhs parsing wrong: %+v %v", a, b)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, _, err := readCSV(writeTemp(t, ""), false); err == nil {
		t.Error("empty file accepted")
	}
	if _, _, err := readCSV(writeTemp(t, "1,x\n"), false); err == nil {
		t.Error("non-numeric field accepted")
	}
	if _, _, err := readCSV(writeTemp(t, "1\n2\n"), true); err == nil {
		t.Error("single column with rhs accepted")
	}
	if _, _, err := readCSV(filepath.Join(t.TempDir(), "missing.csv"), false); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCatalogueSanity(t *testing.T) {
	// Keep btoi honest while it exists.
	if btoi(true) != 1 || btoi(false) != 0 {
		t.Error("btoi")
	}
}

// TestMainExitHelper is the re-exec target for the exit-code tests below:
// when TCQR_MAIN_TEST is set, the test binary runs the real main() with the
// arguments from TCQR_MAIN_ARGS, so os.Exit codes and stderr can be
// observed from the parent process.
func TestMainExitHelper(t *testing.T) {
	if os.Getenv("TCQR_MAIN_TEST") == "" {
		t.Skip("helper for re-exec tests")
	}
	os.Args = append([]string{"tcqr"}, strings.Split(os.Getenv("TCQR_MAIN_ARGS"), "\x1f")...)
	main()
	os.Exit(0)
}

// runMain re-executes the test binary through the helper above and returns
// the exit code and captured stderr.
func runMain(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestMainExitHelper")
	cmd.Env = append(os.Environ(),
		"TCQR_MAIN_TEST=1",
		"TCQR_MAIN_ARGS="+strings.Join(args, "\x1f"))
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return 0, stderr.String()
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), stderr.String()
	}
	t.Fatalf("re-exec failed: %v", err)
	return -1, ""
}

// TestMalformedInputExitsNonZero: malformed inputs must terminate the CLI
// with a non-zero status and the typed hazard error on stderr — never a
// zero status over garbage output.
func TestMalformedInputExitsNonZero(t *testing.T) {
	nanCSV := writeTemp(t, "1,2\n3,NaN\n5,6\n")
	code, msg := runMain(t, "-op", "qr", "-in", nanCSV)
	if code == 0 {
		t.Fatal("NaN input exited 0")
	}
	if !strings.Contains(msg, "non-finite") {
		t.Errorf("stderr should name the typed error, got: %q", msg)
	}

	// Wide matrix: shape error.
	wide := writeTemp(t, "1,2,3\n4,5,6\n")
	code, msg = runMain(t, "-op", "qr", "-in", wide)
	if code == 0 {
		t.Fatal("wide input exited 0")
	}
	if !strings.Contains(msg, "invalid shape") {
		t.Errorf("stderr should name the shape error, got: %q", msg)
	}

	// Unknown hazard policy flag.
	code, msg = runMain(t, "-op", "qr", "-gen", "-m", "8", "-n", "4", "-on-hazard", "bogus")
	if code == 0 {
		t.Fatal("bogus -on-hazard exited 0")
	}
	if !strings.Contains(msg, "on-hazard") {
		t.Errorf("stderr should mention the flag, got: %q", msg)
	}

	// Healthy run still exits 0.
	if code, msg = runMain(t, "-op", "qr", "-gen", "-m", "64", "-n", "16", "-cond", "10"); code != 0 {
		t.Fatalf("healthy run exited %d: %s", code, msg)
	}
}
