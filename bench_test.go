package tcqr

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Two families:
//
//   - Benchmark<Exp>: runs the actual numeric pipeline behind the
//     experiment on the software neural engine at the quick scale, so
//     `go test -bench .` measures the real simulator and the reported
//     custom metrics carry the experiment's headline result (modelled
//     TFLOPS, speedups, error levels);
//   - the experiment rows themselves are printed by cmd/tcqr-tables and
//     validated in internal/experiments tests.
//
// Metrics reported via b.ReportMetric use suffixes:
//   model-TFLOPS   modelled V100 throughput of the algorithm under test
//   paper-x        modelled speedup corresponding to a paper claim
//   err            measured numeric error level

import (
	"math/rand"
	"strings"
	"testing"

	"tcqr/internal/blas"
	"tcqr/internal/experiments"
	"tcqr/internal/matgen"
	"tcqr/internal/perfmodel"
	"tcqr/internal/tcsim"
)

// benchMatrix is the standard quick-scale input reused across benchmarks.
func benchMatrix(b *testing.B, m, n int, cond float64, dist matgen.Dist) *Matrix32 {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	return ToFloat32(matgen.WithCond(rng, m, n, cond, dist))
}

// BenchmarkTable2_MagmaHybridQR evaluates the MAGMA hybrid pipeline model
// across Table 2's block sizes (pure model; the numeric content of Table 2
// is MAGMA's, not this library's).
func BenchmarkTable2_MagmaHybridQR(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		for _, bs := range []float64{32, 64, 128, 256, 512, 768} {
			last = perfmodel.MagmaHybridQRTFLOPS(32768, 16384, bs, true)
		}
	}
	b.ReportMetric(last, "B768-model-TFLOPS")
	b.ReportMetric(perfmodel.MagmaHybridQRTFLOPS(32768, 16384, 64, true), "B64-model-TFLOPS")
}

// BenchmarkTable3_GemmThroughput measures the software TensorCore GEMM on
// the Table 3 projection shape at quick scale, and reports the calibrated
// device throughput the experiment tables use.
func BenchmarkTable3_GemmThroughput(b *testing.B) {
	a := benchMatrix(b, 2048, 128, 10, matgen.Arithmetic)
	c := NewMatrix32(128, 128)
	eng := &tcsim.TensorCore{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Gemm(blas.Trans, blas.NoTrans, 1, a, a, 0, c)
	}
	flops := 2 * float64(128) * 128 * 2048
	b.SetBytes(int64(flops / 2)) // fp16 operand traffic proxy
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "sim-GFLOPS")
	b.ReportMetric(perfmodel.TCGemmTN.At(2048), "device-model-TFLOPS")
}

// BenchmarkFig1_HouseholderEstimate evaluates equation (4).
func BenchmarkFig1_HouseholderEstimate(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		best = 0
		for _, bs := range []float64{128, 256, 512, 1024, 2048} {
			if e := perfmodel.HouseholderEstimate(16384, bs, true); e > best {
				best = e
			}
		}
	}
	b.ReportMetric(best, "best-model-TFLOPS")
}

// BenchmarkFig2_RGSQRFEstimate evaluates the recurrence (7).
func BenchmarkFig2_RGSQRFEstimate(b *testing.B) {
	var est float64
	for i := 0; i < b.N; i++ {
		est = perfmodel.RGSQRFEstimate(32768, 16384, 128, true, perfmodel.SGeqrfPanelRate)
	}
	b.ReportMetric(est, "model-TFLOPS")
}

// BenchmarkFig3_BackwardError factors a conditioned matrix with the
// TensorCore engine and reports the Figure 3 backward error.
func BenchmarkFig3_BackwardError(b *testing.B) {
	a := benchMatrix(b, 512, 128, 1e6, matgen.Arithmetic)
	var be float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := Factorize(a, Config{Cutoff: 32})
		if err != nil {
			b.Fatal(err)
		}
		be = f.BackwardError(a)
	}
	b.ReportMetric(be, "backward-err")
}

// BenchmarkFig4_Orthogonality runs the re-orthogonalized factorization and
// reports the Figure 4 orthogonality error.
func BenchmarkFig4_Orthogonality(b *testing.B) {
	a := benchMatrix(b, 512, 128, 1e6, matgen.Arithmetic)
	var oe float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := Factorize(a, Config{Cutoff: 32, ReOrthogonalize: true})
		if err != nil {
			b.Fatal(err)
		}
		oe = f.OrthogonalityError()
	}
	b.ReportMetric(oe, "ortho-err")
}

// BenchmarkFig5_OrthoPerformance runs the numeric re-orthogonalization
// pipeline and reports the paper-scale modelled speedup over
// SGEQRF+SORMQR.
func BenchmarkFig5_OrthoPerformance(b *testing.B) {
	a := benchMatrix(b, 512, 128, 1e3, matgen.Geometric)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Orthonormalize(a, Config{Cutoff: 32}); err != nil {
			b.Fatal(err)
		}
	}
	house := perfmodel.SGeqrfTime(32768, 16384) + perfmodel.SOrmqrFormQTime(32768, 16384)
	re := perfmodel.ReorthoTime(32768, 16384, perfmodel.PaperConfig)
	b.ReportMetric(house/re, "paper-x")
}

// BenchmarkFig6_PanelEffect factors with the CAQR panel and with the
// Householder panel, reporting the modelled paper-scale speedup over
// cuSOLVER.
func BenchmarkFig6_PanelEffect(b *testing.B) {
	a := benchMatrix(b, 768, 192, 100, matgen.Geometric)
	b.Run("CAQR-panel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Factorize(a, Config{Cutoff: 48}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(perfmodel.RGSQRFTFLOPS(32768, 16384, perfmodel.PaperConfig), "model-TFLOPS")
		b.ReportMetric(perfmodel.RGSQRFTFLOPS(32768, 16384, perfmodel.PaperConfig)/perfmodel.SGeqrfRate(16384), "paper-x")
	})
	b.Run("SGEQRF-panel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Factorize(a, Config{Cutoff: 48, Panel: PanelHouseholder}); err != nil {
				b.Fatal(err)
			}
		}
		cfg := perfmodel.QRConfig{Panel: perfmodel.PanelSGEQRF, TCUpdate: true}
		b.ReportMetric(perfmodel.RGSQRFTFLOPS(32768, 16384, cfg), "model-TFLOPS")
	})
}

// BenchmarkFig7_TCAblation runs the three Figure 7 engine configurations.
func BenchmarkFig7_TCAblation(b *testing.B) {
	a := benchMatrix(b, 768, 192, 100, matgen.Geometric)
	cases := []struct {
		name string
		cfg  Config
		pm   perfmodel.QRConfig
	}{
		{"TC-on-on", Config{Cutoff: 48, TensorCoreInPanel: true}, perfmodel.QRConfig{Panel: perfmodel.PanelCAQR, TCUpdate: true, TCPanel: true}},
		{"TC-off-on", Config{Cutoff: 48}, perfmodel.QRConfig{Panel: perfmodel.PanelCAQR, TCUpdate: true}},
		{"TC-off-off", Config{Cutoff: 48, DisableTensorCore: true}, perfmodel.QRConfig{Panel: perfmodel.PanelCAQR}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Factorize(a, c.cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(perfmodel.RGSQRFTFLOPS(32768, 16384, c.pm), "model-TFLOPS")
		})
	}
}

// BenchmarkFig8_LLSSolvers runs the full RGSQRF+CGLS pipeline per matrix
// family and reports the paper-scale modelled speedup over SCuSOLVE.
func BenchmarkFig8_LLSSolvers(b *testing.B) {
	for _, panel := range experiments.Fig8Panels {
		b.Run(panel.Name[3:], func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			var a *Matrix
			switch panel.Kind {
			case 0:
				a = matgen.Uniform01(rng, 512, 128)
			case 1:
				a = matgen.UniformSym(rng, 512, 128)
			case 2:
				a = matgen.Normal(rng, 512, 128)
			default:
				a = matgen.WithCond(rng, 512, 128, panel.Cond, panel.Dist)
			}
			prob := matgen.NewLLSProblem(rng, a, 0.1)
			var iters int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol, err := SolveLeastSquares(prob.A, prob.B, SolveOptions{QR: Config{Cutoff: 32}, Tol: 1e-12})
				if err != nil {
					b.Fatal(err)
				}
				iters = sol.Iterations
			}
			times := perfmodel.LLSTimes(32768, 16384, iters, perfmodel.PaperConfig)
			b.ReportMetric(float64(iters), "cgls-iters")
			b.ReportMetric(times.SCuSolve/times.RGSQRFCGLS, "paper-x")
		})
	}
}

// BenchmarkFig9_LLSAccuracy runs the accuracy ladder at the hardest
// condition number and reports the refined optimality.
func BenchmarkFig9_LLSAccuracy(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := matgen.WithCond(rng, 512, 128, 1e6, matgen.Cluster2)
	prob := matgen.NewLLSProblem(rng, a, 0.1)
	var opt float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := SolveLeastSquares(prob.A, prob.B, SolveOptions{QR: Config{Cutoff: 32}, Tol: 1e-13})
		if err != nil {
			b.Fatal(err)
		}
		opt = sol.Optimality
	}
	b.ReportMetric(opt, "optimality-err")
}

// BenchmarkTable4_QRSVD runs the truncated QR-SVD pipeline and reports the
// paper-scale modelled speedup.
func BenchmarkTable4_QRSVD(b *testing.B) {
	a := benchMatrix(b, 1024, 64, 1e6, matgen.Arithmetic)
	var errRel float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lr, err := LowRank(a, 16, Config{Cutoff: 32})
		if err != nil {
			b.Fatal(err)
		}
		errRel = lr.Error(a)
	}
	rgsT, sgeT := perfmodel.QRSVDTimes(524288, 1024)
	b.ReportMetric(errRel, "trunc-err")
	b.ReportMetric(sgeT/rgsT, "paper-x")
}

// BenchmarkTcEcFactorize compares the engine tiers end to end at the quick
// paper shape (DESIGN.md §16). The reported metrics carry the acceptance
// story, not just the timing: the plain TC panel sits at its ~2⁻¹¹ error
// floor, trips the backward-error quality gate and escalates
// (precision-escalations > 0), while tc-ec passes the gate directly at
// fp32-order backward error with zero escalations — and neither engine ever
// reaches an fp32 panel (fp32-panel-escalations = 0), so the hot path stays
// on the tensor-core simulant. The timing shows tc-ec's ~3× GEMM cost.
func BenchmarkTcEcFactorize(b *testing.B) {
	a := benchMatrix(b, 512, 128, 100, matgen.Geometric)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"tc", Config{Cutoff: 32, TensorCoreInPanel: true, OnHazard: HazardFallback}},
		{"tc-ec", Config{Cutoff: 32, UseTCEC: true, TensorCoreInPanel: true, OnHazard: HazardFallback}},
		{"fp32", Config{Cutoff: 32, DisableTensorCore: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var be float64
			var loss, fp32Panels int
			for i := 0; i < b.N; i++ {
				f, err := Factorize(a, c.cfg)
				if err != nil {
					b.Fatal(err)
				}
				be = f.BackwardError(a)
				loss, fp32Panels = 0, 0
				for _, h := range f.Hazards {
					if h.Kind != HazardPrecisionLoss {
						continue
					}
					loss++
					if strings.Contains(h.Action, "MGS") || strings.Contains(h.Action, "SGEQRF") {
						fp32Panels++
					}
				}
			}
			b.ReportMetric(be, "backward-err")
			b.ReportMetric(float64(loss), "precision-escalations")
			b.ReportMetric(float64(fp32Panels), "fp32-panel-escalations")
		})
	}
}

// BenchmarkScaling_Ablation measures the cost of the §3.5 column scaling
// safeguard (it should be negligible).
func BenchmarkScaling_Ablation(b *testing.B) {
	a := benchMatrix(b, 768, 192, 100, matgen.Geometric)
	b.Run("scaling-on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Factorize(a, Config{Cutoff: 48}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scaling-off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Factorize(a, Config{Cutoff: 48, DisableColumnScaling: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPanel_CAQRvsHouseholder is the §3.1.3 panel microbenchmark on
// the software engine.
func BenchmarkPanel_CAQRvsHouseholder(b *testing.B) {
	a := benchMatrix(b, 2048, 32, 10, matgen.Arithmetic)
	b.Run("CAQR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Factorize(a, Config{Cutoff: 32}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(perfmodel.CAQRPanel(128)/perfmodel.SGeqrf.At(128), "paper-x")
	})
	b.Run("Householder", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Factorize(a, Config{Cutoff: 32, Panel: PanelHouseholder}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
