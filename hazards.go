package tcqr

import "tcqr/internal/hazard"

// Typed sentinel errors for every failure mode the library detects. Errors
// returned by Factorize, SolveLeastSquares, LowRank, SolveLinearSystem and
// friends wrap these, so callers can classify failures with errors.Is
// regardless of how deep in the stack the hazard tripped.
var (
	// ErrNonFinite reports a NaN or Inf in an input (or, after the fallback
	// ladder was exhausted, in an output).
	ErrNonFinite = hazard.ErrNonFinite
	// ErrEmpty reports a nil input or one with zero rows or columns.
	ErrEmpty = hazard.ErrEmpty
	// ErrShape reports dimensions the algorithm cannot accept (m < n for the
	// tall-skinny factorizations, mismatched right-hand sides, non-square
	// linear systems).
	ErrShape = hazard.ErrShape
	// ErrBreakdown reports a numerical breakdown inside a factorization: a
	// non-SPD Gram matrix in CholQR, a zero or linearly dependent column in a
	// Gram-Schmidt panel, a non-finite factor.
	ErrBreakdown = hazard.ErrBreakdown
	// ErrOverflow reports fp16 overflow in the simulated neural engine — the
	// §3.5 catastrophe that column scaling exists to prevent.
	ErrOverflow = hazard.ErrOverflow
	// ErrStagnation reports a refinement iteration that stopped making
	// progress before reaching its tolerance.
	ErrStagnation = hazard.ErrStagnation
	// ErrDivergence reports a refinement iteration whose gradient norm grew
	// persistently instead of shrinking.
	ErrDivergence = hazard.ErrDivergence
	// ErrPrecisionLoss reports a factorization that succeeded structurally
	// but failed its backward-error quality gate — half-precision arithmetic
	// at its error floor where the configuration promises fp32-grade
	// accuracy. Under HazardFallback the ladder escalates to the
	// error-corrected TensorCore engine before any fp32 fallback.
	ErrPrecisionLoss = hazard.ErrPrecisionLoss
)

// HazardPolicy decides what a detected numerical hazard does to a
// computation; it is set via Config.OnHazard and SolveOptions.OnHazard.
type HazardPolicy = hazard.Policy

const (
	// HazardFail (the zero value) turns every hazard that would corrupt the
	// result into a typed error: the computation stops at the first
	// breakdown, overflow, or non-finite value instead of returning garbage.
	HazardFail = hazard.Fail
	// HazardFallback enables the recovery ladder: engine overflow retries
	// with column scaling, then a bfloat16 engine, then plain FP32; panel
	// breakdown escalates CholQR → CholQR2 → MGS → Householder; CGLS
	// stagnation or divergence re-solves with preconditioned LSQR. Every
	// recovery is recorded in the result's Hazards.
	HazardFallback = hazard.Fallback
)

// Hazard is one detected numerical hazard and the action taken in response,
// as recorded in Factorization.Hazards / LeastSquaresResult.Hazards.
type Hazard = hazard.Event

// HazardKind classifies a Hazard.
type HazardKind = hazard.Kind

// The hazard classes the pipeline distinguishes.
const (
	HazardNonFinite     = hazard.KindNonFinite
	HazardOverflow      = hazard.KindOverflow
	HazardBreakdown     = hazard.KindBreakdown
	HazardRankDeficient = hazard.KindRankDeficient
	HazardStagnation    = hazard.KindStagnation
	HazardDivergence    = hazard.KindDivergence
	HazardPrecisionLoss = hazard.KindPrecisionLoss
)
