package tcqr

import (
	"fmt"
	"testing"
)

// BenchmarkUpdateVsRefactorize is the acceptance benchmark for the
// incremental update path (BENCH_9.json): appending a row block to a cached
// 4096×256 factorization via the O(m·n·k + n²·(k+n)) Householder update,
// against refactorizing the stacked matrix from scratch at O(m·n²). The
// asymptotic win is ~n/k, so the acceptance gate (≥10× at 4096×256) is
// measured at the 16-row block; the 64-row point records how the win decays
// toward n/k = 4 for fatter appends. The updated factors' backward error is
// asserted against the serial bound once, in setup, so a regression fails
// the benchmark rather than silently reporting fast wrong answers.
func BenchmarkUpdateVsRefactorize(b *testing.B) {
	const m, n = 4096, 256
	a := randBlock(1, m, n, 1)
	cfg := Config{}
	f, err := Factorize(a, cfg)
	if err != nil {
		b.Fatalf("seed factorize: %v", err)
	}

	for _, k := range []int{16, 64} {
		block := randBlock(int64(2+k), k, n, 1)
		full := stack(a, block)
		ref, err := Factorize(full, cfg)
		if err != nil {
			b.Fatalf("reference refactorize (+%d rows): %v", k, err)
		}
		up, err := UpdateAppendRows(f, block, cfg)
		if err != nil {
			b.Fatalf("update (+%d rows): %v", k, err)
		}
		beUp, beRef := up.BackwardError(full), ref.BackwardError(full)
		if beUp > 2*beRef+1e-6 {
			b.Fatalf("updated backward error %g outside the serial bound (ref %g)", beUp, beRef)
		}

		b.Run(fmt.Sprintf("UpdateAppend/4096x256+%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := UpdateAppendRows(f, block, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Refactorize/%dx256", m+k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Factorize(full, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		// The row count rides in front of "rows" so the trailing "-<int>"
		// never parses as a GOMAXPROCS suffix in benchmark reports.
		b.Run(fmt.Sprintf("Downdate/%dx256-%drows", m+k, k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := UpdateRemoveRows(up, k, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
