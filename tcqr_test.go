package tcqr

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"tcqr/internal/accuracy"
	"tcqr/internal/matgen"
)

func testMatrix(seed int64, m, n int, cond float64) *Matrix32 {
	rng := rand.New(rand.NewSource(seed))
	return ToFloat32(matgen.WithCond(rng, m, n, cond, matgen.Arithmetic))
}

func TestMatrixConstructors(t *testing.T) {
	m := NewMatrix(3, 2)
	m.Set(2, 1, 5)
	if m.At(2, 1) != 5 {
		t.Fatal("NewMatrix indexing")
	}
	w := FromColMajor(2, 2, []float64{1, 2, 3, 4})
	if w.At(1, 0) != 2 || w.At(0, 1) != 3 {
		t.Fatal("FromColMajor layout")
	}
	f32 := ToFloat32(w)
	back := ToFloat64(f32)
	for i := range back.Data {
		if back.Data[i] != w.Data[i] {
			t.Fatal("precision round trip")
		}
	}
	m32 := NewMatrix32(4, 4)
	if m32.Rows != 4 {
		t.Fatal("NewMatrix32")
	}
}

func TestFactorizeDefaults(t *testing.T) {
	a := testMatrix(1, 384, 160, 100)
	f, err := Factorize(a, Config{Cutoff: 32})
	if err != nil {
		t.Fatal(err)
	}
	if be := f.BackwardError(a); be > 5e-3 {
		t.Errorf("backward error %g", be)
	}
	if f.ColumnScales == nil {
		t.Error("column scaling should be on by default")
	}
	if f.EngineStats.GemmCalls == 0 || f.EngineStats.Flops == 0 {
		t.Error("engine stats not collected")
	}
	if !accuracy.UpperTriangular(f.R) {
		t.Error("R not upper triangular")
	}
}

func TestFactorizeAblations(t *testing.T) {
	a := testMatrix(2, 384, 128, 100)
	tc, err := Factorize(a, Config{Cutoff: 32})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := Factorize(a, Config{Cutoff: 32, DisableTensorCore: true})
	if err != nil {
		t.Fatal(err)
	}
	if fp.EngineStats.GemmCalls != 0 {
		t.Error("FP32 run should not report neural-engine stats")
	}
	if tc.BackwardError(a) < 10*fp.BackwardError(a) {
		t.Errorf("TC error (%g) should exceed FP32 error (%g)", tc.BackwardError(a), fp.BackwardError(a))
	}
	// Householder panel variant works.
	hh, err := Factorize(a, Config{Cutoff: 32, Panel: PanelHouseholder})
	if err != nil {
		t.Fatal(err)
	}
	if be := hh.BackwardError(a); be > 5e-3 {
		t.Errorf("householder panel backward error %g", be)
	}
	// TC-in-panel variant works and is less accurate than default.
	pp, err := Factorize(a, Config{Cutoff: 32, TensorCoreInPanel: true})
	if err != nil {
		t.Fatal(err)
	}
	if pp.BackwardError(a) < tc.BackwardError(a)/10 {
		t.Error("TC-in-panel should not be dramatically more accurate")
	}
}

func TestOrthonormalize(t *testing.T) {
	a := testMatrix(3, 512, 128, 1e5)
	q, err := Orthonormalize(a, Config{Cutoff: 32})
	if err != nil {
		t.Fatal(err)
	}
	if oe := accuracy.OrthoError(q); oe > 0.05 {
		t.Errorf("orthogonality after reortho %g", oe)
	}
	// Single-pass factorization of the same matrix is much less orthogonal.
	one, err := Factorize(a, Config{Cutoff: 32})
	if err != nil {
		t.Fatal(err)
	}
	if one.OrthogonalityError() < 10*accuracy.OrthoError(q) {
		t.Errorf("reortho should improve orthogonality by ≥10×: %g vs %g",
			one.OrthogonalityError(), accuracy.OrthoError(q))
	}
}

func TestSolveLeastSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := matgen.WithCond(rng, 512, 128, 1e3, matgen.Cluster2)
	p := matgen.NewLLSProblem(rng, a, 0.3)

	sol, err := SolveLeastSquares(p.A, p.B, SolveOptions{QR: Config{Cutoff: 32}})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged {
		t.Error("CGLS did not converge")
	}
	if sol.Optimality > 1e-9 {
		t.Errorf("optimality %g", sol.Optimality)
	}
	// The unrefined direct solve is orders of magnitude worse.
	direct, err := SolveLeastSquares(p.A, p.B, SolveOptions{QR: Config{Cutoff: 32}, Method: RefineNone})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Optimality < 1e4*sol.Optimality {
		t.Errorf("direct optimality %g should dwarf refined %g", direct.Optimality, sol.Optimality)
	}
	// Factor reuse across right-hand sides.
	b2 := make([]float64, 512)
	for i := range b2 {
		b2[i] = rng.NormFloat64()
	}
	sol2, err := SolveLeastSquaresWithFactor(sol.Factorization, p.A, b2, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Optimality > 1e-9 {
		t.Errorf("reused-factor optimality %g", sol2.Optimality)
	}
}

func TestSolveMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := matgen.WithCond(rng, 400, 100, 1e2, matgen.Geometric)
	p := matgen.NewLLSProblem(rng, a, 0.1)
	for _, m := range []RefineMethod{RefineCGLS, RefineLSQR, RefineClassical, RefineNone} {
		sol, err := SolveLeastSquares(p.A, p.B, SolveOptions{QR: Config{Cutoff: 32}, Method: m, Tol: 1e-6})
		if err != nil {
			t.Fatalf("method %d: %v", m, err)
		}
		// All methods produce a usable solution; refined ones much better.
		limit := 1e-3
		if m == RefineNone {
			limit = 10
		}
		if sol.Optimality > limit {
			t.Errorf("method %d: optimality %g", m, sol.Optimality)
		}
	}
}

func TestLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := ToFloat32(matgen.WithCond(rng, 1024, 64, 1e6, matgen.Arithmetic))
	lr, err := LowRank(a, 16, Config{Cutoff: 32})
	if err != nil {
		t.Fatal(err)
	}
	if lr.Rank != 16 || lr.U.Cols != 16 || len(lr.S) != 16 || lr.V.Cols != 16 {
		t.Fatalf("rank bookkeeping: %d %d %d %d", lr.Rank, lr.U.Cols, len(lr.S), lr.V.Cols)
	}
	sigma := matgen.SingularValues(64, 1e6, matgen.Arithmetic)
	eOpt := 0.0
	var tail, tot float64
	for i, s := range sigma {
		tot += s * s
		if i >= 16 {
			tail += s * s
		}
	}
	eOpt = math.Sqrt(tail / tot)
	if e := lr.Error(a); e > eOpt*1.02+1e-3 {
		t.Errorf("rank-16 error %g vs optimal %g", e, eOpt)
	}
	// Reconstruct has the right shape and is close to A for high rank.
	full, err := LowRank(a, 64, Config{Cutoff: 32})
	if err != nil {
		t.Fatal(err)
	}
	rec := full.Reconstruct()
	if rec.Rows != 1024 || rec.Cols != 64 {
		t.Fatal("reconstruct shape")
	}
	if e := full.Error(a); e > 5e-3 {
		t.Errorf("full-rank error %g", e)
	}
	// Invalid rank.
	if _, err := LowRank(a, 0, Config{}); err == nil {
		t.Error("rank 0 must be rejected")
	}
	// Oversized rank clamps.
	if lr2, err := LowRank(a, 1000, Config{Cutoff: 32}); err != nil || lr2.Rank != 64 {
		t.Errorf("rank clamp: %v %d", err, lr2.Rank)
	}
}

func TestSingularValues(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := ToFloat32(matgen.WithCond(rng, 256, 32, 100, matgen.Geometric))
	s, err := SingularValues(a, Config{Cutoff: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 32 {
		t.Fatalf("%d singular values", len(s))
	}
	if math.Abs(float64(s[0])-1) > 1e-2 || math.Abs(float64(s[31])-0.01) > 1e-3 {
		t.Errorf("spectrum endpoints %v %v", s[0], s[31])
	}
}

func TestEngineStatsAndOverflowPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := ToFloat32(matgen.BadlyScaled(rng, 384, 96, 7))
	// With scaling (default): no overflows, no hazards.
	f, err := Factorize(a, Config{Cutoff: 32})
	if err != nil {
		t.Fatal(err)
	}
	if f.EngineStats.Overflows != 0 {
		t.Errorf("scaled factorization overflowed %d times", f.EngineStats.Overflows)
	}
	if len(f.Hazards) != 0 {
		t.Errorf("scaled factorization reported hazards: %v", f.Hazards)
	}
	// Without scaling, the fp16 operands overflow; HazardFail (default)
	// turns that into a typed error instead of NaN factors.
	_, err = Factorize(a, Config{Cutoff: 32, DisableColumnScaling: true})
	if err == nil {
		t.Fatal("expected a typed error for unscaled overflow")
	}
	if !errors.Is(err, ErrOverflow) && !errors.Is(err, ErrBreakdown) {
		t.Errorf("unscaled overflow: got %v, want ErrOverflow or ErrBreakdown", err)
	}
	// HazardFallback recovers by re-enabling scaling and reports the retry.
	f2, err := Factorize(a, Config{Cutoff: 32, DisableColumnScaling: true, OnHazard: HazardFallback})
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Hazards) == 0 {
		t.Fatal("fallback recovery should report hazards")
	}
	if be := f2.BackwardError(a); be > 5e-3 {
		t.Errorf("recovered backward error %g", be)
	}
	if f2.ColumnScales == nil {
		t.Error("recovery should have re-enabled column scaling")
	}
}

func TestFactorizeRejectsWide(t *testing.T) {
	if _, err := Factorize(NewMatrix32(3, 5), Config{}); err == nil {
		t.Error("wide input must be rejected")
	}
}

func TestUseBFloat16(t *testing.T) {
	a := testMatrix(9, 384, 128, 100)
	bf, err := Factorize(a, Config{Cutoff: 32, UseBFloat16: true})
	if err != nil {
		t.Fatal(err)
	}
	fp16, err := Factorize(a, Config{Cutoff: 32})
	if err != nil {
		t.Fatal(err)
	}
	if bf.EngineStats.GemmCalls == 0 {
		t.Error("BF16 engine stats missing")
	}
	// The bfloat16 engine is coarser than the fp16 one.
	if bf.BackwardError(a) < fp16.BackwardError(a) {
		t.Errorf("BF16 error (%g) should exceed FP16 error (%g)",
			bf.BackwardError(a), fp16.BackwardError(a))
	}
	// DisableTensorCore wins over UseBFloat16.
	plain, err := Factorize(a, Config{Cutoff: 32, UseBFloat16: true, DisableTensorCore: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.EngineStats.GemmCalls != 0 {
		t.Error("FP32 run should not report engine stats")
	}
	if plain.BackwardError(a) > 1e-5 {
		t.Errorf("FP32 backward error %g", plain.BackwardError(a))
	}
}

func TestSolveLinearSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 128
	a := matgen.Normal(rng, n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n)/4) // diagonally dominant
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			b[i] += a.At(i, j) * xTrue[j]
		}
	}
	res, err := SolveLinearSystem(a, b, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %v", res.ResidualNorms)
	}
	for i := range xTrue {
		if math.Abs(res.X[i]-xTrue[i]) > 1e-9 {
			t.Fatalf("x[%d] off by %g", i, math.Abs(res.X[i]-xTrue[i]))
		}
	}
	if res.GrowthFactor <= 0 {
		t.Error("growth factor missing")
	}
	// FP32 engine converges in fewer (or equal) refinement steps.
	resFP, err := SolveLinearSystem(a, b, Config{DisableTensorCore: true})
	if err != nil {
		t.Fatal(err)
	}
	if resFP.Iterations > res.Iterations {
		t.Errorf("FP32 LU (%d iters) should not need more refinement than TC (%d)", resFP.Iterations, res.Iterations)
	}
	// BFloat16 engine also reaches double precision, with more iterations
	// than FP16 (coarser factors precondition worse).
	resBF, err := SolveLinearSystem(a, b, Config{UseBFloat16: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resBF.Converged {
		t.Error("BF16 LU+IR did not converge")
	}
	if resBF.Iterations < res.Iterations {
		t.Errorf("BF16 (%d iters) should need at least as many as FP16 (%d)", resBF.Iterations, res.Iterations)
	}
}

func TestSolveLeastSquaresMulti(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := matgen.WithCond(rng, 384, 96, 1e2, matgen.Arithmetic)
	b := matgen.Normal(rng, 384, 4)
	res, err := SolveLeastSquaresMulti(a, b, SolveOptions{QR: Config{Cutoff: 32}})
	if err != nil {
		t.Fatal(err)
	}
	if res.X.Rows != 96 || res.X.Cols != 4 {
		t.Fatalf("X shape %dx%d", res.X.Rows, res.X.Cols)
	}
	for j := 0; j < 4; j++ {
		if !res.Converged[j] {
			t.Errorf("rhs %d unconverged after %d iters", j, res.Iterations[j])
		}
		if opt := accuracy.LLSOptimality(a, res.X.Col(j), b.Col(j)); opt > 1e-9 {
			t.Errorf("rhs %d optimality %g", j, opt)
		}
	}
	if res.Factorization == nil || res.Factorization.Q == nil {
		t.Error("shared factorization missing")
	}
}

func TestSymmetricEigen(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// A = U·diag(λ)·Uᵀ with known spectrum.
	lambda := []float64{-2, 0.5, 1, 3, 10}
	u := matgen.HaarOrthonormal(rng, 5, 5)
	a := NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			var s float64
			for k := 0; k < 5; k++ {
				s += u.At(i, k) * lambda[k] * u.At(j, k)
			}
			a.Set(i, j, s)
		}
	}
	dec, err := SymmetricEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range lambda {
		if math.Abs(dec.Values[i]-want) > 1e-10 {
			t.Errorf("λ_%d = %v, want %v", i, dec.Values[i], want)
		}
	}
	if dec.Vectors.Rows != 5 || dec.Vectors.Cols != 5 {
		t.Error("vectors shape")
	}
}

func TestRayleighRitz(t *testing.T) {
	// Diagonal operator; basis = leading coordinate directions: Ritz
	// values must equal the corresponding eigenvalues exactly.
	q := NewMatrix32(10, 3)
	q.Set(0, 0, 1)
	q.Set(1, 1, 1)
	q.Set(2, 2, 1)
	diag := []float64{9, 7, 5, 1, 1, 1, 1, 1, 1, 1}
	apply := func(dst, src []float64) {
		for i := range dst {
			dst[i] = diag[i] * src[i]
		}
	}
	ritz, err := RayleighRitz(q, apply)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{9, 7, 5}
	for i := range want {
		if math.Abs(ritz[i]-want[i]) > 1e-12 {
			t.Errorf("ritz[%d] = %v, want %v", i, ritz[i], want[i])
		}
	}
	if _, err := RayleighRitz(NewMatrix32(5, 0), apply); err == nil {
		t.Error("empty basis must be rejected")
	}
}
