package tcqr

import (
	"tcqr/internal/accuracy"
	"tcqr/internal/rgs"
	"tcqr/internal/tcsim"
)

// Factorization is a thin QR factorization A = Q·R with Q (m×n) having
// orthonormal columns and R (n×n) upper triangular.
type Factorization struct {
	Q *Matrix32
	R *Matrix32
	// ColumnScales are the power-of-two scales applied per column by the
	// overflow safeguard (nil if scaling was disabled). R is already
	// expressed for the unscaled A.
	ColumnScales []float32
	// Reorthogonalized records whether the second orthogonalization pass
	// ran.
	Reorthogonalized bool
	// EngineStats summarizes the neural-engine work (zero value when the
	// engine was disabled).
	EngineStats EngineStats
}

// Factorize computes the RGSQRF factorization of a (m×n, m >= n) on the
// simulated neural engine. The input is not modified.
func Factorize(a *Matrix32, cfg Config) (*Factorization, error) {
	opts, st := cfg.options()
	res, err := rgs.Factor(a, opts)
	if err != nil {
		return nil, err
	}
	f := &Factorization{
		Q:                res.Q,
		R:                res.R,
		ColumnScales:     res.ColumnScales,
		Reorthogonalized: res.Reorthogonalized,
	}
	if st != nil {
		s := st.Stats()
		f.EngineStats = EngineStats{GemmCalls: s.Calls, Flops: s.Flops, Overflows: s.Overflows, Underflows: s.Underflow}
	}
	return f, nil
}

// Orthonormalize returns an orthonormal basis for the columns of a,
// applying re-orthogonalization so the result is orthogonal to working
// precision regardless of κ(A) — the Section 3.3 application.
func Orthonormalize(a *Matrix32, cfg Config) (*Matrix32, error) {
	cfg.ReOrthogonalize = true
	f, err := Factorize(a, cfg)
	if err != nil {
		return nil, err
	}
	return f.Q, nil
}

// BackwardError returns ‖A − QR‖_F/‖A‖_F of the factorization against the
// original matrix, evaluated in float64 (the Figure 3 metric).
func (f *Factorization) BackwardError(a *Matrix32) float64 {
	return accuracy.BackwardError(a, f.Q, f.R)
}

// OrthogonalityError returns ‖I − QᵀQ‖_F in float64 (the Figure 4 metric).
func (f *Factorization) OrthogonalityError() float64 {
	return accuracy.OrthoError(f.Q)
}

// compile-time checks that both engines satisfy the internal interface the
// Config wiring relies on.
var (
	_ tcsim.Engine = (*tcsim.TensorCore)(nil)
	_ tcsim.Engine = (*tcsim.FP32)(nil)
)
