package tcqr

import (
	"errors"
	"fmt"
	"sync/atomic"

	"tcqr/internal/accuracy"
	"tcqr/internal/hazard"
	"tcqr/internal/rgs"
	"tcqr/internal/tcsim"
)

// Factorization is a thin QR factorization A = Q·R with Q (m×n) having
// orthonormal columns and R (n×n) upper triangular.
type Factorization struct {
	Q *Matrix32
	R *Matrix32
	// ColumnScales are the power-of-two scales applied per column by the
	// overflow safeguard (nil if scaling was disabled). R is already
	// expressed for the unscaled A.
	ColumnScales []float32
	// Reorthogonalized records whether the second orthogonalization pass
	// ran.
	Reorthogonalized bool
	// EngineStats summarizes the neural-engine work (zero value when the
	// engine was disabled).
	EngineStats EngineStats
	// Hazards lists every numerical hazard detected during the
	// factorization and, under HazardFallback, every recovery taken (panel
	// escalations, engine retries). Empty for a clean run.
	Hazards []Hazard
	// TSQR reports the block/tree shape and per-stage timings when the
	// factorization ran through the parallel Direct TSQR pipeline
	// (FactorizeTall); nil for serial factorizations.
	TSQR *TSQRInfo

	// view memoizes the internal solver view (see inner): the view itself
	// caches derived data — notably R widened to float64 — that must persist
	// across solves reusing this factorization.
	view atomic.Pointer[rgs.Result]
}

// Factorize computes the RGSQRF factorization of a (m×n, m >= n) on the
// simulated neural engine. The input is not modified.
//
// Inputs containing NaN or Inf are rejected with an error wrapping
// ErrNonFinite; nil or zero-sized inputs with ErrEmpty; wide inputs with
// ErrShape. Numerical hazards during the factorization — fp16 engine
// overflow, panel breakdown — follow cfg.OnHazard: under HazardFail they
// return errors wrapping ErrOverflow / ErrBreakdown / ErrNonFinite, under
// HazardFallback the computation retries along the fallback ladder and
// reports what happened in Factorization.Hazards.
func Factorize(a *Matrix32, cfg Config) (*Factorization, error) {
	if err := hazard.CheckMatrix("A", a); err != nil {
		return nil, fmt.Errorf("tcqr: %w", err)
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("tcqr: matrix is %dx%d; RGSQRF requires m >= n: %w", a.Rows, a.Cols, ErrShape)
	}
	rep := &hazard.Report{}
	f, err := factorizeOnce(a, cfg, rep)
	if err != nil && cfg.OnHazard == HazardFallback {
		for _, r := range engineLadder(cfg, err) {
			rep.Record(hazard.Event{
				Kind:   classify(err),
				Stage:  "factorize",
				Detail: err.Error(),
				Action: r.action,
			})
			f, err = factorizeOnce(a, r.cfg, rep)
			if err == nil {
				break
			}
		}
	}
	if err != nil {
		return nil, err
	}
	f.Hazards = rep.Events()
	return f, nil
}

// factorizeOnce runs one rung of the engine ladder: build the engine and
// panel for cfg, factor, collect statistics, and verify the factors are
// finite. Engine overflow with finite factors is recorded as a
// detection-only event; overflow followed by a failure or non-finite factors
// becomes an error wrapping ErrOverflow.
func factorizeOnce(a *Matrix32, cfg Config, rep *hazard.Report) (*Factorization, error) {
	opts, st := cfg.options(rep)
	res, err := rgs.Factor(a, opts)
	var stats tcsim.Stats
	if st != nil {
		stats = st.Stats()
	}
	if err != nil {
		if stats.Overflows > 0 {
			return nil, fmt.Errorf("tcqr: after %d fp16 overflow events: %w: %w", stats.Overflows, ErrOverflow, err)
		}
		return nil, err
	}
	f := &Factorization{
		Q:                res.Q,
		R:                res.R,
		ColumnScales:     res.ColumnScales,
		Reorthogonalized: res.Reorthogonalized,
		EngineStats: EngineStats{
			GemmCalls:  stats.Calls,
			Flops:      stats.Flops,
			Overflows:  stats.Overflows,
			Underflows: stats.Underflow,
		},
	}
	if !hazard.MatrixFinite(f.Q) || !hazard.MatrixFinite(f.R) {
		if stats.Overflows > 0 {
			return nil, fmt.Errorf("tcqr: factors are non-finite after %d fp16 overflow events: %w: %w",
				stats.Overflows, ErrOverflow, ErrNonFinite)
		}
		return nil, fmt.Errorf("tcqr: factors are non-finite: %w", ErrNonFinite)
	}
	if stats.Overflows > 0 {
		rep.Record(hazard.Event{
			Kind:   hazard.KindOverflow,
			Stage:  "engine",
			Detail: fmt.Sprintf("%d fp16 overflow events during operand rounding", stats.Overflows),
			Action: "factors finite; no action",
		})
	}
	return f, nil
}

// rung is one step of the engine fallback ladder: a modified configuration
// and the action string recorded when it is tried.
type rung struct {
	cfg    Config
	action string
}

// engineLadder builds the recovery sequence for cfg given the error that
// tripped the fallback. Rungs accumulate: once scaling is re-enabled it
// stays on for every later rung. A plain-TC configuration first retries on
// the error-corrected TensorCore (tc-ec) — fp32-grade accuracy while still
// on the tensor-core simulant — except when the trigger was fp16 overflow:
// tc-ec splits into fp16 halves and shares the fp16 exponent range, so it
// cannot fix what bfloat16 or FP32 can. The precedence order in engineFor
// (UseBFloat16 > UseTCEC) means later rungs simply layer on top.
func engineLadder(cfg Config, err error) []rung {
	var out []rung
	c := cfg
	if c.DisableColumnScaling {
		c.DisableColumnScaling = false
		out = append(out, rung{c, "retry with column scaling"})
	}
	if !c.DisableTensorCore && !c.UseBFloat16 && !c.UseTCEC && !errors.Is(err, ErrOverflow) {
		c.UseTCEC = true
		out = append(out, rung{c, "retry with error-corrected tensorcore engine"})
	}
	if !c.DisableTensorCore && !c.UseBFloat16 {
		c.UseBFloat16 = true
		out = append(out, rung{c, "retry with bfloat16 engine"})
	}
	if !c.DisableTensorCore {
		c.DisableTensorCore = true
		out = append(out, rung{c, "retry with fp32 engine"})
	}
	return out
}

// classify maps a factorization error to the hazard kind recorded in the
// fallback events.
func classify(err error) HazardKind {
	switch {
	case errors.Is(err, ErrOverflow):
		return hazard.KindOverflow
	case errors.Is(err, ErrBreakdown):
		return hazard.KindBreakdown
	case errors.Is(err, ErrPrecisionLoss):
		return hazard.KindPrecisionLoss
	default:
		return hazard.KindNonFinite
	}
}

// Orthonormalize returns an orthonormal basis for the columns of a,
// applying re-orthogonalization so the result is orthogonal to working
// precision regardless of κ(A) — the Section 3.3 application.
func Orthonormalize(a *Matrix32, cfg Config) (*Matrix32, error) {
	cfg.ReOrthogonalize = true
	f, err := Factorize(a, cfg)
	if err != nil {
		return nil, err
	}
	return f.Q, nil
}

// BackwardError returns ‖A − QR‖_F/‖A‖_F of the factorization against the
// original matrix, evaluated in float64 (the Figure 3 metric).
func (f *Factorization) BackwardError(a *Matrix32) float64 {
	return accuracy.BackwardError(a, f.Q, f.R)
}

// OrthogonalityError returns ‖I − QᵀQ‖_F in float64 (the Figure 4 metric).
func (f *Factorization) OrthogonalityError() float64 {
	return accuracy.OrthoError(f.Q)
}

// inner reconstructs the internal factorization view used to reuse a public
// Factorization with the internal solvers. The view is built once and
// cached: it carries the memoized float64 widening of R, so repeated solves
// against the same factorization (the serving cache-hit path) skip the n×n
// conversion. Q and R must not be mutated after the first solve.
func (f *Factorization) inner() *rgs.Result {
	if r := f.view.Load(); r != nil {
		return r
	}
	r := &rgs.Result{Q: f.Q, R: f.R, ColumnScales: f.ColumnScales, Reorthogonalized: f.Reorthogonalized}
	f.view.CompareAndSwap(nil, r)
	return f.view.Load()
}

// compile-time checks that both engines satisfy the internal interface the
// Config wiring relies on.
var (
	_ tcsim.Engine = (*tcsim.TensorCore)(nil)
	_ tcsim.Engine = (*tcsim.BFloat16)(nil)
	_ tcsim.Engine = (*tcsim.TCEC)(nil)
	_ tcsim.Engine = (*tcsim.FP32)(nil)
)
