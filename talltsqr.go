package tcqr

import (
	"fmt"
	"time"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/hazard"
	"tcqr/internal/rgs"
	"tcqr/internal/tsqr"
)

// TallOptions shapes the parallel Direct TSQR pipeline (FactorizeTall).
type TallOptions struct {
	// BlockRows is the canonical row-chunk height of the numerical
	// partition (0 = tsqr.DefaultBlockRows). It is part of the result's
	// identity: runs agree bit-for-bit exactly when BlockRows agrees.
	BlockRows int
	// Workers bounds concurrent block factorizations (<= 0 = GOMAXPROCS).
	// Scheduling only — never changes result bits.
	Workers int
}

// TSQRInfo reports the block/tree shape and per-stage wall timings of a
// FactorizeTall run, mirrored from tsqr.Stats. When ReOrthogonalize ran,
// the timings cover the first pass (the second pass repeats the same
// pipeline on the computed Q).
type TSQRInfo struct {
	// Blocks is the leaf row-block count of the canonical partition.
	Blocks int
	// Levels is the R-reduction tree depth (0 for a single block).
	Levels int
	// Workers is the effective scheduling bound.
	Workers int
	// BlockRows is the effective canonical chunk height.
	BlockRows int
	// BlockFactor holds per-block factorization wall times, by block index.
	BlockFactor []time.Duration
	// Reduce is the wall time of the R reduction tree.
	Reduce time.Duration
	// Recover is the wall time of sign canonicalization + explicit-Q
	// recovery.
	Recover time.Duration
}

// FactorizeTall computes the same factorization contract as Factorize —
// A = Q·R, hazard-typed errors, OnHazard fallback semantics — through the
// parallel Direct TSQR pipeline: row blocks factorized concurrently, R
// factors tree-reduced with sign canonicalization, explicit Q recovered by
// batched GEMM (see internal/tsqr).
//
// Numerical differences from Factorize: all GEMMs run in FP32 (the
// half-precision engine ablations do not apply, so EngineStats stays zero
// and fp16 overflow hazards cannot occur), and R carries a non-negative
// diagonal by construction. Panel selection, column scaling, and the
// breakdown escalation ladder are shared with the serial path. The result
// backs solves exactly like a serial Factorization.
func FactorizeTall(a *Matrix32, opt TallOptions, cfg Config) (*Factorization, error) {
	if err := hazard.CheckMatrix("A", a); err != nil {
		return nil, fmt.Errorf("tcqr: %w", err)
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("tcqr: matrix is %dx%d; TSQR requires m >= n: %w", a.Rows, a.Cols, ErrShape)
	}
	rep := &hazard.Report{}
	f, err := factorizeTallOnce(a, opt, cfg, rep)
	if err != nil && cfg.OnHazard == HazardFallback && cfg.DisableColumnScaling {
		// The TSQR pipeline is already all-FP32, so of the serial engine
		// ladder only the column-scaling rung can change its outcome; the
		// panel escalation ladder ran inside each block via panelFor.
		rep.Record(hazard.Event{
			Kind:   classify(err),
			Stage:  "factorize",
			Detail: err.Error(),
			Action: "retry with column scaling",
		})
		c := cfg
		c.DisableColumnScaling = false
		f, err = factorizeTallOnce(a, opt, c, rep)
	}
	if err != nil {
		return nil, err
	}
	f.Hazards = rep.Events()
	return f, nil
}

// factorizeTallOnce runs one TSQR pass: scale columns, factor through
// internal/tsqr with the cfg-selected panel, unscale R, optionally
// re-orthogonalize, and validate finiteness.
func factorizeTallOnce(a *Matrix32, opt TallOptions, cfg Config, rep *hazard.Report) (*Factorization, error) {
	w := a
	var scales []float32
	if !cfg.DisableColumnScaling {
		w = a.Clone()
		scales = rgs.ScaleColumns(w)
	}
	topts := tsqr.Options{
		BlockRows: opt.BlockRows,
		Workers:   opt.Workers,
		Panel:     cfg.panelFor(rep),
	}
	res, err := tsqr.Factor(w, topts)
	if err != nil {
		return nil, err
	}
	q, r := res.Q, res.R
	if scales != nil {
		// A·P = Q·(R·P) was factored; unscale the columns of R (exact —
		// powers of two). Sign canonicalization commutes with the positive
		// scales, so the diagonal stays non-negative.
		for j := 0; j < r.Cols; j++ {
			if scales[j] != 1 {
				blas.Scal(1/scales[j], r.Col(j)[:j+1])
			}
		}
	}

	if cfg.ReOrthogonalize {
		// "Twice is enough": factor the computed Q through the same
		// pipeline (its columns are already ~unit norm, so no scaling) and
		// fold R₂ into R.
		second, err := tsqr.Factor(q, topts)
		if err != nil {
			return nil, err
		}
		n := r.Cols
		newR := dense.New[float32](n, n)
		blas.Gemm(blas.NoTrans, blas.NoTrans, 1, second.R, r, 0, newR)
		for j := 0; j < n; j++ {
			col := newR.Col(j)
			for i := j + 1; i < n; i++ {
				if col[i] != 0 {
					return nil, fmt.Errorf("tcqr: re-orthogonalization broke triangularity at (%d,%d): %w", i, j, ErrBreakdown)
				}
			}
		}
		q, r = second.Q, newR
	}

	f := &Factorization{
		Q:                q,
		R:                r,
		ColumnScales:     scales,
		Reorthogonalized: cfg.ReOrthogonalize,
		TSQR: &TSQRInfo{
			Blocks:      res.Blocks,
			Levels:      res.Levels,
			Workers:     res.Stats.Workers,
			BlockRows:   res.Stats.BlockRows,
			BlockFactor: res.BlockFactor,
			Reduce:      res.Reduce,
			Recover:     res.Stats.Recover,
		},
	}
	if !hazard.MatrixFinite(f.Q) || !hazard.MatrixFinite(f.R) {
		return nil, fmt.Errorf("tcqr: factors are non-finite: %w", ErrNonFinite)
	}
	return f, nil
}
