# Developer entry points. The Go toolchain is the only dependency.

GO ?= go

.PHONY: build check check-race check-deep fuzz bench bench-json clean

build:
	$(GO) build ./...

# Tier-1 verification: everything must build and pass.
check:
	$(GO) vet ./...
	$(GO) test ./...

# Tier-2 verification: vet plus the full suite under the race detector
# (the packed GEMM parallelizes over C tiles; this is the gate for it).
check-race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Short native-fuzz smoke of the format round trips and the packed GEMM
# golden property. Each package holds exactly one fuzz target.
fuzz:
	$(GO) test -run '^$$' -fuzz . -fuzztime 10s ./internal/f16
	$(GO) test -run '^$$' -fuzz . -fuzztime 10s ./internal/bf16
	$(GO) test -run '^$$' -fuzz . -fuzztime 10s ./internal/blas

# Deep verification: race gate plus the fuzz smoke (what scripts/check.sh
# runs). Tier-1 `check` stays fast; this one takes ~a minute.
check-deep: check-race fuzz

# Kernel-layer benchmarks with allocation accounting.
bench:
	$(GO) test -run '^$$' -bench 'Gemm|Trsm|Engines|TrackSpecials' -benchmem ./internal/blas ./internal/tcsim

# Machine-readable benchmark report (BENCH_1.json).
bench-json:
	$(GO) run ./cmd/tcqr-bench -out BENCH_1.json

clean:
	$(GO) clean ./...
