# Developer entry points. The Go toolchain is the only dependency.

GO ?= go

.PHONY: build check check-race check-deep lint fuzz chaos cluster-soak \
	bench bench-json serve serve-smoke bench-serve-json bench-tsqr \
	bench-update bench-tcec clean

build:
	$(GO) build ./...

# Static analysis: vet always, staticcheck when installed (it is optional
# tooling; the lint target must not depend on a network fetch).
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck skipped: not installed"; \
	fi

# Tier-1 verification: everything must build and pass.
check:
	$(GO) vet ./...
	$(GO) test ./...

# Tier-2 verification: vet plus the full suite under the race detector
# (the packed GEMM parallelizes over C tiles; this is the gate for it).
check-race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Short native-fuzz smoke of the format round trips, the packed GEMM golden
# property, the tc-ec split/GEMM error-bound properties, the TSQR-vs-serial
# equivalence, and the serving decode paths. internal/serve and
# internal/tcsim hold two targets each, so those runs name their target; the
# single-target packages keep the unambiguous -fuzz=. form.
fuzz:
	$(GO) test -run '^$$' -fuzz . -fuzztime 10s ./internal/f16
	$(GO) test -run '^$$' -fuzz . -fuzztime 10s ./internal/bf16
	$(GO) test -run '^$$' -fuzz . -fuzztime 10s ./internal/blas
	$(GO) test -run '^$$' -fuzz . -fuzztime 10s ./internal/wirefmt
	$(GO) test -run '^$$' -fuzz '^FuzzTcEcSplitRoundTrip$$' -fuzztime 10s ./internal/tcsim
	$(GO) test -run '^$$' -fuzz '^FuzzGemmTcEcVsFP32$$' -fuzztime 10s ./internal/tcsim
	$(GO) test -run '^$$' -fuzz '^FuzzTSQRBlockVsSerial$$' -fuzztime 10s ./internal/tsqr
	$(GO) test -run '^$$' -fuzz '^FuzzRetryPolicy$$' -fuzztime 10s ./internal/serve
	$(GO) test -run '^$$' -fuzz '^FuzzStreamFrameDecode$$' -fuzztime 10s ./internal/serve

# Chaos/soak battery under the race detector: 64 concurrent clients against
# a seeded fault schedule (panics, delays, decode errors at every failpoint
# layer), plus the metamorphic no-silent-garbage property over the
# adversarial matrix battery, plus the spill-tier crash-consistency soak
# (torn writes and load faults during a mixed factorize/update/solve storm,
# then a restart that must quarantine exactly the torn files and rewarm the
# rest). See DESIGN.md §11 and §15.
chaos:
	$(GO) test -race -run 'TestChaosBattery|TestMetamorphicNoSilentGarbage|TestStreamChaosSoak|TestSpillChaosSoak' -v ./internal/serve

# Cluster-tier soak under the race detector: a seeded (deterministic)
# 3-node in-process cluster with every cluster.* failpoint armed, one node
# killed mid-wave. Asserts zero lost responses, every key resolvable via a
# survivor, flat warm-solve p99, and the forwarding accounting invariant.
# See DESIGN.md §14.
cluster-soak:
	$(GO) test -race -run 'TestClusterChaosSoak' -v ./internal/serve

# Deep verification: race gate, fuzz smoke, cluster soak, and the daemon
# end-to-end smoke (what scripts/check.sh runs). Tier-1 `check` stays fast;
# this one takes ~a minute.
check-deep: check-race fuzz cluster-soak serve-smoke

# Run the factorization-serving daemon on its default port.
serve:
	$(GO) run ./cmd/tcqrd

# End-to-end smoke of the daemon: build, start on an ephemeral port, drive
# the API (factorize, cache hit, coalesced solves, hazards, bad input),
# drain on SIGTERM.
serve-smoke:
	sh scripts/serve_smoke.sh

# Kernel-layer benchmarks with allocation accounting.
bench:
	$(GO) test -run '^$$' -bench 'Gemm|Trsm|Engines|TrackSpecials' -benchmem ./internal/blas ./internal/tcsim

# Machine-readable benchmark report (BENCH_1.json).
bench-json:
	$(GO) run ./cmd/tcqr-bench -out BENCH_1.json

# Serving-layer benchmark report (BENCH_6.json): JSON vs binary-frame
# encodings of the cold, cache-hit, and coalesced paths, swept across
# GOMAXPROCS 1/4/8 to expose the sharded hot path's multicore scaling.
bench-serve-json:
	$(GO) run ./cmd/tcqr-bench -out BENCH_6.json -bench 'Serve' -procs 1,4,8 \
		-notes "procs above num_cpu oversubscribe a single core; compare scaling against num_cpu, not the -cpu label" \
		./internal/serve

# Incremental-update benchmark report (BENCH_9.json): row-block QR append /
# downdate against refactorizing the stacked matrix at 4096×256 (the ≥10×
# gate holds at the 16-row block; the 64-row point records how the win decays
# toward n/k for fatter appends), plus the restart-rewarm hit-solve path,
# which must serve without a single cold factorization.
bench-update:
	$(GO) run ./cmd/tcqr-bench -out BENCH_9.json -bench 'UpdateVsRefactorize|RewarmedHitSolve' \
		-notes "UpdateAppend vs Refactorize at the same post-append shape gates the >=10x claim at the 16-row block; RewarmedHitSolve serves from a spill-rewarmed cache with zero backend factorizations" \
		. ./internal/serve

# Error-corrected engine benchmark report (BENCH_10.json): tc vs tc-ec vs
# bf16 vs fp32 GEMM cost at 512³ (Engines), plus the end-to-end
# factorization at the quick paper shape (TcEcFactorize). The factorize
# metrics carry the acceptance evidence: plain tc trips the panel quality
# gate (precision-escalations > 0) where tc-ec records zero at fp32-order
# backward error, and both keep fp32-panel-escalations = 0 — the hot path
# never leaves the tensor-core simulant. See DESIGN.md §16.
bench-tcec:
	$(GO) run ./cmd/tcqr-bench -out BENCH_10.json -bench 'Engines|TcEcFactorize' \
		-notes "tc-ec software cost is 3-4x tc (three packed fp16 passes per GEMM plus the operand split); the win is accuracy: at the 512x128 bench shape TcEcFactorize/tc trips the panel quality gate on all 4 panels (precision-escalations=4, backward-err ~2e-4 pre-recovery) where TcEcFactorize/tc-ec records precision-escalations=0 at fp32-order backward-err ~1e-7, and fp32-panel-escalations=0 for both proves recovery stays on the tensor-core simulant" \
		./internal/tcsim .

# TSQR benchmark report (BENCH_7.json): parallel row-blocked factorization
# vs the Workers=1 identical-bits schedule vs the serial RGS baseline,
# swept across GOMAXPROCS 1/4/8. On a single-core box every proc count
# shares one core, so the parallel path cannot beat serial there; the gate
# is zero serial regression, not a speedup number.
bench-tsqr:
	$(GO) run ./cmd/tcqr-bench -out BENCH_7.json -bench 'TSQR' -procs 1,4,8 \
		-notes "procs above num_cpu oversubscribe a single core; on such boxes parallel TSQR cannot beat the serial baseline and the gate is zero serial regression plus bit-identical factors" \
		./internal/tsqr

clean:
	$(GO) clean ./...
