module tcqr

go 1.22
