// Package tcqr is a Go reproduction of "High Accuracy Matrix Computations
// on Neural Engines: A Study of QR Factorization and its Applications"
// (Zhang, Baharlouei, Wu — HPDC 2020): a QR factorization that routes its
// floating point work through a (simulated) neural engine — a TensorCore-
// style unit that multiplies binary16 operands and accumulates in binary32
// — together with the safeguards that recover full accuracy:
//
//   - Factorize: the recursive Gram-Schmidt QR (RGSQRF, Algorithm 1) with a
//     communication-avoiding Gram-Schmidt panel (Section 3.1.3), automatic
//     column scaling against fp16 overflow (Section 3.5), and optional
//     re-orthogonalization (Section 3.3);
//   - SolveLeastSquares: the least squares pipeline of Algorithm 3 — a
//     half-precision QR used as a right preconditioner for CGLS, reaching
//     double-precision optimality in a handful of iterations;
//   - Orthonormalize: orthogonalization with "twice is enough"
//     re-orthogonalization;
//   - LowRank: optimal low-rank approximation by truncated QR-SVD
//     (Section 3.4).
//
// Because no physical neural engine is available to a pure-Go library, the
// half-precision unit is simulated bit-faithfully in software (package
// tcqr/internal/tcsim): operands are rounded to IEEE binary16 with
// round-to-nearest-even (saturating to ±Inf past 65504, the hazard column
// scaling protects against) and products are accumulated in float32,
// exactly the V100 TensorCore contract. Every algorithm can also run with
// the engine disabled (plain float32 GEMM) for the paper's ablations.
//
// Matrices are column-major with a leading-dimension stride, so LAPACK
// conventions transliterate directly. User-facing data is float64
// (tcqr.Matrix); the simulated device consumes float32 (tcqr.Matrix32),
// mirroring how the paper hands problems to the GPU.
package tcqr

import (
	"tcqr/internal/dense"
	"tcqr/internal/gram"
	"tcqr/internal/hazard"
	"tcqr/internal/rgs"
	"tcqr/internal/tcsim"
)

// Matrix is a column-major float64 dense matrix; element (i, j) lives at
// Data[i + j*Stride].
type Matrix = dense.Matrix[float64]

// Matrix32 is the float32 matrix type consumed by the simulated device.
type Matrix32 = dense.Matrix[float32]

// NewMatrix allocates a zeroed r×c float64 matrix.
func NewMatrix(r, c int) *Matrix { return dense.New[float64](r, c) }

// NewMatrix32 allocates a zeroed r×c float32 matrix.
func NewMatrix32(r, c int) *Matrix32 { return dense.New[float32](r, c) }

// FromColMajor wraps an existing column-major float64 slice (no copy).
func FromColMajor(r, c int, data []float64) *Matrix {
	return dense.NewFromColMajor(r, c, data)
}

// ToFloat32 narrows a float64 matrix to the device precision.
func ToFloat32(a *Matrix) *Matrix32 { return dense.ToF32(a) }

// ToFloat64 widens a float32 matrix back to float64.
func ToFloat64(a *Matrix32) *Matrix { return dense.ToF64(a) }

// MatrixHash64 returns a 64-bit content hash of a device matrix (shape plus
// every element, column-major), suitable as a factorization-cache key: two
// matrices hash equal exactly when Factorize would see identical inputs.
// Equivalent to a.Hash64(); see dense.Matrix.Hash64 for the hashing
// contract. Serving layers should combine it with a fingerprint of the
// Config used, since the factorization depends on both.
func MatrixHash64(a *Matrix32) uint64 { return a.Hash64() }

// PanelAlgorithm selects the panel factorizer used below the recursion
// cutoff — the Figure 6 ablation of the paper.
type PanelAlgorithm int

const (
	// PanelCAQR is the communication-avoiding Gram-Schmidt panel (default,
	// the paper's fast configuration).
	PanelCAQR PanelAlgorithm = iota
	// PanelHouseholder is the blocked Householder (cuSOLVER SGEQRF) panel.
	PanelHouseholder
	// PanelCholQR is Cholesky QR (Gram matrix + Potrf), the related-work
	// baseline of §3.6 — fastest, but breaks down once κ(A)² overwhelms
	// float32. Under HazardFallback a breakdown escalates to CholQR2, then
	// MGS, then Householder.
	PanelCholQR
	// PanelMGS is the plain single-tile modified Gram-Schmidt panel.
	PanelMGS
)

// Config controls the RGSQRF factorization. The zero value is the paper's
// recommended configuration: neural engine enabled, CAQR panel, cutoff 128,
// column scaling on.
type Config struct {
	// DisableTensorCore runs the split GEMMs in plain float32 instead of
	// the simulated neural engine (the Figure 7 ablation).
	DisableTensorCore bool
	// UseBFloat16 swaps the FP16 TensorCore for a TPU-style bfloat16
	// engine (§2.1 of the paper): ~10× coarser resolution but the full
	// float32 exponent range, so fp16-style overflow cannot occur.
	// Ignored when DisableTensorCore is set.
	UseBFloat16 bool
	// UseTCEC swaps the plain fp16 TensorCore for the error-corrected
	// engine (Ootomo–Yokota, arXiv 2203.03341): every fp32 operand is
	// split into an fp16 hi half plus a 2¹¹-shifted residual and the GEMM
	// runs as three TensorCore passes, recovering fp32-grade accuracy
	// (~2⁻²² elementwise vs ~2⁻¹¹) at 3× the TC GEMM count while staying
	// on the tensor-core simulant. The exponent range is still fp16's, so
	// the §3.5 overflow hazard — and the column-scaling safeguard — apply
	// unchanged. Precedence: DisableTensorCore > UseBFloat16 > UseTCEC.
	UseTCEC bool
	// TensorCoreInPanel additionally routes the panel's internal GEMMs
	// through the neural engine (the paper found this trades accuracy for
	// almost no speed and leaves it off).
	TensorCoreInPanel bool
	// Panel selects the panel algorithm at the recursion cutoff.
	Panel PanelAlgorithm
	// Cutoff is the recursion cutoff width (0 = 128, the paper's choice).
	Cutoff int
	// ReOrthogonalize runs the "twice is enough" second pass, restoring
	// ‖I − QᵀQ‖ to working precision for ill-conditioned inputs.
	ReOrthogonalize bool
	// DisableColumnScaling turns off the Section 3.5 overflow safeguard.
	DisableColumnScaling bool
	// OnHazard selects the response to detected numerical hazards. The zero
	// value (HazardFail) returns a typed error as soon as a hazard would
	// corrupt the result; HazardFallback recovers instead — escalating panel
	// algorithms on breakdown and retrying with column scaling, a bfloat16
	// engine, and finally plain FP32 on overflow — recording every step in
	// the result's Hazards.
	OnHazard HazardPolicy
}

// statser is satisfied by the engines that report work statistics.
type statser interface{ Stats() tcsim.Stats }

// options translates the public Config into the internal rgs.Options,
// materializing the engine so its statistics can be reported. Engines always
// track overflow/underflow events — the hazard layer needs them to classify
// failures, and counting is fused into the GEMM packing pass so it is nearly
// free. When rep is non-nil and the policy is HazardFallback, the panel is
// wrapped in the gram escalation ladder reporting to rep.
func (c Config) options(rep *hazard.Report) (rgs.Options, statser) {
	engine, st := c.engineFor(true)
	return rgs.Options{
		Engine:          engine,
		Panel:           c.panelFor(rep),
		Cutoff:          c.Cutoff,
		DisableScaling:  c.DisableColumnScaling,
		ReOrthogonalize: c.ReOrthogonalize,
	}, st
}

// engineFor materializes the engine c selects, honouring the precedence
// DisableTensorCore > UseBFloat16 > UseTCEC > TensorCore, together with a
// stats view for the engines that report work counters. Shared by the
// factorize, linear-solve and randomized-low-rank paths so every entry
// point resolves the engine identically.
func (c Config) engineFor(trackSpecials bool) (tcsim.Engine, statser) {
	switch {
	case c.DisableTensorCore:
		return &tcsim.FP32{}, nil
	case c.UseBFloat16:
		b := &tcsim.BFloat16{TrackSpecials: trackSpecials}
		return b, b
	case c.UseTCEC:
		t := &tcsim.TCEC{TrackSpecials: trackSpecials}
		return t, t
	default:
		t := &tcsim.TensorCore{TrackSpecials: trackSpecials}
		return t, t
	}
}

// panelEngine materializes the engine the panel's internal GEMMs run on:
// nil (plain fp32) unless the TensorCoreInPanel ablation is requested, in
// which case it follows the same precedence as engineFor.
func (c Config) panelEngine() tcsim.Engine {
	if !c.TensorCoreInPanel || c.DisableTensorCore {
		return nil
	}
	e, _ := c.engineFor(true)
	return e
}

// panelFor materializes the panel factorizer for c, wrapped in the gram
// escalation ladder (reporting to rep) under HazardFallback. Shared by the
// serial RGSQRF path (options) and the parallel TSQR path (FactorizeTall),
// so both select panels identically. TensorCoreInPanel applies to the CAQR
// panel (the paper's ablation) and to CholQR (whose Gram matrix is the most
// GEMM-friendly spot in the repertoire); under HazardFallback an
// engine-bearing plain-TC panel additionally gets the tc-ec recovery rung
// and the ladder's backward-error quality gate.
func (c Config) panelFor(rep *hazard.Report) gram.Panel {
	var panel gram.Panel
	switch c.Panel {
	case PanelHouseholder:
		panel = &gram.HouseholderPanel{}
	case PanelCholQR:
		panel = gram.CholQRPanel{Engine: c.panelEngine()}
	case PanelMGS:
		panel = gram.MGSPanel{}
	default:
		panel = &gram.CAQRPanel{Engine: c.panelEngine()}
	}
	if c.OnHazard == HazardFallback {
		panel = gram.NewLadder(panel, rep)
	}
	return panel
}

// EngineStats reports the work the simulated neural engine performed during
// a factorization.
type EngineStats struct {
	GemmCalls int64
	Flops     int64
	// Overflows/Underflows count fp16 (or bfloat16) conversion events during
	// operand rounding. An overflow means an operand saturated to ±Inf — the
	// hazard the §3.5 column scaling prevents.
	Overflows  int64
	Underflows int64
}
