package tcqr

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"tcqr/internal/accuracy"
)

// randBlock builds a k×n append block (k may be smaller than n, which
// testMatrix's conditioned generator cannot produce).
func randBlock(seed int64, k, n int, scale float64) *Matrix32 {
	rng := rand.New(rand.NewSource(seed))
	v := NewMatrix32(k, n)
	for j := 0; j < n; j++ {
		col := v.Col(j)
		for i := range col {
			col[i] = float32(scale * rng.NormFloat64())
		}
	}
	return v
}

// stack returns [top; bottom] for two float32 blocks with matching columns.
func stack(top, bottom *Matrix32) *Matrix32 {
	out := NewMatrix32(top.Rows+bottom.Rows, top.Cols)
	for j := 0; j < top.Cols; j++ {
		col := out.Col(j)
		copy(col, top.Col(j))
		copy(col[top.Rows:], bottom.Col(j))
	}
	return out
}

func TestUpdateAppendRowsMatchesRefactorize(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"fp32", Config{DisableTensorCore: true}},
		{"tensorcore", Config{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := testMatrix(42, 300, 64, 100)
			v := randBlock(43, 40, 64, 1)
			f, err := Factorize(a, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			up, err := UpdateAppendRows(f, v, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			full := stack(a, v)
			if up.Q.Rows != full.Rows || up.R.Cols != full.Cols {
				t.Fatalf("updated shape %dx%d", up.Q.Rows, up.R.Cols)
			}
			if !accuracy.UpperTriangular(up.R) {
				t.Error("updated R not upper triangular")
			}
			for j := 0; j < up.R.Cols; j++ {
				if up.R.At(j, j) < 0 {
					t.Errorf("R diagonal %d negative: %g", j, up.R.At(j, j))
				}
			}
			ref, err := Factorize(full, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			beUp, beRef := up.BackwardError(full), ref.BackwardError(full)
			if beUp > 2*beRef+1e-6 {
				t.Errorf("update backward error %g vs refactorize %g", beUp, beRef)
			}
			oeUp, oeOrig := up.OrthogonalityError(), f.OrthogonalityError()
			if oeUp > 2*oeOrig+1e-5 {
				t.Errorf("update orthogonality %g vs original %g", oeUp, oeOrig)
			}
		})
	}
}

func TestUpdateAppendRowRank1(t *testing.T) {
	a := testMatrix(7, 120, 32, 50)
	f, err := Factorize(a, Config{DisableTensorCore: true})
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float32, 32)
	for j := range row {
		row[j] = float32(j) - 15.5
	}
	up, err := UpdateAppendRow(f, row, Config{DisableTensorCore: true})
	if err != nil {
		t.Fatal(err)
	}
	v := NewMatrix32(1, 32)
	for j, x := range row {
		v.Set(0, j, x)
	}
	full := stack(a, v)
	if be := up.BackwardError(full); be > 1e-5 {
		t.Errorf("rank-1 update backward error %g", be)
	}
}

// TestUpdateAppendChain drives the serving scenario: a stream of row-block
// appends, each building on the previous update, must stay at factorization
// accuracy (no drift compounding across epochs).
func TestUpdateAppendChain(t *testing.T) {
	cfg := Config{DisableTensorCore: true}
	a := testMatrix(11, 200, 48, 20)
	f, err := Factorize(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := a
	for i := 0; i < 5; i++ {
		v := randBlock(int64(100+i), 16, 48, 1)
		f, err = UpdateAppendRows(f, v, cfg)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		full = stack(full, v)
	}
	ref, err := Factorize(full, cfg)
	if err != nil {
		t.Fatal(err)
	}
	beUp, beRef := f.BackwardError(full), ref.BackwardError(full)
	if beUp > 5*beRef+1e-6 {
		t.Errorf("chained update backward error %g vs refactorize %g", beUp, beRef)
	}
	if oe := f.OrthogonalityError(); oe > 1e-4 {
		t.Errorf("chained update orthogonality %g", oe)
	}
}

func TestUpdateRemoveRowsMatchesRefactorize(t *testing.T) {
	a := testMatrix(21, 200, 40, 10)
	v := randBlock(22, 30, 40, 1)
	full := stack(a, v)
	cfg := Config{DisableTensorCore: true}
	f, err := Factorize(full, cfg)
	if err != nil {
		t.Fatal(err)
	}
	down, err := UpdateRemoveRows(f, 30, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if down.Q.Rows != 200 || down.R.Cols != 40 {
		t.Fatalf("downdated shape %dx%d", down.Q.Rows, down.R.Cols)
	}
	if !accuracy.UpperTriangular(down.R) {
		t.Error("downdated R not upper triangular")
	}
	// The downdated factorization approximates A (the surviving rows as
	// reconstructed through the f32 factors, so tolerances are looser than
	// the append direction — Q recovery goes through R′⁻¹).
	if be := down.BackwardError(a); be > 1e-4 {
		t.Errorf("downdate backward error %g", be)
	}
	if oe := down.OrthogonalityError(); oe > 5e-3 {
		t.Errorf("downdate orthogonality %g", oe)
	}
}

// TestUpdateRoundTrip appends a block and immediately downdates it; the
// result must factor the original matrix.
func TestUpdateRoundTrip(t *testing.T) {
	cfg := Config{DisableTensorCore: true}
	a := testMatrix(31, 150, 24, 10)
	f, err := Factorize(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := randBlock(32, 20, 24, 1)
	up, err := UpdateAppendRows(f, v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UpdateRemoveRows(up, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if be := back.BackwardError(a); be > 1e-4 {
		t.Errorf("round-trip backward error %g", be)
	}
}

func TestUpdateValidation(t *testing.T) {
	a := testMatrix(41, 60, 12, 10)
	f, err := Factorize(a, Config{DisableTensorCore: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UpdateAppendRows(nil, NewMatrix32(1, 12), Config{}); !errors.Is(err, ErrEmpty) {
		t.Errorf("nil factorization: %v", err)
	}
	if _, err := UpdateAppendRows(f, nil, Config{}); !errors.Is(err, ErrEmpty) {
		t.Errorf("nil block: %v", err)
	}
	if _, err := UpdateAppendRows(f, NewMatrix32(2, 5), Config{}); !errors.Is(err, ErrShape) {
		t.Errorf("column mismatch: %v", err)
	}
	bad := NewMatrix32(1, 12)
	bad.Set(0, 3, float32(math.NaN()))
	if _, err := UpdateAppendRows(f, bad, Config{}); !errors.Is(err, ErrNonFinite) {
		t.Errorf("non-finite block: %v", err)
	}
	if _, err := UpdateAppendRow(f, make([]float32, 5), Config{}); !errors.Is(err, ErrShape) {
		t.Errorf("short row: %v", err)
	}
	if _, err := UpdateRemoveRows(f, 0, Config{}); !errors.Is(err, ErrShape) {
		t.Errorf("zero downdate: %v", err)
	}
	if _, err := UpdateRemoveRows(f, 55, Config{}); !errors.Is(err, ErrShape) {
		t.Errorf("downdate past the column count: %v", err)
	}
	if _, err := UpdateRemoveRows(nil, 1, Config{}); !errors.Is(err, ErrEmpty) {
		t.Errorf("nil downdate: %v", err)
	}
}

// TestUpdateAppendOverflowTyped: appending rows whose combined column mass
// exceeds float32 range cannot be represented in the device-precision R;
// under HazardFail that is a typed non-finite error.
func TestUpdateAppendOverflowTyped(t *testing.T) {
	a := testMatrix(51, 80, 8, 10)
	f, err := Factorize(a, Config{DisableTensorCore: true})
	if err != nil {
		t.Fatal(err)
	}
	v := NewMatrix32(2, 8)
	for j := 0; j < 8; j++ {
		v.Set(0, j, 3e38)
		v.Set(1, j, 3e38)
	}
	if _, err := UpdateAppendRows(f, v, Config{OnHazard: HazardFail}); !errors.Is(err, ErrNonFinite) {
		t.Errorf("overflowing append under HazardFail: %v", err)
	}
}

// TestDowndateBreakdown removes a row that carries essentially all of one
// column's mass: HazardFail returns the typed breakdown, HazardFallback
// refactorizes the surviving rows from scratch and records the recovery.
func TestDowndateBreakdown(t *testing.T) {
	// A = [[1, 0], [0, 1e-3], [0, 10]]: removing the last row leaves column
	// 2 with ~1e-8 of its mass — inside the f32 noise floor.
	a := NewMatrix32(3, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1e-3)
	a.Set(2, 1, 10)
	f, err := Factorize(a, Config{DisableTensorCore: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UpdateRemoveRows(f, 1, Config{OnHazard: HazardFail}); !errors.Is(err, ErrBreakdown) {
		t.Fatalf("breakdown downdate under HazardFail: %v", err)
	}
	down, err := UpdateRemoveRows(f, 1, Config{OnHazard: HazardFallback, DisableTensorCore: true})
	if err != nil {
		t.Fatalf("breakdown downdate under HazardFallback: %v", err)
	}
	if len(down.Hazards) == 0 {
		t.Fatal("fallback downdate recorded no hazards")
	}
	found := false
	for _, h := range down.Hazards {
		if h.Stage == "downdate" {
			found = true
		}
	}
	if !found {
		t.Errorf("no downdate-stage hazard recorded: %v", down.Hazards)
	}
	want := NewMatrix32(2, 2)
	want.Set(0, 0, 1)
	want.Set(1, 1, 1e-3)
	if be := down.BackwardError(want); be > 1e-5 {
		t.Errorf("fallback downdate backward error %g", be)
	}
}

// TestUpdateSolveWithFactor proves an updated factorization backs the
// library solver exactly like a fresh one (the serving /v1/update contract).
func TestUpdateSolveWithFactor(t *testing.T) {
	cfg := Config{DisableTensorCore: true}
	a := testMatrix(61, 160, 24, 10)
	v := randBlock(62, 16, 24, 1)
	f, err := Factorize(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	up, err := UpdateAppendRows(f, v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	full64 := ToFloat64(stack(a, v))
	b := make([]float64, full64.Rows)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	got, err := SolveLeastSquaresWithFactor(up, full64, b, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Factorize(stack(a, v), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SolveLeastSquaresWithFactor(ref, full64, b, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var diff, norm float64
	for i := range got.X {
		d := got.X[i] - want.X[i]
		diff += d * d
		norm += want.X[i] * want.X[i]
	}
	if math.Sqrt(diff/norm) > 1e-6 {
		t.Errorf("update-backed solve diverges from refactorize-backed solve: rel %g", math.Sqrt(diff/norm))
	}
}
