// Package faultinject is a deterministic failpoint registry: named sites
// threaded through the serving and compute stack that normally compile down
// to a single atomic nil-check, and can be armed — from a test or from
// tcqrd's -fault-spec flag — with a schedule of injected failures (typed
// errors, panics, latency, value corruption) driven by a seeded PRNG.
//
// The contract is determinism: the same spec (including its seed) produces
// the same activation decisions for the same per-site hit sequence. Every
// trigger draws from a per-site splitmix64 stream seeded by the global seed
// and the site name, and every firing is recorded in a sequenced event log,
// so a chaos run can be replayed exactly and a failure report can say "the
// 3rd hit of serve.cache.factorize panicked".
//
// Sites are plain strings owned by the package they instrument, following
// the naming scheme <package>.<component>.<operation> (DESIGN.md §11):
//
//	serve.pool.enqueue     serve.pool.dequeue    serve.cache.factorize
//	serve.coalesce.flush   serve.wire.decode     serve.wire.encode
//	serve.stream.append    gram.ladder.rung      tcsim.gemm
//	tsqr.block.factor      tsqr.tree.reduce
//	cluster.route          cluster.replicate     cluster.probe
//	cluster.handoff
//
// The package deliberately depends on nothing in the repository (std only),
// so any layer — hazard ladder, engine simulator, serving pool — can thread
// a site without an import cycle.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Action is what an armed site does when its trigger fires.
type Action int

const (
	// ActError returns a typed error from the site.
	ActError Action = iota
	// ActPanic panics at the site (the layers above must contain it).
	ActPanic
	// ActDelay sleeps for the configured duration, then proceeds normally.
	ActDelay
	// ActCorrupt runs the site's corruption hook (sites that produce values
	// rather than errors pass one to Corrupt; Fire ignores this action).
	ActCorrupt
)

// String names the action (stable: these appear in metrics labels).
func (a Action) String() string {
	switch a {
	case ActError:
		return "error"
	case ActPanic:
		return "panic"
	case ActDelay:
		return "delay"
	case ActCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// ErrInjected is the sentinel every ActError firing wraps, so callers and
// tests can recognize an injected failure with errors.Is.
var ErrInjected = errors.New("injected fault")

// Event records one firing: the global sequence number (1-based, across all
// sites), the site, the action taken, and the per-site hit index that
// triggered it.
type Event struct {
	Seq    int64
	Site   string
	Action Action
	Hit    int64
}

// String renders the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s hit=%d -> %s", e.Seq, e.Site, e.Hit, e.Action)
}

// Observer receives one callback per firing, inline at the site. Observers
// must be cheap and safe for concurrent use; the serving layer registers one
// to expose tcqrd_fault_injected_total on /metrics.
type Observer func(Event)

// rule is one armed site's parsed schedule.
type rule struct {
	action Action
	msg    string        // error/panic message (defaults to the site name)
	delay  time.Duration // ActDelay sleep

	// Trigger: fire when (every/once position matches) && (PRNG draw < prob)
	// && fewer than maxFires firings so far. Zero values mean "always".
	prob     float64 // 0 = no probability gate
	every    int64   // fire on hits every, 2*every, ... (0 = every hit)
	once     int64   // fire exactly once, on hit #once (0 = disabled)
	maxFires int64   // cap on total firings (0 = unbounded)

	mu    sync.Mutex
	hits  int64
	fires int64
	rng   uint64 // splitmix64 state, seeded from global seed + site name
}

// registry is one armed configuration. Arm swaps a whole registry in
// atomically, so a disarmed process pays exactly one atomic load per site.
type registry struct {
	seed  uint64
	rules map[string]*rule

	seq    atomic.Int64
	mu     sync.Mutex
	events []Event // bounded at maxEvents; counters keep going past it
	counts map[string]int64
}

// maxEvents bounds the replay log so a soak run cannot grow it without
// bound; firings past the bound are still counted and observed.
const maxEvents = 4096

var (
	armed     atomic.Pointer[registry]
	armMu     sync.Mutex // serializes Arm/Disarm
	observers atomic.Pointer[[]observerEntry]
	obsMu     sync.Mutex
	obsID     int64
)

type observerEntry struct {
	id int64
	fn Observer
}

// Arm parses spec and installs it as the process-wide fault schedule,
// replacing any previous one. The grammar (DESIGN.md §11):
//
//	spec    := term { ';' term }
//	term    := "seed=" uint64 | site '=' rule
//	rule    := action [ '(' arg ')' ] [ '@' cond { ',' cond } ]
//	action  := "error" | "panic" | "delay" | "corrupt"
//	arg     := message (error, panic) | Go duration (delay)
//	cond    := "p=" float | "every=" n | "once=" n | "count=" n
//
// Example:
//
//	seed=42;serve.cache.factorize=panic@every=3;serve.wire.decode=error@p=0.25;serve.coalesce.flush=delay(2ms)@once=5
//
// An omitted seed defaults to 1. A rule with no conditions fires on every
// hit. Arm returns an error (leaving the previous schedule in place) if the
// spec does not parse.
func Arm(spec string) error {
	r, err := parseSpec(spec)
	if err != nil {
		return err
	}
	armMu.Lock()
	armed.Store(r)
	armMu.Unlock()
	return nil
}

// Disarm removes the fault schedule; every site reverts to its zero-cost
// no-op path. Idempotent.
func Disarm() {
	armMu.Lock()
	armed.Store(nil)
	armMu.Unlock()
}

// Armed reports whether a fault schedule is installed.
func Armed() bool { return armed.Load() != nil }

// Sites returns the armed site names in sorted order (nil when disarmed).
func Sites() []string {
	r := armed.Load()
	if r == nil {
		return nil
	}
	out := make([]string, 0, len(r.rules))
	for s := range r.rules {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Events returns a copy of the firing log (bounded at 4096 entries) of the
// currently armed schedule, in firing order.
func Events() []Event {
	r := armed.Load()
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Counts returns per-site firing counts of the currently armed schedule.
func Counts() map[string]int64 {
	r := armed.Load()
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}

// InjectedTotal returns the total number of firings across all sites of the
// currently armed schedule.
func InjectedTotal() int64 {
	r := armed.Load()
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// RegisterObserver adds fn to the firing observer list and returns an
// idempotent unregister function. Observers survive Arm/Disarm cycles.
func RegisterObserver(fn Observer) (unregister func()) {
	obsMu.Lock()
	defer obsMu.Unlock()
	obsID++
	id := obsID
	var cur []observerEntry
	if p := observers.Load(); p != nil {
		cur = *p
	}
	next := make([]observerEntry, len(cur), len(cur)+1)
	copy(next, cur)
	next = append(next, observerEntry{id: id, fn: fn})
	observers.Store(&next)
	return func() {
		obsMu.Lock()
		defer obsMu.Unlock()
		old := observers.Load()
		if old == nil {
			return
		}
		repl := make([]observerEntry, 0, len(*old))
		for _, e := range *old {
			if e.id != id {
				repl = append(repl, e)
			}
		}
		if len(repl) == 0 {
			observers.Store(nil)
			return
		}
		observers.Store(&repl)
	}
}

// Fire evaluates site against the armed schedule. Disarmed or inactive it
// returns nil at the cost of one atomic load. When the site's trigger fires:
// an error rule returns the injected error (wrapping ErrInjected), a panic
// rule panics, a delay rule sleeps and returns nil, and a corrupt rule is
// ignored (value-producing sites use Corrupt instead).
func Fire(site string) error {
	r := armed.Load()
	if r == nil {
		return nil
	}
	return r.fire(site, nil)
}

// Corrupt evaluates site like Fire, but a corrupt rule runs hook (which
// mutates the site's output in place — e.g. poisoning a GEMM result with
// NaN) instead of being ignored. Error rules are ignored here: a site that
// calls Corrupt has no error channel to return one through. Panic and delay
// behave as in Fire.
func Corrupt(site string, hook func()) {
	r := armed.Load()
	if r == nil {
		return
	}
	_ = r.fire(site, hook)
}

// fire is the shared evaluation path. hook non-nil marks a Corrupt call
// site: corrupt rules run the hook and error rules are suppressed.
func (r *registry) fire(site string, hook func()) error {
	rl, ok := r.rules[site]
	if !ok {
		return nil
	}
	rl.mu.Lock()
	rl.hits++
	hit := rl.hits
	fire := rl.decideLocked(hit)
	if fire {
		rl.fires++
	}
	rl.mu.Unlock()
	if !fire {
		return nil
	}

	ev := Event{Seq: r.seq.Add(1), Site: site, Action: rl.action, Hit: hit}
	r.record(ev)
	notifyObservers(ev)

	switch rl.action {
	case ActError:
		if hook != nil {
			return nil // valueless site: no error channel
		}
		return fmt.Errorf("faultinject: %s at %s (hit %d): %w", rl.msg, site, hit, ErrInjected)
	case ActPanic:
		panic(fmt.Sprintf("faultinject: %s at %s (hit %d)", rl.msg, site, hit))
	case ActDelay:
		time.Sleep(rl.delay)
	case ActCorrupt:
		if hook != nil {
			hook()
		}
	}
	return nil
}

// decideLocked evaluates the rule's trigger for the given hit. rl.mu held.
func (rl *rule) decideLocked(hit int64) bool {
	if rl.maxFires > 0 && rl.fires >= rl.maxFires {
		return false
	}
	if rl.once > 0 {
		if hit != rl.once || rl.fires > 0 {
			return false
		}
	} else if rl.every > 0 && hit%rl.every != 0 {
		return false
	}
	if rl.prob > 0 {
		// splitmix64: a deterministic per-site stream, independent of every
		// other site, advanced once per probability evaluation.
		rl.rng += 0x9E3779B97F4A7C15
		z := rl.rng
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		if float64(z>>11)/float64(uint64(1)<<53) >= rl.prob {
			return false
		}
	}
	return true
}

func (r *registry) record(ev Event) {
	r.mu.Lock()
	if len(r.events) < maxEvents {
		r.events = append(r.events, ev)
	}
	r.counts[ev.Site]++
	r.mu.Unlock()
}

func notifyObservers(ev Event) {
	p := observers.Load()
	if p == nil {
		return
	}
	for _, e := range *p {
		e.fn(ev)
	}
}

// --- spec parsing -----------------------------------------------------------

func parseSpec(spec string) (*registry, error) {
	r := &registry{seed: 1, rules: make(map[string]*rule), counts: make(map[string]int64)}
	var clauses []string // site clauses, parsed after the seed is known
	for _, term := range strings.Split(spec, ";") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(term, "seed="); ok {
			seed, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q: %v", rest, err)
			}
			r.seed = seed
			continue
		}
		clauses = append(clauses, term)
	}
	for _, cl := range clauses {
		site, ruleStr, ok := strings.Cut(cl, "=")
		site = strings.TrimSpace(site)
		if !ok || site == "" {
			return nil, fmt.Errorf("faultinject: clause %q is not site=rule", cl)
		}
		if _, dup := r.rules[site]; dup {
			return nil, fmt.Errorf("faultinject: site %q armed twice", site)
		}
		rl, err := parseRule(site, strings.TrimSpace(ruleStr))
		if err != nil {
			return nil, err
		}
		rl.rng = r.seed ^ siteHash(site)
		r.rules[site] = rl
	}
	if len(r.rules) == 0 {
		return nil, fmt.Errorf("faultinject: spec %q arms no sites", spec)
	}
	return r, nil
}

func parseRule(site, s string) (*rule, error) {
	actionStr, condStr, _ := strings.Cut(s, "@")
	actionStr = strings.TrimSpace(actionStr)

	// action [ '(' arg ')' ]
	arg := ""
	if i := strings.IndexByte(actionStr, '('); i >= 0 {
		if !strings.HasSuffix(actionStr, ")") {
			return nil, fmt.Errorf("faultinject: %s: unclosed argument in %q", site, actionStr)
		}
		arg = actionStr[i+1 : len(actionStr)-1]
		actionStr = actionStr[:i]
	}
	rl := &rule{msg: arg}
	if rl.msg == "" {
		rl.msg = "injected"
	}
	switch actionStr {
	case "error":
		rl.action = ActError
	case "panic":
		rl.action = ActPanic
	case "delay":
		rl.action = ActDelay
		if arg == "" {
			return nil, fmt.Errorf("faultinject: %s: delay needs a duration, e.g. delay(5ms)", site)
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("faultinject: %s: bad delay duration %q", site, arg)
		}
		rl.delay = d
	case "corrupt":
		rl.action = ActCorrupt
	default:
		return nil, fmt.Errorf("faultinject: %s: unknown action %q (want error, panic, delay or corrupt)", site, actionStr)
	}

	if strings.TrimSpace(condStr) == "" {
		if strings.Contains(s, "@") {
			return nil, fmt.Errorf("faultinject: %s: empty trigger after @", site)
		}
		return rl, nil
	}
	for _, cond := range strings.Split(condStr, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(cond), "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: %s: trigger %q is not key=value", site, cond)
		}
		switch k {
		case "p":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p <= 0 || p > 1 {
				return nil, fmt.Errorf("faultinject: %s: p=%q must be in (0, 1]", site, v)
			}
			rl.prob = p
		case "every":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faultinject: %s: every=%q must be >= 1", site, v)
			}
			rl.every = n
		case "once":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faultinject: %s: once=%q must be >= 1", site, v)
			}
			rl.once = n
		case "count":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faultinject: %s: count=%q must be >= 1", site, v)
			}
			rl.maxFires = n
		default:
			return nil, fmt.Errorf("faultinject: %s: unknown trigger %q (want p, every, once or count)", site, k)
		}
	}
	if rl.once > 0 && rl.every > 0 {
		return nil, fmt.Errorf("faultinject: %s: once and every are mutually exclusive", site)
	}
	return rl, nil
}

func siteHash(site string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(site))
	return h.Sum64()
}
