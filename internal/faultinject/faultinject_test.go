package faultinject

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// arm installs spec for the duration of the test.
func arm(t *testing.T, spec string) {
	t.Helper()
	if err := Arm(spec); err != nil {
		t.Fatalf("Arm(%q): %v", spec, err)
	}
	t.Cleanup(Disarm)
}

func TestDisarmedIsNoOp(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("Armed() true with nothing armed")
	}
	if err := Fire("any.site"); err != nil {
		t.Fatalf("disarmed Fire returned %v", err)
	}
	ran := false
	Corrupt("any.site", func() { ran = true })
	if ran {
		t.Fatal("disarmed Corrupt ran its hook")
	}
	if Events() != nil || Counts() != nil || Sites() != nil || InjectedTotal() != 0 {
		t.Fatal("disarmed accessors returned non-zero state")
	}
}

func TestErrorActionWrapsSentinel(t *testing.T) {
	arm(t, "seed=1;a.b.c=error(boom)")
	err := Fire("a.b.c")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "a.b.c") {
		t.Fatalf("error %q missing message or site", err)
	}
	if err := Fire("other.site"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
}

func TestPanicAction(t *testing.T) {
	arm(t, "x=panic(kaboom)")
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "kaboom") {
			t.Fatalf("recover() = %v, want injected panic", r)
		}
	}()
	_ = Fire("x")
	t.Fatal("Fire did not panic")
}

func TestDelayAction(t *testing.T) {
	arm(t, "x=delay(30ms)")
	start := time.Now()
	if err := Fire("x"); err != nil {
		t.Fatalf("delay Fire returned %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay slept %v, want >= 30ms", d)
	}
}

func TestCorruptActionRunsHookOnlyAtCorruptSites(t *testing.T) {
	arm(t, "x=corrupt")
	ran := 0
	Corrupt("x", func() { ran++ })
	if ran != 1 {
		t.Fatalf("hook ran %d times, want 1", ran)
	}
	// Fire at a corrupt site is a no-op (no hook to run).
	if err := Fire("x"); err != nil {
		t.Fatalf("Fire at corrupt site returned %v", err)
	}
	// Corrupt at an error site suppresses the error (no channel for it).
	arm(t, "y=error")
	Corrupt("y", func() { t.Fatal("error rule ran corruption hook") })
}

func TestEveryNthTrigger(t *testing.T) {
	arm(t, "x=error@every=3")
	var fired []int
	for i := 1; i <= 10; i++ {
		if Fire("x") != nil {
			fired = append(fired, i)
		}
	}
	want := []int{3, 6, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired on hits %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on hits %v, want %v", fired, want)
		}
	}
}

func TestOnceTrigger(t *testing.T) {
	arm(t, "x=error@once=4")
	var fired []int
	for i := 1; i <= 10; i++ {
		if Fire("x") != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 1 || fired[0] != 4 {
		t.Fatalf("once=4 fired on hits %v, want exactly [4]", fired)
	}
}

func TestCountCap(t *testing.T) {
	arm(t, "x=error@count=2")
	n := 0
	for i := 0; i < 10; i++ {
		if Fire("x") != nil {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("count=2 fired %d times, want 2", n)
	}
	if got := Counts()["x"]; got != 2 {
		t.Fatalf("Counts()[x] = %d, want 2", got)
	}
}

func TestProbabilityIsSeedDeterministicAndPlausible(t *testing.T) {
	const hits = 2000
	run := func(seed uint64) []int64 {
		if err := Arm(fmt.Sprintf("seed=%d;x=error@p=0.25", seed)); err != nil {
			t.Fatal(err)
		}
		defer Disarm()
		var fired []int64
		for i := 0; i < hits; i++ {
			if Fire("x") != nil {
				fired = append(fired, int64(i))
			}
		}
		return fired
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("same seed fired %d vs %d times", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at firing %d: hit %d vs %d", i, a[i], b[i])
		}
	}
	// Plausible rate: 0.25 ± 5 percentage points over 2000 draws.
	if rate := float64(len(a)) / hits; rate < 0.20 || rate > 0.30 {
		t.Fatalf("p=0.25 fired at rate %.3f over %d hits", rate, hits)
	}
	// A different seed must give a different firing pattern.
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical firing patterns")
	}
}

// TestSameSeedReproducesSameEventSequence is the determinism acceptance
// test: the same spec (seed included) driven through the same per-site hit
// sequence produces the same sequenced event log, site by site, action by
// action.
func TestSameSeedReproducesSameEventSequence(t *testing.T) {
	const spec = "seed=42;a.one=error@p=0.3;b.two=delay(1us)@every=3;c.three=panic@once=5;d.four=corrupt@p=0.5,count=7"
	drive := func() []Event {
		if err := Arm(spec); err != nil {
			t.Fatal(err)
		}
		defer Disarm()
		for i := 0; i < 50; i++ {
			_ = Fire("a.one")
			_ = Fire("b.two")
			func() {
				defer func() { _ = recover() }()
				_ = Fire("c.three")
			}()
			Corrupt("d.four", func() {})
		}
		return Events()
	}
	first, second := drive(), drive()
	if len(first) == 0 {
		t.Fatal("schedule fired no events")
	}
	if len(first) != len(second) {
		t.Fatalf("run lengths differ: %d vs %d events", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("event %d differs: %v vs %v", i, first[i], second[i])
		}
	}
}

func TestEventLogAndObserver(t *testing.T) {
	var mu sync.Mutex
	var observed []Event
	unregister := RegisterObserver(func(e Event) {
		mu.Lock()
		observed = append(observed, e)
		mu.Unlock()
	})
	defer unregister()

	arm(t, "x=error@every=2")
	for i := 0; i < 6; i++ {
		_ = Fire("x")
	}
	evs := Events()
	if len(evs) != 3 || InjectedTotal() != 3 {
		t.Fatalf("got %d events, total %d, want 3", len(evs), InjectedTotal())
	}
	for i, e := range evs {
		if e.Seq != int64(i+1) || e.Site != "x" || e.Action != ActError || e.Hit != int64((i+1)*2) {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
	mu.Lock()
	n := len(observed)
	mu.Unlock()
	if n != 3 {
		t.Fatalf("observer saw %d events, want 3", n)
	}
	unregister()
	unregister() // idempotent
	_ = Fire("x")
	_ = Fire("x")
	mu.Lock()
	n = len(observed)
	mu.Unlock()
	if n != 3 {
		t.Fatalf("observer saw %d events after unregister, want 3", n)
	}
}

func TestSitesSorted(t *testing.T) {
	arm(t, "z.z=error;a.a=panic;m.m=delay(1ms)")
	got := Sites()
	want := []string{"a.a", "m.m", "z.z"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Sites() = %v, want %v", got, want)
	}
}

func TestConcurrentFireIsSafe(t *testing.T) {
	arm(t, "x=error@p=0.5;y=delay(1us)@every=2")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = Fire("x")
				_ = Fire("y")
			}
		}()
	}
	wg.Wait()
	if InjectedTotal() == 0 {
		t.Fatal("concurrent schedule fired nothing")
	}
}

func TestSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"seed=42",                    // no sites
		"seed=nope;x=error",          // bad seed
		"x",                          // not site=rule
		"=error",                     // empty site
		"x=explode",                  // unknown action
		"x=delay",                    // delay without duration
		"x=delay(fast)",              // bad duration
		"x=delay(-1ms)",              // negative duration
		"x=error@",                   // empty trigger
		"x=error@p",                  // not key=value
		"x=error@p=0",                // p out of range
		"x=error@p=1.5",              // p out of range
		"x=error@every=0",            // every < 1
		"x=error@once=0",             // once < 1
		"x=error@count=0",            // count < 1
		"x=error@wat=1",              // unknown trigger
		"x=error@once=1,every=2",     // mutually exclusive
		"x=error;x=panic",            // duplicate site
		"x=error(oops",               // unclosed argument
	}
	for _, spec := range bad {
		if err := Arm(spec); err == nil {
			Disarm()
			t.Errorf("Arm(%q) accepted a bad spec", spec)
		}
	}
	if Armed() {
		t.Fatal("a failed Arm left a schedule installed")
	}
}

func TestArmReplacesPreviousSchedule(t *testing.T) {
	arm(t, "x=error")
	if Fire("x") == nil {
		t.Fatal("first schedule not armed")
	}
	arm(t, "y=error")
	if Fire("x") != nil {
		t.Fatal("old site still armed after re-Arm")
	}
	if Fire("y") == nil {
		t.Fatal("new site not armed")
	}
	// The event log belongs to the new registry: the x firing is gone.
	if evs := Events(); len(evs) != 1 || evs[0].Site != "y" {
		t.Fatalf("events after re-arm: %+v", evs)
	}
}

// BenchmarkFireDisarmed measures the cost every threaded site pays in
// production: one atomic load and a nil check.
func BenchmarkFireDisarmed(b *testing.B) {
	Disarm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Fire("serve.pool.enqueue"); err != nil {
			b.Fatal(err)
		}
	}
}
