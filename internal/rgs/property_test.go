package rgs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tcqr/internal/accuracy"
	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/tcsim"
)

// TestPropFactorInvariants checks the structural invariants of the
// factorization over random shapes, cutoffs and engines:
//
//   - R upper triangular with non-negative diagonal (the Gram-Schmidt
//     convention, preserved by the recursion);
//   - Q columns of unit norm (within the engine's precision);
//   - A ≈ Q·R within the engine's precision;
//   - the input untouched.
func TestPropFactorInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(56)
		m := n + r.Intn(200)
		cutoff := 8 << r.Intn(3) // 8, 16, 32
		var engine tcsim.Engine
		tol := 1e-2 // TC precision budget
		if r.Intn(2) == 0 {
			engine = &tcsim.FP32{}
			tol = 1e-4
		}
		a := dense.New[float32](m, n)
		for i := range a.Data {
			a.Data[i] = float32(r.NormFloat64())
		}
		orig := a.Clone()

		res, err := Factor(a, Options{Cutoff: cutoff, Engine: engine})
		if err != nil {
			return false
		}
		if !dense.Equal(a, orig) {
			t.Log("input modified")
			return false
		}
		if !accuracy.UpperTriangular(res.R) {
			t.Log("R not triangular")
			return false
		}
		for i := 0; i < n; i++ {
			if res.R.At(i, i) < 0 {
				t.Logf("negative diagonal R(%d,%d)=%v", i, i, res.R.At(i, i))
				return false
			}
		}
		for j := 0; j < n; j++ {
			nrm := float64(blas.Nrm2(res.Q.Col(j)))
			if math.Abs(nrm-1) > tol {
				t.Logf("‖q_%d‖ = %v (cutoff %d)", j, nrm, cutoff)
				return false
			}
		}
		if be := accuracy.BackwardError(a, res.Q, res.R); be > tol {
			t.Logf("backward error %g at %dx%d cutoff %d", be, m, n, cutoff)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropScalingInvariance: scaling any column of A by a power of two
// leaves Q bit-identical when the FP32 engine is used with the safeguard
// on (the scaling is undone exactly, and the panel/GEMM inputs coincide).
func TestPropScalingInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 96, 32
		a := dense.New[float32](m, n)
		for i := range a.Data {
			a.Data[i] = float32(r.NormFloat64())
		}
		scaled := a.Clone()
		for j := 0; j < n; j++ {
			s := float32(math.Exp2(float64(r.Intn(9) - 4)))
			blas.Scal(s, scaled.Col(j))
		}
		eng := &tcsim.FP32{}
		r1, err := Factor(a, Options{Cutoff: 16, Engine: eng})
		if err != nil {
			return false
		}
		r2, err := Factor(scaled, Options{Cutoff: 16, Engine: eng})
		if err != nil {
			return false
		}
		// Column scaling maps every column to max-abs in [1, 2); the same
		// normalized matrix is factored in both runs, so Q must agree
		// exactly.
		return dense.Equal(r1.Q, r2.Q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropReorthoNeverHurts: the second pass never increases the
// orthogonality error (up to a tiny tolerance).
func TestPropReorthoNeverHurts(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 128+r.Intn(128), 32
		a := dense.New[float32](m, n)
		for i := range a.Data {
			a.Data[i] = float32(r.NormFloat64())
		}
		one, err := Factor(a, Options{Cutoff: 16})
		if err != nil {
			return false
		}
		two, err := Factor(a, Options{Cutoff: 16, ReOrthogonalize: true})
		if err != nil {
			return false
		}
		return accuracy.OrthoError(two.Q) <= accuracy.OrthoError(one.Q)*1.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
