package rgs

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"tcqr/internal/accuracy"
	"tcqr/internal/dense"
	"tcqr/internal/f16"
	"tcqr/internal/gram"
	"tcqr/internal/hazard"
	"tcqr/internal/matgen"
	"tcqr/internal/tcsim"
)

func condMat(seed int64, m, n int, cond float64, dist matgen.Dist) *dense.M32 {
	rng := rand.New(rand.NewSource(seed))
	return dense.ToF32(matgen.WithCond(rng, m, n, cond, dist))
}

func TestFactorBasicShapes(t *testing.T) {
	a := condMat(1, 600, 256, 10, matgen.Arithmetic)
	res, err := Factor(a, Options{Cutoff: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Q.Rows != 600 || res.Q.Cols != 256 || res.R.Rows != 256 || res.R.Cols != 256 {
		t.Fatalf("shapes Q %dx%d R %dx%d", res.Q.Rows, res.Q.Cols, res.R.Rows, res.R.Cols)
	}
	if !accuracy.UpperTriangular(res.R) {
		t.Error("R not upper triangular")
	}
	if be := accuracy.BackwardError(a, res.Q, res.R); be > 5e-3 {
		t.Errorf("backward error %g", be)
	}
}

func TestFactorRejectsWide(t *testing.T) {
	if _, err := Factor(dense.New[float32](3, 5), Options{}); err == nil {
		t.Fatal("wide matrix must be rejected")
	}
}

func TestFactorEmpty(t *testing.T) {
	res, err := Factor(dense.New[float32](4, 0), Options{})
	if err != nil || res.Q.Cols != 0 {
		t.Fatalf("empty factorization: %v %+v", err, res)
	}
}

func TestInputNotModified(t *testing.T) {
	a := condMat(2, 300, 128, 100, matgen.Geometric)
	orig := a.Clone()
	if _, err := Factor(a, Options{Cutoff: 32}); err != nil {
		t.Fatal(err)
	}
	if !dense.Equal(a, orig) {
		t.Error("Factor modified its input")
	}
}

// TestBackwardErrorFlatInCond reproduces the Figure 3 claim at test scale:
// the backward error of RGSQRF sits at the half-precision level and does
// not grow with the condition number.
func TestBackwardErrorFlatInCond(t *testing.T) {
	var prev float64
	for i, cond := range []float64{1e1, 1e3, 1e5, 1e7} {
		a := condMat(3, 512, 128, cond, matgen.Arithmetic)
		res, err := Factor(a, Options{Cutoff: 32})
		if err != nil {
			t.Fatal(err)
		}
		be := accuracy.BackwardError(a, res.Q, res.R)
		if be > 50*f16.Eps {
			t.Errorf("cond=%g: backward error %g above half-precision level", cond, be)
		}
		if i > 0 && be > 100*prev {
			t.Errorf("backward error grew with cond: %g -> %g", prev, be)
		}
		prev = be
	}
}

// TestOrthogonalityDegradesAndReorthoRestores reproduces the Figure 4
// claims: RGSQRF orthogonality deteriorates roughly linearly in κ(A), and
// one re-orthogonalization pass restores it to working precision.
func TestOrthogonalityDegradesAndReorthoRestores(t *testing.T) {
	oeAt := func(cond float64, reortho bool) float64 {
		a := condMat(4, 512, 128, cond, matgen.Arithmetic)
		res, err := Factor(a, Options{Cutoff: 32, ReOrthogonalize: reortho})
		if err != nil {
			t.Fatal(err)
		}
		if reortho && !res.Reorthogonalized {
			t.Fatal("reortho flag not set")
		}
		return accuracy.OrthoError(res.Q)
	}
	oeLow := oeAt(1e1, false)
	oeHigh := oeAt(1e5, false)
	if oeHigh < 20*oeLow {
		t.Errorf("orthogonality should degrade with cond: κ=10: %g, κ=1e5: %g", oeLow, oeHigh)
	}
	oeFixed := oeAt(1e5, true)
	if oeFixed > oeHigh/20 {
		t.Errorf("re-orthogonalization barely helped: %g -> %g", oeHigh, oeFixed)
	}
	if oeFixed > 0.05 {
		t.Errorf("re-orthogonalized Q still far from orthogonal: %g", oeFixed)
	}
}

// TestEngineAblation reproduces the Figure 7 accuracy ordering: the FP32
// engine is strictly more accurate than the TensorCore engine.
func TestEngineAblation(t *testing.T) {
	a := condMat(5, 512, 128, 1e2, matgen.Geometric)
	tc, err := Factor(a, Options{Cutoff: 32, Engine: &tcsim.TensorCore{}})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := Factor(a, Options{Cutoff: 32, Engine: &tcsim.FP32{}})
	if err != nil {
		t.Fatal(err)
	}
	beTC := accuracy.BackwardError(a, tc.Q, tc.R)
	beFP := accuracy.BackwardError(a, fp.Q, fp.R)
	if beTC < 10*beFP {
		t.Errorf("TC backward error %g should be ≫ FP32's %g", beTC, beFP)
	}
	if beFP > 1e-5 {
		t.Errorf("FP32 backward error %g too large", beFP)
	}
}

// TestColumnScalingPreventsOverflow reproduces the Section 3.5 safeguard: a
// badly scaled matrix overflows fp16 (poisoning the result with Inf/NaN)
// without scaling, and factors cleanly with it.
func TestColumnScalingPreventsOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a64 := matgen.BadlyScaled(rng, 512, 128, 7) // columns up to ~1e7: overflows fp16
	a := dense.ToF32(a64)

	engine := &tcsim.TensorCore{TrackSpecials: true}
	res, err := Factor(a, Options{Cutoff: 32, Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	if engine.Stats().Overflows != 0 {
		t.Errorf("scaling enabled but %d operands overflowed", engine.Stats().Overflows)
	}
	if res.Q.HasNaN() || res.R.HasNaN() {
		t.Error("scaled factorization contains NaN/Inf")
	}
	if be := accuracy.BackwardError(a, res.Q, res.R); be > 1e-2 {
		t.Errorf("scaled backward error %g", be)
	}
	if res.ColumnScales == nil {
		t.Error("ColumnScales not reported")
	}

	// Without scaling the fp16 operands overflow, poison the trailing
	// panels, and the breakdown is now detected instead of returning NaN.
	engine2 := &tcsim.TensorCore{TrackSpecials: true}
	_, err = Factor(a, Options{Cutoff: 32, Engine: engine2, DisableScaling: true})
	if !errors.Is(err, hazard.ErrBreakdown) {
		t.Errorf("unscaled overflow: got %v, want an error wrapping hazard.ErrBreakdown", err)
	}
	if engine2.Stats().Overflows == 0 {
		t.Error("expected fp16 overflows without scaling")
	}
}

// TestScalingLeavesQUnchanged verifies the mathematical property scaling
// relies on: column scaling changes R but not Q (up to fp32 roundoff from
// the exact power-of-two scaling).
func TestScalingLeavesQUnchanged(t *testing.T) {
	a := condMat(7, 384, 96, 10, matgen.Arithmetic)
	// Mild, well-in-range scaling so both runs stay finite.
	for j := 0; j < a.Cols; j++ {
		s := float32(math.Exp2(float64(j%5 - 2)))
		for i := 0; i < a.Rows; i++ {
			a.Set(i, j, a.At(i, j)*s)
		}
	}
	fp := &tcsim.FP32{}
	with, err := Factor(a, Options{Cutoff: 32, Engine: fp})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Factor(a, Options{Cutoff: 32, Engine: fp, DisableScaling: true})
	if err != nil {
		t.Fatal(err)
	}
	var maxQ float64
	for i := range with.Q.Data {
		d := math.Abs(float64(with.Q.Data[i] - without.Q.Data[i]))
		if d > maxQ {
			maxQ = d
		}
	}
	// Power-of-two scaling is exact, so even the floating point trajectory
	// matches up to tiny reassociation effects in norms.
	if maxQ > 1e-5 {
		t.Errorf("Q changed by %g under column scaling", maxQ)
	}
	// R must match too (scaling is undone exactly).
	var maxR float64
	for i := range with.R.Data {
		d := math.Abs(float64(with.R.Data[i] - without.R.Data[i]))
		if d > maxR {
			maxR = d
		}
	}
	if maxR > 1e-3 {
		t.Errorf("R changed by %g after unscaling", maxR)
	}
}

func TestPanelAblation(t *testing.T) {
	// CAQR vs Householder panel: both must deliver a valid factorization
	// through the full recursion.
	a := condMat(8, 700, 192, 50, matgen.Geometric)
	for _, p := range []gram.Panel{&gram.CAQRPanel{}, &gram.HouseholderPanel{}} {
		res, err := Factor(a, Options{Cutoff: 48, Panel: p})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if be := accuracy.BackwardError(a, res.Q, res.R); be > 5e-3 {
			t.Errorf("%s panel: backward error %g", p.Name(), be)
		}
	}
}

func TestFlopCount(t *testing.T) {
	// For n == cutoff the count is the panel's 2mn².
	if got, want := FlopCount(100, 16, 16), int64(2*100*16*16); got != want {
		t.Errorf("panel flops %d, want %d", got, want)
	}
	// For n ≫ cutoff the total approaches 2mn² (recurrence (5)).
	m, n := 4096, 1024
	got := FlopCount(m, n, 128)
	want := 2 * int64(m) * int64(n) * int64(n)
	ratio := float64(got) / float64(want)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("flop ratio %g, want ~1 (got %d, 2mn² = %d)", ratio, got, want)
	}
	// Odd sizes must not lose flops to integer division.
	if FlopCount(511, 333, 100) <= 0 {
		t.Error("odd-size flop count non-positive")
	}
}

func TestNonPowerOfTwoSizes(t *testing.T) {
	a := condMat(9, 517, 133, 10, matgen.Arithmetic)
	res, err := Factor(a, Options{Cutoff: 32})
	if err != nil {
		t.Fatal(err)
	}
	if be := accuracy.BackwardError(a, res.Q, res.R); be > 5e-3 {
		t.Errorf("odd sizes backward error %g", be)
	}
	if !accuracy.UpperTriangular(res.R) {
		t.Error("R not triangular for odd sizes")
	}
}

func TestHazardsReturnTypedErrors(t *testing.T) {
	// A NaN input is rejected up front with ErrNonFinite instead of
	// poisoning the factors.
	a := condMat(30, 256, 64, 10, matgen.Arithmetic)
	a.Set(5, 3, float32(math.NaN()))
	if _, err := Factor(a, Options{Cutoff: 16}); !errors.Is(err, hazard.ErrNonFinite) {
		t.Errorf("NaN input: got %v, want an error wrapping hazard.ErrNonFinite", err)
	}
	// A zero matrix makes every Gram-Schmidt panel break down (every column
	// is dependent): typed breakdown instead of a silent zero Q.
	z := dense.New[float32](64, 16)
	if _, err := Factor(z, Options{Cutoff: 8}); !errors.Is(err, hazard.ErrBreakdown) {
		t.Errorf("zero matrix: got %v, want an error wrapping hazard.ErrBreakdown", err)
	}
	// The gram.Ladder panel recovers the same input by escalating to
	// Householder (which factors rank-deficient panels happily), recording
	// the escalations.
	rep := &hazard.Report{}
	res, err := Factor(z, Options{Cutoff: 8, Panel: gram.NewLadder(&gram.CAQRPanel{}, rep)})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Any() {
		t.Error("ladder recovery should record escalation events")
	}
	for _, v := range res.R.Data {
		if v != 0 {
			t.Fatal("zero matrix should give zero R")
		}
	}
	if res.Q.HasNaN() {
		t.Error("recovered Q contains NaN")
	}
}
