package rgs

import (
	"testing"

	"tcqr/internal/matgen"
	"tcqr/internal/tcsim"
)

// BenchmarkRGSQRF measures the software execution of the full recursive
// factorization under each engine (quick scale). Simulated-V100 numbers
// for the paper's sizes come from internal/perfmodel, not from these
// timings.
func BenchmarkRGSQRF(b *testing.B) {
	a := condMat(1, 1024, 256, 100, matgen.Geometric)
	cases := []struct {
		name string
		opts Options
	}{
		{"TC", Options{Cutoff: 64}},
		{"FP32", Options{Cutoff: 64, Engine: &tcsim.FP32{}}},
		{"TC-reortho", Options{Cutoff: 64, ReOrthogonalize: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.SetBytes(FlopCount(1024, 256, 64))
			for i := 0; i < b.N; i++ {
				if _, err := Factor(a, c.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkColumnScaling(b *testing.B) {
	a := condMat(2, 2048, 256, 100, matgen.Arithmetic)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := a.Clone()
		scaleColumns(w)
	}
}
