// Package rgs implements the paper's primary contribution: RGSQRF, the
// recursive Gram-Schmidt QR factorization (Algorithm 1) that routes almost
// all of its floating point work through large GEMMs so a neural engine
// (TensorCore) can execute them, together with the two safeguards the paper
// attaches to it:
//
//   - automatic column scaling (Section 3.5), which maps every column of A
//     into the binary16 range so the half-precision GEMMs can never
//     overflow — scaling columns changes R (R ← R·P) but provably leaves Q
//     untouched;
//   - re-orthogonalization (Section 3.3), "twice is enough": factoring the
//     computed Q a second time restores orthogonality to working precision
//     for ill-conditioned inputs.
//
// The recursion is Algorithm 1 verbatim: split the columns in half, factor
// the left half, form R12 = Q1ᵀ·A2 and the update A2 ← A2 − Q1·R12 with two
// GEMMs (these two lines carry ~half of all flops and are what the engine
// accelerates), factor the updated right half, assemble. At the cutoff
// width the panel factorizer takes over (CAQR by default, Householder for
// the Figure 6 ablation).
package rgs

import (
	"fmt"
	"math"
	"sync/atomic"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/gram"
	"tcqr/internal/hazard"
	"tcqr/internal/tcsim"
)

// DefaultCutoff is the recursion cutoff of Algorithm 1: panels of this
// width (or less) are handed to the panel factorizer.
const DefaultCutoff = 128

// Options configures a factorization. The zero value reproduces the paper's
// best configuration: TensorCore GEMM in the update, FP32 CAQR panel,
// cutoff 128, column scaling on, re-orthogonalization off.
type Options struct {
	// Engine executes the split GEMMs (R12 and the trailing update). nil
	// selects the TensorCore simulator — the paper's headline setting.
	Engine tcsim.Engine
	// Panel factors width <= Cutoff panels. nil selects the FP32 CAQR
	// panel.
	Panel gram.Panel
	// Cutoff is the recursion cutoff width; <= 0 selects DefaultCutoff.
	Cutoff int
	// DisableScaling turns off the Section 3.5 column scaling. Scaling is
	// exact (powers of two) and cheap, so it is on by default.
	DisableScaling bool
	// ReOrthogonalize runs the "twice is enough" pass: Q ← Q₂ where
	// Q = Q₂·R₂, R ← R₂·R.
	ReOrthogonalize bool
}

func (o *Options) engine() tcsim.Engine {
	if o.Engine != nil {
		return o.Engine
	}
	return defaultTC
}

func (o *Options) panel() gram.Panel {
	if o.Panel != nil {
		return o.Panel
	}
	return defaultPanel
}

func (o *Options) cutoff() int {
	if o.Cutoff > 0 {
		return o.Cutoff
	}
	return DefaultCutoff
}

var (
	defaultTC    = &tcsim.TensorCore{}
	defaultPanel = &gram.CAQRPanel{}
)

// Result is a computed factorization A = Q·R with Q m×n orthonormal and R
// n×n upper triangular.
type Result struct {
	Q *dense.M32
	R *dense.M32
	// ColumnScales holds the power-of-two scale applied to each column
	// before factorization (nil when scaling was disabled). R has already
	// been unscaled; the scales are reported for diagnostics only.
	ColumnScales []float32
	// Reorthogonalized records whether the second pass ran.
	Reorthogonalized bool

	// r64 memoizes the float64 widening of R (see R64).
	r64 atomic.Pointer[dense.M64]
}

// R64 returns R widened to float64, converting on first use and caching the
// result. Every refinement solve preconditions with R in float64; for a
// served factorization the n×n widening would otherwise be recomputed (and
// reallocated) on each solve of a cached factor. R must not be mutated after
// the first call. Safe for concurrent use.
func (f *Result) R64() *dense.M64 {
	if r := f.r64.Load(); r != nil {
		return r
	}
	f.r64.CompareAndSwap(nil, dense.ToF64(f.R))
	return f.r64.Load()
}

// Factor computes the RGSQRF factorization of a (m×n, m >= n). The input is
// not modified. Hazards are typed: a NaN/Inf input returns an error wrapping
// hazard.ErrNonFinite, and a panel breakdown (zero or dependent column,
// non-SPD Gram matrix) one wrapping hazard.ErrBreakdown — unless the
// configured Panel is a gram.Ladder, which recovers by escalation.
func Factor(a *dense.M32, opts Options) (*Result, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("rgs: matrix is %dx%d; RGSQRF requires m >= n: %w", m, n, hazard.ErrShape)
	}
	if n == 0 {
		return &Result{Q: dense.New[float32](m, 0), R: dense.New[float32](0, 0)}, nil
	}
	if err := hazard.CheckMatrix("A", a); err != nil {
		return nil, fmt.Errorf("rgs: %w", err)
	}
	w := a.Clone()

	var scales []float32
	if !opts.DisableScaling {
		scales = scaleColumns(w)
	}

	r := dense.New[float32](n, n)
	if err := recurse(w, r, &opts); err != nil {
		return nil, err
	}

	if scales != nil {
		// A·P = Q·(R·P) was factored; recover R for A by unscaling the
		// columns of R. Powers of two make this exact.
		for j := 0; j < n; j++ {
			if scales[j] != 1 {
				blas.Scal(1/scales[j], r.Col(j)[:j+1])
			}
		}
	}

	res := &Result{Q: w, R: r, ColumnScales: scales}
	if opts.ReOrthogonalize {
		if err := reorthogonalize(res, &opts); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// recurse is Algorithm 1 operating in place: w (m×n) holds A on entry and Q
// on exit; r is the n×n block of R being produced. A panel breakdown aborts
// the recursion and propagates up as a typed error.
func recurse(w, r *dense.M32, opts *Options) error {
	n := w.Cols
	if n <= opts.cutoff() {
		q, rr, err := opts.panel().Factor(w)
		if err != nil {
			return err
		}
		w.CopyFrom(q)
		r.CopyFrom(rr)
		return nil
	}
	m := w.Rows
	h := n / 2
	w1 := w.View(0, 0, m, h)
	w2 := w.View(0, h, m, n-h)
	r11 := r.View(0, 0, h, h)
	r12 := r.View(0, h, h, n-h)
	r22 := r.View(h, h, n-h, n-h)

	if err := recurse(w1, r11, opts); err != nil {
		return err
	}
	e := opts.engine()
	// R12 = Q1ᵀ·A2 and A2 ← A2 − Q1·R12: the two neural-engine GEMMs.
	e.Gemm(blas.Trans, blas.NoTrans, 1, w1, w2, 0, r12)
	e.Gemm(blas.NoTrans, blas.NoTrans, -1, w1, r12, 1, w2)
	return recurse(w2, r22, opts)
}

// reorthogonalize applies the Section 3.3 second pass to res in place.
func reorthogonalize(res *Result, opts *Options) error {
	n := res.R.Rows
	// Factor Q = Q₂·R₂ with the same engine/panel (scaling unnecessary: the
	// columns of Q are already within a rounding error of unit norm).
	second := Options{
		Engine:         opts.Engine,
		Panel:          opts.Panel,
		Cutoff:         opts.Cutoff,
		DisableScaling: true,
	}
	r2 := dense.New[float32](n, n)
	if err := recurse(res.Q, r2, &second); err != nil { // res.Q becomes Q₂ in place
		return err
	}

	// R ← R₂·R. R₂ is within rounding of the identity, so this triangular
	// product barely perturbs R; run it in FP32 (the paper keeps safeguard
	// arithmetic out of the half-precision unit).
	newR := dense.New[float32](n, n)
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, r2, res.R, 0, newR)
	// Enforce exact triangularity (the product of uppers is upper up to
	// rounding of explicitly stored zeros — both factors store hard zeros,
	// so the strict lower triangle is exactly zero already; this is a cheap
	// invariant check in disguise).
	for j := 0; j < n; j++ {
		col := newR.Col(j)
		for i := j + 1; i < n; i++ {
			if col[i] != 0 {
				return fmt.Errorf("rgs: re-orthogonalization broke triangularity at (%d,%d): %w", i, j, hazard.ErrBreakdown)
			}
		}
	}
	res.R = newR
	res.Reorthogonalized = true
	return nil
}

// ScaleColumns applies the Section 3.5 power-of-two column scaling to w in
// place and returns the applied scales — exported for pipelines (TSQR) that
// run the safeguard outside Factor. Unscale R afterwards exactly as Factor
// does: divide column j of R by scales[j].
func ScaleColumns(w *dense.M32) []float32 { return scaleColumns(w) }

// scaleColumns scales every column of w by a power of two so that its
// largest magnitude lands in [1, 2) — comfortably inside the binary16 range
// regardless of the later orthogonal transformations (which preserve column
// 2-norms; with max element < 2 the column norm is at most 2√m, and
// 2√m ≪ 65504 for every m this library targets). Returns the applied
// scales.
func scaleColumns(w *dense.M32) []float32 {
	scales := make([]float32, w.Cols)
	for j := range scales {
		scales[j] = 1
		col := w.Col(j)
		var mx float32
		for _, v := range col {
			a := v
			if a < 0 {
				a = -a
			}
			if a > mx {
				mx = a
			}
		}
		if mx == 0 || math.IsInf(float64(mx), 0) || math.IsNaN(float64(mx)) {
			continue
		}
		e := math.Floor(math.Log2(float64(mx)))
		s := float32(math.Exp2(-e)) // mx·s in [1, 2)
		if s != 1 {
			blas.Scal(s, col)
			scales[j] = s
		}
	}
	return scales
}

// FlopCount returns the floating point operations RGSQRF performs on an
// m×n matrix, ~2mn² by the recurrence (5) of the paper (panel flops
// included at 2·m·B² per panel). Used by the benchmarks to report
// normalized rates.
func FlopCount(m, n, cutoff int) int64 {
	if cutoff <= 0 {
		cutoff = DefaultCutoff
	}
	if n <= cutoff {
		return 2 * int64(m) * int64(n) * int64(n)
	}
	h := n / 2
	// Two GEMMs of h×(n-h)×m each: R12 and the update.
	gemms := 2 * (2 * int64(m) * int64(h) * int64(n-h))
	return FlopCount(m, h, cutoff) + FlopCount(m, n-h, cutoff) + gemms
}
