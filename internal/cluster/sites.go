package cluster

// Failpoint site names for the cluster tier (internal/faultinject; naming
// scheme in DESIGN.md §11). Exported because internal/serve fires SiteRoute
// when making routing decisions; the rest fire inside this package.
const (
	// SiteRoute fires before a peer forward is attempted; error faults fail
	// that attempt, driving try-next-candidate and local fallback.
	SiteRoute = "cluster.route"
	// SiteReplicate fires before a replica fan-out delivery; error faults
	// divert the frame to the handoff queue.
	SiteReplicate = "cluster.replicate"
	// SiteProbe fires before each peer health probe; error faults read as a
	// failed probe and mark the peer down until a later probe revives it.
	SiteProbe = "cluster.probe"
	// SiteHandoff fires before each hint delivery; error faults re-queue the
	// hint against its retry budget.
	SiteHandoff = "cluster.handoff"
)
