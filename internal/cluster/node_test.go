package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newTestNode builds a two-member node ("self" plus one peer at peerAddr)
// with a probe interval long enough that background loops stay out of the
// test's way; state changes are driven explicitly.
func newTestNode(t *testing.T, peerAddr string) *Node {
	t.Helper()
	n, err := New(Config{
		SelfID: "self",
		Members: []Member{
			{ID: "self", Addr: "127.0.0.1:1"},
			{ID: "peer", Addr: peerAddr},
		},
		Replicas:      2,
		ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func hostport(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	return strings.TrimPrefix(ts.URL, "http://")
}

// eventually polls cond for up to a second (background sends are async).
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestProbeStateTransitions(t *testing.T) {
	var status atomic.Value
	status.Store(`{"status":"ok"}`)
	var code atomic.Int32
	code.Store(http.StatusOK)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			t.Errorf("probe hit %s, want /healthz", r.URL.Path)
		}
		w.WriteHeader(int(code.Load()))
		fmt.Fprint(w, status.Load().(string))
	}))
	defer ts.Close()
	n := newTestNode(t, hostport(t, ts))
	p := n.peers["peer"]

	n.probe(p)
	if got := n.PeerState("peer"); got != StateUp {
		t.Fatalf("after ok probe: %v", got)
	}

	status.Store(`{"status":"degraded"}`)
	n.probe(p)
	if got := n.PeerState("peer"); got != StateDegraded {
		t.Fatalf("after degraded probe: %v", got)
	}

	code.Store(http.StatusServiceUnavailable)
	n.probe(p)
	if got := n.PeerState("peer"); got != StateDown {
		t.Fatalf("after 503 probe: %v", got)
	}

	// Recovery: healthy again flips straight back to Up.
	code.Store(http.StatusOK)
	status.Store(`{"status":"ok"}`)
	n.probe(p)
	if got := n.PeerState("peer"); got != StateUp {
		t.Fatalf("after recovery probe: %v", got)
	}
}

func TestProbeUnreachablePeerGoesDown(t *testing.T) {
	// A closed listener: connection refused.
	ts := httptest.NewServer(http.NewServeMux())
	addr := hostport(t, ts)
	ts.Close()
	n := newTestNode(t, addr)
	n.probe(n.peers["peer"])
	if got := n.PeerState("peer"); got != StateDown {
		t.Fatalf("unreachable peer state = %v, want down", got)
	}
}

func TestUsable(t *testing.T) {
	n := newTestNode(t, "127.0.0.1:2")
	peer := Member{ID: "peer"}
	self := Member{ID: "self"}
	cases := []struct {
		state      State
		cold, want bool
	}{
		{StateUp, true, true},
		{StateUp, false, true},
		{StateDegraded, true, false}, // degraded sheds cold factorize work
		{StateDegraded, false, true}, // but keeps serving its cache tier
		{StateDown, true, false},
		{StateDown, false, false},
	}
	for _, c := range cases {
		n.setState("peer", c.state)
		if got := n.Usable(peer, c.cold); got != c.want {
			t.Errorf("Usable(%v, cold=%v) = %v, want %v", c.state, c.cold, got, c.want)
		}
	}
	// Self is always usable (the local-owner decision never consults peers,
	// but the invariant should hold anyway).
	if !n.Usable(self, true) {
		t.Error("self not usable")
	}
}

func TestForwardSetsLoopGuardAndRelaysStatus(t *testing.T) {
	var gotForwarded atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotForwarded.Store(r.Header.Get(ForwardHeader))
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":{"code":"busy"}}`)
	}))
	defer ts.Close()
	n := newTestNode(t, hostport(t, ts))

	res, err := n.Forward(context.Background(), Member{ID: "peer", Addr: hostport(t, ts)}, "/v1/solve", []byte("frame"), false)
	if err != nil {
		t.Fatal(err)
	}
	if gotForwarded.Load().(string) != "self" {
		t.Fatalf("loop-guard header = %q, want self", gotForwarded.Load())
	}
	if res.Status != http.StatusTooManyRequests || res.RetryAfter != "7" {
		t.Fatalf("result = %+v", res)
	}
	// A non-2xx response is still a successful transport: the peer stays Up
	// (the caller decides to try the next candidate).
	if got := n.PeerState("peer"); got != StateUp {
		t.Fatalf("peer state after 429 = %v, want up", got)
	}
}

func TestForwardTransportErrorMarksDown(t *testing.T) {
	ts := httptest.NewServer(http.NewServeMux())
	addr := hostport(t, ts)
	ts.Close()
	n := newTestNode(t, addr)
	_, err := n.Forward(context.Background(), Member{ID: "peer", Addr: addr}, "/v1/solve", nil, false)
	if err == nil {
		t.Fatal("forward to a dead peer should error")
	}
	if got := n.PeerState("peer"); got != StateDown {
		t.Fatalf("peer state = %v, want down", got)
	}
	if st := n.Stats(); st.ForwardErrors == 0 {
		t.Error("forward error not counted")
	}
}

func TestReplicateDeliversWhenUp(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(ForwardHeader) == "" {
			t.Error("replica delivery missing the loop-guard header")
		}
		hits.Add(1)
		fmt.Fprint(w, `{}`)
	}))
	defer ts.Close()
	n := newTestNode(t, hostport(t, ts))
	n.Replicate(Member{ID: "peer", Addr: hostport(t, ts)}, "/v1/factorize", []byte("frame"))
	eventually(t, "replica delivery", func() bool { return n.Stats().ReplicateOK == 1 })
	if hits.Load() != 1 {
		t.Fatalf("peer saw %d deliveries, want 1", hits.Load())
	}
}

func TestReplicateDefersToHandoffWhenDown(t *testing.T) {
	n := newTestNode(t, "127.0.0.1:2")
	n.setState("peer", StateDown)
	n.Replicate(Member{ID: "peer", Addr: "127.0.0.1:2"}, "/v1/factorize", []byte("frame"))
	eventually(t, "deferred hint", func() bool { return n.handoff.pending() == 1 })
	if st := n.Stats(); st.HandoffQueued != 1 || st.ReplicateOK != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHandoffDeliversWhenOwnerReturns(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		fmt.Fprint(w, `{}`)
	}))
	defer ts.Close()
	n := newTestNode(t, hostport(t, ts))
	owner := Member{ID: "peer", Addr: hostport(t, ts)}

	n.setState("peer", StateDown)
	n.Hint(owner, "/v1/factorize", []byte("frame"))
	// A delivery pass while the owner is down must keep the hint queued
	// without consuming retry budget.
	n.handoff.deliverPass(context.Background())
	if p := n.handoff.pending(); p != 1 {
		t.Fatalf("pending after down pass = %d, want 1", p)
	}
	if hits.Load() != 0 {
		t.Fatal("delivered to a down owner")
	}

	n.setState("peer", StateUp)
	n.handoff.deliverPass(context.Background())
	if st := n.Stats(); st.HandoffDelivered != 1 || n.handoff.pending() != 0 {
		t.Fatalf("after up pass: delivered=%d pending=%d", st.HandoffDelivered, n.handoff.pending())
	}
	if hits.Load() != 1 {
		t.Fatalf("owner saw %d deliveries, want 1", hits.Load())
	}
}

func TestHandoffRetryBudgetDrops(t *testing.T) {
	// Owner is Up but rejects every delivery: the hint burns its budget and
	// is eventually dropped (counted, not retried forever).
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	n := newTestNode(t, hostport(t, ts))
	n.Hint(Member{ID: "peer", Addr: hostport(t, ts)}, "/v1/factorize", []byte("frame"))
	for i := 0; i < hintRetryBudget; i++ {
		n.handoff.deliverPass(context.Background())
	}
	if st := n.Stats(); st.HandoffDropped != 1 || n.handoff.pending() != 0 {
		t.Fatalf("dropped=%d pending=%d, want 1/0", st.HandoffDropped, n.handoff.pending())
	}
}

func TestHandoffQueueOverflowDrops(t *testing.T) {
	n, err := New(Config{
		SelfID: "self",
		Members: []Member{
			{ID: "self", Addr: "127.0.0.1:1"},
			{ID: "peer", Addr: "127.0.0.1:2"},
		},
		ProbeInterval: time.Hour,
		HandoffCap:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	owner := Member{ID: "peer", Addr: "127.0.0.1:2"}
	n.setState("peer", StateDown)
	for i := 0; i < 3; i++ {
		n.Hint(owner, "/v1/factorize", []byte("frame"))
	}
	st := n.Stats()
	if st.HandoffQueued != 2 || st.HandoffDropped != 1 {
		t.Fatalf("queued=%d dropped=%d, want 2/1", st.HandoffQueued, st.HandoffDropped)
	}
}

func TestHandoffFrameCopied(t *testing.T) {
	// The queue must copy the frame: callers recycle encode buffers.
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		buf := make([]byte, 16)
		n, _ := r.Body.Read(buf)
		got.Store(string(buf[:n]))
		fmt.Fprint(w, `{}`)
	}))
	defer ts.Close()
	n := newTestNode(t, hostport(t, ts))
	frame := []byte("original")
	n.Hint(Member{ID: "peer", Addr: hostport(t, ts)}, "/v1/factorize", frame)
	copy(frame, "CLOBBERD")
	n.handoff.deliverPass(context.Background())
	if got.Load().(string) != "original" {
		t.Fatalf("delivered frame = %q, want the pre-clobber copy", got.Load())
	}
}

func TestDrainHandoffDeliversEverything(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		fmt.Fprint(w, `{}`)
	}))
	defer ts.Close()
	n := newTestNode(t, hostport(t, ts))
	owner := Member{ID: "peer", Addr: hostport(t, ts)}
	for i := 0; i < 5; i++ {
		n.Hint(owner, "/v1/factorize", []byte("frame"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if left := n.DrainHandoff(ctx); left != 0 {
		t.Fatalf("drain left %d hints", left)
	}
	if hits.Load() != 5 {
		t.Fatalf("owner saw %d deliveries, want 5", hits.Load())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{SelfID: "x", Members: nil}); err == nil {
		t.Error("empty membership should fail")
	}
	if _, err := New(Config{SelfID: "ghost", Members: testMembers(2)}); err == nil {
		t.Error("self id outside the membership should fail")
	}
	// Replicas clamp to the member count.
	n, err := New(Config{SelfID: "n0", Members: testMembers(2), Replicas: 9, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.Replicas() != 2 {
		t.Errorf("Replicas = %d, want clamped 2", n.Replicas())
	}
}

func TestStateString(t *testing.T) {
	if StateUp.String() != "up" || StateDegraded.String() != "degraded" || StateDown.String() != "down" {
		t.Error("state strings drifted from the metric documentation")
	}
}

// healthzDoc keeps the probe's healthz contract honest if serve ever changes
// its payload shape: status must be a top-level string field.
func TestProbeParsesServeHealthzShape(t *testing.T) {
	doc := `{"status":"degraded","draining":false}`
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(doc), &health); err != nil || health.Status != "degraded" {
		t.Fatalf("healthz parse: %v status=%q", err, health.Status)
	}
}
