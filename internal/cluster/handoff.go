package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"tcqr/internal/faultinject"
)

// hintRetryBudget bounds delivery attempts per hint. It is deliberately
// generous: a hint's owner being down is the normal case at enqueue time
// (that is why the hint exists), and attempts while the owner stays down do
// not consume the budget — only failed deliveries to a reachable owner do.
const hintRetryBudget = 64

// hint is one queued handoff: a frame that re-homes a key to its owner.
type hint struct {
	owner    Member
	path     string
	frame    []byte
	attempts int
}

// handoffQueue buffers hints and delivers them when their owner probes Up.
// Delivery is paced by the node's probe interval; kick() forces an immediate
// pass (drain, leave).
type handoffQueue struct {
	n     *Node
	cap   int
	mu    sync.Mutex
	q     []hint
	kickC chan struct{}
}

func newHandoffQueue(n *Node, cap int) *handoffQueue {
	return &handoffQueue{n: n, cap: cap, kickC: make(chan struct{}, 1)}
}

// add queues one hint, dropping (and counting) when the queue is full.
func (h *handoffQueue) add(owner Member, path string, frame []byte) {
	h.mu.Lock()
	if len(h.q) >= h.cap {
		h.mu.Unlock()
		h.n.m.handoffDropped.Inc()
		return
	}
	// The frame is copied: callers recycle encode buffers after handing off.
	h.q = append(h.q, hint{owner: owner, path: path, frame: append([]byte(nil), frame...)})
	h.mu.Unlock()
	h.n.m.handoffQueued.Inc()
}

// kick requests an immediate delivery pass.
func (h *handoffQueue) kick() {
	select {
	case h.kickC <- struct{}{}:
	default:
	}
}

func (h *handoffQueue) loop() {
	defer h.n.done.Done()
	t := time.NewTicker(h.n.probeInterval)
	defer t.Stop()
	for {
		select {
		case <-h.n.stop:
			return
		case <-t.C:
		case <-h.kickC:
		}
		h.deliverPass(context.Background())
	}
}

// deliverPass attempts every queued hint once. Hints whose owner is not Up
// stay queued without consuming retry budget; failed deliveries to an Up
// owner re-queue until the budget runs out.
func (h *handoffQueue) deliverPass(ctx context.Context) {
	h.mu.Lock()
	batch := h.q
	h.q = nil
	h.mu.Unlock()
	var requeue []hint
	for _, ht := range batch {
		if h.n.PeerState(ht.owner.ID) != StateUp {
			requeue = append(requeue, ht)
			continue
		}
		if err := h.deliver(ctx, ht); err != nil {
			ht.attempts++
			if ht.attempts >= hintRetryBudget {
				h.n.m.handoffDropped.Inc()
				if h.n.log != nil {
					h.n.log.Warn("handoff hint dropped", slog.String("owner", ht.owner.ID),
						slog.Int("attempts", ht.attempts), slog.String("err", err.Error()))
				}
				continue
			}
			requeue = append(requeue, ht)
			continue
		}
		h.n.m.handoffDelivered.Inc()
	}
	if len(requeue) > 0 {
		h.mu.Lock()
		h.q = append(h.q, requeue...)
		h.mu.Unlock()
	}
}

func (h *handoffQueue) deliver(ctx context.Context, ht hint) error {
	if err := faultinject.Fire(SiteHandoff); err != nil {
		return err
	}
	dctx, cancel := context.WithTimeout(ctx, replicateTimeout)
	defer cancel()
	res, err := h.n.post(dctx, ht.owner, ht.path, ht.frame, false)
	if err != nil {
		return err
	}
	if res.Status/100 != 2 {
		return fmt.Errorf("peer returned status %d", res.Status)
	}
	return nil
}

// drain runs delivery passes until the queue empties or ctx expires,
// returning the hints left undelivered.
func (h *handoffQueue) drain(ctx context.Context) int {
	for {
		h.deliverPass(ctx)
		h.mu.Lock()
		left := len(h.q)
		h.mu.Unlock()
		if left == 0 {
			return 0
		}
		select {
		case <-ctx.Done():
			return left
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// pending reports the queued hint count (tests).
func (h *handoffQueue) pending() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.q)
}
