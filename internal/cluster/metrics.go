package cluster

import "tcqr/internal/metrics"

// Route decisions counted under tcqrd_cluster_route_total{decision}. The
// serve layer makes the decision (it owns the request vocabulary and the
// local cache view) and reports it through Node.NoteRoute; the accounting
// invariant the chaos soak asserts is
//
//	route_total{decision="forward"} == served_remote_total + served_local_fallback_total
//
// i.e. every request routed away terminates exactly once, either relayed
// from a peer or served locally after the candidates were exhausted.
const (
	// DecisionForwardedIn: the request arrived with the loop-guard header —
	// a peer already routed it here; serve locally, never re-forward.
	DecisionForwardedIn = "forwarded_in"
	// DecisionLocalHit: the key is already resident in the local cache tier
	// (content-hashed entries are immutable, so a local copy is always
	// current regardless of ownership).
	DecisionLocalHit = "local_hit"
	// DecisionLocalOwner: this node is in the key's owner set and can serve
	// the request from its own payload (a by-key solve that misses the local
	// cache cannot, and routes as a forward instead).
	DecisionLocalOwner = "local_owner"
	// DecisionForward: the key belongs elsewhere (or is a by-key solve this
	// node cannot answer locally); try the owners in order. Per-attempt
	// failures along the way — transport errors and injected cluster.route
	// faults — count under forward_errors, not as a separate decision.
	DecisionForward = "forward"
)

// nodeMetrics holds the tcqrd_cluster_* families.
type nodeMetrics struct {
	route               *metrics.CounterVec
	servedRemote        *metrics.Counter
	servedLocalFallback *metrics.Counter
	forwardSeconds      *metrics.Histogram
	forwardErrors       *metrics.Counter
	peerState           *metrics.GaugeVec
	probes              *metrics.CounterVec
	replicate           *metrics.CounterVec
	handoffQueued       *metrics.Counter
	handoffDelivered    *metrics.Counter
	handoffDropped      *metrics.Counter
}

func newNodeMetrics(reg *metrics.Registry) *nodeMetrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &nodeMetrics{
		route: reg.CounterVec("tcqrd_cluster_route_total",
			"Routing decisions for keyed requests, by decision.", "decision"),
		servedRemote: reg.Counter("tcqrd_cluster_served_remote_total",
			"Forward-decided requests served by relaying a peer response."),
		servedLocalFallback: reg.Counter("tcqrd_cluster_served_local_fallback_total",
			"Forward-decided requests served locally after every candidate failed."),
		forwardSeconds: reg.Histogram("tcqrd_cluster_forward_seconds",
			"Peer forward round-trip latency in seconds.", metrics.LatencyBuckets),
		forwardErrors: reg.Counter("tcqrd_cluster_forward_errors_total",
			"Peer forward attempts that failed in transport (or by injected fault)."),
		peerState: reg.GaugeVec("tcqrd_cluster_peer_state",
			"Probed peer liveness: 2=up, 1=degraded, 0=down.", "peer"),
		probes: reg.CounterVec("tcqrd_cluster_probes_total",
			"Peer health probes, by result.", "result"),
		replicate: reg.CounterVec("tcqrd_cluster_replicate_total",
			"Replica fan-out deliveries, by result.", "result"),
		handoffQueued: reg.Counter("tcqrd_cluster_handoff_queued_total",
			"Hints queued for handoff to a key's owner."),
		handoffDelivered: reg.Counter("tcqrd_cluster_handoff_delivered_total",
			"Hints delivered to their owner."),
		handoffDropped: reg.Counter("tcqrd_cluster_handoff_dropped_total",
			"Hints dropped (queue full or retry budget exhausted)."),
	}
}

// NoteRoute counts one routing decision (see the Decision* constants).
func (n *Node) NoteRoute(decision string) { n.m.route.With(decision).Inc() }

// NoteServedRemote counts a forward-decided request relayed from a peer.
func (n *Node) NoteServedRemote() { n.m.servedRemote.Inc() }

// NoteServedLocalFallback counts a forward-decided request served locally
// after all candidates failed.
func (n *Node) NoteServedLocalFallback() { n.m.servedLocalFallback.Inc() }
