// Package cluster is the tcqrd sharded cache tier: a consistent-hash ring
// over the content-hash cache key (serve.CacheKey — DESIGN.md §14), a peer
// client that forwards /v1/factorize and /v1/solve over internal/wirefmt
// binary frames, liveness probing against each peer's /healthz (folding the
// PR 5 degraded mode into routing: a degraded peer sheds cold factorize work
// but keeps serving its cache tier), and a hinted-handoff queue that re-homes
// keys to their owner when forwarding fails.
//
// The package deliberately deals in opaque HTTP bodies and frames — request
// semantics (what to forward, what counts as a miss) live in internal/serve,
// which owns the wire vocabulary. Failpoint sites: cluster.route (peer
// forward transport), cluster.replicate (replica fan-out send),
// cluster.probe (health probe), cluster.handoff (hint delivery).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// Member is one node of the cluster: a stable id and a dialable host:port.
type Member struct {
	ID   string
	Addr string
}

// ParsePeers parses a "-peers" flag value of the form
// "id1=host:port,id2=host:port,..." into a member list. Every node passes
// the full membership, including itself; ids must be unique and non-empty.
func ParsePeers(spec string) ([]Member, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	seen := make(map[string]bool)
	var out []Member
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		id, addr = strings.TrimSpace(id), strings.TrimSpace(addr)
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: peer %q is not id=host:port", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		seen[id] = true
		out = append(out, Member{ID: id, Addr: addr})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	return out, nil
}

// ring is a consistent-hash ring with virtual nodes. It is immutable after
// construction (membership is static for this PR; the handoff/probe machinery
// handles nodes that are present in the ring but down).
type ring struct {
	points  []ringPoint // sorted by hash
	members []Member
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

// newRing places vnodes virtual points per member on a 64-bit ring. Virtual
// point i of member m hashes "m.ID#i"; keys hash with the same fnv-64a, so
// placement depends only on the id list, never on declaration order.
func newRing(members []Member, vnodes int) *ring {
	r := &ring{
		points:  make([]ringPoint, 0, len(members)*vnodes),
		members: append([]Member(nil), members...),
	}
	for mi, m := range r.members {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hashKey(m.ID + "#" + strconv.Itoa(i)), member: mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Tie-break on member id so equal hashes still order deterministically.
		return r.members[a.member].ID < r.members[b.member].ID
	})
	return r
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// owners returns the first n distinct members clockwise from key's hash, in
// preference order (owners[0] is the primary owner). n is clamped to the
// member count.
func (r *ring) owners(key string, n int) []Member {
	if n > len(r.members) {
		n = len(r.members)
	}
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]Member, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		out = append(out, r.members[p.member])
	}
	return out
}
