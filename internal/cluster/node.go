package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tcqr/internal/faultinject"
	"tcqr/internal/metrics"
	"tcqr/internal/wirefmt"
)

// ForwardHeader is the HTTP loop guard: every peer-forwarded request (and
// every replica/handoff delivery) carries it, set to the sending node's id.
// A node that sees it serves the request locally and never re-forwards.
const ForwardHeader = "X-Tcqr-Forwarded"

// ServedByHeader is set on relayed responses so clients (and the chaos soak)
// can tell which node actually served a forwarded request.
const ServedByHeader = "X-Tcqr-Served-By"

// State is a peer's last probed liveness.
type State int32

const (
	// StateDown: unreachable or failing — skipped for every forward.
	StateDown State = iota
	// StateDegraded: alive but in degraded mode (PR 5 breaker open). A
	// degraded peer sheds cold factorize work but keeps serving its cache
	// tier, so solves still route to it.
	StateDegraded
	// StateUp: healthy.
	StateUp
)

func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDegraded:
		return "degraded"
	default:
		return "down"
	}
}

// Config configures a cluster node.
type Config struct {
	// SelfID must match one entry of Members.
	SelfID string
	// Members is the full static membership, self included.
	Members []Member
	// Replicas is the ownership fan-out per key (clamped to the member
	// count; default 2).
	Replicas int
	// VNodes is the virtual points per member on the ring (default 64).
	VNodes int
	// ProbeInterval is the health-probe period (default 1s); it also paces
	// handoff delivery attempts.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round-trip (default ProbeInterval).
	ProbeTimeout time.Duration
	// HandoffCap bounds the queued hints (default 256; overflow drops).
	HandoffCap int
	// Registry receives the tcqrd_cluster_* metric families (nil = private).
	Registry *metrics.Registry
	// Logger receives probe transitions and handoff outcomes (nil = silent).
	Logger *slog.Logger
	// Client overrides the peer HTTP client (tests; nil = a pooled default).
	Client *http.Client
}

// Node is one member's view of the cluster: the ring, peer states, the
// forwarding client, and the handoff queue. Create with New, release with
// Close.
type Node struct {
	self    Member
	ring    *ring
	replica int
	peers   map[string]*peer
	client  *http.Client
	log     *slog.Logger
	m       *nodeMetrics

	probeInterval time.Duration
	probeTimeout  time.Duration

	leaving atomic.Bool
	stop    chan struct{}
	done    sync.WaitGroup
	closed  sync.Once

	handoff *handoffQueue
}

type peer struct {
	member Member
	state  atomic.Int32
}

// New builds a node from cfg and starts its probe and handoff loops.
func New(cfg Config) (*Node, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("cluster: no members")
	}
	var self *Member
	for i := range cfg.Members {
		if cfg.Members[i].ID == cfg.SelfID {
			self = &cfg.Members[i]
		}
	}
	if self == nil {
		return nil, fmt.Errorf("cluster: self id %q not in member list", cfg.SelfID)
	}
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = 2
	}
	if replicas > len(cfg.Members) {
		replicas = len(cfg.Members)
	}
	vnodes := cfg.VNodes
	if vnodes <= 0 {
		vnodes = 64
	}
	probeInterval := cfg.ProbeInterval
	if probeInterval <= 0 {
		probeInterval = time.Second
	}
	probeTimeout := cfg.ProbeTimeout
	if probeTimeout <= 0 {
		probeTimeout = probeInterval
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     30 * time.Second,
		}}
	}
	n := &Node{
		self:          *self,
		ring:          newRing(cfg.Members, vnodes),
		replica:       replicas,
		peers:         make(map[string]*peer, len(cfg.Members)),
		client:        client,
		log:           cfg.Logger,
		m:             newNodeMetrics(cfg.Registry),
		probeInterval: probeInterval,
		probeTimeout:  probeTimeout,
		stop:          make(chan struct{}),
	}
	for _, m := range cfg.Members {
		if m.ID == n.self.ID {
			continue
		}
		p := &peer{member: m}
		// Peers start optimistically Up so the first requests route; the
		// prober (and forward transport errors) correct the view.
		p.state.Store(int32(StateUp))
		n.peers[m.ID] = p
		n.m.peerState.With(m.ID).Set(float64(StateUp))
	}
	cap := cfg.HandoffCap
	if cap <= 0 {
		cap = 256
	}
	n.handoff = newHandoffQueue(n, cap)
	n.done.Add(2)
	go n.probeLoop()
	go n.handoff.loop()
	return n, nil
}

// SelfID returns this node's member id.
func (n *Node) SelfID() string { return n.self.ID }

// Replicas returns the configured ownership fan-out.
func (n *Node) Replicas() int { return n.replica }

// Owners returns the key's owner set in preference order (primary first).
func (n *Node) Owners(key string) []Member { return n.ring.owners(key, n.replica) }

// IsSelf reports whether m is this node.
func (n *Node) IsSelf(m Member) bool { return m.ID == n.self.ID }

// Peers returns every member except self, sorted by id. It backs the
// last-resort reserve pass for by-key solves: an entry computed as a local
// fallback lives on the coordinator, which need not be an owner, so the only
// exhaustive candidate list is the full membership.
func (n *Node) Peers() []Member {
	out := make([]Member, 0, len(n.peers))
	for _, p := range n.peers {
		out = append(out, p.member)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PeerState returns the last probed state of the given member (self is
// always Up; unknown ids are Down).
func (n *Node) PeerState(id string) State {
	if id == n.self.ID {
		return StateUp
	}
	p := n.peers[id]
	if p == nil {
		return StateDown
	}
	return State(p.state.Load())
}

// Usable reports whether a forward to m may succeed: Up peers take
// anything; Degraded peers take cache-tier work but shed cold factorize
// (cold=true); Down peers take nothing.
func (n *Node) Usable(m Member, cold bool) bool {
	switch n.PeerState(m.ID) {
	case StateUp:
		return true
	case StateDegraded:
		return !cold
	default:
		return false
	}
}

// MarkDown records a transport failure observed outside the prober (a failed
// forward), so subsequent requests skip the peer until a probe revives it.
func (n *Node) MarkDown(m Member) { n.setState(m.ID, StateDown) }

func (n *Node) setState(id string, s State) {
	p := n.peers[id]
	if p == nil {
		return
	}
	if old := State(p.state.Swap(int32(s))); old != s {
		n.m.peerState.With(id).Set(float64(s))
		if n.log != nil {
			n.log.Info("cluster peer state", slog.String("peer", id),
				slog.String("from", old.String()), slog.String("to", s.String()))
		}
	}
}

// BeginLeave flags the node as leaving (cluster-aware drain) and kicks an
// immediate handoff flush attempt so queued hints escape before shutdown.
func (n *Node) BeginLeave() {
	n.leaving.Store(true)
	n.handoff.kick()
}

// Leaving reports whether BeginLeave has been called.
func (n *Node) Leaving() bool { return n.leaving.Load() }

// DrainHandoff synchronously attempts to deliver every queued hint until ctx
// expires, returning the number left undelivered.
func (n *Node) DrainHandoff(ctx context.Context) int { return n.handoff.drain(ctx) }

// Close stops the probe and handoff loops and closes idle peer connections.
func (n *Node) Close() {
	n.closed.Do(func() { close(n.stop) })
	n.done.Wait()
	n.client.CloseIdleConnections()
}

// --- probing ---------------------------------------------------------------

func (n *Node) probeLoop() {
	defer n.done.Done()
	t := time.NewTicker(n.probeInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			for _, p := range n.peers {
				n.probe(p)
			}
		}
	}
}

// probe GETs one peer's /healthz and folds the answer into routing state:
// 200+"ok" → Up, 200+"degraded" → Degraded (PR 5 keeps /healthz at 200 while
// the breaker is open), anything else → Down.
func (n *Node) probe(p *peer) {
	if err := faultinject.Fire(SiteProbe); err != nil {
		n.m.probes.With("error").Inc()
		n.setState(p.member.ID, StateDown)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+p.member.Addr+"/healthz", nil)
	if err != nil {
		n.m.probes.With("error").Inc()
		n.setState(p.member.ID, StateDown)
		return
	}
	resp, err := n.client.Do(req)
	if err != nil {
		n.m.probes.With("error").Inc()
		n.setState(p.member.ID, StateDown)
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		n.m.probes.With("down").Inc()
		n.setState(p.member.ID, StateDown)
		return
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &health); err == nil && health.Status == "degraded" {
		n.m.probes.With("degraded").Inc()
		n.setState(p.member.ID, StateDegraded)
		return
	}
	n.m.probes.With("ok").Inc()
	n.setState(p.member.ID, StateUp)
}

// --- forwarding ------------------------------------------------------------

// ForwardResult is a peer's buffered response to a forwarded request.
type ForwardResult struct {
	Status      int
	ContentType string
	RetryAfter  string
	Body        []byte
}

// maxForwardBody caps a relayed peer response (matches the serve tier's
// request body cap order of magnitude).
const maxForwardBody = 256 << 20

// Forward POSTs one encoded frame to a peer and buffers the response. The
// loop-guard header is always set; acceptBinary mirrors the client's desired
// response encoding. A transport error marks the peer Down (an injected
// cluster.route fault does not — it models a routing glitch, not a dead
// peer). Status interpretation is the caller's.
func (n *Node) Forward(ctx context.Context, m Member, path string, frame []byte, acceptBinary bool) (*ForwardResult, error) {
	if err := faultinject.Fire(SiteRoute); err != nil {
		n.m.forwardErrors.Inc()
		return nil, err
	}
	start := time.Now()
	res, err := n.post(ctx, m, path, frame, acceptBinary)
	n.m.forwardSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		n.m.forwardErrors.Inc()
		n.MarkDown(m)
		return nil, err
	}
	return res, nil
}

func (n *Node) post(ctx context.Context, m Member, path string, frame []byte, acceptBinary bool) (*ForwardResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+m.Addr+path, bytes.NewReader(frame))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", wirefmt.ContentType)
	if acceptBinary {
		req.Header.Set("Accept", wirefmt.ContentType)
	} else {
		req.Header.Set("Accept", "application/json")
	}
	req.Header.Set(ForwardHeader, n.self.ID)
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardBody))
	if err != nil {
		return nil, err
	}
	return &ForwardResult{
		Status:      resp.StatusCode,
		ContentType: resp.Header.Get("Content-Type"),
		RetryAfter:  resp.Header.Get("Retry-After"),
		Body:        body,
	}, nil
}

// --- replication -----------------------------------------------------------

// replicateTimeout bounds one background replica delivery.
const replicateTimeout = 10 * time.Second

// Replicate asynchronously delivers a factorize frame to a replica owner
// (read-your-writes holds on the computing node; replicas converge via this
// fan-out). Delivery failures fall back to the handoff queue, which retries
// until the owner is reachable, so a momentarily down or degraded replica
// still converges.
func (n *Node) Replicate(m Member, path string, frame []byte) {
	n.done.Add(1)
	go func() {
		defer n.done.Done()
		if n.PeerState(m.ID) != StateUp {
			n.m.replicate.With("deferred").Inc()
			n.Hint(m, path, frame)
			return
		}
		if err := faultinject.Fire(SiteReplicate); err != nil {
			n.m.replicate.With("error").Inc()
			n.Hint(m, path, frame)
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), replicateTimeout)
		defer cancel()
		res, err := n.post(ctx, m, path, frame, false)
		if err != nil || res.Status/100 != 2 {
			n.m.replicate.With("error").Inc()
			n.Hint(m, path, frame)
			return
		}
		n.m.replicate.With("ok").Inc()
	}()
}

// Hint queues a frame for hinted handoff to its owner; see handoff.go.
func (n *Node) Hint(m Member, path string, frame []byte) { n.handoff.add(m, path, frame) }

// --- stats -----------------------------------------------------------------

// Stats is a point-in-time snapshot of the node's cluster counters, used by
// the chaos soak and the -smoke-cluster mode to assert the forwarding
// accounting invariant: Routed == ServedRemote + ServedLocalFallback.
type Stats struct {
	Routed              int64
	ServedRemote        int64
	ServedLocalFallback int64
	ForwardErrors       int64
	HandoffQueued       int64
	HandoffDelivered    int64
	HandoffDropped      int64
	ReplicateOK         int64
	ReplicateErrors     int64
}

// Stats returns the current counter snapshot.
func (n *Node) Stats() Stats {
	return Stats{
		Routed:              n.m.route.With(DecisionForward).Value(),
		ServedRemote:        n.m.servedRemote.Value(),
		ServedLocalFallback: n.m.servedLocalFallback.Value(),
		ForwardErrors:       n.m.forwardErrors.Value(),
		HandoffQueued:       n.m.handoffQueued.Value(),
		HandoffDelivered:    n.m.handoffDelivered.Value(),
		HandoffDropped:      n.m.handoffDropped.Value(),
		ReplicateOK:         n.m.replicate.With("ok").Value(),
		ReplicateErrors:     n.m.replicate.With("error").Value(),
	}
}
