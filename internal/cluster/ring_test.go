package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func testMembers(n int) []Member {
	out := make([]Member, n)
	for i := range out {
		out[i] = Member{ID: fmt.Sprintf("n%d", i), Addr: fmt.Sprintf("127.0.0.1:%d", 9000+i)}
	}
	return out
}

func TestParsePeers(t *testing.T) {
	got, err := ParsePeers(" a=127.0.0.1:1 , b=127.0.0.1:2 ,")
	if err != nil {
		t.Fatal(err)
	}
	want := []Member{{ID: "a", Addr: "127.0.0.1:1"}, {ID: "b", Addr: "127.0.0.1:2"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParsePeers = %v, want %v", got, want)
	}
	for _, bad := range []string{"", "  ", "a", "=addr", "a=", "a=1,a=2", ","} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) should fail", bad)
		}
	}
}

func TestRingOwnersDeterministic(t *testing.T) {
	members := testMembers(5)
	r1 := newRing(members, 64)
	// Same ids in a different declaration order must give identical owners —
	// every node computes the same routing from its own copy of the flag.
	shuffled := []Member{members[3], members[0], members[4], members[2], members[1]}
	r2 := newRing(shuffled, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("m%016x-e000-p0-c0-r00-h0", i*7919)
		o1, o2 := r1.owners(key, 2), r2.owners(key, 2)
		if !reflect.DeepEqual(o1, o2) {
			t.Fatalf("key %q: owners differ across declaration order: %v vs %v", key, o1, o2)
		}
	}
}

func TestRingOwnersDistinctAndClamped(t *testing.T) {
	r := newRing(testMembers(3), 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := r.owners(key, 2)
		if len(owners) != 2 {
			t.Fatalf("key %q: %d owners, want 2", key, len(owners))
		}
		if owners[0].ID == owners[1].ID {
			t.Fatalf("key %q: duplicate owner %q", key, owners[0].ID)
		}
	}
	// Replica count past the membership clamps.
	if got := r.owners("k", 99); len(got) != 3 {
		t.Fatalf("clamped owners = %d, want 3", len(got))
	}
	if got := r.owners("k", 0); got != nil {
		t.Fatalf("owners(k, 0) = %v, want nil", got)
	}
}

func TestRingDistribution(t *testing.T) {
	members := testMembers(4)
	r := newRing(members, 64)
	counts := make(map[string]int)
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.owners(fmt.Sprintf("m%016x", i*2654435761), 1)[0].ID]++
	}
	// With 64 vnodes per member the primary-owner share should be within a
	// loose factor of fair (the bound is generous on purpose — this guards
	// against a broken hash, not imperfect balance).
	fair := keys / len(members)
	for id, c := range counts {
		if c < fair/3 || c > fair*3 {
			t.Errorf("member %s owns %d of %d keys (fair %d): distribution broken", id, c, keys, fair)
		}
	}
	if len(counts) != len(members) {
		t.Errorf("only %d of %d members own keys: %v", len(counts), len(members), counts)
	}
}

func TestRingStability(t *testing.T) {
	// Removing one member must not re-home keys whose owner survives: the
	// point of consistent hashing. Compare primary owners between a 4-ring
	// and the 3-ring with n3 removed.
	m4 := testMembers(4)
	r4 := newRing(m4, 64)
	r3 := newRing(m4[:3], 64)
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("stable-%d", i)
		o4 := r4.owners(key, 1)[0]
		o3 := r3.owners(key, 1)[0]
		if o4.ID == "n3" {
			continue // its keys must move somewhere
		}
		if o3.ID != o4.ID {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys with surviving owners re-homed after removing one member", moved)
	}
}
