// Package accuracy computes the error metrics the paper reports, always
// accumulating in float64 so the metric itself does not pollute the
// measurement of the (lower precision) algorithm under test:
//
//   - backward error ‖A − Q̂R̂‖/‖A‖ (Figure 3),
//   - orthogonality ‖I − Q̂ᵀQ̂‖ (Figure 4),
//   - least squares optimality ‖Aᵀ(Ax̂ − b)‖ (Figure 9).
package accuracy

import (
	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

// BackwardError returns ‖A − QR‖_F / ‖A‖_F, evaluated in float64.
func BackwardError(a, q, r *dense.M32) float64 {
	a64 := dense.ToF64(a)
	qr := dense.New[float64](a.Rows, a.Cols)
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, dense.ToF64(q), dense.ToF64(r), 0, qr)
	for i := range qr.Data {
		qr.Data[i] -= a64.Data[i]
	}
	return dense.NormFro(qr) / dense.NormFro(a64)
}

// BackwardError64 is the float64-input variant.
func BackwardError64(a, q, r *dense.M64) float64 {
	qr := dense.New[float64](a.Rows, a.Cols)
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, q, r, 0, qr)
	for i := range qr.Data {
		qr.Data[i] -= a.Data[i]
	}
	return dense.NormFro(qr) / dense.NormFro(a)
}

// OrthoError returns ‖I − QᵀQ‖_F, evaluated in float64.
func OrthoError(q *dense.M32) float64 { return OrthoError64(dense.ToF64(q)) }

// OrthoError64 is the float64-input variant.
func OrthoError64(q *dense.M64) float64 {
	g := dense.New[float64](q.Cols, q.Cols)
	blas.Gemm(blas.Trans, blas.NoTrans, 1, q, q, 0, g)
	for i := 0; i < q.Cols; i++ {
		g.Set(i, i, g.At(i, i)-1)
	}
	return dense.NormFro(g)
}

// LLSOptimality returns ‖Aᵀ(Ax − b)‖₂ — the paper's accuracy metric for
// least squares solutions (Section 3.2.2) — evaluated in float64.
func LLSOptimality(a *dense.M64, x, b []float64) float64 {
	r := append([]float64(nil), b...)
	blas.Gemv(blas.NoTrans, 1, a, x, -1, r) // r = A·x − b
	g := make([]float64, a.Cols)
	blas.Gemv(blas.Trans, 1, a, r, 0, g)
	return blas.Nrm2(g)
}

// ResidualNorm returns ‖Ax − b‖₂ in float64.
func ResidualNorm(a *dense.M64, x, b []float64) float64 {
	r := append([]float64(nil), b...)
	blas.Gemv(blas.NoTrans, 1, a, x, -1, r)
	return blas.Nrm2(r)
}

// UpperTriangular reports whether every element strictly below the main
// diagonal of r is exactly zero.
func UpperTriangular[T dense.Float](r *dense.Matrix[T]) bool {
	for j := 0; j < r.Cols; j++ {
		col := r.Col(j)
		for i := j + 1; i < r.Rows; i++ {
			if col[i] != 0 {
				return false
			}
		}
	}
	return true
}
