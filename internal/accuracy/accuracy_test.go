package accuracy

import (
	"math"
	"testing"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

func TestBackwardErrorExactFactorization(t *testing.T) {
	// A = Q·R with orthogonal 2×2 rotation and a chosen R: error must be
	// at float32 rounding level; a perturbed R must register.
	c, s := float32(math.Cos(0.3)), float32(math.Sin(0.3))
	q := dense.New[float32](2, 2)
	q.Set(0, 0, c)
	q.Set(1, 0, s)
	q.Set(0, 1, -s)
	q.Set(1, 1, c)
	r := dense.New[float32](2, 2)
	r.Set(0, 0, 2)
	r.Set(0, 1, 1)
	r.Set(1, 1, 3)
	a := dense.New[float32](2, 2)
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, q, r, 0, a)
	if be := BackwardError(a, q, r); be > 1e-7 {
		t.Errorf("exact factorization backward error %g", be)
	}
	rBad := r.Clone()
	rBad.Set(0, 1, 1.1)
	if be := BackwardError(a, q, rBad); be < 1e-3 {
		t.Errorf("perturbed factorization backward error %g too small", be)
	}
}

func TestOrthoError(t *testing.T) {
	id := dense.New[float32](5, 3)
	id.SetIdentity()
	if oe := OrthoError(id); oe != 0 {
		t.Errorf("identity columns ortho error %g", oe)
	}
	// Doubling a column gives ‖I − QᵀQ‖ with a 3 on that diagonal entry.
	bad := id.Clone()
	blas.Scal(2, bad.Col(1))
	if oe := OrthoError(bad); math.Abs(oe-3) > 1e-12 {
		t.Errorf("ortho error %g, want 3", oe)
	}
	// float64 variant agrees.
	if oe := OrthoError64(dense.ToF64(bad)); math.Abs(oe-3) > 1e-12 {
		t.Errorf("OrthoError64 %g", oe)
	}
}

func TestLLSOptimalityAndResidual(t *testing.T) {
	// A = I (3×2 embedding): x = b[:2] is optimal; Aᵀ(Ax−b) = 0 while the
	// residual is |b[2]|.
	a := dense.New[float64](3, 2)
	a.SetIdentity()
	b := []float64{1, 2, 5}
	x := []float64{1, 2}
	if opt := LLSOptimality(a, x, b); opt > 1e-15 {
		t.Errorf("optimality at minimizer %g", opt)
	}
	if res := ResidualNorm(a, x, b); math.Abs(res-5) > 1e-15 {
		t.Errorf("residual %g, want 5", res)
	}
	// Suboptimal x registers in the gradient.
	if opt := LLSOptimality(a, []float64{0, 0}, b); math.Abs(opt-math.Sqrt(5)) > 1e-12 {
		t.Errorf("gradient at zero %g, want √5", opt)
	}
}

func TestUpperTriangular(t *testing.T) {
	r := dense.New[float64](3, 3)
	r.Set(0, 1, 1)
	r.Set(2, 2, 1)
	if !UpperTriangular(r) {
		t.Error("upper triangular not recognized")
	}
	r.Set(2, 0, 1e-30)
	if UpperTriangular(r) {
		t.Error("sub-diagonal entry not detected")
	}
	// Tall rectangular with zero below diagonal.
	tall := dense.New[float64](4, 2)
	tall.Set(0, 0, 1)
	tall.Set(1, 1, 1)
	if !UpperTriangular(tall) {
		t.Error("tall upper trapezoid not recognized")
	}
}

func TestBackwardError64(t *testing.T) {
	a := dense.New[float64](2, 2)
	a.SetIdentity()
	q := a.Clone()
	r := a.Clone()
	if be := BackwardError64(a, q, r); be != 0 {
		t.Errorf("identity backward error %g", be)
	}
}
