package chol

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

// spdMatrix builds a well-conditioned SPD matrix G = AᵀA + n·I.
func spdMatrix(rng *rand.Rand, n int) *dense.M64 {
	a := dense.New[float64](n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	g := dense.New[float64](n, n)
	blas.Gemm(blas.Trans, blas.NoTrans, 1, a, a, 0, g)
	for i := 0; i < n; i++ {
		g.Set(i, i, g.At(i, i)+float64(n))
	}
	return g
}

func TestPotrfReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 17, 64} {
		g := spdMatrix(rng, n)
		l := g.Clone()
		if err := Potrf(l); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Zero the strict upper triangle before reconstructing.
		for j := 0; j < n; j++ {
			for i := 0; i < j; i++ {
				l.Set(i, j, 0)
			}
		}
		llt := dense.New[float64](n, n)
		blas.Gemm(blas.NoTrans, blas.Trans, 1, l, l, 0, llt)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(llt.At(i, j)-g.At(i, j)) > 1e-9*float64(n) {
					t.Fatalf("n=%d: LLᵀ(%d,%d) = %v, want %v", n, i, j, llt.At(i, j), g.At(i, j))
				}
			}
		}
	}
}

func TestPotrsSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 24
	g := spdMatrix(rng, n)
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	blas.Gemv(blas.NoTrans, 1, g, xTrue, 0, b)

	l := g.Clone()
	if err := Potrf(l); err != nil {
		t.Fatal(err)
	}
	PotrsVec(l, b)
	for i := range b {
		if math.Abs(b[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("x[%d] = %v, want %v", i, b[i], xTrue[i])
		}
	}

	// Multi-RHS path.
	bm := dense.New[float64](n, 3)
	want := dense.New[float64](n, 3)
	for j := 0; j < 3; j++ {
		for i := 0; i < n; i++ {
			want.Set(i, j, rng.NormFloat64())
		}
	}
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, g, want, 0, bm)
	Potrs(l, bm)
	for i := range bm.Data {
		if math.Abs(bm.Data[i]-want.Data[i]) > 1e-8 {
			t.Fatalf("multi-rhs mismatch at %d", i)
		}
	}
}

func TestPotrfRejectsIndefinite(t *testing.T) {
	g := dense.New[float64](2, 2)
	g.Set(0, 0, 1)
	g.Set(1, 0, 5)
	g.Set(1, 1, 1) // 1 - 25 < 0 after elimination
	err := Potrf(g)
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestPotrfFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g64 := spdMatrix(rng, 16)
	g := dense.ToF32(g64)
	l := g.Clone()
	if err := Potrf(l); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 16; j++ {
		for i := 0; i < j; i++ {
			l.Set(i, j, 0)
		}
	}
	llt := dense.New[float32](16, 16)
	blas.Gemm(blas.NoTrans, blas.Trans, 1, l, l, 0, llt)
	for i := range llt.Data {
		if math.Abs(float64(llt.Data[i]-g.Data[i])) > 1e-3 {
			t.Fatalf("float32 LLᵀ mismatch at %d: %v vs %v", i, llt.Data[i], g.Data[i])
		}
	}
}
