// Package chol implements the Cholesky factorization and solve used by the
// normal-equations least squares baseline (Section 2.2 of the paper: solve
// AᵀA·x = AᵀB via AᵀA = L·Lᵀ). The paper uses this method only as the
// cautionary unstable baseline; it is included so the accuracy comparison
// can be reproduced.
package chol

import (
	"errors"
	"fmt"
	"math"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

// ErrNotPositiveDefinite is returned when a pivot is not positive, which for
// the normal equations happens exactly when κ(A)² overwhelms the working
// precision — the failure mode QR-based solvers avoid.
var ErrNotPositiveDefinite = errors.New("chol: matrix is not positive definite")

// Potrf overwrites the lower triangle of a with its Cholesky factor L such
// that A = L·Lᵀ. The strict upper triangle is not referenced. It returns
// ErrNotPositiveDefinite (wrapping the failing column index) if a pivot is
// non-positive.
func Potrf[T dense.Float](a *dense.Matrix[T]) error {
	n := a.Rows
	if a.Cols != n {
		panic("chol: Potrf requires a square matrix")
	}
	for j := 0; j < n; j++ {
		colJ := a.Col(j)
		// Diagonal update: a_jj -= Σ_{k<j} L_jk².
		d := float64(colJ[j])
		for k := 0; k < j; k++ {
			v := float64(a.At(j, k))
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w (column %d, pivot %g)", ErrNotPositiveDefinite, j, d)
		}
		l := T(math.Sqrt(d))
		colJ[j] = l
		if j == n-1 {
			continue
		}
		// Column update: a[j+1:, j] = (a[j+1:, j] - Σ_{k<j} L[j+1:,k]·L_jk) / l.
		tail := colJ[j+1:]
		for k := 0; k < j; k++ {
			blas.Axpy(-a.At(j, k), a.Col(k)[j+1:], tail)
		}
		blas.Scal(1/l, tail)
	}
	return nil
}

// Potrs solves A·X = B in place given the Cholesky factor L from Potrf
// (stored in the lower triangle of l): forward then backward substitution.
func Potrs[T dense.Float](l *dense.Matrix[T], b *dense.Matrix[T]) {
	blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.NonUnit, 1, l, b)
	blas.Trsm(blas.Left, blas.Lower, blas.Trans, blas.NonUnit, 1, l, b)
}

// PotrsVec is the single right-hand-side form of Potrs.
func PotrsVec[T dense.Float](l *dense.Matrix[T], x []T) {
	blas.Trsv(blas.Lower, blas.NoTrans, blas.NonUnit, l, x)
	blas.Trsv(blas.Lower, blas.Trans, blas.NonUnit, l, x)
}
