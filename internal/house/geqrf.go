// Package house implements blocked Householder QR factorization and the
// associated orthogonal-multiply routines, generically over float32 and
// float64. It is the stand-in for cuSOLVER's SGEQRF/DGEQRF, SORMQR/DORMQR
// and SORGQR/DORGQR: the baselines every experiment in the paper compares
// against, and also the reference ("panelQR") used inside the recursive
// algorithms.
//
// The factorization follows LAPACK's storage convention: on return from
// Geqrf the upper triangle of A holds R, and the columns below the diagonal
// hold the Householder vectors v_j (with implicit unit diagonal), scaled so
// that H_j = I - τ_j·v_j·v_jᵀ. Blocked updates use the compact WY
// representation Q = I - V·T·Vᵀ (Schreiber & Van Loan), which turns the
// trailing-matrix update into the GEMMs that the paper's Figure 1 analysis
// is about.
package house

import (
	"fmt"
	"math"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

// DefaultBlockSize is the panel width used by Geqrf when the caller passes
// nb <= 0. It mirrors typical LAPACK tuning for the problem sizes exercised
// in this repository.
const DefaultBlockSize = 32

// Larfg generates an elementary Householder reflector H = I - τ·v·vᵀ such
// that H·[α; x] = [β; 0]. On return x holds the tail of v (v₀ = 1 is
// implicit), *alpha holds β, and τ is returned. A zero tail yields τ = 0
// (H = I).
func Larfg[T dense.Float](alpha *T, x []T) T {
	xnorm := blas.Nrm2(x)
	if xnorm == 0 {
		return 0
	}
	a := float64(*alpha)
	beta := -math.Copysign(math.Hypot(a, float64(xnorm)), a)
	tau := T((beta - a) / beta)
	blas.Scal(T(1/(a-beta)), x)
	*alpha = T(beta)
	return tau
}

// Geqr2 computes the unblocked Householder QR of a in place, writing the
// reflector scalars into tau (len >= min(m, n)).
func Geqr2[T dense.Float](a *dense.Matrix[T], tau []T) {
	m, n := a.Rows, a.Cols
	k := min(m, n)
	if len(tau) < k {
		panic(fmt.Sprintf("house: tau length %d < %d", len(tau), k))
	}
	var w []T
	for j := 0; j < k; j++ {
		col := a.Col(j)
		tau[j] = Larfg(&col[j], col[j+1:])
		if tau[j] != 0 && j < n-1 {
			// Apply H_j to the trailing matrix A[j:m, j+1:n].
			beta := col[j]
			col[j] = 1
			v := col[j:]
			trail := a.View(j, j+1, m-j, n-j-1)
			if cap(w) < trail.Cols {
				w = make([]T, trail.Cols)
			}
			w = w[:trail.Cols]
			blas.Gemv(blas.Trans, 1, trail, v, 0, w)
			blas.Ger(-tau[j], v, w, trail)
			col[j] = beta
		}
	}
}

// extractV materializes the unit lower-trapezoidal reflector matrix V (m×k)
// from the factored panel.
func extractV[T dense.Float](panel *dense.Matrix[T]) *dense.Matrix[T] {
	m, k := panel.Rows, min(panel.Rows, panel.Cols)
	v := dense.New[T](m, k)
	for j := 0; j < k; j++ {
		dst := v.Col(j)
		src := panel.Col(j)
		dst[j] = 1
		copy(dst[j+1:], src[j+1:m])
	}
	return v
}

// Larft forms the upper-triangular block reflector factor t (k×k, zeroed
// below the diagonal) for the forward columnwise WY representation
// Q = I - V·T·Vᵀ, where v is the explicit m×k unit lower-trapezoidal
// reflector matrix.
func Larft[T dense.Float](v *dense.Matrix[T], tau []T, t *dense.Matrix[T]) {
	k := len(tau)
	if v.Cols != k || t.Rows != k || t.Cols != k {
		panic("house: larft shape mismatch")
	}
	t.Zero()
	for i := 0; i < k; i++ {
		if tau[i] == 0 {
			continue
		}
		t.Set(i, i, tau[i])
		if i == 0 {
			continue
		}
		// t[0:i, i] = -τ_i · T[0:i,0:i] · (V[:,0:i]ᵀ v_i)
		vi := v.Col(i)
		ti := t.Col(i)[:i]
		head := v.View(0, 0, v.Rows, i)
		blas.Gemv(blas.Trans, -tau[i], head, vi, 0, ti)
		blas.Trmv(blas.Upper, blas.NoTrans, blas.NonUnit, t.View(0, 0, i, i), ti)
	}
}

// Larfb applies the block reflector to c from the left:
// c ← (I - V·T'·Vᵀ)·c where T' = T when trans == NoTrans (applying Q) and
// T' = Tᵀ when trans == Trans (applying Qᵀ).
func Larfb[T dense.Float](trans blas.Transpose, v, t, c *dense.Matrix[T]) {
	if v.Rows != c.Rows {
		panic("house: larfb row mismatch")
	}
	k := v.Cols
	w := dense.New[T](k, c.Cols)
	// W = Vᵀ·C
	blas.Gemm(blas.Trans, blas.NoTrans, 1, v, c, 0, w)
	// W = T'·W (triangular multiply, in place).
	blas.Trmm(blas.Left, blas.Upper, trans, blas.NonUnit, 1, t, w)
	// C = C - V·W
	blas.Gemm(blas.NoTrans, blas.NoTrans, -1, v, w, 1, c)
}

// Geqrf computes the blocked Householder QR factorization of a in place
// with panel width nb (nb <= 0 selects DefaultBlockSize) and returns the
// reflector scalars.
func Geqrf[T dense.Float](a *dense.Matrix[T], nb int) []T {
	m, n := a.Rows, a.Cols
	k := min(m, n)
	tau := make([]T, k)
	if nb <= 0 {
		nb = DefaultBlockSize
	}
	for j := 0; j < k; j += nb {
		jb := min(nb, k-j)
		panel := a.View(j, j, m-j, jb)
		Geqr2(panel, tau[j:j+jb])
		if j+jb < n {
			v := extractV(panel)
			t := dense.New[T](jb, jb)
			Larft(v, tau[j:j+jb], t)
			trail := a.View(j, j+jb, m-j, n-j-jb)
			Larfb(blas.Trans, v, t, trail)
		}
	}
	return tau
}

// ExtractR copies the upper-triangular factor out of a factored matrix into
// a fresh min(m,n)×n matrix.
func ExtractR[T dense.Float](a *dense.Matrix[T]) *dense.Matrix[T] {
	k := min(a.Rows, a.Cols)
	r := dense.New[T](k, a.Cols)
	for j := 0; j < a.Cols; j++ {
		src := a.Col(j)
		dst := r.Col(j)
		for i := 0; i <= min(j, k-1); i++ {
			dst[i] = src[i]
		}
	}
	return r
}
