package house

import (
	"fmt"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

// Ormqr multiplies c from the left by Q or Qᵀ, where Q is the orthogonal
// factor implicitly stored in the factored matrix a (output of Geqrf) and
// tau. This is the cuSOLVER [S/D]ORMQR operation used by the direct least
// squares solvers. nb <= 0 selects DefaultBlockSize.
func Ormqr[T dense.Float](trans blas.Transpose, a *dense.Matrix[T], tau []T, c *dense.Matrix[T], nb int) {
	m := a.Rows
	k := len(tau)
	if c.Rows != m {
		panic(fmt.Sprintf("house: ormqr C has %d rows, want %d", c.Rows, m))
	}
	if nb <= 0 {
		nb = DefaultBlockSize
	}
	// Q = H_0·H_1·…·H_{k-1}. Applying Qᵀ uses ascending blocks, Q descending.
	type block struct{ j, jb int }
	var blocks []block
	for j := 0; j < k; j += nb {
		blocks = append(blocks, block{j, min(nb, k-j)})
	}
	if trans == blas.NoTrans {
		for i, j := 0, len(blocks)-1; i < j; i, j = i+1, j-1 {
			blocks[i], blocks[j] = blocks[j], blocks[i]
		}
	}
	for _, b := range blocks {
		panel := a.View(b.j, b.j, m-b.j, b.jb)
		v := extractV(panel)
		t := dense.New[T](b.jb, b.jb)
		Larft(v, tau[b.j:b.j+b.jb], t)
		Larfb(trans, v, t, c.View(b.j, 0, m-b.j, c.Cols))
	}
}

// OrmqrVec is the single right-hand-side convenience wrapper around Ormqr.
func OrmqrVec[T dense.Float](trans blas.Transpose, a *dense.Matrix[T], tau []T, x []T, nb int) {
	c := dense.NewFromColMajor(len(x), 1, x)
	Ormqr(trans, a, tau, c, nb)
}

// Orgqr materializes the thin orthogonal factor Q (m×k, k = len(tau)) from
// a factored matrix, the [S/D]ORGQR operation. The paper's orthogonality
// experiments (Figure 4 and 5) compare against SGEQRF+SORMQR, i.e. exactly
// this Geqrf+Orgqr pipeline.
func Orgqr[T dense.Float](a *dense.Matrix[T], tau []T, nb int) *dense.Matrix[T] {
	m := a.Rows
	k := len(tau)
	q := dense.New[T](m, k)
	q.SetIdentity()
	Ormqr(blas.NoTrans, a, tau, q, nb)
	return q
}

// QR bundles a factored matrix with its reflector scalars, providing a
// convenient handle for the solver layers.
type QR[T dense.Float] struct {
	Factored *dense.Matrix[T] // R in the upper triangle, V below
	Tau      []T
}

// Factor runs Geqrf on a copy of a and returns the factorization handle.
// The input matrix is not modified.
func Factor[T dense.Float](a *dense.Matrix[T], nb int) *QR[T] {
	f := a.Clone()
	tau := Geqrf(f, nb)
	return &QR[T]{Factored: f, Tau: tau}
}

// R returns a copy of the upper-triangular factor.
func (qr *QR[T]) R() *dense.Matrix[T] { return ExtractR(qr.Factored) }

// Q materializes the thin orthogonal factor.
func (qr *QR[T]) Q() *dense.Matrix[T] { return Orgqr(qr.Factored, qr.Tau, 0) }

// QTVec overwrites x with Qᵀx.
func (qr *QR[T]) QTVec(x []T) { OrmqrVec(blas.Trans, qr.Factored, qr.Tau, x, 0) }
