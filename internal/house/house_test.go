package house

import (
	"math"
	"math/rand"
	"testing"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

func randMat[T dense.Float](rng *rand.Rand, r, c int) *dense.Matrix[T] {
	m := dense.New[T](r, c)
	for i := range m.Data {
		m.Data[i] = T(rng.NormFloat64())
	}
	return m
}

// backwardError returns ‖A - QR‖_F / ‖A‖_F in float64.
func backwardError[T dense.Float](a, q, r *dense.Matrix[T]) float64 {
	qr := dense.New[float64](a.Rows, a.Cols)
	var q64, r64 *dense.M64
	switch any(T(0)).(type) {
	case float32:
		q64 = dense.ToF64(any(q).(*dense.M32))
		r64 = dense.ToF64(any(r).(*dense.M32))
	default:
		q64 = any(q).(*dense.M64).Clone()
		r64 = any(r).(*dense.M64).Clone()
	}
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, q64, r64, 0, qr)
	var a64 *dense.M64
	switch any(T(0)).(type) {
	case float32:
		a64 = dense.ToF64(any(a).(*dense.M32))
	default:
		a64 = any(a).(*dense.M64)
	}
	diff := a64.Clone()
	for i := range diff.Data {
		diff.Data[i] -= qr.Data[i]
	}
	return dense.NormFro(diff) / dense.NormFro(a64)
}

// orthoError returns ‖I - QᵀQ‖_F in float64.
func orthoError[T dense.Float](q *dense.Matrix[T]) float64 {
	var q64 *dense.M64
	switch any(T(0)).(type) {
	case float32:
		q64 = dense.ToF64(any(q).(*dense.M32))
	default:
		q64 = any(q).(*dense.M64)
	}
	g := dense.New[float64](q.Cols, q.Cols)
	blas.Gemm(blas.Trans, blas.NoTrans, 1, q64, q64, 0, g)
	for i := 0; i < q.Cols; i++ {
		g.Set(i, i, g.At(i, i)-1)
	}
	return dense.NormFro(g)
}

func TestGeqrfFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sz := range []struct{ m, n int }{{8, 8}, {40, 24}, {100, 100}, {128, 37}, {65, 64}} {
		a := randMat[float64](rng, sz.m, sz.n)
		qr := Factor(a, 16)
		q, r := qr.Q(), qr.R()
		if be := backwardError(a, q, r); be > 1e-14 {
			t.Errorf("%dx%d: backward error %g", sz.m, sz.n, be)
		}
		if oe := orthoError(q); oe > 1e-13 {
			t.Errorf("%dx%d: orthogonality %g", sz.m, sz.n, oe)
		}
		// R must be upper triangular.
		for j := 0; j < r.Cols; j++ {
			for i := j + 1; i < r.Rows; i++ {
				if r.At(i, j) != 0 {
					t.Fatalf("R(%d,%d) = %v below diagonal", i, j, r.At(i, j))
				}
			}
		}
	}
}

func TestGeqrfFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat[float32](rng, 96, 48)
	qr := Factor(a, 16)
	if be := backwardError(a, qr.Q(), qr.R()); be > 1e-5 {
		t.Errorf("float32 backward error %g", be)
	}
	if oe := orthoError(qr.Q()); oe > 1e-4 {
		t.Errorf("float32 orthogonality %g", oe)
	}
}

func TestBlockedMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat[float64](rng, 50, 30)
	blocked := a.Clone()
	tauB := Geqrf(blocked, 8)
	unblocked := a.Clone()
	tauU := make([]float64, 30)
	Geqr2(unblocked, tauU)
	for i := range tauU {
		if math.Abs(tauB[i]-tauU[i]) > 1e-12 {
			t.Fatalf("tau[%d]: blocked %v unblocked %v", i, tauB[i], tauU[i])
		}
	}
	for j := 0; j < 30; j++ {
		for i := 0; i <= j; i++ {
			if math.Abs(blocked.At(i, j)-unblocked.At(i, j)) > 1e-11 {
				t.Fatalf("R(%d,%d): blocked %v unblocked %v", i, j, blocked.At(i, j), unblocked.At(i, j))
			}
		}
	}
}

func TestLarfgProperties(t *testing.T) {
	// H·x must equal [β; 0] with |β| = ‖x‖.
	x := []float64{3, 4, 0, 12}
	alpha := x[0]
	tail := append([]float64(nil), x[1:]...)
	tau := Larfg(&alpha, tail)
	norm := blas.Nrm2(x)
	if math.Abs(math.Abs(alpha)-norm) > 1e-14 {
		t.Errorf("|beta| = %v, want %v", math.Abs(alpha), norm)
	}
	// beta has opposite sign of x[0] (LAPACK convention).
	if alpha*x[0] > 0 {
		t.Errorf("beta sign convention violated: beta=%v x0=%v", alpha, x[0])
	}
	// Verify H·x = [β;0] explicitly: v = [1, tail], H·x = x - τ·v·(vᵀx).
	v := append([]float64{1}, tail...)
	vtx := blas.Dot(v, x)
	hx := make([]float64, len(x))
	for i := range hx {
		hx[i] = x[i] - tau*v[i]*vtx
	}
	if math.Abs(hx[0]-alpha) > 1e-13 {
		t.Errorf("Hx[0] = %v, want %v", hx[0], alpha)
	}
	for i := 1; i < len(hx); i++ {
		if math.Abs(hx[i]) > 1e-13 {
			t.Errorf("Hx[%d] = %v, want 0", i, hx[i])
		}
	}
	// Zero tail: identity reflector.
	alpha = 5
	if tau := Larfg(&alpha, []float64{0, 0}); tau != 0 || alpha != 5 {
		t.Errorf("zero tail: tau=%v alpha=%v", tau, alpha)
	}
}

func TestOrmqrAgainstExplicitQ(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMat[float64](rng, 30, 12)
	qr := Factor(a, 5)
	q := qr.Q()
	c := randMat[float64](rng, 30, 7)

	// Qᵀ·C via ormqr vs explicit GEMM. Note ormqr applies the full m×m Q,
	// so compare only through the thin factor's span: Qᵀ_thin·C.
	cOrm := c.Clone()
	Ormqr(blas.Trans, qr.Factored, qr.Tau, cOrm, 5)
	want := dense.New[float64](12, 7)
	blas.Gemm(blas.Trans, blas.NoTrans, 1, q, c, 0, want)
	for j := 0; j < 7; j++ {
		for i := 0; i < 12; i++ {
			if math.Abs(cOrm.At(i, j)-want.At(i, j)) > 1e-12 {
				t.Fatalf("ormqr trans (%d,%d): %v vs %v", i, j, cOrm.At(i, j), want.At(i, j))
			}
		}
	}

	// Round trip: Q·(Qᵀ·C) = C for the full square Q.
	back := cOrm.Clone()
	Ormqr(blas.NoTrans, qr.Factored, qr.Tau, back, 5)
	for i := range back.Data {
		if math.Abs(back.Data[i]-c.Data[i]) > 1e-12 {
			t.Fatalf("Q·Qᵀ·C != C at %d: %v vs %v", i, back.Data[i], c.Data[i])
		}
	}
}

func TestOrmqrVecSolvePath(t *testing.T) {
	// Solve A·x = b for square A via QR: x = R⁻¹·(Qᵀb).
	rng := rand.New(rand.NewSource(5))
	n := 20
	a := randMat[float64](rng, n, n)
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	blas.Gemv(blas.NoTrans, 1, a, xTrue, 0, b)

	qr := Factor(a, 0)
	qr.QTVec(b)
	blas.Trsv(blas.Upper, blas.NoTrans, blas.NonUnit, qr.Factored.View(0, 0, n, n), b)
	for i := range b {
		if math.Abs(b[i]-xTrue[i]) > 1e-10 {
			t.Fatalf("solve x[%d] = %v, want %v", i, b[i], xTrue[i])
		}
	}
}

func TestExtractR(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randMat[float64](rng, 10, 4)
	f := a.Clone()
	Geqrf(f, 0)
	r := ExtractR(f)
	if r.Rows != 4 || r.Cols != 4 {
		t.Fatalf("R shape %dx%d", r.Rows, r.Cols)
	}
	// Wide case: R is min(m,n)×n.
	w := randMat[float64](rng, 3, 6)
	Geqrf(w, 0)
	rw := ExtractR(w)
	if rw.Rows != 3 || rw.Cols != 6 {
		t.Fatalf("wide R shape %dx%d", rw.Rows, rw.Cols)
	}
}

func TestTallSkinnyAndEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Single column.
	a := randMat[float64](rng, 15, 1)
	qr := Factor(a, 0)
	if be := backwardError(a, qr.Q(), qr.R()); be > 1e-14 {
		t.Errorf("single column backward error %g", be)
	}
	// Single row.
	row := randMat[float64](rng, 1, 5)
	f := row.Clone()
	tau := Geqrf(f, 0)
	if len(tau) != 1 {
		t.Fatalf("tau length %d", len(tau))
	}
	// Already-orthogonal columns stay orthogonal.
	e := dense.New[float64](10, 3)
	e.SetIdentity()
	qre := Factor(e, 0)
	if oe := orthoError(qre.Q()); oe > 1e-14 {
		t.Errorf("identity input orthogonality %g", oe)
	}
}
