package house

import (
	"math/rand"
	"testing"

	"tcqr/internal/blas"
)

func BenchmarkGeqrf(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, sz := range []struct{ m, n int }{{512, 128}, {2048, 256}} {
		a := randMat[float32](rng, sz.m, sz.n)
		b.Run(byDims(sz.m, sz.n), func(b *testing.B) {
			flops := 2*int64(sz.m)*int64(sz.n)*int64(sz.n) - 2*int64(sz.n)*int64(sz.n)*int64(sz.n)/3
			b.SetBytes(flops)
			for i := 0; i < b.N; i++ {
				w := a.Clone()
				Geqrf(w, 0)
			}
		})
	}
}

func BenchmarkOrmqr(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := randMat[float32](rng, 1024, 128)
	qr := Factor(a, 0)
	c := randMat[float32](rng, 1024, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := c.Clone()
		Ormqr(blas.Trans, qr.Factored, qr.Tau, w, 0)
	}
}

func byDims(m, n int) string {
	return itoa(m) + "x" + itoa(n)
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return string(buf[i:])
}
