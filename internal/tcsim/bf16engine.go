package tcsim

import (
	"sync/atomic"

	"tcqr/internal/bf16"
	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

// BFloat16 is a TPU-style neural engine: GEMM operands are rounded to
// bfloat16 and products accumulate in float32 (the paper's §2.1 notes
// Google's TPU and Intel's bfloat16 hardware both accumulate in FP32).
// Compared with TensorCore it embodies the other side of the half-
// precision trade-off: ~10× coarser resolution (unit roundoff 2⁻⁸ vs
// 2⁻¹¹) but the full float32 exponent range, so the §3.5 overflow hazard
// essentially disappears — at the cost of ~8× larger rounding errors in
// every result. The zero value is ready to use.
type BFloat16 struct {
	// TrackSpecials counts operands that still overflow (only possible at
	// the extreme top of the float32 range).
	TrackSpecials bool

	stats Stats
}

// Gemm implements Engine with bfloat16 operand rounding and float32
// accumulation.
func (e *BFloat16) Gemm(tA, tB blas.Transpose, alpha float32, a, b *dense.M32, beta float32, c *dense.M32) {
	recordCall(&e.stats, tA, a, tB, b)
	ra := bfRoundedCopy(a)
	rb := bfRoundedCopy(b)
	if e.TrackSpecials {
		atomic.AddInt64(&e.stats.Overflows, bfCountOverflows(a)+bfCountOverflows(b))
	}
	blas.Gemm(tA, tB, alpha, ra, rb, beta, c)
}

// Name implements Engine.
func (e *BFloat16) Name() string { return "BF16-GEMM" }

// Stats returns a snapshot of the accumulated counters.
func (e *BFloat16) Stats() Stats { return snapshot(&e.stats) }

// ResetStats zeroes the counters.
func (e *BFloat16) ResetStats() { reset(&e.stats) }

func bfRoundedCopy(m *dense.M32) *dense.M32 {
	out := dense.New[float32](m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		bf16.RoundSlice(out.Col(j), m.Col(j))
	}
	return out
}

func bfCountOverflows(m *dense.M32) int64 {
	var n int64
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			if bf16.Overflows(v) {
				n++
			}
		}
	}
	return n
}
