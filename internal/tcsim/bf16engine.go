package tcsim

import (
	"sync/atomic"

	"tcqr/internal/bf16"
	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

// BFloat16 is a TPU-style neural engine: GEMM operands are rounded to
// bfloat16 and products accumulate in float32 (the paper's §2.1 notes
// Google's TPU and Intel's bfloat16 hardware both accumulate in FP32).
// Compared with TensorCore it embodies the other side of the half-
// precision trade-off: ~10× coarser resolution (unit roundoff 2⁻⁸ vs
// 2⁻¹¹) but the full float32 exponent range, so the §3.5 overflow hazard
// essentially disappears — at the cost of ~8× larger rounding errors in
// every result. The zero value is ready to use.
type BFloat16 struct {
	// TrackSpecials counts operands that still overflow (only possible at
	// the extreme top of the float32 range).
	TrackSpecials bool

	stats Stats
}

// bfHook rounds packed GEMM panels through bfloat16. The RoundCount wrapper
// is a package-level closure, allocated once at init, so the hot path stays
// allocation-free.
var bfHook = blas.PackHook[float32]{
	Round: bf16.RoundInPlace,
	RoundCount: func(panel []float32) (overflow, underflow int64) {
		return bf16.RoundInPlaceCount(panel), 0
	},
}

// Gemm implements Engine with bfloat16 operand rounding and float32
// accumulation. Rounding (and overflow accounting) is fused into the packed
// kernel's operand packing, so no rounded copies are materialized.
func (e *BFloat16) Gemm(tA, tB blas.Transpose, alpha float32, a, b *dense.M32, beta float32, c *dense.M32) {
	recordCall(e.Name(), &e.stats, tA, a, tB, b)
	ov, _ := blas.GemmHooked(tA, tB, alpha, a, b, beta, c, &bfHook, &bfHook, e.TrackSpecials)
	if e.TrackSpecials {
		atomic.AddInt64(&e.stats.Overflows, ov)
	}
	gemmFault(c)
}

// Name implements Engine.
func (e *BFloat16) Name() string { return "BF16-GEMM" }

// Stats returns a snapshot of the accumulated counters.
func (e *BFloat16) Stats() Stats { return snapshot(&e.stats) }

// ResetStats zeroes the counters.
func (e *BFloat16) ResetStats() { reset(&e.stats) }
