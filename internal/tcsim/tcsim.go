// Package tcsim simulates the numerical behaviour of a neural engine
// (NVIDIA TensorCore) matrix-multiply unit in software, and provides the
// pluggable compute-engine abstraction the QR algorithms are written
// against.
//
// The V100 tensor core contract, which all accuracy results in the paper
// derive from, is:
//
//   - both GEMM operands are converted to IEEE binary16 with
//     round-to-nearest-even (values above 65504 in magnitude become ±Inf);
//   - products of binary16 operands are formed exactly (an 11×11-bit
//     significand product fits in binary32's 24-bit significand);
//   - accumulation happens in binary32.
//
// The simulator reproduces this bit-for-bit by rounding the operands through
// binary16 (see internal/f16) and then running a float32 GEMM, whose
// products are exact and whose additions round in binary32 — the same
// pipeline as the hardware, with a fixed deterministic accumulation order.
//
// Engines:
//
//   - TensorCore: the half-precision unit described above (TC-GEMM).
//   - FP32: plain float32 GEMM (cuBLAS SGEMM stand-in).
//
// Both satisfy the Engine interface consumed by internal/rgs, internal/gram
// and internal/lls, so every algorithm in the repository can be run with the
// neural engine enabled or disabled, which is exactly the ablation in
// Figure 7 of the paper.
package tcsim

import (
	"math"
	"sync/atomic"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/f16"
	"tcqr/internal/faultinject"
)

// Engine is a GEMM provider. Implementations must be safe for concurrent
// use.
type Engine interface {
	// Gemm computes C ← α·op(A)·op(B) + β·C in the engine's arithmetic.
	Gemm(tA, tB blas.Transpose, alpha float32, a, b *dense.M32, beta float32, c *dense.M32)
	// Name identifies the engine in reports ("TC-GEMM", "SGEMM").
	Name() string
}

// Stats counts the work an engine has performed. All fields are updated
// atomically so engines can be shared across goroutines.
type Stats struct {
	Calls     int64 // number of GEMM invocations
	Flops     int64 // 2·m·n·k per call
	Overflows int64 // finite operands that became ±Inf in fp16 (TensorCore only)
	Underflow int64 // nonzero operands that flushed to zero in fp16
}

// FP32 is the plain single-precision engine (the paper's SGEMM baseline).
// The zero value is ready to use.
type FP32 struct {
	stats Stats
}

// Gemm implements Engine using float32 arithmetic throughout.
func (e *FP32) Gemm(tA, tB blas.Transpose, alpha float32, a, b *dense.M32, beta float32, c *dense.M32) {
	recordCall(e.Name(), &e.stats, tA, a, tB, b)
	blas.Gemm(tA, tB, alpha, a, b, beta, c)
	gemmFault(c)
}

// Name implements Engine.
func (e *FP32) Name() string { return "SGEMM" }

// Stats returns a snapshot of the accumulated counters.
func (e *FP32) Stats() Stats { return snapshot(&e.stats) }

// ResetStats zeroes the counters.
func (e *FP32) ResetStats() { reset(&e.stats) }

// TensorCore is the simulated neural engine: fp16 operands, fp32
// accumulation. The zero value is ready to use.
type TensorCore struct {
	// TrackSpecials enables counting of fp16 overflow/underflow events in
	// the operands (an extra pass over the data). The column-scaling
	// safeguard tests use this to demonstrate that scaling eliminates
	// overflow.
	TrackSpecials bool

	stats Stats
}

// tcHook rounds packed GEMM panels through binary16. A package-level value
// so the hot path never allocates a closure.
var tcHook = blas.PackHook[float32]{
	Round:      f16.RoundInPlace,
	RoundCount: f16.RoundInPlaceCount,
}

// Gemm implements Engine with TensorCore semantics: both operands are
// rounded through binary16 (±Inf past 65504) and the multiply-accumulate
// runs in float32. The rounding — and, with TrackSpecials, the
// overflow/underflow accounting — is fused into the packed kernel's operand
// packing via blas.GemmHooked, so no rounded operand copies are ever
// materialized and the call is allocation-free after pool warmup.
func (e *TensorCore) Gemm(tA, tB blas.Transpose, alpha float32, a, b *dense.M32, beta float32, c *dense.M32) {
	recordCall(e.Name(), &e.stats, tA, a, tB, b)
	ov, uf := blas.GemmHooked(tA, tB, alpha, a, b, beta, c, &tcHook, &tcHook, e.TrackSpecials)
	if e.TrackSpecials {
		atomic.AddInt64(&e.stats.Overflows, ov)
		atomic.AddInt64(&e.stats.Underflow, uf)
	}
	gemmFault(c)
}

// Name implements Engine.
func (e *TensorCore) Name() string { return "TC-GEMM" }

// Stats returns a snapshot of the accumulated counters.
func (e *TensorCore) Stats() Stats { return snapshot(&e.stats) }

// ResetStats zeroes the counters.
func (e *TensorCore) ResetStats() { reset(&e.stats) }

// gemmFault evaluates the "tcsim.gemm" failpoint after an engine has
// written c. A corrupt rule poisons c's first element with NaN — the
// hazard-detection battery's job is to catch exactly this class of silent
// engine fault; delay and panic rules behave as at any other site. Disarmed
// it costs one atomic load per GEMM.
func gemmFault(c *dense.M32) {
	faultinject.Corrupt("tcsim.gemm", func() {
		if len(c.Data) > 0 {
			c.Data[0] = float32(math.NaN())
		}
	})
}

func recordCall(engine string, s *Stats, tA blas.Transpose, a *dense.M32, tB blas.Transpose, b *dense.M32) {
	m, k := a.Rows, a.Cols
	if tA == blas.Trans {
		m, k = k, m
	}
	n := b.Cols
	if tB == blas.Trans {
		n = b.Rows
	}
	atomic.AddInt64(&s.Calls, 1)
	atomic.AddInt64(&s.Flops, 2*int64(m)*int64(n)*int64(k))
	observeGemm(engine, m, n, k)
}

func snapshot(s *Stats) Stats {
	return Stats{
		Calls:     atomic.LoadInt64(&s.Calls),
		Flops:     atomic.LoadInt64(&s.Flops),
		Overflows: atomic.LoadInt64(&s.Overflows),
		Underflow: atomic.LoadInt64(&s.Underflow),
	}
}

func reset(s *Stats) {
	atomic.StoreInt64(&s.Calls, 0)
	atomic.StoreInt64(&s.Flops, 0)
	atomic.StoreInt64(&s.Overflows, 0)
	atomic.StoreInt64(&s.Underflow, 0)
}
