package tcsim

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"tcqr/internal/bf16"
	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/f16"
)

// specialsMat builds a matrix seeded with values that overflow binary16
// (|v| > 65504), values that flush to zero (tiny nonzero), and ordinary
// entries, so the fused counting path has real work to tally.
func specialsMat(rng *rand.Rand, rows, cols int) *dense.M32 {
	m := dense.New[float32](rows, cols)
	for i := range m.Data {
		switch rng.Intn(10) {
		case 0:
			m.Data[i] = float32(rng.NormFloat64()) * 1e6 // fp16 overflow
		case 1:
			m.Data[i] = float32(rng.NormFloat64()) * 1e-9 // fp16 underflow
		default:
			m.Data[i] = float32(rng.NormFloat64())
		}
	}
	return m
}

func bruteSpecials(ms ...*dense.M32) (ov, uf int64) {
	for _, m := range ms {
		for j := 0; j < m.Cols; j++ {
			o, u := f16.CountSpecials(m.Col(j))
			ov += int64(o)
			uf += int64(u)
		}
	}
	return ov, uf
}

// TestTrackSpecialsMatchesBruteForce: the counts produced by the fused
// pack-time rounding pass must equal a plain scan of both operands, on both
// the blocked path (large product) and the small/naive path — including the
// degenerate α = 0 case, where no packing happens at all.
func TestTrackSpecialsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range []struct {
		m, n, k int
		alpha   float32
	}{
		{96, 80, 72, 1},  // blocked path, several tiles and k-slabs
		{9, 7, 11, 1},    // small path
		{33, 21, 50, 0},  // degenerate: α = 0 still inspects operands
		{64, 72, 96, -2}, // blocked, transposes below
	} {
		a := specialsMat(rng, tc.m, tc.k)
		b := specialsMat(rng, tc.k, tc.n)
		c := dense.New[float32](tc.m, tc.n)
		e := &TensorCore{TrackSpecials: true}
		e.Gemm(blas.NoTrans, blas.NoTrans, tc.alpha, a, b, 1, c)
		wantOv, wantUf := bruteSpecials(a, b)
		s := e.Stats()
		if s.Overflows != wantOv || s.Underflow != wantUf {
			t.Errorf("m=%d n=%d k=%d α=%v: counted ov=%d uf=%d, want ov=%d uf=%d",
				tc.m, tc.n, tc.k, tc.alpha, s.Overflows, s.Underflow, wantOv, wantUf)
		}
	}
}

// TestTrackSpecialsTransposed: counting must be exact for transposed
// operands too (the pack loops differ per orientation).
func TestTrackSpecialsTransposed(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m, n, k := 70, 90, 66
	a := specialsMat(rng, k, m) // op(A) = Aᵀ
	b := specialsMat(rng, n, k) // op(B) = Bᵀ
	c := dense.New[float32](m, n)
	e := &TensorCore{TrackSpecials: true}
	e.Gemm(blas.Trans, blas.Trans, 1, a, b, 0, c)
	wantOv, wantUf := bruteSpecials(a, b)
	s := e.Stats()
	if s.Overflows != wantOv || s.Underflow != wantUf {
		t.Errorf("counted ov=%d uf=%d, want ov=%d uf=%d", s.Overflows, s.Underflow, wantOv, wantUf)
	}
}

// TestBFloat16TracksOverflow: the bfloat16 engine counts only true float32
// top-of-range overflows; fp16-sized magnitudes survive bfloat16 rounding.
func TestBFloat16TracksOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m, n, k := 80, 70, 64
	a := specialsMat(rng, m, k)
	b := specialsMat(rng, k, n)
	a.Data[5] = 3.4e38 // rounds up past MaxValue → +Inf in bfloat16
	b.Data[11] = -3.4e38
	c := dense.New[float32](m, n)
	e := &BFloat16{TrackSpecials: true}
	e.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
	var want int64
	for _, mtx := range []*dense.M32{a, b} {
		for _, v := range mtx.Data {
			if bf16.Overflows(v) {
				want++
			}
		}
	}
	s := e.Stats()
	if s.Overflows != want || s.Underflow != 0 {
		t.Errorf("counted ov=%d uf=%d, want ov=%d uf=0", s.Overflows, s.Underflow, want)
	}
}

// TestEngineWorkerCountDeterminism: engine results (and special counts) must
// be bit-identical regardless of GOMAXPROCS.
func TestEngineWorkerCountDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m, n, k := 130, 110, 96
	a := specialsMat(rng, m, k)
	b := specialsMat(rng, k, n)
	run := func(procs int) (*dense.M32, Stats) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		c := dense.New[float32](m, n)
		e := &TensorCore{TrackSpecials: true}
		e.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
		return c, e.Stats()
	}
	c1, s1 := run(1)
	c8, s8 := run(8)
	for i := range c1.Data {
		// Compare raw bits: the fp16-rounded operands can produce NaNs
		// (Inf + -Inf), and NaN != NaN under float comparison.
		if math.Float32bits(c1.Data[i]) != math.Float32bits(c8.Data[i]) {
			t.Fatalf("GOMAXPROCS changed engine result at %d: %v vs %v", i, c1.Data[i], c8.Data[i])
		}
	}
	if s1.Overflows != s8.Overflows || s1.Underflow != s8.Underflow {
		t.Fatalf("GOMAXPROCS changed counts: %+v vs %+v", s1, s8)
	}
}
