package tcsim

import (
	"sync"
	"testing"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

func TestGemmObserver(t *testing.T) {
	type call struct {
		engine  string
		m, n, k int
	}
	var mu sync.Mutex
	var calls []call
	unregister := RegisterGemmObserver(func(engine string, m, n, k int) {
		mu.Lock()
		calls = append(calls, call{engine, m, n, k})
		mu.Unlock()
	})

	a := dense.New[float32](4, 3)
	b := dense.New[float32](3, 2)
	c := dense.New[float32](4, 2)
	var fp FP32
	fp.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)

	tc := &TensorCore{}
	tc.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)

	// Transposed operands must report the op shape, not the storage shape.
	ct := dense.New[float32](3, 3)
	fp.Gemm(blas.Trans, blas.NoTrans, 1, a, a, 0, ct)

	mu.Lock()
	got := append([]call(nil), calls...)
	mu.Unlock()
	want := []call{
		{"SGEMM", 4, 2, 3},
		{"TC-GEMM", 4, 2, 3},
		{"SGEMM", 3, 3, 4},
	}
	if len(got) != len(want) {
		t.Fatalf("observer saw %d calls, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("call %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	unregister()
	unregister() // idempotent
	fp.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
	mu.Lock()
	after := len(calls)
	mu.Unlock()
	if after != len(want) {
		t.Fatalf("observer still firing after unregister: %d calls", after)
	}
}

func TestGemmObserverMultipleAndConcurrent(t *testing.T) {
	var mu sync.Mutex
	counts := [2]int{}
	un0 := RegisterGemmObserver(func(string, int, int, int) {
		mu.Lock()
		counts[0]++
		mu.Unlock()
	})
	un1 := RegisterGemmObserver(func(string, int, int, int) {
		mu.Lock()
		counts[1]++
		mu.Unlock()
	})
	defer un1()

	a := dense.New[float32](8, 8)
	b := dense.New[float32](8, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var fp FP32
			c := dense.New[float32](8, 8)
			for i := 0; i < 25; i++ {
				fp.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if counts[0] != 100 || counts[1] != 100 {
		t.Fatalf("observer counts = %v, want [100 100]", counts)
	}
	un0()
}
