package tcsim

import (
	"fmt"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/f16"
)

// Half is a device-resident matrix stored in binary16, column-major — the
// way a production TensorCore pipeline keeps its GEMM operands (half the
// memory and half the bandwidth of float32, converted once instead of per
// call). Numerically, a GEMM over Half storage is identical to
// TensorCore.Gemm over the float32 original: the per-call rounding is
// idempotent on already-rounded data.
type Half struct {
	Rows, Cols int
	Stride     int
	Data       []f16.Float16
}

// EncodeHalf converts a float32 matrix to fp16 storage (round-to-nearest-
// even, ±Inf past 65504 — run the §3.5 column scaling first for data that
// can exceed the range).
func EncodeHalf(m *dense.M32) *Half {
	h := &Half{Rows: m.Rows, Cols: m.Cols, Stride: max(1, m.Rows), Data: make([]f16.Float16, m.Rows*m.Cols)}
	for j := 0; j < m.Cols; j++ {
		f16.Encode(h.col(j), m.Col(j))
	}
	return h
}

func (h *Half) col(j int) []f16.Float16 {
	return h.Data[j*h.Stride : j*h.Stride+h.Rows]
}

// Decode converts the half storage back to float32 (exact).
func (h *Half) Decode() *dense.M32 {
	out := dense.New[float32](h.Rows, h.Cols)
	for j := 0; j < h.Cols; j++ {
		f16.Decode(out.Col(j), h.col(j))
	}
	return out
}

// Bytes returns the device-memory footprint of the half storage.
func (h *Half) Bytes() int64 { return int64(len(h.Data)) * 2 }

// GemmHalf computes C ← α·op(A)·op(B) + β·C with both operands in fp16
// storage and float32 accumulation — the steady-state form of the
// TensorCore contract when operands live in device memory as halves.
func (e *TensorCore) GemmHalf(tA, tB blas.Transpose, alpha float32, a, b *Half, beta float32, c *dense.M32) {
	da, db := a.Decode(), b.Decode()
	if got, want := gemmInner(tA, da, tB, db); got != want {
		panic(fmt.Sprintf("tcsim: GemmHalf inner dimensions %d vs %d", got, want))
	}
	recordCall(e.Name(), &e.stats, tA, da, tB, db)
	// Decoded values are already exactly representable in fp16; no second
	// rounding is needed (or performed — Round is idempotent).
	blas.Gemm(tA, tB, alpha, da, db, beta, c)
}

func gemmInner(tA blas.Transpose, a *dense.M32, tB blas.Transpose, b *dense.M32) (int, int) {
	ka := a.Cols
	if tA == blas.Trans {
		ka = a.Rows
	}
	kb := b.Rows
	if tB == blas.Trans {
		kb = b.Cols
	}
	return ka, kb
}
