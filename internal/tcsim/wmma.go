package tcsim

import (
	"fmt"

	"tcqr/internal/dense"
	"tcqr/internal/f16"
)

// FragmentDim is the WMMA fragment size exposed by the CUDA programming
// model on Volta (m16n16k16).
const FragmentDim = 16

// MmaFragment performs one WMMA-style fragment operation,
// D = A·B + C, where A, B are 16×16 binary16 fragments and C, D are 16×16
// float32 accumulators. It documents the exact per-fragment numerics the
// fast path in TensorCore.Gemm reproduces: products of binary16 values are
// exact in binary32; each accumulation rounds in binary32.
func MmaFragment(d, c *[FragmentDim][FragmentDim]float32, a, b *[FragmentDim][FragmentDim]f16.Float16) {
	for i := 0; i < FragmentDim; i++ {
		for j := 0; j < FragmentDim; j++ {
			acc := c[i][j]
			for k := 0; k < FragmentDim; k++ {
				acc += f16.ToFloat32Fast(a[i][k]) * f16.ToFloat32Fast(b[k][j])
			}
			d[i][j] = acc
		}
	}
}

// GemmWMMA multiplies C ← A·B + C (no transposes, α=β=1) by explicit
// 16×16×16 fragment tiling, padding edges with zeros, exactly as a WMMA
// kernel would. It exists to validate TensorCore.Gemm: both paths round
// operands through binary16 and accumulate in float32, and must agree to
// within float32 summation-reordering effects. It is not used on the hot
// path.
func GemmWMMA(a, b, c *dense.M32) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tcsim: GemmWMMA shapes %dx%d · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	m, n, k := a.Rows, b.Cols, a.Cols
	var fa, fb [FragmentDim][FragmentDim]f16.Float16
	var fc [FragmentDim][FragmentDim]float32
	for i0 := 0; i0 < m; i0 += FragmentDim {
		for j0 := 0; j0 < n; j0 += FragmentDim {
			// Load the C fragment (zero padded).
			for i := range fc {
				for j := range fc[i] {
					if i0+i < m && j0+j < n {
						fc[i][j] = c.At(i0+i, j0+j)
					} else {
						fc[i][j] = 0
					}
				}
			}
			for k0 := 0; k0 < k; k0 += FragmentDim {
				loadFragment(&fa, a, i0, k0)
				loadFragment(&fb, b, k0, j0)
				MmaFragment(&fc, &fc, &fa, &fb)
			}
			for i := 0; i < FragmentDim && i0+i < m; i++ {
				for j := 0; j < FragmentDim && j0+j < n; j++ {
					c.Set(i0+i, j0+j, fc[i][j])
				}
			}
		}
	}
}

func loadFragment(dst *[FragmentDim][FragmentDim]f16.Float16, m *dense.M32, i0, j0 int) {
	for i := range dst {
		for j := range dst[i] {
			if i0+i < m.Rows && j0+j < m.Cols {
				dst[i][j] = f16.FromFloat32(m.At(i0+i, j0+j))
			} else {
				dst[i][j] = 0
			}
		}
	}
}
