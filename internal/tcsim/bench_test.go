package tcsim

import (
	"math/rand"
	"testing"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

func benchPair(m, n, k int) (*dense.M32, *dense.M32, *dense.M32) {
	rng := rand.New(rand.NewSource(1))
	a := dense.New[float32](m, k)
	b := dense.New[float32](k, n)
	for i := range a.Data {
		a.Data[i] = float32(rng.NormFloat64())
	}
	for i := range b.Data {
		b.Data[i] = float32(rng.NormFloat64())
	}
	return a, b, dense.New[float32](m, n)
}

// BenchmarkEngines compares the software cost of the engines: the
// TensorCore path pays for two fp16 rounding passes per call; on the real
// device the same rounding is what makes it *faster*.
func BenchmarkEngines(b *testing.B) {
	a, bb, c := benchPair(512, 512, 512)
	for _, e := range []Engine{&FP32{}, &TensorCore{}, &BFloat16{}, &TCEC{}} {
		b.Run(e.Name(), func(b *testing.B) {
			b.SetBytes(2 * 512 * 512 * 512)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.Gemm(blas.NoTrans, blas.NoTrans, 1, a, bb, 0, c)
			}
		})
	}
}

func BenchmarkTrackSpecialsOverhead(b *testing.B) {
	a, bb, c := benchPair(512, 512, 128)
	b.Run("off", func(b *testing.B) {
		e := &TensorCore{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Gemm(blas.NoTrans, blas.NoTrans, 1, a, bb, 0, c)
		}
	})
	b.Run("on", func(b *testing.B) {
		e := &TensorCore{TrackSpecials: true}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Gemm(blas.NoTrans, blas.NoTrans, 1, a, bb, 0, c)
		}
	})
}
