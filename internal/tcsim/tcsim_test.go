package tcsim

import (
	"math"
	"math/rand"
	"testing"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/f16"
)

func randM32(rng *rand.Rand, r, c int) *dense.M32 {
	m := dense.New[float32](r, c)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

// referenceTC computes the TensorCore contract in the most literal way:
// round every operand to fp16, multiply in float64 (exact for fp16
// products), accumulate in float32.
func referenceTC(tA, tB blas.Transpose, alpha float32, a, b *dense.M32, beta float32, c *dense.M32) *dense.M32 {
	opA := dense.ToF64(a)
	if tA == blas.Trans {
		opA = opA.Transpose()
	}
	opB := dense.ToF64(b)
	if tB == blas.Trans {
		opB = opB.Transpose()
	}
	out := dense.New[float32](c.Rows, c.Cols)
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			var acc float32
			for l := 0; l < opA.Cols; l++ {
				x := f16.Round(float32(opA.At(i, l)))
				y := f16.Round(float32(opB.At(l, j)))
				acc += x * y // product exact, add rounds in fp32
			}
			out.Set(i, j, alpha*acc+beta*c.At(i, j))
		}
	}
	return out
}

func TestTensorCoreMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var tc TensorCore
	for _, tA := range []blas.Transpose{blas.NoTrans, blas.Trans} {
		for _, tB := range []blas.Transpose{blas.NoTrans, blas.Trans} {
			m, n, k := 9, 7, 11
			var a, b *dense.M32
			if tA == blas.NoTrans {
				a = randM32(rng, m, k)
			} else {
				a = randM32(rng, k, m)
			}
			if tB == blas.NoTrans {
				b = randM32(rng, k, n)
			} else {
				b = randM32(rng, n, k)
			}
			c := dense.New[float32](m, n)
			// With α=1, β=0 the engine accumulates in the same sequential
			// k-order as the reference, so results must match bit for bit.
			want := referenceTC(tA, tB, 1, a, b, 0, c)
			tc.Gemm(tA, tB, 1, a, b, 0, c)
			for i := range c.Data {
				if c.Data[i] != want.Data[i] {
					t.Errorf("tA=%v tB=%v element %d: %v vs %v", tA, tB, i, c.Data[i], want.Data[i])
				}
			}
			// General α, β: the application order of the scalars differs
			// between engine and reference, so allow fp32 rounding slack.
			cg := randM32(rng, m, n)
			wantG := referenceTC(tA, tB, 1.5, a, b, 0.5, cg)
			tc.Gemm(tA, tB, 1.5, a, b, 0.5, cg)
			for i := range cg.Data {
				diff := math.Abs(float64(cg.Data[i] - wantG.Data[i]))
				scale := math.Max(math.Abs(float64(wantG.Data[i])), 1)
				if diff > 1e-5*scale {
					t.Errorf("tA=%v tB=%v general element %d: %v vs %v", tA, tB, i, cg.Data[i], wantG.Data[i])
				}
			}
		}
	}
}

func TestTensorCoreRoundsOperands(t *testing.T) {
	// 1/3 is not representable in fp16; a TC product must see the rounded
	// value, an FP32 product the full float32 value.
	a := dense.New[float32](1, 1)
	b := dense.New[float32](1, 1)
	a.Set(0, 0, 1.0/3.0)
	b.Set(0, 0, 3)
	c := dense.New[float32](1, 1)

	var tc TensorCore
	tc.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
	wantTC := f16.Round(1.0/3.0) * f16.Round(3)
	if c.At(0, 0) != wantTC {
		t.Errorf("TC product = %v, want %v", c.At(0, 0), wantTC)
	}

	var fp FP32
	fp.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
	if c.At(0, 0) != float32(1.0/3.0)*3 {
		t.Errorf("FP32 product = %v", c.At(0, 0))
	}
	if c.At(0, 0) == wantTC {
		t.Error("FP32 and TC paths should differ on 1/3 · 3")
	}
}

func TestTensorCoreOverflow(t *testing.T) {
	// An operand above 65504 overflows to +Inf in fp16 and poisons the
	// output — the catastrophe Section 3.5's column scaling prevents.
	a := dense.New[float32](1, 1)
	b := dense.New[float32](1, 1)
	a.Set(0, 0, 1e6)
	b.Set(0, 0, 1)
	c := dense.New[float32](1, 1)
	tc := TensorCore{TrackSpecials: true}
	tc.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
	if !math.IsInf(float64(c.At(0, 0)), 1) {
		t.Errorf("overflowing operand should produce +Inf, got %v", c.At(0, 0))
	}
	if s := tc.Stats(); s.Overflows != 1 {
		t.Errorf("Overflows = %d, want 1", s.Overflows)
	}
	// In contrast FP32 is fine.
	var fp FP32
	fp.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
	if c.At(0, 0) != 1e6 {
		t.Errorf("FP32 result = %v", c.At(0, 0))
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var tc TensorCore
	a, b := randM32(rng, 8, 4), randM32(rng, 4, 6)
	c := dense.New[float32](8, 6)
	tc.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
	tc.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
	s := tc.Stats()
	if s.Calls != 2 {
		t.Errorf("Calls = %d", s.Calls)
	}
	if want := int64(2 * 2 * 8 * 6 * 4); s.Flops != want {
		t.Errorf("Flops = %d, want %d", s.Flops, want)
	}
	tc.ResetStats()
	if s := tc.Stats(); s.Calls != 0 || s.Flops != 0 {
		t.Errorf("ResetStats left %+v", s)
	}
	// Transposed shapes count the same flops.
	var fp FP32
	at, bt := randM32(rng, 4, 8), randM32(rng, 6, 4)
	fp.Gemm(blas.Trans, blas.Trans, 1, at, bt, 0, c)
	if s := fp.Stats(); s.Flops != 2*8*6*4 {
		t.Errorf("transposed flops = %d", s.Flops)
	}
}

func TestGemmWMMAAgreesWithEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, size := range []struct{ m, n, k int }{{16, 16, 16}, {32, 48, 64}, {17, 19, 23}, {5, 3, 70}} {
		a := randM32(rng, size.m, size.k)
		b := randM32(rng, size.k, size.n)
		c1 := dense.New[float32](size.m, size.n)
		c2 := dense.New[float32](size.m, size.n)
		var tc TensorCore
		tc.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c1)
		GemmWMMA(a, b, c2)
		// Both round operands identically; accumulation order differs
		// (sequential vs 16-wide fragments), so allow a few ulps of fp32.
		for i := range c1.Data {
			x, y := float64(c1.Data[i]), float64(c2.Data[i])
			scale := math.Max(math.Abs(x), 1)
			if math.Abs(x-y) > 1e-5*scale*math.Sqrt(float64(size.k)) {
				t.Errorf("size %+v element %d: engine %v vs wmma %v", size, i, x, y)
			}
		}
	}
}

func TestMmaFragmentExactness(t *testing.T) {
	// A fragment of exact small integers must multiply exactly.
	var a, b [FragmentDim][FragmentDim]f16.Float16
	var c, d [FragmentDim][FragmentDim]float32
	for i := 0; i < FragmentDim; i++ {
		for j := 0; j < FragmentDim; j++ {
			a[i][j] = f16.FromFloat32(float32((i + j) % 5))
			b[i][j] = f16.FromFloat32(float32((i*j)%7) - 3)
			c[i][j] = float32(i - j)
		}
	}
	MmaFragment(&d, &c, &a, &b)
	for i := 0; i < FragmentDim; i++ {
		for j := 0; j < FragmentDim; j++ {
			want := c[i][j]
			for k := 0; k < FragmentDim; k++ {
				want += float32((i+k)%5) * (float32((k*j)%7) - 3)
			}
			if d[i][j] != want {
				t.Fatalf("fragment (%d,%d) = %v want %v", i, j, d[i][j], want)
			}
		}
	}
}

func TestEngineErrorMagnitudes(t *testing.T) {
	// The half-precision engine's elementwise relative error on a
	// well-scaled product should be around k·eps_half, orders of magnitude
	// larger than FP32's — this is the accuracy gap Figures 3 and 9 show.
	rng := rand.New(rand.NewSource(4))
	const m, n, k = 64, 64, 64
	a, b := randM32(rng, m, k), randM32(rng, k, n)
	exact := dense.New[float64](m, n)
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, dense.ToF64(a), dense.ToF64(b), 0, exact)

	errOf := func(e Engine) float64 {
		c := dense.New[float32](m, n)
		e.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
		var worst float64
		for i := range c.Data {
			d := math.Abs(float64(c.Data[i]) - exact.Data[i])
			if d > worst {
				worst = d
			}
		}
		return worst / math.Sqrt(k) // normalize by typical |c| scale
	}
	errTC := errOf(&TensorCore{})
	errFP := errOf(&FP32{})
	if errTC < 10*errFP {
		t.Errorf("TC error (%g) should be far larger than FP32 error (%g)", errTC, errFP)
	}
	if errTC > 50*float64(k)*f16.Eps {
		t.Errorf("TC error %g implausibly large", errTC)
	}
}

func TestHalfStorageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randM32(rng, 17, 9)
	h := EncodeHalf(m)
	if h.Bytes() != 17*9*2 {
		t.Errorf("Bytes = %d", h.Bytes())
	}
	dec := h.Decode()
	for i := range dec.Data {
		if dec.Data[i] != f16.Round(m.Data[i]) {
			t.Fatalf("decode[%d] = %v, want %v", i, dec.Data[i], f16.Round(m.Data[i]))
		}
	}
	// Re-encoding is exact (idempotent rounding).
	h2 := EncodeHalf(dec)
	for i := range h2.Data {
		if h2.Data[i] != h.Data[i] {
			t.Fatal("re-encode changed bits")
		}
	}
}

func TestGemmHalfMatchesGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randM32(rng, 12, 8)
	b := randM32(rng, 8, 10)
	var tc TensorCore
	want := dense.New[float32](12, 10)
	tc.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, want)
	got := dense.New[float32](12, 10)
	tc.GemmHalf(blas.NoTrans, blas.NoTrans, 1, EncodeHalf(a), EncodeHalf(b), 0, got)
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("GemmHalf[%d] = %v, want %v (must be bit-identical)", i, got.Data[i], want.Data[i])
		}
	}
	// Stats counted.
	if tc.Stats().Calls != 2 {
		t.Errorf("calls %d", tc.Stats().Calls)
	}
	// Dimension mismatch panics.
	defer func() {
		if recover() == nil {
			t.Error("mismatched GemmHalf must panic")
		}
	}()
	tc.GemmHalf(blas.NoTrans, blas.NoTrans, 1, EncodeHalf(a), EncodeHalf(a), 0, got)
}
