package tcsim

import (
	"math"
	"sync/atomic"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/f16"
)

// TCEC is the error-corrected TensorCore engine of Ootomo & Yokota
// ("Recovering single precision accuracy from Tensor Cores while surpassing
// the FP32 theoretical peak", arXiv 2203.03341). Each fp32 operand x is
// split into a binary16-representable hi half and a residual lo half,
//
//	hi = fl16(x)            (widened back to fp32)
//	lo = x − hi             (exact in fp32 whenever hi is finite)
//
// and the product is assembled from three TensorCore-semantics GEMMs with
// fp32 accumulation:
//
//	A·B ≈ Ahi·Bhi + 2⁻¹¹·(Ahi·Blo' + Alo'·Bhi),   lo' = fl16(lo·2¹¹)
//
// The 2¹¹ pre-shift is the Ootomo exponent-shift trick: the residual of a
// binary16 rounding is at most half an ulp, so lo·2¹¹ always fits the
// binary16 range (max ½·ulp = 16 at the top binade; 16·2¹¹ = 32768 < 65504)
// and the shift lifts fp16-subnormal residuals back into the normal range
// where all 11 significand bits survive. The lo·lo term, bounded by
// 2⁻²²·|A||B|, is dropped — exactly the 2-correction variant the paper
// benchmarks. The result carries ≈2⁻²² worst-case elementwise error versus
// the exact product: fp32-grade, versus 2⁻¹¹ for the plain TensorCore.
//
// What tc-ec does NOT fix is the exponent range: the hi half saturates to
// ±Inf past 65504 exactly like the plain TensorCore (the §3.5 overflow
// hazard), so the recovery ladder only tries this engine for accuracy
// (breakdown) failures, never for overflow.
//
// Splitting is fused into the packed kernel's operand packing via
// blas.GemmHooked — no hi/lo operand copies are ever materialized and the
// call is allocation-free after pool warmup, like TC/BF16. Each logical
// GEMM issues three TensorCore passes, and Stats/metrics count every pass:
// Calls and Flops reflect the real device cost (3× a plain TC GEMM of the
// same shape). The zero value is ready to use.
type TCEC struct {
	// TrackSpecials counts fp16 overflow/underflow events in the hi halves
	// (the pass whose rounding matches the plain TensorCore; the shifted
	// residuals cannot overflow by construction and their underflow is not
	// an operand-loss event).
	TrackSpecials bool

	stats Stats
}

// SplitF32 is the operand split the engine applies at pack time: hi is x
// rounded through binary16 (round-to-nearest-even, widened back to fp32)
// and lo is the exact fp32 residual x − hi. For every x whose hi half is
// finite — the entire ±65504 envelope the column-scaling safeguard
// guarantees — the subtraction is exact (Sterbenz in the fp16-normal range,
// shared-grid representability below it), so hi + lo == x at the bit level;
// this is the FuzzTcEcSplitRoundTrip property. Past the envelope hi
// saturates to ±Inf like the plain TensorCore and lo is defined as 0: the
// overflow is the hi pass's hazard to report, not the residual's.
func SplitF32(x float32) (hi, lo float32) {
	hi = f16.ToFloat32Fast(f16.FromFloat32(x))
	if math.IsInf(float64(hi), 0) {
		return hi, 0
	}
	return hi, x - hi
}

// roundLoInPlace rewrites a packed panel with the fp16-rounded, 2¹¹-shifted
// residual halves: p[i] ← fl16((x − fl16(x))·2¹¹). Zero padding stays zero
// (its residual is zero), so packed tails never contribute.
func roundLoInPlace(p []float32) {
	for i, x := range p {
		_, lo := SplitF32(x)
		p[i] = f16.ToFloat32Fast(f16.FromFloat32(lo * 0x1p11))
	}
}

// loHook packs the residual halves. A package-level value so the hot path
// never allocates a closure. The correction passes never track specials, so
// RoundCount only has to preserve the rounding behaviour.
var loHook = blas.PackHook[float32]{
	Round: roundLoInPlace,
	RoundCount: func(panel []float32) (overflow, underflow int64) {
		roundLoInPlace(panel)
		return 0, 0
	},
}

// Gemm implements Engine with the error-corrected TensorCore semantics:
// C ← α·(Ahi·Bhi + 2⁻¹¹(Ahi·Blo' + Alo'·Bhi)) + β·C, every pass rounding
// its operands through binary16 at pack time and accumulating in float32.
// The hi·hi pass runs first (carrying β and, with TrackSpecials, the
// overflow/underflow accounting — identical to the plain TensorCore), then
// the two correction passes accumulate into C with α scaled by the exact
// power of two 2⁻¹¹ that undoes the residual pre-shift.
func (e *TCEC) Gemm(tA, tB blas.Transpose, alpha float32, a, b *dense.M32, beta float32, c *dense.M32) {
	recordCall(e.Name(), &e.stats, tA, a, tB, b)
	ov, uf := blas.GemmHooked(tA, tB, alpha, a, b, beta, c, &tcHook, &tcHook, e.TrackSpecials)
	if e.TrackSpecials {
		atomic.AddInt64(&e.stats.Overflows, ov)
		atomic.AddInt64(&e.stats.Underflow, uf)
	}
	if alpha != 0 {
		corr := alpha * 0x1p-11
		recordCall(e.Name(), &e.stats, tA, a, tB, b)
		blas.GemmHooked(tA, tB, corr, a, b, 1, c, &tcHook, &loHook, false)
		recordCall(e.Name(), &e.stats, tA, a, tB, b)
		blas.GemmHooked(tA, tB, corr, a, b, 1, c, &loHook, &tcHook, false)
	}
	gemmFault(c)
}

// Name implements Engine.
func (e *TCEC) Name() string { return "TCEC-GEMM" }

// Stats returns a snapshot of the accumulated counters.
func (e *TCEC) Stats() Stats { return snapshot(&e.stats) }

// ResetStats zeroes the counters.
func (e *TCEC) ResetStats() { reset(&e.stats) }

// ErrorCorrected returns the error-corrected counterpart of an engine: the
// plain fp16 TensorCore upgrades to TCEC (same TrackSpecials setting); every
// other engine — including TCEC itself — has none. The recovery ladders use
// this to slot an accuracy-recovery rung between a failed TensorCore rung
// and the fp32 fallbacks without hard-coding engine types.
func ErrorCorrected(e Engine) (Engine, bool) {
	if t, ok := e.(*TensorCore); ok {
		return &TCEC{TrackSpecials: t.TrackSpecials}, true
	}
	return nil, false
}
