package tcsim

import (
	"sync"
	"sync/atomic"
)

// GemmObserver receives one callback per engine GEMM call: the engine's
// Name() ("TC-GEMM", "BF16-GEMM", "SGEMM") and the op-shape m×n×k of the
// product. The serving layer registers an observer to expose per-engine,
// per-shape-bucket GEMM counters on /metrics without coupling this package
// to the metrics registry.
//
// Observers run inline on the GEMM path and must be cheap (a few atomic
// increments) and safe for concurrent use.
type GemmObserver func(engine string, m, n, k int)

// The observer list is copy-on-write: readers pay one atomic pointer load,
// which is nil in the common unobserved case. Registration keys each
// observer with an id so unregister removes exactly its own entry.
type gemmObserverEntry struct {
	id int64
	fn GemmObserver
}

var (
	gemmObserverMu sync.Mutex
	gemmObserverID int64
	gemmObservers  atomic.Pointer[[]gemmObserverEntry]
)

// RegisterGemmObserver adds fn to the engine GEMM observer list and returns
// a function that removes it again. Multiple observers may be registered;
// each GEMM call reaches all of them. The returned unregister function is
// idempotent.
func RegisterGemmObserver(fn GemmObserver) (unregister func()) {
	gemmObserverMu.Lock()
	defer gemmObserverMu.Unlock()
	gemmObserverID++
	id := gemmObserverID
	var cur []gemmObserverEntry
	if p := gemmObservers.Load(); p != nil {
		cur = *p
	}
	next := make([]gemmObserverEntry, len(cur), len(cur)+1)
	copy(next, cur)
	next = append(next, gemmObserverEntry{id: id, fn: fn})
	gemmObservers.Store(&next)
	return func() {
		gemmObserverMu.Lock()
		defer gemmObserverMu.Unlock()
		old := gemmObservers.Load()
		if old == nil {
			return
		}
		repl := make([]gemmObserverEntry, 0, len(*old))
		for _, e := range *old {
			if e.id != id {
				repl = append(repl, e)
			}
		}
		if len(repl) == 0 {
			gemmObservers.Store(nil)
			return
		}
		gemmObservers.Store(&repl)
	}
}

func observeGemm(engine string, m, n, k int) {
	p := gemmObservers.Load()
	if p == nil {
		return
	}
	for _, e := range *p {
		e.fn(engine, m, n, k)
	}
}
