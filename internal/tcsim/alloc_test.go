//go:build !race

package tcsim

import (
	"math/rand"
	"testing"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

// TestEngineGemmAllocationFree: after pool warmup, an engine GEMM call must
// not allocate — operand rounding happens in pooled pack buffers, not in
// freshly allocated matrix copies. (Skipped under -race: the detector's
// instrumentation allocates.)
func TestEngineGemmAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := specialsMat(rng, 128, 96)
	b := specialsMat(rng, 96, 112)
	c := dense.New[float32](128, 112)
	engines := []Engine{&FP32{}, &TensorCore{}, &TensorCore{TrackSpecials: true}, &BFloat16{TrackSpecials: true}, &TCEC{}, &TCEC{TrackSpecials: true}}
	for _, e := range engines {
		e.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c) // warm the pools
		n := testing.AllocsPerRun(10, func() {
			e.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
		})
		if n != 0 {
			t.Errorf("%s: %v allocs per Gemm, want 0", e.Name(), n)
		}
	}
}
