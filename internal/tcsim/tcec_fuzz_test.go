package tcsim

import (
	"math"
	"testing"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/f16"
)

// FuzzTcEcSplitRoundTrip pins the split invariant the error-corrected
// engine is built on, over every finite float32: wherever the hi half is
// finite (the whole ±65504 envelope), hi + lo reconstructs the operand
// exactly at the bit level, hi is the binary16 rounding of the operand, and
// the 2¹¹-shifted residual never overflows binary16. Past the envelope the
// split must saturate with a zero residual, matching the plain TensorCore's
// overflow semantics.
func FuzzTcEcSplitRoundTrip(f *testing.F) {
	for _, bits := range []uint32{
		0, 0x3f800000, 0xbf800000, // 0, 1, -1
		math.Float32bits(1 + 0x1p-12 + 0x1p-23), // 13-bit residual
		math.Float32bits(65504), math.Float32bits(65520),
		math.Float32bits(0x1p-24), math.Float32bits(0x1p-30),
		0x00000001, 0x7f7fffff, // min subnormal, MaxFloat32
	} {
		f.Add(bits)
	}
	f.Fuzz(func(t *testing.T, bits uint32) {
		x := math.Float32frombits(bits)
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			t.Skip()
		}
		hi, lo := SplitF32(x)
		if math.IsInf(float64(hi), 0) {
			if (hi > 0) != (x > 0) {
				t.Fatalf("SplitF32(%g): saturated hi %g has the wrong sign", x, hi)
			}
			if lo != 0 {
				t.Fatalf("SplitF32(%g): saturated hi with lo = %g, want 0", x, lo)
			}
			return
		}
		if want := f16.ToFloat32Fast(f16.FromFloat32(x)); math.Float32bits(hi) != math.Float32bits(want) {
			t.Fatalf("SplitF32(%g): hi = %g, want the fp16 rounding %g", x, hi, want)
		}
		if math.Float32bits(hi+lo) != math.Float32bits(x) {
			t.Fatalf("SplitF32(%g): hi %g + lo %g = %g does not reconstruct bitwise",
				x, hi, lo, hi+lo)
		}
		if shifted := f16.ToFloat32Fast(f16.FromFloat32(lo * 0x1p11)); math.IsInf(float64(shifted), 0) {
			t.Fatalf("SplitF32(%g): shifted residual %g overflows fp16", x, lo*0x1p11)
		}
	})
}

// FuzzGemmTcEcVsFP32 bounds the residual error of the error-corrected GEMM
// against an exact float64 reference on arbitrary fp16-range operands. The
// error model (Ootomo–Yokota §3, in the Yang/Fox/Sanders elementwise
// framework): per operand the residual quantization loses at most
// ~2⁻²²·|x| (plus a subnormal-residual floor), the dropped lo·lo term is
// bounded by 2⁻²²·|a||b|, and fp32 accumulation adds ≤ (k+2)·2⁻²⁴ per
// |a||b| — all relative to the elementwise absolute dot Σ|a||b|.
func FuzzGemmTcEcVsFP32(f *testing.F) {
	f.Add(uint8(3), uint8(2), uint8(4), []byte{0x10, 0x81, 0x7f, 0x40, 0x01, 0xff, 0x3c, 0x00})
	f.Add(uint8(1), uint8(1), uint8(1), []byte{0xff, 0x1d})
	f.Add(uint8(8), uint8(8), uint8(8), []byte{})
	f.Fuzz(func(t *testing.T, mb, nb, kb uint8, data []byte) {
		m := int(mb)%8 + 1
		n := int(nb)%8 + 1
		k := int(kb)%8 + 1
		// Decode one operand element per byte pair: a sign+significand byte
		// and an exponent byte spanning the full fp16-normal range, so the
		// fuzzer explores exponent diversity, not just one binade.
		at := func(idx int) float32 {
			var sig, exp byte
			if 2*idx < len(data) {
				sig = data[2*idx]
			}
			if 2*idx+1 < len(data) {
				exp = data[2*idx+1]
			}
			v := (1 + float64(sig&0x7f)/128) * math.Pow(2, float64(int(exp%30)-15))
			if sig&0x80 != 0 {
				v = -v
			}
			return float32(v)
		}
		a := dense.New[float32](m, k)
		b := dense.New[float32](k, n)
		for i := range a.Data {
			a.Data[i] = at(i)
		}
		for i := range b.Data {
			b.Data[i] = at(len(a.Data) + i)
		}
		c := dense.New[float32](m, n)
		(&TCEC{}).Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
		ref := gemmRef64(a, b)
		tol := (32 + 4*float64(k)) * 0x1p-24
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var absDot float64
				for l := 0; l < k; l++ {
					absDot += math.Abs(float64(a.At(i, l))) * math.Abs(float64(b.At(l, j)))
				}
				if err := math.Abs(float64(c.At(i, j)) - ref[i][j]); err > tol*absDot {
					t.Fatalf("c(%d,%d) = %v vs ref %v: error %.3e exceeds %.3e (tol %.3e × absdot %.3e)",
						i, j, c.At(i, j), ref[i][j], err, tol*absDot, tol, absDot)
				}
			}
		}
	})
}
