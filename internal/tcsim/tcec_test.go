package tcsim

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/f16"
	"tcqr/internal/matgen"
)

// gemmRef64 computes op(A)·op(B) elementwise in float64 (NoTrans only —
// the accuracy tests use plain orientation).
func gemmRef64(a, b *dense.M32) [][]float64 {
	m, k, n := a.Rows, a.Cols, b.Cols
	ref := make([][]float64, m)
	for i := 0; i < m; i++ {
		ref[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			var s float64
			for l := 0; l < k; l++ {
				s += float64(a.At(i, l)) * float64(b.At(l, j))
			}
			ref[i][j] = s
		}
	}
	return ref
}

// maxElemErr returns the largest elementwise error of c against ref,
// normalized per element by Σ_l |a_il||b_lj| (the natural condition-free
// scale of a dot product), so the metric is invariant under the power-of-2
// operand scalings the sweep applies.
func maxElemErr(c *dense.M32, ref [][]float64, a, b *dense.M32) float64 {
	m, k, n := a.Rows, a.Cols, b.Cols
	worst := 0.0
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var absDot float64
			for l := 0; l < k; l++ {
				absDot += math.Abs(float64(a.At(i, l))) * math.Abs(float64(b.At(l, j)))
			}
			if absDot == 0 {
				continue
			}
			e := math.Abs(float64(c.At(i, j))-ref[i][j]) / absDot
			if e > worst {
				worst = e
			}
		}
	}
	return worst
}

func randScaled(rng *rand.Rand, rows, cols int, scale float32) *dense.M32 {
	a := dense.New[float32](rows, cols)
	for i := range a.Data {
		a.Data[i] = float32(rng.NormFloat64()) * scale
	}
	return a
}

func engineErr(e Engine, a, b *dense.M32, ref [][]float64) float64 {
	c := dense.New[float32](a.Rows, b.Cols)
	e.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
	return maxElemErr(c, ref, a, b)
}

// TestTcEcAccuracySweep is the tc-ec half of the adversarial accuracy
// battery: across operand scales from deep in the fp16-subnormal range up
// to the saturation edge, the error-corrected engine must be strictly more
// accurate than the plain TensorCore, and — wherever the residual halves
// stay inside the fp16-normal range — within a small constant factor of the
// plain fp32 GEMM. The subnormal edge scales document where the guarantee
// honestly degrades: below |x| ≈ 2⁻¹³ even the 2¹¹-shifted residuals land
// in the fp16-subnormal range and tc-ec keeps only a few extra bits —
// still strictly ahead of TC, which flushes the operands outright.
func TestTcEcAccuracySweep(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const m, k, n = 48, 64, 32
	tc := &TensorCore{}
	ec := &TCEC{}
	fp := &FP32{}
	cases := []struct {
		name  string
		scale float32
		// fp32Factor asserts errEC ≤ fp32Factor·errFP32 when > 0; 0 skips
		// the fp32 comparison (residual-degradation edges).
		fp32Factor float64
	}{
		{"unit", 1, 16},
		{"up6", 0x1p6, 16},
		{"top-edge", 0x1p12, 16},      // products ~2¹², hi halves near saturation
		{"down10", 0x1p-10, 16},      // residuals still land fp16-normal after the shift
		{"subnormal-hi", 0x1p-18, 0}, // hi halves fp16-subnormal; shifted residuals too
		{"subnormal-lo", 0x1p-26, 0}, // TC flushes the operands outright; tc-ec keeps bits
	}
	for _, tc2 := range cases {
		t.Run(tc2.name, func(t *testing.T) {
			a := randScaled(rng, m, k, tc2.scale)
			b := randScaled(rng, k, n, tc2.scale)
			ref := gemmRef64(a, b)
			errTC := engineErr(tc, a, b, ref)
			errEC := engineErr(ec, a, b, ref)
			errFP := engineErr(fp, a, b, ref)
			t.Logf("scale=%g  tc=%.3e  tc-ec=%.3e  fp32=%.3e", tc2.scale, errTC, errEC, errFP)
			if !(errEC < errTC) {
				t.Fatalf("tc-ec error %.3e not strictly below plain TC %.3e", errEC, errTC)
			}
			if tc2.fp32Factor > 0 && errEC > tc2.fp32Factor*errFP {
				t.Fatalf("tc-ec error %.3e exceeds %g× fp32 error %.3e", errEC, tc2.fp32Factor, errFP)
			}
		})
	}
}

// TestTcEcExponentLadderGemm runs the adversarial exponent sweep as one
// GEMM instead of one scale at a time: matgen.ExponentLadder operands whose
// columns step from below the fp16-subnormal threshold to near the
// saturation edge, so a single product mixes flushed, degraded-residual and
// fully-corrected terms. The elementwise error metric is dominated by the
// large-scale (fp16-normal) terms, where the full guarantee must hold:
// strictly below plain TC, within a constant factor of fp32.
func TestTcEcExponentLadderGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := dense.ToF32(matgen.ExponentLadder(rng, 48, 64, -18, 10))
	b := dense.ToF32(matgen.ExponentLadder(rng, 64, 32, -12, 8))
	ref := gemmRef64(a, b)
	errTC := engineErr(&TensorCore{}, a, b, ref)
	errEC := engineErr(&TCEC{}, a, b, ref)
	errFP := engineErr(&FP32{}, a, b, ref)
	t.Logf("exponent ladder:  tc=%.3e  tc-ec=%.3e  fp32=%.3e", errTC, errEC, errFP)
	if !(errEC < errTC) {
		t.Fatalf("tc-ec error %.3e not strictly below plain TC %.3e", errEC, errTC)
	}
	if errEC > 32*errFP {
		t.Fatalf("tc-ec error %.3e exceeds 32× fp32 error %.3e on the exponent ladder", errEC, errFP)
	}
}

// TestTcEcExactOnFp16Inputs: when every operand is already exactly
// binary16-representable the residual halves are identically zero, so the
// correction passes contribute nothing and tc-ec must agree with the plain
// TensorCore bit for bit (which in turn is the exact-product fp32 GEMM).
func TestTcEcExactOnFp16Inputs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const m, k, n = 32, 48, 24
	a := randScaled(rng, m, k, 1)
	b := randScaled(rng, k, n, 1)
	f16.RoundInPlace(a.Data)
	f16.RoundInPlace(b.Data)
	cTC := dense.New[float32](m, n)
	cEC := dense.New[float32](m, n)
	(&TensorCore{}).Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, cTC)
	(&TCEC{}).Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, cEC)
	for i := range cTC.Data {
		if math.Float32bits(cTC.Data[i]) != math.Float32bits(cEC.Data[i]) {
			t.Fatalf("element %d: tc-ec %x differs from tc %x on fp16-exact inputs",
				i, math.Float32bits(cEC.Data[i]), math.Float32bits(cTC.Data[i]))
		}
	}
}

// TestTcEcTrackSpecials: the hi halves round exactly like the plain
// TensorCore's operands, so on any input the overflow/underflow counts of
// the two engines must match (the correction passes never count).
func TestTcEcTrackSpecials(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := specialsMat(rng, 40, 24)
	b := specialsMat(rng, 24, 16)
	tc := &TensorCore{TrackSpecials: true}
	ec := &TCEC{TrackSpecials: true}
	cTC := dense.New[float32](40, 16)
	cEC := dense.New[float32](40, 16)
	tc.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, cTC)
	ec.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, cEC)
	st, se := tc.Stats(), ec.Stats()
	if st.Overflows != se.Overflows || st.Underflow != se.Underflow {
		t.Fatalf("specials mismatch: tc ov=%d uf=%d, tc-ec ov=%d uf=%d",
			st.Overflows, st.Underflow, se.Overflows, se.Underflow)
	}
	if se.Overflows == 0 || se.Underflow == 0 {
		t.Fatalf("test matrix produced no specials (ov=%d uf=%d); not exercising the counters", se.Overflows, se.Underflow)
	}
	if se.Calls != 3*st.Calls {
		t.Fatalf("tc-ec calls = %d, want 3× the plain TC's %d (three passes per GEMM)", se.Calls, st.Calls)
	}
}

// TestTcEcOverflowSemantics: operands past 65504 must poison the result
// through the hi pass exactly as on the plain TensorCore — the ladder
// relies on overflow keeping its TC classification (counted, non-finite)
// so it never retries an overflow on tc-ec.
func TestTcEcOverflowSemantics(t *testing.T) {
	a := dense.New[float32](2, 2)
	a.Set(0, 0, 7e4) // past the fp16 max of 65504
	a.Set(1, 1, 1)
	b := dense.New[float32](2, 2)
	b.Set(0, 0, 1)
	b.Set(1, 1, 1)
	e := &TCEC{TrackSpecials: true}
	c := dense.New[float32](2, 2)
	e.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
	if st := e.Stats(); st.Overflows == 0 {
		t.Fatalf("overflowing operand not counted: %+v", st)
	}
	if !math.IsInf(float64(c.At(0, 0)), 1) {
		t.Fatalf("c(0,0) = %v, want +Inf from the saturated hi half", c.At(0, 0))
	}
}

// TestTcEcDeterminism: tc-ec GEMM results are Float32bits-identical across
// GOMAXPROCS settings — each of the three passes inherits the packed
// kernel's fixed tile ownership and ascending k-slab order, and the passes
// themselves run in a fixed sequence. This is the same contract the TSQR
// determinism suite pins for the other engines.
func TestTcEcDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const m, k, n = 96, 80, 64
	a := randScaled(rng, m, k, 1)
	b := randScaled(rng, k, n, 1)
	e := &TCEC{}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var baseline []uint32
	for _, procs := range []int{1, 2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		c := dense.New[float32](m, n)
		e.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
		bits := make([]uint32, len(c.Data))
		for i, v := range c.Data {
			bits[i] = math.Float32bits(v)
		}
		if baseline == nil {
			baseline = bits
			continue
		}
		for i := range bits {
			if bits[i] != baseline[i] {
				t.Fatalf("GOMAXPROCS=%d: element %d bits %x differ from baseline %x", procs, i, bits[i], baseline[i])
			}
		}
	}
}

// TestSplitF32 pins the split's edge behaviour beyond what the fuzz target
// samples: exact reconstruction where hi is finite, saturation past it.
func TestSplitF32(t *testing.T) {
	cases := []float32{
		0, 1, -1, 1.5,
		1 + 0x1p-12 + 0x1p-23, // residual needs 13 significand bits — fp32 lo holds it
		65504, 65505, 3.4e38,  // saturation edge and beyond
		0x1p-14, 0x1p-24, 0x1p-30, // fp16 subnormal range
		math.MaxFloat32, -math.MaxFloat32,
	}
	for _, x := range cases {
		hi, lo := SplitF32(x)
		if math.IsInf(float64(hi), 0) {
			if lo != 0 {
				t.Errorf("SplitF32(%g): saturated hi with lo = %g, want 0", x, lo)
			}
			continue
		}
		if math.Float32bits(hi+lo) != math.Float32bits(x) {
			t.Errorf("SplitF32(%g): hi+lo = %g does not reconstruct", x, hi+lo)
		}
		if shifted := f16.ToFloat32Fast(f16.FromFloat32(lo * 0x1p11)); math.IsInf(float64(shifted), 0) {
			t.Errorf("SplitF32(%g): shifted residual %g overflows fp16", x, lo*0x1p11)
		}
	}
}
