package blas

import (
	"fmt"
	"sync/atomic"

	"tcqr/internal/dense"
)

// Gemm computes C ← α·op(A)·op(B) + β·C.
//
// Large products run through a GotoBLAS-style packed kernel: panels of op(A)
// and op(B) are packed into contiguous cache-sized slabs (both transpose
// flags are resolved at pack time, so the inner loop is always NN) and an
// unrolled 4×4 register-tiled micro-kernel sweeps 2-D tiles of C. Work is
// parallelized over those C tiles; each tile is owned by exactly one task
// and accumulates its k-slabs in a fixed ascending order, so results are
// bit-identical for any GOMAXPROCS. Small products use the column-sweep
// reference kernel, serially.
func Gemm[T dense.Float](tA, tB Transpose, alpha T, a, b *dense.Matrix[T], beta T, c *dense.Matrix[T]) {
	gemmHooked(tA, tB, alpha, a, b, beta, c, nil, nil, false)
}

// GemmHooked is Gemm with per-operand pack hooks: hookA/hookB are applied in
// place to every packed panel of op(A)/op(B), while the panel is still cache
// resident. The simulated neural engines use this to fuse operand rounding
// (and, with count == true, overflow/underflow accounting) into the packing
// pass, instead of making separate full sweeps over the operands.
//
// When count is true and a hook provides RoundCount, every source element
// contributes to the returned totals exactly once, regardless of how many
// times blocking re-packs it. Results are bit-identical to calling Gemm on
// pre-rounded copies of the operands.
func GemmHooked[T dense.Float](tA, tB Transpose, alpha T, a, b *dense.Matrix[T], beta T, c *dense.Matrix[T], hookA, hookB *PackHook[T], count bool) (overflow, underflow int64) {
	return gemmHooked(tA, tB, alpha, a, b, beta, c, hookA, hookB, count)
}

func gemmHooked[T dense.Float](tA, tB Transpose, alpha T, a, b *dense.Matrix[T], beta T, c *dense.Matrix[T], hookA, hookB *PackHook[T], count bool) (ov, uf int64) {
	m, n, k := checkGemm(tA, tB, a, b, c)
	if m == 0 || n == 0 || alpha == 0 || k == 0 {
		// Degenerate product: no packing happens, but engines that track
		// fp16 specials still expect both operands to be inspected.
		if count {
			pb := getPackBuf[T]()
			oa, ua := hookCountOnly(hookA, a, pb)
			ob, ub := hookCountOnly(hookB, b, pb)
			putPackBuf(pb)
			ov, uf = oa+ob, ua+ub
		}
		if m > 0 && n > 0 {
			scaleCols(c, beta, 0, n)
		}
		return ov, uf
	}
	if useBlocked(m, n, k) {
		return gemmBlocked(tA, tB, alpha, a, b, beta, c, m, n, k, hookA, hookB, count)
	}
	return gemmSmall(tA, tB, alpha, a, b, beta, c, m, n, k, hookA, hookB, count)
}

// useBlocked reports whether the packed kernel pays for itself. Very narrow
// outputs waste micro-tile lanes on padding, and tiny products are dominated
// by packing traffic; both go to the reference kernel.
func useBlocked(m, n, k int) bool {
	return m >= scalarMR && n >= scalarNR && m*n*k >= gemmBlockedMinFlops
}

// hookCountOnly runs a hook's RoundCount over a scratch copy of every column
// of src purely for its counts, leaving src untouched.
func hookCountOnly[T dense.Float](h *PackHook[T], src *dense.Matrix[T], pb *packBuf[T]) (ov, uf int64) {
	if h == nil || h.RoundCount == nil || src.Rows == 0 || src.Cols == 0 {
		return 0, 0
	}
	scratch := pb.growA(src.Rows)
	for j := 0; j < src.Cols; j++ {
		copy(scratch, src.Col(j))
		o, u := h.RoundCount(scratch)
		ov += o
		uf += u
	}
	return ov, uf
}

// gemmSmall runs the reference kernel, applying hooks (if any) to pooled
// tight copies of the operands first. Serial: at these sizes goroutine
// fan-out costs more than it saves.
func gemmSmall[T dense.Float](tA, tB Transpose, alpha T, a, b *dense.Matrix[T], beta T, c *dense.Matrix[T], m, n, k int, hookA, hookB *PackHook[T], count bool) (ov, uf int64) {
	if hookA == nil && hookB == nil {
		gemmCols(tA, tB, alpha, a, b, beta, c, 0, n, k, m)
		return 0, 0
	}
	pb := getPackBuf[T]()
	ra, oa, ua := hookedCopy(hookA, a, pb.growA(a.Rows*a.Cols), &pb.am, count)
	rb, ob, ub := hookedCopy(hookB, b, pb.growB(b.Rows*b.Cols), &pb.bm, count)
	gemmCols(tA, tB, alpha, ra, rb, beta, c, 0, n, k, m)
	putPackBuf(pb)
	return oa + ob, ua + ub
}

// hookedCopy copies src tightly into buf, applies the hook in place, and
// returns hdr wired to the result (or src itself when the hook is nil).
func hookedCopy[T dense.Float](h *PackHook[T], src *dense.Matrix[T], buf []T, hdr *dense.Matrix[T], count bool) (*dense.Matrix[T], int64, int64) {
	if h == nil {
		return src, 0, 0
	}
	rows := src.Rows
	for j := 0; j < src.Cols; j++ {
		copy(buf[j*rows:j*rows+rows], src.Col(j))
	}
	var ov, uf int64
	if count && h.RoundCount != nil {
		ov, uf = h.RoundCount(buf)
	} else {
		h.Round(buf)
	}
	hdr.Rows = rows
	hdr.Cols = src.Cols
	hdr.Stride = max(1, rows)
	hdr.Data = buf
	return hdr, ov, uf
}

// gemmJob carries one blocked GEMM invocation through parallelTasks. Task t
// owns the C macro-tile (t mod mTiles, t div mTiles) — a gemmMC×gemmNC
// rectangle — packs its own operand slabs into pooled buffers, and sweeps
// the full k range in ascending slab order. Tiles are disjoint, so any
// number of workers produces identical bits.
type gemmJob[T dense.Float] struct {
	tA, tB       Transpose
	alpha, beta  T
	a, b, c      *dense.Matrix[T]
	m, n, k      int
	mc, nc, kc   int
	mr, nr       int
	mTiles       int
	hookA, hookB *PackHook[T]
	count        bool
	ov, uf       int64 // atomic
}

func (g *gemmJob[T]) runTask(task int) {
	pb := getPackBuf[T]()
	icIdx := task % g.mTiles
	jcIdx := task / g.mTiles
	i0 := icIdx * g.mc
	ib := min(g.mc, g.m-i0)
	j0 := jcIdx * g.nc
	jb := min(g.nc, g.n-j0)
	aPanels := (ib + g.mr - 1) / g.mr
	bPanels := (jb + g.nr - 1) / g.nr
	bufA := pb.growA(aPanels * g.mr * g.kc)
	bufB := pb.growB(bPanels * g.nr * g.kc)
	var ov, uf int64
	for p0 := 0; p0 < g.k; p0 += g.kc {
		kb := min(g.kc, g.k-p0)
		bb := bufB[:bPanels*g.nr*kb]
		packBPanel(bb, g.b, g.tB, p0, j0, kb, jb, g.nr)
		if g.hookB != nil {
			// Each op(B) block is re-packed once per row of macro-tiles;
			// counting only on the first row tallies every element once.
			if g.count && icIdx == 0 && g.hookB.RoundCount != nil {
				o, u := g.hookB.RoundCount(bb)
				ov += o
				uf += u
			} else {
				g.hookB.Round(bb)
			}
		}
		aa := bufA[:aPanels*g.mr*kb]
		packAPanel(aa, g.a, g.tA, i0, p0, ib, kb, g.mr)
		if g.hookA != nil {
			// Symmetrically, op(A) blocks recur once per column of
			// macro-tiles; count on the first column only.
			if g.count && jcIdx == 0 && g.hookA.RoundCount != nil {
				o, u := g.hookA.RoundCount(aa)
				ov += o
				uf += u
			} else {
				g.hookA.Round(aa)
			}
		}
		gemmMacro(aa, bb, g.alpha, g.beta, g.c, i0, ib, j0, jb, kb, g.mr, g.nr, p0 == 0)
	}
	if ov != 0 {
		atomic.AddInt64(&g.ov, ov)
	}
	if uf != 0 {
		atomic.AddInt64(&g.uf, uf)
	}
	putPackBuf(pb)
}

func gemmBlocked[T dense.Float](tA, tB Transpose, alpha T, a, b *dense.Matrix[T], beta T, c *dense.Matrix[T], m, n, k int, hookA, hookB *PackHook[T], count bool) (int64, int64) {
	job := getGemmJob[T]()
	*job = gemmJob[T]{
		tA: tA, tB: tB,
		alpha: alpha, beta: beta,
		a: a, b: b, c: c,
		m: m, n: n, k: k,
		mc: gemmMC, nc: gemmNC, kc: gemmKC,
		hookA: hookA, hookB: hookB,
		count: count,
	}
	job.mr, job.nr = kernelDims[T]()
	job.mTiles = (m + job.mc - 1) / job.mc
	nTiles := (n + job.nc - 1) / job.nc
	parallelTasks(job.mTiles*nTiles, job)
	ov, uf := job.ov, job.uf
	putGemmJob(job)
	return ov, uf
}

// Syrk computes the symmetric rank-k update. With t == NoTrans it forms
// C ← α·A·Aᵀ + β·C; with t == Trans it forms C ← α·Aᵀ·A + β·C. Only the
// triangle selected by uplo is referenced and written. Off-diagonal
// rectangles of the triangle are routed through the packed Gemm kernel;
// diagonal blocks run a row-buffered (NoTrans) or column-dot (Trans) sweep.
func Syrk[T dense.Float](uplo Uplo, t Transpose, alpha T, a *dense.Matrix[T], beta T, c *dense.Matrix[T]) {
	n, k := opShape(t, a)
	if c.Rows != n || c.Cols != n {
		panic(fmt.Sprintf("blas: syrk output %dx%d, want %dx%d", c.Rows, c.Cols, n, n))
	}
	const nb = 64
	for j0 := 0; j0 < n; j0 += nb {
		jb := min(nb, n-j0)
		switch {
		case uplo == Lower && j0+jb < n:
			rows := n - (j0 + jb)
			cv := c.View(j0+jb, j0, rows, jb)
			if t == NoTrans {
				Gemm(NoTrans, Trans, alpha, a.View(j0+jb, 0, rows, k), a.View(j0, 0, jb, k), beta, cv)
			} else {
				Gemm(Trans, NoTrans, alpha, a.View(0, j0+jb, k, rows), a.View(0, j0, k, jb), beta, cv)
			}
		case uplo == Upper && j0 > 0:
			cv := c.View(0, j0, j0, jb)
			if t == NoTrans {
				Gemm(NoTrans, Trans, alpha, a.View(0, 0, j0, k), a.View(j0, 0, jb, k), beta, cv)
			} else {
				Gemm(Trans, NoTrans, alpha, a.View(0, 0, k, j0), a.View(0, j0, k, jb), beta, cv)
			}
		}
		syrkDiag(uplo, t, alpha, a, beta, c, j0, jb, k)
	}
}

// syrkDiag updates the jb×jb diagonal block of C anchored at (j0, j0). For
// t == NoTrans the block's rows of A are first gathered into a contiguous
// row-major scratch, so the inner products run over unit-stride slices
// instead of strided At walks.
func syrkDiag[T dense.Float](uplo Uplo, t Transpose, alpha T, a *dense.Matrix[T], beta T, c *dense.Matrix[T], j0, jb, k int) {
	if t == Trans {
		for j := 0; j < jb; j++ {
			cj := c.Col(j0 + j)
			aj := a.Col(j0 + j)
			lo, hi := diagRange(uplo, j, jb)
			for i := lo; i < hi; i++ {
				s := alpha * Dot(a.Col(j0+i), aj)
				if beta == 0 {
					cj[j0+i] = s
				} else {
					cj[j0+i] = beta*cj[j0+i] + s
				}
			}
		}
		return
	}
	pb := getPackBuf[T]()
	buf := pb.growA(jb * k)
	for l := 0; l < k; l++ {
		src := a.Col(l)
		for r := 0; r < jb; r++ {
			buf[r*k+l] = src[j0+r]
		}
	}
	for j := 0; j < jb; j++ {
		cj := c.Col(j0 + j)
		rowj := buf[j*k : (j+1)*k]
		lo, hi := diagRange(uplo, j, jb)
		for i := lo; i < hi; i++ {
			s := alpha * Dot(buf[i*k:(i+1)*k], rowj)
			if beta == 0 {
				cj[j0+i] = s
			} else {
				cj[j0+i] = beta*cj[j0+i] + s
			}
		}
	}
	putPackBuf(pb)
}

// diagRange returns the in-block row range [lo, hi) of a diagonal block
// column that lies inside the stored triangle.
func diagRange(uplo Uplo, j, jb int) (lo, hi int) {
	if uplo == Upper {
		return 0, j + 1
	}
	return j, jb
}

// FillSymmetric mirrors the triangle selected by uplo into the other half,
// producing a fully stored symmetric matrix.
func FillSymmetric[T dense.Float](uplo Uplo, c *dense.Matrix[T]) {
	n := c.Rows
	if c.Cols != n {
		panic("blas: FillSymmetric requires a square matrix")
	}
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			if uplo == Upper {
				c.Set(j, i, c.At(i, j))
			} else {
				c.Set(i, j, c.At(j, i))
			}
		}
	}
}

// Trsm solves a triangular system with multiple right-hand sides in place:
// op(A)·X = α·B (side == Left) or X·op(A) = α·B (side == Right), overwriting
// B with X. The right-side sweep is blocked: cross-block dependencies are
// applied as packed-kernel GEMM updates and only the nb×nb diagonal systems
// run the scalar column sweep.
func Trsm[T dense.Float](side Side, uplo Uplo, tA Transpose, diag Diag, alpha T, a *dense.Matrix[T], b *dense.Matrix[T]) {
	n := a.Rows
	if a.Cols != n {
		panic("blas: trsm requires a square triangular factor")
	}
	if side == Left && b.Rows != n {
		panic(fmt.Sprintf("blas: trsm left dimension mismatch A=%d B rows=%d", n, b.Rows))
	}
	if side == Right && b.Cols != n {
		panic(fmt.Sprintf("blas: trsm right dimension mismatch A=%d B cols=%d", n, b.Cols))
	}
	if side == Left {
		parallelRange(b.Cols, 4, func(j0, j1 int) {
			for j := j0; j < j1; j++ {
				col := b.Col(j)
				if alpha != 1 {
					Scal(alpha, col)
				}
				Trsv(uplo, tA, diag, a, col)
			}
		})
		return
	}
	if alpha != 1 {
		for j := 0; j < b.Cols; j++ {
			Scal(alpha, b.Col(j))
		}
	}
	const nb = 64
	m := b.Rows
	forward := (uplo == Upper) == (tA == NoTrans)
	if forward {
		for j0 := 0; j0 < n; j0 += nb {
			jb := min(nb, n-j0)
			if j0 > 0 {
				bj := b.View(0, j0, m, jb)
				solved := b.View(0, 0, m, j0)
				if tA == NoTrans {
					Gemm(NoTrans, NoTrans, -1, solved, a.View(0, j0, j0, jb), 1, bj)
				} else {
					Gemm(NoTrans, Trans, -1, solved, a.View(j0, 0, jb, j0), 1, bj)
				}
			}
			trsmRightUnblocked(tA, diag, a.View(j0, j0, jb, jb), b.View(0, j0, m, jb), true)
		}
		return
	}
	blocks := (n + nb - 1) / nb
	for bi := blocks - 1; bi >= 0; bi-- {
		j0 := bi * nb
		jb := min(nb, n-j0)
		if j1 := j0 + jb; j1 < n {
			bj := b.View(0, j0, m, jb)
			solved := b.View(0, j1, m, n-j1)
			if tA == NoTrans {
				Gemm(NoTrans, NoTrans, -1, solved, a.View(j1, j0, n-j1, jb), 1, bj)
			} else {
				Gemm(NoTrans, Trans, -1, solved, a.View(j0, j1, jb, n-j1), 1, bj)
			}
		}
		trsmRightUnblocked(tA, diag, a.View(j0, j0, jb, jb), b.View(0, j0, b.Rows, jb), false)
	}
}

// trsmRightUnblocked solves X·op(A) = B in place for one triangular diagonal
// block, sweeping columns forward or backward with cross-column axpys.
func trsmRightUnblocked[T dense.Float](tA Transpose, diag Diag, a, b *dense.Matrix[T], forward bool) {
	n := a.Rows
	coef := func(l, j int) T { // coefficient of X[:,l] in equation for column j
		if tA == NoTrans {
			return a.At(l, j)
		}
		return a.At(j, l)
	}
	if forward {
		for j := 0; j < n; j++ {
			bj := b.Col(j)
			for l := 0; l < j; l++ {
				Axpy(-coef(l, j), b.Col(l), bj)
			}
			if diag == NonUnit {
				Scal(1/a.At(j, j), bj)
			}
		}
		return
	}
	for j := n - 1; j >= 0; j-- {
		bj := b.Col(j)
		for l := j + 1; l < n; l++ {
			Axpy(-coef(l, j), b.Col(l), bj)
		}
		if diag == NonUnit {
			Scal(1/a.At(j, j), bj)
		}
	}
}
