package blas

import (
	"fmt"

	"tcqr/internal/dense"
)

// Gemm computes C ← α·op(A)·op(B) + β·C. Work is parallelized over column
// blocks of C; each block is owned by exactly one goroutine.
func Gemm[T dense.Float](tA, tB Transpose, alpha T, a, b *dense.Matrix[T], beta T, c *dense.Matrix[T]) {
	m, n, k := checkGemm(tA, tB, a, b, c)
	if m == 0 || n == 0 {
		return
	}
	if alpha == 0 || k == 0 {
		scaleCols(c, beta, 0, n)
		return
	}
	// Choose a chunk size that amortizes goroutine overhead: at least ~64k
	// multiply-adds per task.
	minChunk := 1 + (1<<16)/(m*k+1)
	parallelRange(n, minChunk, func(j0, j1 int) {
		gemmCols(tA, tB, alpha, a, b, beta, c, j0, j1, k, m)
	})
}

func scaleCols[T dense.Float](c *dense.Matrix[T], beta T, j0, j1 int) {
	if beta == 1 {
		return
	}
	for j := j0; j < j1; j++ {
		col := c.Col(j)
		if beta == 0 {
			for i := range col {
				col[i] = 0
			}
		} else {
			for i := range col {
				col[i] *= beta
			}
		}
	}
}

// gemmCols computes columns [j0, j1) of the GEMM output.
func gemmCols[T dense.Float](tA, tB Transpose, alpha T, a, b *dense.Matrix[T], beta T, c *dense.Matrix[T], j0, j1, k, m int) {
	switch {
	case tA == NoTrans && tB == NoTrans:
		scaleCols(c, beta, j0, j1)
		for l := 0; l < k; l++ {
			al := a.Col(l)
			for j := j0; j < j1; j++ {
				t := alpha * b.At(l, j)
				if t == 0 {
					continue
				}
				cj := c.Col(j)
				for i, v := range al {
					cj[i] += v * t
				}
			}
		}
	case tA == Trans && tB == NoTrans:
		for j := j0; j < j1; j++ {
			bj := b.Col(j)
			cj := c.Col(j)
			for i := 0; i < m; i++ {
				s := alpha * Dot(a.Col(i), bj)
				if beta == 0 {
					cj[i] = s
				} else {
					cj[i] = beta*cj[i] + s
				}
			}
		}
	case tA == NoTrans && tB == Trans:
		scaleCols(c, beta, j0, j1)
		for l := 0; l < k; l++ {
			al := a.Col(l)
			for j := j0; j < j1; j++ {
				t := alpha * b.At(j, l)
				if t == 0 {
					continue
				}
				cj := c.Col(j)
				for i, v := range al {
					cj[i] += v * t
				}
			}
		}
	default: // Trans, Trans
		for j := j0; j < j1; j++ {
			cj := c.Col(j)
			for i := 0; i < m; i++ {
				col := a.Col(i)
				var s T
				for l, v := range col {
					s += v * b.At(j, l)
				}
				if beta == 0 {
					cj[i] = alpha * s
				} else {
					cj[i] = beta*cj[i] + alpha*s
				}
			}
		}
	}
}

// Syrk computes the symmetric rank-k update. With t == NoTrans it forms
// C ← α·A·Aᵀ + β·C; with t == Trans it forms C ← α·Aᵀ·A + β·C. Only the
// triangle selected by uplo is referenced and written.
func Syrk[T dense.Float](uplo Uplo, t Transpose, alpha T, a *dense.Matrix[T], beta T, c *dense.Matrix[T]) {
	n, k := opShape(t, a)
	if c.Rows != n || c.Cols != n {
		panic(fmt.Sprintf("blas: syrk output %dx%d, want %dx%d", c.Rows, c.Cols, n, n))
	}
	_ = k
	parallelRange(n, 8, func(j0, j1 int) {
		for j := j0; j < j1; j++ {
			var lo, hi int
			if uplo == Upper {
				lo, hi = 0, j+1
			} else {
				lo, hi = j, n
			}
			cj := c.Col(j)
			if t == Trans {
				aj := a.Col(j)
				for i := lo; i < hi; i++ {
					s := alpha * Dot(a.Col(i), aj)
					if beta == 0 {
						cj[i] = s
					} else {
						cj[i] = beta*cj[i] + s
					}
				}
			} else {
				for i := lo; i < hi; i++ {
					var s T
					for l := 0; l < a.Cols; l++ {
						s += a.At(i, l) * a.At(j, l)
					}
					if beta == 0 {
						cj[i] = alpha * s
					} else {
						cj[i] = beta*cj[i] + alpha*s
					}
				}
			}
		}
	})
}

// FillSymmetric mirrors the triangle selected by uplo into the other half,
// producing a fully stored symmetric matrix.
func FillSymmetric[T dense.Float](uplo Uplo, c *dense.Matrix[T]) {
	n := c.Rows
	if c.Cols != n {
		panic("blas: FillSymmetric requires a square matrix")
	}
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			if uplo == Upper {
				c.Set(j, i, c.At(i, j))
			} else {
				c.Set(i, j, c.At(j, i))
			}
		}
	}
}

// Trsm solves a triangular system with multiple right-hand sides in place:
// op(A)·X = α·B (side == Left) or X·op(A) = α·B (side == Right), overwriting
// B with X.
func Trsm[T dense.Float](side Side, uplo Uplo, tA Transpose, diag Diag, alpha T, a *dense.Matrix[T], b *dense.Matrix[T]) {
	n := a.Rows
	if a.Cols != n {
		panic("blas: trsm requires a square triangular factor")
	}
	if side == Left && b.Rows != n {
		panic(fmt.Sprintf("blas: trsm left dimension mismatch A=%d B rows=%d", n, b.Rows))
	}
	if side == Right && b.Cols != n {
		panic(fmt.Sprintf("blas: trsm right dimension mismatch A=%d B cols=%d", n, b.Cols))
	}
	if side == Left {
		parallelRange(b.Cols, 4, func(j0, j1 int) {
			for j := j0; j < j1; j++ {
				col := b.Col(j)
				if alpha != 1 {
					Scal(alpha, col)
				}
				Trsv(uplo, tA, diag, a, col)
			}
		})
		return
	}
	// Right side: column sweeps with cross-column dependencies; the order
	// depends on the effective orientation of op(A).
	if alpha != 1 {
		for j := 0; j < b.Cols; j++ {
			Scal(alpha, b.Col(j))
		}
	}
	forward := (uplo == Upper) == (tA == NoTrans)
	coef := func(l, j int) T { // coefficient of X[:,l] in equation for column j
		if tA == NoTrans {
			return a.At(l, j)
		}
		return a.At(j, l)
	}
	if forward {
		for j := 0; j < n; j++ {
			bj := b.Col(j)
			for l := 0; l < j; l++ {
				Axpy(-coef(l, j), b.Col(l), bj)
			}
			if diag == NonUnit {
				Scal(1/a.At(j, j), bj)
			}
		}
	} else {
		for j := n - 1; j >= 0; j-- {
			bj := b.Col(j)
			for l := j + 1; l < n; l++ {
				Axpy(-coef(l, j), b.Col(l), bj)
			}
			if diag == NonUnit {
				Scal(1/a.At(j, j), bj)
			}
		}
	}
}
