package blas

import "tcqr/internal/dense"

// This file holds the straightforward column-sweep GEMM that predates the
// packed kernel. It is kept for three jobs: small problems where packing
// costs more than it saves, the per-problem bodies of GemmBatch, and as the
// golden reference the property tests cross-check the packed kernel against.

// scaleCols scales columns [j0, j1) of c by beta, with the BLAS convention
// that beta == 0 overwrites (clearing NaN/Inf) rather than multiplies.
func scaleCols[T dense.Float](c *dense.Matrix[T], beta T, j0, j1 int) {
	if beta == 1 {
		return
	}
	for j := j0; j < j1; j++ {
		col := c.Col(j)
		if beta == 0 {
			for i := range col {
				col[i] = 0
			}
		} else {
			for i := range col {
				col[i] *= beta
			}
		}
	}
}

// gemmCols computes columns [j0, j1) of the GEMM output with simple column
// sweeps, accumulating over k in ascending order.
func gemmCols[T dense.Float](tA, tB Transpose, alpha T, a, b *dense.Matrix[T], beta T, c *dense.Matrix[T], j0, j1, k, m int) {
	switch {
	case tA == NoTrans && tB == NoTrans:
		scaleCols(c, beta, j0, j1)
		for l := 0; l < k; l++ {
			al := a.Col(l)
			for j := j0; j < j1; j++ {
				t := alpha * b.At(l, j)
				if t == 0 {
					continue
				}
				cj := c.Col(j)
				for i, v := range al {
					cj[i] += v * t
				}
			}
		}
	case tA == Trans && tB == NoTrans:
		for j := j0; j < j1; j++ {
			bj := b.Col(j)
			cj := c.Col(j)
			for i := 0; i < m; i++ {
				s := alpha * Dot(a.Col(i), bj)
				if beta == 0 {
					cj[i] = s
				} else {
					cj[i] = beta*cj[i] + s
				}
			}
		}
	case tA == NoTrans && tB == Trans:
		scaleCols(c, beta, j0, j1)
		for l := 0; l < k; l++ {
			al := a.Col(l)
			for j := j0; j < j1; j++ {
				t := alpha * b.At(j, l)
				if t == 0 {
					continue
				}
				cj := c.Col(j)
				for i, v := range al {
					cj[i] += v * t
				}
			}
		}
	default: // Trans, Trans
		for j := j0; j < j1; j++ {
			cj := c.Col(j)
			for i := 0; i < m; i++ {
				col := a.Col(i)
				var s T
				for l, v := range col {
					s += v * b.At(j, l)
				}
				if beta == 0 {
					cj[i] = alpha * s
				} else {
					cj[i] = beta*cj[i] + alpha*s
				}
			}
		}
	}
}
