package blas

import (
	"fmt"

	"tcqr/internal/dense"
)

// Gemv computes y ← α·op(A)·x + β·y.
func Gemv[T dense.Float](tA Transpose, alpha T, a *dense.Matrix[T], x []T, beta T, y []T) {
	r, c := opShape(tA, a)
	if len(x) != c || len(y) != r {
		panic(fmt.Sprintf("blas: gemv shapes op(A)=%dx%d x=%d y=%d", r, c, len(x), len(y)))
	}
	if beta == 0 {
		for i := range y {
			y[i] = 0
		}
	} else if beta != 1 {
		Scal(beta, y)
	}
	if alpha == 0 {
		return
	}
	if tA == NoTrans {
		for j := 0; j < a.Cols; j++ {
			xj := alpha * x[j]
			if xj == 0 {
				continue
			}
			col := a.Col(j)
			for i, v := range col {
				y[i] += v * xj
			}
		}
		return
	}
	for j := 0; j < a.Cols; j++ {
		y[j] += alpha * Dot(a.Col(j), x)
	}
}

// Ger computes A ← α·x·yᵀ + A.
func Ger[T dense.Float](alpha T, x, y []T, a *dense.Matrix[T]) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic(fmt.Sprintf("blas: ger shapes A=%dx%d x=%d y=%d", a.Rows, a.Cols, len(x), len(y)))
	}
	if alpha == 0 {
		return
	}
	for j := 0; j < a.Cols; j++ {
		yj := alpha * y[j]
		if yj == 0 {
			continue
		}
		col := a.Col(j)
		for i, v := range x {
			col[i] += v * yj
		}
	}
}

// Trsv solves op(A)·x = b in place (x ← op(A)⁻¹·x) for a triangular A.
func Trsv[T dense.Float](uplo Uplo, tA Transpose, diag Diag, a *dense.Matrix[T], x []T) {
	n := a.Rows
	if a.Cols != n {
		panic("blas: trsv requires a square matrix")
	}
	if len(x) != n {
		panic("blas: trsv vector length mismatch")
	}
	// Four effective cases; op(Upper)ᵀ behaves like Lower and vice versa.
	forward := (uplo == Lower) == (tA == NoTrans)
	if tA == NoTrans {
		if forward { // lower, forward substitution (column variant)
			for j := 0; j < n; j++ {
				if diag == NonUnit {
					x[j] /= a.At(j, j)
				}
				xj := x[j]
				if xj == 0 {
					continue
				}
				col := a.Col(j)
				for i := j + 1; i < n; i++ {
					x[i] -= col[i] * xj
				}
			}
		} else { // upper, backward substitution
			for j := n - 1; j >= 0; j-- {
				if diag == NonUnit {
					x[j] /= a.At(j, j)
				}
				xj := x[j]
				if xj == 0 {
					continue
				}
				col := a.Col(j)
				for i := 0; i < j; i++ {
					x[i] -= col[i] * xj
				}
			}
		}
		return
	}
	// Transposed cases use dot products along columns.
	if forward { // A upper, solving Aᵀx = b forward
		for j := 0; j < n; j++ {
			col := a.Col(j)
			var s T
			for i := 0; i < j; i++ {
				s += col[i] * x[i]
			}
			x[j] -= s
			if diag == NonUnit {
				x[j] /= col[j]
			}
		}
	} else { // A lower, solving Aᵀx = b backward
		for j := n - 1; j >= 0; j-- {
			col := a.Col(j)
			var s T
			for i := j + 1; i < n; i++ {
				s += col[i] * x[i]
			}
			x[j] -= s
			if diag == NonUnit {
				x[j] /= col[j]
			}
		}
	}
}

// Trmv computes x ← op(A)·x for a triangular A.
func Trmv[T dense.Float](uplo Uplo, tA Transpose, diag Diag, a *dense.Matrix[T], x []T) {
	n := a.Rows
	if a.Cols != n {
		panic("blas: trmv requires a square matrix")
	}
	if len(x) != n {
		panic("blas: trmv vector length mismatch")
	}
	if tA == NoTrans {
		if uplo == Upper {
			for i := 0; i < n; i++ {
				var s T
				if diag == Unit {
					s = x[i]
				} else {
					s = a.At(i, i) * x[i]
				}
				for j := i + 1; j < n; j++ {
					s += a.At(i, j) * x[j]
				}
				x[i] = s
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				var s T
				if diag == Unit {
					s = x[i]
				} else {
					s = a.At(i, i) * x[i]
				}
				for j := 0; j < i; j++ {
					s += a.At(i, j) * x[j]
				}
				x[i] = s
			}
		}
		return
	}
	if uplo == Upper { // Aᵀ with A upper acts lower: go backward
		for j := n - 1; j >= 0; j-- {
			col := a.Col(j)
			var s T
			if diag == Unit {
				s = x[j]
			} else {
				s = col[j] * x[j]
			}
			for i := 0; i < j; i++ {
				s += col[i] * x[i]
			}
			x[j] = s
		}
	} else {
		for j := 0; j < n; j++ {
			col := a.Col(j)
			var s T
			if diag == Unit {
				s = x[j]
			} else {
				s = col[j] * x[j]
			}
			for i := j + 1; i < n; i++ {
				s += col[i] * x[i]
			}
			x[j] = s
		}
	}
}
