package blas

import (
	"fmt"

	"tcqr/internal/dense"
)

// Gemv computes y ← α·op(A)·x + β·y.
func Gemv[T dense.Float](tA Transpose, alpha T, a *dense.Matrix[T], x []T, beta T, y []T) {
	r, c := opShape(tA, a)
	if len(x) != c || len(y) != r {
		panic(fmt.Sprintf("blas: gemv shapes op(A)=%dx%d x=%d y=%d", r, c, len(x), len(y)))
	}
	if beta == 0 {
		for i := range y {
			y[i] = 0
		}
	} else if beta != 1 {
		Scal(beta, y)
	}
	if alpha == 0 {
		return
	}
	if tA == NoTrans {
		gemvNoTrans(alpha, a, x, y)
		return
	}
	gemvTrans(alpha, a, x, y)
}

// gemvNoTrans computes y += α·A·x four columns at a time. The blocked inner
// loop folds four column updates into one pass over y, evaluated strictly
// left to right, so every y[i] sees exactly the same addition sequence as
// four successive single-column sweeps — results are bit-identical to the
// reference loop (the same policy the assembly GEMM kernels follow: more
// instruction-level parallelism, never a reassociated accumulation). A zero
// scaled coefficient falls back to per-column updates because the reference
// loop skips those columns entirely (adding v·0 is not a no-op for ±0 and
// non-finite v).
func gemvNoTrans[T dense.Float](alpha T, a *dense.Matrix[T], x, y []T) {
	j := 0
	for ; j+4 <= a.Cols; j += 4 {
		x0, x1, x2, x3 := alpha*x[j], alpha*x[j+1], alpha*x[j+2], alpha*x[j+3]
		if x0 == 0 || x1 == 0 || x2 == 0 || x3 == 0 {
			gemvNoTransRef(alpha, a, x[j:j+4], y, j)
			continue
		}
		c0 := a.Col(j)[:len(y)]
		c1 := a.Col(j + 1)[:len(y)]
		c2 := a.Col(j + 2)[:len(y)]
		c3 := a.Col(j + 3)[:len(y)]
		for i := range y {
			y[i] = y[i] + c0[i]*x0 + c1[i]*x1 + c2[i]*x2 + c3[i]*x3
		}
	}
	gemvNoTransRef(alpha, a, x[j:], y, j)
}

// gemvNoTransRef is the reference column sweep over columns [j0, j0+len(xs)).
func gemvNoTransRef[T dense.Float](alpha T, a *dense.Matrix[T], xs, y []T, j0 int) {
	for k, xv := range xs {
		xj := alpha * xv
		if xj == 0 {
			continue
		}
		col := a.Col(j0 + k)
		for i, v := range col {
			y[i] += v * xj
		}
	}
}

// gemvTrans computes y += α·Aᵀ·x four columns at a time: four independent
// dot-product accumulators share one pass over x. Each accumulator runs the
// same sequential sum as Dot(a.Col(j), x), so per-column results are
// bit-identical to the reference loop while the four independent chains hide
// the floating-point add latency that serializes a single running sum.
func gemvTrans[T dense.Float](alpha T, a *dense.Matrix[T], x, y []T) {
	j := 0
	for ; j+4 <= a.Cols; j += 4 {
		c0 := a.Col(j)[:len(x)]
		c1 := a.Col(j + 1)[:len(x)]
		c2 := a.Col(j + 2)[:len(x)]
		c3 := a.Col(j + 3)[:len(x)]
		var s0, s1, s2, s3 T
		for i, xv := range x {
			s0 += c0[i] * xv
			s1 += c1[i] * xv
			s2 += c2[i] * xv
			s3 += c3[i] * xv
		}
		y[j] += alpha * s0
		y[j+1] += alpha * s1
		y[j+2] += alpha * s2
		y[j+3] += alpha * s3
	}
	for ; j < a.Cols; j++ {
		y[j] += alpha * Dot(a.Col(j), x)
	}
}

// Ger computes A ← α·x·yᵀ + A.
func Ger[T dense.Float](alpha T, x, y []T, a *dense.Matrix[T]) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic(fmt.Sprintf("blas: ger shapes A=%dx%d x=%d y=%d", a.Rows, a.Cols, len(x), len(y)))
	}
	if alpha == 0 {
		return
	}
	for j := 0; j < a.Cols; j++ {
		yj := alpha * y[j]
		if yj == 0 {
			continue
		}
		col := a.Col(j)
		for i, v := range x {
			col[i] += v * yj
		}
	}
}

// Trsv solves op(A)·x = b in place (x ← op(A)⁻¹·x) for a triangular A.
//
// The two cases on the refinement hot path — Upper/NoTrans back-substitution
// and Upper/Trans forward elimination, both run twice per CGLS iteration —
// use blocked kernels that are bit-identical to the reference sweeps (same
// policy as Gemv: fold work for ILP, never reassociate an accumulation).
func Trsv[T dense.Float](uplo Uplo, tA Transpose, diag Diag, a *dense.Matrix[T], x []T) {
	n := a.Rows
	if a.Cols != n {
		panic("blas: trsv requires a square matrix")
	}
	if len(x) != n {
		panic("blas: trsv vector length mismatch")
	}
	// Four effective cases; op(Upper)ᵀ behaves like Lower and vice versa.
	forward := (uplo == Lower) == (tA == NoTrans)
	if tA == NoTrans {
		if forward { // lower, forward substitution (column variant)
			for j := 0; j < n; j++ {
				if diag == NonUnit {
					x[j] /= a.At(j, j)
				}
				xj := x[j]
				if xj == 0 {
					continue
				}
				col := a.Col(j)
				for i := j + 1; i < n; i++ {
					x[i] -= col[i] * xj
				}
			}
		} else { // upper, backward substitution
			trsvUpperNoTrans(diag, a, x)
		}
		return
	}
	// Transposed cases use dot products along columns.
	if forward { // A upper, solving Aᵀx = b forward
		trsvUpperTrans(diag, a, x)
	} else { // A lower, solving Aᵀx = b backward
		for j := n - 1; j >= 0; j-- {
			col := a.Col(j)
			var s T
			for i := j + 1; i < n; i++ {
				s += col[i] * x[i]
			}
			x[j] -= s
			if diag == NonUnit {
				x[j] /= col[j]
			}
		}
	}
}

// trsvUpperNoTrans is blocked backward substitution for an upper triangular
// A. Four columns are finalized in the reference (descending) order inside a
// small corner, then their updates to the remaining prefix fold into one
// pass evaluated strictly left to right — every x[i] sees exactly the
// subtraction sequence of four successive reference column sweeps. A zero
// solved component falls back to per-column sweeps for its block, because
// the reference loop skips zero columns entirely.
func trsvUpperNoTrans[T dense.Float](diag Diag, a *dense.Matrix[T], x []T) {
	n := a.Rows
	j := n - 1
	for ; j >= 3; j -= 4 {
		c0 := a.Col(j) // columns in reference order: j, j-1, j-2, j-3
		c1 := a.Col(j - 1)
		c2 := a.Col(j - 2)
		c3 := a.Col(j - 3)
		// Corner: finalize the block's four components exactly as the
		// reference would, column by column in descending order.
		if diag == NonUnit {
			x[j] /= c0[j]
		}
		x0 := x[j]
		if x0 != 0 {
			x[j-1] -= c0[j-1] * x0
			x[j-2] -= c0[j-2] * x0
			x[j-3] -= c0[j-3] * x0
		}
		if diag == NonUnit {
			x[j-1] /= c1[j-1]
		}
		x1 := x[j-1]
		if x1 != 0 {
			x[j-2] -= c1[j-2] * x1
			x[j-3] -= c1[j-3] * x1
		}
		if diag == NonUnit {
			x[j-2] /= c2[j-2]
		}
		x2 := x[j-2]
		if x2 != 0 {
			x[j-3] -= c2[j-3] * x2
		}
		if diag == NonUnit {
			x[j-3] /= c3[j-3]
		}
		x3 := x[j-3]
		if x0 == 0 || x1 == 0 || x2 == 0 || x3 == 0 {
			// The reference skips zero columns; replay them one at a time.
			for k, xv := range [4]T{x0, x1, x2, x3} {
				if xv == 0 {
					continue
				}
				col := a.Col(j - k)
				for i := 0; i < j-3; i++ {
					x[i] -= col[i] * xv
				}
			}
			continue
		}
		head := x[:j-3]
		for i := range head {
			head[i] = head[i] - c0[i]*x0 - c1[i]*x1 - c2[i]*x2 - c3[i]*x3
		}
	}
	for ; j >= 0; j-- {
		if diag == NonUnit {
			x[j] /= a.At(j, j)
		}
		xj := x[j]
		if xj == 0 {
			continue
		}
		col := a.Col(j)
		for i := 0; i < j; i++ {
			x[i] -= col[i] * xj
		}
	}
}

// trsvUpperTrans is blocked forward elimination for Aᵀx = b with A upper
// triangular. The reference computes one sequential dot per column — a
// single floating-point add chain whose latency nothing hides. Here four
// columns share one pass over the solved prefix with four independent
// accumulator chains; each chain then finishes inside the 4×4 corner in the
// same ascending element order, so every component is the bit-identical
// sequential dot of the reference loop.
func trsvUpperTrans[T dense.Float](diag Diag, a *dense.Matrix[T], x []T) {
	n := a.Rows
	j := 0
	for ; j+4 <= n; j += 4 {
		c0 := a.Col(j)
		c1 := a.Col(j + 1)
		c2 := a.Col(j + 2)
		c3 := a.Col(j + 3)
		var s0, s1, s2, s3 T
		head := x[:j]
		for i, xv := range head {
			s0 += c0[i] * xv
			s1 += c1[i] * xv
			s2 += c2[i] * xv
			s3 += c3[i] * xv
		}
		// Corner: each column's chain continues in ascending order over the
		// components solved within the block.
		x[j] -= s0
		if diag == NonUnit {
			x[j] /= c0[j]
		}
		s1 += c1[j] * x[j]
		x[j+1] -= s1
		if diag == NonUnit {
			x[j+1] /= c1[j+1]
		}
		s2 += c2[j] * x[j]
		s2 += c2[j+1] * x[j+1]
		x[j+2] -= s2
		if diag == NonUnit {
			x[j+2] /= c2[j+2]
		}
		s3 += c3[j] * x[j]
		s3 += c3[j+1] * x[j+1]
		s3 += c3[j+2] * x[j+2]
		x[j+3] -= s3
		if diag == NonUnit {
			x[j+3] /= c3[j+3]
		}
	}
	for ; j < n; j++ {
		col := a.Col(j)
		var s T
		for i := 0; i < j; i++ {
			s += col[i] * x[i]
		}
		x[j] -= s
		if diag == NonUnit {
			x[j] /= col[j]
		}
	}
}

// Trmv computes x ← op(A)·x for a triangular A.
func Trmv[T dense.Float](uplo Uplo, tA Transpose, diag Diag, a *dense.Matrix[T], x []T) {
	n := a.Rows
	if a.Cols != n {
		panic("blas: trmv requires a square matrix")
	}
	if len(x) != n {
		panic("blas: trmv vector length mismatch")
	}
	if tA == NoTrans {
		if uplo == Upper {
			for i := 0; i < n; i++ {
				var s T
				if diag == Unit {
					s = x[i]
				} else {
					s = a.At(i, i) * x[i]
				}
				for j := i + 1; j < n; j++ {
					s += a.At(i, j) * x[j]
				}
				x[i] = s
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				var s T
				if diag == Unit {
					s = x[i]
				} else {
					s = a.At(i, i) * x[i]
				}
				for j := 0; j < i; j++ {
					s += a.At(i, j) * x[j]
				}
				x[i] = s
			}
		}
		return
	}
	if uplo == Upper { // Aᵀ with A upper acts lower: go backward
		for j := n - 1; j >= 0; j-- {
			col := a.Col(j)
			var s T
			if diag == Unit {
				s = x[j]
			} else {
				s = col[j] * x[j]
			}
			for i := 0; i < j; i++ {
				s += col[i] * x[i]
			}
			x[j] = s
		}
	} else {
		for j := 0; j < n; j++ {
			col := a.Col(j)
			var s T
			if diag == Unit {
				s = x[j]
			} else {
				s = col[j] * x[j]
			}
			for i := j + 1; i < n; i++ {
				s += col[i] * x[i]
			}
			x[j] = s
		}
	}
}
