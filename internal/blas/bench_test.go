package blas

import (
	"math/rand"
	"testing"

	"tcqr/internal/dense"
)

func benchM(r, c int) *dense.M32 {
	rng := rand.New(rand.NewSource(1))
	m := dense.New[float32](r, c)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func benchGemm(b *testing.B, tA, tB Transpose, m, n, k int) {
	b.Helper()
	var a, bb *dense.M32
	if tA == NoTrans {
		a = benchM(m, k)
	} else {
		a = benchM(k, m)
	}
	if tB == NoTrans {
		bb = benchM(k, n)
	} else {
		bb = benchM(n, k)
	}
	c := dense.New[float32](m, n)
	b.SetBytes(int64(2 * m * n * k)) // flop count proxy for MB/s ≈ GFLOPS/2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(tA, tB, 1, a, bb, 0, c)
	}
}

func BenchmarkGemmNN256(b *testing.B) { benchGemm(b, NoTrans, NoTrans, 256, 256, 256) }
func BenchmarkGemmTN256(b *testing.B) { benchGemm(b, Trans, NoTrans, 256, 256, 256) }
func BenchmarkGemmNT256(b *testing.B) { benchGemm(b, NoTrans, Trans, 256, 256, 256) }

// BenchmarkGemmProjectionShape is the RGSQRF R12 shape at quick scale.
func BenchmarkGemmProjectionShape(b *testing.B) { benchGemm(b, Trans, NoTrans, 128, 128, 2048) }

// BenchmarkGemmUpdateShape is the trailing-update shape at quick scale.
func BenchmarkGemmUpdateShape(b *testing.B) { benchGemm(b, NoTrans, NoTrans, 2048, 128, 128) }

func BenchmarkTrsmLeftUpper(b *testing.B) {
	n, rhs := 256, 64
	a := benchM(n, n)
	for j := 0; j < n; j++ {
		a.Set(j, j, 4)
	}
	x := benchM(n, rhs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Trsm(Left, Upper, NoTrans, NonUnit, 1, a, x)
	}
}

func BenchmarkGemv(b *testing.B) {
	a := benchM(2048, 512)
	x := make([]float32, 512)
	y := make([]float32, 2048)
	for i := range x {
		x[i] = 1
	}
	b.SetBytes(2048 * 512 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemv(NoTrans, 1, a, x, 0, y)
	}
}
