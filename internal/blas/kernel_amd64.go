//go:build amd64

package blas

// AVX micro-kernels for the packed GEMM. They compute a full micro-tile
// accumulator block from packed panels:
//
//	out[r + s·MR] = Σ_l ap[l·MR+r] · bp[l·NR+s]
//
// vectorizing over r (rows of C), so each C element still accumulates its k
// terms sequentially in ascending order with one rounding per multiply and
// one per add — exactly the arithmetic of the scalar kernel and of the
// original column-sweep code. FMA is deliberately not used: a fused
// multiply-add would skip the intermediate rounding and make results differ
// between the assembly and pure-Go paths (and change the simulated engines'
// float32 accumulation semantics). α/β application and edge masking happen
// in Go during write-back.

// gemmKernel16x4F32 accumulates a 16×4 float32 tile over kb packed quads.
//
//go:noescape
func gemmKernel16x4F32(kb int, ap, bp, out *float32)

// gemmKernel8x4F64 accumulates an 8×4 float64 tile over kb packed quads.
//
//go:noescape
func gemmKernel8x4F64(kb int, ap, bp, out *float64)

// cpuHasAVX reports whether the CPU and OS support AVX (CPUID feature flag
// plus XGETBV confirmation that the OS saves YMM state).
func cpuHasAVX() bool

// useAVXKernels gates the assembly micro-kernels; when false the generic
// scalar 4×4 kernel runs everywhere.
var useAVXKernels = cpuHasAVX()
