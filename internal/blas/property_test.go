package blas

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tcqr/internal/dense"
)

// smallMat is a quick.Generator producing well-scaled random matrices of
// bounded size, so the property tests explore shapes as well as values.
type smallMat struct {
	m *dense.M64
}

// Generate implements quick.Generator.
func (smallMat) Generate(r *rand.Rand, _ int) reflect.Value {
	rows := 1 + r.Intn(12)
	cols := 1 + r.Intn(12)
	m := dense.New[float64](rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return reflect.ValueOf(smallMat{m})
}

func vecLike(r *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

// TestPropGemmLinearity: GEMM is linear in A: (A1+A2)·B = A1·B + A2·B.
func TestPropGemmLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(a1 smallMat) bool {
		a2 := dense.New[float64](a1.m.Rows, a1.m.Cols)
		for i := range a2.Data {
			a2.Data[i] = rng.NormFloat64()
		}
		b := dense.New[float64](a1.m.Cols, 1+rng.Intn(6))
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		sum := a1.m.Clone()
		for i := range sum.Data {
			sum.Data[i] += a2.Data[i]
		}
		left := dense.New[float64](a1.m.Rows, b.Cols)
		Gemm(NoTrans, NoTrans, 1, sum, b, 0, left)
		right := dense.New[float64](a1.m.Rows, b.Cols)
		Gemm(NoTrans, NoTrans, 1, a1.m, b, 0, right)
		Gemm(NoTrans, NoTrans, 1, a2, b, 1, right)
		for i := range left.Data {
			if math.Abs(left.Data[i]-right.Data[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropGemmTransposeConsistency: (AᵀB) = (BᵀA)ᵀ.
func TestPropGemmTransposeConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(a smallMat) bool {
		b := dense.New[float64](a.m.Rows, 1+rng.Intn(8))
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		atb := dense.New[float64](a.m.Cols, b.Cols)
		Gemm(Trans, NoTrans, 1, a.m, b, 0, atb)
		bta := dense.New[float64](b.Cols, a.m.Cols)
		Gemm(Trans, NoTrans, 1, b, a.m, 0, bta)
		for i := 0; i < atb.Rows; i++ {
			for j := 0; j < atb.Cols; j++ {
				if math.Abs(atb.At(i, j)-bta.At(j, i)) > 1e-11 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropTrsvRoundTrip: Trmv followed by Trsv is the identity (and vice
// versa) for every triangular variant.
func TestPropTrsvRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		uplo := Uplo(r.Intn(2))
		trans := Transpose(r.Intn(2))
		diag := Diag(r.Intn(2))
		a := dense.New[float64](n, n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				if (uplo == Upper && i <= j) || (uplo == Lower && i >= j) {
					a.Set(i, j, r.NormFloat64())
				}
			}
			a.Set(j, j, 2+r.Float64()) // well-conditioned
		}
		x := vecLike(rng, n)
		y := append([]float64(nil), x...)
		Trmv(uplo, trans, diag, a, y)
		Trsv(uplo, trans, diag, a, y)
		for i := range x {
			if math.Abs(y[i]-x[i]) > 1e-9*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropNrm2Homogeneous: ‖αx‖ = |α|·‖x‖.
func TestPropNrm2Homogeneous(t *testing.T) {
	f := func(x []float64, alpha float64) bool {
		if len(x) == 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			return true
		}
		for _, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				return true
			}
		}
		if math.Abs(alpha) > 1e100 {
			return true
		}
		base := Nrm2(x)
		scaled := append([]float64(nil), x...)
		Scal(alpha, scaled)
		want := math.Abs(alpha) * base
		got := Nrm2(scaled)
		return math.Abs(got-want) <= 1e-12*(want+1e-300)+1e-300 || math.Abs(got-want)/math.Max(want, 1e-300) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropDotCauchySchwarz: |xᵀy| ≤ ‖x‖·‖y‖ (+ rounding slack).
func TestPropDotCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		x, y := vecLike(r, n), vecLike(r, n)
		return math.Abs(Dot(x, y)) <= Nrm2(x)*Nrm2(y)*(1+1e-12)+1e-300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestGemmOnStridedViews: kernels must honor non-tight strides — all four
// transpose cases over submatrix views of a larger parent.
func TestGemmOnStridedViews(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	parent := dense.New[float64](20, 20)
	for i := range parent.Data {
		parent.Data[i] = rng.NormFloat64()
	}
	a := parent.View(3, 2, 6, 4)  // 6×4, stride 20
	b := parent.View(9, 11, 4, 5) // 4×5
	cParent := dense.New[float64](15, 15)
	for i := range cParent.Data {
		cParent.Data[i] = rng.NormFloat64()
	}
	c := cParent.View(5, 5, 6, 5)
	want := dense.New[float64](6, 5)
	// Reference on tight copies.
	Gemm(NoTrans, NoTrans, 1, a.Clone(), b.Clone(), 0, want)
	before := cParent.Clone()
	Gemm(NoTrans, NoTrans, 1, a, b, 0, c)
	for i := 0; i < 6; i++ {
		for j := 0; j < 5; j++ {
			if math.Abs(c.At(i, j)-want.At(i, j)) > 1e-12 {
				t.Fatalf("strided gemm (%d,%d): %v vs %v", i, j, c.At(i, j), want.At(i, j))
			}
		}
	}
	// The parent outside the view must be untouched.
	for i := 0; i < 15; i++ {
		for j := 0; j < 15; j++ {
			inside := i >= 5 && i < 11 && j >= 5 && j < 10
			if !inside && cParent.At(i, j) != before.At(i, j) {
				t.Fatalf("gemm wrote outside its view at (%d,%d)", i, j)
			}
		}
	}
}

// TestPropSyrkMatchesGemm: Syrk agrees with the general GEMM on random
// shapes and both orientations.
func TestPropSyrkMatchesGemm(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(10), 1+r.Intn(10)
		a := dense.New[float64](rows, cols)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		tr := Transpose(r.Intn(2))
		n, _ := opShape(tr, a)
		c := dense.New[float64](n, n)
		Syrk(Lower, tr, 1, a, 0, c)
		FillSymmetric(Lower, c)
		want := dense.New[float64](n, n)
		if tr == Trans {
			Gemm(Trans, NoTrans, 1, a, a, 0, want)
		} else {
			Gemm(NoTrans, Trans, 1, a, a, 0, want)
		}
		for i := range c.Data {
			if math.Abs(c.Data[i]-want.Data[i]) > 1e-11 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
