package blas

import (
	"math"
	"math/rand"
	"testing"

	"tcqr/internal/dense"
)

// refGemv is the unblocked reference loop the blocked Gemv must reproduce
// bit for bit: sequential column sweeps (NoTrans) and one sequential dot
// product per column (Trans), with the zero-coefficient column skip.
func refGemv[T dense.Float](tA Transpose, alpha T, a *dense.Matrix[T], x []T, beta T, y []T) {
	if beta == 0 {
		for i := range y {
			y[i] = 0
		}
	} else if beta != 1 {
		Scal(beta, y)
	}
	if alpha == 0 {
		return
	}
	if tA == NoTrans {
		for j := 0; j < a.Cols; j++ {
			xj := alpha * x[j]
			if xj == 0 {
				continue
			}
			col := a.Col(j)
			for i, v := range col {
				y[i] += v * xj
			}
		}
		return
	}
	for j := 0; j < a.Cols; j++ {
		y[j] += alpha * Dot(a.Col(j), x)
	}
}

// TestGemvBlockedBitIdentical pins the kernel policy for the four-column
// blocked Gemv: identical results to the reference loop down to the last
// bit, across shapes that exercise the block body and every tail length,
// zero coefficients (which must skip columns, not add ±0), and non-finite
// matrix entries.
func TestGemvBlockedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct{ m, n int }{
		{1, 1}, {3, 2}, {7, 3}, {8, 4}, {16, 5}, {5, 6}, {33, 7}, {64, 8},
		{129, 9}, {100, 31}, {256, 64}, {1024, 48},
	}
	for _, tA := range []Transpose{NoTrans, Trans} {
		for _, s := range shapes {
			for trial := 0; trial < 4; trial++ {
				a := randMat(rng, s.m, s.n)
				r, c := s.m, s.n
				if tA == Trans {
					r, c = s.n, s.m
				}
				x := make([]float64, c)
				y0 := make([]float64, r)
				for i := range x {
					x[i] = rng.NormFloat64()
				}
				for i := range y0 {
					y0[i] = rng.NormFloat64()
				}
				switch trial {
				case 1: // zero coefficients inside and outside block bodies
					for i := 0; i < len(x); i += 3 {
						x[i] = 0
					}
				case 2: // signed zeros and non-finite matrix entries
					for i := range x {
						if i%2 == 0 {
							x[i] = math.Copysign(0, -1)
						}
					}
					a.Data[0] = math.Inf(1)
					if len(a.Data) > 5 {
						a.Data[5] = math.NaN()
					}
				case 3: // alpha/beta variants exercised below
				}
				alpha, beta := 1.0, 1.0
				if trial == 3 {
					alpha, beta = -2.5, 0.5
				}
				got := append([]float64(nil), y0...)
				want := append([]float64(nil), y0...)
				Gemv(tA, alpha, a, x, beta, got)
				refGemv(tA, alpha, a, x, beta, want)
				for i := range got {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("%v %dx%d trial %d: y[%d] = %x (%g), reference %x (%g)",
							tA, s.m, s.n, trial, i,
							math.Float64bits(got[i]), got[i],
							math.Float64bits(want[i]), want[i])
					}
				}
			}
		}
	}
}

// TestGemvBlockedBitIdenticalF32 repeats the bit-exactness check in float32,
// the precision the factorization kernels run in.
func TestGemvBlockedBitIdenticalF32(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tA := range []Transpose{NoTrans, Trans} {
		for _, n := range []int{1, 3, 4, 5, 8, 11, 17} {
			m := 2*n + 3
			a := dense.New[float32](m, n)
			for i := range a.Data {
				a.Data[i] = float32(rng.NormFloat64())
			}
			r, c := m, n
			if tA == Trans {
				r, c = n, m
			}
			x := make([]float32, c)
			for i := range x {
				x[i] = float32(rng.NormFloat64())
			}
			got := make([]float32, r)
			want := make([]float32, r)
			Gemv(tA, 1, a, x, 0, got)
			refGemv(tA, 1, a, x, 0, want)
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("%v %dx%d: y[%d] = %g, reference %g", tA, m, n, i, got[i], want[i])
				}
			}
		}
	}
}

// refTrsv is the unblocked reference substitution the blocked Trsv cases
// must reproduce bit for bit.
func refTrsv[T dense.Float](uplo Uplo, tA Transpose, diag Diag, a *dense.Matrix[T], x []T) {
	n := a.Rows
	if tA == NoTrans && uplo == Upper {
		for j := n - 1; j >= 0; j-- {
			if diag == NonUnit {
				x[j] /= a.At(j, j)
			}
			xj := x[j]
			if xj == 0 {
				continue
			}
			col := a.Col(j)
			for i := 0; i < j; i++ {
				x[i] -= col[i] * xj
			}
		}
		return
	}
	if tA == Trans && uplo == Upper {
		for j := 0; j < n; j++ {
			col := a.Col(j)
			var s T
			for i := 0; i < j; i++ {
				s += col[i] * x[i]
			}
			x[j] -= s
			if diag == NonUnit {
				x[j] /= col[j]
			}
		}
		return
	}
	panic("refTrsv: case not modeled")
}

// TestTrsvBlockedBitIdentical pins the blocked Upper NoTrans/Trans Trsv
// kernels to the reference substitution down to the last bit, including
// blocks where a solved component lands exactly on zero (the reference
// skips those columns, so v·0 must never be added).
func TestTrsvBlockedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 64, 129, 256} {
		for _, tA := range []Transpose{NoTrans, Trans} {
			for _, diag := range []Diag{NonUnit, Unit} {
				for trial := 0; trial < 3; trial++ {
					a := dense.New[float64](n, n)
					for j := 0; j < n; j++ {
						col := a.Col(j)
						for i := 0; i <= j; i++ {
							col[i] = rng.NormFloat64()
						}
						// A well-scaled diagonal keeps the substitution finite.
						col[j] = 2 + rng.Float64()
					}
					x0 := make([]float64, n)
					for i := range x0 {
						x0[i] = rng.NormFloat64()
					}
					switch trial {
					case 1: // force zero solved components inside block bodies
						for i := 0; i < n; i += 3 {
							x0[i] = 0
							if tA == NoTrans {
								// Zero rhs rows solve to zero when the columns to
								// their right contribute nothing.
								for j := i + 1; j < n; j++ {
									a.Col(j)[i] = 0
								}
							}
						}
					case 2: // non-finite strictly-upper entries propagate identically
						if n > 4 {
							a.Col(n - 1)[0] = math.Inf(1)
							a.Col(n - 2)[1] = math.NaN()
						}
					}
					got := append([]float64(nil), x0...)
					want := append([]float64(nil), x0...)
					Trsv(Upper, tA, diag, a, got)
					refTrsv(Upper, tA, diag, a, want)
					for i := range got {
						if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
							t.Fatalf("%v n=%d diag=%v trial %d: x[%d] = %x (%g), reference %x (%g)",
								tA, n, diag, trial, i,
								math.Float64bits(got[i]), got[i],
								math.Float64bits(want[i]), want[i])
						}
					}
				}
			}
		}
	}
}

func BenchmarkTrsvUpperTrans(b *testing.B) {
	n := 256
	a := dense.New[float64](n, n)
	rng := rand.New(rand.NewSource(3))
	for j := 0; j < n; j++ {
		col := a.Col(j)
		for i := 0; i <= j; i++ {
			col[i] = rng.NormFloat64()
		}
		col[j] = 2
	}
	x := make([]float64, n)
	b.SetBytes(int64(n) * int64(n) * 8 / 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = 1
		}
		Trsv(Upper, Trans, NonUnit, a, x)
	}
}

func BenchmarkTrsvUpperNoTrans(b *testing.B) {
	n := 256
	a := dense.New[float64](n, n)
	rng := rand.New(rand.NewSource(4))
	for j := 0; j < n; j++ {
		col := a.Col(j)
		for i := 0; i <= j; i++ {
			col[i] = rng.NormFloat64()
		}
		col[j] = 2
	}
	x := make([]float64, n)
	b.SetBytes(int64(n) * int64(n) * 8 / 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = 1
		}
		Trsv(Upper, NoTrans, NonUnit, a, x)
	}
}

func BenchmarkGemvTrans(b *testing.B) {
	a := benchM(2048, 512)
	x := make([]float32, 2048)
	y := make([]float32, 512)
	for i := range x {
		x[i] = 1
	}
	b.SetBytes(2048 * 512 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemv(Trans, 1, a, x, 0, y)
	}
}
