package blas

import (
	"runtime"
	"sync"
)

// maxWorkers reports the degree of parallelism used by level-3 kernels.
func maxWorkers() int { return runtime.GOMAXPROCS(0) }

// parallelRange splits [0, n) into contiguous chunks of at least minChunk
// and runs fn on each chunk, possibly concurrently. Chunk boundaries depend
// only on n and minChunk, so output ownership (and therefore the result) is
// deterministic.
func parallelRange(n, minChunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	workers := maxWorkers()
	chunks := (n + minChunk - 1) / minChunk
	if chunks > workers {
		chunks = workers
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
