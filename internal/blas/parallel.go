package blas

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers reports the degree of parallelism used by level-3 kernels.
func maxWorkers() int { return runtime.GOMAXPROCS(0) }

// parallelRange splits [0, n) into contiguous chunks of at least minChunk
// and runs fn on each chunk, possibly concurrently. Chunk boundaries depend
// only on n and minChunk, so output ownership (and therefore the result) is
// deterministic.
func parallelRange(n, minChunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	workers := maxWorkers()
	chunks := (n + minChunk - 1) / minChunk
	if chunks > workers {
		chunks = workers
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// taskRunner is the work interface of parallelTasks. It is an interface
// rather than a func value so pooled job structs can be dispatched without
// any per-call closure allocation — the packed GEMM's zero-allocation hot
// path depends on this.
type taskRunner interface {
	runTask(task int)
}

// parallelTasks runs tasks 0..n-1, each exactly once, on up to GOMAXPROCS
// workers pulling from an atomic counter. The task decomposition is fixed by
// the caller and every task owns disjoint output, so results do not depend
// on the number of workers or the scheduling order; with a single worker no
// goroutines are spawned and nothing is allocated.
func parallelTasks(n int, r taskRunner) {
	if n <= 0 {
		return
	}
	workers := maxWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for t := 0; t < n; t++ {
			r.runTask(t)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				t := int(atomic.AddInt64(&next, 1)) - 1
				if t >= n {
					return
				}
				r.runTask(t)
			}
		}()
	}
	wg.Wait()
}
