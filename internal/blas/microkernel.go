package blas

import "tcqr/internal/dense"

// microKernel4x4 computes one 4×4 tile of C from packed operand panels:
//
//	C[0:rows, 0:cols] ← β'·C + α·Σ_l ap[l]·bp[l]ᵀ
//
// where ap/bp hold kb quads in the layout produced by packAPanel/packBPanel,
// c points at the tile's top-left element with leading dimension ldc, and
// β' is beta on the first k-slab (first == true) and 1 afterwards. The
// sixteen accumulators live in registers for the whole k loop; k is
// traversed in ascending order, which fixes the accumulation order
// independently of blocking and parallelism. rows/cols mask the write-back
// for edge tiles (the padded lanes are computed and discarded).
func microKernel4x4[T dense.Float](kb int, ap, bp []T, alpha, beta T, c []T, ldc, rows, cols int, first bool) {
	var c00, c10, c20, c30 T
	var c01, c11, c21, c31 T
	var c02, c12, c22, c32 T
	var c03, c13, c23, c33 T
	ap = ap[: kb*scalarMR : kb*scalarMR]
	bp = bp[: kb*scalarNR : kb*scalarNR]
	for len(ap) >= 2*scalarMR {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		c00 += a0 * b0
		c10 += a1 * b0
		c20 += a2 * b0
		c30 += a3 * b0
		c01 += a0 * b1
		c11 += a1 * b1
		c21 += a2 * b1
		c31 += a3 * b1
		c02 += a0 * b2
		c12 += a1 * b2
		c22 += a2 * b2
		c32 += a3 * b2
		c03 += a0 * b3
		c13 += a1 * b3
		c23 += a2 * b3
		c33 += a3 * b3
		a0, a1, a2, a3 = ap[4], ap[5], ap[6], ap[7]
		b0, b1, b2, b3 = bp[4], bp[5], bp[6], bp[7]
		c00 += a0 * b0
		c10 += a1 * b0
		c20 += a2 * b0
		c30 += a3 * b0
		c01 += a0 * b1
		c11 += a1 * b1
		c21 += a2 * b1
		c31 += a3 * b1
		c02 += a0 * b2
		c12 += a1 * b2
		c22 += a2 * b2
		c32 += a3 * b2
		c03 += a0 * b3
		c13 += a1 * b3
		c23 += a2 * b3
		c33 += a3 * b3
		ap = ap[2*scalarMR:]
		bp = bp[2*scalarNR:]
	}
	if len(ap) >= scalarMR {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		c00 += a0 * b0
		c10 += a1 * b0
		c20 += a2 * b0
		c30 += a3 * b0
		c01 += a0 * b1
		c11 += a1 * b1
		c21 += a2 * b1
		c31 += a3 * b1
		c02 += a0 * b2
		c12 += a1 * b2
		c22 += a2 * b2
		c32 += a3 * b2
		c03 += a0 * b3
		c13 += a1 * b3
		c23 += a2 * b3
		c33 += a3 * b3
	}

	if rows == scalarMR && cols == scalarNR {
		d0 := c[0*ldc : 0*ldc+scalarMR]
		d1 := c[1*ldc : 1*ldc+scalarMR]
		d2 := c[2*ldc : 2*ldc+scalarMR]
		d3 := c[3*ldc : 3*ldc+scalarMR]
		switch {
		case !first:
			d0[0] += alpha * c00
			d0[1] += alpha * c10
			d0[2] += alpha * c20
			d0[3] += alpha * c30
			d1[0] += alpha * c01
			d1[1] += alpha * c11
			d1[2] += alpha * c21
			d1[3] += alpha * c31
			d2[0] += alpha * c02
			d2[1] += alpha * c12
			d2[2] += alpha * c22
			d2[3] += alpha * c32
			d3[0] += alpha * c03
			d3[1] += alpha * c13
			d3[2] += alpha * c23
			d3[3] += alpha * c33
		case beta == 0:
			d0[0] = alpha * c00
			d0[1] = alpha * c10
			d0[2] = alpha * c20
			d0[3] = alpha * c30
			d1[0] = alpha * c01
			d1[1] = alpha * c11
			d1[2] = alpha * c21
			d1[3] = alpha * c31
			d2[0] = alpha * c02
			d2[1] = alpha * c12
			d2[2] = alpha * c22
			d2[3] = alpha * c32
			d3[0] = alpha * c03
			d3[1] = alpha * c13
			d3[2] = alpha * c23
			d3[3] = alpha * c33
		default:
			d0[0] = beta*d0[0] + alpha*c00
			d0[1] = beta*d0[1] + alpha*c10
			d0[2] = beta*d0[2] + alpha*c20
			d0[3] = beta*d0[3] + alpha*c30
			d1[0] = beta*d1[0] + alpha*c01
			d1[1] = beta*d1[1] + alpha*c11
			d1[2] = beta*d1[2] + alpha*c21
			d1[3] = beta*d1[3] + alpha*c31
			d2[0] = beta*d2[0] + alpha*c02
			d2[1] = beta*d2[1] + alpha*c12
			d2[2] = beta*d2[2] + alpha*c22
			d2[3] = beta*d2[3] + alpha*c32
			d3[0] = beta*d3[0] + alpha*c03
			d3[1] = beta*d3[1] + alpha*c13
			d3[2] = beta*d3[2] + alpha*c23
			d3[3] = beta*d3[3] + alpha*c33
		}
		return
	}

	// Edge tile: stage the accumulators column-major and write the live part.
	acc := [scalarMR * scalarNR]T{
		c00, c10, c20, c30,
		c01, c11, c21, c31,
		c02, c12, c22, c32,
		c03, c13, c23, c33,
	}
	for s := 0; s < cols; s++ {
		d := c[s*ldc:]
		for r := 0; r < rows; r++ {
			v := alpha * acc[s*scalarMR+r]
			switch {
			case !first:
				d[r] += v
			case beta == 0:
				d[r] = v
			default:
				d[r] = beta*d[r] + v
			}
		}
	}
}

// microTile computes one mr×nr tile of C from packed panels, dispatching to
// the AVX assembly kernel when T is exactly float32/float64 on an AVX-capable
// CPU (the same condition under which kernelDims selected the wide shapes),
// and to the generic scalar 4×4 kernel otherwise. All kernels accumulate each
// C element's k terms in the same ascending order with identical per-op
// rounding, so the paths produce bit-identical results.
func microTile[T dense.Float](kb int, ap, bp []T, alpha, beta T, c []T, ldc, rows, cols int, first bool) {
	if useAVXKernels {
		switch any(ap).(type) {
		case []float32:
			microTile16x4F32(kb, any(ap).([]float32), any(bp).([]float32), float32(alpha), float32(beta), any(c).([]float32), ldc, rows, cols, first)
			return
		case []float64:
			microTile8x4F64(kb, any(ap).([]float64), any(bp).([]float64), float64(alpha), float64(beta), any(c).([]float64), ldc, rows, cols, first)
			return
		}
	}
	microKernel4x4(kb, ap, bp, alpha, beta, c, ldc, rows, cols, first)
}

func microTile16x4F32(kb int, ap, bp []float32, alpha, beta float32, c []float32, ldc, rows, cols int, first bool) {
	var acc [16 * 4]float32
	gemmKernel16x4F32(kb, &ap[0], &bp[0], &acc[0])
	writeTile(acc[:], 16, alpha, beta, c, ldc, rows, cols, first)
}

func microTile8x4F64(kb int, ap, bp []float64, alpha, beta float64, c []float64, ldc, rows, cols int, first bool) {
	var acc [8 * 4]float64
	gemmKernel8x4F64(kb, &ap[0], &bp[0], &acc[0])
	writeTile(acc[:], 8, alpha, beta, c, ldc, rows, cols, first)
}

// writeTile folds a column-major mr×nr accumulator block into C with the
// same α/β arithmetic as the scalar kernel's write-back, masking rows/cols
// on edge tiles.
func writeTile[T dense.Float](acc []T, mr int, alpha, beta T, c []T, ldc, rows, cols int, first bool) {
	for s := 0; s < cols; s++ {
		d := c[s*ldc : s*ldc+rows]
		as := acc[s*mr : s*mr+rows]
		switch {
		case !first && alpha == 1:
			for r, v := range as {
				d[r] += v
			}
		case !first:
			for r, v := range as {
				d[r] += alpha * v
			}
		case beta == 0 && alpha == 1:
			copy(d, as)
		case beta == 0:
			for r, v := range as {
				d[r] = alpha * v
			}
		case beta == 1 && alpha == 1:
			for r, v := range as {
				d[r] += v
			}
		default:
			for r, v := range as {
				d[r] = beta*d[r] + alpha*v
			}
		}
	}
}

// gemmMacro runs the micro-kernel over one packed (ib×kb)·(kb×jb) slab pair,
// updating the C tile anchored at (i0, j0). The loop order keeps each packed
// B micro-panel hot in L1 while streaming A micro-panels from L2.
func gemmMacro[T dense.Float](ap, bp []T, alpha, beta T, c *dense.Matrix[T], i0, ib, j0, jb, kb, mr, nr int, first bool) {
	aPanels := (ib + mr - 1) / mr
	bPanels := (jb + nr - 1) / nr
	for q := 0; q < bPanels; q++ {
		bpq := bp[q*nr*kb : (q+1)*nr*kb]
		jj := j0 + q*nr
		cols := min(nr, j0+jb-jj)
		for p := 0; p < aPanels; p++ {
			app := ap[p*mr*kb : (p+1)*mr*kb]
			ii := i0 + p*mr
			rows := min(mr, i0+ib-ii)
			microTile(kb, app, bpq, alpha, beta, c.Data[ii+jj*c.Stride:], c.Stride, rows, cols, first)
		}
	}
}
