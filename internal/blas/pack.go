package blas

import (
	"sync"

	"tcqr/internal/dense"
)

// Micro-tile dimensions of the register-blocked inner kernels. The scalar
// fallback kernel uses 4×4 (sixteen accumulators in registers); the AVX
// assembly kernels widen the row dimension to one-or-two vector registers
// (16×4 for float32, 8×4 for float64). Both pack formats below are laid out
// so every kernel reads its panels with unit stride regardless of the
// original transpose flags.
const (
	scalarMR = 4  // rows of C per scalar micro-tile
	scalarNR = 4  // cols of C per scalar micro-tile
	maxMR    = 16 // largest mr of any kernel (sizes edge-tile scratch)
	maxNR    = 4  // largest nr of any kernel
)

// kernelDims reports the micro-tile shape used for element type T: the AVX
// shapes when the assembly kernels are usable for T (exactly float32/float64
// on a CPU with AVX), the scalar 4×4 shape otherwise. microTile dispatches
// with the same type switch, so packing and kernel always agree.
func kernelDims[T dense.Float]() (mr, nr int) {
	if useAVXKernels {
		var z T
		switch any(z).(type) {
		case float32:
			return 16, 4
		case float64:
			return 8, 4
		}
	}
	return scalarMR, scalarNR
}

// Cache-blocking parameters of the packed GEMM. They are variables, not
// constants, so tests can shrink them to force multi-block control flow on
// small inputs; production code never mutates them. The defaults size the
// packed A block (gemmMC·gemmKC elements) for L2 and a packed B micro-panel
// (nr·gemmKC) for L1.
var (
	gemmMC = 128 // rows of the packed A block (C tile height)
	gemmKC = 256 // depth of one packed slab (k-blocking)
	gemmNC = 512 // cols of the packed B block (C tile width)

	// gemmBlockedMinFlops is the m·n·k threshold below which packing costs
	// more than it saves and the naive reference kernel is used instead.
	gemmBlockedMinFlops = 1 << 14
)

// PackHook transforms freshly packed operand panels in place. The TensorCore
// simulator uses it to round every GEMM operand through a storage format
// (binary16, bfloat16) *during* packing, while the panel is cache-resident —
// fusing what would otherwise be a separate full pass over the operand.
type PackHook[T dense.Float] struct {
	// Round rounds a packed panel in place. Required.
	Round func(panel []T)
	// RoundCount rounds a packed panel in place and additionally reports how
	// many originally finite elements became infinite and how many nonzero
	// elements flushed to zero. Optional; used when the caller tracks
	// overflow/underflow statistics. Zero padding introduced by packing
	// never contributes to either count.
	RoundCount func(panel []T) (overflow, underflow int64)
}

// packBuf holds the per-worker scratch of the packed kernel: the packed A
// and B slabs plus reusable matrix headers for the small-problem hooked
// path. Buffers are pooled so steady-state GEMM calls allocate nothing.
type packBuf[T dense.Float] struct {
	a, b   []T
	am, bm dense.Matrix[T]
}

func (pb *packBuf[T]) growA(n int) []T {
	if cap(pb.a) < n {
		pb.a = make([]T, n)
	}
	return pb.a[:n]
}

func (pb *packBuf[T]) growB(n int) []T {
	if cap(pb.b) < n {
		pb.b = make([]T, n)
	}
	return pb.b[:n]
}

var (
	packPool32 = sync.Pool{New: func() any { return new(packBuf[float32]) }}
	packPool64 = sync.Pool{New: func() any { return new(packBuf[float64]) }}
	jobPool32  = sync.Pool{New: func() any { return new(gemmJob[float32]) }}
	jobPool64  = sync.Pool{New: func() any { return new(gemmJob[float64]) }}
)

func getPackBuf[T dense.Float]() *packBuf[T] {
	var z T
	switch any(z).(type) {
	case float32:
		return any(packPool32.Get()).(*packBuf[T])
	case float64:
		return any(packPool64.Get()).(*packBuf[T])
	default:
		return new(packBuf[T])
	}
}

func putPackBuf[T dense.Float](pb *packBuf[T]) {
	var z T
	switch any(z).(type) {
	case float32:
		packPool32.Put(any(pb).(*packBuf[float32]))
	case float64:
		packPool64.Put(any(pb).(*packBuf[float64]))
	}
}

func getGemmJob[T dense.Float]() *gemmJob[T] {
	var z T
	switch any(z).(type) {
	case float32:
		return any(jobPool32.Get()).(*gemmJob[T])
	case float64:
		return any(jobPool64.Get()).(*gemmJob[T])
	default:
		return new(gemmJob[T])
	}
}

func putGemmJob[T dense.Float](j *gemmJob[T]) {
	var z T
	switch any(z).(type) {
	case float32:
		jobPool32.Put(any(j).(*gemmJob[float32]))
	case float64:
		jobPool64.Put(any(j).(*gemmJob[float64]))
	}
}

// packAPanel packs op(A)[i0:i0+ib, p0:p0+kb] into dst as mr-row micro-panels:
// panel p holds rows [p·mr, p·mr+mr) of the block in k-major order, mr
// consecutive elements per k index, so the micro-kernel reads it with unit
// stride. Rows past the block edge are zero-filled, which keeps every panel
// full-height; the padded products are discarded at write-back. Both
// transpose orientations are resolved here, so downstream code is always NN.
func packAPanel[T dense.Float](dst []T, a *dense.Matrix[T], tA Transpose, i0, p0, ib, kb, mr int) {
	panels := (ib + mr - 1) / mr
	if tA == NoTrans {
		for p := 0; p < panels; p++ {
			base := p * mr * kb
			r0 := i0 + p*mr
			rows := min(mr, ib-p*mr)
			for l := 0; l < kb; l++ {
				src := a.Col(p0 + l)
				off := base + l*mr
				copy(dst[off:off+rows], src[r0:r0+rows])
				for r := rows; r < mr; r++ {
					dst[off+r] = 0
				}
			}
		}
		return
	}
	// op(A) = Aᵀ: block row i of op(A) is column i0+i of A, contiguous in k.
	for p := 0; p < panels; p++ {
		base := p * mr * kb
		r0 := i0 + p*mr
		rows := min(mr, ib-p*mr)
		for r := 0; r < rows; r++ {
			src := a.Col(r0 + r)[p0 : p0+kb]
			for l, v := range src {
				dst[base+l*mr+r] = v
			}
		}
		for r := rows; r < mr; r++ {
			for l := 0; l < kb; l++ {
				dst[base+l*mr+r] = 0
			}
		}
	}
}

// packBPanel packs op(B)[p0:p0+kb, j0:j0+jb] into dst as nr-column
// micro-panels: panel q holds columns [q·nr, q·nr+nr) of the block in
// k-major order, nr consecutive elements per k index. Columns past the block
// edge are zero-filled.
func packBPanel[T dense.Float](dst []T, b *dense.Matrix[T], tB Transpose, p0, j0, kb, jb, nr int) {
	panels := (jb + nr - 1) / nr
	if tB == NoTrans {
		for q := 0; q < panels; q++ {
			base := q * nr * kb
			c0 := j0 + q*nr
			cols := min(nr, jb-q*nr)
			for s := 0; s < cols; s++ {
				src := b.Col(c0 + s)[p0 : p0+kb]
				for l, v := range src {
					dst[base+l*nr+s] = v
				}
			}
			for s := cols; s < nr; s++ {
				for l := 0; l < kb; l++ {
					dst[base+l*nr+s] = 0
				}
			}
		}
		return
	}
	// op(B) = Bᵀ: row l of op(B) is column p0+l of B, contiguous in j.
	for q := 0; q < panels; q++ {
		base := q * nr * kb
		c0 := j0 + q*nr
		cols := min(nr, jb-q*nr)
		for l := 0; l < kb; l++ {
			src := b.Col(p0 + l)
			off := base + l*nr
			copy(dst[off:off+cols], src[c0:c0+cols])
			for s := cols; s < nr; s++ {
				dst[off+s] = 0
			}
		}
	}
}
