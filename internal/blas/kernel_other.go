//go:build !amd64

package blas

// Non-amd64 platforms use the generic scalar micro-kernel everywhere.
const useAVXKernels = false

func gemmKernel16x4F32(kb int, ap, bp, out *float32) {
	panic("blas: AVX kernel called on non-amd64 platform")
}

func gemmKernel8x4F64(kb int, ap, bp, out *float64) {
	panic("blas: AVX kernel called on non-amd64 platform")
}
