package blas

import (
	"math"

	"tcqr/internal/dense"
)

// Dot returns xᵀy accumulated in the native precision.
func Dot[T dense.Float](x, y []T) T {
	if len(x) != len(y) {
		panic("blas: dot length mismatch")
	}
	var s T
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Nrm2 returns ‖x‖₂ with scaling against overflow, in the native precision.
func Nrm2[T dense.Float](x []T) T {
	var scale, ssq T = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := v
		if a < 0 {
			a = -a
		}
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * T(math.Sqrt(float64(ssq)))
}

// Asum returns Σ|xᵢ|.
func Asum[T dense.Float](x []T) T {
	var s T
	for _, v := range x {
		if v < 0 {
			s -= v
		} else {
			s += v
		}
	}
	return s
}

// Axpy computes y ← αx + y.
func Axpy[T dense.Float](alpha T, x, y []T) {
	if len(x) != len(y) {
		panic("blas: axpy length mismatch")
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scal computes x ← αx.
func Scal[T dense.Float](alpha T, x []T) {
	for i := range x {
		x[i] *= alpha
	}
}

// Iamax returns the index of the element with the largest magnitude, or -1
// for an empty vector.
func Iamax[T dense.Float](x []T) int {
	best, bi := T(-1), -1
	for i, v := range x {
		if v < 0 {
			v = -v
		}
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}
