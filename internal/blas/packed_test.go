package blas

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"tcqr/internal/dense"
)

// withBlockConfig shrinks the cache-blocking parameters so small test
// problems exercise the full multi-tile, multi-slab control flow of the
// packed kernel, restoring the defaults afterwards.
func withBlockConfig(t *testing.T, mc, kc, nc, minFlops int, fn func()) {
	t.Helper()
	oMC, oKC, oNC, oMin := gemmMC, gemmKC, gemmNC, gemmBlockedMinFlops
	gemmMC, gemmKC, gemmNC, gemmBlockedMinFlops = mc, kc, nc, minFlops
	defer func() {
		gemmMC, gemmKC, gemmNC, gemmBlockedMinFlops = oMC, oKC, oNC, oMin
	}()
	fn()
}

func randMatT[T dense.Float](rng *rand.Rand, rows, cols int) *dense.Matrix[T] {
	m := dense.New[T](rows, cols)
	for i := range m.Data {
		m.Data[i] = T(rng.NormFloat64())
	}
	return m
}

// goldenGemm checks the packed kernel against the retained naive reference
// kernel across all transpose pairs, α/β regimes, and edge-tile shapes.
func goldenGemm[T dense.Float](t *testing.T, tol float64) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ m, n, k int }{
		{4, 4, 4},    // single micro-tile minimum
		{16, 4, 8},   // one AVX f32 micro-panel exactly
		{17, 5, 9},   // every dimension one past a tile edge
		{13, 29, 23}, // odd everything
		{33, 25, 40}, // spans mc/nc/kc below
		{64, 48, 37},
	}
	withBlockConfig(t, 32, 16, 24, 1, func() {
		for _, sh := range shapes {
			for _, tA := range []Transpose{NoTrans, Trans} {
				for _, tB := range []Transpose{NoTrans, Trans} {
					for _, alpha := range []T{0, 1, -1.5} {
						for _, beta := range []T{0, 1, 0.5} {
							var a, b *dense.Matrix[T]
							if tA == NoTrans {
								a = randMatT[T](rng, sh.m, sh.k)
							} else {
								a = randMatT[T](rng, sh.k, sh.m)
							}
							if tB == NoTrans {
								b = randMatT[T](rng, sh.k, sh.n)
							} else {
								b = randMatT[T](rng, sh.n, sh.k)
							}
							c := randMatT[T](rng, sh.m, sh.n)
							want := c.Clone()
							gemmCols(tA, tB, alpha, a, b, beta, want, 0, sh.n, sh.k, sh.m)
							Gemm(tA, tB, alpha, a, b, beta, c)
							for i := range c.Data {
								w := float64(want.Data[i])
								if d := math.Abs(float64(c.Data[i]) - w); d > tol*(1+math.Abs(w)) {
									t.Fatalf("%v/%v m=%d n=%d k=%d α=%v β=%v: elem %d = %v, want %v",
										tA, tB, sh.m, sh.n, sh.k, alpha, beta, i, c.Data[i], want.Data[i])
								}
							}
						}
					}
				}
			}
		}
	})
}

func TestGemmBlockedGoldenFloat64(t *testing.T) { goldenGemm[float64](t, 1e-12) }
func TestGemmBlockedGoldenFloat32(t *testing.T) { goldenGemm[float32](t, 1e-3) }

// TestGemmBlockedStrided drives the packed kernel over views whose stride
// exceeds their row count, for all transpose pairs.
func TestGemmBlockedStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	parent := randMatT[float64](rng, 90, 90)
	withBlockConfig(t, 16, 8, 12, 1, func() {
		for _, tA := range []Transpose{NoTrans, Trans} {
			for _, tB := range []Transpose{NoTrans, Trans} {
				m, n, k := 21, 17, 26
				var a, b *dense.Matrix[float64]
				if tA == NoTrans {
					a = parent.View(2, 3, m, k)
				} else {
					a = parent.View(2, 3, k, m)
				}
				if tB == NoTrans {
					b = parent.View(40, 30, k, n)
				} else {
					b = parent.View(40, 30, n, k)
				}
				cParent := randMatT[float64](rng, 40, 40)
				c := cParent.View(7, 9, m, n)
				want := c.Clone()
				gemmCols(tA, tB, -0.75, a, b, 0.25, want, 0, n, k, m)
				before := cParent.Clone()
				Gemm(tA, tB, -0.75, a, b, 0.25, c)
				for i := 0; i < m; i++ {
					for j := 0; j < n; j++ {
						if d := math.Abs(c.At(i, j) - want.At(i, j)); d > 1e-12*(1+math.Abs(want.At(i, j))) {
							t.Fatalf("%v/%v strided (%d,%d): %v want %v", tA, tB, i, j, c.At(i, j), want.At(i, j))
						}
					}
				}
				for i := 0; i < 40; i++ {
					for j := 0; j < 40; j++ {
						inside := i >= 7 && i < 7+m && j >= 9 && j < 9+n
						if !inside && cParent.At(i, j) != before.At(i, j) {
							t.Fatalf("%v/%v wrote outside view at (%d,%d)", tA, tB, i, j)
						}
					}
				}
			}
		}
	})
}

// TestGemmWorkerCountDeterminism: the blocked kernel must produce identical
// bits regardless of GOMAXPROCS, because tile ownership and k-slab order are
// fixed by the problem shape alone.
func TestGemmWorkerCountDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randMatT[float32](rng, 150, 90)
	b := randMatT[float32](rng, 90, 130)
	c0 := randMatT[float32](rng, 150, 130)
	c1 := c0.Clone()
	withBlockConfig(t, 32, 16, 24, 1, func() {
		old := runtime.GOMAXPROCS(1)
		Gemm(NoTrans, NoTrans, 1.25, a, b, 0.5, c0)
		runtime.GOMAXPROCS(8)
		Gemm(NoTrans, NoTrans, 1.25, a, b, 0.5, c1)
		runtime.GOMAXPROCS(old)
	})
	for i := range c0.Data {
		if c0.Data[i] != c1.Data[i] {
			t.Fatalf("GOMAXPROCS changed result at %d: %v vs %v", i, c0.Data[i], c1.Data[i])
		}
	}
}

// TestGemmHookedCountsExactlyOnce: blocking re-packs each operand panel many
// times, but with count enabled every source element must contribute to the
// totals exactly once. The hook counts occurrences of a sentinel value; zero
// padding must never be counted.
func TestGemmHookedCountsExactlyOnce(t *testing.T) {
	const sentinel = 3
	hook := PackHook[float32]{
		Round: func(panel []float32) {},
		RoundCount: func(panel []float32) (ov, uf int64) {
			for _, v := range panel {
				if v == sentinel {
					ov++
				}
			}
			return ov, 0
		},
	}
	for _, tc := range []struct{ m, n, k int }{
		{50, 70, 45}, // blocked, many tiles and slabs
		{5, 6, 4},    // small path
		{7, 9, 0},    // degenerate: k = 0
	} {
		var aR, aC, bR, bC = tc.m, tc.k, tc.k, tc.n
		a := dense.New[float32](aR, aC)
		b := dense.New[float32](bR, bC)
		for i := range a.Data {
			a.Data[i] = sentinel
		}
		for i := range b.Data {
			b.Data[i] = sentinel
		}
		c := dense.New[float32](tc.m, tc.n)
		var ov int64
		withBlockConfig(t, 16, 8, 12, 1, func() {
			ov, _ = GemmHooked(NoTrans, NoTrans, 1, a, b, 1, c, &hook, &hook, true)
		})
		want := int64(aR*aC + bR*bC)
		if ov != want {
			t.Errorf("m=%d n=%d k=%d: counted %d elements, want %d", tc.m, tc.n, tc.k, ov, want)
		}
	}
}

// nf32 is a named float32 type: it satisfies dense.Float but is deliberately
// invisible to the AVX type switch, so Gemm[nf32] runs the scalar 4×4 kernel.
type nf32 float32

// TestScalarKernelMatchesAVX verifies the documented bit-identity between
// the assembly and pure-Go kernel paths: both accumulate each C element's k
// terms in ascending order with one rounding per multiply and per add, so
// the same float32 inputs must give the same bits.
func TestScalarKernelMatchesAVX(t *testing.T) {
	if !useAVXKernels {
		t.Skip("AVX kernels not in use on this machine")
	}
	rng := rand.New(rand.NewSource(10))
	m, n, k := 61, 43, 57
	a := randMatT[float32](rng, m, k)
	b := randMatT[float32](rng, k, n)
	c := randMatT[float32](rng, m, n)
	an := dense.New[nf32](m, k)
	bn := dense.New[nf32](k, n)
	cn := dense.New[nf32](m, n)
	for i := range a.Data {
		an.Data[i] = nf32(a.Data[i])
	}
	for i := range b.Data {
		bn.Data[i] = nf32(b.Data[i])
	}
	for i := range c.Data {
		cn.Data[i] = nf32(c.Data[i])
	}
	withBlockConfig(t, 32, 16, 24, 1, func() {
		Gemm(NoTrans, NoTrans, 1.5, a, b, 0.5, c)
		Gemm(NoTrans, NoTrans, 1.5, an, bn, 0.5, cn)
	})
	for i := range c.Data {
		if c.Data[i] != float32(cn.Data[i]) {
			t.Fatalf("scalar and AVX kernels disagree at %d: %v vs %v", i, c.Data[i], cn.Data[i])
		}
	}
}

// TestSyrkLargeMatchesGemm exercises the blocked Syrk path (n well past the
// 64-column block size, so off-diagonal rectangles go through the packed
// GEMM kernel) for both triangles and orientations, with nontrivial α/β.
func TestSyrkLargeMatchesGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, k = 150, 70
	for _, uplo := range []Uplo{Lower, Upper} {
		for _, tr := range []Transpose{NoTrans, Trans} {
			var a *dense.M64
			if tr == NoTrans {
				a = randMatT[float64](rng, n, k)
			} else {
				a = randMatT[float64](rng, k, n)
			}
			c := randMatT[float64](rng, n, n)
			before := c.Clone()
			want := c.Clone()
			if tr == NoTrans {
				Gemm(NoTrans, Trans, 0.7, a, a, 0.3, want)
			} else {
				Gemm(Trans, NoTrans, 0.7, a, a, 0.3, want)
			}
			Syrk(uplo, tr, 0.7, a, 0.3, c)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					stored := (uplo == Lower && i >= j) || (uplo == Upper && i <= j)
					if stored {
						if d := math.Abs(c.At(i, j) - want.At(i, j)); d > 1e-10*(1+math.Abs(want.At(i, j))) {
							t.Fatalf("uplo=%v t=%v (%d,%d): %v want %v", uplo, tr, i, j, c.At(i, j), want.At(i, j))
						}
					} else if c.At(i, j) != before.At(i, j) {
						t.Fatalf("uplo=%v t=%v wrote outside the %v triangle at (%d,%d)", uplo, tr, uplo, i, j)
					}
				}
			}
		}
	}
}

// TestTrsmRightLarge exercises the blocked right-side Trsm (n past the 64
// block size, so cross-block updates run through the packed GEMM kernel)
// for every uplo/trans/diag combination, verifying X·op(A) = α·B.
func TestTrsmRightLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const m, n = 40, 150
	const alpha = 0.8
	for _, uplo := range []Uplo{Lower, Upper} {
		for _, tA := range []Transpose{NoTrans, Trans} {
			for _, diag := range []Diag{NonUnit, Unit} {
				a := dense.New[float64](n, n)
				full := dense.New[float64](n, n)
				for j := 0; j < n; j++ {
					for i := 0; i < n; i++ {
						if (uplo == Upper && i < j) || (uplo == Lower && i > j) {
							v := 0.5 * rng.NormFloat64() / float64(n)
							a.Set(i, j, v)
							full.Set(i, j, v)
						}
					}
					if diag == NonUnit {
						a.Set(j, j, 2+rng.Float64())
						full.Set(j, j, a.At(j, j))
					} else {
						a.Set(j, j, rng.NormFloat64()) // must be ignored
						full.Set(j, j, 1)
					}
				}
				b := randMatT[float64](rng, m, n)
				b0 := b.Clone()
				Trsm(Right, uplo, tA, diag, alpha, a, b)
				got := dense.New[float64](m, n)
				Gemm(NoTrans, tA, 1, b, full, 0, got)
				for i := 0; i < m; i++ {
					for j := 0; j < n; j++ {
						want := alpha * b0.At(i, j)
						if d := math.Abs(got.At(i, j) - want); d > 1e-9*(1+math.Abs(want)) {
							t.Fatalf("uplo=%v tA=%v diag=%v (%d,%d): X·op(A)=%v want %v",
								uplo, tA, diag, i, j, got.At(i, j), want)
						}
					}
				}
			}
		}
	}
}
