package blas

import (
	"math/rand"
	"testing"

	"tcqr/internal/dense"
)

func benchM64(m, n int) *dense.M64 {
	a := dense.New[float64](m, n)
	rng := rand.New(rand.NewSource(9))
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	return a
}

// The refinement hot shape: f64 Gemv at 1024x256 (CGLS runs one NoTrans and
// one Trans pass per iteration at exactly this shape).
func BenchmarkGemv64NoTrans1024x256(b *testing.B) {
	a := benchM64(1024, 256)
	x := make([]float64, 256)
	y := make([]float64, 1024)
	for i := range x {
		x[i] = 1
	}
	b.SetBytes(1024 * 256 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemv(NoTrans, 1, a, x, 0, y)
	}
}

func BenchmarkGemv64Trans1024x256(b *testing.B) {
	a := benchM64(1024, 256)
	x := make([]float64, 1024)
	y := make([]float64, 256)
	for i := range x {
		x[i] = 1
	}
	b.SetBytes(1024 * 256 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemv(Trans, 1, a, x, 0, y)
	}
}
