package blas

import (
	"fmt"

	"tcqr/internal/dense"
)

// Trmm computes the triangular matrix-matrix product in place:
// B ← α·op(A)·B (side == Left) or B ← α·B·op(A) (side == Right), where A
// is triangular. It is the proper kernel for the T·W step of the compact
// WY update (house.Larfb) and for assembling R products.
func Trmm[T dense.Float](side Side, uplo Uplo, tA Transpose, diag Diag, alpha T, a *dense.Matrix[T], b *dense.Matrix[T]) {
	n := a.Rows
	if a.Cols != n {
		panic("blas: trmm requires a square triangular factor")
	}
	if side == Left && b.Rows != n {
		panic(fmt.Sprintf("blas: trmm left dimension mismatch A=%d B rows=%d", n, b.Rows))
	}
	if side == Right && b.Cols != n {
		panic(fmt.Sprintf("blas: trmm right dimension mismatch A=%d B cols=%d", n, b.Cols))
	}
	if side == Left {
		parallelRange(b.Cols, 4, func(j0, j1 int) {
			for j := j0; j < j1; j++ {
				col := b.Col(j)
				Trmv(uplo, tA, diag, a, col)
				if alpha != 1 {
					Scal(alpha, col)
				}
			}
		})
		return
	}
	// Right side: column j of the result mixes columns of B according to
	// op(A)'s column j. Process in the order that preserves unread inputs.
	coef := func(l, j int) T {
		if tA == NoTrans {
			return a.At(l, j)
		}
		return a.At(j, l)
	}
	inTri := func(l, j int) bool {
		if tA == NoTrans {
			return (uplo == Upper && l <= j) || (uplo == Lower && l >= j)
		}
		return (uplo == Upper && j <= l) || (uplo == Lower && j >= l)
	}
	// Result column j depends on B columns l with coefficient op(A)[l, j].
	// When op(A) acts upper (dependencies l <= j), sweep j descending so
	// B[:, l<j] are still original; lower acts ascending.
	opUpper := (uplo == Upper) == (tA == NoTrans)
	sweep := func(j int) {
		bj := b.Col(j)
		diagCoef := coef(j, j)
		if diag == Unit {
			diagCoef = 1
		}
		Scal(alpha*diagCoef, bj)
		for l := 0; l < n; l++ {
			if l == j || !inTri(l, j) {
				continue
			}
			Axpy(alpha*coef(l, j), b.Col(l), bj)
		}
	}
	if opUpper {
		for j := n - 1; j >= 0; j-- {
			sweep(j)
		}
	} else {
		for j := 0; j < n; j++ {
			sweep(j)
		}
	}
}
