//go:build amd64

#include "textflag.h"

// func cpuHasAVX() bool
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	// Need OSXSAVE (ECX bit 27) and AVX (ECX bit 28).
	ANDL $0x18000000, CX
	CMPL CX, $0x18000000
	JNE  noavx
	// XCR0 bits 1 and 2: OS saves XMM and YMM state.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET

noavx:
	MOVB $0, ret+0(FP)
	RET

// func gemmKernel16x4F32(kb int, ap, bp, out *float32)
//
// ap: kb quads of 16 floats (one micro-panel column per k index)
// bp: kb quads of 4 floats
// out: 16x4 column-major accumulator block
TEXT ·gemmKernel16x4F32(SB), NOSPLIT, $0-32
	MOVQ   kb+0(FP), CX
	MOVQ   ap+8(FP), SI
	MOVQ   bp+16(FP), DI
	MOVQ   out+24(FP), DX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	TESTQ  CX, CX
	JZ     f32done

f32loop:
	VMOVUPS      (SI), Y8
	VMOVUPS      32(SI), Y9
	VBROADCASTSS (DI), Y10
	VMULPS       Y10, Y8, Y11
	VADDPS       Y11, Y0, Y0
	VMULPS       Y10, Y9, Y12
	VADDPS       Y12, Y1, Y1
	VBROADCASTSS 4(DI), Y10
	VMULPS       Y10, Y8, Y11
	VADDPS       Y11, Y2, Y2
	VMULPS       Y10, Y9, Y12
	VADDPS       Y12, Y3, Y3
	VBROADCASTSS 8(DI), Y10
	VMULPS       Y10, Y8, Y11
	VADDPS       Y11, Y4, Y4
	VMULPS       Y10, Y9, Y12
	VADDPS       Y12, Y5, Y5
	VBROADCASTSS 12(DI), Y10
	VMULPS       Y10, Y8, Y11
	VADDPS       Y11, Y6, Y6
	VMULPS       Y10, Y9, Y12
	VADDPS       Y12, Y7, Y7
	ADDQ         $64, SI
	ADDQ         $16, DI
	DECQ         CX
	JNZ          f32loop

f32done:
	VMOVUPS    Y0, (DX)
	VMOVUPS    Y1, 32(DX)
	VMOVUPS    Y2, 64(DX)
	VMOVUPS    Y3, 96(DX)
	VMOVUPS    Y4, 128(DX)
	VMOVUPS    Y5, 160(DX)
	VMOVUPS    Y6, 192(DX)
	VMOVUPS    Y7, 224(DX)
	VZEROUPPER
	RET

// func gemmKernel8x4F64(kb int, ap, bp, out *float64)
//
// ap: kb quads of 8 doubles; bp: kb quads of 4 doubles; out: 8x4
// column-major accumulator block.
TEXT ·gemmKernel8x4F64(SB), NOSPLIT, $0-32
	MOVQ   kb+0(FP), CX
	MOVQ   ap+8(FP), SI
	MOVQ   bp+16(FP), DI
	MOVQ   out+24(FP), DX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	TESTQ  CX, CX
	JZ     f64done

f64loop:
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (DI), Y10
	VMULPD       Y10, Y8, Y11
	VADDPD       Y11, Y0, Y0
	VMULPD       Y10, Y9, Y12
	VADDPD       Y12, Y1, Y1
	VBROADCASTSD 8(DI), Y10
	VMULPD       Y10, Y8, Y11
	VADDPD       Y11, Y2, Y2
	VMULPD       Y10, Y9, Y12
	VADDPD       Y12, Y3, Y3
	VBROADCASTSD 16(DI), Y10
	VMULPD       Y10, Y8, Y11
	VADDPD       Y11, Y4, Y4
	VMULPD       Y10, Y9, Y12
	VADDPD       Y12, Y5, Y5
	VBROADCASTSD 24(DI), Y10
	VMULPD       Y10, Y8, Y11
	VADDPD       Y11, Y6, Y6
	VMULPD       Y10, Y9, Y12
	VADDPD       Y12, Y7, Y7
	ADDQ         $64, SI
	ADDQ         $32, DI
	DECQ         CX
	JNZ          f64loop

f64done:
	VMOVUPD    Y0, (DX)
	VMOVUPD    Y1, 32(DX)
	VMOVUPD    Y2, 64(DX)
	VMOVUPD    Y3, 96(DX)
	VMOVUPD    Y4, 128(DX)
	VMOVUPD    Y5, 160(DX)
	VMOVUPD    Y6, 192(DX)
	VMOVUPD    Y7, 224(DX)
	VZEROUPPER
	RET
