package blas

import (
	"math"
	"math/rand"
	"testing"

	"tcqr/internal/dense"
)

// FuzzGemmPackedVsReference drives the packed cache-blocked GEMM against
// the retained naive reference kernel over fuzzer-chosen shapes, transpose
// pairs, and α/β, with the blocking parameters shrunk so even small shapes
// cross tile and slab boundaries. Scalars are quantized from int8 so both
// kernels stay in the finite range where a relative comparison is
// meaningful.
func FuzzGemmPackedVsReference(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(6), uint8(7), false, false, int8(16), int8(8))
	f.Add(int64(2), uint8(16), uint8(4), uint8(8), true, false, int8(-24), int8(0))
	f.Add(int64(3), uint8(17), uint8(5), uint8(9), false, true, int8(1), int8(16))
	f.Add(int64(4), uint8(33), uint8(25), uint8(40), true, true, int8(-128), int8(127))
	f.Add(int64(5), uint8(7), uint8(9), uint8(0), false, false, int8(16), int8(16)) // k = 0
	f.Fuzz(func(t *testing.T, seed int64, mr, nr, kr uint8, transA, transB bool, alphaQ, betaQ int8) {
		m := 1 + int(mr)%48
		n := 1 + int(nr)%48
		k := int(kr) % 48 // k = 0 is a legal degenerate update C = β·C
		alpha := float32(alphaQ) / 16
		beta := float32(betaQ) / 16
		tA, tB := NoTrans, NoTrans
		if transA {
			tA = Trans
		}
		if transB {
			tB = Trans
		}
		rng := rand.New(rand.NewSource(seed))
		var a, b *dense.M32
		if tA == NoTrans {
			a = randMatT[float32](rng, m, k)
		} else {
			a = randMatT[float32](rng, k, m)
		}
		if tB == NoTrans {
			b = randMatT[float32](rng, k, n)
		} else {
			b = randMatT[float32](rng, n, k)
		}
		c := randMatT[float32](rng, m, n)
		want := c.Clone()
		if k == 0 {
			// The raw reference kernel is never called with k = 0 (Gemm's
			// degenerate branch short-circuits first); the expected result
			// is just the β scaling.
			scaleCols(want, beta, 0, n)
		} else {
			gemmCols(tA, tB, alpha, a, b, beta, want, 0, n, k, m)
		}
		withBlockConfig(t, 16, 8, 12, 1, func() {
			Gemm(tA, tB, alpha, a, b, beta, c)
		})
		for i := range c.Data {
			w := float64(want.Data[i])
			if d := math.Abs(float64(c.Data[i]) - w); d > 1e-3*(1+math.Abs(w)) {
				t.Fatalf("%v/%v m=%d n=%d k=%d α=%v β=%v: elem %d = %v, want %v",
					tA, tB, m, n, k, alpha, beta, i, c.Data[i], want.Data[i])
			}
		}
	})
}
