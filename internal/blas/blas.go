// Package blas implements the dense linear-algebra kernels (BLAS levels 1-3)
// that the rest of the repository builds on, generically over float32 and
// float64. Instantiated at float32 it plays the role of cuBLAS SGEMM/STRSM
// etc. in the paper's experiments; at float64 it is the DGEMM substrate for
// the double-precision baselines.
//
// All matrix arguments use the column-major dense.Matrix representation.
// Accumulation happens in the native precision of the instantiation, exactly
// like the corresponding vendor BLAS routine (SGEMM accumulates in float32),
// which matters for the mixed-precision error behaviour studied in the
// paper. Level-3 routines parallelize across goroutines; partitioning is
// fixed by output ownership, so results are deterministic and race-free.
package blas

import (
	"fmt"

	"tcqr/internal/dense"
)

// Transpose selects op(X) for level-2/3 routines.
type Transpose int

const (
	// NoTrans selects op(X) = X.
	NoTrans Transpose = iota
	// Trans selects op(X) = Xᵀ.
	Trans
)

// Side selects the side a triangular factor is applied from.
type Side int

const (
	// Left solves op(A)·X = B.
	Left Side = iota
	// Right solves X·op(A) = B.
	Right
)

// Uplo selects the stored triangle of a triangular or symmetric matrix.
type Uplo int

const (
	// Upper uses the upper triangle.
	Upper Uplo = iota
	// Lower uses the lower triangle.
	Lower
)

// Diag states whether a triangular matrix has a unit diagonal.
type Diag int

const (
	// NonUnit reads the diagonal from storage.
	NonUnit Diag = iota
	// Unit assumes an implicit unit diagonal.
	Unit
)

func opShape[T dense.Float](t Transpose, m *dense.Matrix[T]) (r, c int) {
	if t == NoTrans {
		return m.Rows, m.Cols
	}
	return m.Cols, m.Rows
}

func checkGemm[T dense.Float](tA, tB Transpose, a, b, c *dense.Matrix[T]) (m, n, k int) {
	am, ak := opShape(tA, a)
	bk, bn := opShape(tB, b)
	if ak != bk {
		panic(fmt.Sprintf("blas: gemm inner dimension mismatch %d vs %d", ak, bk))
	}
	if c.Rows != am || c.Cols != bn {
		panic(fmt.Sprintf("blas: gemm output %dx%d, want %dx%d", c.Rows, c.Cols, am, bn))
	}
	return am, bn, ak
}
