package blas

import (
	"math"
	"math/rand"
	"testing"

	"tcqr/internal/dense"
)

// naiveGemm is the float64 reference implementation every kernel is checked
// against.
func naiveGemm(tA, tB Transpose, alpha float64, a, b *dense.M64, beta float64, c *dense.M64) *dense.M64 {
	opA := a
	if tA == Trans {
		opA = a.Transpose()
	}
	opB := b
	if tB == Trans {
		opB = b.Transpose()
	}
	out := dense.New[float64](c.Rows, c.Cols)
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			var s float64
			for l := 0; l < opA.Cols; l++ {
				s += opA.At(i, l) * opB.At(l, j)
			}
			out.Set(i, j, alpha*s+beta*c.At(i, j))
		}
	}
	return out
}

func randMat(rng *rand.Rand, r, c int) *dense.M64 {
	m := dense.New[float64](r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func maxDiff(a, b *dense.M64) float64 {
	var d float64
	for i := range a.Data {
		if x := math.Abs(a.Data[i] - b.Data[i]); x > d {
			d = x
		}
	}
	return d
}

func TestGemmAllTransposes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := []struct{ m, n, k int }{{5, 7, 3}, {16, 16, 16}, {33, 9, 21}, {1, 5, 4}, {8, 1, 8}, {64, 48, 80}}
	for _, tA := range []Transpose{NoTrans, Trans} {
		for _, tB := range []Transpose{NoTrans, Trans} {
			for _, s := range shapes {
				var a, b *dense.M64
				if tA == NoTrans {
					a = randMat(rng, s.m, s.k)
				} else {
					a = randMat(rng, s.k, s.m)
				}
				if tB == NoTrans {
					b = randMat(rng, s.k, s.n)
				} else {
					b = randMat(rng, s.n, s.k)
				}
				c := randMat(rng, s.m, s.n)
				want := naiveGemm(tA, tB, 1.3, a, b, -0.7, c)
				Gemm(tA, tB, 1.3, a, b, -0.7, c)
				if d := maxDiff(c, want); d > 1e-10*float64(s.k) {
					t.Errorf("gemm tA=%v tB=%v %+v: max diff %g", tA, tB, s, d)
				}
			}
		}
	}
}

func TestGemmSpecialCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randMat(rng, 10, 6), randMat(rng, 6, 8)
	c := randMat(rng, 10, 8)
	orig := c.Clone()

	// alpha = 0, beta = 1: C unchanged.
	Gemm(NoTrans, NoTrans, 0, a, b, 1, c)
	if !dense.Equal(c, orig) {
		t.Error("alpha=0 beta=1 modified C")
	}
	// alpha = 0, beta = 0: C zeroed even if it contained NaN.
	c.Set(0, 0, math.NaN())
	Gemm(NoTrans, NoTrans, 0, a, b, 0, c)
	for _, v := range c.Data {
		if v != 0 {
			t.Fatal("alpha=0 beta=0 did not zero C")
		}
	}
	// beta = 0 must overwrite, not accumulate.
	c = orig.Clone()
	want := naiveGemm(NoTrans, NoTrans, 2, a, b, 0, c)
	Gemm(NoTrans, NoTrans, 2, a, b, 0, c)
	if d := maxDiff(c, want); d > 1e-10 {
		t.Errorf("beta=0 diff %g", d)
	}
}

func TestGemmShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched inner dimension must panic")
		}
	}()
	Gemm(NoTrans, NoTrans, 1.0, dense.New[float64](2, 3), dense.New[float64](4, 2), 0, dense.New[float64](2, 2))
}

func TestGemv(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 7, 5)
	x := make([]float64, 5)
	y := make([]float64, 7)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	// Reference via naiveGemm with vectors as 1-column matrices.
	xm := dense.NewFromColMajor(5, 1, x)
	ym := dense.NewFromColMajor(7, 1, append([]float64(nil), y...))
	want := naiveGemm(NoTrans, NoTrans, 2, a, xm, 0.5, ym)
	Gemv(NoTrans, 2, a, x, 0.5, y)
	for i := range y {
		if math.Abs(y[i]-want.At(i, 0)) > 1e-12 {
			t.Fatalf("gemv N: y[%d] = %v want %v", i, y[i], want.At(i, 0))
		}
	}
	// Transposed.
	yt := make([]float64, 5)
	Gemv(Trans, 1, a, y, 0, yt)
	for j := 0; j < 5; j++ {
		var s float64
		for i := 0; i < 7; i++ {
			s += a.At(i, j) * y[i]
		}
		if math.Abs(yt[j]-s) > 1e-12 {
			t.Fatalf("gemv T: y[%d] = %v want %v", j, yt[j], s)
		}
	}
}

func TestGer(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMat(rng, 4, 3)
	orig := a.Clone()
	x := []float64{1, 2, 3, 4}
	y := []float64{-1, 0.5, 2}
	Ger(1.5, x, y, a)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			want := orig.At(i, j) + 1.5*x[i]*y[j]
			if math.Abs(a.At(i, j)-want) > 1e-12 {
				t.Fatalf("ger(%d,%d) = %v want %v", i, j, a.At(i, j), want)
			}
		}
	}
}

func triangular(rng *rand.Rand, n int, uplo Uplo, diag Diag) *dense.M64 {
	a := dense.New[float64](n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			inTri := (uplo == Upper && i <= j) || (uplo == Lower && i >= j)
			if inTri {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		// Keep well-conditioned for the solve tests.
		a.Set(j, j, 2+rng.Float64())
	}
	if diag == Unit {
		for j := 0; j < n; j++ {
			a.Set(j, j, rng.NormFloat64()) // stored diagonal must be ignored
		}
	}
	return a
}

func applyTriangular(uplo Uplo, tA Transpose, diag Diag, a *dense.M64, x []float64) []float64 {
	n := a.Rows
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ai, aj := i, j
			if tA == Trans {
				ai, aj = j, i
			}
			inTri := (uplo == Upper && ai <= aj) || (uplo == Lower && ai >= aj)
			if !inTri {
				continue
			}
			v := a.At(ai, aj)
			if ai == aj && diag == Unit {
				v = 1
			}
			y[i] += v * x[j]
		}
	}
	return y
}

func TestTrsvAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, uplo := range []Uplo{Upper, Lower} {
		for _, tA := range []Transpose{NoTrans, Trans} {
			for _, diag := range []Diag{NonUnit, Unit} {
				a := triangular(rng, 9, uplo, diag)
				x := make([]float64, 9)
				for i := range x {
					x[i] = rng.NormFloat64()
				}
				b := applyTriangular(uplo, tA, diag, a, x)
				Trsv(uplo, tA, diag, a, b)
				for i := range x {
					if math.Abs(b[i]-x[i]) > 1e-9 {
						t.Fatalf("trsv uplo=%v tA=%v diag=%v: x[%d] = %v want %v", uplo, tA, diag, i, b[i], x[i])
					}
				}
			}
		}
	}
}

func TestTrmvAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, uplo := range []Uplo{Upper, Lower} {
		for _, tA := range []Transpose{NoTrans, Trans} {
			for _, diag := range []Diag{NonUnit, Unit} {
				a := triangular(rng, 8, uplo, diag)
				x := make([]float64, 8)
				for i := range x {
					x[i] = rng.NormFloat64()
				}
				want := applyTriangular(uplo, tA, diag, a, x)
				got := append([]float64(nil), x...)
				Trmv(uplo, tA, diag, a, got)
				for i := range want {
					if math.Abs(got[i]-want[i]) > 1e-10 {
						t.Fatalf("trmv uplo=%v tA=%v diag=%v: [%d] = %v want %v", uplo, tA, diag, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestTrsmLeftRight(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			for _, tA := range []Transpose{NoTrans, Trans} {
				n := 6
				var b *dense.M64
				if side == Left {
					b = randMat(rng, n, 4)
				} else {
					b = randMat(rng, 4, n)
				}
				a := triangular(rng, n, uplo, NonUnit)
				x := b.Clone()
				Trsm(side, uplo, tA, NonUnit, 2.0, a, x)
				// Verify op(A)·X = 2B (left) or X·op(A) = 2B (right).
				full := dense.New[float64](n, n)
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						if (uplo == Upper && i <= j) || (uplo == Lower && i >= j) {
							full.Set(i, j, a.At(i, j))
						}
					}
				}
				var got *dense.M64
				if side == Left {
					got = dense.New[float64](b.Rows, b.Cols)
					Gemm(tA, NoTrans, 1, full, x, 0, got)
				} else {
					got = dense.New[float64](b.Rows, b.Cols)
					Gemm(NoTrans, tA, 1, x, full, 0, got)
				}
				scaled := b.Clone()
				scaled.Scale(2)
				if d := maxDiff(got, scaled); d > 1e-8 {
					t.Errorf("trsm side=%v uplo=%v tA=%v: residual %g", side, uplo, tA, d)
				}
			}
		}
	}
}

func TestSyrk(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randMat(rng, 7, 4)
	for _, tr := range []Transpose{NoTrans, Trans} {
		n, _ := opShape(tr, a)
		c := dense.New[float64](n, n)
		Syrk(Upper, tr, 1, a, 0, c)
		FillSymmetric(Upper, c)
		want := dense.New[float64](n, n)
		if tr == Trans {
			Gemm(Trans, NoTrans, 1, a, a, 0, want)
		} else {
			Gemm(NoTrans, Trans, 1, a, a, 0, want)
		}
		if d := maxDiff(c, want); d > 1e-10 {
			t.Errorf("syrk %v: diff %g", tr, d)
		}
	}
}

func TestGemmBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const nb = 12
	as := make([]*dense.M64, nb)
	bs := make([]*dense.M64, nb)
	cs := make([]*dense.M64, nb)
	wants := make([]*dense.M64, nb)
	for i := range as {
		as[i] = randMat(rng, 5+i, 3)
		bs[i] = randMat(rng, 3, 4)
		cs[i] = dense.New[float64](5+i, 4)
		wants[i] = naiveGemm(NoTrans, NoTrans, 1, as[i], bs[i], 0, cs[i])
	}
	GemmBatch(NoTrans, NoTrans, 1, as, bs, 0, cs)
	for i := range cs {
		if d := maxDiff(cs[i], wants[i]); d > 1e-10 {
			t.Errorf("batch %d: diff %g", i, d)
		}
	}
}

func TestLevel1(t *testing.T) {
	x := []float64{3, -4, 0}
	y := []float64{1, 2, 3}
	if got := Dot(x, y); got != -5 {
		t.Errorf("Dot = %v", got)
	}
	if got := Nrm2(x); math.Abs(got-5) > 1e-14 {
		t.Errorf("Nrm2 = %v", got)
	}
	if got := Asum(x); got != 7 {
		t.Errorf("Asum = %v", got)
	}
	if got := Iamax(x); got != 1 {
		t.Errorf("Iamax = %v", got)
	}
	if got := Iamax([]float64{}); got != -1 {
		t.Errorf("Iamax(empty) = %v", got)
	}
	yc := append([]float64(nil), y...)
	Axpy(2, x, yc)
	if yc[0] != 7 || yc[1] != -6 || yc[2] != 3 {
		t.Errorf("Axpy = %v", yc)
	}
	Scal(0.5, yc)
	if yc[0] != 3.5 {
		t.Errorf("Scal = %v", yc)
	}
}

func TestNrm2OverflowSafety(t *testing.T) {
	x := []float32{1e30, 1e30}
	want := float64(1e30) * math.Sqrt2
	if got := float64(Nrm2(x)); math.Abs(got-want)/want > 1e-6 {
		t.Errorf("Nrm2 overflow: %g want %g", got, want)
	}
}

func TestTrmmAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			for _, tA := range []Transpose{NoTrans, Trans} {
				for _, diag := range []Diag{NonUnit, Unit} {
					n := 7
					a := triangular(rng, n, uplo, diag)
					var b *dense.M64
					if side == Left {
						b = randMat(rng, n, 5)
					} else {
						b = randMat(rng, 5, n)
					}
					got := b.Clone()
					Trmm(side, uplo, tA, diag, 1.5, a, got)
					// Reference through a dense copy of the triangle.
					full := dense.New[float64](n, n)
					for i := 0; i < n; i++ {
						for j := 0; j < n; j++ {
							in := (uplo == Upper && i <= j) || (uplo == Lower && i >= j)
							if in {
								full.Set(i, j, a.At(i, j))
							}
							if i == j && diag == Unit {
								full.Set(i, j, 1)
							}
						}
					}
					want := dense.New[float64](b.Rows, b.Cols)
					if side == Left {
						Gemm(tA, NoTrans, 1.5, full, b, 0, want)
					} else {
						Gemm(NoTrans, tA, 1.5, b, full, 0, want)
					}
					if d := maxDiff(got, want); d > 1e-10 {
						t.Errorf("trmm side=%v uplo=%v tA=%v diag=%v: diff %g", side, uplo, tA, diag, d)
					}
				}
			}
		}
	}
}
