package blas

import (
	"sync"

	"tcqr/internal/dense"
)

// GemmBatch performs the same GEMM operation on a batch of independent
// triples, mirroring cuBLAS gemmBatched, which the CAQR panel uses to apply
// the tree of small Q factors (step 4 of Eq. 8 in the paper). Each problem
// runs on its own goroutine, throttled to the available parallelism.
func GemmBatch[T dense.Float](tA, tB Transpose, alpha T, a, b []*dense.Matrix[T], beta T, c []*dense.Matrix[T]) {
	if len(a) != len(b) || len(a) != len(c) {
		panic("blas: GemmBatch batch size mismatch")
	}
	sem := make(chan struct{}, maxWorkers())
	var wg sync.WaitGroup
	for i := range a {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			m, n, k := checkGemm(tA, tB, a[i], b[i], c[i])
			if m == 0 || n == 0 {
				return
			}
			if alpha == 0 || k == 0 {
				scaleCols(c[i], beta, 0, n)
				return
			}
			gemmCols(tA, tB, alpha, a[i], b[i], beta, c[i], 0, n, k, m)
		}(i)
	}
	wg.Wait()
}
