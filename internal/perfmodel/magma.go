package perfmodel

// Hybrid CPU/GPU pipeline model for MAGMA-style blocked Householder QR,
// reproducing Table 2 of the paper. MAGMA factors each panel on the CPU
// while the GPU applies the previous block reflector to the trailing
// matrix; with lookahead, each step costs max(panel on CPU, update on GPU).
// This structure is exactly why TensorCore barely helps MAGMA (the paper's
// first negative result): once the GPU update is faster than the CPU panel,
// further GEMM speedup is hidden behind the panel.
//
// Calibration (documented in DESIGN.md): the CPU panel runs at a constant
// ~33 GFLOPS (MKL on the paper's Threadripper 2970WX, memory-bound panel);
// the trailing update is a rank-B application across a very wide trailing
// matrix, which ramps toward the device GEMM peak as B grows with a
// half-saturation constant fitted to Table 2 (B½ = 80 for FP32 SGEMM,
// B½ = 800 for TC-GEMM — tensor cores need far bigger inner dimensions to
// reach their peak, consistent with Table 3).

const (
	cpuPanelGFLOPS = 33.0
	sgemmWidePeak  = 13.5
	tcgemmWidePeak = 93.0
	sgemmHalfB     = 80.0
	tcgemmHalfB    = 800.0
)

// updateRate models the GPU trailing-update throughput (TFLOPS) for a
// rank-B larfb across a wide trailing matrix.
func updateRate(b float64, tc bool) float64 {
	if tc {
		return tcgemmWidePeak * b / (b + tcgemmHalfB)
	}
	return sgemmWidePeak * b / (b + sgemmHalfB)
}

// MagmaHybridQRTime returns the modelled wall time of MAGMA's hybrid
// blocked Householder QR on an m×n matrix with block size b, with or
// without TensorCore in the trailing update.
func MagmaHybridQRTime(m, n, b float64, tc bool) float64 {
	var total float64
	for j := 0.0; j < n; j += b {
		jb := b
		if n-j < jb {
			jb = n - j
		}
		rows := m - j
		cols := n - j - jb
		panelFlops := 2 * rows * jb * jb
		panelTime := panelFlops / (cpuPanelGFLOPS * 1e9)
		updateFlops := 4 * rows * cols * jb
		updateTime := updateFlops / (updateRate(jb, tc) * 1e12)
		// Lookahead overlaps panel i+1 with update i.
		if panelTime > updateTime {
			total += panelTime
		} else {
			total += updateTime
		}
	}
	return total
}

// MagmaHybridQRTFLOPS reports the pipeline model as a throughput over the
// Householder flop count, as Table 2 does.
func MagmaHybridQRTFLOPS(m, n, b float64, tc bool) float64 {
	return HouseQRFlops(m, n) / MagmaHybridQRTime(m, n, b, tc) / 1e12
}
