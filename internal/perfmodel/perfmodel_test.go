package perfmodel

import (
	"math"
	"testing"
)

// within reports x ∈ [lo, hi].
func within(t *testing.T, name string, x, lo, hi float64) {
	t.Helper()
	if x < lo || x > hi {
		t.Errorf("%s = %g, want in [%g, %g]", name, x, lo, hi)
	}
}

func TestCurveInterpolation(t *testing.T) {
	// Exact at calibration nodes.
	for i, k := range Table3K {
		if got := TCGemmTN.At(k); got != TCGemmTN.TFLOPS[i] {
			t.Errorf("TCGemmTN.At(%g) = %g, want node %g", k, got, TCGemmTN.TFLOPS[i])
		}
	}
	// Clamped outside.
	if TCGemmTN.At(1) != TCGemmTN.TFLOPS[0] {
		t.Error("left clamp failed")
	}
	if TCGemmTN.At(1e9) != TCGemmTN.TFLOPS[len(TCGemmTN.TFLOPS)-1] {
		t.Error("right clamp failed")
	}
	// Between ascending nodes, interpolation lies between the endpoints.
	mid := SGeqrf.At(3000)
	if mid <= SGeqrf.At(2048) || mid >= SGeqrf.At(4096) {
		t.Errorf("interpolation at 3000 = %g outside (%g, %g)", mid, SGeqrf.At(2048), SGeqrf.At(4096))
	}
	// Empty curve.
	if (Curve{}).At(10) != 0 {
		t.Error("empty curve should return 0")
	}
}

// TestFigure1Claims checks the two conclusions the paper draws from
// equation (4): enabling TensorCore in the trailing update of tiled
// Householder QR buys only ~30%, and even then the estimate does not
// meaningfully beat cuSOLVER SGEQRF (>6 TFLOPS at this size).
func TestFigure1Claims(t *testing.T) {
	const n = 16384
	bestTC, bestPlain := 0.0, 0.0
	for _, b := range []float64{128, 256, 512, 1024, 2048} {
		tc := HouseholderEstimate(n, b, true)
		plain := HouseholderEstimate(n, b, false)
		if tc < plain {
			t.Errorf("B=%g: TC estimate %g below plain %g", b, tc, plain)
		}
		gain := tc / plain
		within(t, "TC gain", gain, 1.05, 1.60)
		if tc > bestTC {
			bestTC = tc
		}
		if plain > bestPlain {
			bestPlain = plain
		}
	}
	cusolver := SGeqrf.At(n) // 6.67
	within(t, "best TC blocked-Householder vs cuSOLVER", bestTC/cusolver, 0.7, 1.15)
}

// TestFigure2Claims checks equation (7): with the cuSOLVER panel, RGSQRF's
// estimated *time* beats SGEQRF by about 37% once its extra flops are
// accounted for (the paper's exact phrasing), and larger cutoffs are worse.
func TestFigure2Claims(t *testing.T) {
	const m, n = 32768, 16384
	est := RGSQRFEstimate(m, n, 128, true, SGeqrfPanelRate)
	within(t, "Eq7 TFLOPS (SGEQRF panel, B=128)", est, 9.5, 12.5)
	// Time-based advantage: RGSQRF does 2mn², SGEQRF 2mn²−2n³/3.
	tRGS := RGSFlops(m, n) / est
	tHouse := HouseQRFlops(m, n) / SGeqrf.At(n)
	within(t, "Eq7 time advantage over SGEQRF", tHouse/tRGS, 1.25, 1.50)
	// Cutoff sweep: the paper's point is that RGSQRF achieves (near-)
	// optimal performance already at the small cutoff B=128 — important
	// for footprint — rather than needing the huge blocks tiled QR wants.
	best := est
	for _, b := range []float64{256, 512, 1024, 2048} {
		if e := RGSQRFEstimate(m, n, b, true, SGeqrfPanelRate); e > best {
			best = e
		}
	}
	within(t, "B=128 estimate vs best cutoff", est/best, 0.90, 1.0)
	// Without TensorCore the recursion loses badly (Figure 2 right bars).
	plain := RGSQRFEstimate(m, n, 128, false, SGeqrfPanelRate)
	if plain > 0.8*est {
		t.Errorf("FP32 estimate %g too close to TC estimate %g", plain, est)
	}
}

// TestSection313Claims checks the CAQR panel calibration: 3.3× the
// cuSOLVER panel at 32768×128, and the resulting whole-matrix estimate of
// ~27 TFLOPS that the paper validates against its measured 26.2.
func TestSection313Claims(t *testing.T) {
	within(t, "CAQR panel speedup at width 128", CAQRPanel(128)/SGeqrf.At(128), 3.2, 3.4)
	est := RGSQRFEstimate(32768, 16384, 128, true, CAQRPanelRate)
	within(t, "Eq7 with CAQR panel", est, 25, 29)
	// The full pipeline model lands on the paper's measured 26.2 TFLOPS.
	tf := RGSQRFTFLOPS(32768, 16384, PaperConfig)
	within(t, "pipeline TFLOPS at 32768x16384", tf, 24.5, 28.5)
}

// TestFigure6Claims checks the speedup-over-cuSOLVER range (3.0×–14.6×)
// and the 36.6 TFLOPS peak at 32768×32768.
func TestFigure6Claims(t *testing.T) {
	shapes := []struct{ m, n float64 }{
		{32768, 2048}, {32768, 4096}, {32768, 8192}, {32768, 16384}, {32768, 32768},
		{16384, 2048}, {16384, 4096}, {16384, 8192}, {16384, 16384},
	}
	minSp, maxSp := math.Inf(1), 0.0
	for _, s := range shapes {
		rgsTF := RGSQRFTFLOPS(s.m, s.n, PaperConfig)
		speedup := rgsTF / SGeqrfRate(s.n)
		if speedup < minSp {
			minSp = speedup
		}
		if speedup > maxSp {
			maxSp = speedup
		}
		// CAQR panel beats the SGEQRF panel everywhere (left vs right bars).
		sgeqrfPanelCfg := QRConfig{Panel: PanelSGEQRF, TCUpdate: true}
		if RGSQRFTime(s.m, s.n, PaperConfig) > RGSQRFTime(s.m, s.n, sgeqrfPanelCfg) {
			t.Errorf("%gx%g: CAQR panel slower than SGEQRF panel", s.m, s.n)
		}
	}
	within(t, "min Figure 6 speedup", minSp, 2.5, 4.5)   // paper: 3.0×
	within(t, "max Figure 6 speedup", maxSp, 10.0, 18.0) // paper: 14.6×
	peak := RGSQRFTFLOPS(32768, 32768, PaperConfig)
	within(t, "peak TFLOPS at 32768x32768", peak, 31, 45) // paper: 36.6
}

// TestFigure7Claims checks the engine ablation ordering: TC in the panel
// buys almost nothing; TC in the update is critical; without TC, RGSQRF can
// fall below cuSOLVER for squarish matrices.
func TestFigure7Claims(t *testing.T) {
	const m, n = 32768, 16384
	onOn := RGSQRFTime(m, n, QRConfig{Panel: PanelCAQR, TCUpdate: true, TCPanel: true})
	offOn := RGSQRFTime(m, n, QRConfig{Panel: PanelCAQR, TCUpdate: true, TCPanel: false})
	offOff := RGSQRFTime(m, n, QRConfig{Panel: PanelCAQR, TCUpdate: false, TCPanel: false})
	// (on,on) is at most slightly faster than (off,on).
	within(t, "panel TC gain", offOn/onOn, 1.0, 1.15)
	// (off,on) is much faster than (off,off).
	if offOff < 1.8*offOn {
		t.Errorf("update TC gain too small: off/on %g, off/off %g", offOn, offOff)
	}
	// Without TC anywhere, the recursion is capped by the SGEMM rates:
	// under 12 TFLOPS, i.e. it loses the entire headline advantage. (The
	// paper additionally measured it *below* cuSOLVER for squarish
	// matrices; pure Table-3 composition cannot reproduce that last bit —
	// see EXPERIMENTS.md — but the "TC in update is what matters" ordering
	// is fully reproduced.)
	tfPlain := RGSFlops(m, n) / offOff / 1e12
	within(t, "TC-less RGSQRF TFLOPS", tfPlain, 4, 12)
}

// TestFigure5Claims checks RGSQRF-ReOrtho vs SGEQRF+SORMQR: the paper
// reports 3.7×–7.7× across shapes; the model reproduces the win at every
// shape with factors in the same band.
func TestFigure5Claims(t *testing.T) {
	minR, maxR := math.Inf(1), 0.0
	for _, s := range []struct{ m, n float64 }{
		{16384, 2048}, {16384, 4096}, {16384, 8192},
		{32768, 2048}, {32768, 4096}, {32768, 8192}, {32768, 16384}, {32768, 32768},
	} {
		house := SGeqrfTime(s.m, s.n) + SOrmqrFormQTime(s.m, s.n)
		re := ReorthoTime(s.m, s.n, PaperConfig)
		r := house / re
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	within(t, "min Figure 5 ratio", minR, 2.5, 4.2) // paper: 3.7×
	within(t, "max Figure 5 ratio", maxR, 4.5, 8.5) // paper: 7.7×
}

// TestFigure8Claims checks the LLS solver time model: RGSQRF+CGLS beats
// SCuSOLVE and DCuSOLVE at every shape, with speedups growing as matrices
// get thinner and the double-precision speedup roughly twice the single.
func TestFigure8Claims(t *testing.T) {
	const iters = 10 // typical measured CGLS count for κ ≤ 1e4
	var spS, spD []float64
	for _, s := range []struct{ m, n float64 }{
		{32768, 2048}, {32768, 4096}, {32768, 8192}, {32768, 16384},
	} {
		ts := LLSTimes(s.m, s.n, iters, PaperConfig)
		if ts.RGSQRFCGLS >= ts.SCuSolve {
			t.Errorf("%gx%g: RGSQRF+CGLS (%g s) not faster than SCuSOLVE (%g s)", s.m, s.n, ts.RGSQRFCGLS, ts.SCuSolve)
		}
		spS = append(spS, ts.SCuSolve/ts.RGSQRFCGLS)
		spD = append(spD, ts.DCuSolve/ts.RGSQRFCGLS)
	}
	for i := range spS {
		// RGSQRF+CGLS always wins, and the double-precision speedup is
		// roughly twice the single (Figure 8's twin bars).
		within(t, "S speedup", spS[i], 2.0, 10.0)
		within(t, "DCuSolve/SCuSolve speedup ratio", spD[i]/spS[i], 1.6, 2.4)
	}
	// Peak speedups across the sweep including the squarish extreme reach
	// the paper's band (up to 8.9×/13.5×).
	sq := LLSTimes(32768, 32768, iters, PaperConfig)
	within(t, "max S speedup", sq.SCuSolve/sq.RGSQRFCGLS, 6.0, 12.0)
	within(t, "max D speedup", sq.DCuSolve/sq.RGSQRFCGLS, 12.0, 24.0)
	// More iterations erode the speedup (the Figure 8d geometric case).
	hard := LLSTimes(32768, 16384, 200, PaperConfig)
	easy := LLSTimes(32768, 16384, 5, PaperConfig)
	if hard.RGSQRFCGLS <= easy.RGSQRFCGLS {
		t.Error("iteration cost not monotone")
	}
}

// TestTable2Claims checks the MAGMA hybrid model: peak near B=64, steep
// decline at large block sizes, and TensorCore buying at most ~20% at the
// best block size — the paper's motivating negative result.
func TestTable2Claims(t *testing.T) {
	const m, n = 32768, 16384
	bs := []float64{32, 64, 128, 256, 512, 768}
	paperPlain := []float64{4.58, 6.09, 4.51, 3.36, 1.73, 0.86}
	paperTC := []float64{4.63, 7.02, 4.87, 3.52, 1.64, 0.86}
	var bestB float64
	best := 0.0
	for i, b := range bs {
		plain := MagmaHybridQRTFLOPS(m, n, b, false)
		tc := MagmaHybridQRTFLOPS(m, n, b, true)
		// Within 50% of the measured Table 2 values (it is a two-knob
		// model of a complex pipeline; the shape is what matters).
		within(t, "Table2 plain", plain/paperPlain[i], 0.5, 1.6)
		within(t, "Table2 TC", tc/paperTC[i], 0.5, 1.6)
		if plain > best {
			best, bestB = plain, b
		}
		// TC helps a little at moderate block sizes and can even hurt at
		// the extremes (the paper's own Table 2 has TC below plain at
		// B=512: 1.64 vs 1.73 — tensor cores are poor at small k).
		within(t, "Table2 TC/plain", tc/plain, 0.85, 1.3)
	}
	if bestB != 64 {
		t.Errorf("best block size %g, want 64", bestB)
	}
	// Large blocks collapse (panel-bound).
	if MagmaHybridQRTFLOPS(m, n, 768, true) > 1.5 {
		t.Error("B=768 should be panel-bound and slow")
	}
}

// TestTable4Times checks the QR-SVD time model: RGSQRF-SVD ~6.4× faster
// than SGEQRF-SVD on the paper's 524288×1024 tall-skinny matrix.
func TestTable4Times(t *testing.T) {
	rgsT, sgeT := QRSVDTimes(524288, 1024)
	within(t, "Table 4 QR-SVD speedup", sgeT/rgsT, 4.0, 9.0) // paper: 6.4×
	if rgsT <= 0 || sgeT <= 0 {
		t.Fatal("non-positive times")
	}
}

func TestFlopHelpers(t *testing.T) {
	if GemmFlops(2, 3, 4) != 48 {
		t.Error("GemmFlops")
	}
	if math.Abs(HouseQRFlops(10, 10)-(2*1000-2.0/3.0*1000)) > 1e-9 {
		t.Error("HouseQRFlops")
	}
	if RGSFlops(10, 5) != 500 {
		t.Error("RGSFlops")
	}
	// Double precision half the single rate.
	if math.Abs(DGeqrf(16384)-SGeqrf.At(16384)/2) > 1e-12 {
		t.Error("DGeqrf rate")
	}
}

func TestTimeBreakdown(t *testing.T) {
	// Components sum to the total time.
	for _, s := range []struct{ m, n float64 }{{32768, 2048}, {32768, 16384}} {
		bd := TimeBreakdown(s.m, s.n, PaperConfig)
		total := RGSQRFTime(s.m, s.n, PaperConfig)
		if math.Abs(bd.Total()-total)/total > 1e-12 {
			t.Errorf("%gx%g: breakdown total %g vs %g", s.m, s.n, bd.Total(), total)
		}
	}
	// Panel fraction falls as n grows (the skinny-matrix observation).
	skinny := TimeBreakdown(32768, 2048, PaperConfig).PanelFraction()
	square := TimeBreakdown(32768, 32768, PaperConfig).PanelFraction()
	if skinny <= square {
		t.Errorf("panel fraction should shrink with n: skinny %g, square %g", skinny, square)
	}
	if skinny < 0.4 {
		t.Errorf("skinny shapes should be panel-dominated, got %g", skinny)
	}
	// Pure panel case.
	bd := TimeBreakdown(4096, 128, PaperConfig)
	if bd.GemmSeconds != 0 || bd.PanelFraction() != 1 {
		t.Errorf("n <= cutoff should be all panel: %+v", bd)
	}
	if (Breakdown{}).PanelFraction() != 0 {
		t.Error("zero breakdown fraction")
	}
}
