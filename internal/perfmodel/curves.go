// Package perfmodel is the analytic V100 device model used to regenerate
// the paper's performance results (Tables 2-3, Figures 1, 2, 5, 6, 7, 8).
//
// This environment has no GPU, so wall-clock measurements of the pure-Go
// simulator would say nothing about the paper's performance claims. The
// paper's claims, however, are *composition* claims: given the measured
// throughput of the device's primitive operations (its own Table 3
// microbenchmarks — TC-GEMM, SGEMM and the SGEQRF panel as functions of the
// inner dimension k), the performance of each QR algorithm follows from how
// the algorithm decomposes into those primitives. The paper itself derives
// Figures 1 and 2 this way, via equations (4) and (7). This package encodes
// the Table 3 calibration data and applies the same composition to every
// algorithm in the repository, so the benchmark harness can report
// simulated V100 times/TFLOPS whose *shape* (who wins, by what factor,
// where the crossovers fall) reproduces the paper.
//
// Calibration sources, all from the paper:
//   - Table 3: TC-GEMM / SGEMM throughput for both GEMM shapes, and the
//     cuSOLVER SGEQRF panel rate, as functions of k at m = 32768;
//   - Section 3.1.3: the hand-written CAQR panel reaches 0.33 TFLOPS on a
//     32768×128 panel (3.3× the cuSOLVER panel);
//   - Table 2: MAGMA's hybrid CPU/GPU QR throughput used to calibrate the
//     CPU panel rate of the hybrid pipeline model;
//   - V100 PCIe HBM2 bandwidth of ~900 GB/s for the bandwidth-bound
//     vector stages (GEMV, TRSV) of the LLS solvers.
package perfmodel

import (
	"math"
	"sort"
)

// Curve is a throughput curve in TFLOPS indexed by the GEMM inner dimension
// k, interpolated linearly in (log k → TFLOPS) between calibration points
// and clamped outside them.
type Curve struct {
	K      []float64 // ascending
	TFLOPS []float64
}

// At returns the interpolated throughput at inner dimension k.
func (c Curve) At(k float64) float64 {
	if len(c.K) == 0 {
		return 0
	}
	if k <= c.K[0] {
		return c.TFLOPS[0]
	}
	if k >= c.K[len(c.K)-1] {
		return c.TFLOPS[len(c.TFLOPS)-1]
	}
	i := sort.SearchFloat64s(c.K, k)
	// c.K[i-1] < k <= c.K[i]
	lk0, lk1 := math.Log2(c.K[i-1]), math.Log2(c.K[i])
	t := (math.Log2(k) - lk0) / (lk1 - lk0)
	return c.TFLOPS[i-1] + t*(c.TFLOPS[i]-c.TFLOPS[i-1])
}

// Table3K lists the inner dimensions of the paper's Table 3 microbenchmark.
var Table3K = []float64{128, 256, 512, 1024, 2048, 4096, 8192, 16384}

// The five columns of Table 3 (m = 32768 fixed):
// shape "TN": C(k×k) = A(k×m)·B(m×k) — the R12 = Q1ᵀ·A2 projection shape;
// shape "NN": C(m×k) = A(m×k)·B(k×k) — the A2 − Q1·R12 update shape.
var (
	// TCGemmTN is TensorCore GEMM throughput for the projection shape.
	TCGemmTN = Curve{Table3K, []float64{8.45, 30.17, 56.48, 72.39, 93.53, 97.82, 92.75, 82.32}}
	// SGemmTN is FP32 GEMM throughput for the projection shape.
	SGemmTN = Curve{Table3K, []float64{1.83, 4.19, 8.23, 12.43, 13.54, 12.31, 12.94, 12.96}}
	// TCGemmNN is TensorCore GEMM throughput for the update shape.
	TCGemmNN = Curve{Table3K, []float64{4.44, 11.39, 58.05, 77.58, 87.29, 92.72, 92.20, 83.40}}
	// SGemmNN is FP32 GEMM throughput for the update shape.
	SGemmNN = Curve{Table3K, []float64{2.28, 5.91, 10.19, 12.80, 13.56, 13.04, 13.12, 13.12}}
	// SGeqrf is the cuSOLVER SGEQRF throughput on an m×k panel (column 6);
	// it also serves as the full-matrix cuSOLVER baseline S(m, n) ≈
	// SGeqrf(n), consistent with the paper's ">6 TFLOPS" for 32768×16384.
	SGeqrf = Curve{Table3K, []float64{0.10, 0.14, 0.36, 0.79, 1.55, 2.71, 4.39, 6.67}}
)

// Device constants of the V100 PCIe card used in the paper.
const (
	// PeakTCTFLOPS is the best TC-GEMM rate observed in Table 3; the paper
	// quotes RGSQRF's 36.6 TFLOPS as 37.4% of this peak.
	PeakTCTFLOPS = 97.82
	// MemBandwidth is the HBM2 bandwidth in bytes/second used for the
	// bandwidth-bound stages (GEMV, TRSV, panel passes).
	MemBandwidth = 900e9
	// CAQRPanelTFLOPS128 is the measured rate of the hand-coded CAQR panel
	// on a 32768×128 panel (Section 3.1.3).
	CAQRPanelTFLOPS128 = 0.33
	// DoubleFactor converts single-precision rates to double precision
	// (V100: 14 TFLOPS FP32 vs 7 TFLOPS FP64, and twice the bytes).
	DoubleFactor = 2.0
)

// DGeqrf returns the modelled cuSOLVER DGEQRF throughput (half the FP32
// rate).
func DGeqrf(k float64) float64 { return SGeqrf.At(k) / DoubleFactor }

// SOrmqr returns the modelled SORMQR (blocked reflector application)
// throughput. Calibrated equal to the SGEQRF rate, which reproduces the
// paper's Figure 5 ratios (3.7×–7.7×) across shapes.
func SOrmqr(k float64) float64 { return SGeqrf.At(k) }

// CAQRPanel returns the modelled throughput of the CAQR panel on an m×n
// panel. The panel is bandwidth-bound; its arithmetic intensity grows
// linearly with the panel width, so the rate scales as n/128 from the
// measured 0.33 TFLOPS at width 128. The mild m-dependence (the log₈ tree
// depth) is folded into the bandwidth term of PanelTime and ignored here.
func CAQRPanel(n float64) float64 {
	return CAQRPanelTFLOPS128 * n / 128
}

// GemmFlops returns 2·m·n·k.
func GemmFlops(m, n, k float64) float64 { return 2 * m * n * k }

// HouseQRFlops returns the Householder factorization flop count
// 2mn² − (2/3)n³.
func HouseQRFlops(m, n float64) float64 { return 2*m*n*n - 2.0/3.0*n*n*n }

// OrgqrFlops returns the flop count for materializing the thin Q factor,
// ≈ 2mn² − (2/3)n³ (LAPACK xORGQR for a thin m×n Q from n reflectors).
func OrgqrFlops(m, n float64) float64 { return 2*m*n*n - 2.0/3.0*n*n*n }

// RGSFlops returns the recursive Gram-Schmidt flop count ≈ 2mn²
// (recurrence (5) of the paper).
func RGSFlops(m, n float64) float64 { return 2 * m * n * n }
