package perfmodel

import "math"

// This file contains the paper's own composition formulas — equation (4)
// for tiled Householder QR (Figure 1) and equation (7) for recursive
// Gram-Schmidt QR (Figure 2) — plus full pipeline timers for every
// algorithm variant benchmarked in Section 4.

// HouseholderEstimate evaluates equation (4): the estimated throughput (in
// TFLOPS) of a blocked Householder QR on an m×n matrix with block size B,
// with the trailing update on the TensorCore (tc) or in FP32. The model
// charges 2 parts of the flops to the panel and n/B parts to the update,
// following Bischof & Van Loan's accounting as the paper does.
func HouseholderEstimate(n, b float64, tc bool) float64 {
	gemm := SGemmNN
	if tc {
		gemm = TCGemmNN
	}
	parts := n / b
	return (parts + 2) / (2/SGeqrf.At(b) + parts/gemm.At(b))
}

// RGSQRFEstimate evaluates the recurrence (7): the estimated throughput of
// RGSQRF on an m×n matrix with recursion cutoff B, the panel running at
// panelRate(m, B) TFLOPS and the split GEMMs on the TensorCore (tc) or in
// FP32. Each recursion level spends half its flops in GEMMs with inner
// dimension n/2 and half in the two recursive calls.
func RGSQRFEstimate(m, n, b float64, tc bool, panelRate func(m, b float64) float64) float64 {
	if n <= b {
		return panelRate(m, n)
	}
	gemmRate := gemmPairRate(n/2, tc)
	sub := RGSQRFEstimate(m, n/2, b, tc, panelRate)
	return 2 / (1/sub + 1/gemmRate)
}

// gemmPairRate is the harmonic mean of the two GEMM shapes at inner
// dimension k: each recursion level runs one projection-shape GEMM
// (R12 = Q1ᵀA2) and one update-shape GEMM (A2 − Q1·R12) of equal flops.
func gemmPairRate(k float64, tc bool) float64 {
	var tn, nn float64
	if tc {
		tn, nn = TCGemmTN.At(k), TCGemmNN.At(k)
	} else {
		tn, nn = SGemmTN.At(k), SGemmNN.At(k)
	}
	return 2 / (1/tn + 1/nn)
}

// SGeqrfPanelRate adapts the cuSOLVER panel curve to the panelRate
// signature of RGSQRFEstimate.
func SGeqrfPanelRate(_, b float64) float64 { return SGeqrf.At(b) }

// CAQRPanelRate adapts the CAQR panel model to the panelRate signature.
func CAQRPanelRate(_, b float64) float64 { return CAQRPanel(b) }

// PanelKind selects the panel model for pipeline timing.
type PanelKind int

const (
	// PanelCAQR is the hand-written communication-avoiding panel.
	PanelCAQR PanelKind = iota
	// PanelSGEQRF is the cuSOLVER panel.
	PanelSGEQRF
)

// QRConfig describes an RGSQRF variant for pipeline timing: the Figure 6
// panel ablation and the Figure 7 engine ablation are points in this space.
type QRConfig struct {
	Panel    PanelKind
	TCUpdate bool // TensorCore in the split GEMMs
	TCPanel  bool // TensorCore inside the panel's own GEMMs
	Cutoff   float64
}

// PaperConfig is the configuration behind the paper's headline numbers:
// CAQR panel (FP32), TensorCore update, cutoff 128.
var PaperConfig = QRConfig{Panel: PanelCAQR, TCUpdate: true, TCPanel: false, Cutoff: 128}

func (c QRConfig) cutoff() float64 {
	if c.Cutoff > 0 {
		return c.Cutoff
	}
	return 128
}

// panelTime returns the modelled time for one m×b panel factorization.
func (c QRConfig) panelTime(m, b float64) float64 {
	flops := RGSFlops(m, b)
	switch c.Panel {
	case PanelSGEQRF:
		// cuSOLVER panel does Householder flops at the panel curve's rate.
		return HouseQRFlops(m, b) / (SGeqrf.At(b) * 1e12)
	default:
		rate := CAQRPanel(b)
		if c.TCPanel {
			// Figure 7 left bar: TensorCore inside the panel buys little —
			// the tile MGS stays in shared memory and only the small tree
			// GEMMs can use it. Model a 15% improvement.
			rate *= 1.15
		}
		return flops / (rate * 1e12)
	}
}

// RGSQRFTime returns the modelled execution time (seconds) of RGSQRF on an
// m×n matrix: the exact recursion of Algorithm 1 with per-level GEMM times
// from the calibration curves plus panel times at the cutoff.
func RGSQRFTime(m, n float64, cfg QRConfig) float64 {
	b := cfg.cutoff()
	if n <= b {
		return cfg.panelTime(m, n)
	}
	h := n / 2
	var tnRate, nnRate float64
	if cfg.TCUpdate {
		tnRate, nnRate = TCGemmTN.At(h), TCGemmNN.At(h)
	} else {
		tnRate, nnRate = SGemmTN.At(h), SGemmNN.At(h)
	}
	gemms := GemmFlops(h, n-h, m)/(tnRate*1e12) + GemmFlops(m, n-h, h)/(nnRate*1e12)
	return RGSQRFTime(m, h, cfg) + gemms + RGSQRFTime(m, n-h, cfg)
}

// RGSQRFTFLOPS converts RGSQRFTime into a throughput normalized by the
// algorithm's own 2mn² flops, matching how the paper reports Figure 6.
func RGSQRFTFLOPS(m, n float64, cfg QRConfig) float64 {
	return RGSFlops(m, n) / RGSQRFTime(m, n, cfg) / 1e12
}

// ReorthoTime is the RGSQRF-ReOrtho pipeline (Figure 5, left bars): two
// full RGSQRF passes; the R₂·R triangular product is negligible next to
// them but included for completeness.
func ReorthoTime(m, n float64, cfg QRConfig) float64 {
	rmul := n * n * n / 3 / (SGemmNN.At(n) * 1e12)
	return 2*RGSQRFTime(m, n, cfg) + rmul
}

// SGeqrfRate is the cuSOLVER SGEQRF full-matrix throughput model. Within
// the Table 3 calibration range it is the measured panel curve (at
// n = 16384 that point *is* the paper's full 32768×16384 matrix, 6.67
// TFLOPS, consistent with the ">6 TFLOPS" quoted in Section 3.1.1). Beyond
// the calibration range the rate decays — calibrated so the paper's two
// quoted numbers for 32768×32768, RGSQRF at 36.6 TFLOPS and a 14.6×
// speedup over cuSOLVER, are mutually consistent (36.6/14.6 ≈ 2.5 TFLOPS).
func SGeqrfRate(n float64) float64 {
	const edge = 16384
	if n <= edge {
		return SGeqrf.At(n)
	}
	return SGeqrf.At(edge) * math.Pow(edge/n, 1.4)
}

// SGeqrfTime is the cuSOLVER SGEQRF baseline on the full matrix.
func SGeqrfTime(m, n float64) float64 {
	return HouseQRFlops(m, n) / (SGeqrfRate(n) * 1e12)
}

// DGeqrfTime is the cuSOLVER DGEQRF baseline.
func DGeqrfTime(m, n float64) float64 {
	return HouseQRFlops(m, n) / (SGeqrfRate(n) / DoubleFactor * 1e12)
}

// SOrmqrFormQTime models SORMQR materializing the thin Q (the Figure 5
// right bars are SGEQRF + this).
func SOrmqrFormQTime(m, n float64) float64 {
	return OrgqrFlops(m, n) / (SOrmqr(n) * 1e12)
}

// GemvTime models one dense matrix-vector product: bandwidth-bound at one
// matrix read per call.
func GemvTime(m, n float64, bytesPerElem float64) float64 {
	return m * n * bytesPerElem / MemBandwidth
}

// TrsvTime models one triangular solve against an n×n factor.
func TrsvTime(n float64, bytesPerElem float64) float64 {
	return n * n / 2 * bytesPerElem / MemBandwidth
}

// CGLSIterTime is the per-iteration cost of preconditioned CGLS
// (Algorithm 3): two GEMVs with A and two triangular solves with R, run in
// double precision as the refinement demands.
func CGLSIterTime(m, n float64) float64 {
	return 2*GemvTime(m, n, 8) + 2*TrsvTime(n, 8)
}

// LLSSolverTimes bundles the three Figure 8 solvers for one problem shape.
type LLSSolverTimes struct {
	RGSQRFCGLS float64 // RGSQRF factorization + iters refinement sweeps
	SCuSolve   float64 // SGEQRF + SORMQR(b) + STRSM
	DCuSolve   float64 // DGEQRF + DORMQR(b) + DTRSM
}

// LLSTimes returns the modelled times of the three solvers with the given
// CGLS iteration count (measured numerically by the experiment harness).
func LLSTimes(m, n float64, iters int, cfg QRConfig) LLSSolverTimes {
	return LLSSolverTimes{
		RGSQRFCGLS: RGSQRFTime(m, n, cfg) + float64(iters)*CGLSIterTime(m, n),
		SCuSolve:   SGeqrfTime(m, n) + GemvTime(m, n, 4) + TrsvTime(n, 4),
		DCuSolve:   DGeqrfTime(m, n) + GemvTime(m, n, 8) + TrsvTime(n, 8),
	}
}

// QRSVDTimes models Table 4: the QR stage dominates for tall-skinny
// matrices; the small n×n Jacobi SVD and the Q·U_R GEMM are charged at the
// FP32 GEMM rate.
func QRSVDTimes(m, n float64) (rgsqrfSVD, sgeqrfSVD float64) {
	svdCost := 12 * n * n * n / (SGemmNN.At(n) * 1e12) // Jacobi sweeps on R
	qu := GemmFlops(m, n, n) / (SGemmNN.At(n) * 1e12)
	rgsqrfSVD = RGSQRFTime(m, n, PaperConfig) + svdCost + qu
	sgeqrfSVD = SGeqrfTime(m, n) + SOrmqrFormQTime(m, n) + svdCost + qu
	return rgsqrfSVD, sgeqrfSVD
}

// Breakdown itemizes the modelled RGSQRF time into panel and GEMM
// components. The panel fraction explains the Figure 6 observation that
// "the CAQR panel contributes more when the matrix is skinny": panel work
// is Θ(m·n·B) against Θ(m·n²) of GEMM work, so its share scales like B/n.
type Breakdown struct {
	PanelSeconds float64
	GemmSeconds  float64
}

// Total returns the summed time.
func (b Breakdown) Total() float64 { return b.PanelSeconds + b.GemmSeconds }

// PanelFraction returns the share of time spent in the panel.
func (b Breakdown) PanelFraction() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.PanelSeconds / t
}

// TimeBreakdown decomposes RGSQRFTime into its components.
func TimeBreakdown(m, n float64, cfg QRConfig) Breakdown {
	b := cfg.cutoff()
	if n <= b {
		return Breakdown{PanelSeconds: cfg.panelTime(m, n)}
	}
	h := n / 2
	var tnRate, nnRate float64
	if cfg.TCUpdate {
		tnRate, nnRate = TCGemmTN.At(h), TCGemmNN.At(h)
	} else {
		tnRate, nnRate = SGemmTN.At(h), SGemmNN.At(h)
	}
	gemms := GemmFlops(h, n-h, m)/(tnRate*1e12) + GemmFlops(m, n-h, h)/(nnRate*1e12)
	left := TimeBreakdown(m, h, cfg)
	right := TimeBreakdown(m, n-h, cfg)
	return Breakdown{
		PanelSeconds: left.PanelSeconds + right.PanelSeconds,
		GemmSeconds:  left.GemmSeconds + right.GemmSeconds + gemms,
	}
}
