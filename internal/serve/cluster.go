package serve

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"time"

	"tcqr"
	"tcqr/internal/cluster"
	"tcqr/internal/wirefmt"
)

// This file is the serve side of the cluster tier (DESIGN.md §14): the
// route-or-serve-local decision for keyed requests, peer-forward frame
// building, response relay, and the replica fan-out after a local miss.
// internal/cluster deals in opaque frames and peer state; this file owns the
// request vocabulary, so the split keeps the import direction one-way.
//
// Decision order for a keyed request on a cluster-enabled node:
//
//  1. forwarded_in — the loop-guard header is present: a peer already routed
//     this request here; serve locally, never re-forward.
//  2. local_hit — the key is resident in the local cache. Content-hashed
//     entries are immutable, so a local copy is always as good as the
//     owner's.
//  3. local_owner — this node is in the key's owner set AND can serve the
//     request locally. A by-key solve that misses the local cache cannot —
//     the local answer is a guaranteed 404 — so an owner-miss on a by-key
//     solve routes like a non-owner instead (decision 4): another owner may
//     hold the replica this node never received.
//  4. forward — try the key's owners in preference order; relay the first
//     usable answer (served_remote), or serve locally after the candidates
//     are exhausted (served_local_fallback).
//
// Every request that reaches decision 4 terminates exactly once in
// served_remote or served_local_fallback — the accounting invariant the
// chaos soak asserts.

// maybeForwardFactorize routes a factorize-shaped request (one-shot
// /v1/factorize). It returns true when the response has been written (a
// relayed peer answer); false means the caller serves locally.
func (s *Server) maybeForwardFactorize(w http.ResponseWriter, rc *reqScope, ctx context.Context, req *factorizeRequest, a *tcqr.Matrix, key string) bool {
	cands, forward := s.clusterRoute(rc, key, true, false)
	if !forward {
		return false
	}
	frame, err := encodeFactorizeForward(s.cluster, ctx, req, a, len(cands))
	if err != nil {
		s.cluster.NoteServedLocalFallback()
		return false
	}
	handled := s.forwardToCandidates(w, rc, ctx, cands, nil, "/v1/factorize", frame, false)
	wirefmt.PutBuffer(frame)
	return handled
}

// maybeForwardSolve routes a solve request (by key or by matrix; a is nil
// for solve-by-key). Same contract as maybeForwardFactorize.
func (s *Server) maybeForwardSolve(w http.ResponseWriter, rc *reqScope, ctx context.Context, req *solveRequest, a *tcqr.Matrix, key string) bool {
	// Solves are cache-tier work: degraded peers keep serving them (a
	// degraded owner that misses answers 503, which reads as try-next).
	cands, forward := s.clusterRoute(rc, key, false, req.Key != "")
	if !forward {
		return false
	}
	frame, err := encodeSolveForward(s.cluster, ctx, req, a, len(cands))
	if err != nil {
		s.cluster.NoteServedLocalFallback()
		return false
	}
	// A by-key request this node cannot serve locally gets a last-resort
	// reserve: every peer, owner or not, regardless of probed state. Falling
	// through to the local 404 is a guaranteed failure, so a down-marked
	// owner (the mark may be a transient probe glitch) or a non-owner
	// coordinator that computed the entry as a local fallback is worth one
	// more attempt each.
	var reserve []cluster.Member
	if req.Key != "" && !s.cache.Peek(key) {
		reserve = s.cluster.Peers()
	}
	handled := s.forwardToCandidates(w, rc, ctx, cands, reserve, "/v1/solve", frame, req.Key != "")
	wirefmt.PutBuffer(frame)
	return handled
}

// maybeForwardUpdate routes an update request: updates must run on a node
// holding the key's series (the epoch chain is node-local state), so a node
// without the series routes to the base key's owners exactly like a by-key
// solve it cannot answer. Same contract as maybeForwardSolve.
func (s *Server) maybeForwardUpdate(w http.ResponseWriter, rc *reqScope, ctx context.Context, req *updateRequest) bool {
	cands, forward := s.clusterRoute(rc, req.Key, true, true)
	if !forward {
		return false
	}
	frame, err := encodeUpdateForward(s.cluster, ctx, req, len(cands))
	if err != nil {
		s.cluster.NoteServedLocalFallback()
		return false
	}
	var reserve []cluster.Member
	if !s.cache.Peek(req.Key) {
		reserve = s.cluster.Peers()
	}
	handled := s.forwardToCandidates(w, rc, ctx, cands, reserve, "/v1/update", frame, true)
	wirefmt.PutBuffer(frame)
	return handled
}

// clusterRoute makes the routing decision for key. forward=false means serve
// locally (the decision has been counted); forward=true hands back the
// candidate owners to try, in preference order, already filtered by peer
// state (cold factorize work skips degraded peers; everything skips down
// ones). An empty candidate list with forward=true still counts as a routed
// request — the caller falls through to served_local_fallback.
//
// keyOnly marks a by-key solve: the request cannot be served from its own
// payload, so owning the key without holding the entry (the cache Peek above
// already missed) is no reason to stay local — the node routes to the other
// owners like any non-owner would.
func (s *Server) clusterRoute(rc *reqScope, key string, cold, keyOnly bool) ([]cluster.Member, bool) {
	n := s.cluster
	if n == nil {
		return nil, false
	}
	if rc.forwarded {
		n.NoteRoute(cluster.DecisionForwardedIn)
		return nil, false
	}
	if s.cache.Peek(key) {
		n.NoteRoute(cluster.DecisionLocalHit)
		return nil, false
	}
	// Ownership hashes the base key: every epoch of an updated series maps
	// to the same owners, so updates and solves-by-key stay co-located no
	// matter which key form the client sends.
	owners := n.Owners(baseKey(key))
	if !keyOnly {
		for _, m := range owners {
			if n.IsSelf(m) {
				n.NoteRoute(cluster.DecisionLocalOwner)
				return nil, false
			}
		}
	}
	n.NoteRoute(cluster.DecisionForward)
	cands := make([]cluster.Member, 0, len(owners))
	for _, m := range owners {
		if !n.IsSelf(m) && n.Usable(m, cold) {
			cands = append(cands, m)
		}
	}
	return cands, true
}

// forwardToCandidates tries each candidate in order and relays the first
// usable answer; when the first pass fails it makes one pass over reserve
// (the last-resort owner list — empty except for by-key solves the local
// cache cannot answer). Returns false after exhausting both, with the
// fallback counted: the caller serves locally. Every call terminates exactly
// once in served_remote or served_local_fallback.
func (s *Server) forwardToCandidates(w http.ResponseWriter, rc *reqScope, ctx context.Context, cands, reserve []cluster.Member, path string, frame []byte, keyOnly bool) bool {
	if s.tryCandidates(w, rc, ctx, cands, path, frame, keyOnly) {
		return true
	}
	if len(reserve) > 0 && s.tryCandidates(w, rc, ctx, reserve, path, frame, keyOnly) {
		return true
	}
	s.cluster.NoteServedLocalFallback()
	return false
}

// tryCandidates attempts each candidate once and relays the first usable
// answer. Transport errors (the peer is marked down inside Forward), 5xx,
// and 429 try the next candidate; for solve-by-key a 404 does too — a
// replica missing the entry is not authoritative while another owner might
// hold it.
func (s *Server) tryCandidates(w http.ResponseWriter, rc *reqScope, ctx context.Context, cands []cluster.Member, path string, frame []byte, keyOnly bool) bool {
	for _, m := range cands {
		if ctx.Err() != nil {
			break
		}
		t0 := time.Now()
		res, err := s.cluster.Forward(ctx, m, path, frame, rc.frameResp)
		rc.rep.RecordTiming("forward", time.Since(t0))
		if err != nil {
			continue
		}
		if res.Status >= 500 || res.Status == http.StatusTooManyRequests {
			continue
		}
		if keyOnly && res.Status == http.StatusNotFound {
			continue
		}
		s.cluster.NoteServedRemote()
		rc.relay(w, res, m.ID)
		return true
	}
	return false
}

// relay writes a peer's buffered response through the request's normal
// finish path (stage timings, response counters, structured log). Error
// accounting stays with the node that served the request; the coordinator
// only counts the response status.
func (rc *reqScope) relay(w http.ResponseWriter, res *cluster.ForwardResult, peerID string) {
	if res.ContentType != "" {
		rc.respCT = res.ContentType
	}
	if res.RetryAfter != "" {
		w.Header().Set("Retry-After", res.RetryAfter)
	}
	w.Header().Set(cluster.ServedByHeader, peerID)
	rc.finish(w, res.Status, res.Body)
}

// clusterReplicate fans a freshly computed factorization out to the key's
// other owners (N-way replica fan-out; the computing node already holds the
// entry, so read-your-writes is local). Deliveries are asynchronous and fall
// back to hinted handoff when an owner is down or the send fails, so a
// momentarily lost owner converges once it returns. Call only after a
// SourceMiss — hits and shared waiters reuse an entry someone else already
// fanned out.
func (s *Server) clusterReplicate(key string, a *tcqr.Matrix, wcfg WireConfig) {
	n := s.cluster
	if n == nil {
		return
	}
	var frame []byte
	for _, m := range n.Owners(key) {
		if n.IsSelf(m) {
			continue
		}
		if frame == nil {
			var err error
			// Replica deliveries are factorize frames: replication is
			// deterministic recompute on the replica (bit-identical factors —
			// the determinism contract), not factor shipping.
			frame, err = encodeFactorizeForward(n, context.Background(),
				&factorizeRequest{Config: wcfg}, a, 1)
			if err != nil {
				return
			}
		}
		n.Replicate(m, "/v1/factorize", frame)
	}
	// The frame is not pooled here: Replicate and the handoff queue retain
	// copies asynchronously, so recycling the encode buffer under them would
	// hand a torn frame to a peer.
}

// encodeFactorizeForward builds the peer-forward frame for a
// factorize-shaped request: [JSON meta, matrix, forward].
func encodeFactorizeForward(n *cluster.Node, ctx context.Context, req *factorizeRequest, a *tcqr.Matrix, attempts int) ([]byte, error) {
	meta, err := json.Marshal(factorizeRequest{Config: req.Config, DeadlineMS: req.DeadlineMS})
	if err != nil {
		return nil, err
	}
	secs := []wirefmt.Section{
		wirefmt.JSONSection(meta),
		wirefmt.MatrixSection(a.Rows, a.Cols, colMajorData(a)),
		forwardSection(n, ctx, attempts),
	}
	return encodeForwardFrame(secs)
}

// colMajorData returns a's elements as a tight column-major slice (uploaded
// matrices are tight already; a strided view gets a copy).
func colMajorData(a *tcqr.Matrix) []float64 {
	if a.Stride == a.Rows && len(a.Data) == a.Rows*a.Cols {
		return a.Data
	}
	out := make([]float64, a.Rows*a.Cols)
	for j := 0; j < a.Cols; j++ {
		copy(out[j*a.Rows:(j+1)*a.Rows], a.Data[j*a.Stride:j*a.Stride+a.Rows])
	}
	return out
}

// encodeSolveForward builds the peer-forward frame for a solve request:
// [JSON meta, b, forward] by key, [JSON meta, matrix, b, forward] by matrix.
func encodeSolveForward(n *cluster.Node, ctx context.Context, req *solveRequest, a *tcqr.Matrix, attempts int) ([]byte, error) {
	meta, err := json.Marshal(solveRequest{
		Key:        req.Key,
		Config:     req.Config,
		Options:    req.Options,
		DeadlineMS: req.DeadlineMS,
	})
	if err != nil {
		return nil, err
	}
	secs := make([]wirefmt.Section, 0, 4)
	secs = append(secs, wirefmt.JSONSection(meta))
	if a != nil {
		secs = append(secs, wirefmt.MatrixSection(a.Rows, a.Cols, colMajorData(a)))
	}
	secs = append(secs, wirefmt.VectorSection(req.B), forwardSection(n, ctx, attempts))
	return encodeForwardFrame(secs)
}

// encodeUpdateForward builds the peer-forward frame for an update request:
// [JSON meta, append block?, forward].
func encodeUpdateForward(n *cluster.Node, ctx context.Context, req *updateRequest, attempts int) ([]byte, error) {
	meta, err := json.Marshal(updateRequest{
		Key:        req.Key,
		RemoveRows: req.RemoveRows,
		DeadlineMS: req.DeadlineMS,
	})
	if err != nil {
		return nil, err
	}
	secs := make([]wirefmt.Section, 0, 3)
	secs = append(secs, wirefmt.JSONSection(meta))
	if req.Append != nil {
		secs = append(secs, wirefmt.MatrixSection(req.Append.Rows, req.Append.Cols, req.Append.Data))
	}
	secs = append(secs, forwardSection(n, ctx, attempts))
	return encodeForwardFrame(secs)
}

func encodeForwardFrame(secs []wirefmt.Section) ([]byte, error) {
	sz, err := wirefmt.FrameLen(secs...)
	if err != nil {
		return nil, err
	}
	out, err := wirefmt.AppendFrame(wirefmt.GetBuffer(sz), secs...)
	if err != nil {
		wirefmt.PutBuffer(out)
		return nil, err
	}
	return out, nil
}

// forwardSection stamps the remaining deadline budget and attempt count into
// a TagForward section (the receiver folds the deadline into its own).
func forwardSection(n *cluster.Node, ctx context.Context, attempts int) wirefmt.Section {
	var deadlineMS uint32
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		if ms > math.MaxUint32 {
			ms = math.MaxUint32
		}
		deadlineMS = uint32(ms)
	}
	if attempts < 0 {
		attempts = 0
	}
	if attempts > wirefmt.MaxForwardAttempts {
		attempts = wirefmt.MaxForwardAttempts
	}
	return wirefmt.ForwardSection(deadlineMS, uint8(attempts), n.SelfID())
}
