package serve

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"tcqr/internal/faultinject"
)

// arm installs a fault schedule for one test and disarms it on cleanup.
func arm(t *testing.T, spec string) {
	t.Helper()
	if err := faultinject.Arm(spec); err != nil {
		t.Fatalf("Arm(%q): %v", spec, err)
	}
	t.Cleanup(faultinject.Disarm)
}

// fastRetry is a retry policy quick enough for tests: full attempts, tiny
// deterministic backoff.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: 200 * time.Microsecond, Jitter: -1}
}

// --- satellite: the pool dequeue window ------------------------------------

// TestPoolDequeuePanicCannotStrandAwaitIdle drives a panic into the window
// between a worker dequeuing a task and running it (the serve.pool.dequeue
// failpoint sits exactly there). The submitter must get an error, the
// worker must survive, and AwaitIdle must still terminate — before the
// runOne restructure, an unwind in that window killed the worker with the
// queued counter already decremented and t.done never closed, stranding
// both Do and AwaitIdle.
func TestPoolDequeuePanicCannotStrandAwaitIdle(t *testing.T) {
	p := NewPool(1, 8)
	arm(t, "seed=1;serve.pool.dequeue=panic@once=1")

	_, err := p.Do(context.Background(), func() {})
	if err == nil || !strings.Contains(err.Error(), "panic in pool task") {
		t.Fatalf("Do with injected dequeue panic: err=%v, want recovered panic error", err)
	}

	// The single worker must have survived to run this.
	if _, err := p.Do(context.Background(), func() {}); err != nil {
		t.Fatalf("Do after injected panic: %v (worker died?)", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := p.AwaitIdle(ctx); err != nil {
		t.Fatalf("AwaitIdle after injected dequeue panic: %v", err)
	}
	st := p.Stats()
	if st.Queued != 0 || st.InFlight != 0 || st.Completed != 2 {
		t.Fatalf("counters after dequeue panic: %+v, want queued=0 inflight=0 completed=2", st)
	}
}

func TestPoolDequeueErrorSurfacesToSubmitter(t *testing.T) {
	p := NewPool(1, 8)
	arm(t, "seed=1;serve.pool.dequeue=error@once=1")
	_, err := p.Do(context.Background(), func() { t.Error("task fn ran despite injected dequeue error") })
	if err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("Do: err=%v, want injected error", err)
	}
	if st := p.Stats(); st.Queued != 0 || st.InFlight != 0 {
		t.Fatalf("counters: %+v, want idle", st)
	}
}

// --- retry through the serving pipeline ------------------------------------

// TestServerRetriesTransientFaultToSuccess arms two injected factorize
// failures: the third attempt succeeds, so the client sees a clean 200 whose
// hazard list records both retried transients, and the retry metrics count
// the two attempts.
func TestServerRetriesTransientFaultToSuccess(t *testing.T) {
	s := New(Options{Workers: 2, Retry: fastRetry(3)})
	defer s.Close()
	h := s.Handler()
	arm(t, "seed=3;serve.cache.factorize=error@count=2")

	var fr factorizeReply
	code, _ := post(t, h, "/v1/factorize",
		map[string]any{"matrix": wireMat(32, 8, testMatrix(1, 32, 8, 1))}, &fr)
	if code != 200 {
		t.Fatalf("factorize with 2 injected failures and 3 attempts: code=%d, want 200", code)
	}
	transients := 0
	for _, hz := range fr.Hazards {
		if hz.Kind == "transient" {
			transients++
		}
	}
	if transients != 2 {
		t.Fatalf("hazards %+v: want exactly 2 transient entries", fr.Hazards)
	}
	var buf strings.Builder
	_ = s.Metrics().WriteText(&buf)
	txt := buf.String()
	for _, want := range []string{
		`tcqrd_retry_attempts_total{endpoint="factorize"} 2`,
		`tcqrd_fault_injected_total{site="serve.cache.factorize",action="error"} 2`,
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestServerRetryExhaustionSurfaces500 arms a permanent factorize fault:
// after every attempt fails, the client gets a 500 whose envelope carries
// the retried-transient history, and the exhausted counter increments.
func TestServerRetryExhaustionSurfaces500(t *testing.T) {
	s := New(Options{Workers: 2, Retry: fastRetry(3), DegradeThreshold: -1})
	defer s.Close()
	h := s.Handler()
	arm(t, "seed=3;serve.cache.factorize=error")

	var env envelope
	code, _ := post(t, h, "/v1/factorize",
		map[string]any{"matrix": wireMat(32, 8, testMatrix(2, 32, 8, 1))}, &env)
	if code != 500 || env.Error.Code != "internal" {
		t.Fatalf("code=%d error=%+v, want 500 internal", code, env.Error)
	}
	transients := 0
	for _, hz := range env.Error.Hazards {
		if hz.Kind == "transient" {
			transients++
		}
	}
	if transients != 2 {
		t.Fatalf("error hazards %+v: want the 2 retried transients in the envelope", env.Error.Hazards)
	}
	var buf strings.Builder
	_ = s.Metrics().WriteText(&buf)
	if !strings.Contains(buf.String(), `tcqrd_retry_exhausted_total{endpoint="factorize"} 1`) {
		t.Errorf("metrics missing the exhausted-retry counter:\n%s", buf.String())
	}
}

// TestEncodeFaultIsInternalNotRetried: an injected encode fault surfaces as
// a plain 500 (the compute already succeeded; replaying it would double
// work) and is attributed to the internal error code.
func TestEncodeFaultIsInternalNotRetried(t *testing.T) {
	be := &countingBackend{inner: LibraryBackend{}}
	s := New(Options{Workers: 2, Retry: fastRetry(3), Backend: be})
	defer s.Close()
	h := s.Handler()
	arm(t, "seed=1;serve.wire.encode=error@once=1")

	var env envelope
	code, _ := post(t, h, "/v1/factorize",
		map[string]any{"matrix": wireMat(32, 8, testMatrix(3, 32, 8, 1))}, &env)
	if code != 500 || env.Error.Code != "internal" {
		t.Fatalf("code=%d error=%+v, want 500 internal", code, env.Error)
	}
	if got := be.factorize.Load(); got != 1 {
		t.Fatalf("backend factorized %d times, want 1 (encode faults must not replay compute)", got)
	}
}

// --- degraded mode ---------------------------------------------------------

// TestDegradedModeServesCacheRejectsCold is the degraded-mode acceptance
// test: after the breaker trips, cache hits (solve by key, re-factorize of a
// resident matrix) still serve 200 while cold factorizations and lowrank
// get 503 + code "degraded" + a Retry-After covering the cooldown.
func TestDegradedModeServesCacheRejectsCold(t *testing.T) {
	s := New(Options{
		Workers:          2,
		Retry:            fastRetry(1), // no retries: each failure counts immediately
		DegradeThreshold: 2,
		DegradeCooldown:  time.Minute,
	})
	defer s.Close()
	h := s.Handler()

	// Warm the cache while healthy.
	warm := testMatrix(10, 48, 12, 1)
	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(48, 12, warm)}, &fr); code != 200 {
		t.Fatalf("warm factorize: code=%d", code)
	}

	// Two injected internal failures trip the threshold-2 breaker.
	arm(t, "seed=5;serve.cache.factorize=error")
	for i := 0; i < 2; i++ {
		code, _ := post(t, h, "/v1/factorize",
			map[string]any{"matrix": wireMat(48, 12, testMatrix(uint64(20+i), 48, 12, 1))}, nil)
		if code != 500 {
			t.Fatalf("tripping request %d: code=%d, want 500", i, code)
		}
	}
	faultinject.Disarm()

	// Cold factorize: rejected with 503 degraded + Retry-After.
	var env envelope
	code, hdr := post(t, h, "/v1/factorize",
		map[string]any{"matrix": wireMat(48, 12, testMatrix(30, 48, 12, 1))}, &env)
	if code != 503 || env.Error.Code != "degraded" {
		t.Fatalf("cold factorize while degraded: code=%d error=%+v, want 503 degraded", code, env.Error)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 60 {
		t.Fatalf("Retry-After %q, want an integer in [1, 60]", hdr.Get("Retry-After"))
	}

	// Lowrank is uncached compute: also rejected.
	if code, _ := post(t, h, "/v1/lowrank",
		map[string]any{"matrix": wireMat(48, 12, warm), "rank": 4}, nil); code != 503 {
		t.Fatalf("lowrank while degraded: code=%d, want 503", code)
	}

	// Cache hits still serve: solve by key and re-factorize of the warm matrix.
	x := make([]float64, 12)
	for i := range x {
		x[i] = float64(i + 1)
	}
	var sr solveReply
	if code, _ := post(t, h, "/v1/solve",
		map[string]any{"key": fr.Key, "b": matVecData(48, 12, warm, x)}, &sr); code != 200 {
		t.Fatalf("solve by key while degraded: code=%d, want 200", code)
	}
	if d := maxDiff(sr.X, x); d > 1e-6 {
		t.Fatalf("degraded cache-hit solve wrong by %g", d)
	}
	var fr2 factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(48, 12, warm)}, &fr2); code != 200 || !fr2.Cached {
		t.Fatalf("re-factorize of resident matrix while degraded: code=%d cached=%v, want 200 cached", code, fr2.Cached)
	}

	// Liveness: /healthz stays 200 (the process serves cache traffic), but
	// reports the restriction; /statz mirrors it.
	var hz map[string]string
	if code := get(t, h, "/healthz", &hz); code != 200 || hz["status"] != "degraded" {
		t.Fatalf("healthz while degraded: code=%d status=%q, want 200 degraded", code, hz["status"])
	}
	var st statzResponse
	if code := get(t, h, "/statz", &st); code != 200 || !st.Degraded {
		t.Fatalf("statz while degraded: code=%d degraded=%v", code, st.Degraded)
	}
	var buf strings.Builder
	_ = s.Metrics().WriteText(&buf)
	txt := buf.String()
	if !strings.Contains(txt, "tcqrd_degraded 1") || !strings.Contains(txt, "tcqrd_degraded_entered_total 1") {
		t.Errorf("metrics missing degraded gauge/counter:\n%s", txt)
	}
}

// TestDegradedModeExpires: the cooldown ends on the clock and cold compute
// resumes.
func TestDegradedModeExpires(t *testing.T) {
	s := New(Options{Workers: 2, Retry: fastRetry(1), DegradeThreshold: 1, DegradeCooldown: 50 * time.Millisecond})
	defer s.Close()
	h := s.Handler()

	arm(t, "seed=5;serve.cache.factorize=error@once=1")
	if code, _ := post(t, h, "/v1/factorize",
		map[string]any{"matrix": wireMat(32, 8, testMatrix(40, 32, 8, 1))}, nil); code != 500 {
		t.Fatalf("tripping request: want 500")
	}
	if code, _ := post(t, h, "/v1/factorize",
		map[string]any{"matrix": wireMat(32, 8, testMatrix(41, 32, 8, 1))}, nil); code != 503 {
		t.Fatalf("while degraded: want 503")
	}
	time.Sleep(80 * time.Millisecond)
	if code, _ := post(t, h, "/v1/factorize",
		map[string]any{"matrix": wireMat(32, 8, testMatrix(41, 32, 8, 1))}, nil); code != 200 {
		t.Fatalf("after cooldown: want 200")
	}
	var hz map[string]string
	if code := get(t, h, "/healthz", &hz); code != 200 || hz["status"] != "ok" {
		t.Fatalf("healthz after cooldown: code=%d status=%q", code, hz["status"])
	}
}

// --- determinism at the serving layer --------------------------------------

// TestServeFaultScheduleIsSeedDeterministic replays an identical
// single-client request sequence against two fresh servers armed with the
// same spec and asserts the injected-event logs are identical — the
// serving-layer half of the determinism contract (the faultinject package
// test covers the registry half).
func TestServeFaultScheduleIsSeedDeterministic(t *testing.T) {
	const spec = "seed=99;serve.wire.decode=error@every=4;serve.cache.factorize=error@p=0.4;serve.pool.enqueue=delay(100us)@p=0.3"
	run := func() []faultinject.Event {
		s := New(Options{Workers: 1, Retry: fastRetry(2), DegradeThreshold: -1})
		defer s.Close()
		h := s.Handler()
		arm(t, spec)
		for i := 0; i < 12; i++ {
			post(t, h, "/v1/factorize",
				map[string]any{"matrix": wireMat(24, 6, testMatrix(uint64(50+i%5), 24, 6, 1))}, nil)
		}
		return faultinject.Events()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("schedule injected nothing; the spec should fire against this sequence")
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestFaultSpecRejectedCleanly: a bad spec must not install anything.
func TestFaultSpecRejectedCleanly(t *testing.T) {
	if err := faultinject.Arm("serve.cache.factorize=explode"); err == nil {
		faultinject.Disarm()
		t.Fatal("bad action accepted")
	}
	if faultinject.Armed() {
		t.Fatal("failed Arm left a schedule armed")
	}
}
