//go:build race

package serve

// raceEnabled reports whether the race detector is compiled in. Tests that
// measure sync.Pool reuse consult it: race mode deliberately drops a quarter
// of Pool.Puts (to shake out lifetime bugs), so byte-level pooling
// assertions are meaningful only in the normal build.
const raceEnabled = true
