package serve

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"tcqr"
	"tcqr/internal/faultinject"
	"tcqr/internal/wirefmt"
)

// This file is the chunked-upload path of /v1/factorize (DESIGN.md §13): a
// client that cannot hold its matrix in one request body streams it as row
// blocks instead.
//
//	POST /v1/factorize/stream/begin   {cols, config}        -> {session, ttl_ms}
//	POST /v1/factorize/stream/append  {session} + row block -> {session, rows, blocks}
//	POST /v1/factorize/stream/commit  {session}             -> factorizeResponse
//	POST /v1/factorize/stream/abort   {session}             -> {session, aborted}
//
// Append accepts the same two encodings as the one-shot endpoints: JSON with
// a "block" matrix, or a binary frame [JSON meta, matrix section] over
// internal/wirefmt. Either way the row data is copied into the session before
// the handler returns — a binary append's pooled frame buffer is released
// inside the handler, never parked in the registry, so an abandoned session
// can at worst leak its own float64 copy to the collector, not a pooled
// buffer another request will be handed.
//
// Commit assembles the column-major matrix, derives the same content-hash
// CacheKey a one-shot upload of the identical matrix would get, and runs the
// standard factorEntry pipeline — so a streamed factorization is cached,
// singleflighted, degraded-mode-gated, and solvable-by-key exactly like a
// one-shot one.
//
// Sessions are deadline-bounded: each begin stamps an expiry (Options.
// StreamTTL, refreshed on every append), a background reaper sweeps expired
// sessions, and BeginDrain reaps everything immediately — a drained server
// holds no half-uploaded matrices.

// streamSession is one in-progress chunked upload. Fields are guarded by the
// owning registry's lock; blocks hold private column-major copies of the
// appended row blocks.
type streamSession struct {
	id      string
	cfg     tcqr.Config
	wcfg    WireConfig // the wire form of cfg, kept for cluster replication
	cols    int
	rows    int
	blocks  [][]float64 // each column-major rows_i × cols
	expires time.Time
}

// streamRegistry owns the live upload sessions: bounded, TTL-swept, and
// drain-aware.
type streamRegistry struct {
	mu       sync.Mutex
	sessions map[string]*streamSession
	ttl      time.Duration
	max      int
	reaped   func(n int) // metrics hook, called outside the lock
}

func newStreamRegistry(ttl time.Duration, max int) *streamRegistry {
	return &streamRegistry{
		sessions: make(map[string]*streamSession),
		ttl:      ttl,
		max:      max,
	}
}

func (sr *streamRegistry) len() int {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return len(sr.sessions)
}

// begin creates a session, reaping expired ones first so abandoned uploads
// can never crowd out live clients within the session cap.
func (sr *streamRegistry) begin(cfg tcqr.Config, wcfg WireConfig, cols int, now time.Time) (*streamSession, *apiError) {
	reaped := 0
	sr.mu.Lock()
	for id, ss := range sr.sessions {
		if now.After(ss.expires) {
			delete(sr.sessions, id)
			reaped++
		}
	}
	if len(sr.sessions) >= sr.max {
		// The Retry-After is derived, not the blanket default: the earliest
		// session expiry is when a slot is guaranteed to free up if no client
		// commits or aborts sooner (appends push it out again, but a later
		// retry then meets the same computation).
		retryAfter := 1
		var earliest time.Time
		for _, ss := range sr.sessions {
			if earliest.IsZero() || ss.expires.Before(earliest) {
				earliest = ss.expires
			}
		}
		if secs := int(math.Ceil(earliest.Sub(now).Seconds())); secs > retryAfter {
			retryAfter = secs
		}
		sr.mu.Unlock()
		sr.noteReaped(reaped)
		return nil, &apiError{status: http.StatusTooManyRequests, code: "overloaded",
			msg:        fmt.Sprintf("too many open upload sessions (cap %d); commit, abort or let one expire", sr.max),
			retryAfter: retryAfter}
	}
	var idb [16]byte
	if _, err := rand.Read(idb[:]); err != nil {
		sr.mu.Unlock()
		sr.noteReaped(reaped)
		return nil, &apiError{status: http.StatusInternalServerError, code: "internal",
			msg: "minting session id: " + err.Error()}
	}
	ss := &streamSession{
		id:      hex.EncodeToString(idb[:]),
		cfg:     cfg,
		wcfg:    wcfg,
		cols:    cols,
		expires: now.Add(sr.ttl),
	}
	sr.sessions[ss.id] = ss
	sr.mu.Unlock()
	sr.noteReaped(reaped)
	return ss, nil
}

// errUnknownStream is the uniform answer for a session id that does not
// resolve — never minted, already committed or aborted, or reaped on expiry.
func errUnknownStream(id string) *apiError {
	return &apiError{status: http.StatusNotFound, code: "unknown_stream",
		msg: fmt.Sprintf("no open upload session %q (it may have expired; begin again)", id)}
}

// append adds one row block to a live session and refreshes its deadline.
// data must be a private column-major copy (bRows × session cols) — the
// registry retains it until commit or reap.
func (sr *streamRegistry) append(id string, bRows, bCols int, data []float64, maxElements int, now time.Time) (*streamSession, *apiError) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	ss, ok := sr.sessions[id]
	if !ok || now.After(ss.expires) {
		if ok {
			delete(sr.sessions, id)
			defer sr.noteReaped(1)
		}
		return nil, errUnknownStream(id)
	}
	if bCols != ss.cols {
		return nil, errBadInput(fmt.Sprintf("row block has %d columns; session %q was begun with %d", bCols, id, ss.cols))
	}
	if n := int64(ss.rows+bRows) * int64(ss.cols); n > int64(maxElements) {
		return nil, &apiError{status: http.StatusRequestEntityTooLarge, code: "too_large",
			msg: fmt.Sprintf("appending %d rows would grow the matrix to %d elements; the server caps uploads at %d", bRows, n, maxElements)}
	}
	ss.rows += bRows
	ss.blocks = append(ss.blocks, data)
	ss.expires = now.Add(sr.ttl)
	return ss, nil
}

// take removes and returns a live session (the commit/abort handoff).
func (sr *streamRegistry) take(id string, now time.Time) (*streamSession, *apiError) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	ss, ok := sr.sessions[id]
	if !ok {
		return nil, errUnknownStream(id)
	}
	delete(sr.sessions, id)
	if now.After(ss.expires) {
		defer sr.noteReaped(1)
		return nil, errUnknownStream(id)
	}
	return ss, nil
}

// reapExpired sweeps sessions past their deadline; reapAll (drain) sweeps
// everything. Both return the number removed.
func (sr *streamRegistry) reapExpired(now time.Time) int {
	sr.mu.Lock()
	n := 0
	for id, ss := range sr.sessions {
		if now.After(ss.expires) {
			delete(sr.sessions, id)
			n++
		}
	}
	sr.mu.Unlock()
	sr.noteReaped(n)
	return n
}

func (sr *streamRegistry) reapAll() int {
	sr.mu.Lock()
	n := len(sr.sessions)
	sr.sessions = make(map[string]*streamSession)
	sr.mu.Unlock()
	sr.noteReaped(n)
	return n
}

func (sr *streamRegistry) noteReaped(n int) {
	if n > 0 && sr.reaped != nil {
		sr.reaped(n)
	}
}

// assemble stitches the appended row blocks into one column-major matrix, in
// append order — the same element layout a one-shot upload of the full
// matrix carries, so CacheKey(assembled, cfg) is the one-shot key.
func (ss *streamSession) assemble() *tcqr.Matrix {
	data := make([]float64, ss.rows*ss.cols)
	row := 0
	for _, blk := range ss.blocks {
		bRows := len(blk) / ss.cols
		for j := 0; j < ss.cols; j++ {
			copy(data[j*ss.rows+row:], blk[j*bRows:(j+1)*bRows])
		}
		row += bRows
	}
	return tcqr.FromColMajor(ss.rows, ss.cols, data)
}

func (s *Server) handleStreamBegin(w http.ResponseWriter, r *http.Request) {
	rc, ok := s.admit(w, r, "stream_begin")
	if !ok {
		return
	}
	var req streamBeginRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		rc.fail(w, classifyError(err))
		return
	}
	if req.Cols <= 0 {
		rc.fail(w, errBadInput(fmt.Sprintf("cols is %d; a session needs at least 1 column", req.Cols)))
		return
	}
	if int64(req.Cols) > int64(s.opts.MaxElements) {
		rc.fail(w, &apiError{status: http.StatusRequestEntityTooLarge, code: "too_large",
			msg: fmt.Sprintf("cols %d exceeds the %d-element upload cap", req.Cols, s.opts.MaxElements)})
		return
	}
	cfg, err := s.reqConfig(req.Config)
	if err != nil {
		rc.fail(w, classifyError(err))
		return
	}
	ss, aerr := s.streams.begin(cfg, req.Config, req.Cols, time.Now())
	if aerr != nil {
		rc.fail(w, aerr)
		return
	}
	rc.key = ss.id
	s.metrics.streamBegun.Inc()
	rc.ok(w, streamBeginResponse{Session: ss.id, TTLMS: s.opts.StreamTTL.Milliseconds()})
}

func (s *Server) handleStreamAppend(w http.ResponseWriter, r *http.Request) {
	rc, ok := s.admit(w, r, "stream_append")
	if !ok {
		return
	}
	var req streamAppendRequest
	if rc.binReq {
		// The row block is copied out of the frame during decode (the session
		// outlives the request), so the pooled buffer is released here — an
		// abandoned session never holds a pooled wire buffer.
		body, aerr := readFrameBody(r)
		if aerr != nil {
			rc.fail(w, aerr)
			return
		}
		preq, aerr := decodeStreamAppendFrame(body, nil)
		wirefmt.PutBuffer(body)
		if aerr != nil {
			rc.fail(w, aerr)
			return
		}
		req = *preq
	} else if err := decodeJSON(r.Body, &req); err != nil {
		rc.fail(w, classifyError(err))
		return
	}
	rc.key = req.Session
	if req.Session == "" {
		rc.fail(w, errBadInput("missing session"))
		return
	}
	blk, err := req.Block.matrix()
	if err != nil {
		rc.fail(w, classifyError(err))
		return
	}
	// Failpoint: an injected append failure surfaces as a 500 after decode,
	// with the session left untouched — the client's natural move (retry the
	// chunk) is also the correct one.
	if ferr := faultinject.Fire(siteStreamAppend); ferr != nil {
		rc.fail(w, classifyError(ferr))
		return
	}
	ss, aerr := s.streams.append(req.Session, blk.Rows, blk.Cols, req.Block.Data, s.opts.MaxElements, time.Now())
	if aerr != nil {
		rc.fail(w, aerr)
		return
	}
	s.metrics.streamAppends.Inc()
	rc.rows, rc.cols = ss.rows, ss.cols
	rc.ok(w, streamAppendResponse{Session: ss.id, Rows: ss.rows, Blocks: len(ss.blocks)})
}

func (s *Server) handleStreamCommit(w http.ResponseWriter, r *http.Request) {
	rc, ok := s.admit(w, r, "stream_commit")
	if !ok {
		return
	}
	var req streamCommitRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		rc.fail(w, classifyError(err))
		return
	}
	rc.key = req.Session
	if req.Session == "" {
		rc.fail(w, errBadInput("missing session"))
		return
	}
	ss, aerr := s.streams.take(req.Session, time.Now())
	if aerr != nil {
		rc.fail(w, aerr)
		return
	}
	// Commit consumes the session whatever happens next (like a one-shot
	// request body): count it now so the lifecycle invariant begun ==
	// committed + aborted + reaped holds even when the factorization fails —
	// a client whose commit 500s restarts the upload.
	s.metrics.streamCommitted.Inc()
	if ss.rows == 0 {
		rc.fail(w, errBadInput(fmt.Sprintf("session %q holds no rows; append at least one block before commit", req.Session)))
		return
	}
	a := ss.assemble()
	rc.rows, rc.cols = a.Rows, a.Cols
	ctx, cancel := s.requestContext(r, req.DeadlineMS)
	defer cancel()
	// From here the streamed matrix is indistinguishable from a one-shot
	// upload: same key derivation, same cache/pool/retry/degraded pipeline,
	// same response envelope.
	key := CacheKey(a, ss.cfg)
	rc.key = key
	entry, src, ferr := s.factorEntry(ctx, rc, key, a, ss.cfg)
	if ferr != nil {
		rc.fail(w, classifyError(ferr))
		return
	}
	if src == SourceMiss {
		// A streamed factorization re-homes to the key's owners exactly like
		// a one-shot one (the commit itself always runs locally — sessions
		// are node-local state).
		s.clusterReplicate(key, a, ss.wcfg)
	}
	f := entry.F
	rc.ok(w, factorizeResponse{
		Key:              key,
		Rows:             a.Rows,
		Cols:             a.Cols,
		Cached:           src == SourceHit,
		Shared:           src == SourceShared,
		Reorthogonalized: f.Reorthogonalized,
		EngineStats: wireEngineStats{
			GemmCalls:  f.EngineStats.GemmCalls,
			Flops:      f.EngineStats.Flops,
			Overflows:  f.EngineStats.Overflows,
			Underflows: f.EngineStats.Underflows,
		},
		Hazards: rc.noteHazards(f.Hazards),
	})
}

func (s *Server) handleStreamAbort(w http.ResponseWriter, r *http.Request) {
	rc, ok := s.admit(w, r, "stream_abort")
	if !ok {
		return
	}
	var req streamAbortRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		rc.fail(w, classifyError(err))
		return
	}
	rc.key = req.Session
	if req.Session == "" {
		rc.fail(w, errBadInput("missing session"))
		return
	}
	if _, aerr := s.streams.take(req.Session, time.Now()); aerr != nil {
		rc.fail(w, aerr)
		return
	}
	s.metrics.streamAborted.Inc()
	rc.ok(w, streamAbortResponse{Session: req.Session, Aborted: true})
}

// streamReaper is the background TTL sweep, started by New and stopped by
// Close. The period divides the TTL so an abandoned session lives at most
// ~1.25 TTLs; the floor keeps tiny test TTLs from busy-spinning.
func (s *Server) streamReaper(stop <-chan struct{}) {
	period := s.opts.StreamTTL / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			s.streams.reapExpired(now)
		}
	}
}
