package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"testing"
	"time"

	"tcqr/internal/cluster"
)

// --- multi-node harness ----------------------------------------------------

// clusterHarness is an in-process tcqrd cluster: every node is a real Server
// behind a real loopback listener, so forwards, probes, replica deliveries
// and handoff all travel over actual HTTP.
type clusterHarness struct {
	t       *testing.T
	members []cluster.Member
	nodes   []*cluster.Node
	srvs    []*Server
	https   []*http.Server
	bases   []string
	client  *http.Client
	dead    []bool
}

const harnessProbe = 50 * time.Millisecond

func startCluster(t *testing.T, nNodes, replicas int) *clusterHarness {
	t.Helper()
	h := &clusterHarness{t: t, client: &http.Client{Timeout: 30 * time.Second}}
	lns := make([]net.Listener, nNodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		h.members = append(h.members, cluster.Member{ID: fmt.Sprintf("n%d", i), Addr: ln.Addr().String()})
	}
	for i := 0; i < nNodes; i++ {
		node, err := cluster.New(cluster.Config{
			SelfID:        h.members[i].ID,
			Members:       h.members,
			Replicas:      replicas,
			ProbeInterval: harnessProbe,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		srv := New(Options{Workers: 2, Window: 0, Cluster: node})
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(lns[i])
		h.nodes = append(h.nodes, node)
		h.srvs = append(h.srvs, srv)
		h.https = append(h.https, hs)
		h.bases = append(h.bases, "http://"+h.members[i].Addr)
	}
	h.dead = make([]bool, nNodes)
	t.Cleanup(func() {
		for i := range h.https {
			if !h.dead[i] {
				h.kill(i)
			}
		}
	})
	return h
}

// kill tears node i down abruptly — listener, probe loops, server — the way
// a crashed process disappears (no drain).
func (h *clusterHarness) kill(i int) {
	h.t.Helper()
	h.dead[i] = true
	h.https[i].Close()
	h.nodes[i].Close()
	h.srvs[i].Close()
}

// srvByID maps a member id back to its Server (cache inspection).
func (h *clusterHarness) srvByID(id string) *Server {
	for i, m := range h.members {
		if m.ID == id {
			return h.srvs[i]
		}
	}
	h.t.Fatalf("unknown member %q", id)
	return nil
}

func (h *clusterHarness) post(node int, path string, body any, hdr map[string]string, out any) (int, http.Header) {
	h.t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		h.t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, h.bases[node]+path, bytes.NewReader(buf))
	if err != nil {
		h.t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		h.t.Fatalf("POST %s via node %d: %v", path, node, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		h.t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			h.t.Fatalf("undecodable %s response %q: %v", path, data, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// factorize posts a matrix through the given node, returning the content key
// and which node served it ("" = the coordinator itself).
func (h *clusterHarness) factorize(node int, mat map[string]any) (key, servedBy string) {
	h.t.Helper()
	var fr factorizeReply
	code, hdr := h.post(node, "/v1/factorize", map[string]any{"matrix": mat}, nil, &fr)
	if code != 200 || fr.Key == "" {
		h.t.Fatalf("factorize via node %d: status %d key %q", node, code, fr.Key)
	}
	return fr.Key, hdr.Get(cluster.ServedByHeader)
}

// solveKey solves by key through the given node against a known true x,
// returning status and the relay header; accuracy is asserted on 200.
func (h *clusterHarness) solveKey(node int, key string, mat map[string]any, seed int) (int, string) {
	h.t.Helper()
	n := mat["cols"].(int)
	xTrue := make([]float64, n)
	for j := range xTrue {
		xTrue[j] = float64((seed+j)%5) - 2
	}
	b := matVecData(mat["rows"].(int), n, mat["data"].([]float64), xTrue)
	var sr solveReply
	code, hdr := h.post(node, "/v1/solve", map[string]any{"key": key, "b": b}, nil, &sr)
	if code == 200 {
		if d := maxDiff(sr.X, xTrue); d > 1e-6 {
			h.t.Fatalf("solve key %s via node %d: max |x-x*| = %g", key, node, d)
		}
	}
	return code, hdr.Get(cluster.ServedByHeader)
}

// awaitReplicated blocks until every owner of key holds the entry (replica
// fan-out plus handoff retries have converged).
func (h *clusterHarness) awaitReplicated(key string, timeout time.Duration) {
	h.t.Helper()
	deadline := time.Now().Add(timeout)
	for _, owner := range h.nodes[0].Owners(key) {
		srv := h.srvByID(owner.ID)
		for !srv.cache.Peek(key) {
			if time.Now().After(deadline) {
				h.t.Fatalf("owner %s never received key %s", owner.ID, key)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// clusterMat builds a deterministic well-conditioned wire matrix; distinct
// seeds give distinct cache keys.
func clusterMat(seed uint64, m, n int) map[string]any {
	data := testMatrix(seed, m, n, 1)
	for j := 0; j < n && j < m; j++ {
		data[j*m+j] += 2 // diagonal boost: comfortably full-rank
	}
	return wireMat(m, n, data)
}

// settle waits for async cluster machinery (replica fan-out, probes).
func settle() { time.Sleep(6 * harnessProbe) }

func assertInvariant(t *testing.T, n *cluster.Node) {
	t.Helper()
	st := n.Stats()
	if st.Routed != st.ServedRemote+st.ServedLocalFallback {
		t.Errorf("%s accounting: routed=%d != served_remote=%d + served_local_fallback=%d",
			n.SelfID(), st.Routed, st.ServedRemote, st.ServedLocalFallback)
	}
}

// --- routing decisions -----------------------------------------------------

func TestClusterForwardsToOwner(t *testing.T) {
	h := startCluster(t, 2, 1) // replicas=1: every key has exactly one owner
	sawLocal, sawRemote := false, false
	for seed := uint64(1); seed <= 16; seed++ {
		mat := clusterMat(seed, 24, 6)
		key, servedBy := h.factorize(0, mat)
		owner := h.nodes[0].Owners(key)[0]
		if owner.ID == "n0" {
			if servedBy != "" {
				t.Errorf("key %s owned locally but served by %q", key, servedBy)
			}
			sawLocal = true
		} else {
			if servedBy != owner.ID {
				t.Errorf("key %s owned by %s but served by %q", key, owner.ID, servedBy)
			}
			sawRemote = true
			// The owner, not the coordinator, must hold the entry.
			if !h.srvByID(owner.ID).cache.Peek(key) {
				t.Errorf("owner %s does not hold forwarded key %s", owner.ID, key)
			}
			if h.srvs[0].cache.Peek(key) {
				t.Errorf("coordinator cached forwarded key %s", key)
			}
		}
	}
	if !sawLocal || !sawRemote {
		t.Fatalf("routing did not exercise both decisions (local=%v remote=%v): suspicious ring", sawLocal, sawRemote)
	}
	assertInvariant(t, h.nodes[0])
	st := h.nodes[0].Stats()
	if st.ServedRemote == 0 || st.ServedLocalFallback != 0 {
		t.Errorf("stats = %+v: want remote serves and no fallbacks on a healthy cluster", st)
	}
}

func TestClusterForwardedRequestIsNotReforwarded(t *testing.T) {
	h := startCluster(t, 2, 1)
	// Find a matrix whose key n0 does NOT own, so an unmarked request would
	// forward; the loop-guard header must suppress that.
	for seed := uint64(1); seed < 64; seed++ {
		mat := clusterMat(seed, 24, 6)
		key, servedBy := h.factorize(1, mat) // learn the key cheaply via n1
		if servedBy != "" {
			continue // n1 forwarded it: n1 is not the owner, try another seed
		}
		if h.nodes[0].Owners(key)[0].ID != "n1" {
			continue
		}
		routedBefore := h.nodes[0].Stats().Routed
		var fr factorizeReply
		code, hdr := h.post(0, "/v1/factorize", map[string]any{"matrix": mat},
			map[string]string{cluster.ForwardHeader: "test-origin"}, &fr)
		if code != 200 {
			t.Fatalf("forward-marked factorize: status %d", code)
		}
		if hdr.Get(cluster.ServedByHeader) != "" {
			t.Errorf("forward-marked request was re-forwarded to %q", hdr.Get(cluster.ServedByHeader))
		}
		if got := h.nodes[0].Stats().Routed; got != routedBefore {
			t.Errorf("forward-marked request was counted as routed (%d -> %d)", routedBefore, got)
		}
		// Loop-guard semantics: the non-owner computed and cached locally.
		if !h.srvs[0].cache.Peek(key) {
			t.Error("forward-marked request did not populate the local cache")
		}
		return
	}
	t.Fatal("no seed produced a key owned by n1; ring distribution broken")
}

func TestClusterFallbackThenLocalHit(t *testing.T) {
	h := startCluster(t, 2, 1)
	// Find a key owned by n1 (from n0's perspective a guaranteed forward).
	var key string
	var mat map[string]any
	for seed := uint64(1); seed < 64; seed++ {
		m := clusterMat(seed, 24, 6)
		k, servedBy := h.factorize(0, m)
		if servedBy == "n1" {
			key, mat = k, m
			break
		}
	}
	if key == "" {
		t.Fatal("no key owned by n1 in 64 seeds")
	}

	h.kill(1)
	settle() // probes must notice the loss

	// The owner is gone: the same factorize now exhausts its candidates and
	// falls back to local compute — the response survives the node loss.
	var fr factorizeReply
	code, hdr := h.post(0, "/v1/factorize", map[string]any{"matrix": mat}, nil, &fr)
	if code != 200 || fr.Key != key {
		t.Fatalf("factorize after owner loss: status %d key %q", code, fr.Key)
	}
	if hdr.Get(cluster.ServedByHeader) != "" {
		t.Fatalf("served by %q, want local fallback", hdr.Get(cluster.ServedByHeader))
	}
	st := h.nodes[0].Stats()
	if st.ServedLocalFallback == 0 {
		t.Errorf("fallback not counted: %+v", st)
	}

	// Now the entry is resident locally: the next request is a local hit and
	// must not route at all.
	routedBefore := h.nodes[0].Stats().Routed
	if code, _ := h.post(0, "/v1/factorize", map[string]any{"matrix": mat}, nil, &fr); code != 200 || !fr.Cached {
		t.Fatalf("repeat factorize: status %d cached=%v", code, fr.Cached)
	}
	if got := h.nodes[0].Stats().Routed; got != routedBefore {
		t.Errorf("local hit was routed (%d -> %d)", routedBefore, got)
	}
	assertInvariant(t, h.nodes[0])
}

func TestClusterReplicationConverges(t *testing.T) {
	h := startCluster(t, 3, 2)
	keys := make(map[string]map[string]any)
	for seed := uint64(1); seed <= 6; seed++ {
		mat := clusterMat(seed, 24, 6)
		key, _ := h.factorize(int(seed)%3, mat)
		keys[key] = mat
	}
	// Every owner must eventually hold every key it owns (read-your-writes on
	// the computing node, async fan-out to the rest).
	deadline := time.Now().Add(5 * time.Second)
	for key := range keys {
		for _, owner := range h.nodes[0].Owners(key) {
			srv := h.srvByID(owner.ID)
			for !srv.cache.Peek(key) {
				if time.Now().After(deadline) {
					t.Fatalf("replica %s never received key %s", owner.ID, key)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
	}
	// And a solve-by-key through every node resolves every key.
	for key, mat := range keys {
		for node := 0; node < 3; node++ {
			if code, _ := h.solveKey(node, key, mat, node); code != 200 {
				t.Errorf("solve key %s via node %d: status %d", key, node, code)
			}
		}
	}
	for _, n := range h.nodes {
		assertInvariant(t, n)
	}
}

func TestClusterSolveByKeySurvivesPrimaryOwnerLoss(t *testing.T) {
	h := startCluster(t, 3, 2)
	mat := clusterMat(99, 32, 8)
	key, _ := h.factorize(0, mat)
	owners := h.nodes[0].Owners(key)
	settle() // replication to the second owner

	// Kill the primary owner; the replica (or handoff) must keep the key
	// resolvable through every survivor.
	var victim int
	for i, m := range h.members {
		if m.ID == owners[0].ID {
			victim = i
		}
	}
	h.kill(victim)
	settle()
	for node := 0; node < 3; node++ {
		if h.dead[node] {
			continue
		}
		if code, _ := h.solveKey(node, key, mat, node); code != 200 {
			t.Errorf("solve key via survivor n%d after primary loss: status %d", node, code)
		}
	}
	for i, n := range h.nodes {
		if !h.dead[i] {
			assertInvariant(t, n)
		}
	}
}

// --- the chaos soak --------------------------------------------------------

// TestClusterChaosSoak is the cluster tier's acceptance test: a 3-node
// in-process cluster with every cluster.* failpoint armed, keyed traffic
// through all nodes, one node killed mid-wave. It asserts
//
//   - zero lost responses: every factorize and solve answers 200 through
//     every phase, faults and node loss included;
//   - every key factored before the kill is still resolvable by solve-by-key
//     through every survivor (replica read, forward, or handoff);
//   - the forwarding accounting invariant on every survivor:
//     routed == served_remote + served_local_fallback;
//   - no handoff hints dropped;
//   - warm solve latency does not collapse after the kill (p99 within a
//     generous factor of the undisturbed phase — this guards against
//     pathological retry storms, not small jitter).
func TestClusterChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a multi-second test; skipped in -short")
	}
	arm(t, "seed=7;"+
		"cluster.route=error@p=0.1;"+
		"cluster.replicate=error@p=0.2;"+
		"cluster.probe=error@p=0.02;"+
		"cluster.handoff=error@p=0.2")

	h := startCluster(t, 3, 2)
	rng := rand.New(rand.NewSource(7))
	const keysA = 18
	type keyed struct {
		key string
		mat map[string]any
	}
	var keys []keyed

	// Phase A: factor through rotating coordinators, then warm solves with
	// latencies recorded as the undisturbed baseline.
	for i := 0; i < keysA; i++ {
		mat := clusterMat(uint64(i+1), 32, 8)
		key, _ := h.factorize(i%3, mat)
		keys = append(keys, keyed{key, mat})
	}
	settle()
	// Replication convergence barrier: with replicate and handoff faults
	// armed, fan-out takes retries; the kill below may only promise "every
	// key survives" once each key's replica (or handoff hint) has actually
	// reached a survivor. Deliveries that still fail here would mean hints
	// leaking or dropping — caught by the HandoffDropped check at the end.
	for _, k := range keys {
		h.awaitReplicated(k.key, 10*time.Second)
	}
	var cleanLat []time.Duration
	for i, k := range keys {
		node := rng.Intn(3)
		t0 := time.Now()
		code, _ := h.solveKey(node, k.key, k.mat, i)
		cleanLat = append(cleanLat, time.Since(t0))
		if code != 200 {
			t.Fatalf("phase A solve %d via n%d: status %d (lost response)", i, node, code)
		}
	}

	// Kill n2 mid-wave: half the phase B factorizes land before the
	// survivors' probes can even notice.
	for i := 0; i < 3; i++ {
		mat := clusterMat(uint64(100+i), 32, 8)
		key, _ := h.factorize(i%2, mat)
		keys = append(keys, keyed{key, mat})
		h.awaitReplicated(key, 10*time.Second)
	}
	h.kill(2)
	for i := 3; i < 6; i++ {
		mat := clusterMat(uint64(100+i), 32, 8)
		key, _ := h.factorize(i%2, mat) // must still answer 200 (fatal inside otherwise)
		keys = append(keys, keyed{key, mat})
	}
	settle()

	// Phase B: every key — pre-kill and post-kill — resolvable through every
	// survivor, with latencies recorded for the flatness check.
	var killLat []time.Duration
	for _, node := range []int{0, 1} {
		for i, k := range keys {
			t0 := time.Now()
			code, _ := h.solveKey(node, k.key, k.mat, i)
			killLat = append(killLat, time.Since(t0))
			if code != 200 {
				t.Fatalf("phase B solve key %s via survivor n%d: status %d (lost response)", k.key, node, code)
			}
		}
	}

	for _, node := range []int{0, 1} {
		assertInvariant(t, h.nodes[node])
		st := h.nodes[node].Stats()
		if st.HandoffDropped != 0 {
			t.Errorf("n%d dropped %d handoff hints", node, st.HandoffDropped)
		}
		t.Logf("n%d stats: %+v", node, st)
	}

	// Latency flatness: the kill phase's p99 must stay within a generous
	// bound of the clean phase (10x or 500ms, whichever is larger) — warm
	// cache-tier serving must not degrade into a retry storm.
	pc, pk := p99(cleanLat), p99(killLat)
	bound := 10 * pc
	if bound < 500*time.Millisecond {
		bound = 500 * time.Millisecond
	}
	t.Logf("solve p99: clean=%s kill=%s bound=%s", pc, pk, bound)
	if pk > bound {
		t.Errorf("post-kill solve p99 %s exceeds %s (clean p99 %s)", pk, bound, pc)
	}
}

func p99(lat []time.Duration) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)*99)/100]
}
