package serve

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// breaker is the degraded-mode circuit: a run of consecutive internal
// failures (recovered panics, injected faults, stage-timeout exhaustion —
// anything that surfaces as a 500 after the retry policy gave up) trips the
// server into a cooldown during which it serves from the factorization
// cache only. Cache hits — solves by key, re-factorizes of resident
// matrices — proceed normally; anything that would need a cold
// factorization (or the uncached /v1/lowrank pipeline) is rejected with
// 503, a "degraded" error code, and a Retry-After covering the remaining
// cooldown. Any success resets the streak; the cooldown expires on the
// clock. This is what keeps a poisoned pool or a repeatedly tripping
// engine from grinding every request through doomed compute while still
// answering the traffic the cache can carry.
type breaker struct {
	threshold int64         // consecutive internal failures to trip; <= 0 disables
	cooldown  time.Duration // how long a trip lasts

	streak   atomic.Int64 // consecutive internal failures since last success
	until    atomic.Int64 // unix nanos the degraded window ends; 0 = healthy
	entered  atomic.Int64 // times degraded mode was entered
	rejected atomic.Int64 // requests rejected while degraded
}

// recordFailure notes one internal (500-class) response. It returns true
// when this failure trips the breaker into degraded mode.
func (b *breaker) recordFailure() bool {
	if b.threshold <= 0 {
		return false
	}
	streak := b.streak.Add(1)
	if streak < b.threshold {
		return false
	}
	if _, degraded := b.degraded(); degraded {
		return false
	}
	b.streak.Store(0)
	b.until.Store(time.Now().Add(b.cooldown).UnixNano())
	b.entered.Add(1)
	return true
}

// recordSuccess resets the failure streak. It does not end an active
// cooldown: a trip lasts its full window so clients see a stable
// Retry-After horizon.
func (b *breaker) recordSuccess() { b.streak.Store(0) }

// degraded reports whether the breaker is inside a cooldown, and how much
// of it remains.
func (b *breaker) degraded() (remaining time.Duration, ok bool) {
	u := b.until.Load()
	if u == 0 {
		return 0, false
	}
	rem := time.Until(time.Unix(0, u))
	if rem <= 0 {
		return 0, false
	}
	return rem, true
}

// degradedError builds the 503 rejection for cold compute during a
// cooldown, with Retry-After rounded up to whole seconds (minimum 1).
func degradedError(rem time.Duration) *apiError {
	secs := int(math.Ceil(rem.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return &apiError{
		status: 503, code: "degraded",
		msg: fmt.Sprintf("serve: degraded mode: cold factorizations suspended for %s (cache hits still served)",
			rem.Round(time.Millisecond)),
		retryAfter: secs,
	}
}
