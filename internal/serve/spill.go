package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"tcqr"
	"tcqr/internal/faultinject"
	"tcqr/internal/wirefmt"
)

// The spill tier persists published cache entries under -cache-dir so a
// bounced daemon rewarms its factor cache from disk instead of inviting a
// factorize stampede. Writes are behind the serving path: publication
// (initial factorize or update epoch) enqueues the entry to a single writer
// goroutine; eviction and retirement enqueue removals. The request path
// never waits on disk.
//
// One entry is one file, <dir>/<n>.tcqs:
//
//	magic "TCQS" | version u8 | reserved u8×3 | crc32 (IEEE, payload) u32 |
//	payload length u64 | payload
//
// The payload is a wirefmt frame: [JSON spillMeta, A (f64 matrix),
// Q (widened f64 matrix), R (widened f64 matrix), column scales (vector,
// optional)]. Files are written to a .tmp sibling and atomically renamed
// into place, so a crash mid-write leaves a tmp orphan (swept at rewarm),
// never a half-written .tcqs — but a power loss after rename can still
// leave a torn file (no fsync), which is why every load is checksummed and
// torn files are quarantined, never served.
const (
	spillMagic     = "TCQS"
	spillVersion   = 1
	spillHeaderLen = 20
	spillExt       = ".tcqs"
	spillQuarExt   = ".quarantine"
)

// spillMeta is the JSON section of a spill file. The meta — not the file
// name — is authoritative for the entry's identity.
type spillMeta struct {
	Key              string `json:"key"`
	Epoch            uint64 `json:"epoch"`
	Rows             int    `json:"rows"`
	Cols             int    `json:"cols"`
	Reorthogonalized bool   `json:"reorthogonalized,omitempty"`
	HasScales        bool   `json:"has_scales,omitempty"`
	Config           struct {
		DisableTensorCore    bool `json:"no_tc,omitempty"`
		UseBFloat16          bool `json:"bf16,omitempty"`
		UseTCEC              bool `json:"tc_ec,omitempty"`
		TensorCoreInPanel    bool `json:"tc_panel,omitempty"`
		Panel                int  `json:"panel,omitempty"`
		Cutoff               int  `json:"cutoff,omitempty"`
		ReOrthogonalize      bool `json:"reorth,omitempty"`
		DisableColumnScaling bool `json:"no_scaling,omitempty"`
		OnHazard             int  `json:"on_hazard,omitempty"`
	} `json:"config"`
}

// SpillStats is a snapshot of the spill tier counters.
type SpillStats struct {
	// Writes counts entries durably spilled (tmp written, renamed).
	Writes int64 `json:"writes"`
	// WriteErrors counts failed spill attempts (the entry stays cache-only).
	WriteErrors int64 `json:"write_errors"`
	// Dropped counts enqueue attempts shed because the write-behind queue
	// was full (write-behind never blocks the serving path).
	Dropped int64 `json:"dropped"`
	// Removes counts files deleted because their entry was evicted/retired.
	Removes int64 `json:"removes"`
	// Evictions counts files deleted to keep the tier under -spill-max-bytes.
	Evictions int64 `json:"evictions"`
	// Loads / LoadErrors / Quarantined / Rewarmed describe the restart
	// rewarm pass: files read, files that failed to read, corrupt files set
	// aside as <name>.quarantine, and entries handed to the cache.
	Loads       int64 `json:"loads"`
	LoadErrors  int64 `json:"load_errors"`
	Quarantined int64 `json:"quarantined"`
	Rewarmed    int64 `json:"rewarmed"`
	// Files / BytesOnDisk gauge the tier's current footprint.
	Files       int   `json:"files"`
	BytesOnDisk int64 `json:"bytes_on_disk"`
}

// spillOp is one unit of write-behind work.
type spillOp struct {
	entry     *Entry        // write this entry (nil for remove/flush)
	removeKey string        // delete this key's file
	flush     chan struct{} // closed once every prior op has been processed
}

// spillFile tracks one on-disk file for budget accounting.
type spillFile struct {
	name string
	size int64
	seq  int64 // insertion order; lowest evicts first under the byte budget
}

// SpillTier is the write-behind disk tier behind a FactorCache.
type SpillTier struct {
	dir      string
	maxBytes int64

	queue chan spillOp
	stop  chan struct{}
	wg    sync.WaitGroup

	mu          sync.Mutex
	files       map[string]spillFile // key -> file
	seq         int64
	bytesOnDisk int64
	writes      int64
	writeErrs   int64
	dropped     int64
	removes     int64
	evictions   int64
	loads       int64
	loadErrs    int64
	quarantined int64
	rewarmed    int64
}

// NewSpillTier opens (creating if needed) the spill directory and starts
// the write-behind worker. maxBytes bounds the on-disk footprint (0 =
// unbounded); the oldest files are deleted first when over.
func NewSpillTier(dir string, maxBytes int64) (*SpillTier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	sp := &SpillTier{
		dir:      dir,
		maxBytes: maxBytes,
		queue:    make(chan spillOp, 64),
		stop:     make(chan struct{}),
		files:    make(map[string]spillFile),
	}
	sp.wg.Add(1)
	go sp.worker()
	return sp, nil
}

// Enqueue schedules e for spilling. Never blocks: a full queue sheds the
// write (counted in Dropped) rather than stalling publication.
func (sp *SpillTier) Enqueue(e *Entry) {
	select {
	case sp.queue <- spillOp{entry: e}:
	default:
		sp.mu.Lock()
		sp.dropped++
		sp.mu.Unlock()
	}
}

// Remove schedules deletion of key's spill file (entry evicted or retired).
// Called under the cache lock, so it must not touch the disk itself.
func (sp *SpillTier) Remove(key string) {
	select {
	case sp.queue <- spillOp{removeKey: key}:
	default:
		sp.mu.Lock()
		sp.dropped++
		sp.mu.Unlock()
	}
}

// Flush blocks until every op enqueued before it has been processed (tests
// and drains use it; the serving path never does).
func (sp *SpillTier) Flush() {
	done := make(chan struct{})
	select {
	case sp.queue <- spillOp{flush: done}:
		<-done
	case <-sp.stop:
	}
}

// Close stops the worker after draining already-queued ops.
func (sp *SpillTier) Close() {
	select {
	case <-sp.stop:
		return
	default:
	}
	close(sp.stop)
	sp.wg.Wait()
}

// Stats returns a snapshot of the spill counters.
func (sp *SpillTier) Stats() SpillStats {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return SpillStats{
		Writes:      sp.writes,
		WriteErrors: sp.writeErrs,
		Dropped:     sp.dropped,
		Removes:     sp.removes,
		Evictions:   sp.evictions,
		Loads:       sp.loads,
		LoadErrors:  sp.loadErrs,
		Quarantined: sp.quarantined,
		Rewarmed:    sp.rewarmed,
		Files:       len(sp.files),
		BytesOnDisk: sp.bytesOnDisk,
	}
}

func (sp *SpillTier) worker() {
	defer sp.wg.Done()
	for {
		select {
		case op := <-sp.queue:
			sp.process(op)
		case <-sp.stop:
			for {
				select {
				case op := <-sp.queue:
					sp.process(op)
				default:
					return
				}
			}
		}
	}
}

func (sp *SpillTier) process(op spillOp) {
	switch {
	case op.flush != nil:
		close(op.flush)
	case op.removeKey != "":
		sp.mu.Lock()
		f, ok := sp.files[op.removeKey]
		if ok {
			delete(sp.files, op.removeKey)
			sp.bytesOnDisk -= f.size
			sp.removes++
		}
		sp.mu.Unlock()
		if ok {
			os.Remove(filepath.Join(sp.dir, f.name))
		}
	case op.entry != nil:
		sp.write(op.entry)
	}
}

// write encodes and persists one entry, then enforces the byte budget.
func (sp *SpillTier) write(e *Entry) {
	buf, err := encodeSpillEntry(e)
	final := filepath.Join(sp.dir, spillFileName(e.Key))
	if err == nil {
		// Failpoint: models a crash (power loss after rename, before the
		// data blocks hit disk) by leaving a torn file at the final name —
		// exactly what the checksummed rewarm pass must quarantine.
		if ferr := faultinject.Fire(siteSpillWrite); ferr != nil {
			os.WriteFile(final, buf[:len(buf)/2], 0o644)
			err = ferr
		}
	}
	if err == nil {
		tmp := final + ".tmp"
		err = os.WriteFile(tmp, buf, 0o644)
		if err == nil {
			err = os.Rename(tmp, final)
			if err != nil {
				os.Remove(tmp)
			}
		}
	}
	sp.mu.Lock()
	if err != nil {
		sp.writeErrs++
		sp.mu.Unlock()
		return
	}
	sp.writes++
	if old, ok := sp.files[e.Key]; ok {
		sp.bytesOnDisk -= old.size
	}
	sp.seq++
	sp.files[e.Key] = spillFile{name: spillFileName(e.Key), size: int64(len(buf)), seq: sp.seq}
	sp.bytesOnDisk += int64(len(buf))
	victims := sp.overBudgetLocked(e.Key)
	sp.mu.Unlock()
	for _, v := range victims {
		os.Remove(filepath.Join(sp.dir, v.name))
	}
}

// overBudgetLocked pops oldest files (never keep's own) until the tier fits
// the byte budget, returning the files to delete. sp.mu must be held.
func (sp *SpillTier) overBudgetLocked(keep string) []spillFile {
	if sp.maxBytes <= 0 {
		return nil
	}
	var victims []spillFile
	for sp.bytesOnDisk > sp.maxBytes {
		oldKey, oldSeq := "", int64(-1)
		for k, f := range sp.files {
			if k == keep {
				continue
			}
			if oldSeq < 0 || f.seq < oldSeq {
				oldKey, oldSeq = k, f.seq
			}
		}
		if oldSeq < 0 {
			return victims
		}
		f := sp.files[oldKey]
		delete(sp.files, oldKey)
		sp.bytesOnDisk -= f.size
		sp.evictions++
		victims = append(victims, f)
	}
	return victims
}

// Rewarm loads every checksum-valid spill file into entries ready for
// FactorCache.AdoptRewarmed, quarantines corrupt ones (renamed to
// <name>.quarantine so the next restart does not retry them), and sweeps
// tmp orphans. Runs synchronously at daemon startup, before serving.
// Entries are returned oldest-epoch-last so the cache adopts the newest
// epoch of each series as current.
func (sp *SpillTier) Rewarm() []*Entry {
	names, err := os.ReadDir(sp.dir)
	if err != nil {
		return nil
	}
	var out []*Entry
	for _, de := range names {
		name := de.Name()
		path := filepath.Join(sp.dir, name)
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(path)
			continue
		}
		if !strings.HasSuffix(name, spillExt) {
			continue
		}
		sp.mu.Lock()
		sp.loads++
		sp.mu.Unlock()
		// Failpoint: a simulated read error skips the file without
		// quarantining it (the data may be fine; the next restart retries).
		if ferr := faultinject.Fire(siteSpillLoad); ferr != nil {
			sp.mu.Lock()
			sp.loadErrs++
			sp.mu.Unlock()
			continue
		}
		buf, err := os.ReadFile(path)
		var e *Entry
		if err == nil {
			e, err = decodeSpillEntry(buf)
		}
		if err != nil {
			sp.mu.Lock()
			sp.loadErrs++
			sp.quarantined++
			sp.mu.Unlock()
			os.Rename(path, path+spillQuarExt)
			continue
		}
		info, ierr := de.Info()
		size := int64(len(buf))
		if ierr == nil {
			size = info.Size()
		}
		sp.mu.Lock()
		sp.seq++
		sp.files[e.Key] = spillFile{name: name, size: size, seq: sp.seq}
		sp.bytesOnDisk += size
		sp.rewarmed++
		sp.mu.Unlock()
		out = append(out, e)
	}
	// Newest epoch of each series first, so AdoptRewarmed publishes it and
	// skips stale siblings.
	sort.Slice(out, func(i, j int) bool {
		bi, bj := baseKey(out[i].Key), baseKey(out[j].Key)
		if bi != bj {
			return bi < bj
		}
		return out[i].Epoch > out[j].Epoch
	})
	return out
}

// spillFileName maps a cache key to its file name. Keys are generated by
// CacheKey/versionedKey and contain only [0-9a-z@-] — safe as file names —
// but escape defensively anyway.
func spillFileName(key string) string {
	var b strings.Builder
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '@', r == '_':
			b.WriteRune(r)
		default:
			fmt.Fprintf(&b, "%%%02x", r)
		}
	}
	return b.String() + spillExt
}

// widen32 returns m's elements as a tight column-major float64 slice.
func widen32(m *tcqr.Matrix32) []float64 {
	out := make([]float64, m.Rows*m.Cols)
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		dst := out[j*m.Rows : (j+1)*m.Rows]
		for i, x := range col {
			dst[i] = float64(x)
		}
	}
	return out
}

// narrow64 rebuilds a float32 matrix from a widened column-major payload
// (exact: the payload was widened from float32).
func narrow64(rows, cols int, data []float64) *tcqr.Matrix32 {
	m := tcqr.NewMatrix32(rows, cols)
	for j := 0; j < cols; j++ {
		col := m.Col(j)
		src := data[j*rows : (j+1)*rows]
		for i, x := range src {
			col[i] = float32(x)
		}
	}
	return m
}

// encodeSpillEntry renders the full spill file (header + checksummed
// wirefmt payload) for e.
func encodeSpillEntry(e *Entry) ([]byte, error) {
	var meta spillMeta
	meta.Key = e.Key
	meta.Epoch = e.Epoch
	meta.Rows = e.A.Rows
	meta.Cols = e.A.Cols
	meta.Reorthogonalized = e.F.Reorthogonalized
	meta.HasScales = len(e.F.ColumnScales) > 0
	meta.Config.DisableTensorCore = e.Config.DisableTensorCore
	meta.Config.UseBFloat16 = e.Config.UseBFloat16
	meta.Config.UseTCEC = e.Config.UseTCEC
	meta.Config.TensorCoreInPanel = e.Config.TensorCoreInPanel
	meta.Config.Panel = int(e.Config.Panel)
	meta.Config.Cutoff = e.Config.Cutoff
	meta.Config.ReOrthogonalize = e.Config.ReOrthogonalize
	meta.Config.DisableColumnScaling = e.Config.DisableColumnScaling
	meta.Config.OnHazard = int(e.Config.OnHazard)
	mj, err := json.Marshal(meta)
	if err != nil {
		return nil, err
	}
	secs := []wirefmt.Section{
		wirefmt.JSONSection(mj),
		wirefmt.MatrixSection(e.A.Rows, e.A.Cols, colMajorData(e.A)),
		wirefmt.MatrixSection(e.F.Q.Rows, e.F.Q.Cols, widen32(e.F.Q)),
		wirefmt.MatrixSection(e.F.R.Rows, e.F.R.Cols, widen32(e.F.R)),
	}
	if meta.HasScales {
		scales := make([]float64, len(e.F.ColumnScales))
		for i, s := range e.F.ColumnScales {
			scales[i] = float64(s)
		}
		secs = append(secs, wirefmt.VectorSection(scales))
	}
	n, err := wirefmt.FrameLen(secs...)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, spillHeaderLen, spillHeaderLen+n)
	buf, err = wirefmt.AppendFrame(buf, secs...)
	if err != nil {
		return nil, err
	}
	copy(buf[0:4], spillMagic)
	buf[4] = spillVersion
	payload := buf[spillHeaderLen:]
	binary.LittleEndian.PutUint32(buf[8:12], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint64(buf[12:20], uint64(len(payload)))
	return buf, nil
}

// decodeSpillEntry validates and decodes one spill file. Any mismatch —
// magic, version, length, checksum, frame structure — is an error; the
// caller quarantines the file.
func decodeSpillEntry(buf []byte) (*Entry, error) {
	if len(buf) < spillHeaderLen || string(buf[0:4]) != spillMagic {
		return nil, fmt.Errorf("spill: bad magic")
	}
	if buf[4] != spillVersion {
		return nil, fmt.Errorf("spill: unsupported version %d", buf[4])
	}
	want := binary.LittleEndian.Uint64(buf[12:20])
	payload := buf[spillHeaderLen:]
	if uint64(len(payload)) != want {
		return nil, fmt.Errorf("spill: torn file: %d payload bytes, header says %d", len(payload), want)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(buf[8:12]) {
		return nil, fmt.Errorf("spill: checksum mismatch")
	}
	secs, err := wirefmt.Decode(payload, nil)
	if err != nil {
		return nil, err
	}
	js := wirefmt.FindSection(secs, wirefmt.TagJSON)
	if js == nil {
		return nil, fmt.Errorf("spill: missing meta section")
	}
	var meta spillMeta
	if err := json.Unmarshal(js.Raw, &meta); err != nil {
		return nil, err
	}
	if meta.Key == "" || meta.Rows <= 0 || meta.Cols <= 0 {
		return nil, fmt.Errorf("spill: invalid meta")
	}
	var mats []*wirefmt.Section
	var vec *wirefmt.Section
	for i := range secs {
		switch secs[i].Tag {
		case wirefmt.TagMatrix:
			mats = append(mats, &secs[i])
		case wirefmt.TagVector:
			vec = &secs[i]
		}
	}
	if len(mats) != 3 {
		return nil, fmt.Errorf("spill: want 3 matrix sections, got %d", len(mats))
	}
	aSec, qSec, rSec := mats[0], mats[1], mats[2]
	if int(aSec.A) != meta.Rows || int(aSec.B) != meta.Cols {
		return nil, fmt.Errorf("spill: A section %dx%d, meta says %dx%d", aSec.A, aSec.B, meta.Rows, meta.Cols)
	}
	if int(qSec.A) != meta.Rows || int(qSec.B) != meta.Cols || int(rSec.A) != meta.Cols || int(rSec.B) != meta.Cols {
		return nil, fmt.Errorf("spill: factor sections %dx%d / %dx%d inconsistent with %dx%d",
			qSec.A, qSec.B, rSec.A, rSec.B, meta.Rows, meta.Cols)
	}
	a := tcqr.FromColMajor(meta.Rows, meta.Cols, append([]float64(nil), aSec.Float64s()...))
	f := &tcqr.Factorization{
		Q:                narrow64(meta.Rows, meta.Cols, qSec.Float64s()),
		R:                narrow64(meta.Cols, meta.Cols, rSec.Float64s()),
		Reorthogonalized: meta.Reorthogonalized,
	}
	if meta.HasScales {
		if vec == nil || int(vec.A) != meta.Cols {
			return nil, fmt.Errorf("spill: missing or misshapen scales section")
		}
		f.ColumnScales = make([]float32, meta.Cols)
		for i, s := range vec.Float64s() {
			f.ColumnScales[i] = float32(s)
		}
	}
	var cfg tcqr.Config
	cfg.DisableTensorCore = meta.Config.DisableTensorCore
	cfg.UseBFloat16 = meta.Config.UseBFloat16
	cfg.UseTCEC = meta.Config.UseTCEC
	cfg.TensorCoreInPanel = meta.Config.TensorCoreInPanel
	cfg.Panel = tcqr.PanelAlgorithm(meta.Config.Panel)
	cfg.Cutoff = meta.Config.Cutoff
	cfg.ReOrthogonalize = meta.Config.ReOrthogonalize
	cfg.DisableColumnScaling = meta.Config.DisableColumnScaling
	cfg.OnHazard = tcqr.HazardPolicy(meta.Config.OnHazard)
	return &Entry{Key: meta.Key, Epoch: meta.Epoch, A: a, F: f, Config: cfg}, nil
}
