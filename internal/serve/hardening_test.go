package serve

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tcqr"
	"tcqr/internal/wirefmt"
)

// --- overflow-safe matrix validation ---------------------------------------

// TestWireMatrixOverflowRejected sends dimensions whose product wraps the
// int multiplication (rows=cols=2^32 multiplies to 0, matching empty data).
// Before the division-based shape check this produced a bogus Matrix that
// panicked on first element access — killing the whole daemon via the
// /v1/lowrank pool worker.
func TestWireMatrixOverflowRejected(t *testing.T) {
	s := New(Options{Workers: 1})
	h := s.Handler()
	huge := int64(1) << 32
	mat := map[string]any{"rows": huge, "cols": huge, "data": []float64{}}
	cases := []struct {
		path string
		body map[string]any
	}{
		{"/v1/factorize", map[string]any{"matrix": mat}},
		{"/v1/solve", map[string]any{"matrix": mat, "b": []float64{1}}},
		{"/v1/lowrank", map[string]any{"matrix": mat, "rank": 1}},
	}
	for _, tc := range cases {
		var er envelope
		code, _ := post(t, h, tc.path, tc.body, &er)
		if code != 400 || er.Error.Code != "bad_input" {
			t.Fatalf("%s with 2^32 x 2^32 matrix: got %d %q, want 400 bad_input", tc.path, code, er.Error.Code)
		}
	}
	// The daemon must still be alive and serving after the attempts.
	m, n := 16, 4
	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, testMatrix(90, m, n, 1))}, &fr); code != 200 {
		t.Fatalf("factorize after overflow probes: code=%d", code)
	}
}

func TestWireMatrixShapeMismatchRejected(t *testing.T) {
	for _, tc := range []struct {
		name string
		w    WireMatrix
	}{
		{"empty data", WireMatrix{Rows: 3, Cols: 5}},
		{"short data", WireMatrix{Rows: 3, Cols: 5, Data: make([]float64, 14)}},
		{"long data", WireMatrix{Rows: 3, Cols: 5, Data: make([]float64, 16)}},
		{"transposed count ok", WireMatrix{Rows: 3, Cols: 5, Data: make([]float64, 15)}},
	} {
		_, err := tc.w.matrix()
		if tc.name == "transposed count ok" {
			if err != nil {
				t.Fatalf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("%s: want bad_input, got nil", tc.name)
		}
	}
}

// --- pool panic containment ------------------------------------------------

func TestPoolSurvivesPanic(t *testing.T) {
	p := NewPool(1, 4)
	_, err := p.Do(context.Background(), func() { panic("boom") })
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Do with panicking fn: err=%v, want panic error", err)
	}
	// The worker must have survived and keep serving.
	ran := false
	if _, err := p.Do(context.Background(), func() { ran = true }); err != nil || !ran {
		t.Fatalf("Do after panic: err=%v ran=%v", err, ran)
	}
	st := p.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("pool counters after panic: %+v", st)
	}
}

// TestServerSurvivesBackendPanic routes a panicking backend through every
// compute endpoint: each request must fail as 500 internal and the server
// (including singleflight followers on the same key) must stay responsive.
func TestServerSurvivesBackendPanic(t *testing.T) {
	s := New(Options{Workers: 2, Backend: panicBackend{}})
	h := s.Handler()
	m, n := 16, 4
	mat := wireMat(m, n, testMatrix(91, m, n, 1))

	var wg sync.WaitGroup
	codes := make([]int, 4)
	envs := make([]envelope, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = post(t, h, "/v1/factorize", map[string]any{"matrix": mat}, &envs[i])
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != 500 || envs[i].Error.Code != "internal" {
			t.Fatalf("factorize %d against panicking backend: got %d %q, want 500 internal", i, code, envs[i].Error.Code)
		}
	}

	var er envelope
	if code, _ := post(t, h, "/v1/lowrank", map[string]any{"matrix": mat, "rank": 2}, &er); code != 500 || er.Error.Code != "internal" {
		t.Fatalf("lowrank against panicking backend: got %d %q, want 500 internal", code, er.Error.Code)
	}
	if code := get(t, h, "/healthz", nil); code != 200 {
		t.Fatalf("healthz after backend panics: code=%d", code)
	}
}

// panicBackend panics on every compute call.
type panicBackend struct{}

func (panicBackend) Factorize(*tcqr.Matrix32, tcqr.Config) (*tcqr.Factorization, error) {
	panic("factorize exploded")
}
func (panicBackend) SolveWithFactor(*tcqr.Factorization, *tcqr.Matrix, []float64, tcqr.SolveOptions) (*tcqr.LeastSquaresResult, error) {
	panic("solve exploded")
}
func (panicBackend) SolveMultiWithFactor(*tcqr.Factorization, *tcqr.Matrix, *tcqr.Matrix, tcqr.SolveOptions) (*tcqr.MultiResult, error) {
	panic("multi-solve exploded")
}
func (panicBackend) LowRank(*tcqr.Matrix32, int, tcqr.Config) (*tcqr.LowRankApprox, error) {
	panic("lowrank exploded")
}

// --- drain / AwaitIdle ------------------------------------------------------

// TestAwaitIdleWaitsForDequeuedTask guards the worker's counter ordering:
// inFlight must rise before queued falls, so AwaitIdle can never report
// idle while a dequeued task is about to run (the graceful-drain "exited
// mid-solve" race).
func TestAwaitIdleWaitsForDequeuedTask(t *testing.T) {
	for round := 0; round < 50; round++ {
		const workers, n = 2, 6
		p := NewPool(workers, 16)
		release := make(chan struct{})
		var finished atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, _ = p.Do(context.Background(), func() {
					<-release
					time.Sleep(50 * time.Microsecond)
					finished.Add(1)
				})
			}()
		}
		// Both workers are parked on the gate and the rest sit queued: wait
		// for that stable state, then drain and release. The workers' next
		// dequeues now race AwaitIdle's polling — exactly the window where
		// the old queued-before-inFlight ordering reported idle early.
		for {
			st := p.Stats()
			if st.InFlight == workers && st.Queued == n-workers {
				break
			}
			runtime.Gosched()
		}
		p.BeginDrain()
		idle := make(chan error, 1)
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			idle <- p.AwaitIdle(ctx)
		}()
		close(release)
		if err := <-idle; err != nil {
			t.Fatalf("round %d: AwaitIdle: %v", round, err)
		}
		if got := finished.Load(); got != n {
			t.Fatalf("round %d: AwaitIdle returned with %d/%d tasks finished", round, got, n)
		}
		wg.Wait()
	}
}

// --- solve key+config conflict ---------------------------------------------

func TestSolveKeyWithConfigRejected(t *testing.T) {
	s := New(Options{Workers: 1})
	h := s.Handler()
	m, n := 32, 8
	mat := wireMat(m, n, testMatrix(92, m, n, 1))
	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": mat}, &fr); code != 200 {
		t.Fatalf("factorize: code=%d", code)
	}
	var er envelope
	code, _ := post(t, h, "/v1/solve",
		map[string]any{"key": fr.Key, "config": map[string]any{"engine": "fp32"}, "b": make([]float64, m)}, &er)
	if code != 400 || er.Error.Code != "bad_input" {
		t.Fatalf("key+config solve: got %d %q, want 400 bad_input", code, er.Error.Code)
	}
	// A bare key (zero config) still solves against the cached entry.
	var sr solveReply
	if code, _ := post(t, h, "/v1/solve", map[string]any{"key": fr.Key, "b": make([]float64, m)}, &sr); code != 200 {
		t.Fatalf("key-only solve after rejection: code=%d", code)
	}
}

// --- stream session hygiene -------------------------------------------------

// TestStreamAbandonedSessionsReaped is the regression test for chunked-upload
// session leaks: sessions are deadline-bounded (a begin-without-commit client
// cannot park row blocks forever), the drain path reaps everything that is
// still open, and because binary appends copy row data out of the pooled
// frame buffer inside the handler, an abandoned session can never hold a
// wirefmt pool buffer hostage.
func TestStreamAbandonedSessionsReaped(t *testing.T) {
	s := New(Options{Workers: 1, StreamTTL: 25 * time.Millisecond})
	defer s.Close()
	h := s.Handler()

	// Three sessions: one abandoned mid-upload (with a binary append, so the
	// pooled-buffer path is exercised), one abandoned right after begin, one
	// kept alive by appends past the others' expiry.
	begin := func() string {
		t.Helper()
		var br streamBeginReply
		if code, _ := post(t, h, "/v1/factorize/stream/begin", map[string]any{"cols": 2}, &br); code != 200 {
			t.Fatalf("begin status %d", code)
		}
		return br.Session
	}
	abandonedMid, abandonedFresh, live := begin(), begin(), begin()

	body := frameBody(t, map[string]any{"session": abandonedMid},
		wirefmt.MatrixSection(2, 2, []float64{1, 2, 3, 4}))
	if rec := postFrame(t, h, "/v1/factorize/stream/append", body, "application/json"); rec.Code != 200 {
		t.Fatalf("binary append status %d: %s", rec.Code, rec.Body.String())
	}

	// Keep the live session's deadline fresh until the abandoned two expire.
	deadline := time.Now().Add(5 * time.Second)
	for s.streams.len() > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("abandoned sessions not reaped; %d still open", s.streams.len())
		}
		if code, _ := post(t, h, "/v1/factorize/stream/append",
			map[string]any{"session": live, "block": wireMat(1, 2, []float64{5, 6})}, nil); code != 200 {
			t.Fatalf("live append status %d", code)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.metrics.streamReaped.Value(); got != 2 {
		t.Errorf("reaped counter = %d, want 2", got)
	}
	for _, id := range []string{abandonedMid, abandonedFresh} {
		var env envelope
		code, _ := post(t, h, "/v1/factorize/stream/append",
			map[string]any{"session": id, "block": wireMat(1, 2, []float64{0, 0})}, &env)
		if code != 404 || env.Error.Code != "unknown_stream" {
			t.Errorf("append to reaped session: status %d code %q, want 404 unknown_stream", code, env.Error.Code)
		}
	}

	// The surviving session still commits: reaping is per-session, not global.
	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize/stream/commit", map[string]any{"session": live}, &fr); code != 200 {
		t.Fatalf("live session commit status %d", code)
	}

	// Drain reaps whatever is open and rejects new begins.
	leftover := begin()
	s.BeginDrain()
	if got := s.streams.len(); got != 0 {
		t.Fatalf("%d sessions open after BeginDrain, want 0", got)
	}
	var env envelope
	if code, _ := post(t, h, "/v1/factorize/stream/commit", map[string]any{"session": leftover}, &env); code != 503 {
		t.Errorf("commit while draining: status %d, want 503", code)
	}
	if code, _ := post(t, h, "/v1/factorize/stream/begin", map[string]any{"cols": 2}, &env); code != 503 || env.Error.Code != "draining" {
		t.Errorf("begin while draining: status %d code %q, want 503 draining", code, env.Error.Code)
	}

	// Lifecycle accounting closes: every begun session ended exactly one way.
	begun := s.metrics.streamBegun.Value()
	ended := s.metrics.streamCommitted.Value() + s.metrics.streamAborted.Value() + s.metrics.streamReaped.Value()
	if begun != ended || begun != 4 {
		t.Errorf("session accounting: begun %d, ended %d (committed %d aborted %d reaped %d)",
			begun, ended, s.metrics.streamCommitted.Value(), s.metrics.streamAborted.Value(), s.metrics.streamReaped.Value())
	}
}
