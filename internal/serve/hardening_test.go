package serve

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tcqr"
)

// --- overflow-safe matrix validation ---------------------------------------

// TestWireMatrixOverflowRejected sends dimensions whose product wraps the
// int multiplication (rows=cols=2^32 multiplies to 0, matching empty data).
// Before the division-based shape check this produced a bogus Matrix that
// panicked on first element access — killing the whole daemon via the
// /v1/lowrank pool worker.
func TestWireMatrixOverflowRejected(t *testing.T) {
	s := New(Options{Workers: 1})
	h := s.Handler()
	huge := int64(1) << 32
	mat := map[string]any{"rows": huge, "cols": huge, "data": []float64{}}
	cases := []struct {
		path string
		body map[string]any
	}{
		{"/v1/factorize", map[string]any{"matrix": mat}},
		{"/v1/solve", map[string]any{"matrix": mat, "b": []float64{1}}},
		{"/v1/lowrank", map[string]any{"matrix": mat, "rank": 1}},
	}
	for _, tc := range cases {
		var er envelope
		code, _ := post(t, h, tc.path, tc.body, &er)
		if code != 400 || er.Error.Code != "bad_input" {
			t.Fatalf("%s with 2^32 x 2^32 matrix: got %d %q, want 400 bad_input", tc.path, code, er.Error.Code)
		}
	}
	// The daemon must still be alive and serving after the attempts.
	m, n := 16, 4
	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, testMatrix(90, m, n, 1))}, &fr); code != 200 {
		t.Fatalf("factorize after overflow probes: code=%d", code)
	}
}

func TestWireMatrixShapeMismatchRejected(t *testing.T) {
	for _, tc := range []struct {
		name string
		w    WireMatrix
	}{
		{"empty data", WireMatrix{Rows: 3, Cols: 5}},
		{"short data", WireMatrix{Rows: 3, Cols: 5, Data: make([]float64, 14)}},
		{"long data", WireMatrix{Rows: 3, Cols: 5, Data: make([]float64, 16)}},
		{"transposed count ok", WireMatrix{Rows: 3, Cols: 5, Data: make([]float64, 15)}},
	} {
		_, err := tc.w.matrix()
		if tc.name == "transposed count ok" {
			if err != nil {
				t.Fatalf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("%s: want bad_input, got nil", tc.name)
		}
	}
}

// --- pool panic containment ------------------------------------------------

func TestPoolSurvivesPanic(t *testing.T) {
	p := NewPool(1, 4)
	_, err := p.Do(context.Background(), func() { panic("boom") })
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Do with panicking fn: err=%v, want panic error", err)
	}
	// The worker must have survived and keep serving.
	ran := false
	if _, err := p.Do(context.Background(), func() { ran = true }); err != nil || !ran {
		t.Fatalf("Do after panic: err=%v ran=%v", err, ran)
	}
	st := p.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("pool counters after panic: %+v", st)
	}
}

// TestServerSurvivesBackendPanic routes a panicking backend through every
// compute endpoint: each request must fail as 500 internal and the server
// (including singleflight followers on the same key) must stay responsive.
func TestServerSurvivesBackendPanic(t *testing.T) {
	s := New(Options{Workers: 2, Backend: panicBackend{}})
	h := s.Handler()
	m, n := 16, 4
	mat := wireMat(m, n, testMatrix(91, m, n, 1))

	var wg sync.WaitGroup
	codes := make([]int, 4)
	envs := make([]envelope, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = post(t, h, "/v1/factorize", map[string]any{"matrix": mat}, &envs[i])
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != 500 || envs[i].Error.Code != "internal" {
			t.Fatalf("factorize %d against panicking backend: got %d %q, want 500 internal", i, code, envs[i].Error.Code)
		}
	}

	var er envelope
	if code, _ := post(t, h, "/v1/lowrank", map[string]any{"matrix": mat, "rank": 2}, &er); code != 500 || er.Error.Code != "internal" {
		t.Fatalf("lowrank against panicking backend: got %d %q, want 500 internal", code, er.Error.Code)
	}
	if code := get(t, h, "/healthz", nil); code != 200 {
		t.Fatalf("healthz after backend panics: code=%d", code)
	}
}

// panicBackend panics on every compute call.
type panicBackend struct{}

func (panicBackend) Factorize(*tcqr.Matrix32, tcqr.Config) (*tcqr.Factorization, error) {
	panic("factorize exploded")
}
func (panicBackend) SolveWithFactor(*tcqr.Factorization, *tcqr.Matrix, []float64, tcqr.SolveOptions) (*tcqr.LeastSquaresResult, error) {
	panic("solve exploded")
}
func (panicBackend) SolveMultiWithFactor(*tcqr.Factorization, *tcqr.Matrix, *tcqr.Matrix, tcqr.SolveOptions) (*tcqr.MultiResult, error) {
	panic("multi-solve exploded")
}
func (panicBackend) LowRank(*tcqr.Matrix32, int, tcqr.Config) (*tcqr.LowRankApprox, error) {
	panic("lowrank exploded")
}

// --- drain / AwaitIdle ------------------------------------------------------

// TestAwaitIdleWaitsForDequeuedTask guards the worker's counter ordering:
// inFlight must rise before queued falls, so AwaitIdle can never report
// idle while a dequeued task is about to run (the graceful-drain "exited
// mid-solve" race).
func TestAwaitIdleWaitsForDequeuedTask(t *testing.T) {
	for round := 0; round < 50; round++ {
		const workers, n = 2, 6
		p := NewPool(workers, 16)
		release := make(chan struct{})
		var finished atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, _ = p.Do(context.Background(), func() {
					<-release
					time.Sleep(50 * time.Microsecond)
					finished.Add(1)
				})
			}()
		}
		// Both workers are parked on the gate and the rest sit queued: wait
		// for that stable state, then drain and release. The workers' next
		// dequeues now race AwaitIdle's polling — exactly the window where
		// the old queued-before-inFlight ordering reported idle early.
		for {
			st := p.Stats()
			if st.InFlight == workers && st.Queued == n-workers {
				break
			}
			runtime.Gosched()
		}
		p.BeginDrain()
		idle := make(chan error, 1)
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			idle <- p.AwaitIdle(ctx)
		}()
		close(release)
		if err := <-idle; err != nil {
			t.Fatalf("round %d: AwaitIdle: %v", round, err)
		}
		if got := finished.Load(); got != n {
			t.Fatalf("round %d: AwaitIdle returned with %d/%d tasks finished", round, got, n)
		}
		wg.Wait()
	}
}

// --- solve key+config conflict ---------------------------------------------

func TestSolveKeyWithConfigRejected(t *testing.T) {
	s := New(Options{Workers: 1})
	h := s.Handler()
	m, n := 32, 8
	mat := wireMat(m, n, testMatrix(92, m, n, 1))
	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": mat}, &fr); code != 200 {
		t.Fatalf("factorize: code=%d", code)
	}
	var er envelope
	code, _ := post(t, h, "/v1/solve",
		map[string]any{"key": fr.Key, "config": map[string]any{"engine": "fp32"}, "b": make([]float64, m)}, &er)
	if code != 400 || er.Error.Code != "bad_input" {
		t.Fatalf("key+config solve: got %d %q, want 400 bad_input", code, er.Error.Code)
	}
	// A bare key (zero config) still solves against the cached entry.
	var sr solveReply
	if code, _ := post(t, h, "/v1/solve", map[string]any{"key": fr.Key, "b": make([]float64, m)}, &sr); code != 200 {
		t.Fatalf("key-only solve after rejection: code=%d", code)
	}
}
