package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tcqr"
)

// --- test plumbing ---------------------------------------------------------

// testMatrix returns deterministic column-major data in [-0.5, 0.5) with the
// last column scaled by lastColScale. Distinct seeds give distinct matrices
// (and therefore distinct cache keys).
func testMatrix(seed uint64, m, n int, lastColScale float64) []float64 {
	s := seed*0x9E3779B97F4A7C15 + 1
	data := make([]float64, m*n)
	for i := range data {
		s = s*6364136223846793005 + 1442695040888963407
		data[i] = float64(s>>11)/float64(uint64(1)<<53) - 0.5
	}
	for i := (n - 1) * m; i < n*m; i++ {
		data[i] *= lastColScale
	}
	return data
}

func wireMat(m, n int, data []float64) map[string]any {
	return map[string]any{"rows": m, "cols": n, "data": data}
}

// matVecData computes A·x for column-major data.
func matVecData(m, n int, data, x []float64) []float64 {
	b := make([]float64, m)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			b[i] += data[j*m+i] * x[j]
		}
	}
	return b
}

// post drives one request through the handler in-process and decodes the
// response body into out (which may be nil).
func post(t *testing.T, h http.Handler, path string, body any, out any) (int, http.Header) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("undecodable %s response %q: %v", path, rec.Body.String(), err)
		}
	}
	return rec.Code, rec.Header()
}

func get(t *testing.T, h http.Handler, path string, out any) int {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("undecodable %s response %q: %v", path, rec.Body.String(), err)
		}
	}
	return rec.Code
}

// errCode extracts error.code from an error envelope.
type envelope struct {
	Error struct {
		Code    string       `json:"code"`
		Message string       `json:"message"`
		Hazards []WireHazard `json:"hazards"`
	} `json:"error"`
}

type solveReply struct {
	X          []float64    `json:"x"`
	Iterations int          `json:"iterations"`
	Converged  bool         `json:"converged"`
	Optimality float64      `json:"optimality"`
	Key        string       `json:"key"`
	Cached     bool         `json:"cached"`
	Batched    int          `json:"batched"`
	Hazards    []WireHazard `json:"hazards"`
}

type factorizeReply struct {
	Key              string       `json:"key"`
	Rows             int          `json:"rows"`
	Cols             int          `json:"cols"`
	Cached           bool         `json:"cached"`
	Shared           bool         `json:"shared"`
	Reorthogonalized bool         `json:"reorthogonalized"`
	Hazards          []WireHazard `json:"hazards"`
}

// countingBackend wraps the real library and counts (and optionally gates)
// each Backend call.
type countingBackend struct {
	inner      Backend
	factorize  atomic.Int64
	solve      atomic.Int64
	solveMulti atomic.Int64
	lowRank    atomic.Int64
	// gate, when non-nil, blocks Factorize until released (admission tests).
	gate chan struct{}
}

func (c *countingBackend) Factorize(a *tcqr.Matrix32, cfg tcqr.Config) (*tcqr.Factorization, error) {
	c.factorize.Add(1)
	if c.gate != nil {
		<-c.gate
	}
	return c.inner.Factorize(a, cfg)
}

func (c *countingBackend) SolveWithFactor(f *tcqr.Factorization, a *tcqr.Matrix, b []float64, opts tcqr.SolveOptions) (*tcqr.LeastSquaresResult, error) {
	c.solve.Add(1)
	return c.inner.SolveWithFactor(f, a, b, opts)
}

func (c *countingBackend) SolveMultiWithFactor(f *tcqr.Factorization, a *tcqr.Matrix, b *tcqr.Matrix, opts tcqr.SolveOptions) (*tcqr.MultiResult, error) {
	c.solveMulti.Add(1)
	return c.inner.SolveMultiWithFactor(f, a, b, opts)
}

func (c *countingBackend) LowRank(a *tcqr.Matrix32, rank int, cfg tcqr.Config) (*tcqr.LowRankApprox, error) {
	c.lowRank.Add(1)
	return c.inner.LowRank(a, rank, cfg)
}

func maxDiff(got, want []float64) float64 {
	if len(got) != len(want) {
		return math.Inf(1)
	}
	d := 0.0
	for i := range got {
		if e := math.Abs(got[i] - want[i]); e > d {
			d = e
		}
	}
	return d
}

// --- cache + factorize -----------------------------------------------------

func TestFactorizeColdThenCached(t *testing.T) {
	s := New(Options{Workers: 2})
	h := s.Handler()
	m, n := 64, 16
	mat := wireMat(m, n, testMatrix(1, m, n, 1))

	var fr factorizeReply
	code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": mat}, &fr)
	if code != 200 || fr.Key == "" || fr.Cached || fr.Shared {
		t.Fatalf("cold factorize: code=%d reply=%+v", code, fr)
	}
	if fr.Rows != m || fr.Cols != n {
		t.Fatalf("echoed shape %dx%d, want %dx%d", fr.Rows, fr.Cols, m, n)
	}
	key := fr.Key

	code, _ = post(t, h, "/v1/factorize", map[string]any{"matrix": mat}, &fr)
	if code != 200 || !fr.Cached || fr.Key != key {
		t.Fatalf("repeat factorize: code=%d reply=%+v want cached with key %s", code, fr, key)
	}

	cs := s.Cache().Stats()
	if cs.Misses != 1 || cs.Hits < 1 || cs.Entries != 1 {
		t.Fatalf("cache stats after hit: %+v", cs)
	}

	// A different config must produce a different key (same matrix bits).
	code, _ = post(t, h, "/v1/factorize", map[string]any{"matrix": mat,
		"config": map[string]any{"engine": "bf16"}}, &fr)
	if code != 200 || fr.Cached || fr.Key == key {
		t.Fatalf("bf16 factorize should miss with a new key: code=%d reply=%+v", code, fr)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	s := New(Options{Workers: 1, CacheEntries: 2})
	h := s.Handler()
	m, n := 48, 8
	keys := make([]string, 3)
	for i := 0; i < 3; i++ {
		var fr factorizeReply
		code, _ := post(t, h, "/v1/factorize",
			map[string]any{"matrix": wireMat(m, n, testMatrix(uint64(i+10), m, n, 1))}, &fr)
		if code != 200 {
			t.Fatalf("factorize %d: code=%d", i, code)
		}
		keys[i] = fr.Key
	}
	// Capacity 2: the first key must have been evicted.
	var er envelope
	code, _ := post(t, h, "/v1/solve", map[string]any{"key": keys[0], "b": make([]float64, m)}, &er)
	if code != 404 || er.Error.Code != "unknown_key" {
		t.Fatalf("evicted key should 404 unknown_key, got code=%d %+v", code, er.Error)
	}
	if ev := s.Cache().Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestSingleflightDedup(t *testing.T) {
	be := &countingBackend{inner: LibraryBackend{}, gate: make(chan struct{})}
	s := New(Options{Workers: 8, Backend: be})
	h := s.Handler()
	m, n := 64, 16
	mat := wireMat(m, n, testMatrix(2, m, n, 1))

	const clients = 8
	replies := make([]factorizeReply, clients)
	codes := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = post(t, h, "/v1/factorize", map[string]any{"matrix": mat}, &replies[i])
		}(i)
	}
	// Hold the gate until one leader has started factoring and the other
	// seven are parked on its flight — then the dedup assertion is exact.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cs := s.Cache().Stats()
		if cs.Misses == 1 && cs.SingleflightShared == clients-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for singleflight parking: %+v", cs)
		}
		time.Sleep(time.Millisecond)
	}
	close(be.gate)
	wg.Wait()

	if got := be.factorize.Load(); got != 1 {
		t.Fatalf("backend.Factorize called %d times for %d identical requests, want 1", got, clients)
	}
	leaders, shared := 0, 0
	for i := 0; i < clients; i++ {
		if codes[i] != 200 {
			t.Fatalf("request %d: code=%d", i, codes[i])
		}
		if replies[i].Key != replies[0].Key {
			t.Fatalf("request %d got key %q, want %q", i, replies[i].Key, replies[0].Key)
		}
		switch {
		case !replies[i].Cached && !replies[i].Shared:
			leaders++
		case replies[i].Shared:
			shared++
		}
	}
	if leaders != 1 || shared != clients-1 {
		t.Fatalf("leaders=%d shared=%d, want 1 and %d", leaders, shared, clients-1)
	}
}

// --- solve + coalescing ----------------------------------------------------

func TestSolveByKeyAccuracy(t *testing.T) {
	s := New(Options{Workers: 2}) // Window 0: solo solves
	h := s.Handler()
	m, n := 96, 24
	data := testMatrix(3, m, n, 1)
	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data)}, &fr); code != 200 {
		t.Fatalf("factorize: code=%d", code)
	}

	xTrue := make([]float64, n)
	for j := range xTrue {
		xTrue[j] = float64(j%7) - 3
	}
	b := matVecData(m, n, data, xTrue)
	var sr solveReply
	code, hdr := post(t, h, "/v1/solve", map[string]any{"key": fr.Key, "b": b}, &sr)
	if code != 200 || !sr.Converged || sr.Batched != 1 || !sr.Cached {
		t.Fatalf("solve: code=%d reply=%+v", code, sr)
	}
	if d := maxDiff(sr.X, xTrue); d > 1e-6 {
		t.Fatalf("solution error %g > 1e-6 (optimality %g)", d, sr.Optimality)
	}
	st := hdr.Get("Server-Timing")
	if !strings.Contains(st, "queue;dur=") || !strings.Contains(st, "solve;dur=") || !strings.Contains(st, "encode;dur=") {
		t.Fatalf("Server-Timing %q missing queue/solve/encode stages", st)
	}
	// The stages must appear in canonical pipeline order.
	if qi, si := strings.Index(st, "queue;"), strings.Index(st, "solve;"); qi > si {
		t.Fatalf("Server-Timing %q out of order", st)
	}
}

func TestSolveByMatrixFactorsInline(t *testing.T) {
	be := &countingBackend{inner: LibraryBackend{}}
	s := New(Options{Workers: 2, Backend: be})
	h := s.Handler()
	m, n := 64, 16
	data := testMatrix(4, m, n, 1)
	xTrue := make([]float64, n)
	for j := range xTrue {
		xTrue[j] = 1 + float64(j)
	}
	req := map[string]any{"matrix": wireMat(m, n, data), "b": matVecData(m, n, data, xTrue)}

	var sr solveReply
	code, _ := post(t, h, "/v1/solve", req, &sr)
	if code != 200 || sr.Cached || sr.Key == "" {
		t.Fatalf("first solve-by-matrix: code=%d reply=%+v", code, sr)
	}
	if d := maxDiff(sr.X, xTrue); d > 1e-6 {
		t.Fatalf("solution error %g > 1e-6", d)
	}
	code, _ = post(t, h, "/v1/solve", req, &sr)
	if code != 200 || !sr.Cached {
		t.Fatalf("second solve-by-matrix should hit the cache: code=%d reply=%+v", code, sr)
	}
	if got := be.factorize.Load(); got != 1 {
		t.Fatalf("backend.Factorize called %d times, want 1 (second solve must reuse)", got)
	}
}

// TestCoalescingOneMultiSolveCall is the acceptance test for the coalescer:
// N concurrent same-key solves must reach the backend as exactly ONE
// SolveMultiWithFactor call. MaxBatch == N makes the flush deterministic
// (the Nth arrival flushes; the window only exists as a slow-path backstop).
func TestCoalescingOneMultiSolveCall(t *testing.T) {
	const clients = 4
	be := &countingBackend{inner: LibraryBackend{}}
	s := New(Options{Workers: 2, Backend: be, Window: 10 * time.Second, MaxBatch: clients})
	h := s.Handler()
	m, n := 96, 24
	data := testMatrix(5, m, n, 1)
	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data)}, &fr); code != 200 {
		t.Fatalf("factorize: code=%d", code)
	}

	xs := make([][]float64, clients)
	replies := make([]solveReply, clients)
	codes := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			xTrue := make([]float64, n)
			for j := range xTrue {
				xTrue[j] = float64((i+1)*(j+1)) / 10
			}
			xs[i] = xTrue
			codes[i], _ = post(t, h, "/v1/solve",
				map[string]any{"key": fr.Key, "b": matVecData(m, n, data, xTrue)}, &replies[i])
		}(i)
	}
	wg.Wait()

	if got := be.solveMulti.Load(); got != 1 {
		t.Fatalf("backend.SolveMultiWithFactor called %d times for %d concurrent solves, want exactly 1", got, clients)
	}
	if got := be.solve.Load(); got != 0 {
		t.Fatalf("backend.SolveWithFactor called %d times, want 0 (everything should batch)", got)
	}
	for i := 0; i < clients; i++ {
		if codes[i] != 200 {
			t.Fatalf("solve %d: code=%d", i, codes[i])
		}
		if replies[i].Batched != clients {
			t.Fatalf("solve %d reports batched=%d, want %d", i, replies[i].Batched, clients)
		}
		if d := maxDiff(replies[i].X, xs[i]); d > 1e-6 {
			t.Fatalf("solve %d got the wrong column back: error %g (optimality %g)", i, d, replies[i].Optimality)
		}
	}
	cst := s.CoalescerStats()
	if cst.MultiSolveCalls != 1 || cst.BatchedRequests != clients || cst.MaxBatch != clients {
		t.Fatalf("coalescer stats %+v", cst)
	}
}

func TestCoalescingIncompatibleOptionsDoNotBatch(t *testing.T) {
	be := &countingBackend{inner: LibraryBackend{}}
	s := New(Options{Workers: 2, Backend: be, Window: 50 * time.Millisecond, MaxBatch: 8})
	h := s.Handler()
	m, n := 64, 16
	data := testMatrix(6, m, n, 1)
	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data)}, &fr); code != 200 {
		t.Fatalf("factorize: code=%d", code)
	}
	b := matVecData(m, n, data, make([]float64, n))
	var wg sync.WaitGroup
	for _, method := range []string{"cgls", "lsqr"} {
		wg.Add(1)
		go func(method string) {
			defer wg.Done()
			var sr solveReply
			code, _ := post(t, h, "/v1/solve", map[string]any{"key": fr.Key, "b": b,
				"options": map[string]any{"method": method}}, &sr)
			if code != 200 || sr.Batched != 1 {
				t.Errorf("method %s: code=%d batched=%d, want solo", method, code, sr.Batched)
			}
		}(method)
	}
	wg.Wait()
	if got := be.solveMulti.Load(); got != 0 {
		t.Fatalf("incompatible options were batched together (%d multi calls)", got)
	}
}

// --- admission control -----------------------------------------------------

func TestQueueFullRejectsWith429(t *testing.T) {
	be := &countingBackend{inner: LibraryBackend{}, gate: make(chan struct{})}
	s := New(Options{Workers: 1, QueueDepth: 1, Backend: be})
	h := s.Handler()
	m, n := 48, 8

	// Request 1 occupies the only worker (its backend call blocks on the
	// gate); request 2 fills the depth-1 queue; request 3 must bounce. The
	// two fillers are sequenced — request 2 is only sent once the worker has
	// demonstrably dequeued request 1 — because until then request 1's own
	// task may still be sitting in the buffer.
	results := make(chan int, 2)
	go func() {
		code, _ := post(t, h, "/v1/factorize",
			map[string]any{"matrix": wireMat(m, n, testMatrix(20, m, n, 1))}, nil)
		results <- code
	}()
	deadline := time.Now().Add(10 * time.Second)
	for be.factorize.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never picked up request 1: pool=%+v", s.pool.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	go func() {
		code, _ := post(t, h, "/v1/factorize",
			map[string]any{"matrix": wireMat(m, n, testMatrix(21, m, n, 1))}, nil)
		results <- code
	}()
	for s.pool.Stats().Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("request 2 never queued: pool=%+v", s.pool.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	var er envelope
	code, hdr := post(t, h, "/v1/factorize",
		map[string]any{"matrix": wireMat(m, n, testMatrix(22, m, n, 1))}, &er)
	if code != 429 || er.Error.Code != "overloaded" {
		t.Fatalf("overflow request: code=%d error=%+v, want 429 overloaded", code, er.Error)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatalf("429 response missing Retry-After")
	}

	close(be.gate)
	for i := 0; i < 2; i++ {
		if code := <-results; code != 200 {
			t.Fatalf("parked request finished with %d, want 200", code)
		}
	}
	if rej := s.pool.Stats().RejectedFull; rej != 1 {
		t.Fatalf("pool rejected %d, want 1", rej)
	}
}

func TestDeadlineExpiresInQueueWith504(t *testing.T) {
	be := &countingBackend{inner: LibraryBackend{}, gate: make(chan struct{})}
	s := New(Options{Workers: 1, QueueDepth: 8, Backend: be})
	h := s.Handler()
	m, n := 48, 8

	blocked := make(chan int, 1)
	go func() {
		code, _ := post(t, h, "/v1/factorize",
			map[string]any{"matrix": wireMat(m, n, testMatrix(30, m, n, 1))}, nil)
		blocked <- code
	}()
	deadline := time.Now().Add(10 * time.Second)
	for be.factorize.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the blocking request")
		}
		time.Sleep(time.Millisecond)
	}

	var er envelope
	code, _ := post(t, h, "/v1/factorize",
		map[string]any{"matrix": wireMat(m, n, testMatrix(31, m, n, 1)), "deadline_ms": 30}, &er)
	if code != 504 || er.Error.Code != "deadline" {
		t.Fatalf("queued request past its deadline: code=%d error=%+v, want 504 deadline", code, er.Error)
	}

	close(be.gate)
	if code := <-blocked; code != 200 {
		t.Fatalf("blocking request finished with %d, want 200", code)
	}
}

func TestDrainingRejectsWith503(t *testing.T) {
	s := New(Options{Workers: 1})
	h := s.Handler()
	if code := get(t, h, "/healthz", nil); code != 200 {
		t.Fatalf("healthz before drain: %d", code)
	}
	s.BeginDrain()
	if code := get(t, h, "/healthz", nil); code != 503 {
		t.Fatalf("healthz while draining: %d, want 503", code)
	}
	var er envelope
	code, hdr := post(t, h, "/v1/factorize",
		map[string]any{"matrix": wireMat(8, 2, testMatrix(40, 8, 2, 1))}, &er)
	if code != 503 || er.Error.Code != "draining" {
		t.Fatalf("compute while draining: code=%d error=%+v, want 503 draining", code, er.Error)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatalf("503 response missing Retry-After")
	}
}

// --- hazards over the wire -------------------------------------------------

// overflowMatrix is a matrix whose last column blows past the binary16
// maximum once column scaling is disabled — the §3.5 hazard.
func overflowWire(m, n int) (map[string]any, map[string]any) {
	mat := wireMat(m, n, testMatrix(50, m, n, 3e5))
	cfg := map[string]any{"cutoff": 8, "disable_column_scaling": true}
	return mat, cfg
}

func TestHazardFailReturns422(t *testing.T) {
	s := New(Options{Workers: 1})
	h := s.Handler()
	mat, cfg := overflowWire(64, 16)
	var er envelope
	code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": mat, "config": cfg}, &er)
	if code != 422 || er.Error.Code != "numerical_hazard" {
		t.Fatalf("overflow under fail policy: code=%d error=%+v, want 422 numerical_hazard", code, er.Error)
	}
}

func TestHazardFallbackRecoversWithHazardsInBody(t *testing.T) {
	s := New(Options{Workers: 1})
	h := s.Handler()
	mat, cfg := overflowWire(64, 16)
	cfg["on_hazard"] = "fallback"
	var fr factorizeReply
	code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": mat, "config": cfg}, &fr)
	if code != 200 {
		t.Fatalf("overflow under fallback: code=%d", code)
	}
	if len(fr.Hazards) == 0 {
		t.Fatalf("fallback recovery reported no hazards")
	}
	recovered := false
	for _, hz := range fr.Hazards {
		if hz.Action != "" {
			recovered = true
		}
	}
	if !recovered {
		t.Fatalf("no hazard carries a recovery action: %+v", fr.Hazards)
	}

	// The hazards must also flow into solves against this factorization, and
	// into the server-wide /statz counters.
	var sr solveReply
	code, _ = post(t, h, "/v1/solve", map[string]any{"key": fr.Key, "b": make([]float64, 64)}, &sr)
	if code != 200 || len(sr.Hazards) == 0 {
		t.Fatalf("solve against recovered factorization: code=%d hazards=%d, want hazards to propagate", code, len(sr.Hazards))
	}
	var statz struct {
		Hazards map[string]int64 `json:"hazards"`
	}
	if code := get(t, h, "/statz", &statz); code != 200 || len(statz.Hazards) == 0 {
		t.Fatalf("statz hazard counters empty after recovery: code=%d %+v", code, statz.Hazards)
	}
}

// --- input validation and error mapping ------------------------------------

func TestErrorMapping(t *testing.T) {
	s := New(Options{Workers: 1, MaxElements: 1024})
	h := s.Handler()
	m, n := 16, 4
	good := wireMat(m, n, testMatrix(60, m, n, 1))
	nan := testMatrix(61, m, n, 1)
	nan[3] = math.NaN()

	cases := []struct {
		name     string
		path     string
		body     any
		wantCode int
		wantErr  string
	}{
		{"malformed json", "/v1/factorize", "{not json", 400, "bad_input"},
		{"unknown field", "/v1/factorize", map[string]any{"matrix": good, "bogus": 1}, 400, "bad_input"},
		{"missing matrix", "/v1/factorize", map[string]any{}, 400, "bad_input"},
		{"short data", "/v1/factorize", map[string]any{"matrix": wireMat(m, n, make([]float64, 3))}, 400, "bad_input"},
		{"wide matrix", "/v1/factorize", map[string]any{"matrix": wireMat(2, 4, make([]float64, 8))}, 400, "bad_input"},
		{"nan matrix", "/v1/factorize", map[string]any{"matrix": wireMat(m, n, nan)}, 400, "bad_input"},
		{"bad engine", "/v1/factorize", map[string]any{"matrix": good, "config": map[string]any{"engine": "fp8"}}, 400, "bad_input"},
		{"too large", "/v1/factorize", map[string]any{"matrix": wireMat(64, 32, make([]float64, 64*32))}, 413, "too_large"},
		{"solve no key no matrix", "/v1/solve", map[string]any{"b": []float64{1}}, 400, "bad_input"},
		{"solve unknown key", "/v1/solve", map[string]any{"key": "m0-x", "b": make([]float64, m)}, 404, "unknown_key"},
		{"solve bad method", "/v1/solve", map[string]any{"key": "k", "b": []float64{1}, "options": map[string]any{"method": "jacobi"}}, 400, "bad_input"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body []byte
			if s, ok := tc.body.(string); ok {
				body = []byte(s)
			} else {
				body, _ = json.Marshal(tc.body)
			}
			req := httptest.NewRequest(http.MethodPost, tc.path, bytes.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			var er envelope
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
				t.Fatalf("non-envelope error body %q", rec.Body.String())
			}
			if rec.Code != tc.wantCode || er.Error.Code != tc.wantErr {
				t.Fatalf("got %d %q (%s), want %d %q", rec.Code, er.Error.Code, er.Error.Message, tc.wantCode, tc.wantErr)
			}
		})
	}

	// Solve with a mismatched right-hand side against a real key.
	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": good}, &fr); code != 200 {
		t.Fatalf("factorize: %d", code)
	}
	var er envelope
	if code, _ := post(t, h, "/v1/solve", map[string]any{"key": fr.Key, "b": []float64{1, 2}}, &er); code != 400 || er.Error.Code != "bad_input" {
		t.Fatalf("short b: code=%d error=%+v", code, er.Error)
	}
	if code, _ := post(t, h, "/v1/solve", map[string]any{"key": fr.Key, "matrix": good, "b": make([]float64, m)}, &er); code != 400 {
		t.Fatalf("key+matrix together should 400, got %d", code)
	}

	// Wrong method on a compute endpoint.
	req := httptest.NewRequest(http.MethodGet, "/v1/solve", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 405 {
		t.Fatalf("GET /v1/solve: code=%d, want 405", rec.Code)
	}
}

// --- lowrank + statz -------------------------------------------------------

func TestLowRankEndpoint(t *testing.T) {
	s := New(Options{Workers: 2})
	h := s.Handler()
	m, n := 48, 12
	var lr struct {
		U    WireMatrix `json:"u"`
		S    []float64  `json:"s"`
		V    WireMatrix `json:"v"`
		Rank int        `json:"rank"`
	}
	code, _ := post(t, h, "/v1/lowrank",
		map[string]any{"matrix": wireMat(m, n, testMatrix(70, m, n, 1)), "rank": 4}, &lr)
	if code != 200 || lr.Rank != 4 {
		t.Fatalf("lowrank: code=%d rank=%d", code, lr.Rank)
	}
	if lr.U.Rows != m || lr.U.Cols != 4 || lr.V.Rows != n || lr.V.Cols != 4 || len(lr.S) != 4 {
		t.Fatalf("lowrank shapes: U %dx%d V %dx%d S %d", lr.U.Rows, lr.U.Cols, lr.V.Rows, lr.V.Cols, len(lr.S))
	}
	for i := 1; i < len(lr.S); i++ {
		if lr.S[i] > lr.S[i-1] {
			t.Fatalf("singular values not sorted: %v", lr.S)
		}
	}
}

func TestStatzShape(t *testing.T) {
	s := New(Options{Workers: 2})
	h := s.Handler()
	m, n := 64, 16
	data := testMatrix(80, m, n, 1)
	var fr factorizeReply
	post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data)}, &fr)
	post(t, h, "/v1/solve", map[string]any{"key": fr.Key, "b": make([]float64, m)}, nil)
	post(t, h, "/v1/solve", map[string]any{"key": "missing", "b": make([]float64, m)}, nil)

	var statz struct {
		UptimeSeconds float64          `json:"uptime_seconds"`
		Draining      bool             `json:"draining"`
		Requests      map[string]int64 `json:"requests"`
		Errors        map[string]int64 `json:"errors"`
		Cache         CacheStats       `json:"cache"`
		Coalescer     CoalescerStats   `json:"coalescer"`
		Pool          PoolStats        `json:"pool"`
		Timing        map[string]struct {
			Count   int64   `json:"count"`
			TotalMS float64 `json:"total_ms"`
			AvgMS   float64 `json:"avg_ms"`
			MaxMS   float64 `json:"max_ms"`
		} `json:"timing"`
		Hazards map[string]int64 `json:"hazards"`
	}
	if code := get(t, h, "/statz", &statz); code != 200 {
		t.Fatalf("statz: code=%d", code)
	}
	if statz.Requests["factorize"] != 1 || statz.Requests["solve"] != 2 {
		t.Fatalf("request counters %+v", statz.Requests)
	}
	if statz.Errors["unknown_key"] != 1 {
		t.Fatalf("error counters %+v", statz.Errors)
	}
	if statz.Cache.Misses != 1 || statz.Cache.Entries != 1 {
		t.Fatalf("cache stats %+v", statz.Cache)
	}
	if statz.Pool.Workers != 2 || statz.Pool.Completed < 1 {
		t.Fatalf("pool stats %+v", statz.Pool)
	}
	for _, stage := range []string{"queue", "factorize", "solve", "encode"} {
		agg, ok := statz.Timing[stage]
		if !ok || agg.Count < 1 {
			t.Fatalf("timing stage %q missing or empty: %+v", stage, statz.Timing)
		}
		if agg.MaxMS < 0 || agg.TotalMS < 0 {
			t.Fatalf("timing stage %q has negative durations: %+v", stage, agg)
		}
	}
}
