// Package serve is the factorization-serving subsystem: the engine-agnostic
// core behind the tcqrd daemon. It turns the library's "factor once, apply
// many times" economics (Algorithm 3 reuses one QR across every right-hand
// side) into a concurrent service:
//
//   - a content-hash-keyed LRU factorization cache with singleflight
//     deduplication, so concurrent solves against the same matrix share one
//     Factorize call (cache.go);
//   - a request coalescer that batches solves arriving within a short window
//     against the same cached factorization into a single multi-RHS call —
//     one GEMM-shaped refinement instead of N independent solves
//     (coalesce.go);
//   - a bounded worker pool with admission control: queue-depth limit,
//     per-request deadlines, typed backpressure errors, graceful drain
//     (pool.go);
//   - HTTP handlers exposing /v1/factorize, /v1/solve, /v1/lowrank,
//     /healthz and /statz with hazard-aware JSON responses and a
//     Server-Timing stage breakdown (server.go, wire.go).
//
// The package holds no HTTP listener of its own; cmd/tcqrd wires the
// Handler into net/http and owns the process lifecycle.
package serve

import (
	"tcqr"
)

// Backend abstracts the five library calls the serving core makes, so tests
// and benchmarks can count, delay, or fake them. The coalescing acceptance
// test, for example, asserts that N concurrent same-matrix solves reach
// SolveMultiWithFactor exactly once.
type Backend interface {
	// Factorize computes the RGSQRF factorization (tcqr.Factorize).
	Factorize(a *tcqr.Matrix32, cfg tcqr.Config) (*tcqr.Factorization, error)
	// SolveWithFactor solves one right-hand side against a cached
	// factorization (tcqr.SolveLeastSquaresWithFactor).
	SolveWithFactor(f *tcqr.Factorization, a *tcqr.Matrix, b []float64, opts tcqr.SolveOptions) (*tcqr.LeastSquaresResult, error)
	// SolveMultiWithFactor solves a coalesced block of right-hand sides
	// against a cached factorization (tcqr.SolveLeastSquaresMultiWithFactor).
	SolveMultiWithFactor(f *tcqr.Factorization, a *tcqr.Matrix, b *tcqr.Matrix, opts tcqr.SolveOptions) (*tcqr.MultiResult, error)
	// LowRank computes a truncated QR-SVD approximation (tcqr.LowRank).
	LowRank(a *tcqr.Matrix32, rank int, cfg tcqr.Config) (*tcqr.LowRankApprox, error)
}

// Updater is the optional backend capability behind /v1/update: incremental
// append/downdate of a cached factorization. It is a separate interface —
// not new Backend methods — so existing Backend fakes keep compiling; a
// backend that does not implement it gets the library implementation
// (LibraryBackend) for updates while keeping its own factorize/solve paths.
type Updater interface {
	// UpdateAppendRows appends a row block to a factorization
	// (tcqr.UpdateAppendRows).
	UpdateAppendRows(f *tcqr.Factorization, v *tcqr.Matrix32, cfg tcqr.Config) (*tcqr.Factorization, error)
	// UpdateRemoveRows downdates the trailing k rows (tcqr.UpdateRemoveRows).
	UpdateRemoveRows(f *tcqr.Factorization, k int, cfg tcqr.Config) (*tcqr.Factorization, error)
}

// DefaultTSQRMinRows is the row count at which LibraryBackend starts routing
// cold factorizations through the parallel Direct TSQR pipeline. Below it the
// serial call is cheap enough that block scheduling overhead dominates.
const DefaultTSQRMinRows = 2048

// LibraryBackend routes every call straight to package tcqr; it is the
// production backend. The zero value behaves like the pre-TSQR backend with
// default routing: tall-skinny factorizations (at least DefaultTSQRMinRows
// rows and a 4:1 aspect ratio) take the parallel Direct TSQR pipeline,
// everything else the serial path.
type LibraryBackend struct {
	// TSQRMinRows is the minimum row count for TSQR routing (0 =
	// DefaultTSQRMinRows; negative disables TSQR entirely).
	TSQRMinRows int
	// TSQRWorkers bounds concurrent block factorizations (<= 0 = GOMAXPROCS).
	// Scheduling only — never changes result bits.
	TSQRWorkers int
	// TSQRBlockRows is the canonical TSQR partition height (0 = the library
	// default). Part of the numerical identity of routed results.
	TSQRBlockRows int
}

// routeTSQR reports whether a rows×cols factorization takes the parallel
// pipeline. The predicate is a pure function of shape and configuration, so a
// given matrix always factors through the same path — the content-addressed
// cache key stays an honest identity for the resulting factorization.
func (b LibraryBackend) routeTSQR(rows, cols int) bool {
	if b.TSQRMinRows < 0 {
		return false
	}
	min := b.TSQRMinRows
	if min == 0 {
		min = DefaultTSQRMinRows
	}
	return rows >= min && rows >= 4*cols
}

// Factorize implements Backend.
func (b LibraryBackend) Factorize(a *tcqr.Matrix32, cfg tcqr.Config) (*tcqr.Factorization, error) {
	if a != nil && b.routeTSQR(a.Rows, a.Cols) {
		return tcqr.FactorizeTall(a, tcqr.TallOptions{
			BlockRows: b.TSQRBlockRows,
			Workers:   b.TSQRWorkers,
		}, cfg)
	}
	return tcqr.Factorize(a, cfg)
}

// SolveWithFactor implements Backend.
func (LibraryBackend) SolveWithFactor(f *tcqr.Factorization, a *tcqr.Matrix, b []float64, opts tcqr.SolveOptions) (*tcqr.LeastSquaresResult, error) {
	return tcqr.SolveLeastSquaresWithFactor(f, a, b, opts)
}

// SolveMultiWithFactor implements Backend.
func (LibraryBackend) SolveMultiWithFactor(f *tcqr.Factorization, a *tcqr.Matrix, b *tcqr.Matrix, opts tcqr.SolveOptions) (*tcqr.MultiResult, error) {
	return tcqr.SolveLeastSquaresMultiWithFactor(f, a, b, opts)
}

// LowRank implements Backend.
func (LibraryBackend) LowRank(a *tcqr.Matrix32, rank int, cfg tcqr.Config) (*tcqr.LowRankApprox, error) {
	return tcqr.LowRank(a, rank, cfg)
}

// UpdateAppendRows implements Updater.
func (LibraryBackend) UpdateAppendRows(f *tcqr.Factorization, v *tcqr.Matrix32, cfg tcqr.Config) (*tcqr.Factorization, error) {
	return tcqr.UpdateAppendRows(f, v, cfg)
}

// UpdateRemoveRows implements Updater.
func (LibraryBackend) UpdateRemoveRows(f *tcqr.Factorization, k int, cfg tcqr.Config) (*tcqr.Factorization, error) {
	return tcqr.UpdateRemoveRows(f, k, cfg)
}
