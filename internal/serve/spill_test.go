package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tcqr"
	"tcqr/internal/faultinject"
)

// makeEntry factors one deterministic matrix into a cache entry (tier-level
// spill tests build entries directly, without a cache).
func makeEntry(t *testing.T, seed uint64, m, n int, key string, epoch uint64) *Entry {
	t.Helper()
	a := tcqr.FromColMajor(m, n, testMatrix(seed, m, n, 1))
	f, err := LibraryBackend{}.Factorize(tcqr.ToFloat32(a), tcqr.Config{})
	if err != nil {
		t.Fatalf("factorize %dx%d: %v", m, n, err)
	}
	e := &Entry{Key: key, Epoch: epoch, A: a, F: f}
	e.bytes = e.sizeBytes()
	return e
}

func spillFiles(t *testing.T, dir, pattern string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		t.Fatalf("glob %s: %v", pattern, err)
	}
	return names
}

// --- format round trip ------------------------------------------------------

// TestSpillEntryRoundTrip pins the spill file format: header, checksum, and
// a payload that reconstructs the entry exactly (A bit-identical, the f32
// factors exact through the f64 widening, scales and config preserved).
func TestSpillEntryRoundTrip(t *testing.T) {
	e := makeEntry(t, 1, 48, 12, "mdeadbeef-test@3", 3)
	e.Config = tcqr.Config{Cutoff: 16, ReOrthogonalize: true, OnHazard: tcqr.HazardFallback}
	e.F.ColumnScales = make([]float32, 12)
	for i := range e.F.ColumnScales {
		e.F.ColumnScales[i] = float32(i + 1)
	}
	buf, err := encodeSpillEntry(e)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := decodeSpillEntry(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Key != e.Key || got.Epoch != e.Epoch {
		t.Fatalf("identity: got %q@%d, want %q@%d", got.Key, got.Epoch, e.Key, e.Epoch)
	}
	for j := 0; j < e.A.Cols; j++ {
		for i := 0; i < e.A.Rows; i++ {
			if math.Float64bits(got.A.At(i, j)) != math.Float64bits(e.A.At(i, j)) {
				t.Fatalf("A[%d,%d] not bit-identical", i, j)
			}
		}
	}
	for j := 0; j < e.F.Q.Cols; j++ {
		for i := 0; i < e.F.Q.Rows; i++ {
			if got.F.Q.At(i, j) != e.F.Q.At(i, j) {
				t.Fatalf("Q[%d,%d] changed through the round trip", i, j)
			}
		}
	}
	for j := 0; j < e.F.R.Cols; j++ {
		for i := 0; i < e.F.R.Rows; i++ {
			if got.F.R.At(i, j) != e.F.R.At(i, j) {
				t.Fatalf("R[%d,%d] changed through the round trip", i, j)
			}
		}
	}
	for i, s := range e.F.ColumnScales {
		if got.F.ColumnScales[i] != s {
			t.Fatalf("scale %d: got %g want %g", i, got.F.ColumnScales[i], s)
		}
	}
	if got.Config != e.Config {
		t.Fatalf("config: got %+v want %+v", got.Config, e.Config)
	}

	// Every corruption class must fail closed, never half-decode.
	for _, tc := range []struct {
		name string
		mut  func(b []byte)
	}{
		{"magic", func(b []byte) { b[0] = 'X' }},
		{"version", func(b []byte) { b[4] = 99 }},
		{"payload bit", func(b []byte) { b[spillHeaderLen+8] ^= 1 }},
	} {
		bad := append([]byte(nil), buf...)
		tc.mut(bad)
		if _, err := decodeSpillEntry(bad); err == nil {
			t.Errorf("%s corruption decoded cleanly", tc.name)
		}
	}
	if _, err := decodeSpillEntry(buf[:len(buf)/2]); err == nil {
		t.Errorf("torn file decoded cleanly")
	}
}

// --- tier behavior ----------------------------------------------------------

func TestSpillWriteRemoveRewarm(t *testing.T) {
	dir := t.TempDir()
	sp, err := NewSpillTier(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e1 := makeEntry(t, 10, 32, 8, "mkey1-e000-p0-c0-r00-h0", 0)
	e2 := makeEntry(t, 11, 32, 8, "mkey2-e000-p0-c0-r00-h0", 0)
	sp.Enqueue(e1)
	sp.Enqueue(e2)
	sp.Remove(e1.Key)
	sp.Flush()
	st := sp.Stats()
	if st.Writes != 2 || st.Removes != 1 || st.Files != 1 {
		t.Fatalf("tier stats %+v, want 2 writes, 1 remove, 1 file", st)
	}
	sp.Close()

	// A fresh tier over the same directory rewarms exactly the survivor.
	sp2, err := NewSpillTier(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	got := sp2.Rewarm()
	if len(got) != 1 || got[0].Key != e2.Key {
		t.Fatalf("rewarmed %d entries (want 1: %s)", len(got), e2.Key)
	}
	if st := sp2.Stats(); st.Loads != 1 || st.Rewarmed != 1 || st.LoadErrors != 0 {
		t.Fatalf("rewarm stats %+v", st)
	}
}

func TestSpillByteBudgetEvictsOldestFiles(t *testing.T) {
	dir := t.TempDir()
	// One 32x8 spill file is ~3KB; a 2-file budget forces the oldest out.
	e1 := makeEntry(t, 20, 32, 8, "mbudget1-x", 0)
	buf, err := encodeSpillEntry(e1)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSpillTier(dir, int64(len(buf))*2+64)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	e2 := makeEntry(t, 21, 32, 8, "mbudget2-x", 0)
	e3 := makeEntry(t, 22, 32, 8, "mbudget3-x", 0)
	sp.Enqueue(e1)
	sp.Enqueue(e2)
	sp.Enqueue(e3)
	sp.Flush()
	st := sp.Stats()
	if st.Files != 2 || st.Evictions != 1 || st.BytesOnDisk > sp.maxBytes {
		t.Fatalf("tier stats %+v (budget %d)", st, sp.maxBytes)
	}
	if n := spillFiles(t, dir, "mbudget1*"); len(n) != 0 {
		t.Fatalf("oldest file survived the budget: %v", n)
	}
	if n := spillFiles(t, dir, "mbudget3*"); len(n) != 1 {
		t.Fatalf("newest file missing: %v", n)
	}
}

// TestSpillLoadFaultSkipsWithoutQuarantine: an injected read error (bad
// sector, transient IO) skips the file but does NOT quarantine it — the data
// may be fine and the next restart retries.
func TestSpillLoadFaultSkipsWithoutQuarantine(t *testing.T) {
	dir := t.TempDir()
	sp, err := NewSpillTier(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp.Enqueue(makeEntry(t, 30, 32, 8, "mloadfault-x", 0))
	sp.Flush()
	sp.Close()

	arm(t, "seed=2;serve.spill.load=error@once=1")
	sp2, err := NewSpillTier(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	if got := sp2.Rewarm(); len(got) != 0 {
		t.Fatalf("faulted load returned %d entries", len(got))
	}
	if st := sp2.Stats(); st.LoadErrors != 1 || st.Quarantined != 0 {
		t.Fatalf("load-fault stats %+v: must skip, not quarantine", st)
	}
	if n := spillFiles(t, dir, "*"+spillExt); len(n) != 1 {
		t.Fatalf("file missing after skipped load: %v", n)
	}
	faultinject.Disarm()

	// The retry (next restart) succeeds.
	sp3, err := NewSpillTier(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sp3.Close()
	if got := sp3.Rewarm(); len(got) != 1 {
		t.Fatalf("clean rewarm after skipped load: %d entries", len(got))
	}
}

// --- server integration -----------------------------------------------------

// TestServerRewarmServesWithoutRefactorize is the restart acceptance test: a
// daemon with -cache-dir factorizes and updates, a second daemon over the
// same directory rewarms, and a by-key solve of the newest epoch is a cache
// hit with ZERO backend factorizations.
func TestServerRewarmServesWithoutRefactorize(t *testing.T) {
	dir := t.TempDir()
	m, n, k := 64, 16, 8
	data := testMatrix(900, m, n, 1)
	block := testMatrix(901, k, n, 1)

	s1 := New(Options{Workers: 2, CacheDir: dir})
	h1 := s1.Handler()
	var fr factorizeReply
	if code, _ := post(t, h1, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data)}, &fr); code != 200 {
		t.Fatalf("factorize: code=%d", code)
	}
	base := fr.Key
	var ur updateReply
	if code, _ := post(t, h1, "/v1/update",
		map[string]any{"key": base, "append": wireMat(k, n, block)}, &ur); code != 200 || ur.Epoch != 1 {
		t.Fatalf("update: code=%d reply=%+v", code, ur)
	}
	s1.spill.Flush()
	s1.Close()

	// Epoch 0 was retired when epoch 1 published, so exactly one file — the
	// newest epoch — survives on disk.
	if names := spillFiles(t, dir, "*"+spillExt); len(names) != 1 || !strings.Contains(names[0], "@1") {
		t.Fatalf("on-disk files after update: %v, want just the @1 epoch", names)
	}

	be := &countingBackend{inner: LibraryBackend{}}
	s2 := New(Options{Workers: 2, Backend: be, CacheDir: dir})
	defer s2.Close()
	h2 := s2.Handler()
	if cs := s2.Cache().Stats(); cs.Rewarmed != 1 || cs.Entries != 1 {
		t.Fatalf("cache after rewarm: %+v", cs)
	}

	xTrue := make([]float64, n)
	for j := range xTrue {
		xTrue[j] = float64(j) - 4
	}
	full := stackData(m, n, data, k, block)
	var sr solveReply
	code, _ := post(t, h2, "/v1/solve",
		map[string]any{"key": base, "b": matVecData(m+k, n, full, xTrue)}, &sr)
	if code != 200 || !sr.Cached || sr.Key != base+"@1" {
		t.Fatalf("rewarmed solve: code=%d cached=%v key=%q", code, sr.Cached, sr.Key)
	}
	if d := maxDiff(sr.X, xTrue); d > 1e-6 {
		t.Fatalf("rewarmed solve wrong by %g", d)
	}
	if got := be.factorize.Load(); got != 0 {
		t.Fatalf("rewarm cost %d backend factorizations, want 0", got)
	}

	// The rewarmed series keeps updating where it left off.
	if code, _ := post(t, h2, "/v1/update", map[string]any{"key": base, "remove_rows": k}, &ur); code != 200 || ur.Epoch != 2 {
		t.Fatalf("update after rewarm: code=%d reply=%+v", code, ur)
	}
}

// TestServerRewarmQuarantinesTornFile is the crash-consistency acceptance
// test: the serve.spill.write failpoint models a power loss that leaves a
// torn file at the FINAL name (rename survived, data blocks did not). The
// restarted server must quarantine it, adopt only checksum-valid entries,
// and serve them with zero cold factorizations.
func TestServerRewarmQuarantinesTornFile(t *testing.T) {
	dir := t.TempDir()
	m, n := 48, 12
	dataA := testMatrix(910, m, n, 1)
	dataB := testMatrix(911, m, n, 1)

	arm(t, "seed=4;serve.spill.write=error@once=1")
	s1 := New(Options{Workers: 2, CacheDir: dir})
	h1 := s1.Handler()
	var frA, frB factorizeReply
	if code, _ := post(t, h1, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, dataA)}, &frA); code != 200 {
		t.Fatalf("factorize A: code=%d", code)
	}
	s1.spill.Flush() // A's write fires the fault → torn file at final name
	if code, _ := post(t, h1, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, dataB)}, &frB); code != 200 {
		t.Fatalf("factorize B: code=%d", code)
	}
	s1.spill.Flush()
	if st := s1.spill.Stats(); st.WriteErrors != 1 || st.Writes != 1 {
		t.Fatalf("spill stats after torn write: %+v", st)
	}
	s1.Close()
	faultinject.Disarm()

	be := &countingBackend{inner: LibraryBackend{}}
	s2 := New(Options{Workers: 2, Backend: be, CacheDir: dir})
	defer s2.Close()
	h2 := s2.Handler()

	st := s2.spill.Stats()
	if st.Loads != 2 || st.LoadErrors != 1 || st.Quarantined != 1 || st.Rewarmed != 1 {
		t.Fatalf("rewarm stats %+v, want 2 loads, 1 quarantined, 1 rewarmed", st)
	}
	if q := spillFiles(t, dir, "*"+spillQuarExt); len(q) != 1 {
		t.Fatalf("quarantine files: %v, want exactly 1", q)
	}
	if cs := s2.Cache().Stats(); cs.Rewarmed != 1 {
		t.Fatalf("cache rewarmed %d entries, want 1", cs.Rewarmed)
	}

	// B (valid) serves as a hit; A (torn) is honestly gone, never garbage.
	xTrue := make([]float64, n)
	for j := range xTrue {
		xTrue[j] = 1
	}
	var sr solveReply
	code, _ := post(t, h2, "/v1/solve",
		map[string]any{"key": frB.Key, "b": matVecData(m, n, dataB, xTrue)}, &sr)
	if code != 200 || !sr.Cached || maxDiff(sr.X, xTrue) > 1e-6 {
		t.Fatalf("solve of valid rewarmed entry: code=%d cached=%v", code, sr.Cached)
	}
	if got := be.factorize.Load(); got != 0 {
		t.Fatalf("valid-entry solve cost %d factorizations, want 0", got)
	}
	var er envelope
	if code, _ := post(t, h2, "/v1/solve",
		map[string]any{"key": frA.Key, "b": make([]float64, m)}, &er); code != 404 || er.Error.Code != "unknown_key" {
		t.Fatalf("solve of quarantined entry: code=%d error=%+v, want 404 unknown_key", code, er.Error)
	}
}

// TestSpillChaosSoak (make chaos) churns factorize/update/solve traffic with
// spill writes and update applies randomly faulted, then restarts over the
// same directory and asserts crash consistency: every file the rewarm pass
// accepts must solve correctly, every torn file is quarantined, and the
// accounting balances (loads == quarantined + rewarmed).
func TestSpillChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("spill chaos soak skipped in -short mode")
	}
	dir := t.TempDir()
	m, n, k := 48, 8, 6

	arm(t, "seed=77"+
		";serve.spill.write=error@p=0.2"+
		";serve.update.apply=error@p=0.15"+
		";serve.cache.factorize=error@p=0.05")
	s1 := New(Options{Workers: 4, CacheEntries: 8, Retry: fastRetry(2), DegradeThreshold: -1,
		CacheDir: dir, Window: 200 * time.Microsecond, MaxBatch: 4})
	h1 := s1.Handler()

	var fr factorizeReply
	if code, _ := post(t, h1, "/v1/factorize",
		map[string]any{"matrix": wireMat(m, n, testMatrix(920, m, n, 1))}, &fr); code != 200 {
		t.Fatalf("seed factorize: code=%d", code)
	}
	base := fr.Key
	block := testMatrix(921, k, n, 1)
	b0 := make([]float64, m)

	const clients, iters = 8, 24
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var code int
				switch (g + i) % 4 {
				case 0:
					code, _ = post(t, h1, "/v1/factorize",
						map[string]any{"matrix": wireMat(m, n, testMatrix(uint64(930+i%5), m, n, 1))}, nil)
				case 1:
					if i%2 == 0 {
						code, _ = post(t, h1, "/v1/update",
							map[string]any{"key": base, "append": wireMat(k, n, block)}, nil)
					} else {
						code, _ = post(t, h1, "/v1/update",
							map[string]any{"key": base, "remove_rows": k}, nil)
					}
				default:
					code, _ = post(t, h1, "/v1/solve", map[string]any{"key": base, "b": b0}, nil)
				}
				if !legalChaosStatus[code] {
					t.Errorf("client %d op %d: illegal status %d", g, i, code)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	waitRetiredDrained(t, s1.Cache())
	s1.spill.Flush()
	s1.Close()
	faultinject.Disarm()

	// Decode the surviving files ourselves to establish ground truth, then
	// restart and demand the server agrees with the disk.
	type truth struct {
		epoch uint64
		a     *tcqr.Matrix
	}
	newest := map[string]truth{} // base key -> newest epoch on disk
	torn := 0
	for _, name := range spillFiles(t, dir, "*"+spillExt) {
		buf, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		e, err := decodeSpillEntry(buf)
		if err != nil {
			// A file the injected crashes tore: rewarm must quarantine it.
			torn++
			continue
		}
		if tr, ok := newest[baseKey(e.Key)]; !ok || e.Epoch > tr.epoch {
			newest[baseKey(e.Key)] = truth{epoch: e.Epoch, a: e.A}
		}
	}
	if len(newest) == 0 {
		t.Fatal("chaos left no valid spill files; the soak exercised nothing")
	}

	be := &countingBackend{inner: LibraryBackend{}}
	s2 := New(Options{Workers: 2, CacheEntries: 64, Backend: be, CacheDir: dir})
	defer s2.Close()
	h2 := s2.Handler()
	st := s2.spill.Stats()
	if st.Loads != st.LoadErrors+st.Rewarmed || st.LoadErrors != st.Quarantined {
		t.Fatalf("rewarm accounting does not balance: %+v", st)
	}
	if st.Quarantined != int64(torn) {
		t.Fatalf("rewarm quarantined %d files, the disk held %d torn ones: %+v", st.Quarantined, torn, st)
	}
	for bk, tr := range newest {
		key := versionedKey(bk, tr.epoch)
		x := make([]float64, tr.a.Cols)
		for j := range x {
			x[j] = float64(j + 1)
		}
		b := make([]float64, tr.a.Rows)
		for j := 0; j < tr.a.Cols; j++ {
			for i := 0; i < tr.a.Rows; i++ {
				b[i] += tr.a.At(i, j) * x[j]
			}
		}
		var sr solveReply
		code, _ := post(t, h2, "/v1/solve", map[string]any{"key": key, "b": b}, &sr)
		if code != 200 || !sr.Cached {
			t.Fatalf("adopted entry %s does not serve: code=%d cached=%v", key, code, sr.Cached)
		}
		if d := maxDiff(sr.X, x); d > 1e-4 {
			t.Fatalf("adopted entry %s solves wrong by %g: disk state is garbage", key, d)
		}
	}
	if got := be.factorize.Load(); got != 0 {
		t.Fatalf("rewarmed solves cost %d cold factorizations, want 0", got)
	}
}

// BenchmarkRewarmedHitSolve measures the warm-solve latency against an entry
// adopted from disk at startup (BENCH_9.json): a rewarmed entry must serve
// at cache-hit speed with zero cold factorizations — the whole point of the
// spill tier is that a restart costs disk reads, not a factorize stampede.
func BenchmarkRewarmedHitSolve(b *testing.B) {
	dir := b.TempDir()
	data := testMatrix(1234, benchRows, benchCols, 1)
	fbody, err := json.Marshal(map[string]any{"matrix": wireMat(benchRows, benchCols, data)})
	if err != nil {
		b.Fatal(err)
	}
	s1 := New(Options{CacheDir: dir})
	key := mustFactorize(s1.Handler(), fbody)
	s1.spill.Flush()
	s1.Close()

	be := &countingBackend{inner: LibraryBackend{}}
	s2 := New(Options{Backend: be, CacheDir: dir})
	defer s2.Close()
	h := s2.Handler()
	x := make([]float64, benchCols)
	for j := range x {
		x[j] = float64(j%11) - 5
	}
	sbody, err := json.Marshal(map[string]any{"key": key, "b": matVecData(benchRows, benchCols, data, x)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(sbody)))
		if rec.Code != 200 {
			b.Fatalf("rewarmed solve: code=%d body=%s", rec.Code, rec.Body.String())
		}
	}
	b.StopTimer()
	if got := be.factorize.Load(); got != 0 {
		b.Fatalf("rewarmed solves cost %d cold factorizations, want 0", got)
	}
}
