package serve

import (
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"tcqr/internal/wirefmt"
)

// --- stream test plumbing --------------------------------------------------

// rowChunks splits column-major data for an m×n matrix into column-major row
// blocks of the given heights (which must sum to m) — the client-side view of
// a chunked upload.
func rowChunks(t testing.TB, m, n int, data []float64, heights ...int) []map[string]any {
	t.Helper()
	sum := 0
	for _, h := range heights {
		sum += h
	}
	if sum != m {
		t.Fatalf("chunk heights sum to %d, matrix has %d rows", sum, m)
	}
	out := make([]map[string]any, 0, len(heights))
	row := 0
	for _, h := range heights {
		blk := make([]float64, 0, h*n)
		for j := 0; j < n; j++ {
			blk = append(blk, data[j*m+row:j*m+row+h]...)
		}
		out = append(out, wireMat(h, n, blk))
		row += h
	}
	return out
}

type streamBeginReply struct {
	Session string `json:"session"`
	TTLMS   int64  `json:"ttl_ms"`
}

type streamAppendReply struct {
	Session string `json:"session"`
	Rows    int    `json:"rows"`
	Blocks  int    `json:"blocks"`
}

// streamUpload drives a full begin/append.../commit conversation over JSON
// and returns the commit's factorize reply.
func streamUpload(t *testing.T, h http.Handler, cfg map[string]any, n int, chunks []map[string]any) factorizeReply {
	t.Helper()
	begin := map[string]any{"cols": n}
	if cfg != nil {
		begin["config"] = cfg
	}
	var br streamBeginReply
	if code, _ := post(t, h, "/v1/factorize/stream/begin", begin, &br); code != 200 {
		t.Fatalf("begin status %d", code)
	}
	if br.Session == "" || br.TTLMS <= 0 {
		t.Fatalf("begin reply %+v, want a session id and positive ttl", br)
	}
	for i, blk := range chunks {
		var ar streamAppendReply
		code, _ := post(t, h, "/v1/factorize/stream/append",
			map[string]any{"session": br.Session, "block": blk}, &ar)
		if code != 200 {
			t.Fatalf("append %d status %d", i, code)
		}
		if ar.Blocks != i+1 {
			t.Fatalf("append %d acknowledged %d blocks", i, ar.Blocks)
		}
	}
	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize/stream/commit", map[string]any{"session": br.Session}, &fr); code != 200 {
		t.Fatalf("commit status %d", code)
	}
	return fr
}

// --- golden equivalence ----------------------------------------------------

// TestStreamCommitMatchesOneShot is the chunked-upload golden test: a matrix
// streamed in three row blocks commits to the exact content-hash key a
// one-shot upload of the same matrix gets, the one-shot then hits the cache,
// and solve-by-key works against the streamed factorization.
func TestStreamCommitMatchesOneShot(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()
	h := s.Handler()
	const m, n = 30, 4
	data := testMatrix(61, m, n, 1)

	fr := streamUpload(t, h, nil, n, rowChunks(t, m, n, data, 13, 9, 8))
	if fr.Key == "" || fr.Rows != m || fr.Cols != n || fr.Cached {
		t.Fatalf("stream commit reply %+v, want cold %dx%d factorization", fr, m, n)
	}

	var one factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data)}, &one); code != 200 {
		t.Fatalf("one-shot factorize status %d", code)
	}
	if one.Key != fr.Key {
		t.Fatalf("one-shot key %q != streamed key %q; the chunked upload is not content-equivalent", one.Key, fr.Key)
	}
	if !one.Cached {
		t.Fatal("one-shot upload of the streamed matrix missed the cache")
	}

	x := make([]float64, n)
	for j := range x {
		x[j] = float64(j + 1)
	}
	var sr solveReply
	code, _ := post(t, h, "/v1/solve", map[string]any{"key": fr.Key, "b": matVecData(m, n, data, x)}, &sr)
	if code != 200 {
		t.Fatalf("solve by streamed key: status %d", code)
	}
	if d := maxDiff(sr.X, x); d > 1e-6 {
		t.Errorf("solve by streamed key: max error %g", d)
	}
	if s.metrics.streamBegun.Value() != 1 || s.metrics.streamCommitted.Value() != 1 ||
		s.metrics.streamAppends.Value() != 3 {
		t.Errorf("stream counters begun=%d committed=%d appends=%d, want 1/1/3",
			s.metrics.streamBegun.Value(), s.metrics.streamCommitted.Value(), s.metrics.streamAppends.Value())
	}
	if got := s.streams.len(); got != 0 {
		t.Errorf("%d sessions still open after commit", got)
	}
}

// TestStreamConfigRidesTheKey pins that the config fixed at begin reaches the
// cache key: the same bytes streamed under a different config factor twice.
func TestStreamConfigRidesTheKey(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()
	h := s.Handler()
	const m, n = 24, 3
	data := testMatrix(62, m, n, 1)
	chunks := rowChunks(t, m, n, data, 12, 12)

	def := streamUpload(t, h, nil, n, chunks)
	reo := streamUpload(t, h, map[string]any{"reorthogonalize": true}, n, chunks)
	if def.Key == reo.Key {
		t.Fatalf("distinct configs share key %q", def.Key)
	}
	if !reo.Reorthogonalized {
		t.Error("reorthogonalize config did not reach the factorization")
	}
}

// TestStreamBinaryAppend sends the row blocks as binary frames over the
// internal/wirefmt protocol and checks content-equivalence with a JSON
// one-shot upload — the two encodings and two upload shapes are one service.
func TestStreamBinaryAppend(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()
	h := s.Handler()
	const m, n = 20, 4
	data := testMatrix(63, m, n, 1)

	var br streamBeginReply
	if code, _ := post(t, h, "/v1/factorize/stream/begin", map[string]any{"cols": n}, &br); code != 200 {
		t.Fatalf("begin status %d", code)
	}
	row := 0
	for _, hRows := range []int{8, 7, 5} {
		blk := make([]float64, 0, hRows*n)
		for j := 0; j < n; j++ {
			blk = append(blk, data[j*m+row:j*m+row+hRows]...)
		}
		row += hRows
		body := frameBody(t, map[string]any{"session": br.Session},
			wirefmt.MatrixSection(hRows, n, blk))
		rec := postFrame(t, h, "/v1/factorize/stream/append", body, "application/json")
		if rec.Code != 200 {
			t.Fatalf("binary append status %d: %s", rec.Code, rec.Body.String())
		}
	}
	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize/stream/commit", map[string]any{"session": br.Session}, &fr); code != 200 {
		t.Fatalf("commit status %d", code)
	}
	var one factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data)}, &one); code != 200 {
		t.Fatalf("one-shot status %d", code)
	}
	if one.Key != fr.Key || !one.Cached {
		t.Fatalf("binary-streamed key %q (one-shot %q, cached %v); want identical key and a cache hit",
			fr.Key, one.Key, one.Cached)
	}
}

// TestStreamValidation covers the refusal matrix of the stream endpoints.
func TestStreamValidation(t *testing.T) {
	s := New(Options{Workers: 1, MaxElements: 64})
	defer s.Close()
	h := s.Handler()

	checkErr := func(code int, hdr http.Header, wantStatus int, got *envelope, wantCode string) {
		t.Helper()
		_ = hdr
		if code != wantStatus || got.Error.Code != wantCode {
			t.Errorf("status %d code %q, want %d %q (%s)", code, got.Error.Code, wantStatus, wantCode, got.Error.Message)
		}
	}

	var env envelope
	code, hdr := post(t, h, "/v1/factorize/stream/begin", map[string]any{"cols": 0}, &env)
	checkErr(code, hdr, 400, &env, "bad_input")

	code, hdr = post(t, h, "/v1/factorize/stream/append",
		map[string]any{"session": "nope", "block": wireMat(2, 2, []float64{1, 2, 3, 4})}, &env)
	checkErr(code, hdr, 404, &env, "unknown_stream")

	code, hdr = post(t, h, "/v1/factorize/stream/commit", map[string]any{"session": "nope"}, &env)
	checkErr(code, hdr, 404, &env, "unknown_stream")

	code, hdr = post(t, h, "/v1/factorize/stream/append", map[string]any{"block": wireMat(1, 1, []float64{1})}, &env)
	checkErr(code, hdr, 400, &env, "bad_input")

	var br streamBeginReply
	if code, _ := post(t, h, "/v1/factorize/stream/begin", map[string]any{"cols": 2}, &br); code != 200 {
		t.Fatalf("begin status %d", code)
	}

	// Wrong block width.
	code, hdr = post(t, h, "/v1/factorize/stream/append",
		map[string]any{"session": br.Session, "block": wireMat(2, 3, make([]float64, 6))}, &env)
	checkErr(code, hdr, 400, &env, "bad_input")

	// Element cap: 64 elements / 2 cols = 32 rows max.
	code, hdr = post(t, h, "/v1/factorize/stream/append",
		map[string]any{"session": br.Session, "block": wireMat(40, 2, make([]float64, 80))}, &env)
	checkErr(code, hdr, 413, &env, "too_large")

	// Committing an empty session is a client error, and consumes the session.
	code, hdr = post(t, h, "/v1/factorize/stream/commit", map[string]any{"session": br.Session}, &env)
	checkErr(code, hdr, 400, &env, "bad_input")
	code, hdr = post(t, h, "/v1/factorize/stream/append",
		map[string]any{"session": br.Session, "block": wireMat(1, 2, []float64{1, 2})}, &env)
	checkErr(code, hdr, 404, &env, "unknown_stream")

	// Abort removes the session; a second abort does not resolve it.
	if code, _ = post(t, h, "/v1/factorize/stream/begin", map[string]any{"cols": 2}, &br); code != 200 {
		t.Fatalf("begin status %d", code)
	}
	if code, _ = post(t, h, "/v1/factorize/stream/abort", map[string]any{"session": br.Session}, nil); code != 200 {
		t.Fatalf("abort status %d", code)
	}
	code, hdr = post(t, h, "/v1/factorize/stream/abort", map[string]any{"session": br.Session}, &env)
	checkErr(code, hdr, 404, &env, "unknown_stream")
	if s.metrics.streamAborted.Value() != 1 {
		t.Errorf("aborted counter = %d, want 1", s.metrics.streamAborted.Value())
	}
}

// TestStreamSessionCap pins the open-session bound: begins past
// MaxStreamSessions get 429 until a session is released.
func TestStreamSessionCap(t *testing.T) {
	s := New(Options{Workers: 1, MaxStreamSessions: 2})
	defer s.Close()
	h := s.Handler()

	var first streamBeginReply
	for i := 0; i < 2; i++ {
		var br streamBeginReply
		if code, _ := post(t, h, "/v1/factorize/stream/begin", map[string]any{"cols": 1}, &br); code != 200 {
			t.Fatalf("begin %d status %d", i, code)
		}
		if i == 0 {
			first = br
		}
	}
	var env envelope
	code, hdr := post(t, h, "/v1/factorize/stream/begin", map[string]any{"cols": 1}, &env)
	if code != 429 || env.Error.Code != "overloaded" {
		t.Fatalf("begin past cap: status %d code %q, want 429 overloaded", code, env.Error.Code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if code, _ := post(t, h, "/v1/factorize/stream/abort", map[string]any{"session": first.Session}, nil); code != 200 {
		t.Fatalf("abort status %d", code)
	}
	if code, _ := post(t, h, "/v1/factorize/stream/begin", map[string]any{"cols": 1}, nil); code != 200 {
		t.Fatalf("begin after abort: status %d, want 200", code)
	}
}

// TestStreamBeginRetryAfterDerived is the contract test for the 429's
// Retry-After: it must be derived from the earliest session expiry — when a
// slot is guaranteed to free up — not the blanket 1-second default. With a
// long TTL and a freshly filled cap, the hint must land strictly between the
// default and the full TTL.
func TestStreamBeginRetryAfterDerived(t *testing.T) {
	const ttl = 30 * time.Second
	s := New(Options{Workers: 1, MaxStreamSessions: 1, StreamTTL: ttl})
	defer s.Close()
	h := s.Handler()

	if code, _ := post(t, h, "/v1/factorize/stream/begin", map[string]any{"cols": 1}, nil); code != 200 {
		t.Fatalf("begin status %d", code)
	}
	var env envelope
	code, hdr := post(t, h, "/v1/factorize/stream/begin", map[string]any{"cols": 1}, &env)
	if code != 429 || env.Error.Code != "overloaded" {
		t.Fatalf("begin past cap: status %d code %q, want 429 overloaded", code, env.Error.Code)
	}
	secs, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", hdr.Get("Retry-After"), err)
	}
	// The open session expires ~ttl from now; a meaningful hint points there.
	// 1 would be the blanket default (not derived); anything past the TTL
	// overshoots the guaranteed free slot.
	if secs <= 1 || secs > int(ttl.Seconds()) {
		t.Errorf("Retry-After = %ds, want derived value in (1, %.0f]", secs, ttl.Seconds())
	}
	// The error payload names the remedy, not just the condition.
	if !strings.Contains(env.Error.Message, "commit") {
		t.Errorf("429 message %q does not tell the client how to free a slot", env.Error.Message)
	}
}

// TestStreamTSQRRouting closes the loop on the tentpole: a tall-skinny matrix
// streamed through chunked upload routes through the parallel TSQR pipeline
// on commit, and the tcqrd_tsqr_* families record its block/stage shape.
func TestStreamTSQRRouting(t *testing.T) {
	s := New(Options{
		Workers: 2,
		Backend: LibraryBackend{TSQRMinRows: 32, TSQRBlockRows: 16},
	})
	defer s.Close()
	h := s.Handler()
	const m, n = 96, 8
	data := testMatrix(64, m, n, 1)

	fr := streamUpload(t, h, nil, n, rowChunks(t, m, n, data, 32, 32, 32))
	if fr.Rows != m || fr.Cached {
		t.Fatalf("commit reply %+v, want cold %dx%d factorization", fr, m, n)
	}
	if got := s.metrics.tsqrFactorize.Value(); got != 1 {
		t.Fatalf("tcqrd_tsqr_factorize_total = %d, want 1 (routing predicate missed a %dx%d matrix)", got, m, n)
	}
	// 96 rows / 16 block rows = 6 leaves.
	if c := s.metrics.tsqrBlocks.Count(); c != 1 {
		t.Fatalf("tsqr blocks histogram count = %d", c)
	}
	if max := s.metrics.tsqrBlocks.Max(); max != 6 {
		t.Errorf("tsqr blocks = %g, want 6", max)
	}
	for _, stage := range []string{"block_factor", "tree_reduce", "q_recover"} {
		if s.metrics.tsqrStageSeconds.With(stage).Count() != 1 {
			t.Errorf("tcqrd_tsqr_stage_seconds{stage=%q} has no observation", stage)
		}
	}

	// The cache hit on re-upload does not double-count the pipeline.
	var one factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data)}, &one); code != 200 {
		t.Fatalf("one-shot status %d", code)
	}
	if !one.Cached || one.Key != fr.Key {
		t.Fatalf("one-shot after streamed TSQR commit: cached=%v key match=%v", one.Cached, one.Key == fr.Key)
	}
	if got := s.metrics.tsqrFactorize.Value(); got != 1 {
		t.Errorf("cache hit bumped tcqrd_tsqr_factorize_total to %d", got)
	}

	// TSQR factorizations back solves like any other.
	x := make([]float64, n)
	for j := range x {
		x[j] = 1 + float64(j)/2
	}
	var sr solveReply
	if code, _ := post(t, h, "/v1/solve", map[string]any{"key": fr.Key, "b": matVecData(m, n, data, x)}, &sr); code != 200 {
		t.Fatalf("solve by TSQR key: status %d", code)
	}
	if d := maxDiff(sr.X, x); d > 1e-5 {
		t.Errorf("solve against TSQR factorization: max error %g", d)
	}
}

// TestTSQRRoutingPredicate pins the backend routing boundary directly.
func TestTSQRRoutingPredicate(t *testing.T) {
	cases := []struct {
		b          LibraryBackend
		rows, cols int
		want       bool
	}{
		{LibraryBackend{}, DefaultTSQRMinRows, 8, true},
		{LibraryBackend{}, DefaultTSQRMinRows - 1, 8, false},
		{LibraryBackend{}, DefaultTSQRMinRows, DefaultTSQRMinRows / 4, true},
		{LibraryBackend{}, DefaultTSQRMinRows, DefaultTSQRMinRows/4 + 1, false}, // not tall-skinny enough
		{LibraryBackend{TSQRMinRows: 32}, 32, 8, true},
		{LibraryBackend{TSQRMinRows: 32}, 31, 7, false},
		{LibraryBackend{TSQRMinRows: -1}, 1 << 20, 4, false}, // disabled
	}
	for _, tc := range cases {
		if got := tc.b.routeTSQR(tc.rows, tc.cols); got != tc.want {
			t.Errorf("routeTSQR(%d, %d) with min %d = %v, want %v",
				tc.rows, tc.cols, tc.b.TSQRMinRows, got, tc.want)
		}
	}
}

// TestStreamReaperLifecycle checks the background sweep end to end with a
// tiny TTL: an abandoned begin-without-commit session disappears on its own,
// its counters account for it, and no session survives Close.
func TestStreamReaperLifecycle(t *testing.T) {
	s := New(Options{Workers: 1, StreamTTL: 30 * time.Millisecond})
	defer s.Close()
	h := s.Handler()

	var br streamBeginReply
	if code, _ := post(t, h, "/v1/factorize/stream/begin", map[string]any{"cols": 2}, &br); code != 200 {
		t.Fatalf("begin status %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.streams.len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session not reaped %s after a %s TTL", time.Since(deadline.Add(-5*time.Second)), s.opts.StreamTTL)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.metrics.streamReaped.Value(); got != 1 {
		t.Errorf("reaped counter = %d, want 1", got)
	}
	var env envelope
	code, _ := post(t, h, "/v1/factorize/stream/commit", map[string]any{"session": br.Session}, &env)
	if code != 404 || env.Error.Code != "unknown_stream" {
		t.Errorf("commit after reap: status %d code %q, want 404 unknown_stream", code, env.Error.Code)
	}
}

// FuzzStreamFrameDecode throws raw bytes at the binary append decoder: it
// must never panic, every accepted frame must carry a structurally valid row
// block (the shape invariants the session registry relies on), and every
// rejection must be a client-class apiError — a hostile chunk can never take
// the 500 path, trip the degradation breaker, or corrupt a session.
func FuzzStreamFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a frame"))
	valid, _ := wirefmt.AppendFrame(nil,
		wirefmt.JSONSection([]byte(`{"session":"abc"}`)),
		wirefmt.MatrixSection(2, 3, []float64{1, 2, 3, 4, 5, 6}))
	f.Add(valid)
	noBlock, _ := wirefmt.AppendFrame(nil, wirefmt.JSONSection([]byte(`{"session":"abc"}`)))
	f.Add(noBlock)
	inMeta, _ := wirefmt.AppendFrame(nil,
		wirefmt.JSONSection([]byte(`{"session":"abc","block":{"rows":1,"cols":1,"data":[1]}}`)),
		wirefmt.MatrixSection(1, 1, []float64{1}))
	f.Add(inMeta)
	vecNotMat, _ := wirefmt.AppendFrame(nil,
		wirefmt.JSONSection([]byte(`{"session":"abc"}`)),
		wirefmt.VectorSection([]float64{1, 2}))
	f.Add(vecNotMat)
	if len(valid) > 8 {
		f.Add(valid[:len(valid)-3]) // truncated bulk section
		f.Add(valid[:9])            // truncated header
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		req, aerr := decodeStreamAppendFrame(body, nil)
		if aerr != nil {
			if aerr.status < 400 || aerr.status >= 500 {
				t.Fatalf("decode rejection carries server-class status %d (%s)", aerr.status, aerr.msg)
			}
			return
		}
		if req.Block == nil {
			t.Fatal("accepted frame without a row block")
		}
		// matrix() is the gate the append handler applies before the registry
		// sees the block: an accepted frame either passes it or is rejected
		// with a client error, never a panic.
		if blk, err := req.Block.matrix(); err == nil {
			if blk.Rows <= 0 || blk.Cols <= 0 || len(req.Block.Data) != blk.Rows*blk.Cols {
				t.Fatalf("validated block has inconsistent shape %dx%d with %d elements",
					blk.Rows, blk.Cols, len(req.Block.Data))
			}
		}
	})
}
