package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStress64ConcurrentClients hammers one server with 64 concurrent
// clients over a handful of overlapping matrices, mixing cold factorizes,
// cache hits, singleflight followers, coalesced solves and deliberate bad
// requests. It is the -race gate for the whole subsystem: the assertion is
// mostly "nothing tears, every response is one of the statuses the API
// promises, and every solution that comes back is correct".
func TestStress64ConcurrentClients(t *testing.T) {
	const (
		clients  = 64
		iters    = 6
		matrices = 5
		m, n     = 64, 16
	)
	s := New(Options{
		Workers:    4,
		QueueDepth: 256,
		Window:     500 * time.Microsecond,
		MaxBatch:   16,
	})
	h := s.Handler()

	// Pre-build the shared matrix set; clients overlap on these, so the
	// cache, singleflight and coalescer all see contention.
	type fixture struct {
		data []float64
		mat  map[string]any
		x    []float64
		b    []float64
	}
	fixtures := make([]fixture, matrices)
	for i := range fixtures {
		data := testMatrix(uint64(100+i), m, n, 1)
		x := make([]float64, n)
		for j := range x {
			x[j] = float64(i+1) + float64(j)/8
		}
		fixtures[i] = fixture{data: data, mat: wireMat(m, n, data), x: x, b: matVecData(m, n, data, x)}
	}

	var solved, factored, rejected atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				fx := &fixtures[(c+it)%matrices]
				switch (c + it) % 3 {
				case 0: // factorize (cold, hit or shared — all must be 200)
					var fr factorizeReply
					code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": fx.mat}, &fr)
					if code != 200 {
						t.Errorf("client %d iter %d: factorize code=%d", c, it, code)
						return
					}
					factored.Add(1)
				case 1: // solve by matrix, verify the answer
					var sr solveReply
					code, _ := post(t, h, "/v1/solve",
						map[string]any{"matrix": fx.mat, "b": fx.b}, &sr)
					switch code {
					case 200:
						if d := maxDiff(sr.X, fx.x); d > 1e-6 {
							t.Errorf("client %d iter %d: wrong solution, error %g", c, it, d)
							return
						}
						solved.Add(1)
					case 429, 503: // legal backpressure under load
						rejected.Add(1)
					default:
						t.Errorf("client %d iter %d: solve code=%d", c, it, code)
						return
					}
				case 2: // a bad request mixed into the traffic
					var er envelope
					code, _ := post(t, h, "/v1/solve",
						map[string]any{"key": fx.mat["rows"].(int), "b": fx.b}, &er)
					if code != 400 {
						t.Errorf("client %d iter %d: malformed solve code=%d, want 400", c, it, code)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()

	if solved.Load() == 0 || factored.Load() == 0 {
		t.Fatalf("stress produced no successful work: solved=%d factored=%d", solved.Load(), factored.Load())
	}
	// The cache must have deduplicated: matrices distinct keys, not one per
	// factorize request.
	cs := s.Cache().Stats()
	if cs.Entries != matrices {
		t.Fatalf("cache holds %d entries, want %d", cs.Entries, matrices)
	}
	if cs.Misses > int64(matrices) {
		t.Fatalf("cache missed %d times for %d distinct matrices (singleflight broken?)", cs.Misses, matrices)
	}
	t.Logf("stress: solved=%d factored=%d rejected=%d cache=%+v coalescer=%+v",
		solved.Load(), factored.Load(), rejected.Load(), cs, s.CoalescerStats())
}
