package serve

// Failpoint site names threaded through the serving stack (see
// internal/faultinject and DESIGN.md §11 for the naming scheme and spec
// grammar). Each is a single atomic nil-check unless a fault schedule is
// armed. Sites outside this package: gram.ladder.rung (forces a panel-rung
// breakdown, driving the escalation ladder), tcsim.gemm (delays or corrupts
// an engine GEMM result), tsqr.block.factor / tsqr.tree.reduce (fail one
// leaf factorization or one reduction node of the parallel TSQR pipeline),
// and the cluster tier's cluster.route / cluster.replicate / cluster.probe /
// cluster.handoff (fail a peer forward, a replica fan-out delivery, a health
// probe, or a handoff hint delivery — the schedule TestClusterChaosSoak
// arms; see DESIGN.md §14).
const (
	// sitePoolEnqueue fires in Pool.Do before a task enters the queue;
	// error faults surface as 500s from the submitting request.
	sitePoolEnqueue = "serve.pool.enqueue"
	// sitePoolDequeue fires in the worker between dequeuing a task and
	// running it — the window the panic-recovery hardening test aims at.
	sitePoolDequeue = "serve.pool.dequeue"
	// siteCacheFactorize fires in the cache leader immediately before the
	// backend Factorize call; panics here exercise the singleflight
	// poison-recovery path.
	siteCacheFactorize = "serve.cache.factorize"
	// siteCoalesceFlush fires at the head of every batch flush; delay
	// faults simulate slow flushes, error faults fail the whole batch.
	siteCoalesceFlush = "serve.coalesce.flush"
	// siteWireDecode fires inside request-body decoding; error faults
	// surface as 400 bad_input, exactly like a real decode failure.
	siteWireDecode = "serve.wire.decode"
	// siteWireEncode fires before response encoding; error faults surface
	// as 500s after compute succeeded.
	siteWireEncode = "serve.wire.encode"
	// siteStreamAppend fires in the chunked-upload append handler after the
	// session is resolved but before the row block is accepted; error faults
	// surface as 500s and leave the session intact for a client retry.
	siteStreamAppend = "serve.stream.append"
	// siteUpdateApply fires inside /v1/update between pinning the current
	// epoch and computing the updated factorization; error faults abort the
	// update (the current epoch stays published, the series unlocks).
	siteUpdateApply = "serve.update.apply"
	// siteSpillWrite fires in the spill writer after encoding, modeling a
	// crash: a torn (half-length) file is left at the final name — the
	// artifact the checksummed rewarm pass must quarantine.
	siteSpillWrite = "serve.spill.write"
	// siteSpillLoad fires per file during restart rewarm; error faults skip
	// the file as a read error without quarantining it.
	siteSpillLoad = "serve.spill.load"
)
