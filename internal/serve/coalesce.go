package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tcqr"
	"tcqr/internal/accuracy"
	"tcqr/internal/faultinject"
	"tcqr/internal/metrics"
)

// CoalescerStats is a snapshot of the coalescer counters.
type CoalescerStats struct {
	// Batches counts flushes (each issues exactly one backend call).
	Batches int64 `json:"batches"`
	// BatchedRequests counts requests that went through batches of size > 1.
	BatchedRequests int64 `json:"batched_requests"`
	// MultiSolveCalls counts flushes executed as one SolveMultiWithFactor.
	MultiSolveCalls int64 `json:"multi_solve_calls"`
	// SingleSolveCalls counts size-1 flushes (plain SolveWithFactor).
	SingleSolveCalls int64 `json:"single_solve_calls"`
	// MaxBatch is the largest batch flushed so far.
	MaxBatch int64 `json:"max_batch"`
}

// solveOutcome is what one coalesced request gets back: its own column of
// the batched solution plus the shared hazard record.
type solveOutcome struct {
	x          []float64
	iterations int
	converged  bool
	optimality float64
	hazards    []tcqr.Hazard
	batched    int // batch size this request rode in
	queueWait  time.Duration
	solveTime  time.Duration
	err        error
}

// solveWaiter is one parked request inside a batch.
type solveWaiter struct {
	b  []float64
	at time.Time
	ch chan solveOutcome // buffered(1): the flusher never blocks on it
}

// batch accumulates same-factorization solves until the window closes or
// the batch is full.
type batch struct {
	entry   *Entry
	opts    tcqr.SolveOptions
	fp      string
	shard   *coalesceShard
	waiters []*solveWaiter
	timer   *time.Timer
	flushed bool
}

// coalesceShards is the shard count of the pending-batch map: a power of
// two sized so that at the target concurrency (64 clients across 8 cores)
// unrelated fingerprints rarely contend on one shard lock.
const coalesceShards = 16

// coalesceShard is one slice of the pending map with its own lock, padded
// so neighboring shard locks do not share a cache line.
type coalesceShard struct {
	mu      sync.Mutex
	pending map[string]*batch
	_       [40]byte
}

// Coalescer batches solve requests that arrive within Window of each other
// against the same cached factorization (and compatible solve options) into
// a single SolveLeastSquaresMulti-shaped call: one GEMM-shaped refinement
// pass instead of N independent solves — exactly the tall-skinny multi-RHS
// shape the factorization is fastest at. A batch flushes when its window
// timer fires or when it reaches MaxBatch, whichever is first. Window <= 0
// disables coalescing (every request solves solo, still through the pool).
//
// The pending map is sharded by fingerprint and the counters are striped or
// atomic, so concurrent submissions against different factorizations never
// serialize on a global lock — requests for the same fingerprint contend
// only on their own shard, which is exactly the pair that must rendezvous
// to batch.
type Coalescer struct {
	window   time.Duration
	maxBatch int
	backend  Backend
	// run executes a flush; the server points it at the worker pool so
	// coalesced batches obey the same admission control as everything else.
	run func(fn func()) error
	// onFlush, when set, observes every flushed batch size (the server wires
	// it to the batch-size histogram). Set before serving begins; not
	// synchronized.
	onFlush func(size int)
	// retain/release, when set, pin a batch's entry for the batch's own
	// lifetime (the server wires them to the cache refcount). A handler
	// abandoned on deadline releases its reference and returns, but the
	// detached flush still reads entry.F/entry.A — without the batch's own
	// pin, an eviction or update retirement could drain the entry first.
	// Set before serving begins; not synchronized.
	retain  func(*Entry)
	release func(*Entry)

	shards [coalesceShards]coalesceShard

	batches     metrics.Striped
	batchedReqs metrics.Striped
	multiCalls  metrics.Striped
	singleCalls metrics.Striped
	maxSeen     atomic.Int64
}

// NewCoalescer builds a coalescer. run executes batch flushes (one call per
// batch); nil runs flushes inline.
func NewCoalescer(window time.Duration, maxBatch int, be Backend, run func(fn func()) error) *Coalescer {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if run == nil {
		run = func(fn func()) error { fn(); return nil }
	}
	c := &Coalescer{
		window:   window,
		maxBatch: maxBatch,
		backend:  be,
		run:      run,
	}
	for i := range c.shards {
		c.shards[i].pending = make(map[string]*batch)
	}
	return c
}

// solveFingerprint keys batch compatibility: requests may share a multi-RHS
// call only when the refinement would be configured identically.
func solveFingerprint(key string, opts tcqr.SolveOptions) string {
	return fmt.Sprintf("%s|m%d-t%g-i%d-h%d", key, int(opts.Method), opts.Tol, opts.MaxIterations, int(opts.OnHazard))
}

// shardFor maps a fingerprint to its shard (FNV-1a over the string).
func (c *Coalescer) shardFor(fp string) *coalesceShard {
	h := uint32(2166136261)
	for i := 0; i < len(fp); i++ {
		h = (h ^ uint32(fp[i])) * 16777619
	}
	return &c.shards[h&(coalesceShards-1)]
}

// Submit parks a solve for entry until its batch flushes and returns this
// request's slice of the result. If ctx expires first the request abandons
// the batch (the batch still computes; the outcome is discarded).
func (c *Coalescer) Submit(ctx context.Context, entry *Entry, opts tcqr.SolveOptions, b []float64) solveOutcome {
	w := &solveWaiter{b: b, at: time.Now(), ch: make(chan solveOutcome, 1)}

	if c.window <= 0 || c.maxBatch == 1 {
		bt := &batch{entry: entry, opts: opts, waiters: []*solveWaiter{w}, flushed: true}
		if c.retain != nil {
			c.retain(entry)
		}
		c.execute(bt)
	} else {
		fp := solveFingerprint(entry.Key, opts)
		sh := c.shardFor(fp)
		sh.mu.Lock()
		bt := sh.pending[fp]
		if bt == nil {
			bt = &batch{entry: entry, opts: opts, fp: fp, shard: sh}
			if c.retain != nil {
				c.retain(entry)
			}
			bt.timer = time.AfterFunc(c.window, func() { c.flush(bt) })
			sh.pending[fp] = bt
		}
		bt.waiters = append(bt.waiters, w)
		full := len(bt.waiters) >= c.maxBatch
		sh.mu.Unlock()
		if full {
			c.flush(bt)
		}
	}

	select {
	case out := <-w.ch:
		return out
	case <-ctx.Done():
		return solveOutcome{err: ErrDeadline}
	}
}

// flush detaches the batch from its shard's pending map (idempotently — the
// window timer and the batch-full path can race) and executes it.
func (c *Coalescer) flush(bt *batch) {
	sh := bt.shard
	sh.mu.Lock()
	if bt.flushed {
		sh.mu.Unlock()
		return
	}
	bt.flushed = true
	delete(sh.pending, bt.fp)
	if bt.timer != nil {
		bt.timer.Stop()
	}
	sh.mu.Unlock()
	go c.execute(bt)
}

// execute runs one batch through the backend — a single SolveWithFactor for
// a solo request, a single SolveMultiWithFactor for a coalesced one — and
// distributes per-column outcomes to the waiters.
func (c *Coalescer) execute(bt *batch) {
	// The batch's own entry pin (taken at batch creation) drops only after
	// the flush has finished reading the factors and distributing outcomes.
	if c.release != nil {
		defer c.release(bt.entry)
	}
	k := len(bt.waiters)
	if c.onFlush != nil {
		c.onFlush(k)
	}
	c.batches.Inc()
	if k > 1 {
		c.batchedReqs.Add(int64(k))
	}
	for {
		cur := c.maxSeen.Load()
		if int64(k) <= cur || c.maxSeen.CompareAndSwap(cur, int64(k)) {
			break
		}
	}

	err := c.run(func() {
		// Failpoint: a delay here simulates a slow flush (every waiter in
		// the batch sees the latency), an error or panic fails the whole
		// batch — the fan-out below delivers it to every waiter.
		if ferr := faultinject.Fire(siteCoalesceFlush); ferr != nil {
			panic(ferr)
		}
		// Everything before this moment — the coalescing window plus the
		// pool queue — is this batch's queue wait.
		start := time.Now()
		if k == 1 {
			w := bt.waiters[0]
			res, serr := c.backend.SolveWithFactor(bt.entry.F, bt.entry.A, w.b, bt.opts)
			c.singleCalls.Inc()
			out := solveOutcome{batched: 1, queueWait: start.Sub(w.at), solveTime: time.Since(start), err: serr}
			if serr == nil {
				out.x = res.X
				out.iterations = res.Iterations
				out.converged = res.Converged
				out.optimality = res.Optimality
				out.hazards = res.Hazards
			}
			w.ch <- out
			return
		}
		m := bt.entry.A.Rows
		rhs := tcqr.NewMatrix(m, k)
		for j, w := range bt.waiters {
			copy(rhs.Col(j), w.b)
		}
		res, serr := c.backend.SolveMultiWithFactor(bt.entry.F, bt.entry.A, rhs, bt.opts)
		c.multiCalls.Inc()
		solveTime := time.Since(start)
		for j, w := range bt.waiters {
			out := solveOutcome{batched: k, queueWait: start.Sub(w.at), solveTime: solveTime, err: serr}
			if serr == nil {
				x := append([]float64(nil), res.X.Col(j)...)
				out.x = x
				out.iterations = res.Iterations[j]
				out.converged = res.Converged[j]
				out.optimality = accuracy.LLSOptimality(bt.entry.A, x, w.b)
				out.hazards = res.Hazards
			}
			w.ch <- out
		}
	})
	if err != nil {
		// The scheduler rejected the whole flush (queue full, draining,
		// deadline) or the flush panicked partway: every waiter that has not
		// already received an outcome sees the error. The send is
		// non-blocking because a waiter whose buffered slot was filled
		// before a mid-distribution panic keeps its delivered outcome.
		for _, w := range bt.waiters {
			select {
			case w.ch <- solveOutcome{err: err}:
			default:
			}
		}
	}
}

// Stats returns a snapshot of the coalescer counters.
func (c *Coalescer) Stats() CoalescerStats {
	return CoalescerStats{
		Batches:          c.batches.Load(),
		BatchedRequests:  c.batchedReqs.Load(),
		MultiSolveCalls:  c.multiCalls.Load(),
		SingleSolveCalls: c.singleCalls.Load(),
		MaxBatch:         c.maxSeen.Load(),
	}
}

// PendingFlush flushes every pending batch immediately (graceful drain:
// parked requests must complete, not hang for a window that may never be
// serviced).
func (c *Coalescer) PendingFlush() {
	var bts []*batch
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, bt := range sh.pending {
			bts = append(bts, bt)
		}
		sh.mu.Unlock()
	}
	for _, bt := range bts {
		c.flush(bt)
	}
}
