package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"tcqr"
	"tcqr/internal/faultinject"
	"tcqr/internal/hazard"
)

// This file is the JSON wire vocabulary of the daemon: request/response
// bodies for the three compute endpoints, the serialized form of the typed
// hazard events (so clients see what the PR 2 fallback ladder did), and the
// error envelope with its HTTP status mapping.

// WireMatrix carries a dense matrix over JSON in the library's column-major
// convention: Data[i + j*Rows] is element (i, j).
type WireMatrix struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

// matrix validates the wire form and wraps it as a library matrix (no
// copy beyond the decoded slice).
func (w *WireMatrix) matrix() (*tcqr.Matrix, error) {
	if w == nil {
		return nil, errBadInput("missing matrix")
	}
	if w.Rows <= 0 || w.Cols <= 0 {
		return nil, errBadInput(fmt.Sprintf("matrix is %dx%d; need at least 1x1", w.Rows, w.Cols))
	}
	// Shape check via division, not multiplication: rows*cols can wrap for
	// huge dimensions (rows=cols=2^32 multiplies to 0, matching empty data)
	// and a bogus matrix would panic deep in the compute pipeline. After
	// this check rows*cols == len(Data) holds as an exact, non-overflowing
	// int.
	if len(w.Data)%w.Cols != 0 || len(w.Data)/w.Cols != w.Rows {
		return nil, errBadInput(fmt.Sprintf("matrix data holds %d elements; a %dx%d matrix needs exactly rows*cols",
			len(w.Data), w.Rows, w.Cols))
	}
	return tcqr.FromColMajor(w.Rows, w.Cols, w.Data), nil
}

// fromMatrix converts a library matrix to its wire form (tight copy).
func fromMatrix(m *tcqr.Matrix32) WireMatrix {
	out := WireMatrix{Rows: m.Rows, Cols: m.Cols, Data: make([]float64, 0, m.Rows*m.Cols)}
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			out.Data = append(out.Data, float64(v))
		}
	}
	return out
}

// WireConfig is the JSON form of tcqr.Config. Zero values are the library
// defaults (fp16 engine, CAQR panel, cutoff 128, scaling on, fail policy).
type WireConfig struct {
	// Engine selects the simulated device: "fp16" (default), "tc-ec"
	// (error-corrected fp16 TensorCore, fp32-grade accuracy at 3× the GEMM
	// count), "bf16", "fp32".
	Engine string `json:"engine,omitempty"`
	// Panel selects the panel algorithm: "caqr" (default), "householder",
	// "cholqr", "mgs".
	Panel string `json:"panel,omitempty"`
	// Cutoff is the recursion cutoff width (0 = library default 128).
	Cutoff int `json:"cutoff,omitempty"`
	// Reorthogonalize runs the "twice is enough" second pass.
	Reorthogonalize bool `json:"reorthogonalize,omitempty"`
	// DisableColumnScaling turns off the §3.5 overflow safeguard.
	DisableColumnScaling bool `json:"disable_column_scaling,omitempty"`
	// OnHazard selects the hazard policy: "fail" (default) or "fallback".
	OnHazard string `json:"on_hazard,omitempty"`
}

// config translates the wire form, rejecting unknown enum strings.
func (w WireConfig) config() (tcqr.Config, error) {
	var cfg tcqr.Config
	switch w.Engine {
	case "", "fp16":
	case "tc-ec":
		cfg.UseTCEC = true
	case "bf16":
		cfg.UseBFloat16 = true
	case "fp32":
		cfg.DisableTensorCore = true
	default:
		return cfg, errBadInput(fmt.Sprintf("unknown engine %q (want fp16, tc-ec, bf16 or fp32)", w.Engine))
	}
	switch w.Panel {
	case "", "caqr":
		cfg.Panel = tcqr.PanelCAQR
	case "householder":
		cfg.Panel = tcqr.PanelHouseholder
	case "cholqr":
		cfg.Panel = tcqr.PanelCholQR
	case "mgs":
		cfg.Panel = tcqr.PanelMGS
	default:
		return cfg, errBadInput(fmt.Sprintf("unknown panel %q (want caqr, householder, cholqr or mgs)", w.Panel))
	}
	if w.Cutoff < 0 {
		return cfg, errBadInput(fmt.Sprintf("cutoff %d < 0", w.Cutoff))
	}
	cfg.Cutoff = w.Cutoff
	cfg.ReOrthogonalize = w.Reorthogonalize
	cfg.DisableColumnScaling = w.DisableColumnScaling
	pol, err := wirePolicy(w.OnHazard)
	if err != nil {
		return cfg, err
	}
	cfg.OnHazard = pol
	return cfg, nil
}

// WireSolveOptions is the JSON form of tcqr.SolveOptions (the refinement
// side; the factorization side rides in the request's config).
type WireSolveOptions struct {
	// Method selects the refinement engine: "cgls" (default), "lsqr",
	// "classical", "none".
	Method string `json:"method,omitempty"`
	// Tol is the relative convergence tolerance (0 = library default).
	Tol float64 `json:"tol,omitempty"`
	// MaxIterations caps refinement (0 = library default).
	MaxIterations int `json:"max_iterations,omitempty"`
	// OnHazard selects the hazard policy: "fail" (default) or "fallback".
	OnHazard string `json:"on_hazard,omitempty"`
}

func (w WireSolveOptions) options() (tcqr.SolveOptions, error) {
	var opts tcqr.SolveOptions
	switch w.Method {
	case "", "cgls":
		opts.Method = tcqr.RefineCGLS
	case "lsqr":
		opts.Method = tcqr.RefineLSQR
	case "classical":
		opts.Method = tcqr.RefineClassical
	case "none":
		opts.Method = tcqr.RefineNone
	default:
		return opts, errBadInput(fmt.Sprintf("unknown method %q (want cgls, lsqr, classical or none)", w.Method))
	}
	if w.Tol < 0 || w.MaxIterations < 0 {
		return opts, errBadInput("tol and max_iterations must be >= 0")
	}
	opts.Tol = w.Tol
	opts.MaxIterations = w.MaxIterations
	pol, err := wirePolicy(w.OnHazard)
	if err != nil {
		return opts, err
	}
	opts.OnHazard = pol
	return opts, nil
}

func wirePolicy(s string) (tcqr.HazardPolicy, error) {
	switch s {
	case "", "fail":
		return tcqr.HazardFail, nil
	case "fallback":
		return tcqr.HazardFallback, nil
	}
	return tcqr.HazardFail, errBadInput(fmt.Sprintf("unknown on_hazard %q (want fail or fallback)", s))
}

// WireHazard is the serialized form of one typed hazard event.
type WireHazard struct {
	Kind   string `json:"kind"`
	Stage  string `json:"stage"`
	Detail string `json:"detail"`
	Action string `json:"action,omitempty"`
}

// wireHazards serializes a hazard list; nil in, nil out (omitted in JSON).
func wireHazards(hs []tcqr.Hazard) []WireHazard {
	if len(hs) == 0 {
		return nil
	}
	out := make([]WireHazard, len(hs))
	for i, h := range hs {
		out[i] = WireHazard{Kind: h.Kind.String(), Stage: h.Stage, Detail: h.Detail, Action: h.Action}
	}
	return out
}

// wireEngineStats is the serialized EngineStats.
type wireEngineStats struct {
	GemmCalls  int64 `json:"gemm_calls"`
	Flops      int64 `json:"flops"`
	Overflows  int64 `json:"overflows"`
	Underflows int64 `json:"underflows"`
}

// factorizeRequest is the body of POST /v1/factorize.
type factorizeRequest struct {
	Matrix *WireMatrix `json:"matrix"`
	Config WireConfig  `json:"config"`
	// DeadlineMS optionally tightens the server's default deadline for this
	// request (milliseconds).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// factorizeResponse reports the cached factorization. Key addresses it in
// subsequent /v1/solve requests without re-uploading the matrix.
type factorizeResponse struct {
	Key              string          `json:"key"`
	Rows             int             `json:"rows"`
	Cols             int             `json:"cols"`
	Cached           bool            `json:"cached"`
	Shared           bool            `json:"shared"`
	Reorthogonalized bool            `json:"reorthogonalized"`
	EngineStats      wireEngineStats `json:"engine_stats"`
	Hazards          []WireHazard    `json:"hazards,omitempty"`
}

// solveRequest is the body of POST /v1/solve: either Key (a prior
// factorize response) or Matrix+Config must be given, plus the right-hand
// side B.
type solveRequest struct {
	Key        string           `json:"key,omitempty"`
	Matrix     *WireMatrix      `json:"matrix,omitempty"`
	Config     WireConfig       `json:"config"`
	B          []float64        `json:"b"`
	Options    WireSolveOptions `json:"options"`
	DeadlineMS int64            `json:"deadline_ms,omitempty"`
}

// solveResponse is one least squares solution. Batched reports how many
// concurrent requests shared the underlying multi-RHS call (1 = solo).
type solveResponse struct {
	X          []float64    `json:"x"`
	Iterations int          `json:"iterations"`
	Converged  bool         `json:"converged"`
	Optimality float64      `json:"optimality"`
	Key        string       `json:"key"`
	Cached     bool         `json:"cached"`
	Batched    int          `json:"batched"`
	Hazards    []WireHazard `json:"hazards,omitempty"`
}

// updateRequest is the body of POST /v1/update: an incremental mutation of
// the cached factorization behind key — append a row block, or remove the
// trailing remove_rows rows (exactly one of the two). The key may be a bare
// base key (the update applies to the newest epoch) or an explicit
// key@epoch, which must still be current: updates always chain off the
// series head.
type updateRequest struct {
	Key        string      `json:"key"`
	Append     *WireMatrix `json:"append,omitempty"`
	RemoveRows int         `json:"remove_rows,omitempty"`
	DeadlineMS int64       `json:"deadline_ms,omitempty"`
}

// updateResponse reports the newly published epoch. Subsequent solves by
// the bare base key resolve it automatically; the versioned key pins it.
type updateResponse struct {
	Key     string       `json:"key"`
	BaseKey string       `json:"base_key"`
	Epoch   uint64       `json:"epoch"`
	Rows    int          `json:"rows"`
	Cols    int          `json:"cols"`
	Hazards []WireHazard `json:"hazards,omitempty"`
}

// streamBeginRequest opens a chunked-upload session (POST
// /v1/factorize/stream/begin): the column count and factorization config are
// fixed up front so every appended row block can be validated against them
// and the commit needs no further negotiation.
type streamBeginRequest struct {
	Cols   int        `json:"cols"`
	Config WireConfig `json:"config"`
}

// streamBeginResponse returns the minted session id and its idle TTL: the
// session is reaped if no append or commit arrives within ttl_ms.
type streamBeginResponse struct {
	Session string `json:"session"`
	TTLMS   int64  `json:"ttl_ms"`
}

// streamAppendRequest adds one row block (POST /v1/factorize/stream/append).
// Over JSON the block rides in the body; over the binary protocol it is a
// matrix section and the metadata carries only the session id.
type streamAppendRequest struct {
	Session string      `json:"session"`
	Block   *WireMatrix `json:"block,omitempty"`
}

// streamAppendResponse acknowledges one accepted block with the session's
// accumulated shape.
type streamAppendResponse struct {
	Session string `json:"session"`
	Rows    int    `json:"rows"`
	Blocks  int    `json:"blocks"`
}

// streamCommitRequest finalizes a session (POST /v1/factorize/stream/commit):
// the assembled matrix is factored through the standard pipeline and the
// response is the same factorizeResponse a one-shot upload would get.
type streamCommitRequest struct {
	Session    string `json:"session"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
}

// streamAbortRequest discards a session (POST /v1/factorize/stream/abort).
type streamAbortRequest struct {
	Session string `json:"session"`
}

type streamAbortResponse struct {
	Session string `json:"session"`
	Aborted bool   `json:"aborted"`
}

// lowRankRequest is the body of POST /v1/lowrank.
type lowRankRequest struct {
	Matrix     *WireMatrix `json:"matrix"`
	Rank       int         `json:"rank"`
	Config     WireConfig  `json:"config"`
	DeadlineMS int64       `json:"deadline_ms,omitempty"`
}

// lowRankResponse carries the truncated SVD factors.
type lowRankResponse struct {
	U       WireMatrix   `json:"u"`
	S       []float64    `json:"s"`
	V       WireMatrix   `json:"v"`
	Rank    int          `json:"rank"`
	Hazards []WireHazard `json:"hazards,omitempty"`
}

// errorBody is the uniform error envelope: every non-2xx response carries
// exactly this shape.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	// Code is a stable machine-readable class: bad_input, unknown_key,
	// unknown_stream, numerical_hazard, overloaded, draining, deadline,
	// too_large, method_not_allowed, not_found, internal.
	Code    string `json:"code"`
	Message string `json:"message"`
	// Hazards carries the typed events recorded before the request failed
	// (present on numerical_hazard responses when available).
	Hazards []WireHazard `json:"hazards,omitempty"`
}

// apiError is an error with a wire code and HTTP status. The handlers build
// every failure out of these so the envelope and status mapping stay in one
// place.
type apiError struct {
	status  int
	code    string
	msg     string
	hazards []WireHazard
	// retryAfter, when > 0, overrides the Retry-After header on 429/503
	// responses (seconds). Degraded-mode rejections set it to the remaining
	// cooldown so clients back off for the right interval.
	retryAfter int
}

func (e *apiError) Error() string { return e.msg }

func errBadInput(msg string) *apiError {
	return &apiError{status: http.StatusBadRequest, code: "bad_input", msg: msg}
}

// classifyError maps any error escaping the compute pipeline to an
// apiError: library input-validation errors become bad_input (the client
// sent unusable data), numerical hazards under the fail policy become
// numerical_hazard (the data was well-formed but the computation refused to
// return garbage), admission errors keep their backpressure status.
func classifyError(err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	switch {
	case errors.Is(err, ErrQueueFull):
		return &apiError{status: http.StatusTooManyRequests, code: "overloaded", msg: err.Error()}
	case errors.Is(err, ErrDraining):
		return &apiError{status: http.StatusServiceUnavailable, code: "draining", msg: err.Error()}
	case errors.Is(err, ErrDeadline):
		return &apiError{status: http.StatusGatewayTimeout, code: "deadline", msg: err.Error()}
	case errors.Is(err, tcqr.ErrNonFinite) && !errors.Is(err, tcqr.ErrOverflow),
		errors.Is(err, tcqr.ErrEmpty),
		errors.Is(err, tcqr.ErrShape):
		return &apiError{status: http.StatusBadRequest, code: "bad_input", msg: err.Error()}
	case errors.Is(err, tcqr.ErrOverflow),
		errors.Is(err, tcqr.ErrBreakdown),
		errors.Is(err, tcqr.ErrStagnation),
		errors.Is(err, tcqr.ErrDivergence):
		return &apiError{status: http.StatusUnprocessableEntity, code: "numerical_hazard", msg: err.Error()}
	}
	return &apiError{status: http.StatusInternalServerError, code: "internal", msg: err.Error()}
}

// decodeJSON decodes a request body strictly: unknown fields and trailing
// data are errors, and the reader is size-capped by the caller.
func decodeJSON(r io.Reader, v any) error {
	// Failpoint: an injected decode error surfaces as 400 bad_input,
	// indistinguishable from a real malformed body (and, like one, is never
	// retried by the server).
	if err := faultinject.Fire(siteWireDecode); err != nil {
		return errBadInput("malformed JSON body: " + err.Error())
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errBadInput("malformed JSON body: " + err.Error())
	}
	if dec.More() {
		return errBadInput("trailing data after JSON body")
	}
	return nil
}

// compile-time check: the public Hazard alias and the internal event type
// stay identical (the wire layer serializes the internal vocabulary
// directly).
var _ []tcqr.Hazard = []hazard.Event(nil)
