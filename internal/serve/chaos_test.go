package serve

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"tcqr/internal/faultinject"
	"tcqr/internal/matgen"
)

// This file is the chaos/soak battery: many concurrent clients against a
// seeded fault schedule spanning every failpoint layer — panics inside
// Factorize, slow coalescer flushes, wire decode errors, pool dequeue
// panics. The invariants are structural, not value-level: no request hangs,
// no response is lost, every status is one the API promises, the response
// and error counters account for exactly the traffic sent, and the server
// drains to idle afterwards. Run it under -race; skip it under -short.

// legalChaosStatus are the statuses a request may legally see while faults
// are being injected: success, client-class rejections, numerical refusal,
// backpressure, exhausted-retry internals, degraded/draining 503s, and
// deadline 504s.
var legalChaosStatus = map[int]bool{
	200: true, 400: true, 404: true, 413: true, 422: true,
	429: true, 500: true, 503: true, 504: true,
}

func TestChaosBattery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos battery skipped in -short mode")
	}
	const (
		clients  = 64
		iters    = 8
		matrices = 5
		m, n     = 48, 12
	)
	s := New(Options{
		Workers:          4,
		QueueDepth:       512,
		Window:           300 * time.Microsecond,
		MaxBatch:         8,
		Retry:            fastRetry(3),
		DegradeThreshold: 8,
		DegradeCooldown:  200 * time.Millisecond,
	})
	defer s.Close()
	h := s.Handler()
	arm(t, "seed=1337"+
		";serve.cache.factorize=panic@p=0.25"+
		";serve.coalesce.flush=delay(300us)@p=0.2"+
		";serve.wire.decode=error@p=0.08"+
		";serve.pool.dequeue=panic@p=0.03"+
		";serve.pool.enqueue=delay(50us)@p=0.1")

	type fixture struct {
		mat map[string]any
		x   []float64
		b   []float64
	}
	fixtures := make([]fixture, matrices)
	for i := range fixtures {
		data := testMatrix(uint64(900+i), m, n, 1)
		x := make([]float64, n)
		for j := range x {
			x[j] = float64(i+1) + float64(j)/4
		}
		fixtures[i] = fixture{mat: wireMat(m, n, data), x: x, b: matVecData(m, n, data, x)}
	}

	var (
		mu       sync.Mutex
		byStatus = map[int]int64{}
	)
	note := func(code int) {
		mu.Lock()
		byStatus[code]++
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				fx := &fixtures[(c+it)%matrices]
				switch (c + 3*it) % 4 {
				case 0:
					code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": fx.mat}, nil)
					note(code)
					if !legalChaosStatus[code] {
						t.Errorf("client %d iter %d: factorize status %d not in the API contract", c, it, code)
					}
				case 1, 2:
					var sr solveReply
					code, _ := post(t, h, "/v1/solve", map[string]any{"matrix": fx.mat, "b": fx.b}, &sr)
					note(code)
					if !legalChaosStatus[code] {
						t.Errorf("client %d iter %d: solve status %d not in the API contract", c, it, code)
					}
					// The property invariant: a 200 under fault injection is a
					// real answer, never silent garbage.
					if code == 200 {
						if d := maxDiff(sr.X, fx.x); d > 1e-5 {
							t.Errorf("client %d iter %d: 200 with wrong solution (err %g)", c, it, d)
						}
					}
				case 3:
					code, _ := post(t, h, "/v1/lowrank", map[string]any{"matrix": fx.mat, "rank": 4}, nil)
					note(code)
					if !legalChaosStatus[code] {
						t.Errorf("client %d iter %d: lowrank status %d not in the API contract", c, it, code)
					}
				}
			}
		}(c)
	}
	wg.Wait()

	// No lost responses: every request returned exactly once.
	var total int64
	for _, v := range byStatus {
		total += v
	}
	if total != clients*iters {
		t.Fatalf("observed %d responses, sent %d requests", total, clients*iters)
	}

	// The metrics account for exactly the observed traffic: the per-status
	// response counters match the client-side tally (so every 5xx has its
	// increment), and the error counters sum to the non-200 count.
	respCounts := s.metrics.responses.Snapshot()
	for code, want := range byStatus {
		key := ""
		switch code {
		case 200:
			key = "200"
		default:
			key = itoa(code)
		}
		if got := respCounts[key]; got != want {
			t.Errorf("responses counter for %d: metric %d, observed %d", code, got, want)
		}
	}
	var errSum int64
	for _, v := range s.metrics.errors.Snapshot() {
		errSum += v
	}
	if want := total - byStatus[200]; errSum != want {
		t.Errorf("error counters sum to %d, observed %d non-200 responses", errSum, want)
	}

	// The schedule actually injected faults (otherwise this test is vacuous).
	if faultinject.InjectedTotal() == 0 {
		t.Fatal("fault schedule never fired")
	}

	// Drain terminates: no stranded counter can park AwaitIdle.
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.AwaitIdle(ctx); err != nil {
		t.Fatalf("AwaitIdle after chaos: %v (pool stats %+v)", err, s.pool.Stats())
	}
}

func itoa(code int) string {
	// strconv-free tiny helper keeps the hot assertion loop obvious.
	digits := [3]byte{byte('0' + code/100), byte('0' + code/10%10), byte('0' + code%10)}
	return string(digits[:])
}

// TestMetamorphicNoSilentGarbage is the property/metamorphic battery: for
// every adversarial matrix class and every fault schedule — including a
// corrupted engine that silently poisons GEMM output with NaN — a solve
// either succeeds within the accuracy bound or fails with a typed error
// code. There is no schedule and no input under which the server returns
// 200 with a wrong answer.
func TestMetamorphicNoSilentGarbage(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic battery skipped in -short mode")
	}
	const m, n = 48, 12
	rng := rand.New(rand.NewSource(4242))
	type matCase struct {
		name string
		data []float64
	}
	cases := []matCase{
		{"well-conditioned", testMatrix(777, m, n, 1)},
		{"rank-deficient", append([]float64(nil), matgen.RankDeficient(rng, m, n, n/2).Data...)},
		{"zero-columns", append([]float64(nil), matgen.WithZeroColumns(rng, m, n, 0, n-1).Data...)},
		{"denormal-scaled", append([]float64(nil), matgen.DenormalScaled(rng, m, n).Data...)},
		{"single-huge-entry", append([]float64(nil), matgen.SingleHugeEntry(rng, m, n).Data...)},
	}
	schedules := []string{
		"", // no faults: the baseline behaviour the fault runs must degrade to, never diverge from
		"seed=1;tcsim.gemm=corrupt@p=0.5",
		"seed=2;serve.cache.factorize=error@p=0.5",
		"seed=3;tcsim.gemm=delay(20us)@p=0.2;serve.coalesce.flush=delay(100us)@p=0.5",
	}
	legalCodes := map[string]bool{
		"bad_input": true, "numerical_hazard": true, "internal": true,
		"degraded": true, "overloaded": true, "deadline": true, "stage_timeout": true,
	}
	for _, sched := range schedules {
		if sched == "" {
			faultinject.Disarm()
		} else {
			arm(t, sched)
		}
		s := New(Options{Workers: 2, Retry: fastRetry(2), DegradeThreshold: -1})
		for _, mc := range cases {
			x := make([]float64, n)
			for j := range x {
				x[j] = 1 + float64(j)/8
			}
			b := matVecData(m, n, mc.data, x)
			var body struct {
				solveReply
				Error struct {
					Code string `json:"code"`
				} `json:"error"`
			}
			code, _ := post(t, s.Handler(), "/v1/solve",
				map[string]any{"matrix": wireMat(m, n, mc.data), "b": b,
					"options": map[string]any{"on_hazard": "fallback"}}, &body)
			switch {
			case code == 200:
				// A success must be a genuine least-squares solution: the
				// returned optimality (normal-equations residual) must be
				// tiny, and every element finite.
				for _, v := range body.X {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Errorf("%s / %q: 200 with non-finite solution", mc.name, sched)
						break
					}
				}
				if !(body.Optimality <= 1e-3) { // negated form catches NaN
					t.Errorf("%s / %q: 200 with optimality %g (silent garbage)", mc.name, sched, body.Optimality)
				}
			case legalCodes[body.Error.Code]:
				// Typed refusal: acceptable under any schedule.
			default:
				t.Errorf("%s / %q: status %d code %q is neither success nor a typed error",
					mc.name, sched, code, body.Error.Code)
			}
		}
		s.Close()
	}
}

// TestStreamChaosSoak is the chunked-upload soak: 64 concurrent clients each
// run full begin/append/commit conversations over tall-skinny matrices that
// route through the parallel TSQR pipeline, while a seeded schedule injects
// faults into the TSQR leaves (tsqr.block.factor), the reduction tree
// (tsqr.tree.reduce), and the append handler (serve.stream.append). The
// invariants: every request gets exactly one legal response, a 200 commit is
// a real factorization (solvable by key to the right answer), no stream
// session leaks — open sessions drain to zero and the lifecycle counters
// balance — and the server drains to idle. Run under -race.
func TestStreamChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("stream chaos soak skipped in -short mode")
	}
	const (
		clients  = 64
		iters    = 4
		matrices = 5
		m, n     = 96, 8 // routed: 96 >= 32 min rows, 96 >= 4*8; 6 blocks of 16
	)
	s := New(Options{
		Workers:    4,
		QueueDepth: 512,
		Retry:      fastRetry(3),
		// The breaker stays generous: injected TSQR faults are 500-class by
		// design, and this test wants sustained traffic, not cache-only mode.
		DegradeThreshold: -1,
		Backend:          LibraryBackend{TSQRMinRows: 32, TSQRBlockRows: 16},
	})
	defer s.Close()
	h := s.Handler()
	arm(t, "seed=777"+
		";tsqr.block.factor=error@p=0.05"+
		";tsqr.tree.reduce=error@p=0.03"+
		";serve.stream.append=error@p=0.05"+
		";serve.wire.decode=error@p=0.03")

	type fixture struct {
		mat    []float64
		chunks []map[string]any
		x      []float64
		b      []float64
	}
	fixtures := make([]fixture, matrices)
	for i := range fixtures {
		data := testMatrix(uint64(7000+i), m, n, 1)
		x := make([]float64, n)
		for j := range x {
			x[j] = float64(i+1) + float64(j)/8
		}
		fixtures[i] = fixture{
			mat:    data,
			chunks: rowChunks(t, m, n, data, 32, 32, 32),
			x:      x,
			b:      matVecData(m, n, data, x),
		}
	}

	var (
		mu       sync.Mutex
		byStatus = map[int]int64{}
		requests int64
	)
	note := func(code int) {
		mu.Lock()
		byStatus[code]++
		requests++
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				fx := &fixtures[(c+it)%matrices]
				var br streamBeginReply
				code, _ := post(t, h, "/v1/factorize/stream/begin", map[string]any{"cols": n}, &br)
				note(code)
				if code != 200 {
					if !legalChaosStatus[code] {
						t.Errorf("client %d iter %d: begin status %d", c, it, code)
					}
					continue
				}
				alive := true
				for bi, blk := range fx.chunks {
					code, _ := post(t, h, "/v1/factorize/stream/append",
						map[string]any{"session": br.Session, "block": blk}, nil)
					note(code)
					if !legalChaosStatus[code] {
						t.Errorf("client %d iter %d: append %d status %d", c, it, bi, code)
					}
					// An injected append fault leaves the session intact;
					// retry the chunk once like a real client would.
					if code == 500 {
						code, _ = post(t, h, "/v1/factorize/stream/append",
							map[string]any{"session": br.Session, "block": blk}, nil)
						note(code)
					}
					if code != 200 {
						alive = false
						break
					}
				}
				if !alive {
					// Give up on this conversation; abort releases the session
					// (it may already be gone — both outcomes are legal).
					code, _ := post(t, h, "/v1/factorize/stream/abort", map[string]any{"session": br.Session}, nil)
					note(code)
					if code != 200 && code != 404 && !legalChaosStatus[code] {
						t.Errorf("client %d iter %d: abort status %d", c, it, code)
					}
					continue
				}
				var fr factorizeReply
				code, _ = post(t, h, "/v1/factorize/stream/commit", map[string]any{"session": br.Session}, &fr)
				note(code)
				if !legalChaosStatus[code] {
					t.Errorf("client %d iter %d: commit status %d", c, it, code)
				}
				if code != 200 {
					continue
				}
				// A 200 commit is a real TSQR factorization: solve by key.
				var sr solveReply
				code, _ = post(t, h, "/v1/solve", map[string]any{"key": fr.Key, "b": fx.b}, &sr)
				note(code)
				if code == 200 {
					if d := maxDiff(sr.X, fx.x); d > 1e-5 {
						t.Errorf("client %d iter %d: 200 solve with wrong answer (err %g)", c, it, d)
					}
				} else if !legalChaosStatus[code] {
					t.Errorf("client %d iter %d: solve status %d", c, it, code)
				}
			}
		}(c)
	}
	wg.Wait()

	// No lost responses.
	var total int64
	for _, v := range byStatus {
		total += v
	}
	if total != requests {
		t.Fatalf("observed %d responses for %d requests", total, requests)
	}
	// The schedule actually fired.
	if faultinject.InjectedTotal() == 0 {
		t.Fatal("fault schedule never fired")
	}
	// The TSQR pipeline actually served traffic (faults did not push
	// everything onto an untested path).
	if s.metrics.tsqrFactorize.Value() == 0 {
		t.Fatal("no commit routed through the TSQR pipeline")
	}

	// No leaked sessions: everything begun was committed, aborted, or is
	// reaped by drain; the gauge reads zero afterwards.
	s.BeginDrain()
	if open := s.streams.len(); open != 0 {
		t.Fatalf("%d stream sessions still open after drain", open)
	}
	begun := s.metrics.streamBegun.Value()
	ended := s.metrics.streamCommitted.Value() + s.metrics.streamAborted.Value() + s.metrics.streamReaped.Value()
	if begun != ended {
		t.Fatalf("session leak: begun %d, ended %d (committed %d aborted %d reaped %d)",
			begun, ended, s.metrics.streamCommitted.Value(), s.metrics.streamAborted.Value(), s.metrics.streamReaped.Value())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.AwaitIdle(ctx); err != nil {
		t.Fatalf("AwaitIdle after stream chaos: %v (pool stats %+v)", err, s.pool.Stats())
	}
}
