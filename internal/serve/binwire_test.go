package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"tcqr/internal/wirefmt"
)

// --- binary test plumbing --------------------------------------------------

// frameBody assembles a request frame: JSON-marshaled meta plus bulk
// sections.
func frameBody(t testing.TB, meta any, bulk ...wirefmt.Section) []byte {
	t.Helper()
	mj, err := json.Marshal(meta)
	if err != nil {
		t.Fatalf("marshal frame meta: %v", err)
	}
	secs := append([]wirefmt.Section{wirefmt.JSONSection(mj)}, bulk...)
	out, err := wirefmt.AppendFrame(nil, secs...)
	if err != nil {
		t.Fatalf("assemble frame: %v", err)
	}
	return out
}

// postFrame drives one binary request through the handler. accept == ""
// sends no Accept header (binary requests then negotiate a binary
// response).
func postFrame(t testing.TB, h http.Handler, path string, body []byte, accept string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", wirefmt.ContentType)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// decodeFrameResp splits a binary response into its decoded meta (into
// out) and bulk sections.
func decodeFrameResp(t testing.TB, rec *httptest.ResponseRecorder, out any) []wirefmt.Section {
	t.Helper()
	if ct := rec.Header().Get("Content-Type"); ct != wirefmt.ContentType {
		t.Fatalf("binary response Content-Type = %q, want %q", ct, wirefmt.ContentType)
	}
	secs, err := wirefmt.Decode(rec.Body.Bytes(), nil)
	if err != nil {
		t.Fatalf("decode response frame: %v", err)
	}
	if len(secs) == 0 || secs[0].Tag != wirefmt.TagJSON {
		t.Fatalf("response frame has no leading JSON section")
	}
	if out != nil {
		if err := json.Unmarshal(secs[0].Raw, out); err != nil {
			t.Fatalf("unmarshal response meta %q: %v", secs[0].Raw, err)
		}
	}
	return secs
}

// --- golden round-trips ----------------------------------------------------

// TestBinaryFactorizeSolveRoundTrip checks that the binary path and the JSON
// path are the same service: a binary factorize lands on the same cache key,
// and a binary solve returns bit-identical x to the JSON solve against the
// same cached factorization.
func TestBinaryFactorizeSolveRoundTrip(t *testing.T) {
	s := New(Options{Workers: 2})
	h := s.Handler()
	m, n := 64, 16
	data := testMatrix(7, m, n, 1)
	xTrue := make([]float64, n)
	for j := range xTrue {
		xTrue[j] = float64(j) - 7.5
	}
	b := matVecData(m, n, data, xTrue)

	// Factorize over JSON first to pin the contract key.
	var jfr factorizeReply
	code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data)}, &jfr)
	if code != 200 {
		t.Fatalf("json factorize: code=%d", code)
	}

	// The binary factorize of the same matrix must hit the same cache entry.
	rec := postFrame(t, h, "/v1/factorize", frameBody(t, map[string]any{}, wirefmt.MatrixSection(m, n, data)), "")
	if rec.Code != 200 {
		t.Fatalf("binary factorize: code=%d body=%q", rec.Code, rec.Body.String())
	}
	var bfr factorizeReply
	decodeFrameResp(t, rec, &bfr)
	if bfr.Key != jfr.Key || !bfr.Cached {
		t.Fatalf("binary factorize key=%q cached=%v, want cached hit on %q", bfr.Key, bfr.Cached, jfr.Key)
	}

	// Solve over both encodings; the solutions must be bit-identical.
	var jsr solveReply
	code, _ = post(t, h, "/v1/solve", map[string]any{"key": jfr.Key, "b": b}, &jsr)
	if code != 200 {
		t.Fatalf("json solve: code=%d", code)
	}
	rec = postFrame(t, h, "/v1/solve", frameBody(t, map[string]any{"key": jfr.Key}, wirefmt.VectorSection(b)), "")
	if rec.Code != 200 {
		t.Fatalf("binary solve: code=%d body=%q", rec.Code, rec.Body.String())
	}
	var bsr binSolveMeta
	secs := decodeFrameResp(t, rec, &bsr)
	if len(secs) != 2 || secs[1].Tag != wirefmt.TagVector {
		t.Fatalf("binary solve frame sections = %d, want [JSON, vector]", len(secs))
	}
	bx := secs[1].Float64s()
	if len(bx) != len(jsr.X) {
		t.Fatalf("binary x has %d elements, json %d", len(bx), len(jsr.X))
	}
	for i := range bx {
		if math.Float64bits(bx[i]) != math.Float64bits(jsr.X[i]) {
			t.Fatalf("x[%d]: binary %x json %x", i, math.Float64bits(bx[i]), math.Float64bits(jsr.X[i]))
		}
	}
	if !bsr.Cached || bsr.Key != jfr.Key || !bsr.Converged {
		t.Fatalf("binary solve meta %+v, want cached converged solve of %q", bsr, jfr.Key)
	}
	if d := maxDiff(bx, xTrue); d > 1e-8 {
		t.Fatalf("binary solution off by %g", d)
	}
}

// TestBinarySolveByMatrix exercises the [meta, matrix, b] frame shape end to
// end: the matrix is copied into the cache, the solve succeeds, and a
// follow-up solve by the returned key hits.
func TestBinarySolveByMatrix(t *testing.T) {
	s := New(Options{Workers: 2})
	h := s.Handler()
	m, n := 48, 8
	data := testMatrix(8, m, n, 1)
	b := matVecData(m, n, data, make([]float64, n))
	for i := range b {
		b[i] += 1
	}

	rec := postFrame(t, h, "/v1/solve",
		frameBody(t, map[string]any{}, wirefmt.MatrixSection(m, n, data), wirefmt.VectorSection(b)), "")
	if rec.Code != 200 {
		t.Fatalf("binary solve-by-matrix: code=%d body=%q", rec.Code, rec.Body.String())
	}
	var meta binSolveMeta
	decodeFrameResp(t, rec, &meta)
	if meta.Key == "" || meta.Cached {
		t.Fatalf("solve-by-matrix meta %+v, want a fresh key", meta)
	}
	rec = postFrame(t, h, "/v1/solve", frameBody(t, map[string]any{"key": meta.Key}, wirefmt.VectorSection(b)), "")
	if rec.Code != 200 {
		t.Fatalf("binary solve-by-key after matrix upload: code=%d", rec.Code)
	}
	var meta2 binSolveMeta
	decodeFrameResp(t, rec, &meta2)
	if !meta2.Cached {
		t.Fatalf("second solve should hit the cache: %+v", meta2)
	}
}

// TestBinaryLowRankFrame checks the lowrank binary response carries U, s, V
// as sections matching the JSON response.
func TestBinaryLowRankFrame(t *testing.T) {
	s := New(Options{Workers: 2})
	h := s.Handler()
	m, n := 32, 8
	data := testMatrix(9, m, n, 1)

	var jlr struct {
		U    WireMatrix `json:"u"`
		S    []float64  `json:"s"`
		V    WireMatrix `json:"v"`
		Rank int        `json:"rank"`
	}
	code, _ := post(t, h, "/v1/lowrank", map[string]any{"matrix": wireMat(m, n, data), "rank": 4}, &jlr)
	if code != 200 {
		t.Fatalf("json lowrank: code=%d", code)
	}

	rec := postFrame(t, h, "/v1/lowrank",
		frameBody(t, map[string]any{"rank": 4}, wirefmt.MatrixSection(m, n, data)), "")
	if rec.Code != 200 {
		t.Fatalf("binary lowrank: code=%d body=%q", rec.Code, rec.Body.String())
	}
	var meta binLowRankMeta
	secs := decodeFrameResp(t, rec, &meta)
	if len(secs) != 4 || secs[1].Tag != wirefmt.TagMatrix || secs[2].Tag != wirefmt.TagVector || secs[3].Tag != wirefmt.TagMatrix {
		t.Fatalf("lowrank frame wants [JSON, U, s, V], got %d sections", len(secs))
	}
	if meta.Rank != jlr.Rank {
		t.Fatalf("rank %d != json %d", meta.Rank, jlr.Rank)
	}
	if int(secs[1].A) != jlr.U.Rows || int(secs[1].B) != jlr.U.Cols {
		t.Fatalf("U shape %dx%d != json %dx%d", secs[1].A, secs[1].B, jlr.U.Rows, jlr.U.Cols)
	}
	if d := maxDiff(secs[2].Float64s(), jlr.S); d != 0 {
		t.Fatalf("singular values differ by %g", d)
	}
	if d := maxDiff(secs[1].Float64s(), jlr.U.Data); d != 0 {
		t.Fatalf("U differs by %g", d)
	}
	if d := maxDiff(secs[3].Float64s(), jlr.V.Data); d != 0 {
		t.Fatalf("V differs by %g", d)
	}
}

// --- content negotiation ---------------------------------------------------

// TestWireContentNegotiation pins the negotiation table: only an explicit
// Accept for the frame type (or an Accept-less binary request) selects a
// binary response; wildcards and JSON clients keep the byte-for-byte JSON
// contract.
func TestWireContentNegotiation(t *testing.T) {
	s := New(Options{Workers: 2})
	h := s.Handler()
	m, n := 48, 8
	data := testMatrix(11, m, n, 1)
	jsonBody, err := json.Marshal(map[string]any{"matrix": wireMat(m, n, data)})
	if err != nil {
		t.Fatal(err)
	}
	binBody := frameBody(t, map[string]any{}, wirefmt.MatrixSection(m, n, data))

	cases := []struct {
		name        string
		contentType string
		accept      string
		wantBinary  bool
	}{
		{"json_req_no_accept", "application/json", "", false},
		{"json_req_wildcard", "application/json", "*/*", false},
		{"json_req_accept_frame", "application/json", wirefmt.ContentType, true},
		{"bin_req_no_accept", wirefmt.ContentType, "", true},
		{"bin_req_wildcard", wirefmt.ContentType, "*/*", false},
		{"bin_req_accept_json", wirefmt.ContentType, "application/json", false},
		{"bin_req_accept_frame_list", wirefmt.ContentType, "application/json, " + wirefmt.ContentType, true},
		{"bin_req_frame_with_params", wirefmt.ContentType, wirefmt.ContentType + "; q=0.9", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := jsonBody
			if tc.contentType == wirefmt.ContentType {
				body = binBody
			}
			req := httptest.NewRequest(http.MethodPost, "/v1/factorize", bytes.NewReader(body))
			req.Header.Set("Content-Type", tc.contentType)
			if tc.accept != "" {
				req.Header.Set("Accept", tc.accept)
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				t.Fatalf("code=%d body=%q", rec.Code, rec.Body.String())
			}
			gotCT := rec.Header().Get("Content-Type")
			if tc.wantBinary {
				if gotCT != wirefmt.ContentType {
					t.Fatalf("Content-Type = %q, want binary frame", gotCT)
				}
				var fr factorizeReply
				decodeFrameResp(t, rec, &fr)
				if fr.Key == "" {
					t.Fatalf("binary factorize response has no key")
				}
			} else {
				if gotCT != "application/json" {
					t.Fatalf("Content-Type = %q, want application/json", gotCT)
				}
				var fr factorizeReply
				if err := json.Unmarshal(rec.Body.Bytes(), &fr); err != nil || fr.Key == "" {
					t.Fatalf("JSON response not decodable: %v %q", err, rec.Body.String())
				}
			}
		})
	}
}

// TestWireEncodingMetrics checks the tcqrd_wire_* families count both
// directions per encoding.
func TestWireEncodingMetrics(t *testing.T) {
	s := New(Options{Workers: 2})
	h := s.Handler()
	m, n := 48, 8
	data := testMatrix(12, m, n, 1)

	post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data)}, nil)
	rec := postFrame(t, h, "/v1/factorize", frameBody(t, map[string]any{}, wirefmt.MatrixSection(m, n, data)), "")
	if rec.Code != 200 {
		t.Fatalf("binary factorize: code=%d", rec.Code)
	}

	reqs := s.metrics.wireRequests.Snapshot()
	if reqs["factorize,json"] != 1 || reqs["factorize,binary"] != 1 {
		t.Fatalf("wire request counts = %v", reqs)
	}
	resps := s.metrics.wireResponses.Snapshot()
	if resps["json"] != 1 || resps["binary"] != 1 {
		t.Fatalf("wire response counts = %v", resps)
	}
}

// --- mixed-encoding coalescing ---------------------------------------------

// TestMixedEncodingCoalescing parks JSON and binary solves for the same
// factorization in one window and checks they flush as a single multi-RHS
// batch: the wire encoding must be invisible to the coalescer.
func TestMixedEncodingCoalescing(t *testing.T) {
	be := &countingBackend{inner: LibraryBackend{}}
	s := New(Options{Workers: 4, Window: 50 * time.Millisecond, MaxBatch: 8, Backend: be})
	h := s.Handler()
	m, n := 64, 16
	data := testMatrix(13, m, n, 1)
	xTrue := make([]float64, n)
	for j := range xTrue {
		xTrue[j] = 1
	}
	b := matVecData(m, n, data, xTrue)

	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data)}, &fr); code != 200 {
		t.Fatalf("factorize: code=%d", code)
	}
	binSolve := frameBody(t, map[string]any{"key": fr.Key}, wirefmt.VectorSection(b))

	// MaxBatch 8 with 4+4 clients: the batch flushes the moment the eighth
	// waiter parks, so the test never rides on the window timer.
	const half = 4
	var wg sync.WaitGroup
	batched := make([]int, 2*half)
	for i := 0; i < half; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			var sr solveReply
			if code, _ := post(t, h, "/v1/solve", map[string]any{"key": fr.Key, "b": b}, &sr); code != 200 {
				t.Errorf("json solve: code=%d", code)
			}
			batched[i] = sr.Batched
			if d := maxDiff(sr.X, xTrue); d > 1e-8 {
				t.Errorf("json x off by %g", d)
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			rec := postFrame(t, h, "/v1/solve", binSolve, "")
			if rec.Code != 200 {
				t.Errorf("binary solve: code=%d body=%q", rec.Code, rec.Body.String())
				return
			}
			var meta binSolveMeta
			secs := decodeFrameResp(t, rec, &meta)
			batched[half+i] = meta.Batched
			if d := maxDiff(secs[1].Float64s(), xTrue); d > 1e-8 {
				t.Errorf("binary x off by %g", d)
			}
		}(i)
	}
	wg.Wait()

	if got := be.solveMulti.Load(); got != 1 {
		t.Fatalf("backend multi-RHS calls = %d, want exactly 1 for the mixed batch", got)
	}
	for i, k := range batched {
		if k != 2*half {
			t.Fatalf("request %d reports batched=%d, want %d", i, k, 2*half)
		}
	}
}

// --- errors stay JSON ------------------------------------------------------

// TestBinaryErrorsUseJSONEnvelope pins the rule that every failure is the
// JSON envelope, whatever encoding the request negotiated.
func TestBinaryErrorsUseJSONEnvelope(t *testing.T) {
	s := New(Options{Workers: 2})
	h := s.Handler()

	cases := []struct {
		name     string
		body     []byte
		wantCode int
		wantErr  string
	}{
		{"garbage_frame", []byte("not a frame at all"), 400, "bad_input"},
		{"truncated_frame", frameBody(t, map[string]any{}, wirefmt.VectorSection([]float64{1, 2, 3}))[:20], 400, "bad_input"},
		{"unknown_key", frameBody(t, map[string]any{"key": "m0-nope"}, wirefmt.VectorSection([]float64{1, 2, 3})), 404, "unknown_key"},
		{"meta_carries_b", frameBody(t, map[string]any{"b": []float64{1}}, wirefmt.VectorSection([]float64{1})), 400, "bad_input"},
		{"unknown_meta_field", frameBody(t, map[string]any{"bogus": 1}, wirefmt.VectorSection([]float64{1})), 400, "bad_input"},
		{"missing_bulk_sections", frameBody(t, map[string]any{"key": "k"}), 400, "bad_input"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postFrame(t, h, "/v1/solve", tc.body, "")
			if rec.Code != tc.wantCode {
				t.Fatalf("code=%d body=%q, want %d", rec.Code, rec.Body.String(), tc.wantCode)
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("error Content-Type = %q, want application/json", ct)
			}
			var env envelope
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatalf("error body %q is not the JSON envelope: %v", rec.Body.String(), err)
			}
			if env.Error.Code != tc.wantErr {
				t.Fatalf("error code = %q, want %q", env.Error.Code, tc.wantErr)
			}
		})
	}

	// Backpressure on the binary path: draining must answer 503 with the
	// JSON envelope even to a frame client.
	s.BeginDrain()
	rec := postFrame(t, h, "/v1/solve", frameBody(t, map[string]any{"key": "k"}, wirefmt.VectorSection([]float64{1})), "")
	if rec.Code != 503 {
		t.Fatalf("draining binary solve: code=%d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("draining error Content-Type = %q", ct)
	}
	var env envelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != "draining" {
		t.Fatalf("draining envelope: %v %q", err, rec.Body.String())
	}
}

// --- allocation regression gate --------------------------------------------

// TestBinaryCacheHitSolveAllocs gates the zero-copy promise: a binary
// cache-hit solve must never allocate more objects than its JSON twin, must
// stay under an absolute per-request object ceiling, and must allocate well
// under half the heap bytes of the JSON path (which pays to parse and print
// every float — its cost shows up as bytes, not object count).
func TestBinaryCacheHitSolveAllocs(t *testing.T) {
	s := New(Options{Workers: 1})
	h := s.Handler()
	m, n := 256, 64
	data := testMatrix(14, m, n, 1)
	b := matVecData(m, n, data, make([]float64, n))
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data)}, &fr); code != 200 {
		t.Fatalf("factorize: code=%d", code)
	}
	binBody := frameBody(t, map[string]any{"key": fr.Key}, wirefmt.VectorSection(b))
	jsonBody, err := json.Marshal(map[string]any{"key": fr.Key, "b": b})
	if err != nil {
		t.Fatal(err)
	}

	solveOnce := func(contentType string, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(body))
		req.Header.Set("Content-Type", contentType)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("solve: code=%d body=%q", rec.Code, rec.Body.String())
		}
	}
	// heapBytes measures average heap bytes allocated per request. Workers:1
	// keeps all compute on one pool goroutine; TotalAlloc is process-global
	// either way, and 100 iterations average out background noise.
	heapBytes := func(contentType string, body []byte) uint64 {
		const iters = 100
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := 0; i < iters; i++ {
			solveOnce(contentType, body)
		}
		runtime.ReadMemStats(&after)
		return (after.TotalAlloc - before.TotalAlloc) / iters
	}
	jsonAllocs := testing.AllocsPerRun(50, func() { solveOnce("application/json", jsonBody) })
	binAllocs := testing.AllocsPerRun(50, func() { solveOnce(wirefmt.ContentType, binBody) })
	jsonBytes := heapBytes("application/json", jsonBody)
	binBytes := heapBytes(wirefmt.ContentType, binBody)
	t.Logf("per request: json=%.0f allocs / %d B, binary=%.0f allocs / %d B", jsonAllocs, jsonBytes, binAllocs, binBytes)
	// Both encodings share the solve compute, so binary's object count can
	// never exceed JSON's; JSON's per-float decode/print cost shows up as
	// heap bytes, where the pooled zero-copy path must win by a wide margin.
	if binAllocs > jsonAllocs {
		t.Fatalf("binary solve allocates %.0f objects/request vs %.0f for JSON; the pooled path has regressed", binAllocs, jsonAllocs)
	}
	const ceiling = 150
	if binAllocs > ceiling {
		t.Fatalf("binary cache-hit solve allocates %.0f objects/request, above the %d gate", binAllocs, ceiling)
	}
	// The shared solve compute allocates the same on both paths, so the
	// json-binary gap isolates the wire layer: JSON pays several KiB per
	// request to parse and print the floats at this shape, the pooled
	// zero-copy frame path pays nearly nothing. Require the full wire-sized
	// margin so a regression that re-introduces per-request body buffers or
	// per-element encode work trips the gate. Race builds skip this one
	// assertion (not the alloc-count gates above): the race runtime
	// deliberately drops a quarter of sync.Pool.Puts, so the pooled frame
	// buffers this margin measures are randomly re-allocated and the gap
	// narrows to the threshold ± scheduler noise.
	if raceEnabled {
		t.Logf("race build: skipping pooled-byte margin (race mode drops 1/4 of Pool.Puts)")
	} else if binBytes+3000 >= jsonBytes {
		t.Fatalf("binary cache-hit solve allocates %d heap bytes/request vs %d for JSON; the zero-copy path has regressed", binBytes, jsonBytes)
	}
}
