package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tcqr/internal/hazard"
)

// driveTraffic pushes one cold factorize, one cache-hit factorize, and one
// solve-by-key through the handler, returning the key. The cutoff of 8
// forces the recursion to split, so the off-diagonal update GEMMs run on
// the simulated engine and reach the GEMM observer.
func driveTraffic(t *testing.T, h http.Handler, m, n int) string {
	t.Helper()
	data := testMatrix(7, m, n, 1)
	cfg := map[string]any{"cutoff": 8}
	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data), "config": cfg}, &fr); code != 200 {
		t.Fatalf("factorize = %d", code)
	}
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data), "config": cfg}, nil); code != 200 {
		t.Fatalf("repeat factorize failed")
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i + 1)
	}
	b := matVecData(m, n, data, x)
	var sr solveReply
	if code, _ := post(t, h, "/v1/solve", map[string]any{"key": fr.Key, "b": b}, &sr); code != 200 {
		t.Fatalf("solve = %d", code)
	}
	return fr.Key
}

func TestMetricsEndpointExposesTraffic(t *testing.T) {
	s := New(Options{Workers: 2, Window: 0})
	defer s.Close()
	h := s.Handler()
	driveTraffic(t, h, 96, 32)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	text := rec.Body.String()

	// The serve, hazard, and engine families must all be present, and the
	// traffic-driven ones non-zero.
	for _, want := range []string{
		`tcqrd_requests_total{endpoint="factorize"} 2`,
		`tcqrd_requests_total{endpoint="solve"} 1`,
		`tcqrd_responses_total{status="200"} 3`,
		"tcqrd_cache_hits_total 2", // repeat factorize + solve-by-key Get
		"tcqrd_cache_misses_total 1",
		`tcqrd_factorize_panel_total{panel="caqr"} 1`,
		"# TYPE tcqrd_stage_duration_seconds histogram",
		"# TYPE tcqrd_hazards_total counter",
		"# TYPE tcqrd_coalescer_batch_size histogram",
		"tcqrd_pool_completed_total",
		"tcqrd_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The factorize GEMMs must have reached the engine observer under the
	// default TensorCore engine.
	if !strings.Contains(text, `tcqrd_engine_gemm_calls_total{engine="tc"`) {
		t.Errorf("no tc engine GEMM calls recorded:\n%s", text)
	}
	for _, stage := range []string{"queue", "factorize", "solve", "encode"} {
		if !strings.Contains(text, fmt.Sprintf(`tcqrd_stage_duration_seconds_count{stage=%q} `, stage)) {
			t.Errorf("stage %q missing from latency histograms", stage)
		}
	}
}

// TestStatzUnderLoad hammers solves from many goroutines while concurrently
// polling /statz and /metrics. Run under -race this is the proof that the
// stats views never interleave with writers (the PR's snapshotting fix).
func TestStatzUnderLoad(t *testing.T) {
	s := New(Options{Workers: 4, Window: 500 * time.Microsecond, MaxBatch: 8})
	defer s.Close()
	h := s.Handler()
	m, n := 48, 6
	data := testMatrix(3, m, n, 1)
	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data)}, &fr); code != 200 {
		t.Fatalf("factorize failed")
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	b := matVecData(m, n, data, x)

	var solvers, poller sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		solvers.Add(1)
		go func() {
			defer solvers.Done()
			for i := 0; i < 25; i++ {
				post(t, h, "/v1/solve", map[string]any{"key": fr.Key, "b": b}, nil)
			}
		}()
	}
	poller.Add(1)
	go func() {
		defer poller.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var statz struct {
				Requests map[string]int64 `json:"requests"`
			}
			if code := get(t, h, "/statz", &statz); code != 200 {
				t.Errorf("/statz = %d under load", code)
				return
			}
			req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				t.Errorf("/metrics = %d under load", rec.Code)
				return
			}
		}
	}()
	solvers.Wait()
	close(stop)
	poller.Wait()

	var statz struct {
		Requests map[string]int64 `json:"requests"`
		Timing   map[string]struct {
			Count int64   `json:"count"`
			P95MS float64 `json:"p95_ms"`
		} `json:"timing"`
	}
	if code := get(t, h, "/statz", &statz); code != 200 {
		t.Fatalf("/statz = %d", code)
	}
	if statz.Requests["solve"] != 100 {
		t.Fatalf("requests[solve] = %d, want 100", statz.Requests["solve"])
	}
	if tm := statz.Timing["solve"]; tm.Count == 0 || tm.P95MS <= 0 {
		t.Fatalf("timing[solve] = %+v, want count > 0 and p95 > 0", tm)
	}
}

// TestHazardAndErrorCardinalityBounded sends 1k distinct bad requests and
// asserts that no stats label set grows with request distinctness: error
// codes, hazard kinds, and response statuses stay bounded vocabularies.
func TestHazardAndErrorCardinalityBounded(t *testing.T) {
	s := New(Options{Workers: 1, Window: 0})
	defer s.Close()
	h := s.Handler()
	for i := 0; i < 1000; i++ {
		// Every request differs (unique bogus key, unique rhs length) so any
		// per-request detail leaking into a label would mint 1000 series.
		post(t, h, "/v1/solve", map[string]any{
			"key": fmt.Sprintf("m%016x-bogus", i),
			"b":   make([]float64, 1+i%7),
		}, nil)
	}
	var statz struct {
		Errors  map[string]int64 `json:"errors"`
		Hazards map[string]int64 `json:"hazards"`
	}
	if code := get(t, h, "/statz", &statz); code != 200 {
		t.Fatalf("/statz = %d", code)
	}
	if len(statz.Errors) > 8 {
		t.Fatalf("errors label set grew to %d entries: %v", len(statz.Errors), statz.Errors)
	}
	if statz.Errors["unknown_key"] != 1000 {
		t.Fatalf("errors[unknown_key] = %d, want 1000", statz.Errors["unknown_key"])
	}
	if len(statz.Hazards) > len(hazard.Kinds())+1 {
		t.Fatalf("hazards label set grew to %d entries: %v", len(statz.Hazards), statz.Hazards)
	}
}

func TestNormalizeHazardKindBoundsVocabulary(t *testing.T) {
	for _, k := range hazard.Kinds() {
		if got := normalizeHazardKind(k.String()); got != k.String() {
			t.Errorf("known kind %q normalized to %q", k.String(), got)
		}
	}
	for _, bogus := range []string{"", "Kind(99)", "attacker-controlled-detail"} {
		if got := normalizeHazardKind(bogus); got != "other" {
			t.Errorf("normalizeHazardKind(%q) = %q, want other", bogus, got)
		}
	}
}

func TestServerTimingHeaderContract(t *testing.T) {
	// Absent when no timings were recorded.
	if got := serverTimingHeader(nil); got != "" {
		t.Errorf("empty timings rendered %q, want empty", got)
	}

	// Repeated stages are summed into one metric.
	sum := serverTimingHeader([]hazard.Timing{
		{Stage: "queue", D: 1 * time.Millisecond},
		{Stage: "queue", D: 2 * time.Millisecond},
	})
	if sum != "queue;dur=3.000" {
		t.Errorf("summed header = %q, want queue;dur=3.000", sum)
	}

	// Order is deterministic (canonical queue/factorize/solve/encode) no
	// matter the record order; unknown stages sort last.
	got := serverTimingHeader([]hazard.Timing{
		{Stage: "encode", D: time.Millisecond},
		{Stage: "custom", D: time.Millisecond},
		{Stage: "solve", D: time.Millisecond},
		{Stage: "queue", D: time.Millisecond},
		{Stage: "factorize", D: time.Millisecond},
	})
	wantOrder := []string{"queue", "factorize", "solve", "encode", "custom"}
	var idx []int
	for _, stage := range wantOrder {
		i := strings.Index(got, stage+";dur=")
		if i < 0 {
			t.Fatalf("stage %q missing from %q", stage, got)
		}
		idx = append(idx, i)
	}
	for i := 1; i < len(idx); i++ {
		if idx[i] < idx[i-1] {
			t.Fatalf("stages out of canonical order in %q", got)
		}
	}

	// A request with no recorded stages must not carry the header at all.
	s := New(Options{Workers: 1, Window: 0})
	defer s.Close()
	req := httptest.NewRequest(http.MethodGet, "/v1/solve", nil) // 405 before any stage runs
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET solve = %d, want 405", rec.Code)
	}
	if st := rec.Header().Get("Server-Timing"); st != "" {
		t.Fatalf("405 response carries Server-Timing %q, want none", st)
	}
}

// TestCoalescerBatchSizeHistogram checks the batch-size histogram sees every
// flush.
func TestCoalescerBatchSizeHistogram(t *testing.T) {
	s := New(Options{Workers: 1, Window: 0})
	defer s.Close()
	h := s.Handler()
	driveTraffic(t, h, 32, 4)
	if n := s.metrics.batchSize.Count(); n != 1 {
		t.Fatalf("batch size histogram saw %d flushes, want 1", n)
	}
	if got := s.metrics.batchSize.Sum(); got != 1 {
		t.Fatalf("batch size sum = %g, want 1 (one solo solve)", got)
	}
}
