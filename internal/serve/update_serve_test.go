package serve

import (
	"encoding/json"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tcqr"
	"tcqr/internal/wirefmt"
)

// --- wire helpers -----------------------------------------------------------

type updateReply struct {
	Key     string       `json:"key"`
	BaseKey string       `json:"base_key"`
	Epoch   uint64       `json:"epoch"`
	Rows    int          `json:"rows"`
	Cols    int          `json:"cols"`
	Hazards []WireHazard `json:"hazards"`
}

// stackData appends the rows of extra (column-major, same cols) under data.
func stackData(m, n int, data []float64, em int, extra []float64) []float64 {
	out := make([]float64, (m+em)*n)
	for j := 0; j < n; j++ {
		copy(out[j*(m+em):], data[j*m:(j+1)*m])
		copy(out[j*(m+em)+m:], extra[j*em:(j+1)*em])
	}
	return out
}

// waitRetiredDrained polls until every retired entry has been released.
// Responses are delivered before a batch's own entry pin is dropped (the
// coalescer releases it in a deferred call after fan-out), so RetiredLive
// may transiently read non-zero right after the last client returns.
func waitRetiredDrained(t *testing.T, c *FactorCache) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		cs := c.Stats()
		if cs.RetiredLive == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("retired entries still pinned after drain: %+v", cs)
		}
		time.Sleep(time.Millisecond)
	}
}

// epochOf parses the epoch out of a response key (bare base key = epoch 0).
func epochOf(t *testing.T, key string) uint64 {
	t.Helper()
	i := strings.LastIndexByte(key, '@')
	if i < 0 {
		return 0
	}
	e, err := strconv.ParseUint(key[i+1:], 10, 64)
	if err != nil {
		t.Fatalf("unparsable epoch in key %q: %v", key, err)
	}
	return e
}

// --- /v1/update endpoint ----------------------------------------------------

// TestUpdateAppendAndDowndateEndToEnd drives the full epoch lifecycle over
// the wire: factorize, append a row block (epoch 1), solve by bare key (the
// newest epoch answers and names itself), solve by pinned versioned key,
// downdate back to the original shape (epoch 2), and solve against the
// original matrix again.
func TestUpdateAppendAndDowndateEndToEnd(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()
	h := s.Handler()
	m, n, k := 96, 24, 8
	data := testMatrix(300, m, n, 1)
	block := testMatrix(301, k, n, 1)

	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data)}, &fr); code != 200 {
		t.Fatalf("factorize: code=%d", code)
	}
	base := fr.Key

	var ur updateReply
	code, _ := post(t, h, "/v1/update",
		map[string]any{"key": base, "append": wireMat(k, n, block)}, &ur)
	if code != 200 || ur.Epoch != 1 || ur.Key != base+"@1" || ur.BaseKey != base ||
		ur.Rows != m+k || ur.Cols != n {
		t.Fatalf("append update: code=%d reply=%+v", code, ur)
	}

	// Bare-key solve resolves the newest epoch and reports its exact key.
	full := stackData(m, n, data, k, block)
	xTrue := make([]float64, n)
	for j := range xTrue {
		xTrue[j] = float64(j%5) - 2
	}
	b := matVecData(m+k, n, full, xTrue)
	var sr solveReply
	code, _ = post(t, h, "/v1/solve", map[string]any{"key": base, "b": b}, &sr)
	if code != 200 || sr.Key != base+"@1" || !sr.Cached {
		t.Fatalf("bare-key solve after update: code=%d reply key=%q cached=%v", code, sr.Key, sr.Cached)
	}
	if d := maxDiff(sr.X, xTrue); d > 1e-6 {
		t.Fatalf("post-update solve error %g > 1e-6", d)
	}

	// A versioned key pins exactly that epoch.
	code, _ = post(t, h, "/v1/solve", map[string]any{"key": base + "@1", "b": b}, &sr)
	if code != 200 || sr.Key != base+"@1" {
		t.Fatalf("pinned-epoch solve: code=%d key=%q", code, sr.Key)
	}
	if d := maxDiff(sr.X, xTrue); d > 1e-6 {
		t.Fatalf("pinned-epoch solve error %g > 1e-6", d)
	}

	// Downdating the appended block restores the original matrix at epoch 2.
	code, _ = post(t, h, "/v1/update", map[string]any{"key": base, "remove_rows": k}, &ur)
	if code != 200 || ur.Epoch != 2 || ur.Rows != m {
		t.Fatalf("downdate: code=%d reply=%+v", code, ur)
	}
	b0 := matVecData(m, n, data, xTrue)
	code, _ = post(t, h, "/v1/solve", map[string]any{"key": base, "b": b0}, &sr)
	if code != 200 || sr.Key != base+"@2" {
		t.Fatalf("post-downdate solve: code=%d key=%q", code, sr.Key)
	}
	if d := maxDiff(sr.X, xTrue); d > 1e-4 {
		t.Fatalf("post-downdate solve error %g > 1e-4", d)
	}

	cs := s.Cache().Stats()
	if cs.Updates != 2 || cs.Retired != 2 || cs.RetiredLive != 0 || cs.Entries != 1 {
		t.Fatalf("cache stats after two updates: %+v", cs)
	}
}

func TestUpdateValidation(t *testing.T) {
	s := New(Options{Workers: 1, MaxElements: 4096})
	defer s.Close()
	h := s.Handler()
	m, n := 32, 8
	data := testMatrix(310, m, n, 1)
	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data)}, &fr); code != 200 {
		t.Fatalf("factorize: code=%d", code)
	}
	blk := wireMat(4, n, testMatrix(311, 4, n, 1))

	cases := []struct {
		name     string
		body     any
		wantCode int
		wantErr  string
	}{
		{"missing key", map[string]any{"append": blk}, 400, "bad_input"},
		{"neither op", map[string]any{"key": fr.Key}, 400, "bad_input"},
		{"both ops", map[string]any{"key": fr.Key, "append": blk, "remove_rows": 1}, 400, "bad_input"},
		{"negative remove", map[string]any{"key": fr.Key, "remove_rows": -2}, 400, "bad_input"},
		{"unknown key", map[string]any{"key": "m0000000000000000-x", "remove_rows": 1}, 404, "unknown_key"},
		{"cols mismatch", map[string]any{"key": fr.Key,
			"append": wireMat(4, n-1, testMatrix(312, 4, n-1, 1))}, 400, "bad_input"},
		{"grows past cap", map[string]any{"key": fr.Key,
			"append": wireMat(512, n, testMatrix(313, 512, n, 1))}, 413, "too_large"},
		// The library refuses to downdate below the column count; the typed
		// shape error must map to bad_input, and the epoch must not advance.
		{"removes too many rows", map[string]any{"key": fr.Key, "remove_rows": m - n + 1}, 400, "bad_input"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var er envelope
			code, _ := post(t, h, "/v1/update", tc.body, &er)
			if code != tc.wantCode || er.Error.Code != tc.wantErr {
				t.Fatalf("code=%d error=%+v, want %d %q", code, er.Error, tc.wantCode, tc.wantErr)
			}
		})
	}
	if cs := s.Cache().Stats(); cs.Updates != 0 {
		t.Fatalf("failed updates advanced the epoch: %+v", cs)
	}
	// The series lock must have been released by every failure path.
	var ur updateReply
	if code, _ := post(t, h, "/v1/update", map[string]any{"key": fr.Key, "remove_rows": 2}, &ur); code != 200 || ur.Epoch != 1 {
		t.Fatalf("valid update after failures: code=%d reply=%+v", code, ur)
	}
}

// TestUpdateApplyFaultLeavesEpochPublished arms the serve.update.apply
// failpoint: the update fails after the epoch was pinned, and the recovery
// path must leave the current epoch published, the series unlocked, and the
// failure counted.
func TestUpdateApplyFaultLeavesEpochPublished(t *testing.T) {
	s := New(Options{Workers: 2, Retry: fastRetry(1), DegradeThreshold: -1})
	defer s.Close()
	h := s.Handler()
	m, n := 48, 12
	data := testMatrix(320, m, n, 1)
	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data)}, &fr); code != 200 {
		t.Fatalf("factorize: code=%d", code)
	}

	arm(t, "seed=9;serve.update.apply=error@once=1")
	var er envelope
	code, _ := post(t, h, "/v1/update", map[string]any{"key": fr.Key, "remove_rows": 4}, &er)
	if code != 500 || er.Error.Code != "internal" {
		t.Fatalf("faulted update: code=%d error=%+v, want 500 internal", code, er.Error)
	}

	// Epoch 0 still serves, at its original shape.
	xTrue := make([]float64, n)
	for j := range xTrue {
		xTrue[j] = float64(j + 1)
	}
	var sr solveReply
	code, _ = post(t, h, "/v1/solve",
		map[string]any{"key": fr.Key, "b": matVecData(m, n, data, xTrue)}, &sr)
	if code != 200 || sr.Key != fr.Key {
		t.Fatalf("solve after aborted update: code=%d key=%q, want epoch 0 key %q", code, sr.Key, fr.Key)
	}
	if d := maxDiff(sr.X, xTrue); d > 1e-6 {
		t.Fatalf("solve after aborted update wrong by %g", d)
	}

	// The series must not be left latched: the next update goes through.
	var ur updateReply
	if code, _ := post(t, h, "/v1/update", map[string]any{"key": fr.Key, "remove_rows": 4}, &ur); code != 200 || ur.Epoch != 1 {
		t.Fatalf("update after aborted update: code=%d reply=%+v", code, ur)
	}

	var buf strings.Builder
	_ = s.Metrics().WriteText(&buf)
	if !strings.Contains(buf.String(), "tcqrd_update_failed_total 1") {
		t.Errorf("metrics missing the failed-update counter")
	}
}

// --- cache: byte budget, exact LRU, refcounts -------------------------------

// cacheEntryFor factors one matrix through the cache and releases the
// caller's reference, returning its key.
func cacheEntryFor(t *testing.T, c *FactorCache, seed uint64, m, n int) string {
	t.Helper()
	a := tcqr.FromColMajor(m, n, testMatrix(seed, m, n, 1))
	key := CacheKey(a, tcqr.Config{})
	e, _, err := c.GetOrFactor(key, a, tcqr.Config{})
	if err != nil {
		t.Fatalf("GetOrFactor(%dx%d): %v", m, n, err)
	}
	c.Release(e)
	return key
}

// TestCacheByteBudgetEvictsUntilUnder is the regression test for the byte
// budget: with entries of wildly different sizes, inserting a large entry
// must evict as many small LRU victims as it takes to fit the budget — not
// exactly one — and a single entry bigger than the whole budget stays
// resident rather than caching nothing.
func TestCacheByteBudgetEvictsUntilUnder(t *testing.T) {
	c := NewFactorCache(100, LibraryBackend{})

	// Measure the two entry sizes empirically.
	smallKey := cacheEntryFor(t, c, 1, 16, 4)
	small := c.Stats().Bytes
	bigKey := cacheEntryFor(t, c, 2, 128, 16)
	big := c.Stats().Bytes - small
	if big < 8*small {
		t.Fatalf("sizes not wildly different: small=%d big=%d", small, big)
	}
	c.Reset()

	budget := big + 4*small
	c.SetByteBudget(budget)
	for i := 0; i < 10; i++ {
		cacheEntryFor(t, c, uint64(10+i), 16, 4)
	}
	if cs := c.Stats(); cs.Entries != 10 || cs.Bytes > budget {
		t.Fatalf("ten small entries should fit: %+v (budget %d)", cs, budget)
	}
	// The big insert must evict six smalls in one go to get under budget.
	bigKey = cacheEntryFor(t, c, 2, 128, 16)
	cs := c.Stats()
	if cs.Bytes > budget {
		t.Fatalf("bytes %d over budget %d after big insert: %+v", cs.Bytes, budget, cs)
	}
	if cs.Entries != 5 || cs.Evictions != 6 {
		t.Fatalf("want 6 evictions leaving big+4 small, got %+v", cs)
	}
	if _, ok := c.Get(bigKey); !ok {
		t.Fatalf("the just-inserted big entry was evicted")
	}
	if _, ok := c.Get(smallKey); ok {
		t.Fatalf("oldest small entry survived the budget")
	}

	// A single entry larger than the whole budget stays resident.
	c.Reset()
	c.SetByteBudget(small)
	cacheEntryFor(t, c, 3, 128, 16)
	if cs := c.Stats(); cs.Entries != 1 {
		t.Fatalf("over-budget sole entry must stay resident: %+v", cs)
	}
}

// TestCacheExactLRUOrder pins exact-LRU eviction order: a Get promotes, and
// the victim is always the least recently *used* entry, not the least
// recently inserted one.
func TestCacheExactLRUOrder(t *testing.T) {
	c := NewFactorCache(3, LibraryBackend{})
	keyA := cacheEntryFor(t, c, 21, 32, 8)
	keyB := cacheEntryFor(t, c, 22, 32, 8)
	keyC := cacheEntryFor(t, c, 23, 32, 8)

	if e, ok := c.Get(keyA); !ok {
		t.Fatalf("A missing before eviction")
	} else {
		c.Release(e)
	}
	keyD := cacheEntryFor(t, c, 24, 32, 8) // LRU order is now B < C < A < D

	if _, ok := c.Get(keyB); ok {
		t.Fatalf("B survived; exact LRU must evict the least recently used entry")
	}
	for _, k := range []string{keyA, keyC, keyD} {
		e, ok := c.Get(k)
		if !ok {
			t.Fatalf("entry %s wrongly evicted", k)
		}
		c.Release(e)
	}
	if cs := c.Stats(); cs.Evictions != 1 {
		t.Fatalf("evictions = %d, want exactly 1", cs.Evictions)
	}
}

// TestEvictedEntryStaysReadableUntilReleased: eviction of a referenced entry
// must not free it — the holder keeps solving against it, and the entry is
// finalized only when the last reference drains.
func TestEvictedEntryStaysReadableUntilReleased(t *testing.T) {
	c := NewFactorCache(1, LibraryBackend{})
	keyA := cacheEntryFor(t, c, 31, 48, 8)
	a, ok := c.Get(keyA)
	if !ok {
		t.Fatalf("A missing")
	}
	// Inserting B evicts A while we hold it.
	cacheEntryFor(t, c, 32, 48, 8)
	cs := c.Stats()
	if cs.Evictions != 1 || cs.RetiredLive != 1 {
		t.Fatalf("stats after evicting a referenced entry: %+v", cs)
	}
	if a.F == nil || a.A == nil || len(a.A.Data) == 0 {
		t.Fatalf("evicted-but-referenced entry was freed")
	}
	c.Release(a)
	if cs := c.Stats(); cs.RetiredLive != 0 {
		t.Fatalf("RetiredLive did not drain after release: %+v", cs)
	}
}

// TestConcurrentSolveUpdateEvictRefcounts churns solves, updates, and
// cache-evicting factorizations against a two-entry cache under the race
// detector. The invariants are structural: every response is a legal status,
// nothing hangs, and when the dust settles every retired entry has drained
// (RetiredLive == 0).
func TestConcurrentSolveUpdateEvictRefcounts(t *testing.T) {
	s := New(Options{Workers: 4, CacheEntries: 2, Window: 200 * time.Microsecond, MaxBatch: 4})
	defer s.Close()
	h := s.Handler()
	m, n, k := 48, 8, 6
	data := testMatrix(400, m, n, 1)
	block := testMatrix(401, k, n, 1)

	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data)}, &fr); code != 200 {
		t.Fatalf("factorize: code=%d", code)
	}
	base := fr.Key
	b0 := matVecData(m, n, data, make([]float64, n))

	iters := 40
	if testing.Short() {
		iters = 8
	}
	var wg sync.WaitGroup
	legal := func(who string, code int) {
		if !legalChaosStatus[code] {
			t.Errorf("%s: illegal status %d", who, code)
		}
	}
	// Solvers: bare-key solves race the epoch flips; shape mismatches (400)
	// and evictions (404) are legal outcomes, hangs and crashes are not.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				code, _ := post(t, h, "/v1/solve", map[string]any{"key": base, "b": b0}, nil)
				legal("solver", code)
			}
		}(g)
	}
	// Updater: append-then-remove pairs keep the series churning through
	// epochs; 404 when the evictor won the race for the series entry.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			var body map[string]any
			if i%2 == 0 {
				body = map[string]any{"key": base, "append": wireMat(k, n, block)}
			} else {
				body = map[string]any{"key": base, "remove_rows": k}
			}
			code, _ := post(t, h, "/v1/update", body, nil)
			legal("updater", code)
		}
	}()
	// Evictor: distinct factorizations churn the two-slot LRU, evicting the
	// series entry out from under solves and updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			code, _ := post(t, h, "/v1/factorize",
				map[string]any{"matrix": wireMat(16, 4, testMatrix(uint64(500+i%6), 16, 4, 1))}, nil)
			legal("evictor", code)
		}
	}()
	wg.Wait()

	waitRetiredDrained(t, s.Cache())
}

// TestEpochConsistencyUnderConcurrentUpdates is the epoch-versioning
// acceptance test: while an updater alternates append/downdate epochs,
// concurrent bare-key solves must each be answered by exactly one published
// epoch — the response's key names it, the row shape matches it, and the
// solution is that epoch's solution. A torn read (factors from one epoch, A
// from another) would fail the accuracy check. Run under -race.
func TestEpochConsistencyUnderConcurrentUpdates(t *testing.T) {
	s := New(Options{Workers: 4, Window: 200 * time.Microsecond, MaxBatch: 4})
	defer s.Close()
	h := s.Handler()
	m, n, k := 48, 8, 6
	data := testMatrix(600, m, n, 1)
	block := testMatrix(601, k, n, 1)
	full := stackData(m, n, data, k, block)

	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data)}, &fr); code != 200 {
		t.Fatalf("factorize: code=%d", code)
	}
	base := fr.Key

	// Even epochs hold the m-row matrix, odd epochs the (m+k)-row stack: the
	// updater appends the SAME block every odd epoch and removes it every
	// even one, so each parity has one well-defined ground truth.
	xTrue := make([]float64, n)
	for j := range xTrue {
		xTrue[j] = float64(j%3) + 1
	}
	bEven := matVecData(m, n, data, xTrue)
	bOdd := matVecData(m+k, n, full, xTrue)

	epochs := 20
	if testing.Short() {
		epochs = 6
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := 1; e <= epochs; e++ {
			var body map[string]any
			if e%2 == 1 {
				body = map[string]any{"key": base, "append": wireMat(k, n, block)}
			} else {
				body = map[string]any{"key": base, "remove_rows": k}
			}
			var ur updateReply
			code, _ := post(t, h, "/v1/update", body, &ur)
			if code != 200 || ur.Epoch != uint64(e) {
				t.Errorf("update to epoch %d: code=%d reply=%+v", e, code, ur)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(700 + g)))
			for {
				select {
				case <-done:
					return
				default:
				}
				b, wantParity := bEven, uint64(0)
				if rng.Intn(2) == 1 {
					b, wantParity = bOdd, 1
				}
				var sr solveReply
				code, _ := post(t, h, "/v1/solve", map[string]any{"key": base, "b": b}, &sr)
				switch code {
				case 200:
					e := epochOf(t, sr.Key)
					if e%2 != wantParity {
						t.Errorf("solve with %d-row b answered by epoch %d (key %q): shape and epoch disagree",
							len(b), e, sr.Key)
						return
					}
					if d := maxDiff(sr.X, xTrue); d > 1e-4 {
						t.Errorf("epoch %d solve wrong by %g: response mixes epochs", e, d)
						return
					}
				case 400:
					// The epoch flipped between choosing b and resolving the
					// entry: the request was consistently rejected, not
					// answered with mismatched state.
				default:
					t.Errorf("solver: unexpected status %d", code)
					return
				}
			}
		}(g)
	}
	<-done
	wg.Wait()

	cs := s.Cache().Stats()
	if cs.Updates != int64(epochs) {
		t.Fatalf("published %d epochs, want %d: %+v", cs.Updates, epochs, cs)
	}
	waitRetiredDrained(t, s.Cache())
}

// --- binary frame update ----------------------------------------------------

func TestUpdateBinaryFrame(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()
	h := s.Handler()
	m, n, k := 48, 12, 4
	data := testMatrix(800, m, n, 1)
	var fr factorizeReply
	if code, _ := post(t, h, "/v1/factorize", map[string]any{"matrix": wireMat(m, n, data)}, &fr); code != 200 {
		t.Fatalf("factorize: code=%d", code)
	}
	block := testMatrix(801, k, n, 1)

	// Append as [JSON meta, matrix section]; the binary and JSON paths are
	// the same service, so the reply vocabulary is identical.
	body := frameBody(t, map[string]any{"key": fr.Key}, wirefmt.MatrixSection(k, n, block))
	rec := postFrame(t, h, "/v1/update", body, "application/json")
	var ur updateReply
	if err := json.Unmarshal(rec.Body.Bytes(), &ur); err != nil {
		t.Fatalf("undecodable binary-append reply %q: %v", rec.Body.String(), err)
	}
	if rec.Code != 200 || ur.Epoch != 1 || ur.Rows != m+k {
		t.Fatalf("binary append: code=%d reply=%+v", rec.Code, ur)
	}

	// A meta-only frame is a downdate; a binary response negotiates back.
	body = frameBody(t, map[string]any{"key": fr.Key, "remove_rows": k})
	rec = postFrame(t, h, "/v1/update", body, "")
	decodeFrameResp(t, rec, &ur)
	if rec.Code != 200 || ur.Epoch != 2 || ur.Rows != m {
		t.Fatalf("binary downdate: code=%d reply=%+v", rec.Code, ur)
	}

	// Smuggling the append block in the JSON meta alongside nothing else is
	// rejected: the matrix must travel as a section.
	body = frameBody(t, map[string]any{"key": fr.Key,
		"append": map[string]any{"rows": k, "cols": n, "data": block}})
	rec = postFrame(t, h, "/v1/update", body, "application/json")
	var er envelope
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatalf("undecodable error reply: %v", err)
	}
	if rec.Code != 400 || er.Error.Code != "bad_input" {
		t.Fatalf("meta-append frame: code=%d error=%+v, want 400 bad_input", rec.Code, er.Error)
	}
}
