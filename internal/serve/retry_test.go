package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"tcqr"
)

// --- RetryPolicy unit tests ------------------------------------------------

func TestRetryPolicyBackoffGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 45 * time.Millisecond, Multiplier: 2}.withDefaults()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		45 * time.Millisecond, 45 * time.Millisecond}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{fmt.Errorf("serve: panic in pool task: boom"), true}, // generic -> 500 internal
		{errStageTimeout, true},
		{ErrQueueFull, false},
		{ErrDraining, false},
		{ErrDeadline, false},
		{errBadInput("nope"), false},
		{tcqr.ErrShape, false},
		{tcqr.ErrBreakdown, false}, // 422: the data is the problem, not the server
		{degradedError(time.Second), false},
	}
	for _, c := range cases {
		if got := retryable(c.err); got != c.want {
			t.Errorf("retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// fakeRetrier builds a retrier whose sleeps are recorded instead of slept.
func fakeRetrier(p RetryPolicy) (*retrier, *[]time.Duration) {
	slept := &[]time.Duration{}
	rt := newRetrier(p)
	rt.sleep = func(ctx context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return ctx.Err()
	}
	return rt, slept
}

func TestRetrierRetriesTransientThenSucceeds(t *testing.T) {
	rt, slept := fakeRetrier(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, Jitter: -1})
	calls := 0
	err := rt.do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("do: err=%v calls=%d, want nil err after 3 calls", err, calls)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(*slept) != len(want) || (*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
}

func TestRetrierNeverRetriesNonRetryable(t *testing.T) {
	rt, slept := fakeRetrier(RetryPolicy{MaxAttempts: 5})
	calls := 0
	err := rt.do(context.Background(), func() error {
		calls++
		return errBadInput("client error")
	})
	if calls != 1 || len(*slept) != 0 {
		t.Fatalf("calls=%d slept=%v, want exactly 1 call and no sleep", calls, *slept)
	}
	var ae *apiError
	if !errors.As(err, &ae) || ae.code != "bad_input" {
		t.Fatalf("err = %v, want the original bad_input error", err)
	}
}

func TestRetrierExhaustsAttempts(t *testing.T) {
	rt, _ := fakeRetrier(RetryPolicy{MaxAttempts: 3, Jitter: -1})
	calls, retries := 0, 0
	rt.onRetry = func(attempt int, err error, d time.Duration) { retries++ }
	err := rt.do(context.Background(), func() error {
		calls++
		return errors.New("always down")
	})
	if calls != 3 || retries != 2 || err == nil {
		t.Fatalf("calls=%d retries=%d err=%v, want 3 calls, 2 retries, final error", calls, retries, err)
	}
}

func TestRetrierBackoffRespectsDeadline(t *testing.T) {
	// 5ms of budget cannot fit a 50ms backoff: do must return the error
	// immediately instead of sleeping past the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	rt, slept := fakeRetrier(RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, Jitter: -1})
	calls := 0
	err := rt.do(ctx, func() error { calls++; return errors.New("transient") })
	if calls != 1 || len(*slept) != 0 || err == nil {
		t.Fatalf("calls=%d slept=%v err=%v, want 1 call, no sleep, the error", calls, *slept, err)
	}
}

// --- FuzzRetryPolicy -------------------------------------------------------

// FuzzRetryPolicy drives arbitrary retry configurations and failure shapes
// through the retrier and asserts the three safety invariants: the attempt
// count never exceeds the policy bound, non-retryable (4xx-class) errors are
// never retried, and no backoff is ever scheduled that the request's
// deadline could not absorb.
func FuzzRetryPolicy(f *testing.F) {
	f.Add(3, 5, 250, 200, 20, uint8(2), 1000, true)
	f.Add(1, 0, 0, 0, 0, uint8(0), 50, true)
	f.Add(10, 1, 2, 150, 99, uint8(255), 3000, false)
	f.Add(0, -5, -1, -100, -50, uint8(7), 1, true)
	f.Fuzz(func(t *testing.T, maxAttempts, baseMS, maxMS, multPct, jitterPct int, failures uint8, deadlineMS int, transient bool) {
		if deadlineMS < 1 {
			deadlineMS = 1
		} else if deadlineMS > 5000 {
			deadlineMS = 5000
		}
		p := RetryPolicy{
			MaxAttempts: maxAttempts % 32,
			BaseDelay:   time.Duration(baseMS%1000) * time.Millisecond,
			MaxDelay:    time.Duration(maxMS%1000) * time.Millisecond,
			Multiplier:  float64(multPct%400) / 100,
			Jitter:      float64(jitterPct%200) / 100,
		}
		bound := p.withDefaults().MaxAttempts
		maxDelay := p.withDefaults().MaxDelay
		budget := time.Duration(deadlineMS) * time.Millisecond

		ctx, cancel := context.WithTimeout(context.Background(), budget)
		defer cancel()
		deadline, _ := ctx.Deadline()

		failErr := error(errBadInput("terminal"))
		if transient {
			failErr = errors.New("transient")
		}
		calls := 0
		rt := newRetrier(p)
		rt.rand = func() float64 { return 0.5 }
		rt.sleep = func(ctx context.Context, d time.Duration) error {
			if d > maxDelay {
				t.Fatalf("slept %v > MaxDelay %v", d, maxDelay)
			}
			// The decision to sleep d was taken while d fit the remaining
			// budget; 10ms of slack absorbs the wall-clock drift between that
			// check and this call.
			if rem := time.Until(deadline); d > rem+10*time.Millisecond {
				t.Fatalf("scheduled backoff %v exceeds remaining deadline budget %v", d, rem)
			}
			return ctx.Err()
		}
		_ = rt.do(ctx, func() error {
			calls++
			if calls <= int(failures) {
				return failErr
			}
			return nil
		})

		if calls > bound {
			t.Fatalf("fn called %d times, policy bound is %d", calls, bound)
		}
		if calls < 1 {
			t.Fatalf("fn never called")
		}
		if !transient && failures > 0 && calls != 1 {
			t.Fatalf("non-retryable error retried: %d calls", calls)
		}
	})
}
