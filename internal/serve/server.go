package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tcqr"
	"tcqr/internal/hazard"
)

// Options configures a Server. Zero values select sensible production
// defaults (see New).
type Options struct {
	// Workers is the compute worker count (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (0 = 64). Submissions past the
	// bound are rejected with 429 immediately.
	QueueDepth int
	// CacheEntries bounds the factorization cache (0 = 32 entries, LRU).
	CacheEntries int
	// Window is the coalescing window: same-factorization solves arriving
	// within it share one multi-RHS call. 0 disables coalescing; tcqrd
	// defaults it to 2ms.
	Window time.Duration
	// MaxBatch caps a coalesced batch; a full batch flushes before its
	// window closes (0 = 32).
	MaxBatch int
	// DefaultDeadline bounds each request when the client sends no
	// deadline_ms (0 = 30s).
	DefaultDeadline time.Duration
	// MaxBodyBytes caps request bodies (0 = 64 MiB).
	MaxBodyBytes int64
	// MaxElements caps rows*cols of an uploaded matrix (0 = 8Mi elements).
	MaxElements int
	// Backend routes compute; nil = LibraryBackend. Tests install counting
	// or delaying backends here.
	Backend Backend
}

// stageAgg accumulates one pipeline stage across requests.
type stageAgg struct {
	Count   int64
	TotalNs int64
	MaxNs   int64
}

// Server is the serving core: cache + coalescer + pool behind an
// http.Handler. Create with New, mount Handler, and call BeginDrain /
// AwaitIdle around shutdown.
type Server struct {
	opts     Options
	backend  Backend
	cache    *FactorCache
	coal     *Coalescer
	pool     *Pool
	start    time.Time
	draining atomic.Bool

	mu       sync.Mutex
	requests map[string]int64
	errors   map[string]int64
	timing   map[string]*stageAgg
	hazards  map[string]int64
}

// New builds a Server from opts, filling in defaults for zero fields.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.CacheEntries <= 0 {
		opts.CacheEntries = 32
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 32
	}
	if opts.DefaultDeadline <= 0 {
		opts.DefaultDeadline = 30 * time.Second
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 64 << 20
	}
	if opts.MaxElements <= 0 {
		opts.MaxElements = 8 << 20
	}
	if opts.Backend == nil {
		opts.Backend = LibraryBackend{}
	}
	s := &Server{
		opts:     opts,
		backend:  opts.Backend,
		pool:     NewPool(opts.Workers, opts.QueueDepth),
		start:    time.Now(),
		requests: make(map[string]int64),
		errors:   make(map[string]int64),
		timing:   make(map[string]*stageAgg),
		hazards:  make(map[string]int64),
	}
	s.cache = NewFactorCache(opts.CacheEntries, s.backend)
	s.coal = NewCoalescer(opts.Window, opts.MaxBatch, s.backend, func(fn func()) error {
		_, err := s.pool.Do(context.Background(), fn)
		return err
	})
	return s
}

// Cache exposes the factorization cache (benchmarks reset it to measure the
// cold path).
func (s *Server) Cache() *FactorCache { return s.cache }

// CoalescerStats exposes the coalescer counters (tests assert one multi-RHS
// call per batch through them).
func (s *Server) CoalescerStats() CoalescerStats { return s.coal.Stats() }

// BeginDrain flips the server to draining: /healthz turns 503, new compute
// requests are rejected, and every parked coalesced batch is flushed so
// in-flight requests complete promptly. Idempotent.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.coal.PendingFlush()
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// AwaitIdle blocks until the worker pool has no queued or running work, or
// ctx expires. Call after the HTTP server has stopped accepting requests.
func (s *Server) AwaitIdle(ctx context.Context) error { return s.pool.AwaitIdle(ctx) }

// Handler returns the HTTP API: POST /v1/factorize, /v1/solve, /v1/lowrank;
// GET /healthz, /statz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/factorize", s.handleFactorize)
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/v1/lowrank", s.handleLowRank)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statz", s.handleStatz)
	return mux
}

// admit is the common front door of the compute endpoints: method check,
// drain check, request accounting, body cap, deadline.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, endpoint string) (*hazard.Report, bool) {
	rep := &hazard.Report{}
	s.mu.Lock()
	s.requests[endpoint]++
	s.mu.Unlock()
	if r.Method != http.MethodPost {
		s.fail(w, rep, &apiError{status: http.StatusMethodNotAllowed, code: "method_not_allowed",
			msg: fmt.Sprintf("%s requires POST", r.URL.Path)})
		return nil, false
	}
	if s.draining.Load() {
		s.fail(w, rep, classifyError(ErrDraining))
		return nil, false
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	return rep, true
}

// requestContext derives the request's compute deadline: the client's
// deadline_ms when given, the server default otherwise, whichever is
// sooner.
func (s *Server) requestContext(r *http.Request, deadlineMS int64) (context.Context, context.CancelFunc) {
	d := s.opts.DefaultDeadline
	if deadlineMS > 0 {
		if cd := time.Duration(deadlineMS) * time.Millisecond; cd < d {
			d = cd
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// resolveMatrix validates an uploaded matrix against the size cap.
func (s *Server) resolveMatrix(wm *WireMatrix) (*tcqr.Matrix, *apiError) {
	a, err := wm.matrix()
	if err != nil {
		return nil, classifyError(err)
	}
	// matrix() guarantees Rows*Cols == len(Data), so the product is an exact
	// int; the int64 widening keeps this cap overflow-proof regardless.
	if n := int64(a.Rows) * int64(a.Cols); n > int64(s.opts.MaxElements) {
		return nil, &apiError{status: http.StatusRequestEntityTooLarge, code: "too_large",
			msg: fmt.Sprintf("matrix has %d elements; the server caps uploads at %d", n, s.opts.MaxElements)}
	}
	return a, nil
}

// factorEntry runs GetOrFactor through the pool, recording queue and (on
// non-hit sources) factorize stage timings.
func (s *Server) factorEntry(ctx context.Context, rep *hazard.Report, key string, a *tcqr.Matrix, cfg tcqr.Config) (*Entry, Source, error) {
	var (
		entry *Entry
		src   Source
		ferr  error
	)
	wait, err := s.pool.Do(ctx, func() {
		t0 := time.Now()
		entry, src, ferr = s.cache.GetOrFactor(key, a, cfg)
		if src != SourceHit {
			rep.RecordTiming("factorize", time.Since(t0))
		}
	})
	if err != nil {
		return nil, 0, err
	}
	rep.RecordTiming("queue", wait)
	return entry, src, ferr
}

func (s *Server) handleFactorize(w http.ResponseWriter, r *http.Request) {
	rep, ok := s.admit(w, r, "factorize")
	if !ok {
		return
	}
	var req factorizeRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		s.fail(w, rep, classifyError(err))
		return
	}
	a, aerr := s.resolveMatrix(req.Matrix)
	if aerr != nil {
		s.fail(w, rep, aerr)
		return
	}
	cfg, err := req.Config.config()
	if err != nil {
		s.fail(w, rep, classifyError(err))
		return
	}
	ctx, cancel := s.requestContext(r, req.DeadlineMS)
	defer cancel()
	key := CacheKey(a, cfg)
	entry, src, ferr := s.factorEntry(ctx, rep, key, a, cfg)
	if ferr != nil {
		s.fail(w, rep, classifyError(ferr))
		return
	}
	f := entry.F
	s.ok(w, rep, factorizeResponse{
		Key:              key,
		Rows:             a.Rows,
		Cols:             a.Cols,
		Cached:           src == SourceHit,
		Shared:           src == SourceShared,
		Reorthogonalized: f.Reorthogonalized,
		EngineStats: wireEngineStats{
			GemmCalls:  f.EngineStats.GemmCalls,
			Flops:      f.EngineStats.Flops,
			Overflows:  f.EngineStats.Overflows,
			Underflows: f.EngineStats.Underflows,
		},
		Hazards: s.noteHazards(f.Hazards),
	})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	rep, ok := s.admit(w, r, "solve")
	if !ok {
		return
	}
	var req solveRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		s.fail(w, rep, classifyError(err))
		return
	}
	opts, err := req.Options.options()
	if err != nil {
		s.fail(w, rep, classifyError(err))
		return
	}
	ctx, cancel := s.requestContext(r, req.DeadlineMS)
	defer cancel()

	var (
		entry *Entry
		src   Source
	)
	switch {
	case req.Key != "" && req.Matrix != nil:
		s.fail(w, rep, errBadInput("give key or matrix, not both"))
		return
	case req.Key != "":
		// A cached factorization keeps the config it was built with; a
		// config riding alongside a key would be silently ignored, so
		// reject it (mirroring the key+matrix conflict above).
		if req.Config != (WireConfig{}) {
			s.fail(w, rep, errBadInput("config cannot accompany key: the cached factorization's config applies (re-send the matrix to factorize under a different config)"))
			return
		}
		e, found := s.cache.Get(req.Key)
		if !found {
			s.fail(w, rep, &apiError{status: http.StatusNotFound, code: "unknown_key",
				msg: fmt.Sprintf("no cached factorization for key %q (it may have been evicted; re-send the matrix)", req.Key)})
			return
		}
		entry, src = e, SourceHit
	case req.Matrix != nil:
		a, aerr := s.resolveMatrix(req.Matrix)
		if aerr != nil {
			s.fail(w, rep, aerr)
			return
		}
		cfg, cerr := req.Config.config()
		if cerr != nil {
			s.fail(w, rep, classifyError(cerr))
			return
		}
		var ferr error
		entry, src, ferr = s.factorEntry(ctx, rep, CacheKey(a, cfg), a, cfg)
		if ferr != nil {
			s.fail(w, rep, classifyError(ferr))
			return
		}
	default:
		s.fail(w, rep, errBadInput("missing key or matrix"))
		return
	}

	if len(req.B) != entry.A.Rows {
		s.fail(w, rep, errBadInput(fmt.Sprintf("b holds %d elements; the matrix has %d rows", len(req.B), entry.A.Rows)))
		return
	}
	if err := hazard.CheckVec("b", req.B); err != nil {
		s.fail(w, rep, classifyError(err))
		return
	}

	out := s.coal.Submit(ctx, entry, opts, req.B)
	if out.err != nil {
		s.fail(w, rep, classifyError(out.err))
		return
	}
	rep.RecordTiming("queue", out.queueWait)
	rep.RecordTiming("solve", out.solveTime)
	s.ok(w, rep, solveResponse{
		X:          out.x,
		Iterations: out.iterations,
		Converged:  out.converged,
		Optimality: out.optimality,
		Key:        entry.Key,
		Cached:     src == SourceHit,
		Batched:    out.batched,
		Hazards:    s.noteHazards(out.hazards),
	})
}

func (s *Server) handleLowRank(w http.ResponseWriter, r *http.Request) {
	rep, ok := s.admit(w, r, "lowrank")
	if !ok {
		return
	}
	var req lowRankRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		s.fail(w, rep, classifyError(err))
		return
	}
	a, aerr := s.resolveMatrix(req.Matrix)
	if aerr != nil {
		s.fail(w, rep, aerr)
		return
	}
	cfg, err := req.Config.config()
	if err != nil {
		s.fail(w, rep, classifyError(err))
		return
	}
	ctx, cancel := s.requestContext(r, req.DeadlineMS)
	defer cancel()
	var (
		res  *tcqr.LowRankApprox
		lerr error
	)
	wait, perr := s.pool.Do(ctx, func() {
		t0 := time.Now()
		res, lerr = s.backend.LowRank(tcqr.ToFloat32(a), req.Rank, cfg)
		rep.RecordTiming("solve", time.Since(t0))
	})
	if perr != nil {
		s.fail(w, rep, classifyError(perr))
		return
	}
	rep.RecordTiming("queue", wait)
	if lerr != nil {
		s.fail(w, rep, classifyError(lerr))
		return
	}
	sing := make([]float64, len(res.S))
	for i, v := range res.S {
		sing[i] = float64(v)
	}
	s.ok(w, rep, lowRankResponse{
		U:       fromMatrix(res.U),
		S:       sing,
		V:       fromMatrix(res.V),
		Rank:    res.Rank,
		Hazards: s.noteHazards(res.Hazards),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// statzTiming is the aggregated view of one pipeline stage.
type statzTiming struct {
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	AvgMS   float64 `json:"avg_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// statzResponse is the body of GET /statz.
type statzResponse struct {
	UptimeSeconds float64                `json:"uptime_seconds"`
	Draining      bool                   `json:"draining"`
	Requests      map[string]int64       `json:"requests"`
	Errors        map[string]int64       `json:"errors"`
	Cache         CacheStats             `json:"cache"`
	Coalescer     CoalescerStats         `json:"coalescer"`
	Pool          PoolStats              `json:"pool"`
	Timing        map[string]statzTiming `json:"timing"`
	Hazards       map[string]int64       `json:"hazards"`
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	resp := statzResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.draining.Load(),
		Requests:      copyMap(s.requests),
		Errors:        copyMap(s.errors),
		Timing:        make(map[string]statzTiming, len(s.timing)),
		Hazards:       copyMap(s.hazards),
	}
	for stage, agg := range s.timing {
		resp.Timing[stage] = statzTiming{
			Count:   agg.Count,
			TotalMS: float64(agg.TotalNs) / 1e6,
			AvgMS:   float64(agg.TotalNs) / float64(agg.Count) / 1e6,
			MaxMS:   float64(agg.MaxNs) / 1e6,
		}
	}
	s.mu.Unlock()
	resp.Cache = s.cache.Stats()
	resp.Coalescer = s.coal.Stats()
	resp.Pool = s.pool.Stats()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

func copyMap(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// noteHazards serializes a hazard list and folds it into the server-wide
// per-kind counters surfaced by /statz.
func (s *Server) noteHazards(hs []tcqr.Hazard) []WireHazard {
	ws := wireHazards(hs)
	if len(ws) > 0 {
		s.mu.Lock()
		for _, h := range ws {
			s.hazards[h.Kind]++
		}
		s.mu.Unlock()
	}
	return ws
}

// ok encodes v (timed as the encode stage) and finishes the response.
func (s *Server) ok(w http.ResponseWriter, rep *hazard.Report, v any) {
	var buf bytes.Buffer
	t0 := time.Now()
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(v); err != nil {
		s.fail(w, rep, &apiError{status: http.StatusInternalServerError, code: "internal", msg: err.Error()})
		return
	}
	rep.RecordTiming("encode", time.Since(t0))
	s.finish(w, rep, http.StatusOK, buf.Bytes())
}

// fail encodes the uniform error envelope for e and finishes the response.
func (s *Server) fail(w http.ResponseWriter, rep *hazard.Report, e *apiError) {
	s.mu.Lock()
	s.errors[e.code]++
	s.mu.Unlock()
	body, _ := json.Marshal(errorBody{Error: errorDetail{Code: e.code, Message: e.msg, Hazards: e.hazards}})
	if e.status == http.StatusTooManyRequests || e.status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	s.finish(w, rep, e.status, append(body, '\n'))
}

// finish aggregates the request's stage timings into /statz, emits the
// Server-Timing header, and writes the response.
func (s *Server) finish(w http.ResponseWriter, rep *hazard.Report, status int, body []byte) {
	timings := rep.Timings()
	s.mu.Lock()
	for _, t := range timings {
		agg := s.timing[t.Stage]
		if agg == nil {
			agg = &stageAgg{}
			s.timing[t.Stage] = agg
		}
		agg.Count++
		agg.TotalNs += t.D.Nanoseconds()
		if ns := t.D.Nanoseconds(); ns > agg.MaxNs {
			agg.MaxNs = ns
		}
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if st := serverTimingHeader(timings); st != "" {
		w.Header().Set("Server-Timing", st)
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// serverTimingHeader renders the stage breakdown in the standard
// Server-Timing format, one metric per stage (durations summed if a stage
// was recorded twice), in the canonical queue/factorize/solve/encode order.
func serverTimingHeader(timings []hazard.Timing) string {
	if len(timings) == 0 {
		return ""
	}
	sums := make(map[string]time.Duration)
	var order []string
	for _, t := range timings {
		if _, seen := sums[t.Stage]; !seen {
			order = append(order, t.Stage)
		}
		sums[t.Stage] += t.D
	}
	sort.SliceStable(order, func(i, j int) bool { return stageRank(order[i]) < stageRank(order[j]) })
	var sb strings.Builder
	for i, stage := range order {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s;dur=%.3f", stage, float64(sums[stage].Nanoseconds())/1e6)
	}
	return sb.String()
}

func stageRank(stage string) int {
	switch stage {
	case "queue":
		return 0
	case "factorize":
		return 1
	case "solve":
		return 2
	case "encode":
		return 3
	}
	return 4
}
