package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tcqr"
	"tcqr/internal/cluster"
	"tcqr/internal/faultinject"
	"tcqr/internal/hazard"
	"tcqr/internal/metrics"
	"tcqr/internal/wirefmt"
)

// Options configures a Server. Zero values select sensible production
// defaults (see New).
type Options struct {
	// Workers is the compute worker count (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (0 = 64). Submissions past the
	// bound are rejected with 429 immediately.
	QueueDepth int
	// CacheEntries bounds the factorization cache (0 = 32 entries, LRU).
	CacheEntries int
	// CacheMaxBytes additionally bounds the cache's estimated resident
	// bytes (0 = entry count only): the LRU tail is evicted until both
	// bounds hold, so a handful of huge factors cannot blow past memory
	// while tiny entries are evicted needlessly.
	CacheMaxBytes int64
	// CacheDir enables the write-behind disk spill tier: published
	// factorizations persist under this directory (checksummed, atomically
	// renamed) and a restarted server rewarms its cache from them instead
	// of cold-factorizing ("" = no persistence).
	CacheDir string
	// SpillMaxBytes bounds the spill tier's on-disk footprint; oldest files
	// are deleted first (0 = unbounded). Ignored without CacheDir.
	SpillMaxBytes int64
	// Window is the coalescing window: same-factorization solves arriving
	// within it share one multi-RHS call. 0 disables coalescing; tcqrd
	// defaults it to 2ms.
	Window time.Duration
	// MaxBatch caps a coalesced batch; a full batch flushes before its
	// window closes (0 = 32).
	MaxBatch int
	// DefaultDeadline bounds each request when the client sends no
	// deadline_ms (0 = 30s).
	DefaultDeadline time.Duration
	// MaxBodyBytes caps request bodies (0 = 64 MiB).
	MaxBodyBytes int64
	// MaxElements caps rows*cols of an uploaded matrix (0 = 8Mi elements).
	MaxElements int
	// Retry bounds automatic retries of transient internal failures —
	// recovered compute panics and injected faults — before a 500 is
	// surfaced. Zero fields select the production defaults documented on
	// RetryPolicy.
	Retry RetryPolicy
	// DegradeThreshold is the number of consecutive internal failures that
	// trips degraded (cache-only) serving (0 = 5; negative disables the
	// breaker).
	DegradeThreshold int
	// DegradeCooldown is how long a degraded trip lasts (0 = 10s).
	DegradeCooldown time.Duration
	// StageTimeout bounds each compute attempt independently of the request
	// deadline, so one wedged attempt can be retried while the request still
	// has budget (0 = disabled).
	StageTimeout time.Duration
	// StreamTTL is the idle deadline of a chunked-upload session: a session
	// with no append or commit for this long is reaped, and its buffered row
	// blocks released (0 = 2m).
	StreamTTL time.Duration
	// MaxStreamSessions caps concurrently open chunked-upload sessions;
	// begins past the cap are rejected with 429 (0 = 16).
	MaxStreamSessions int
	// DefaultEngine is the wire engine name ("fp16", "tc-ec", "bf16",
	// "fp32") applied to requests that leave Config.engine unset ("" = the
	// library default, fp16). A request that names an engine always wins —
	// the default changes what "unset" means, not what clients may ask for.
	// Invalid names surface as bad_input on the first request that relies
	// on the default.
	DefaultEngine string
	// Backend routes compute; nil = LibraryBackend. Tests install counting
	// or delaying backends here.
	Backend Backend
	// Registry receives the server's metric families (nil = a private
	// registry, reachable via Metrics). Pass a shared registry to mount
	// additional families beside the server's own.
	Registry *metrics.Registry
	// Cluster attaches this server to a tcqrd cluster node (nil = single-node
	// serving, no routing). Keyed requests route to their owners over binary
	// frames; see internal/cluster and DESIGN.md §14. Pass the same Registry
	// to both so the tcqrd_cluster_* families render beside the server's own.
	Cluster *cluster.Node
	// Logger receives one structured record per request (nil = request
	// logging disabled). Lifecycle logging stays with the caller; this
	// logger only sees request-scoped records.
	Logger *slog.Logger
}

// Server is the serving core: cache + coalescer + pool behind an
// http.Handler. Create with New, mount Handler, call BeginDrain / AwaitIdle
// around shutdown, and Close when retiring the server (it detaches the
// process-global engine-GEMM observer).
type Server struct {
	opts     Options
	backend  Backend
	updater  Updater
	cache    *FactorCache
	spill    *SpillTier
	coal     *Coalescer
	pool     *Pool
	streams  *streamRegistry
	cluster  *cluster.Node
	start    time.Time
	draining atomic.Bool
	brk      *breaker
	metrics  *serverMetrics
	log      *slog.Logger

	reaperStop chan struct{}
	closeOnce  sync.Once
}

// New builds a Server from opts, filling in defaults for zero fields.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.CacheEntries <= 0 {
		opts.CacheEntries = 32
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 32
	}
	if opts.DefaultDeadline <= 0 {
		opts.DefaultDeadline = 30 * time.Second
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 64 << 20
	}
	if opts.MaxElements <= 0 {
		opts.MaxElements = 8 << 20
	}
	if opts.DegradeThreshold == 0 {
		opts.DegradeThreshold = 5
	}
	if opts.DegradeCooldown <= 0 {
		opts.DegradeCooldown = 10 * time.Second
	}
	if opts.StreamTTL <= 0 {
		opts.StreamTTL = 2 * time.Minute
	}
	if opts.MaxStreamSessions <= 0 {
		opts.MaxStreamSessions = 16
	}
	opts.Retry = opts.Retry.withDefaults()
	if opts.Backend == nil {
		opts.Backend = LibraryBackend{}
	}
	if opts.Registry == nil {
		opts.Registry = metrics.NewRegistry()
	}
	s := &Server{
		opts:       opts,
		backend:    opts.Backend,
		pool:       NewPool(opts.Workers, opts.QueueDepth),
		streams:    newStreamRegistry(opts.StreamTTL, opts.MaxStreamSessions),
		cluster:    opts.Cluster,
		start:      time.Now(),
		log:        opts.Logger,
		reaperStop: make(chan struct{}),
	}
	s.brk = &breaker{cooldown: opts.DegradeCooldown}
	if opts.DegradeThreshold > 0 {
		s.brk.threshold = int64(opts.DegradeThreshold)
	}
	s.cache = NewFactorCache(opts.CacheEntries, s.backend)
	s.cache.SetByteBudget(opts.CacheMaxBytes)
	// Updates route through the backend when it implements the optional
	// Updater capability, and fall back to the library implementation so a
	// counting/faking Backend still serves /v1/update.
	if up, ok := s.backend.(Updater); ok {
		s.updater = up
	} else {
		s.updater = LibraryBackend{}
	}
	if opts.CacheDir != "" {
		sp, err := NewSpillTier(opts.CacheDir, opts.SpillMaxBytes)
		if err != nil {
			if s.log != nil {
				s.log.Warn("spill tier disabled", slog.String("dir", opts.CacheDir), slog.String("error", err.Error()))
			}
		} else {
			s.spill = sp
			s.cache.attachSpill(sp)
			// Rewarm synchronously, before the first request: a bounced
			// daemon serves by-key cache hits immediately instead of
			// stampeding cold factorizes.
			for _, e := range sp.Rewarm() {
				s.cache.AdoptRewarmed(e)
			}
		}
	}
	s.coal = NewCoalescer(opts.Window, opts.MaxBatch, s.backend, func(fn func()) error {
		_, err := s.pool.Do(context.Background(), fn)
		return err
	})
	s.coal.retain = s.cache.Acquire
	s.coal.release = s.cache.Release
	s.metrics = newServerMetrics(opts.Registry, s)
	s.coal.onFlush = func(size int) { s.metrics.batchSize.Observe(float64(size)) }
	s.streams.reaped = func(n int) { s.metrics.streamReaped.Add(int64(n)) }
	go s.streamReaper(s.reaperStop)
	return s
}

// Cache exposes the factorization cache (benchmarks reset it to measure the
// cold path).
func (s *Server) Cache() *FactorCache { return s.cache }

// reqConfig translates a request's wire config, filling an unset engine
// with the server's DefaultEngine before the enum check: the substitution
// happens ahead of CacheKey derivation, so a defaulted request and an
// explicit one asking for the same engine share a cache entry.
func (s *Server) reqConfig(w WireConfig) (tcqr.Config, error) {
	if w.Engine == "" {
		w.Engine = s.opts.DefaultEngine
	}
	return w.config()
}

// CoalescerStats exposes the coalescer counters (tests assert one multi-RHS
// call per batch through them).
func (s *Server) CoalescerStats() CoalescerStats { return s.coal.Stats() }

// Metrics exposes the server's metrics registry (the same one /metrics
// renders).
func (s *Server) Metrics() *metrics.Registry { return s.metrics.reg }

// Close detaches the server's engine-GEMM observer and stops the stream
// session reaper. Call when retiring a Server whose process keeps running
// (tests, embedders); idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.reaperStop)
		if s.spill != nil {
			s.spill.Close()
		}
	})
	s.metrics.close()
}

// BeginDrain flips the server to draining: /healthz turns 503, new compute
// requests are rejected, every parked coalesced batch is flushed so
// in-flight requests complete promptly, and every open chunked-upload
// session is reaped (a begin-without-commit client gets unknown_stream and
// must restart against the replacement instance). On a cluster node the
// drain is cluster-aware: peers probing the 503 healthz mark this node down
// and stop forwarding to it, and the node's queued handoff hints get an
// immediate flush attempt (see also cluster.Node.DrainHandoff for a blocking
// flush at shutdown). Idempotent.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.coal.PendingFlush()
	s.streams.reapAll()
	if s.cluster != nil {
		s.cluster.BeginLeave()
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// AwaitIdle blocks until the worker pool has no queued or running work, or
// ctx expires. Call after the HTTP server has stopped accepting requests.
func (s *Server) AwaitIdle(ctx context.Context) error { return s.pool.AwaitIdle(ctx) }

// Handler returns the HTTP API: POST /v1/factorize, /v1/factorize/stream/
// {begin,append,commit,abort}, /v1/solve, /v1/update, /v1/lowrank; GET
// /healthz, /statz, /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/factorize", s.handleFactorize)
	mux.HandleFunc("/v1/factorize/stream/begin", s.handleStreamBegin)
	mux.HandleFunc("/v1/factorize/stream/append", s.handleStreamAppend)
	mux.HandleFunc("/v1/factorize/stream/commit", s.handleStreamCommit)
	mux.HandleFunc("/v1/factorize/stream/abort", s.handleStreamAbort)
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/v1/update", s.handleUpdate)
	mux.HandleFunc("/v1/lowrank", s.handleLowRank)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statz", s.handleStatz)
	mux.Handle("/metrics", s.metrics.reg)
	return mux
}

// reqScope carries one request's instrumentation through its handler: the
// hazard/timing report, the identifiers the structured log line wants
// (filled in as the handler learns them), and the terminal-status
// bookkeeping shared by ok and fail.
type reqScope struct {
	s        *Server
	endpoint string
	method   string
	rep      *hazard.Report
	start    time.Time

	// binReq/frameResp record the negotiated encodings (see binwire.go);
	// bodyBuf is the pooled frame buffer backing a binary request, released
	// by releaseBody unless retainBody was set (a deadline-abandoned solve
	// batch may still read the zero-copy right-hand side view).
	binReq     bool
	frameResp  bool
	bodyBuf    []byte
	retainBody bool
	respCT     string // response Content-Type; empty selects application/json

	// forwarded marks a request that arrived with the cluster loop-guard
	// header: a peer routed it here, so it is served locally, never
	// re-forwarded.
	forwarded bool

	key         string
	rows, cols  int
	batched     int
	errCode     string
	hazardKinds []string
	repCounted  bool
}

// releaseBody returns the pooled request buffer, unless a still-running
// batch may alias it. Call only after the response is fully written.
func (rc *reqScope) releaseBody() {
	if rc.bodyBuf != nil && !rc.retainBody {
		wirefmt.PutBuffer(rc.bodyBuf)
		rc.bodyBuf = nil
	}
}

// admit is the common front door of the compute endpoints: method check,
// drain check, encoding negotiation, request accounting, body cap.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, endpoint string) (*reqScope, bool) {
	rc := &reqScope{
		s:        s,
		endpoint: endpoint,
		method:   r.Method,
		rep:      &hazard.Report{},
		start:    time.Now(),
	}
	rc.binReq = isFrameRequest(r)
	rc.frameResp = wantsFrameResponse(r, rc.binReq)
	rc.forwarded = r.Header.Get(cluster.ForwardHeader) != ""
	// Hot counters are pre-resolved per endpoint/encoding at construction:
	// the CounterVec lookup takes a read lock per call, which is measurable
	// contention at the 64-client coalesced throughput target.
	if hot, ok := s.metrics.hot[endpoint]; ok {
		hot.requests.Inc()
		if rc.binReq {
			hot.wireBinary.Inc()
		} else {
			hot.wireJSON.Inc()
		}
	} else {
		s.metrics.requests.With(endpoint).Inc()
	}
	if r.Method != http.MethodPost {
		rc.fail(w, &apiError{status: http.StatusMethodNotAllowed, code: "method_not_allowed",
			msg: fmt.Sprintf("%s requires POST", r.URL.Path)})
		return nil, false
	}
	if s.draining.Load() {
		rc.fail(w, classifyError(ErrDraining))
		return nil, false
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	return rc, true
}

// requestContext derives the request's compute deadline: the client's
// deadline_ms when given, the server default otherwise, whichever is
// sooner.
func (s *Server) requestContext(r *http.Request, deadlineMS int64) (context.Context, context.CancelFunc) {
	d := s.opts.DefaultDeadline
	if deadlineMS > 0 {
		if cd := time.Duration(deadlineMS) * time.Millisecond; cd < d {
			d = cd
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// resolveMatrix validates an uploaded matrix against the size cap.
func (s *Server) resolveMatrix(wm *WireMatrix) (*tcqr.Matrix, *apiError) {
	a, err := wm.matrix()
	if err != nil {
		return nil, classifyError(err)
	}
	// matrix() guarantees Rows*Cols == len(Data), so the product is an exact
	// int; the int64 widening keeps this cap overflow-proof regardless.
	if n := int64(a.Rows) * int64(a.Cols); n > int64(s.opts.MaxElements) {
		return nil, &apiError{status: http.StatusRequestEntityTooLarge, code: "too_large",
			msg: fmt.Sprintf("matrix has %d elements; the server caps uploads at %d", n, s.opts.MaxElements)}
	}
	return a, nil
}

// retryDo runs one compute stage under the server's retry policy. Each
// attempt optionally runs under its own StageTimeout-derived context; an
// attempt killed by the stage bound while the request itself is still alive
// is lifted to errStageTimeout, which is retryable — a wedged attempt does
// not doom a request with deadline budget left. Every retry is recorded in
// the request's hazard report (KindTransient) and the retry metrics; a
// transient failure that survives the whole policy bumps the exhausted
// counter on its way to becoming a 500.
func (s *Server) retryDo(ctx context.Context, rc *reqScope, stage string, fn func(ctx context.Context) error) error {
	rt := newRetrier(s.opts.Retry)
	rt.onRetry = func(attempt int, err error, d time.Duration) {
		s.metrics.retryAttempts.With(rc.endpoint).Inc()
		s.metrics.retryBackoff.ObserveDuration(d)
		rc.rep.Record(hazard.Event{
			Kind:   hazard.KindTransient,
			Stage:  stage,
			Detail: fmt.Sprintf("attempt %d: %v", attempt, err),
			Action: fmt.Sprintf("retry after %s", d.Round(10*time.Microsecond)),
		})
	}
	err := rt.do(ctx, func() error {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if s.opts.StageTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, s.opts.StageTimeout)
		}
		defer cancel()
		aerr := fn(actx)
		if aerr != nil && actx.Err() != nil && ctx.Err() == nil {
			aerr = errStageTimeout
		}
		return aerr
	})
	if err != nil && retryable(err) {
		s.metrics.retryExhausted.With(rc.endpoint).Inc()
	}
	return err
}

// degradedReject returns the rejection for cold compute while the breaker
// is tripped, or nil when the server is healthy.
func (s *Server) degradedReject() *apiError {
	rem, deg := s.brk.degraded()
	if !deg {
		return nil
	}
	s.brk.rejected.Add(1)
	return degradedError(rem)
}

// factorEntry runs GetOrFactor through the pool under the retry policy,
// recording queue and (on non-hit sources) factorize stage timings plus the
// panel counter for factorizations actually performed. While the server is
// degraded only the cache answers: a resident factorization is served as a
// hit, anything cold is rejected with 503 + Retry-After.
func (s *Server) factorEntry(ctx context.Context, rc *reqScope, key string, a *tcqr.Matrix, cfg tcqr.Config) (*Entry, Source, error) {
	if rem, deg := s.brk.degraded(); deg {
		if e, ok := s.cache.Get(key); ok {
			return e, SourceHit, nil
		}
		s.brk.rejected.Add(1)
		return nil, 0, degradedError(rem)
	}
	var (
		entry *Entry
		src   Source
	)
	err := s.retryDo(ctx, rc, "factorize", func(actx context.Context) error {
		var ferr error
		wait, perr := s.pool.Do(actx, func() {
			t0 := time.Now()
			entry, src, ferr = s.cache.GetOrFactor(key, a, cfg)
			if src != SourceHit {
				rc.rep.RecordTiming("factorize", time.Since(t0))
			}
		})
		if perr != nil {
			return perr
		}
		rc.rep.RecordTiming("queue", wait)
		if src == SourceMiss {
			s.metrics.panels.With(panelLabel(cfg.Panel)).Inc()
		}
		return ferr
	})
	if err != nil {
		return nil, 0, err
	}
	// A miss that ran through the parallel TSQR pipeline carries per-stage
	// timings; fold them into the tcqrd_tsqr_* families exactly once (hits
	// and shared waiters reuse a factorization someone else already counted).
	if src == SourceMiss && entry.F != nil && entry.F.TSQR != nil {
		s.metrics.observeTSQR(entry.F.TSQR)
	}
	return entry, src, nil
}

func (s *Server) handleFactorize(w http.ResponseWriter, r *http.Request) {
	rc, ok := s.admit(w, r, "factorize")
	if !ok {
		return
	}
	var req factorizeRequest
	if rc.binReq {
		// The matrix is copied out of the frame during decode (it outlives
		// the request in the cache), so the pooled buffer can be released as
		// soon as decoding ends.
		body, aerr := readFrameBody(r)
		if aerr != nil {
			rc.fail(w, aerr)
			return
		}
		preq, aerr := decodeFactorizeFrame(body, nil)
		wirefmt.PutBuffer(body)
		if aerr != nil {
			rc.fail(w, aerr)
			return
		}
		req = *preq
	} else if err := decodeJSON(r.Body, &req); err != nil {
		rc.fail(w, classifyError(err))
		return
	}
	a, aerr := s.resolveMatrix(req.Matrix)
	if aerr != nil {
		rc.fail(w, aerr)
		return
	}
	rc.rows, rc.cols = a.Rows, a.Cols
	cfg, err := s.reqConfig(req.Config)
	if err != nil {
		rc.fail(w, classifyError(err))
		return
	}
	ctx, cancel := s.requestContext(r, req.DeadlineMS)
	defer cancel()
	key := CacheKey(a, cfg)
	rc.key = key
	if s.maybeForwardFactorize(w, rc, ctx, &req, a, key) {
		return
	}
	entry, src, ferr := s.factorEntry(ctx, rc, key, a, cfg)
	if ferr != nil {
		rc.fail(w, classifyError(ferr))
		return
	}
	defer s.cache.Release(entry)
	if src == SourceMiss {
		s.clusterReplicate(key, a, req.Config)
	}
	f := entry.F
	rc.ok(w, factorizeResponse{
		Key:              key,
		Rows:             a.Rows,
		Cols:             a.Cols,
		Cached:           src == SourceHit,
		Shared:           src == SourceShared,
		Reorthogonalized: f.Reorthogonalized,
		EngineStats: wireEngineStats{
			GemmCalls:  f.EngineStats.GemmCalls,
			Flops:      f.EngineStats.Flops,
			Overflows:  f.EngineStats.Overflows,
			Underflows: f.EngineStats.Underflows,
		},
		Hazards: rc.noteHazards(f.Hazards),
	})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	rc, ok := s.admit(w, r, "solve")
	if !ok {
		return
	}
	var req solveRequest
	if rc.binReq {
		// The right-hand side is served as a zero-copy view into the pooled
		// frame buffer: no per-request copy of b on the cache-hit fast path.
		// The buffer is released after the response unless the solve was
		// abandoned on deadline (the detached batch still reads the view).
		body, aerr := readFrameBody(r)
		if aerr != nil {
			rc.fail(w, aerr)
			return
		}
		rc.bodyBuf = body
		defer rc.releaseBody()
		preq, aerr := decodeSolveFrame(body, nil)
		if aerr != nil {
			rc.fail(w, aerr)
			return
		}
		req = *preq
	} else if err := decodeJSON(r.Body, &req); err != nil {
		rc.fail(w, classifyError(err))
		return
	}
	opts, err := req.Options.options()
	if err != nil {
		rc.fail(w, classifyError(err))
		return
	}
	ctx, cancel := s.requestContext(r, req.DeadlineMS)
	defer cancel()

	var (
		entry *Entry
		src   Source
	)
	switch {
	case req.Key != "" && req.Matrix != nil:
		rc.fail(w, errBadInput("give key or matrix, not both"))
		return
	case req.Key != "":
		// A cached factorization keeps the config it was built with; a
		// config riding alongside a key would be silently ignored, so
		// reject it (mirroring the key+matrix conflict above).
		if req.Config != (WireConfig{}) {
			rc.fail(w, errBadInput("config cannot accompany key: the cached factorization's config applies (re-send the matrix to factorize under a different config)"))
			return
		}
		// Route before the local lookup: a non-owner without the entry
		// forwards to the owners; exhausted candidates fall through to the
		// local (404) answer as the served_local_fallback outcome.
		if s.maybeForwardSolve(w, rc, ctx, &req, nil, req.Key) {
			return
		}
		e, found := s.cache.Get(req.Key)
		if !found {
			rc.fail(w, &apiError{status: http.StatusNotFound, code: "unknown_key",
				msg: fmt.Sprintf("no cached factorization for key %q (it may have been evicted; re-send the matrix)", req.Key)})
			return
		}
		entry, src = e, SourceHit
	case req.Matrix != nil:
		a, aerr := s.resolveMatrix(req.Matrix)
		if aerr != nil {
			rc.fail(w, aerr)
			return
		}
		cfg, cerr := s.reqConfig(req.Config)
		if cerr != nil {
			rc.fail(w, classifyError(cerr))
			return
		}
		key := CacheKey(a, cfg)
		if s.maybeForwardSolve(w, rc, ctx, &req, a, key) {
			return
		}
		var ferr error
		entry, src, ferr = s.factorEntry(ctx, rc, key, a, cfg)
		if ferr != nil {
			rc.fail(w, classifyError(ferr))
			return
		}
		if src == SourceMiss {
			// A solve that factored locally re-homes the entry to its owners
			// (replica fan-out / hinted handoff), exactly like a factorize.
			s.clusterReplicate(key, a, req.Config)
		}
	default:
		rc.fail(w, errBadInput("missing key or matrix"))
		return
	}
	// The reference acquired above (Get or GetOrFactor) pins the entry —
	// and, under epoch-versioned updates, the exact epoch this request
	// resolved — for the whole solve, so concurrent updates and evictions
	// can never free or swap the factors mid-read.
	defer s.cache.Release(entry)
	rc.key = entry.Key
	rc.rows, rc.cols = entry.A.Rows, entry.A.Cols

	if len(req.B) != entry.A.Rows {
		rc.fail(w, errBadInput(fmt.Sprintf("b holds %d elements; the matrix has %d rows", len(req.B), entry.A.Rows)))
		return
	}
	if err := hazard.CheckVec("b", req.B); err != nil {
		rc.fail(w, classifyError(err))
		return
	}

	var out solveOutcome
	serr := s.retryDo(ctx, rc, "solve", func(actx context.Context) error {
		out = s.coal.Submit(actx, entry, opts, req.B)
		if errors.Is(out.err, ErrDeadline) {
			// The request abandoned its batch, but the batch still runs and
			// will read every waiter's b — including our zero-copy view into
			// the pooled frame buffer. Leak the buffer to the collector
			// rather than recycling memory a flusher is about to read. This
			// sticks even if a later retry attempt succeeds: the abandoned
			// batch from the timed-out attempt may still be in flight.
			rc.retainBody = true
		}
		return out.err
	})
	if serr != nil {
		rc.fail(w, classifyError(serr))
		return
	}
	rc.rep.RecordTiming("queue", out.queueWait)
	rc.rep.RecordTiming("solve", out.solveTime)
	rc.batched = out.batched
	rc.ok(w, solveResponse{
		X:          out.x,
		Iterations: out.iterations,
		Converged:  out.converged,
		Optimality: out.optimality,
		Key:        entry.Key,
		Cached:     src == SourceHit,
		Batched:    out.batched,
		Hazards:    rc.noteHazards(out.hazards),
	})
}

// handleUpdate is POST /v1/update: an incremental mutation of the cached
// factorization behind a key — append a row block or downdate trailing rows
// — published as the next epoch of the key's series. The update runs on the
// library's O(n²·(k+n)) update path, not a refactorization; in-flight
// solves keep the epoch they pinned and the old entry is freed only when
// its references drain.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	rc, ok := s.admit(w, r, "update")
	if !ok {
		return
	}
	var req updateRequest
	if rc.binReq {
		// The append block is copied out of the frame during decode (it
		// outlives the request inside the published entry), so the pooled
		// buffer can be released as soon as decoding ends.
		body, aerr := readFrameBody(r)
		if aerr != nil {
			rc.fail(w, aerr)
			return
		}
		preq, aerr := decodeUpdateFrame(body, nil)
		wirefmt.PutBuffer(body)
		if aerr != nil {
			rc.fail(w, aerr)
			return
		}
		req = *preq
	} else if err := decodeJSON(r.Body, &req); err != nil {
		rc.fail(w, classifyError(err))
		return
	}
	if req.Key == "" {
		rc.fail(w, errBadInput("missing key"))
		return
	}
	if (req.Append != nil) == (req.RemoveRows != 0) {
		rc.fail(w, errBadInput("give append or remove_rows, exactly one"))
		return
	}
	if req.RemoveRows < 0 {
		rc.fail(w, errBadInput("remove_rows must be positive"))
		return
	}
	rc.key = req.Key
	ctx, cancel := s.requestContext(r, req.DeadlineMS)
	defer cancel()
	// Updates must run where the series lives: route to the base key's
	// owners when this node does not hold it.
	if s.maybeForwardUpdate(w, rc, ctx, &req) {
		return
	}
	// Updates are cold compute: degraded mode sheds them like any other
	// factorization work.
	if de := s.degradedReject(); de != nil {
		rc.fail(w, de)
		return
	}
	var v64 *tcqr.Matrix
	if req.Append != nil {
		var aerr *apiError
		if v64, aerr = s.resolveMatrix(req.Append); aerr != nil {
			rc.fail(w, aerr)
			return
		}
	}
	old, berr := s.cache.BeginUpdate(req.Key)
	if berr != nil {
		rc.fail(w, &apiError{status: http.StatusNotFound, code: "unknown_key",
			msg: fmt.Sprintf("no cached factorization for key %q (it may have been evicted; re-send the matrix)", req.Key)})
		return
	}
	// Shape checks against the pinned epoch, before any compute.
	if v64 != nil {
		if v64.Cols != old.A.Cols {
			s.cache.AbortUpdate(old)
			rc.fail(w, errBadInput(fmt.Sprintf("append block has %d columns; the factorization has %d", v64.Cols, old.A.Cols)))
			return
		}
		if n := int64(old.A.Rows+v64.Rows) * int64(old.A.Cols); n > int64(s.opts.MaxElements) {
			s.cache.AbortUpdate(old)
			rc.fail(w, &apiError{status: http.StatusRequestEntityTooLarge, code: "too_large",
				msg: fmt.Sprintf("updated matrix would have %d elements; the server caps matrices at %d", n, s.opts.MaxElements)})
			return
		}
	}
	var (
		v  *tcqr.Matrix32
		nf *tcqr.Factorization
	)
	if v64 != nil {
		v = tcqr.ToFloat32(v64)
	}
	uerr := s.retryDo(ctx, rc, "update", func(actx context.Context) error {
		var ierr error
		wait, perr := s.pool.Do(actx, func() {
			t0 := time.Now()
			// Failpoint: an injected error here aborts the update after the
			// epoch was pinned — the recovery path that must leave the
			// current epoch published and the series unlocked.
			ierr = faultinject.Fire(siteUpdateApply)
			if ierr == nil {
				if v != nil {
					nf, ierr = s.updater.UpdateAppendRows(old.F, v, old.Config)
				} else {
					nf, ierr = s.updater.UpdateRemoveRows(old.F, req.RemoveRows, old.Config)
				}
			}
			rc.rep.RecordTiming("update", time.Since(t0))
		})
		if perr != nil {
			return perr
		}
		rc.rep.RecordTiming("queue", wait)
		return ierr
	})
	if uerr != nil {
		s.cache.AbortUpdate(old)
		s.metrics.updateFailed.Inc()
		rc.fail(w, classifyError(uerr))
		return
	}
	// Rebuild the refinement matrix for the new epoch (solves need A at
	// full precision) and publish atomically.
	var na *tcqr.Matrix
	if v64 != nil {
		na = appendRows64(old.A, v64)
		s.metrics.updateApplied.With("append").Inc()
	} else {
		na = dropRows64(old.A, req.RemoveRows)
		s.metrics.updateApplied.With("downdate").Inc()
	}
	s.metrics.updateRows.Add(int64(absInt(na.Rows - old.A.Rows)))
	ne := s.cache.PublishUpdate(old, na, nf)
	defer s.cache.Release(ne)
	rc.key = ne.Key
	rc.rows, rc.cols = na.Rows, na.Cols
	rc.ok(w, updateResponse{
		Key:     ne.Key,
		BaseKey: baseKey(ne.Key),
		Epoch:   ne.Epoch,
		Rows:    na.Rows,
		Cols:    na.Cols,
		Hazards: rc.noteHazards(nf.Hazards),
	})
}

// appendRows64 stacks v under a (both tight or strided column-major).
func appendRows64(a, v *tcqr.Matrix) *tcqr.Matrix {
	out := tcqr.NewMatrix(a.Rows+v.Rows, a.Cols)
	for j := 0; j < a.Cols; j++ {
		col := out.Col(j)
		copy(col, a.Data[j*a.Stride:j*a.Stride+a.Rows])
		copy(col[a.Rows:], v.Data[j*v.Stride:j*v.Stride+v.Rows])
	}
	return out
}

// dropRows64 copies a without its trailing k rows.
func dropRows64(a *tcqr.Matrix, k int) *tcqr.Matrix {
	out := tcqr.NewMatrix(a.Rows-k, a.Cols)
	for j := 0; j < a.Cols; j++ {
		copy(out.Col(j), a.Data[j*a.Stride:j*a.Stride+out.Rows])
	}
	return out
}

func absInt(n int) int {
	if n < 0 {
		return -n
	}
	return n
}

func (s *Server) handleLowRank(w http.ResponseWriter, r *http.Request) {
	rc, ok := s.admit(w, r, "lowrank")
	if !ok {
		return
	}
	var req lowRankRequest
	if rc.binReq {
		body, aerr := readFrameBody(r)
		if aerr != nil {
			rc.fail(w, aerr)
			return
		}
		preq, aerr := decodeLowRankFrame(body, nil)
		wirefmt.PutBuffer(body)
		if aerr != nil {
			rc.fail(w, aerr)
			return
		}
		req = *preq
	} else if err := decodeJSON(r.Body, &req); err != nil {
		rc.fail(w, classifyError(err))
		return
	}
	a, aerr := s.resolveMatrix(req.Matrix)
	if aerr != nil {
		rc.fail(w, aerr)
		return
	}
	rc.rows, rc.cols = a.Rows, a.Cols
	cfg, err := s.reqConfig(req.Config)
	if err != nil {
		rc.fail(w, classifyError(err))
		return
	}
	ctx, cancel := s.requestContext(r, req.DeadlineMS)
	defer cancel()
	// Low-rank results are never cached, so degraded mode has nothing to
	// serve here: the whole pipeline is suspended until the cooldown ends.
	if de := s.degradedReject(); de != nil {
		rc.fail(w, de)
		return
	}
	var (
		res  *tcqr.LowRankApprox
		lerr error
	)
	err = s.retryDo(ctx, rc, "solve", func(actx context.Context) error {
		wait, perr := s.pool.Do(actx, func() {
			t0 := time.Now()
			res, lerr = s.backend.LowRank(tcqr.ToFloat32(a), req.Rank, cfg)
			rc.rep.RecordTiming("solve", time.Since(t0))
		})
		if perr != nil {
			return perr
		}
		rc.rep.RecordTiming("queue", wait)
		return lerr
	})
	if err != nil {
		rc.fail(w, classifyError(err))
		return
	}
	sing := make([]float64, len(res.S))
	for i, v := range res.S {
		sing[i] = float64(v)
	}
	rc.ok(w, lowRankResponse{
		U:       fromMatrix(res.U),
		S:       sing,
		V:       fromMatrix(res.V),
		Rank:    res.Rank,
		Hazards: rc.noteHazards(res.Hazards),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	// Degraded is still 200: the process is alive and serving cache hits, so
	// load balancers must not eject it — clients discover the restriction
	// through per-request 503s with Retry-After.
	if _, deg := s.brk.degraded(); deg {
		fmt.Fprintln(w, `{"status":"degraded"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// statzTiming is the aggregated view of one pipeline stage.
type statzTiming struct {
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	AvgMS   float64 `json:"avg_ms"`
	MaxMS   float64 `json:"max_ms"`
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	P99MS   float64 `json:"p99_ms"`
}

// statzResponse is the body of GET /statz.
type statzResponse struct {
	UptimeSeconds float64                `json:"uptime_seconds"`
	Draining      bool                   `json:"draining"`
	Degraded      bool                   `json:"degraded"`
	Requests      map[string]int64       `json:"requests"`
	Errors        map[string]int64       `json:"errors"`
	Cache         CacheStats             `json:"cache"`
	Coalescer     CoalescerStats         `json:"coalescer"`
	Pool          PoolStats              `json:"pool"`
	Timing        map[string]statzTiming `json:"timing"`
	Hazards       map[string]int64       `json:"hazards"`
}

// handleStatz renders the JSON stats view. Since the metrics registry became
// the single source of truth, this is a thin projection of registry
// snapshots — every map is a private copy, so encoding can never interleave
// with writers.
func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	_, degraded := s.brk.degraded()
	resp := statzResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.draining.Load(),
		Degraded:      degraded,
		Requests:      s.metrics.requests.Snapshot(),
		Errors:        s.metrics.errors.Snapshot(),
		Hazards:       s.metrics.hazards.Snapshot(),
		Timing:        make(map[string]statzTiming),
	}
	for stage, h := range s.metrics.stageSeconds.Series() {
		n := h.Count()
		if n == 0 {
			continue
		}
		sum := h.Sum()
		resp.Timing[stage] = statzTiming{
			Count:   n,
			TotalMS: sum * 1e3,
			AvgMS:   sum / float64(n) * 1e3,
			MaxMS:   h.Max() * 1e3,
			P50MS:   h.Quantile(0.50) * 1e3,
			P95MS:   h.Quantile(0.95) * 1e3,
			P99MS:   h.Quantile(0.99) * 1e3,
		}
	}
	resp.Cache = s.cache.Stats()
	resp.Coalescer = s.coal.Stats()
	resp.Pool = s.pool.Stats()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// takeRepEvents drains the request report's hazard events (the transient
// failures the retry layer recorded) at most once per request, so the ok
// path (via noteHazards) and the fail path cannot double-count them.
func (rc *reqScope) takeRepEvents() []tcqr.Hazard {
	if rc.repCounted {
		return nil
	}
	rc.repCounted = true
	return rc.rep.Events()
}

// noteHazards serializes the request's report events (retried transient
// failures, in the order they happened) followed by the result's hazard
// list, folding all of them into the per-kind hazard and per-action
// recovery counters.
func (rc *reqScope) noteHazards(hs []tcqr.Hazard) []WireHazard {
	ws := wireHazards(append(rc.takeRepEvents(), hs...))
	for _, h := range ws {
		rc.s.metrics.noteHazard(h)
		rc.hazardKinds = append(rc.hazardKinds, normalizeHazardKind(h.Kind))
	}
	return ws
}

// ok encodes v (timed as the encode stage) in the negotiated encoding and
// finishes the response.
func (rc *reqScope) ok(w http.ResponseWriter, v any) {
	t0 := time.Now()
	// Failpoint: an injected encode failure takes the same 500 path as a
	// real serialization error. It is not retried — the compute already
	// succeeded, and replaying it for an encode fault would double-count
	// work — but it does feed the degradation breaker. Both encodings pass
	// through it.
	if err := faultinject.Fire(siteWireEncode); err != nil {
		rc.fail(w, classifyError(err))
		return
	}
	if rc.frameResp {
		rc.okFrame(w, v, t0)
		return
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(v); err != nil {
		rc.fail(w, &apiError{status: http.StatusInternalServerError, code: "internal", msg: err.Error()})
		return
	}
	rc.rep.RecordTiming("encode", time.Since(t0))
	rc.s.metrics.hotWireRespJSON.Inc()
	rc.s.brk.recordSuccess()
	rc.finish(w, http.StatusOK, buf.Bytes())
}

// okFrame writes v as a binary frame into a pooled buffer: JSON metadata
// section plus zero-parse float sections for the bulk payloads.
func (rc *reqScope) okFrame(w http.ResponseWriter, v any, t0 time.Time) {
	meta, bulk, err := frameSections(v)
	if err != nil {
		rc.fail(w, &apiError{status: http.StatusInternalServerError, code: "internal", msg: err.Error()})
		return
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		rc.fail(w, &apiError{status: http.StatusInternalServerError, code: "internal", msg: err.Error()})
		return
	}
	secs := append([]wirefmt.Section{wirefmt.JSONSection(metaJSON)}, bulk...)
	n, err := wirefmt.FrameLen(secs...)
	if err != nil {
		rc.fail(w, &apiError{status: http.StatusInternalServerError, code: "internal", msg: err.Error()})
		return
	}
	buf := wirefmt.GetBuffer(n)
	out, err := wirefmt.AppendFrame(buf, secs...)
	if err != nil {
		wirefmt.PutBuffer(buf)
		rc.fail(w, &apiError{status: http.StatusInternalServerError, code: "internal", msg: err.Error()})
		return
	}
	rc.rep.RecordTiming("encode", time.Since(t0))
	rc.s.metrics.hotWireRespBinary.Inc()
	rc.s.brk.recordSuccess()
	rc.respCT = wirefmt.ContentType
	rc.finish(w, http.StatusOK, out)
	wirefmt.PutBuffer(out)
}

// fail encodes the uniform error envelope for e and finishes the response.
// Internal (500-class) failures feed the degradation breaker; transient
// events the retry layer recorded on the way down ride in the envelope so a
// failed request still shows what was attempted.
func (rc *reqScope) fail(w http.ResponseWriter, e *apiError) {
	rc.errCode = e.code
	rc.s.metrics.errors.With(e.code).Inc()
	hz := e.hazards
	if reps := wireHazards(rc.takeRepEvents()); len(reps) > 0 {
		for _, h := range reps {
			rc.s.metrics.noteHazard(h)
			rc.hazardKinds = append(rc.hazardKinds, normalizeHazardKind(h.Kind))
		}
		hz = append(reps, e.hazards...)
	}
	if e.status == http.StatusInternalServerError && rc.s.brk.recordFailure() {
		if rc.s.log != nil {
			rc.s.log.Warn("entering degraded mode",
				slog.String("trigger_code", e.code),
				slog.Duration("cooldown", rc.s.opts.DegradeCooldown))
		}
	}
	body, _ := json.Marshal(errorBody{Error: errorDetail{Code: e.code, Message: e.msg, Hazards: hz}})
	if e.status == http.StatusTooManyRequests || e.status == http.StatusServiceUnavailable {
		ra := "1"
		if e.retryAfter > 0 {
			ra = strconv.Itoa(e.retryAfter)
		}
		w.Header().Set("Retry-After", ra)
	}
	rc.finish(w, e.status, append(body, '\n'))
}

// finish folds the request's stage timings into the latency histograms,
// emits the Server-Timing header, writes the response, and logs the request.
func (rc *reqScope) finish(w http.ResponseWriter, status int, body []byte) {
	timings := rc.rep.Timings()
	rc.s.metrics.observeStages(timings)
	rc.s.metrics.responses.With(strconv.Itoa(status)).Inc()
	ct := rc.respCT
	if ct == "" {
		ct = "application/json"
	}
	w.Header().Set("Content-Type", ct)
	st := serverTimingHeader(timings)
	if st != "" {
		w.Header().Set("Server-Timing", st)
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
	rc.logRequest(status, st)
}

// logRequest emits one structured record for the finished request: Info for
// successes, Warn for client errors, Error for server errors. Identifiers
// the handler never learned (key, shape) are omitted.
func (rc *reqScope) logRequest(status int, stages string) {
	lg := rc.s.log
	if lg == nil {
		return
	}
	level := slog.LevelInfo
	switch {
	case status >= 500:
		level = slog.LevelError
	case status >= 400:
		level = slog.LevelWarn
	}
	ctx := context.Background()
	if !lg.Enabled(ctx, level) {
		return
	}
	attrs := []slog.Attr{
		slog.String("endpoint", rc.endpoint),
		slog.String("method", rc.method),
		slog.Int("status", status),
		slog.Duration("duration", time.Since(rc.start)),
	}
	if rc.errCode != "" {
		attrs = append(attrs, slog.String("code", rc.errCode))
	}
	if rc.key != "" {
		attrs = append(attrs, slog.String("key", rc.key))
	}
	if rc.rows > 0 {
		attrs = append(attrs, slog.Int("rows", rc.rows), slog.Int("cols", rc.cols))
	}
	if rc.batched > 0 {
		attrs = append(attrs, slog.Int("batched", rc.batched))
	}
	if stages != "" {
		attrs = append(attrs, slog.String("stages", stages))
	}
	if len(rc.hazardKinds) > 0 {
		attrs = append(attrs, slog.String("hazards", strings.Join(rc.hazardKinds, ",")))
	}
	lg.LogAttrs(ctx, level, "request", attrs...)
}

// serverTimingHeader renders the stage breakdown in the standard
// Server-Timing format, one metric per stage (durations summed if a stage
// was recorded twice), in the canonical queue/factorize/solve/encode order.
func serverTimingHeader(timings []hazard.Timing) string {
	if len(timings) == 0 {
		return ""
	}
	sums := make(map[string]time.Duration)
	var order []string
	for _, t := range timings {
		if _, seen := sums[t.Stage]; !seen {
			order = append(order, t.Stage)
		}
		sums[t.Stage] += t.D
	}
	sort.SliceStable(order, func(i, j int) bool { return stageRank(order[i]) < stageRank(order[j]) })
	var sb strings.Builder
	for i, stage := range order {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s;dur=%.3f", stage, float64(sums[stage].Nanoseconds())/1e6)
	}
	return sb.String()
}

func stageRank(stage string) int {
	switch stage {
	case "queue":
		return 0
	case "factorize":
		return 1
	case "solve":
		return 2
	case "encode":
		return 3
	}
	return 4
}
