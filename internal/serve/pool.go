package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"tcqr/internal/faultinject"
)

// Typed admission-control errors. The wire layer maps them to HTTP
// backpressure statuses (429, 503, 504).
var (
	// ErrQueueFull: the bounded queue is at capacity; the client should
	// back off and retry.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrDraining: the server is shutting down and admits no new work.
	ErrDraining = errors.New("serve: draining")
	// ErrDeadline: the request's deadline expired before its work started
	// (work already running is never abandoned mid-GEMM).
	ErrDeadline = errors.New("serve: deadline exceeded before work started")
)

// PoolStats is a snapshot of the worker pool counters.
type PoolStats struct {
	Workers          int   `json:"workers"`
	QueueCapacity    int   `json:"queue_capacity"`
	Queued           int64 `json:"queued"`
	InFlight         int64 `json:"in_flight"`
	Completed        int64 `json:"completed"`
	RejectedFull     int64 `json:"rejected_queue_full"`
	RejectedDraining int64 `json:"rejected_draining"`
	Expired          int64 `json:"expired_in_queue"`
}

// Pool is a bounded worker pool with admission control: a fixed number of
// workers drain a fixed-depth queue, submissions past the depth are
// rejected immediately with ErrQueueFull, and tasks whose context expires
// while still queued are skipped (ErrDeadline) rather than run late. This
// is the only place compute concurrency is created, so GOMAXPROCS-heavy
// GEMM work cannot be oversubscribed by accepting unbounded requests.
type Pool struct {
	tasks    chan *poolTask
	workers  int
	draining atomic.Bool

	queued    atomic.Int64
	inFlight  atomic.Int64
	completed atomic.Int64
	rejFull   atomic.Int64
	rejDrain  atomic.Int64
	expired   atomic.Int64
}

type poolTask struct {
	fn        func()
	enqueued  time.Time
	wait      time.Duration // queue wait, written by the worker before fn
	cancelled atomic.Bool
	done      chan struct{} // closed after fn returns (or the task is skipped)
	skipped   bool
	panicErr  error // set by the worker when fn panicked; surfaced by Do
}

// NewPool starts workers goroutines draining a queue of depth queueDepth.
func NewPool(workers, queueDepth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	p := &Pool{tasks: make(chan *poolTask, queueDepth), workers: workers}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for t := range p.tasks {
		p.runOne(t)
	}
}

// runOne owns one dequeued task from accounting to completion. The counter
// transition — inFlight rises before queued falls, so AwaitIdle can never
// observe queued==0 && inFlight==0 while a dequeued task is about to run —
// happens first, as two bare atomic adds with nothing between them that
// could panic. Everything after it runs under a deferred recovery that
// restores the counters, closes t.done, and keeps the worker goroutine
// alive no matter what unwinds — a panicking task fn or a fault injected at
// the dequeue site. There is therefore no instant at which a dequeued task
// is counted in neither gauge, and no panic between dequeue and completion
// can strand the submitter or make AwaitIdle lie (hardening_test.go drives
// the window via the serve.pool.dequeue failpoint).
func (p *Pool) runOne(t *poolTask) {
	p.inFlight.Add(1)
	p.queued.Add(-1)
	defer func() {
		if r := recover(); r != nil && t.panicErr == nil {
			t.panicErr = fmt.Errorf("serve: panic in pool task: %v", r)
		}
		if t.skipped {
			p.expired.Add(1)
		} else {
			p.completed.Add(1)
		}
		p.inFlight.Add(-1)
		close(t.done)
	}()
	if err := faultinject.Fire(sitePoolDequeue); err != nil {
		t.panicErr = err
		return
	}
	if t.cancelled.Load() {
		t.skipped = true
		return
	}
	t.wait = time.Since(t.enqueued)
	t.fn()
}

// Do submits fn and blocks until it has run, the queue rejects it, or ctx
// expires while it is still queued. It returns the time fn spent waiting in
// the queue. If fn panics, the panic is recovered and returned as the error
// (the worker survives). After a queue-full or draining rejection fn is
// never run; after a ctx-expiry ErrDeadline, however, a worker that
// dequeued the task in the same instant may still run fn to completion —
// its result is discarded, so fn must not assume it never runs once Do has
// returned an error.
func (p *Pool) Do(ctx context.Context, fn func()) (time.Duration, error) {
	if p.draining.Load() {
		p.rejDrain.Add(1)
		return 0, ErrDraining
	}
	if err := ctx.Err(); err != nil {
		return 0, ErrDeadline
	}
	if err := faultinject.Fire(sitePoolEnqueue); err != nil {
		return 0, err
	}
	t := &poolTask{fn: fn, enqueued: time.Now(), done: make(chan struct{})}
	p.queued.Add(1)
	select {
	case p.tasks <- t:
	default:
		p.queued.Add(-1)
		p.rejFull.Add(1)
		return 0, ErrQueueFull
	}
	select {
	case <-t.done:
		if t.skipped {
			return 0, ErrDeadline
		}
		if t.panicErr != nil {
			return 0, t.panicErr
		}
		return t.wait, nil
	case <-ctx.Done():
		// Mark the task dead; if a worker picked it up in this instant the
		// work completes anyway and we still report the deadline — the
		// client has gone.
		t.cancelled.Store(true)
		return 0, ErrDeadline
	}
}

// BeginDrain stops admitting new work. Idempotent.
func (p *Pool) BeginDrain() { p.draining.Store(true) }

// Draining reports whether the pool has begun draining.
func (p *Pool) Draining() bool { return p.draining.Load() }

// AwaitIdle blocks until the queue is empty and no task is running, or ctx
// expires. Call BeginDrain first so the queue can only shrink.
func (p *Pool) AwaitIdle(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if p.queued.Load() == 0 && p.inFlight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:          p.workers,
		QueueCapacity:    cap(p.tasks),
		Queued:           p.queued.Load(),
		InFlight:         p.inFlight.Load(),
		Completed:        p.completed.Load(),
		RejectedFull:     p.rejFull.Load(),
		RejectedDraining: p.rejDrain.Load(),
		Expired:          p.expired.Load(),
	}
}
