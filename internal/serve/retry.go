package serve

import (
	"context"
	"net/http"
	"time"
)

// RetryPolicy bounds how the server retries transient internal failures —
// recovered compute panics and injected faults — before surfacing a 500.
// Zero values select the defaults in brackets. The policy never retries
// client-class failures (bad input, unknown keys, numerical hazards under
// the fail policy) or backpressure rejections (queue full, draining,
// deadline): retrying those either cannot help or amplifies load.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first [3].
	// 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry [5ms].
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff [250ms].
	MaxDelay time.Duration
	// Multiplier grows the delay between retries [2.0].
	Multiplier float64
	// Jitter is the fraction of each delay randomized away, in [0, 1) [0.2]:
	// the actual sleep is delay * (1 - Jitter*u) for uniform u in [0, 1), so
	// synchronized failures do not retry in lockstep. Negative disables
	// jitter explicitly (used by determinism-sensitive tests).
	Jitter float64
}

// withDefaults fills zero fields with the production defaults.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	} else if p.Jitter < 0 {
		p.Jitter = 0
	} else if p.Jitter >= 1 {
		p.Jitter = 0.99
	}
	return p
}

// backoff returns the sleep before retry number retry (1-based), before
// jitter: BaseDelay * Multiplier^(retry-1), capped at MaxDelay. The policy
// must already have defaults filled.
func (p RetryPolicy) backoff(retry int) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			return p.MaxDelay
		}
	}
	if d > float64(p.MaxDelay) {
		return p.MaxDelay
	}
	return time.Duration(d)
}

// errStageTimeout reports an attempt that exceeded the per-stage bound
// while its request still had deadline budget. It classifies as a 500-class
// internal failure, which makes it retryable: the next attempt gets a fresh
// stage window. Shared and immutable — fail only reads apiError fields.
var errStageTimeout = &apiError{
	status: http.StatusInternalServerError, code: "stage_timeout",
	msg: "serve: compute attempt exceeded the per-stage timeout",
}

// retryable reports whether err is a transient internal failure worth
// retrying. The classification rides on the wire mapping: exactly the
// errors that would surface as 500 internal — recovered panics, injected
// faults — are retryable. Everything with a more specific status (4xx
// client errors, 422 hazards, 429/503/504 backpressure) is terminal.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	return classifyError(err).status == http.StatusInternalServerError
}

// retrier executes functions under a RetryPolicy. The clock and RNG are
// injectable so tests and the fuzz target can drive arbitrary schedules
// deterministically without sleeping.
type retrier struct {
	policy RetryPolicy
	// sleep waits for d or until ctx is done, returning ctx.Err() in the
	// latter case. nil selects the real clock.
	sleep func(ctx context.Context, d time.Duration) error
	// rand returns a uniform draw in [0, 1) for jitter. nil selects a
	// cheap deterministic per-retrier stream.
	rand func() float64
	// onRetry, when set, observes every retry decision: the attempt number
	// just failed (1-based), the error, and the backoff about to be slept.
	onRetry func(attempt int, err error, backoff time.Duration)

	rngState uint64
}

func newRetrier(p RetryPolicy) *retrier {
	return &retrier{policy: p.withDefaults(), rngState: uint64(time.Now().UnixNano())}
}

func realSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (r *retrier) draw() float64 {
	if r.rand != nil {
		return r.rand()
	}
	// splitmix64, private to this retrier: jitter needs no global state.
	r.rngState += 0x9E3779B97F4A7C15
	z := r.rngState
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(uint64(1)<<53)
}

// do runs fn up to MaxAttempts times, sleeping an exponentially growing,
// jittered backoff between attempts. Non-retryable errors return
// immediately. The backoff respects ctx: if the deadline would expire
// during (or before) the sleep, do stops and returns the last error — the
// injected latency of retrying never pushes a request past its deadline.
func (r *retrier) do(ctx context.Context, fn func() error) error {
	p := r.policy
	sleep := r.sleep
	if sleep == nil {
		sleep = realSleep
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil || !retryable(err) || attempt >= p.MaxAttempts {
			return err
		}
		d := p.backoff(attempt)
		if p.Jitter > 0 {
			d = time.Duration(float64(d) * (1 - p.Jitter*r.draw()))
		}
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= d {
			// Not enough budget left to back off and try again.
			return err
		}
		if r.onRetry != nil {
			r.onRetry(attempt, err, d)
		}
		if serr := sleep(ctx, d); serr != nil {
			return err
		}
	}
}

