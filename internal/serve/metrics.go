package serve

import (
	"time"

	"tcqr"
	"tcqr/internal/faultinject"
	"tcqr/internal/hazard"
	"tcqr/internal/metrics"
	"tcqr/internal/tcsim"
)

// serverMetrics owns every metric family the daemon exposes on /metrics.
// All families live in one Registry so the Prometheus text endpoint, the
// /statz JSON view, and the structured request logs draw from a single
// source of truth.
//
// Naming scheme (see DESIGN.md §10): everything is prefixed tcqrd_, counters
// end in _total, durations are histograms in seconds named *_seconds.
// Label sets are bounded by construction — endpoints, status codes, error
// codes, hazard kinds, ladder actions, engine kinds, and flops buckets are
// all finite vocabularies, and the registry's per-vec series cap collapses
// anything hostile into the "_other" series.
type serverMetrics struct {
	reg *metrics.Registry

	requests  *metrics.CounterVec // by endpoint
	responses *metrics.CounterVec // by HTTP status
	errors    *metrics.CounterVec // by wire error code

	wireRequests  *metrics.CounterVec // by endpoint and encoding
	wireResponses *metrics.CounterVec // by encoding

	// hot holds per-endpoint pre-resolved counters for the request fast
	// path: CounterVec.With takes a read lock per call, which is measurable
	// contention at the 64-client target, so admit() resolves the series
	// once at construction and bumps plain atomic counters per request.
	hot               map[string]hotCounters
	hotWireRespJSON   *metrics.Counter
	hotWireRespBinary *metrics.Counter

	stageSeconds *metrics.HistogramVec // queue/factorize/solve/encode
	batchSize    *metrics.Histogram    // coalesced batch sizes

	// TSQR pipeline instrumentation: per-stage wall time of every parallel
	// factorization actually performed (cache misses only), plus its leaf
	// block count — the shape signal that says whether routing thresholds
	// match real traffic.
	tsqrStageSeconds *metrics.HistogramVec // block_factor/tree_reduce/q_recover
	tsqrFactorize    *metrics.Counter
	tsqrBlocks       *metrics.Histogram

	// Chunked-upload session lifecycle counters. begun = committed + aborted
	// + reaped + currently-open is the leak invariant the hardening and chaos
	// tests check.
	streamBegun     *metrics.Counter
	streamCommitted *metrics.Counter
	streamAborted   *metrics.Counter
	streamReaped    *metrics.Counter
	streamAppends   *metrics.Counter

	// Update endpoint counters: epochs applied by operation, aborted
	// updates, and the net row churn (|Δrows| summed over updates).
	updateApplied *metrics.CounterVec // by op: append/downdate
	updateFailed  *metrics.Counter
	updateRows    *metrics.Counter

	hazards    *metrics.CounterVec // by hazard kind
	recoveries *metrics.CounterVec // by fallback-ladder action
	panels     *metrics.CounterVec // by requested panel algorithm

	gemmCalls *metrics.CounterVec // by engine kind and flops bucket
	gemmFlops *metrics.CounterVec // by engine kind

	faultInjected  *metrics.CounterVec // by failpoint site and action
	retryAttempts  *metrics.CounterVec // by endpoint
	retryExhausted *metrics.CounterVec // by endpoint
	retryBackoff   *metrics.Histogram  // backoff slept before each retry

	unobserve      func() // detaches the engine GEMM observer
	unobserveFault func() // detaches the fault-injection observer
}

// hotCounters is one endpoint's pre-resolved fast-path counter series.
type hotCounters struct {
	requests   *metrics.Counter // tcqrd_requests_total{endpoint}
	wireJSON   *metrics.Counter // tcqrd_wire_requests_total{endpoint,json}
	wireBinary *metrics.Counter // tcqrd_wire_requests_total{endpoint,binary}
}

// newServerMetrics registers the daemon's families in reg and wires the
// stats-snapshot families (pool, cache, coalescer, uptime) as live gauge
// functions over s, so a scrape always reads current values without a
// second bookkeeping path.
func newServerMetrics(reg *metrics.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{
		reg: reg,
		requests: reg.CounterVec("tcqrd_requests_total",
			"Requests received, by API endpoint.", "endpoint"),
		responses: reg.CounterVec("tcqrd_responses_total",
			"Responses written, by HTTP status code.", "status"),
		errors: reg.CounterVec("tcqrd_errors_total",
			"Failed requests, by wire error code.", "code"),
		stageSeconds: reg.HistogramVec("tcqrd_stage_duration_seconds",
			"Per-request pipeline stage latency.", metrics.LatencyBuckets, "stage"),
		batchSize: reg.Histogram("tcqrd_coalescer_batch_size",
			"Solve requests per coalesced flush.", metrics.SizeBuckets),
		hazards: reg.CounterVec("tcqrd_hazards_total",
			"Numerical hazards detected, by kind.", "kind"),
		recoveries: reg.CounterVec("tcqrd_hazard_recoveries_total",
			"Fallback-ladder recoveries applied, by action.", "action"),
		panels: reg.CounterVec("tcqrd_factorize_panel_total",
			"Factorizations started, by panel algorithm.", "panel"),
		gemmCalls: reg.CounterVec("tcqrd_engine_gemm_calls_total",
			"Engine GEMM calls, by engine kind and flops bucket.", "engine", "flops_bucket"),
		gemmFlops: reg.CounterVec("tcqrd_engine_gemm_flops_total",
			"Engine GEMM floating-point operations, by engine kind.", "engine"),
		faultInjected: reg.CounterVec("tcqrd_fault_injected_total",
			"Faults injected by the failpoint registry, by site and action.", "site", "action"),
		retryAttempts: reg.CounterVec("tcqrd_retry_attempts_total",
			"Retries of transient internal failures, by endpoint.", "endpoint"),
		retryExhausted: reg.CounterVec("tcqrd_retry_exhausted_total",
			"Requests whose transient failure survived every retry, by endpoint.", "endpoint"),
		retryBackoff: reg.Histogram("tcqrd_retry_backoff_seconds",
			"Backoff slept before each retry of a transient failure.", metrics.LatencyBuckets),
		wireRequests: reg.CounterVec("tcqrd_wire_requests_total",
			"Requests received, by API endpoint and wire encoding.", "endpoint", "encoding"),
		wireResponses: reg.CounterVec("tcqrd_wire_responses_total",
			"Successful responses written, by wire encoding.", "encoding"),
		tsqrStageSeconds: reg.HistogramVec("tcqrd_tsqr_stage_seconds",
			"Parallel TSQR pipeline stage wall time per factorization.", metrics.LatencyBuckets, "stage"),
		tsqrFactorize: reg.Counter("tcqrd_tsqr_factorize_total",
			"Factorizations computed through the parallel TSQR pipeline."),
		tsqrBlocks: reg.Histogram("tcqrd_tsqr_blocks",
			"Leaf row-block count of each TSQR factorization.", metrics.SizeBuckets),
		streamBegun: reg.Counter("tcqrd_stream_begun_total",
			"Chunked-upload sessions opened."),
		streamCommitted: reg.Counter("tcqrd_stream_committed_total",
			"Chunked-upload sessions consumed by a commit (successful or not)."),
		streamAborted: reg.Counter("tcqrd_stream_aborted_total",
			"Chunked-upload sessions aborted by the client."),
		streamReaped: reg.Counter("tcqrd_stream_reaped_total",
			"Chunked-upload sessions reaped on expiry or drain."),
		streamAppends: reg.Counter("tcqrd_stream_appends_total",
			"Row blocks accepted into chunked-upload sessions."),
		updateApplied: reg.CounterVec("tcqrd_update_applied_total",
			"Incremental factorization updates published, by operation.", "op"),
		updateFailed: reg.Counter("tcqrd_update_failed_total",
			"Updates aborted by compute errors (the prior epoch stayed published)."),
		updateRows: reg.Counter("tcqrd_update_rows_total",
			"Rows appended or removed across all published updates."),
	}
	m.hot = make(map[string]hotCounters, 8)
	for _, ep := range []string{"factorize", "solve", "update", "lowrank",
		"stream_begin", "stream_append", "stream_commit", "stream_abort"} {
		m.hot[ep] = hotCounters{
			requests:   m.requests.With(ep),
			wireJSON:   m.wireRequests.With(ep, encJSON),
			wireBinary: m.wireRequests.With(ep, encBinary),
		}
	}
	m.hotWireRespJSON = m.wireResponses.With(encJSON)
	m.hotWireRespBinary = m.wireResponses.With(encBinary)

	reg.GaugeFunc("tcqrd_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("tcqrd_draining",
		"1 while the server is draining, 0 otherwise.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("tcqrd_degraded",
		"1 while the server is in degraded (cache-only) mode, 0 otherwise.",
		func() float64 {
			if _, deg := s.brk.degraded(); deg {
				return 1
			}
			return 0
		})
	reg.CounterFunc("tcqrd_degraded_entered_total",
		"Times the degradation breaker tripped into cache-only serving.",
		func() int64 { return s.brk.entered.Load() })
	reg.CounterFunc("tcqrd_degraded_rejected_total",
		"Cold compute requests rejected with 503 while degraded.",
		func() int64 { return s.brk.rejected.Load() })

	reg.GaugeFunc("tcqrd_stream_sessions",
		"Chunked-upload sessions currently open.",
		func() float64 { return float64(s.streams.len()) })

	reg.GaugeFunc("tcqrd_pool_queue_depth",
		"Tasks waiting in the admission queue.",
		func() float64 { return float64(s.pool.Stats().Queued) })
	reg.GaugeFunc("tcqrd_pool_in_flight",
		"Tasks currently running on workers.",
		func() float64 { return float64(s.pool.Stats().InFlight) })
	reg.CounterFunc("tcqrd_pool_completed_total",
		"Tasks completed by the worker pool.",
		func() int64 { return s.pool.Stats().Completed })
	reg.CounterFunc("tcqrd_pool_rejected_queue_full_total",
		"Submissions rejected because the queue was full (HTTP 429).",
		func() int64 { return s.pool.Stats().RejectedFull })
	reg.CounterFunc("tcqrd_pool_rejected_draining_total",
		"Submissions rejected because the server was draining (HTTP 503).",
		func() int64 { return s.pool.Stats().RejectedDraining })
	reg.CounterFunc("tcqrd_pool_expired_in_queue_total",
		"Queued tasks whose deadline expired before a worker picked them up (HTTP 504).",
		func() int64 { return s.pool.Stats().Expired })

	reg.GaugeFunc("tcqrd_cache_entries",
		"Factorizations resident in the cache.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	reg.GaugeFunc("tcqrd_cache_bytes",
		"Estimated bytes resident in the factorization cache.",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	reg.CounterFunc("tcqrd_cache_hits_total",
		"Factorization cache hits.",
		func() int64 { return s.cache.Stats().Hits })
	reg.CounterFunc("tcqrd_cache_misses_total",
		"Factorization cache misses (each one factored a matrix).",
		func() int64 { return s.cache.Stats().Misses })
	reg.CounterFunc("tcqrd_cache_evictions_total",
		"Factorizations evicted by the LRU bound.",
		func() int64 { return s.cache.Stats().Evictions })
	reg.CounterFunc("tcqrd_cache_singleflight_shared_total",
		"Requests that piggybacked on another request's in-flight factorization.",
		func() int64 { return s.cache.Stats().SingleflightShared })
	reg.CounterFunc("tcqrd_update_epochs_total",
		"Epochs published through /v1/update.",
		func() int64 { return s.cache.Stats().Updates })
	reg.CounterFunc("tcqrd_update_retired_total",
		"Entries retired because a newer epoch superseded them.",
		func() int64 { return s.cache.Stats().Retired })
	reg.GaugeFunc("tcqrd_update_retired_live",
		"Retired or evicted entries still pinned by in-flight requests.",
		func() float64 { return float64(s.cache.Stats().RetiredLive) })
	reg.CounterFunc("tcqrd_cache_rewarmed_total",
		"Entries adopted from the disk spill tier at startup.",
		func() int64 { return s.cache.Stats().Rewarmed })

	// The spill families render zeros without a -cache-dir, keeping the
	// scrape shape stable across configurations.
	spillStats := func() SpillStats {
		if s.spill == nil {
			return SpillStats{}
		}
		return s.spill.Stats()
	}
	reg.CounterFunc("tcqrd_spill_writes_total",
		"Factorization entries durably spilled to the disk tier.",
		func() int64 { return spillStats().Writes })
	reg.CounterFunc("tcqrd_spill_write_errors_total",
		"Failed spill writes (the entry stayed cache-only).",
		func() int64 { return spillStats().WriteErrors })
	reg.CounterFunc("tcqrd_spill_dropped_total",
		"Spill operations shed because the write-behind queue was full.",
		func() int64 { return spillStats().Dropped })
	reg.CounterFunc("tcqrd_spill_removes_total",
		"Spill files deleted because their entry was evicted or retired.",
		func() int64 { return spillStats().Removes })
	reg.CounterFunc("tcqrd_spill_evictions_total",
		"Spill files deleted to stay under the on-disk byte budget.",
		func() int64 { return spillStats().Evictions })
	reg.CounterFunc("tcqrd_spill_loads_total",
		"Spill files read during restart rewarm.",
		func() int64 { return spillStats().Loads })
	reg.CounterFunc("tcqrd_spill_load_errors_total",
		"Spill files that failed to load during rewarm.",
		func() int64 { return spillStats().LoadErrors })
	reg.CounterFunc("tcqrd_spill_quarantined_total",
		"Corrupt spill files set aside as .quarantine during rewarm.",
		func() int64 { return spillStats().Quarantined })
	reg.GaugeFunc("tcqrd_spill_files",
		"Files currently in the disk spill tier.",
		func() float64 { return float64(spillStats().Files) })
	reg.GaugeFunc("tcqrd_spill_bytes",
		"Bytes currently in the disk spill tier.",
		func() float64 { return float64(spillStats().BytesOnDisk) })

	reg.CounterFunc("tcqrd_coalescer_batches_total",
		"Coalesced batch flushes (each issues one backend call).",
		func() int64 { return s.coal.Stats().Batches })
	reg.CounterFunc("tcqrd_coalescer_batched_requests_total",
		"Solve requests that rode in batches of size > 1.",
		func() int64 { return s.coal.Stats().BatchedRequests })
	reg.CounterFunc("tcqrd_coalescer_multi_solve_total",
		"Batch flushes executed as one multi-RHS solve.",
		func() int64 { return s.coal.Stats().MultiSolveCalls })
	reg.CounterFunc("tcqrd_coalescer_single_solve_total",
		"Batch flushes executed as a plain single solve.",
		func() int64 { return s.coal.Stats().SingleSolveCalls })

	m.unobserve = tcsim.RegisterGemmObserver(func(engine string, mm, nn, kk int) {
		flops := 2 * int64(mm) * int64(nn) * int64(kk)
		lbl := engineLabel(engine)
		m.gemmCalls.With(lbl, flopsBucket(flops)).Inc()
		m.gemmFlops.With(lbl).Add(flops)
	})
	// Site and action are both code-defined vocabularies (fault specs only
	// arm sites that exist in source), so the label set stays bounded.
	m.unobserveFault = faultinject.RegisterObserver(func(ev faultinject.Event) {
		m.faultInjected.With(ev.Site, ev.Action.String()).Inc()
	})
	return m
}

// close detaches the engine and fault observers so a retired Server stops
// accumulating process-global traffic.
func (m *serverMetrics) close() {
	if m.unobserve != nil {
		m.unobserve()
		m.unobserve = nil
	}
	if m.unobserveFault != nil {
		m.unobserveFault()
		m.unobserveFault = nil
	}
}

// observeStages folds a request's stage timings into the latency histograms,
// one observation per stage (repeated stages summed, mirroring the
// Server-Timing header).
func (m *serverMetrics) observeStages(timings []hazard.Timing) {
	if len(timings) == 0 {
		return
	}
	sums := make(map[string]time.Duration, 4)
	for _, t := range timings {
		sums[t.Stage] += t.D
	}
	for stage, d := range sums {
		m.stageSeconds.With(stage).ObserveDuration(d)
	}
}

// observeTSQR folds one parallel factorization's stage timings into the
// tcqrd_tsqr_* families: the block-factor stage is the sum of per-block wall
// times (total compute spent in leaves, comparable across worker counts),
// tree_reduce and q_recover are single wall measurements.
func (m *serverMetrics) observeTSQR(info *tcqr.TSQRInfo) {
	m.tsqrFactorize.Inc()
	m.tsqrBlocks.Observe(float64(info.Blocks))
	var blockSum time.Duration
	for _, d := range info.BlockFactor {
		blockSum += d
	}
	m.tsqrStageSeconds.With("block_factor").ObserveDuration(blockSum)
	m.tsqrStageSeconds.With("tree_reduce").ObserveDuration(info.Reduce)
	m.tsqrStageSeconds.With("q_recover").ObserveDuration(info.Recover)
}

// noteHazard counts one wire hazard, normalizing the kind to the bounded
// hazard vocabulary and counting ladder recoveries by action.
func (m *serverMetrics) noteHazard(h WireHazard) {
	m.hazards.With(normalizeHazardKind(h.Kind)).Inc()
	if h.Action != "" {
		m.recoveries.With(h.Action).Inc()
	}
}

// knownHazardKinds is the bounded set of kind labels built from the hazard
// package's own vocabulary.
var knownHazardKinds = func() map[string]bool {
	out := make(map[string]bool, 8)
	for _, k := range hazard.Kinds() {
		out[k.String()] = true
	}
	return out
}()

// normalizeHazardKind maps any kind string onto the bounded vocabulary: a
// kind the hazard package does not define collapses to "other", so no input
// can mint new label values.
func normalizeHazardKind(kind string) string {
	if knownHazardKinds[kind] {
		return kind
	}
	return "other"
}

// panelLabel names a requested panel algorithm for the panel counter.
func panelLabel(p tcqr.PanelAlgorithm) string {
	switch p {
	case tcqr.PanelCAQR:
		return "caqr"
	case tcqr.PanelHouseholder:
		return "householder"
	case tcqr.PanelCholQR:
		return "cholqr"
	case tcqr.PanelMGS:
		return "mgs"
	}
	return "other"
}

// engineLabel maps a tcsim engine Name() to its wire vocabulary: tc for the
// simulated fp16 TensorCore, tc-ec for its error-corrected (Ootomo split)
// variant, bf16 for the bfloat16 engine, fp32 for plain SGEMM.
func engineLabel(name string) string {
	switch name {
	case "TC-GEMM":
		return "tc"
	case "TCEC-GEMM":
		return "tc-ec"
	case "BF16-GEMM":
		return "bf16"
	case "SGEMM":
		return "fp32"
	}
	return "other"
}

// flopsBucket classifies a GEMM call by decade of floating-point operations,
// giving the shape-mix view the paper's per-kernel accounting cares about
// without unbounded (m,n,k) label explosion.
func flopsBucket(flops int64) string {
	switch {
	case flops < 1e6:
		return "<1e6"
	case flops < 1e8:
		return "1e6-1e8"
	case flops < 1e10:
		return "1e8-1e10"
	}
	return ">=1e10"
}
