package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tcqr"
	"tcqr/internal/faultinject"
	"tcqr/internal/metrics"
)

// CacheKey derives the content-addressed cache key for factoring a under
// cfg: the 64-bit content hash of the matrix (shape + every element) plus a
// fingerprint of every Config field the factorization depends on. Two
// requests get the same key exactly when Factorize would do identical work.
func CacheKey(a *tcqr.Matrix, cfg tcqr.Config) string {
	return fmt.Sprintf("m%016x-%s", a.Hash64(), configFingerprint(cfg))
}

// configFingerprint encodes every Config field into a short stable string.
func configFingerprint(c tcqr.Config) string {
	return fmt.Sprintf("e%d%d%d-p%d-c%d-r%d%d-h%d",
		b2i(c.DisableTensorCore), b2i(c.UseBFloat16), b2i(c.TensorCoreInPanel),
		int(c.Panel), c.Cutoff,
		b2i(c.ReOrthogonalize), b2i(c.DisableColumnScaling),
		int(c.OnHazard))
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Entry is one cached factorization together with the float64 matrix it
// factors: the refinement stage of every solve needs A at full precision,
// so solve-by-key requests carry only the right-hand side.
type Entry struct {
	Key    string
	A      *tcqr.Matrix
	F      *tcqr.Factorization
	Config tcqr.Config
	bytes  int64

	// lastUsed is the cache's logical clock value at the entry's most
	// recent touch; eviction removes the minimum. Updated with a plain
	// atomic store on the lock-free hit path.
	lastUsed atomic.Int64
}

// sizeBytes estimates the resident size of the entry (A at 8 bytes/element,
// Q and R at 4).
func (e *Entry) sizeBytes() int64 {
	n := int64(len(e.A.Data)) * 8
	if e.F != nil {
		n += int64(len(e.F.Q.Data))*4 + int64(len(e.F.R.Data))*4
	}
	return n
}

// Source classifies how a GetOrFactor call obtained its entry.
type Source int

const (
	// SourceHit: the factorization was already cached.
	SourceHit Source = iota
	// SourceMiss: this call factored the matrix (singleflight leader).
	SourceMiss
	// SourceShared: another in-flight call was already factoring the same
	// key; this call waited for it instead of duplicating the work.
	SourceShared
)

// CacheStats is a snapshot of the cache counters.
type CacheStats struct {
	Entries            int   `json:"entries"`
	Bytes              int64 `json:"bytes"`
	Hits               int64 `json:"hits"`
	Misses             int64 `json:"misses"`
	Evictions          int64 `json:"evictions"`
	SingleflightShared int64 `json:"singleflight_shared"`
}

// FactorCache is a content-hash-keyed LRU cache of factorizations with
// singleflight deduplication: concurrent GetOrFactor calls for the same key
// share one Factorize call. Errors are never cached — a failed
// factorization is retried by the next request.
//
// The hit path is lock-free: entries live in a sync.Map, recency is an
// atomic per-entry timestamp from a global logical clock, and the hit
// counter is striped across cache lines — so concurrent solves against
// cached factorizations (the serving fast path) never serialize on a cache
// mutex. The mutex guards only the cold paths: singleflight bookkeeping,
// insertion, and exact-LRU eviction (a min-timestamp scan, O(capacity) on
// the rare insert past capacity).
type FactorCache struct {
	maxEntries int
	backend    Backend

	entries sync.Map     // key string -> *Entry
	clock   atomic.Int64 // logical time for LRU ordering
	hits    metrics.Striped

	mu       sync.Mutex
	count    int
	bytes    int64
	misses   int64
	evicted  int64
	shared   int64
	inflight map[string]*flight
}

// flight is one in-progress factorization that followers wait on.
type flight struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// NewFactorCache builds a cache holding at most maxEntries factorizations
// (minimum 1) backed by be.
func NewFactorCache(maxEntries int, be Backend) *FactorCache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &FactorCache{
		maxEntries: maxEntries,
		backend:    be,
		inflight:   make(map[string]*flight),
	}
}

// touch marks e as most recently used.
func (c *FactorCache) touch(e *Entry) {
	e.lastUsed.Store(c.clock.Add(1))
}

// Get returns the cached entry for key, if present, promoting it to most
// recently used. Lock-free.
func (c *FactorCache) Get(key string) (*Entry, bool) {
	v, ok := c.entries.Load(key)
	if !ok {
		return nil, false
	}
	e := v.(*Entry)
	c.touch(e)
	c.hits.Inc()
	return e, true
}

// Peek reports whether key is resident without promoting it or counting a
// hit. The cluster router uses it: a routing decision must not read as cache
// traffic.
func (c *FactorCache) Peek(key string) bool {
	_, ok := c.entries.Load(key)
	return ok
}

// GetOrFactor returns the entry for key, factoring a under cfg on a miss.
// Concurrent misses for the same key are deduplicated: one caller factors
// (SourceMiss), the rest wait for its result (SourceShared). The caller
// must pass the same (a, cfg) it derived key from.
func (c *FactorCache) GetOrFactor(key string, a *tcqr.Matrix, cfg tcqr.Config) (*Entry, Source, error) {
	if e, ok := c.Get(key); ok {
		return e, SourceHit, nil
	}
	c.mu.Lock()
	// Re-check under the lock: a leader may have inserted between the
	// lock-free probe and here.
	if v, ok := c.entries.Load(key); ok {
		c.mu.Unlock()
		e := v.(*Entry)
		c.touch(e)
		c.hits.Inc()
		return e, SourceHit, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.shared++
		c.mu.Unlock()
		<-fl.done
		return fl.entry, SourceShared, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.misses++
	c.mu.Unlock()

	// Leader path: factor outside the lock (this is the expensive call the
	// whole cache exists to amortize). A panicking backend is converted to
	// an error rather than unwinding: the flight must always resolve, or
	// every singleflight follower parked on fl.done would hang forever.
	func() {
		defer func() {
			if r := recover(); r != nil {
				fl.err = fmt.Errorf("serve: panic during factorize: %v", r)
			}
		}()
		// Failpoint: a panic here is recovered into fl.err exactly like a
		// panicking backend, an error poisons this flight only (the next
		// request retries the factorization — errors are never cached).
		if err := faultinject.Fire(siteCacheFactorize); err != nil {
			fl.err = err
			return
		}
		f, err := c.backend.Factorize(tcqr.ToFloat32(a), cfg)
		if err == nil {
			fl.entry = &Entry{Key: key, A: a, F: f, Config: cfg}
			fl.entry.bytes = fl.entry.sizeBytes()
		} else {
			fl.err = err
		}
	}()

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.entry != nil {
		c.insertLocked(key, fl.entry)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.entry, SourceMiss, fl.err
}

// insertLocked adds an entry and evicts past capacity. c.mu must be held.
func (c *FactorCache) insertLocked(key string, e *Entry) {
	if v, ok := c.entries.Load(key); ok {
		// A racing leader for the same key already inserted; keep the
		// existing entry current rather than duplicating.
		c.touch(v.(*Entry))
		return
	}
	c.touch(e)
	c.entries.Store(key, e)
	c.count++
	c.bytes += e.bytes
	for c.count > c.maxEntries {
		var victim *Entry
		min := int64(1<<63 - 1)
		c.entries.Range(func(_, v any) bool {
			e := v.(*Entry)
			if t := e.lastUsed.Load(); t < min {
				min, victim = t, e
			}
			return true
		})
		if victim == nil {
			return
		}
		c.entries.Delete(victim.Key)
		c.count--
		c.bytes -= victim.bytes
		c.evicted++
	}
}

// Reset empties the cache (benchmarks use it to measure the cold path).
// Counters other than Entries/Bytes are preserved.
func (c *FactorCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries.Range(func(k, _ any) bool {
		c.entries.Delete(k)
		return true
	})
	c.count = 0
	c.bytes = 0
}

// Stats returns a snapshot of the cache counters.
func (c *FactorCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:            c.count,
		Bytes:              c.bytes,
		Hits:               c.hits.Load(),
		Misses:             c.misses,
		Evictions:          c.evicted,
		SingleflightShared: c.shared,
	}
}
