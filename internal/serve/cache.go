package serve

import (
	"container/list"
	"fmt"
	"sync"

	"tcqr"
	"tcqr/internal/faultinject"
)

// CacheKey derives the content-addressed cache key for factoring a under
// cfg: the 64-bit content hash of the matrix (shape + every element) plus a
// fingerprint of every Config field the factorization depends on. Two
// requests get the same key exactly when Factorize would do identical work.
func CacheKey(a *tcqr.Matrix, cfg tcqr.Config) string {
	return fmt.Sprintf("m%016x-%s", a.Hash64(), configFingerprint(cfg))
}

// configFingerprint encodes every Config field into a short stable string.
func configFingerprint(c tcqr.Config) string {
	return fmt.Sprintf("e%d%d%d-p%d-c%d-r%d%d-h%d",
		b2i(c.DisableTensorCore), b2i(c.UseBFloat16), b2i(c.TensorCoreInPanel),
		int(c.Panel), c.Cutoff,
		b2i(c.ReOrthogonalize), b2i(c.DisableColumnScaling),
		int(c.OnHazard))
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Entry is one cached factorization together with the float64 matrix it
// factors: the refinement stage of every solve needs A at full precision,
// so solve-by-key requests carry only the right-hand side.
type Entry struct {
	Key    string
	A      *tcqr.Matrix
	F      *tcqr.Factorization
	Config tcqr.Config
	bytes  int64
}

// sizeBytes estimates the resident size of the entry (A at 8 bytes/element,
// Q and R at 4).
func (e *Entry) sizeBytes() int64 {
	n := int64(len(e.A.Data)) * 8
	if e.F != nil {
		n += int64(len(e.F.Q.Data))*4 + int64(len(e.F.R.Data))*4
	}
	return n
}

// Source classifies how a GetOrFactor call obtained its entry.
type Source int

const (
	// SourceHit: the factorization was already cached.
	SourceHit Source = iota
	// SourceMiss: this call factored the matrix (singleflight leader).
	SourceMiss
	// SourceShared: another in-flight call was already factoring the same
	// key; this call waited for it instead of duplicating the work.
	SourceShared
)

// CacheStats is a snapshot of the cache counters.
type CacheStats struct {
	Entries            int   `json:"entries"`
	Bytes              int64 `json:"bytes"`
	Hits               int64 `json:"hits"`
	Misses             int64 `json:"misses"`
	Evictions          int64 `json:"evictions"`
	SingleflightShared int64 `json:"singleflight_shared"`
}

// FactorCache is a content-hash-keyed LRU cache of factorizations with
// singleflight deduplication: concurrent GetOrFactor calls for the same key
// share one Factorize call. Errors are never cached — a failed
// factorization is retried by the next request.
type FactorCache struct {
	maxEntries int
	backend    Backend

	mu       sync.Mutex
	ll       *list.List // front = most recently used; values are *Entry
	byKey    map[string]*list.Element
	inflight map[string]*flight
	stats    CacheStats
}

// flight is one in-progress factorization that followers wait on.
type flight struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// NewFactorCache builds a cache holding at most maxEntries factorizations
// (minimum 1) backed by be.
func NewFactorCache(maxEntries int, be Backend) *FactorCache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &FactorCache{
		maxEntries: maxEntries,
		backend:    be,
		ll:         list.New(),
		byKey:      make(map[string]*list.Element),
		inflight:   make(map[string]*flight),
	}
}

// Get returns the cached entry for key, if present, promoting it to most
// recently used.
func (c *FactorCache) Get(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*Entry), true
}

// GetOrFactor returns the entry for key, factoring a under cfg on a miss.
// Concurrent misses for the same key are deduplicated: one caller factors
// (SourceMiss), the rest wait for its result (SourceShared). The caller
// must pass the same (a, cfg) it derived key from.
func (c *FactorCache) GetOrFactor(key string, a *tcqr.Matrix, cfg tcqr.Config) (*Entry, Source, error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		c.mu.Unlock()
		return el.Value.(*Entry), SourceHit, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.stats.SingleflightShared++
		c.mu.Unlock()
		<-fl.done
		return fl.entry, SourceShared, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.stats.Misses++
	c.mu.Unlock()

	// Leader path: factor outside the lock (this is the expensive call the
	// whole cache exists to amortize). A panicking backend is converted to
	// an error rather than unwinding: the flight must always resolve, or
	// every singleflight follower parked on fl.done would hang forever.
	func() {
		defer func() {
			if r := recover(); r != nil {
				fl.err = fmt.Errorf("serve: panic during factorize: %v", r)
			}
		}()
		// Failpoint: a panic here is recovered into fl.err exactly like a
		// panicking backend, an error poisons this flight only (the next
		// request retries the factorization — errors are never cached).
		if err := faultinject.Fire(siteCacheFactorize); err != nil {
			fl.err = err
			return
		}
		f, err := c.backend.Factorize(tcqr.ToFloat32(a), cfg)
		if err == nil {
			fl.entry = &Entry{Key: key, A: a, F: f, Config: cfg}
			fl.entry.bytes = fl.entry.sizeBytes()
		} else {
			fl.err = err
		}
	}()

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.entry != nil {
		c.insertLocked(key, fl.entry)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.entry, SourceMiss, fl.err
}

// insertLocked adds an entry and evicts past capacity. c.mu must be held.
func (c *FactorCache) insertLocked(key string, e *Entry) {
	if el, ok := c.byKey[key]; ok {
		// A racing leader for the same key already inserted; keep the
		// existing entry current rather than duplicating.
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(e)
	c.stats.Bytes += e.bytes
	for c.ll.Len() > c.maxEntries {
		back := c.ll.Back()
		old := back.Value.(*Entry)
		c.ll.Remove(back)
		delete(c.byKey, old.Key)
		c.stats.Bytes -= old.bytes
		c.stats.Evictions++
	}
}

// Reset empties the cache (benchmarks use it to measure the cold path).
// Counters other than Entries/Bytes are preserved.
func (c *FactorCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.byKey = make(map[string]*list.Element)
	c.stats.Bytes = 0
}

// Stats returns a snapshot of the cache counters.
func (c *FactorCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	return s
}
