package serve

import (
	"fmt"
	"strings"
	"sync"

	"tcqr"
	"tcqr/internal/faultinject"
	"tcqr/internal/metrics"
)

// CacheKey derives the content-addressed cache key for factoring a under
// cfg: the 64-bit content hash of the matrix (shape + every element) plus a
// fingerprint of every Config field the factorization depends on. Two
// requests get the same key exactly when Factorize would do identical work.
func CacheKey(a *tcqr.Matrix, cfg tcqr.Config) string {
	return fmt.Sprintf("m%016x-%s", a.Hash64(), configFingerprint(cfg))
}

// configFingerprint encodes every Config field into a short stable string.
func configFingerprint(c tcqr.Config) string {
	return fmt.Sprintf("e%d%d%d%d-p%d-c%d-r%d%d-h%d",
		b2i(c.DisableTensorCore), b2i(c.UseBFloat16), b2i(c.UseTCEC), b2i(c.TensorCoreInPanel),
		int(c.Panel), c.Cutoff,
		b2i(c.ReOrthogonalize), b2i(c.DisableColumnScaling),
		int(c.OnHazard))
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Epoch-versioned keys (/v1/update): a factorization enters the cache at
// epoch 0 under its bare content-hash key; every applied update publishes a
// new immutable entry under base@N. A bare base key always resolves to the
// newest epoch; a versioned key pins exactly one epoch, so an in-flight
// solve that resolved an entry keeps computing against it — and reports its
// exact epoch key — no matter how many updates land meanwhile. CacheKey
// output never contains '@', so the split below is unambiguous.

// versionedKey renders the cache key of epoch e in base's series.
func versionedKey(base string, epoch uint64) string {
	if epoch == 0 {
		return base
	}
	return fmt.Sprintf("%s@%d", base, epoch)
}

// baseKey strips the epoch suffix; base keys pass through unchanged. The
// cluster tier routes on it so every epoch of a series lands on the same
// owners.
func baseKey(key string) string {
	if i := strings.LastIndexByte(key, '@'); i >= 0 {
		return key[:i]
	}
	return key
}

// Entry is one cached factorization together with the float64 matrix it
// factors: the refinement stage of every solve needs A at full precision,
// so solve-by-key requests carry only the right-hand side. Entries are
// immutable once published — an update never mutates an entry, it publishes
// a new one under the next epoch key.
type Entry struct {
	// Key is the entry's exact (epoch-versioned) cache key: the bare base
	// key at epoch 0, base@N after N updates.
	Key string
	// Epoch counts the updates applied since the original factorization.
	Epoch  uint64
	A      *tcqr.Matrix
	F      *tcqr.Factorization
	Config tcqr.Config
	bytes  int64

	// Intrusive exact-LRU list links and the reference-counted lifecycle,
	// all guarded by the cache mutex. refs counts outstanding acquisitions
	// (Get, GetOrFactor, update pins, coalescer batches); an entry evicted
	// or retired while referenced stays intact until its last holder
	// releases it — eviction only ever frees drained entries.
	prev, next *Entry
	refs       int64
	resident   bool
	retired    bool
}

// sizeBytes estimates the resident size of the entry (A at 8 bytes/element,
// Q and R at 4).
func (e *Entry) sizeBytes() int64 {
	n := int64(len(e.A.Data)) * 8
	if e.F != nil {
		n += int64(len(e.F.Q.Data))*4 + int64(len(e.F.R.Data))*4
	}
	return n
}

// Source classifies how a GetOrFactor call obtained its entry.
type Source int

const (
	// SourceHit: the factorization was already cached.
	SourceHit Source = iota
	// SourceMiss: this call factored the matrix (singleflight leader).
	SourceMiss
	// SourceShared: another in-flight call was already factoring the same
	// key; this call waited for it instead of duplicating the work.
	SourceShared
)

// CacheStats is a snapshot of the cache counters.
type CacheStats struct {
	Entries            int   `json:"entries"`
	Bytes              int64 `json:"bytes"`
	Hits               int64 `json:"hits"`
	Misses             int64 `json:"misses"`
	Evictions          int64 `json:"evictions"`
	SingleflightShared int64 `json:"singleflight_shared"`
	// Updates counts epochs published through ApplyUpdate.
	Updates int64 `json:"updates"`
	// Retired counts entries retired because a newer epoch superseded them.
	Retired int64 `json:"retired"`
	// RetiredLive is the number of retired or evicted entries still pinned
	// by outstanding references (drains to zero when their solves finish).
	RetiredLive int64 `json:"retired_live"`
	// Rewarmed counts entries adopted from the disk spill tier at startup.
	Rewarmed int64 `json:"rewarmed"`
}

// FactorCache is a content-hash-keyed exact-LRU cache of factorizations
// with singleflight deduplication: concurrent GetOrFactor calls for the
// same key share one Factorize call. Errors are never cached — a failed
// factorization is retried by the next request.
//
// Capacity is bounded twice: by entry count (maxEntries) and, when a byte
// budget is set, by estimated resident bytes — eviction pops the LRU tail
// until both bounds hold, so a handful of huge factors can no longer blow
// past memory while tiny entries are evicted needlessly.
//
// Every lookup and insert runs under one mutex with an intrusive
// doubly-linked LRU list, giving O(1) exact-LRU promotion and eviction
// (PR 6's lock-free hit path traded exactness for a lock-free touch; with
// refcounted lifecycles and epoch publication the lock is required for
// correctness, and at ms-scale solve costs it is not measurable — see
// DESIGN.md §15).
type FactorCache struct {
	maxEntries int
	maxBytes   int64 // 0 = unbounded
	backend    Backend
	spill      *SpillTier // optional write-behind disk tier (nil = off)

	hits metrics.Striped

	mu       sync.Mutex
	upd      sync.Cond // waits for per-series update serialization
	entries  map[string]*Entry
	series   map[string]*series // base key -> epoch chain state
	lru      lruList
	count    int
	bytes    int64
	misses   int64
	evicted  int64
	shared   int64
	updates  int64
	retired  int64
	retLive  int64
	rewarmed int64
	inflight map[string]*flight
}

// series tracks one base key's epoch chain: the newest entry and whether an
// update is being applied (updates on a series are serialized; solves are
// not blocked — they keep resolving the current epoch until the new one is
// published atomically).
type series struct {
	current  *Entry
	updating bool
}

// lruList is the intrusive recency list: head is most recently used, tail
// is the eviction victim. All operations are O(1).
type lruList struct {
	head, tail *Entry
}

func (l *lruList) pushFront(e *Entry) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *lruList) remove(e *Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (l *lruList) moveFront(e *Entry) {
	if l.head == e {
		return
	}
	l.remove(e)
	l.pushFront(e)
}

// flight is one in-progress factorization that followers wait on.
type flight struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// NewFactorCache builds a cache holding at most maxEntries factorizations
// (minimum 1) backed by be. Optional bounds and tiers attach before serving
// begins: SetByteBudget, attachSpill.
func NewFactorCache(maxEntries int, be Backend) *FactorCache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	c := &FactorCache{
		maxEntries: maxEntries,
		backend:    be,
		entries:    make(map[string]*Entry),
		series:     make(map[string]*series),
		inflight:   make(map[string]*flight),
	}
	c.upd.L = &c.mu
	return c
}

// SetByteBudget bounds the cache's estimated resident bytes (0 = entry
// count only). Call before serving begins.
func (c *FactorCache) SetByteBudget(n int64) {
	if n < 0 {
		n = 0
	}
	c.maxBytes = n
}

// attachSpill wires the write-behind disk tier: published entries are
// enqueued for spill, evicted and retired ones removed. Call before serving
// begins.
func (c *FactorCache) attachSpill(sp *SpillTier) { c.spill = sp }

// lookupLocked resolves key: a bare base key resolves through its series to
// the newest epoch; a versioned key pins exactly that epoch.
func (c *FactorCache) lookupLocked(key string) *Entry {
	if s, ok := c.series[key]; ok && s.current != nil {
		return s.current
	}
	return c.entries[key]
}

// Get returns the cached entry for key, if present, promoting it to most
// recently used and acquiring a reference: the caller must Release the
// entry when done with it.
func (c *FactorCache) Get(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.lookupLocked(key)
	if e == nil {
		return nil, false
	}
	c.lru.moveFront(e)
	e.refs++
	c.hits.Inc()
	return e, true
}

// Peek reports whether key is resolvable without promoting it, acquiring
// it, or counting a hit. The cluster router uses it: a routing decision
// must not read as cache traffic.
func (c *FactorCache) Peek(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lookupLocked(key) != nil
}

// Acquire adds a reference to e (the coalescer pins its batch's entry so a
// deadline-abandoned handler releasing its own reference cannot let
// eviction drain an entry a flush is about to read).
func (c *FactorCache) Acquire(e *Entry) {
	if e == nil {
		return
	}
	c.mu.Lock()
	e.refs++
	c.mu.Unlock()
}

// Release drops one reference. The last release of a retired (superseded or
// evicted-while-referenced) entry finalizes it.
func (c *FactorCache) Release(e *Entry) {
	if e == nil {
		return
	}
	c.mu.Lock()
	e.refs--
	if e.refs <= 0 && e.retired {
		e.retired = false
		c.retLive--
	}
	c.mu.Unlock()
}

// GetOrFactor returns the entry for key, factoring a under cfg on a miss.
// Concurrent misses for the same key are deduplicated: one caller factors
// (SourceMiss), the rest wait for its result (SourceShared). The caller
// must pass the same (a, cfg) it derived key from, and must Release the
// returned entry when done with it.
func (c *FactorCache) GetOrFactor(key string, a *tcqr.Matrix, cfg tcqr.Config) (*Entry, Source, error) {
	if e, ok := c.Get(key); ok {
		return e, SourceHit, nil
	}
	c.mu.Lock()
	// Re-check under the lock: a leader may have inserted between the
	// first probe and here.
	if e := c.lookupLocked(key); e != nil {
		c.lru.moveFront(e)
		e.refs++
		c.hits.Inc()
		c.mu.Unlock()
		return e, SourceHit, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.shared++
		c.mu.Unlock()
		<-fl.done
		if fl.entry != nil {
			c.Acquire(fl.entry)
		}
		return fl.entry, SourceShared, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.misses++
	c.mu.Unlock()

	// Leader path: factor outside the lock (this is the expensive call the
	// whole cache exists to amortize). A panicking backend is converted to
	// an error rather than unwinding: the flight must always resolve, or
	// every singleflight follower parked on fl.done would hang forever.
	func() {
		defer func() {
			if r := recover(); r != nil {
				fl.err = fmt.Errorf("serve: panic during factorize: %v", r)
			}
		}()
		// Failpoint: a panic here is recovered into fl.err exactly like a
		// panicking backend, an error poisons this flight only (the next
		// request retries the factorization — errors are never cached).
		if err := faultinject.Fire(siteCacheFactorize); err != nil {
			fl.err = err
			return
		}
		f, err := c.backend.Factorize(tcqr.ToFloat32(a), cfg)
		if err == nil {
			fl.entry = &Entry{Key: key, A: a, F: f, Config: cfg}
			fl.entry.bytes = fl.entry.sizeBytes()
		} else {
			fl.err = err
		}
	}()

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.entry != nil {
		fl.entry.refs = 1 // the leader's own acquisition
		c.insertLocked(fl.entry)
	}
	c.mu.Unlock()
	close(fl.done)
	if fl.entry != nil && c.spill != nil {
		c.spill.Enqueue(fl.entry)
	}
	return fl.entry, SourceMiss, fl.err
}

// BeginUpdate pins the newest epoch of key's series for an update and locks
// the series against concurrent updates (they serialize here; solves are
// never blocked). The returned entry is acquired — the caller must finish
// with exactly one of PublishUpdate or AbortUpdate.
func (c *FactorCache) BeginUpdate(key string) (*Entry, error) {
	base := baseKey(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		s := c.series[base]
		if s == nil || s.current == nil {
			return nil, fmt.Errorf("no cached factorization for key %q", key)
		}
		if !s.updating {
			s.updating = true
			e := s.current
			e.refs++
			return e, nil
		}
		c.upd.Wait()
	}
}

// PublishUpdate atomically publishes the updated factorization as the next
// epoch of old's series and retires old: the new entry becomes the target
// of every subsequent bare-key lookup, while solves already pinning old
// keep it alive through their references. Returns the new entry, acquired
// for the caller (Release when done).
func (c *FactorCache) PublishUpdate(old *Entry, a *tcqr.Matrix, f *tcqr.Factorization) *Entry {
	base := baseKey(old.Key)
	ne := &Entry{
		Key:    versionedKey(base, old.Epoch+1),
		Epoch:  old.Epoch + 1,
		A:      a,
		F:      f,
		Config: old.Config,
		refs:   1,
	}
	ne.bytes = ne.sizeBytes()
	c.mu.Lock()
	if s := c.series[base]; s != nil {
		s.updating = false
	}
	if old.resident {
		c.removeLocked(old, removeRetire)
	}
	c.insertLocked(ne)
	c.updates++
	old.refs-- // the BeginUpdate pin
	if old.refs <= 0 && old.retired {
		old.retired = false
		c.retLive--
	}
	c.mu.Unlock()
	c.upd.Broadcast()
	if c.spill != nil {
		c.spill.Enqueue(ne)
	}
	return ne
}

// AbortUpdate unlocks the series after a failed update and drops the
// BeginUpdate pin; the current epoch stays published.
func (c *FactorCache) AbortUpdate(old *Entry) {
	c.mu.Lock()
	if s := c.series[baseKey(old.Key)]; s != nil {
		s.updating = false
	}
	old.refs--
	if old.refs <= 0 && old.retired {
		old.retired = false
		c.retLive--
	}
	c.mu.Unlock()
	c.upd.Broadcast()
}

// AdoptRewarmed inserts an entry loaded from the disk spill tier (daemon
// restart). It counts neither a hit nor a miss, and a stale epoch (older
// than one already adopted for the same base) is skipped rather than
// published over it.
func (c *FactorCache) AdoptRewarmed(e *Entry) bool {
	base := baseKey(e.Key)
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.series[base]; s != nil && s.current != nil && s.current.Epoch >= e.Epoch {
		return false
	}
	if cur := c.entries[e.Key]; cur != nil {
		return false
	}
	e.bytes = e.sizeBytes()
	c.insertLocked(e)
	c.rewarmed++
	return true
}

// removeReason distinguishes the counters bumped when an entry leaves the
// index.
type removeReason int

const (
	removeEvict removeReason = iota
	removeRetire
	removeReset
)

// insertLocked adds an entry to the index, the LRU list, and its series,
// then evicts past the entry/byte bounds. c.mu must be held.
func (c *FactorCache) insertLocked(e *Entry) {
	if cur, ok := c.entries[e.Key]; ok {
		// A racing insert for the same key already landed; keep the existing
		// entry current rather than duplicating.
		c.lru.moveFront(cur)
		return
	}
	c.entries[e.Key] = e
	e.resident = true
	c.lru.pushFront(e)
	c.count++
	c.bytes += e.bytes
	base := baseKey(e.Key)
	s := c.series[base]
	if s == nil {
		s = &series{}
		c.series[base] = s
	}
	s.current = e
	for c.count > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		victim := c.lru.tail
		// Never evict the entry being inserted: a single entry above the
		// byte budget stays resident (the alternative is caching nothing).
		for victim == e {
			victim = victim.prev
		}
		if victim == nil {
			return
		}
		c.removeLocked(victim, removeEvict)
	}
}

// removeLocked detaches an entry from the index, list, and series. A still-
// referenced entry is marked retired and stays intact (and readable by its
// holders) until the last reference drains; eviction never frees or mutates
// an entry mid-solve. c.mu must be held.
func (c *FactorCache) removeLocked(e *Entry, why removeReason) {
	delete(c.entries, e.Key)
	c.lru.remove(e)
	e.resident = false
	c.count--
	c.bytes -= e.bytes
	switch why {
	case removeEvict:
		c.evicted++
	case removeRetire:
		c.retired++
	}
	base := baseKey(e.Key)
	if s := c.series[base]; s != nil && s.current == e {
		if why == removeRetire {
			// PublishUpdate is about to install the successor; keep the
			// series (and its updating latch) alive.
			s.current = nil
		} else {
			delete(c.series, base)
		}
	}
	if c.spill != nil {
		c.spill.Remove(e.Key)
	}
	if e.refs > 0 {
		e.retired = true
		c.retLive++
	}
}

// Reset empties the cache (benchmarks use it to measure the cold path).
// Counters other than Entries/Bytes are preserved; the spill tier is left
// untouched.
func (c *FactorCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		delete(c.entries, e.Key)
		c.lru.remove(e)
		e.resident = false
		if e.refs > 0 && !e.retired {
			e.retired = true
			c.retLive++
		}
	}
	c.series = make(map[string]*series)
	c.count = 0
	c.bytes = 0
}

// Stats returns a snapshot of the cache counters.
func (c *FactorCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:            c.count,
		Bytes:              c.bytes,
		Hits:               c.hits.Load(),
		Misses:             c.misses,
		Evictions:          c.evicted,
		SingleflightShared: c.shared,
		Updates:            c.updates,
		Retired:            c.retired,
		RetiredLive:        c.retLive,
		Rewarmed:           c.rewarmed,
	}
}
