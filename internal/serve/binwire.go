package serve

import (
	"bytes"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"

	"tcqr/internal/wirefmt"
)

// This file adapts the binary frame codec (internal/wirefmt) to the daemon's
// API: content negotiation against the JSON contract, frame <-> request
// mapping for the three compute endpoints, and the pooled-buffer lifecycle
// that lets a cache-hit solve run without per-request heap growth.
//
// Negotiation rules (DESIGN.md §12): a request IS binary when its
// Content-Type is application/x-tcqr-frame; a response IS binary when the
// Accept header names that type explicitly, or is absent on a binary
// request. Accept wildcards keep selecting JSON — existing clients that send
// Accept: */* must keep receiving the byte-for-byte JSON contract. Error
// responses are always the JSON envelope regardless of encoding: an error
// body is tiny, and a client that cannot parse the frame it asked about
// must still be able to read why.

// Wire encoding labels for the tcqrd_wire_* metric families.
const (
	encJSON   = "json"
	encBinary = "binary"
)

// isFrameRequest reports whether the request body is a binary frame.
func isFrameRequest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return false
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return strings.EqualFold(strings.TrimSpace(ct), wirefmt.ContentType)
	}
	return strings.EqualFold(mt, wirefmt.ContentType)
}

// wantsFrameResponse reports whether the success response should be a binary
// frame: an explicit Accept for the frame type, or a binary request with no
// Accept preference at all.
func wantsFrameResponse(r *http.Request, frameReq bool) bool {
	accept := r.Header.Get("Accept")
	if accept == "" {
		return frameReq
	}
	for _, part := range strings.Split(accept, ",") {
		mt, _, err := mime.ParseMediaType(strings.TrimSpace(part))
		if err == nil && strings.EqualFold(mt, wirefmt.ContentType) {
			return true
		}
	}
	return false
}

// readFrameBody drains the (size-capped) request body into a pooled buffer.
// The caller owns the buffer: release it with wirefmt.PutBuffer once no view
// into it can be referenced, or leak it to the collector when in doubt (the
// deadline-abandonment path) — never release early.
func readFrameBody(r *http.Request) ([]byte, *apiError) {
	hint := int(r.ContentLength)
	if hint <= 0 {
		hint = 16 << 10
	}
	buf := bytes.NewBuffer(wirefmt.GetBuffer(hint))
	if _, err := io.Copy(buf, r.Body); err != nil {
		wirefmt.PutBuffer(buf.Bytes())
		return nil, errBadInput("reading frame body: " + err.Error())
	}
	return buf.Bytes(), nil
}

// decodeFrame parses body and validates the shared frame shape: at least a
// leading JSON metadata section, which is decoded strictly into meta (the
// same DisallowUnknownFields contract — and the same decode failpoint — as
// the JSON endpoints).
func decodeFrame(body []byte, scratch []wirefmt.Section, meta any) ([]wirefmt.Section, *apiError) {
	secs, err := wirefmt.Decode(body, scratch)
	if err != nil {
		return nil, errBadInput(err.Error())
	}
	if len(secs) == 0 || secs[0].Tag != wirefmt.TagJSON {
		return nil, errBadInput("frame must start with a JSON metadata section")
	}
	metaBytes := secs[0].Raw
	if len(metaBytes) == 0 {
		metaBytes = []byte("{}")
	}
	if err := decodeJSON(bytes.NewReader(metaBytes), meta); err != nil {
		return nil, classifyError(err)
	}
	return secs, nil
}

// sectionMatrix copies a matrix section into the JSON wire vocabulary.
// Matrix payloads are always copied out of the frame buffer: factorize and
// solve-by-matrix park the matrix in the factorization cache, which outlives
// the pooled request buffer by design.
func sectionMatrix(s *wirefmt.Section) *WireMatrix {
	return &WireMatrix{
		Rows: int(s.A),
		Cols: int(s.B),
		Data: append([]float64(nil), s.Float64s()...),
	}
}

// splitForward pops a trailing TagForward section (peer-forwarded requests
// append one — see cluster.go) so the per-endpoint shape checks below see
// the client-facing layout either way.
func splitForward(secs []wirefmt.Section) ([]wirefmt.Section, *wirefmt.Section) {
	if n := len(secs); n > 1 && secs[n-1].Tag == wirefmt.TagForward {
		return secs[:n-1], &secs[n-1]
	}
	return secs, nil
}

// foldForwardDeadline tightens the request deadline to the forward section's
// remaining budget: a forwarded request must not outlive the coordinator
// that is waiting on it.
func foldForwardDeadline(fwd *wirefmt.Section, deadlineMS int64) int64 {
	if fwd == nil || fwd.A == 0 {
		return deadlineMS
	}
	if deadlineMS == 0 || int64(fwd.A) < deadlineMS {
		return int64(fwd.A)
	}
	return deadlineMS
}

// decodeFactorizeFrame maps a factorize frame — [JSON meta, matrix A] plus
// an optional trailing forward section — onto the JSON request vocabulary.
// The returned request does not alias body.
func decodeFactorizeFrame(body []byte, scratch []wirefmt.Section) (*factorizeRequest, *apiError) {
	var req factorizeRequest
	secs, aerr := decodeFrame(body, scratch, &req)
	if aerr != nil {
		return nil, aerr
	}
	if req.Matrix != nil {
		return nil, errBadInput("factorize frame metadata must not carry a matrix field; send a matrix section")
	}
	secs, fwd := splitForward(secs)
	if len(secs) != 2 || secs[1].Tag != wirefmt.TagMatrix {
		return nil, errBadInput("factorize frame needs exactly [JSON meta, matrix] sections")
	}
	req.Matrix = sectionMatrix(&secs[1])
	req.DeadlineMS = foldForwardDeadline(fwd, req.DeadlineMS)
	return &req, nil
}

// decodeStreamAppendFrame maps a stream-append frame — [JSON meta, row block]
// — onto the JSON request vocabulary. The row block is copied out of the
// frame buffer (sessions outlive the pooled request body), so the returned
// request does not alias body.
func decodeStreamAppendFrame(body []byte, scratch []wirefmt.Section) (*streamAppendRequest, *apiError) {
	var req streamAppendRequest
	secs, aerr := decodeFrame(body, scratch, &req)
	if aerr != nil {
		return nil, aerr
	}
	if req.Block != nil {
		return nil, errBadInput("append frame metadata must not carry a block field; send a matrix section")
	}
	if len(secs) != 2 || secs[1].Tag != wirefmt.TagMatrix {
		return nil, errBadInput("append frame needs exactly [JSON meta, row block] sections")
	}
	req.Block = sectionMatrix(&secs[1])
	return &req, nil
}

// decodeSolveFrame maps a solve frame — [JSON meta, b] for solve-by-key or
// [JSON meta, matrix A, b] for solve-by-matrix, plus an optional trailing
// forward section — onto the JSON request vocabulary. The right-hand side
// aliases body zero-copy (on aligned little-endian hosts): the caller must
// keep body alive until the solve can no longer reference b.
func decodeSolveFrame(body []byte, scratch []wirefmt.Section) (*solveRequest, *apiError) {
	var req solveRequest
	secs, aerr := decodeFrame(body, scratch, &req)
	if aerr != nil {
		return nil, aerr
	}
	if req.Matrix != nil || len(req.B) != 0 {
		return nil, errBadInput("solve frame metadata must not carry matrix or b fields; send binary sections")
	}
	secs, fwd := splitForward(secs)
	switch {
	case len(secs) == 2 && secs[1].Tag == wirefmt.TagVector:
		req.B = secs[1].Float64s()
	case len(secs) == 3 && secs[1].Tag == wirefmt.TagMatrix && secs[2].Tag == wirefmt.TagVector:
		req.Matrix = sectionMatrix(&secs[1])
		req.B = secs[2].Float64s()
	default:
		return nil, errBadInput("solve frame needs [JSON meta, b] or [JSON meta, matrix, b] sections")
	}
	req.DeadlineMS = foldForwardDeadline(fwd, req.DeadlineMS)
	return &req, nil
}

// decodeUpdateFrame maps an update frame — [JSON meta, append block] for an
// append, [JSON meta] for a downdate, plus an optional trailing forward
// section — onto the JSON request vocabulary. The append block is copied out
// of the frame buffer (the updated entry outlives the pooled request body),
// so the returned request does not alias body.
func decodeUpdateFrame(body []byte, scratch []wirefmt.Section) (*updateRequest, *apiError) {
	var req updateRequest
	secs, aerr := decodeFrame(body, scratch, &req)
	if aerr != nil {
		return nil, aerr
	}
	if req.Append != nil {
		return nil, errBadInput("update frame metadata must not carry an append field; send a matrix section")
	}
	secs, fwd := splitForward(secs)
	switch {
	case len(secs) == 1:
		// Downdate: the metadata's remove_rows carries the whole request.
	case len(secs) == 2 && secs[1].Tag == wirefmt.TagMatrix:
		req.Append = sectionMatrix(&secs[1])
	default:
		return nil, errBadInput("update frame needs [JSON meta] or [JSON meta, append block] sections")
	}
	req.DeadlineMS = foldForwardDeadline(fwd, req.DeadlineMS)
	return &req, nil
}

// decodeLowRankFrame maps a lowrank frame — [JSON meta, matrix A] — onto the
// JSON request vocabulary. The returned request does not alias body.
func decodeLowRankFrame(body []byte, scratch []wirefmt.Section) (*lowRankRequest, *apiError) {
	var req lowRankRequest
	secs, aerr := decodeFrame(body, scratch, &req)
	if aerr != nil {
		return nil, aerr
	}
	if req.Matrix != nil {
		return nil, errBadInput("lowrank frame metadata must not carry a matrix field; send a matrix section")
	}
	if len(secs) != 2 || secs[1].Tag != wirefmt.TagMatrix {
		return nil, errBadInput("lowrank frame needs exactly [JSON meta, matrix] sections")
	}
	req.Matrix = sectionMatrix(&secs[1])
	return &req, nil
}

// binSolveMeta is the JSON metadata section of a binary solve response:
// solveResponse with the bulk x payload lifted into a vector section.
type binSolveMeta struct {
	Iterations int          `json:"iterations"`
	Converged  bool         `json:"converged"`
	Optimality float64      `json:"optimality"`
	Key        string       `json:"key"`
	Cached     bool         `json:"cached"`
	Batched    int          `json:"batched"`
	Hazards    []WireHazard `json:"hazards,omitempty"`
}

// binLowRankMeta is the JSON metadata section of a binary lowrank response:
// lowRankResponse with U, s and V lifted into binary sections (in that
// order).
type binLowRankMeta struct {
	Rank    int          `json:"rank"`
	Hazards []WireHazard `json:"hazards,omitempty"`
}

// frameSections splits a response into its binary frame sections: a JSON
// metadata section (marshaled by the caller) plus bulk float sections per
// endpoint. Returns the metadata value to marshal and the trailing bulk
// sections.
func frameSections(v any) (meta any, bulk []wirefmt.Section, err error) {
	switch resp := v.(type) {
	// The stream control responses carry no bulk payload: their binary frame
	// is just the JSON metadata section, so binary-preferring clients keep a
	// single content type across the whole begin/append/commit conversation.
	case factorizeResponse:
		return resp, nil, nil
	case streamBeginResponse:
		return resp, nil, nil
	case streamAppendResponse:
		return resp, nil, nil
	case streamAbortResponse:
		return resp, nil, nil
	// The update response is pure metadata (the factors stay server-side).
	case updateResponse:
		return resp, nil, nil
	case solveResponse:
		return binSolveMeta{
			Iterations: resp.Iterations,
			Converged:  resp.Converged,
			Optimality: resp.Optimality,
			Key:        resp.Key,
			Cached:     resp.Cached,
			Batched:    resp.Batched,
			Hazards:    resp.Hazards,
		}, []wirefmt.Section{wirefmt.VectorSection(resp.X)}, nil
	case lowRankResponse:
		return binLowRankMeta{Rank: resp.Rank, Hazards: resp.Hazards},
			[]wirefmt.Section{
				wirefmt.MatrixSection(resp.U.Rows, resp.U.Cols, resp.U.Data),
				wirefmt.VectorSection(resp.S),
				wirefmt.MatrixSection(resp.V.Rows, resp.V.Cols, resp.V.Data),
			}, nil
	}
	return nil, nil, fmt.Errorf("serve: no binary frame mapping for %T", v)
}
