package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tcqr/internal/wirefmt"
)

// Serving benchmarks at the ISSUE's acceptance shape (1024×256): the cold
// path (factorize + solve), the cache-hit path (solve against a warm
// factorization — the "factor once, apply many times" payoff the cache
// exists for), and the coalesced path at increasing client concurrency.
// cmd/tcqr-bench packages these into BENCH_3.json.

const benchRows, benchCols = 1024, 256

// benchServer returns a server plus pre-marshaled factorize and solve
// request bodies for the benchmark matrix.
func benchServer(window time.Duration, maxBatch int) (*Server, http.Handler, []byte, []byte) {
	s := New(Options{Window: window, MaxBatch: maxBatch})
	h := s.Handler()
	data := testMatrix(1234, benchRows, benchCols, 1)
	x := make([]float64, benchCols)
	for j := range x {
		x[j] = float64(j%11) - 5
	}
	b := matVecData(benchRows, benchCols, data, x)
	fbody, err := json.Marshal(map[string]any{"matrix": wireMat(benchRows, benchCols, data)})
	if err != nil {
		panic(err)
	}
	key := mustFactorize(h, fbody)
	sbody, err := json.Marshal(map[string]any{"key": key, "b": b})
	if err != nil {
		panic(err)
	}
	return s, h, fbody, sbody
}

func mustFactorize(h http.Handler, body []byte) string {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/factorize", bytes.NewReader(body)))
	if rec.Code != 200 {
		panic("bench factorize failed: " + rec.Body.String())
	}
	var fr struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &fr); err != nil || fr.Key == "" {
		panic("bench factorize returned no key")
	}
	return fr.Key
}

func benchPost(b *testing.B, h http.Handler, path string, body []byte) {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body)))
	if rec.Code != 200 {
		// Errorf, not Fatalf: benchPost also runs on bench worker goroutines.
		b.Errorf("%s: code=%d body=%s", path, rec.Code, rec.Body.String())
	}
}

// benchBinSolveBody builds the binary-frame twin of benchServer's solve
// body: [JSON {key}, vector b] for the warm factorization behind sbody.
func benchBinSolveBody(sbody []byte) []byte {
	var sr struct {
		Key string    `json:"key"`
		B   []float64 `json:"b"`
	}
	if err := json.Unmarshal(sbody, &sr); err != nil {
		panic(err)
	}
	meta, err := json.Marshal(map[string]any{"key": sr.Key})
	if err != nil {
		panic(err)
	}
	frame, err := wirefmt.AppendFrame(nil, wirefmt.JSONSection(meta), wirefmt.VectorSection(sr.B))
	if err != nil {
		panic(err)
	}
	return frame
}

// benchPostFrame drives one binary-encoded request (frame body in, frame
// response negotiated by the absent Accept header).
func benchPostFrame(b *testing.B, h http.Handler, path string, body []byte) {
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", wirefmt.ContentType)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		b.Errorf("%s: code=%d body=%s", path, rec.Code, rec.Body.String())
	}
}

// BenchmarkServeColdFactorizeSolve1024x256 measures the full cold path: the
// cache is emptied every iteration, so each solve pays for a fresh
// factorization.
func BenchmarkServeColdFactorizeSolve1024x256(b *testing.B) {
	s, h, fbody, sbody := benchServer(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Cache().Reset()
		benchPost(b, h, "/v1/factorize", fbody)
		benchPost(b, h, "/v1/solve", sbody)
	}
}

// BenchmarkServeCacheHitSolve1024x256 measures the warm path: every solve
// reuses the factorization cached in benchServer. The ISSUE acceptance bar
// is ≥5× lower latency than the cold benchmark above.
func BenchmarkServeCacheHitSolve1024x256(b *testing.B) {
	_, h, _, sbody := benchServer(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, h, "/v1/solve", sbody)
	}
}

// BenchmarkServeCacheHitSolveBinary1024x256 is the binary-frame twin of the
// cache-hit benchmark above: zero-copy b decode, pooled buffers, frame
// response. The ISSUE acceptance bar is well under 1ms/op at this shape.
func BenchmarkServeCacheHitSolveBinary1024x256(b *testing.B) {
	_, h, _, sbody := benchServer(0, 1)
	frame := benchBinSolveBody(sbody)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPostFrame(b, h, "/v1/solve", frame)
	}
}

// BenchmarkServeCoalescedSolve measures one wave of `clients` concurrent
// same-key solves per iteration; with MaxBatch == clients each wave flushes
// as a single multi-RHS call, so ns/op is the latency of serving the whole
// wave.
func BenchmarkServeCoalescedSolve(b *testing.B) {
	for _, clients := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			window := 2 * time.Millisecond
			if clients == 1 {
				window = 0
			}
			_, h, _, sbody := benchServer(window, clients)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						benchPost(b, h, "/v1/solve", sbody)
					}()
				}
				wg.Wait()
			}
		})
	}
}

// BenchmarkServeCoalescedSolveBinary is the binary-frame twin of the wave
// benchmark: every client ships (and receives) frames, so the wave's cost is
// pure batching plus the multi-RHS solve with no JSON float work. Run with
// -cpu 1,4,8 to observe multicore scaling of the sharded hot path.
func BenchmarkServeCoalescedSolveBinary(b *testing.B) {
	for _, clients := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			window := 2 * time.Millisecond
			if clients == 1 {
				window = 0
			}
			_, h, _, sbody := benchServer(window, clients)
			frame := benchBinSolveBody(sbody)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						benchPostFrame(b, h, "/v1/solve", frame)
					}()
				}
				wg.Wait()
			}
		})
	}
}
