package lls

import (
	"fmt"
	"math"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

// LSQR solves min ‖A·R⁻¹·y − b‖, x = R⁻¹·y, with the Paige–Saunders LSQR
// algorithm (Golub-Kahan bidiagonalization). It is mathematically
// equivalent to CGLS but numerically more stable on very ill-conditioned
// systems (Section 2.2 mentions it as the robust alternative); it is
// provided so the two refinement engines can be compared. Pass r == nil for
// the unpreconditioned solver. Stopping mirrors CGLS: the estimate of
// ‖Bᵀr_k‖ must fall to tol times its initial value.
func LSQR(a *dense.M64, b []float64, r *dense.M64, tol float64, maxIter int) *IterResult {
	return LSQROperator(AsOperator(a), b, r, tol, maxIter)
}

// LSQROperator is LSQR for matrix-free operators (see CGLSOperator).
func LSQROperator(op Operator, b []float64, r *dense.M64, tol float64, maxIter int) *IterResult {
	m, n := op.Dims()
	if len(b) != m {
		panic(fmt.Sprintf("lls: rhs length %d, want %d", len(b), m))
	}
	if tol <= 0 {
		tol = DefaultTol
	}
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}

	applyB := func(v []float64, out []float64) { // out = A·R⁻¹·v
		t := append([]float64(nil), v...)
		if r != nil {
			blas.Trsv(blas.Upper, blas.NoTrans, blas.NonUnit, r, t)
		}
		op.Apply(out, t)
	}
	applyBT := func(u []float64, out []float64) { // out = R⁻ᵀ·Aᵀ·u
		op.ApplyTranspose(out, u)
		if r != nil {
			blas.Trsv(blas.Upper, blas.Trans, blas.NonUnit, r, out)
		}
	}

	u := append([]float64(nil), b...)
	beta := blas.Nrm2(u)
	out := &IterResult{X: make([]float64, n)}
	if beta == 0 {
		out.Converged = true
		out.GradNorms = []float64{0}
		return out
	}
	blas.Scal(1/beta, u)
	v := make([]float64, n)
	applyBT(u, v)
	alpha := blas.Nrm2(v)
	if alpha == 0 {
		out.Converged = true
		out.GradNorms = []float64{0}
		return out
	}
	blas.Scal(1/alpha, v)

	w := append([]float64(nil), v...)
	y := make([]float64, n)
	phiBar, rhoBar := beta, alpha
	grad0 := alpha * beta // ‖Bᵀb‖ estimate
	out.GradNorms = []float64{grad0}

	tmpM := make([]float64, m)
	tmpN := make([]float64, n)
	for k := 0; k < maxIter; k++ {
		// β·u = B·v − α·u
		applyB(v, tmpM)
		for i := range u {
			u[i] = tmpM[i] - alpha*u[i]
		}
		beta = blas.Nrm2(u)
		if beta > 0 {
			blas.Scal(1/beta, u)
		}
		// α·v = Bᵀ·u − β·v
		applyBT(u, tmpN)
		for i := range v {
			v[i] = tmpN[i] - beta*v[i]
		}
		alpha = blas.Nrm2(v)
		if alpha > 0 {
			blas.Scal(1/alpha, v)
		}
		// Givens rotation eliminating β from the bidiagonal factor.
		rho := math.Hypot(rhoBar, beta)
		c, s := rhoBar/rho, beta/rho
		theta := s * alpha
		rhoBar = -c * alpha
		phi := c * phiBar
		phiBar = s * phiBar

		blas.Axpy(phi/rho, w, y)
		for i := range w {
			w[i] = v[i] - (theta/rho)*w[i]
		}

		grad := phiBar * alpha * math.Abs(c) // ‖Bᵀ·r_k‖ estimate
		out.GradNorms = append(out.GradNorms, grad)
		out.Iterations = k + 1
		if grad <= tol*grad0 || alpha == 0 || beta == 0 {
			out.Converged = grad <= tol*grad0
			break
		}
	}
	copy(out.X, y)
	if r != nil {
		blas.Trsv(blas.Upper, blas.NoTrans, blas.NonUnit, r, out.X)
	}
	return out
}
