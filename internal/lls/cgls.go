package lls

import (
	"fmt"
	"math"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

// IterResult reports the outcome of an iterative solve.
type IterResult struct {
	X          []float64
	Iterations int
	Converged  bool
	// GradNorms[k] is the preconditioned gradient norm ‖s_k‖ after k
	// iterations (GradNorms[0] is the initial norm), for convergence-rate
	// plots.
	GradNorms []float64
	// Stagnated reports that the iteration stopped because the gradient
	// norm made no progress for StagnationWindow consecutive iterations —
	// the preconditioner is too weak (or the numerical floor was reached)
	// and further Krylov steps are wasted work. X holds the best iterate.
	Stagnated bool
	// Diverged reports that the iteration was cut off because the gradient
	// norm grew past DivergenceGuard times the best seen — the loss of
	// conjugacy past the numerical floor. X holds the best iterate.
	Diverged bool
}

// StagnationWindow is the number of consecutive iterations without any
// improvement of the best gradient norm after which CGLS declares
// stagnation and stops.
const StagnationWindow = 30

// DivergenceGuard is the growth factor over the best gradient norm at which
// CGLS declares divergence and restores the best iterate.
const DivergenceGuard = 100.0

// DefaultTol is the relative convergence tolerance on the preconditioned
// gradient used when a caller passes tol <= 0.
const DefaultTol = 1e-14

// DefaultMaxIter caps refinement iterations when maxIter <= 0. The paper
// tolerates at most 200 iterations in its stress case (Section 4.2.2).
const DefaultMaxIter = 200

// CGLS solves min ‖A·R⁻¹·y − b‖, x = R⁻¹·y, by conjugate gradients on the
// preconditioned normal equations — Algorithm 3 of the paper. A and b are
// in float64; r is the upper-triangular preconditioner (pass nil for plain,
// unpreconditioned CGLS). With R from an RGSQRF factorization, A·R⁻¹ is
// within O(κ(A)·ε_half) of orthogonal, so convergence takes a handful of
// iterations and the final accuracy is that of the float64 iteration — this
// is how the half-precision factorization reaches double-precision results.
//
// Iteration stops when ‖s_k‖ <= tol·‖s_0‖ (s is the preconditioned
// gradient) or after maxIter iterations.
func CGLS(a *dense.M64, b []float64, r *dense.M64, tol float64, maxIter int) *IterResult {
	return CGLSOperator(AsOperator(a), b, r, tol, maxIter)
}

// CGLSOperator is CGLS for matrix-free operators (Section 2.2: iterative
// solvers only need A·v and Aᵀ·v, which makes them the method of choice
// for large sparse problems). The preconditioner r, when present, is still
// a dense triangular factor — typically from a QR of a dense sketch or of
// a densified subproblem.
func CGLSOperator(op Operator, b []float64, r *dense.M64, tol float64, maxIter int) *IterResult {
	m, n := op.Dims()
	if len(b) != m {
		panic(fmt.Sprintf("lls: rhs length %d, want %d", len(b), m))
	}
	if r != nil && (r.Rows != n || r.Cols != n) {
		panic(fmt.Sprintf("lls: preconditioner is %dx%d, want %dx%d", r.Rows, r.Cols, n, n))
	}
	if tol <= 0 {
		tol = DefaultTol
	}
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}

	x := make([]float64, n)
	res := append([]float64(nil), b...) // residual r_k = b − A·x
	s := make([]float64, n)             // preconditioned gradient R⁻ᵀ·Aᵀ·r
	op.ApplyTranspose(s, res)
	if r != nil {
		blas.Trsv(blas.Upper, blas.Trans, blas.NonUnit, r, s)
	}
	p := append([]float64(nil), s...)
	gamma := dot64(s, s)
	norms0 := sqrt(gamma)
	out := &IterResult{X: x, GradNorms: []float64{norms0}}
	if norms0 == 0 {
		out.Converged = true
		return out
	}

	// Best-iterate tracking: once the preconditioned gradient reaches the
	// numerical floor of the float64 iteration, further CG steps lose
	// conjugacy and can diverge exponentially. We keep the best solution
	// seen and bail out when the gradient norm has grown well past it
	// (divergence) or has stopped improving for a full window (stagnation).
	bestX := append([]float64(nil), x...)
	bestNorm := norms0
	sinceImproved := 0

	t := make([]float64, n) // t = R⁻¹·p
	q := make([]float64, m) // q = A·t
	for k := 0; k < maxIter; k++ {
		copy(t, p)
		if r != nil {
			blas.Trsv(blas.Upper, blas.NoTrans, blas.NonUnit, r, t)
		}
		op.Apply(q, t)
		delta := dot64(q, q)
		if delta == 0 {
			break
		}
		alpha := gamma / delta
		blas.Axpy(alpha, t, x)
		blas.Axpy(-alpha, q, res)
		op.ApplyTranspose(s, res)
		if r != nil {
			blas.Trsv(blas.Upper, blas.Trans, blas.NonUnit, r, s)
		}
		gamma1 := gamma
		gamma = dot64(s, s)
		norms := sqrt(gamma)
		out.GradNorms = append(out.GradNorms, norms)
		out.Iterations = k + 1
		if norms < bestNorm {
			bestNorm = norms
			copy(bestX, x)
			sinceImproved = 0
		} else {
			sinceImproved++
		}
		if norms <= tol*norms0 {
			out.Converged = true
			break
		}
		if norms > DivergenceGuard*bestNorm {
			// Numerical floor reached; restore the best iterate.
			out.Diverged = true
			copy(x, bestX)
			break
		}
		if sinceImproved >= StagnationWindow {
			// A full window without progress: stop and keep the best.
			out.Stagnated = true
			copy(x, bestX)
			break
		}
		beta := gamma / gamma1
		for i := range p {
			p[i] = s[i] + beta*p[i]
		}
	}
	if !out.Converged && bestNorm < out.GradNorms[len(out.GradNorms)-1] {
		copy(x, bestX)
	}
	return out
}

func dot64(x, y []float64) float64 { return blas.Dot(x, y) }

func sqrt(x float64) float64 { return math.Sqrt(x) }
