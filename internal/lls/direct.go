// Package lls implements the linear least squares solvers evaluated in
// Sections 3.2 and 4.2 of the paper:
//
//   - the QR direct solver x = R⁻¹·(Qᵀb), instantiated at float32
//     (SCuSOLVE = SGEQRF+SORMQR+STRSM) and float64 (DCuSOLVE) as the
//     baselines, and over an RGSQRF factorization as the half-precision
//     direct solver of Figure 9;
//   - CGLS with the RGSQRF R factor as right preconditioner (Algorithm 3),
//     the paper's novel refinement that recovers double-precision accuracy;
//   - preconditioned LSQR and classical QR-based iterative refinement as
//     the alternatives discussed in Sections 2.2 and 3.2.3;
//   - the normal-equations/Cholesky method as the cautionary baseline.
package lls

import (
	"fmt"

	"tcqr/internal/blas"
	"tcqr/internal/chol"
	"tcqr/internal/dense"
	"tcqr/internal/house"
	"tcqr/internal/rgs"
)

// DirectQR solves min ‖Ax − b‖ with a Householder QR direct solve in the
// working precision of T: factor A, apply Qᵀ to b, back-substitute with R.
// Instantiated at float32 this is the paper's SCuSOLVE baseline
// (SGEQRF+SORMQR+STRSM); at float64 it is DCuSOLVE.
func DirectQR[T dense.Float](a *dense.Matrix[T], b []T) []T {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("lls: DirectQR needs m >= n, got %dx%d", m, n))
	}
	if len(b) != m {
		panic(fmt.Sprintf("lls: rhs length %d, want %d", len(b), m))
	}
	qr := house.Factor(a, 0)
	w := append([]T(nil), b...)
	qr.QTVec(w) // w = Qᵀb (full m vector; first n entries matter)
	x := w[:n:n]
	blas.Trsv(blas.Upper, blas.NoTrans, blas.NonUnit, qr.Factored.View(0, 0, n, n), x)
	return x
}

// DirectRGS solves min ‖Ax − b‖ using an existing RGSQRF factorization:
// x = R⁻¹·(Qᵀb) in float32. This is the "RGSQRF direct solver" line of
// Figure 9 — about two orders of magnitude less accurate than SCuSOLVE,
// which is why the CGLS refinement exists.
func DirectRGS(f *rgs.Result, b []float32) []float32 {
	m, n := f.Q.Rows, f.Q.Cols
	if len(b) != m {
		panic(fmt.Sprintf("lls: rhs length %d, want %d", len(b), m))
	}
	x := make([]float32, n)
	blas.Gemv(blas.Trans, 1, f.Q, b, 0, x)
	blas.Trsv(blas.Upper, blas.NoTrans, blas.NonUnit, f.R, x)
	return x
}

// NormalEquations solves min ‖Ax − b‖ by Cholesky on AᵀA. It squares the
// condition number and is expected to fail (ErrNotPositiveDefinite) once
// κ(A)² exceeds the working precision — included as the Section 2.2
// baseline.
func NormalEquations[T dense.Float](a *dense.Matrix[T], b []T) ([]T, error) {
	n := a.Cols
	g := dense.New[T](n, n)
	blas.Syrk(blas.Lower, blas.Trans, 1, a, 0, g)
	x := make([]T, n)
	blas.Gemv(blas.Trans, 1, a, b, 0, x)
	if err := chol.Potrf(g); err != nil {
		return nil, fmt.Errorf("lls: normal equations: %w", err)
	}
	chol.PotrsVec(g, x)
	return x, nil
}
