package lls

import (
	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

// Operator is the matrix-free interface of Section 2.2: an iterative least
// squares solver only ever needs A·v and Aᵀ·v. internal/sparse.CSR
// satisfies it; denseOperator adapts dense matrices.
type Operator interface {
	// Dims returns (rows, cols).
	Dims() (rows, cols int)
	// Apply computes dst = A·src (len(dst) = rows, len(src) = cols).
	Apply(dst, src []float64)
	// ApplyTranspose computes dst = Aᵀ·src.
	ApplyTranspose(dst, src []float64)
}

// denseOperator adapts a dense matrix to the Operator interface.
type denseOperator struct{ m *dense.M64 }

// AsOperator wraps a dense matrix as an Operator.
func AsOperator(m *dense.M64) Operator { return denseOperator{m} }

func (d denseOperator) Dims() (int, int) { return d.m.Rows, d.m.Cols }

func (d denseOperator) Apply(dst, src []float64) {
	blas.Gemv(blas.NoTrans, 1, d.m, src, 0, dst)
}

func (d denseOperator) ApplyTranspose(dst, src []float64) {
	blas.Gemv(blas.Trans, 1, d.m, src, 0, dst)
}
