package lls

import (
	"fmt"
	"math"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/hazard"
	"tcqr/internal/rgs"
)

// RefineQR performs classical iterative refinement for least squares (the
// "iterative refinement in the literature" of Section 3.2.3, in its simple
// residual-correction form): starting from the low-precision direct
// solution, repeatedly compute the residual in float64 and solve for a
// correction with the same float32 QR factors. It converges when
// κ(A)·ε_half ≪ 1 but, unlike the Krylov refinement, stalls once the
// correction equation itself is too inaccurate — which is why the paper
// prefers CGLS.
func RefineQR(f *rgs.Result, a *dense.M64, b []float64, tol float64, maxIter int) *IterResult {
	m, n := a.Rows, a.Cols
	if tol <= 0 {
		tol = DefaultTol
	}
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	x := make([]float64, n)
	res := make([]float64, m)
	grad := make([]float64, n)
	r32 := make([]float32, m)
	out := &IterResult{X: x}
	var grad0 float64
	for k := 0; k <= maxIter; k++ {
		// res = b − A·x, gradient g = Aᵀ·res, both in float64.
		copy(res, b)
		blas.Gemv(blas.NoTrans, -1, a, x, 1, res)
		blas.Gemv(blas.Trans, 1, a, res, 0, grad)
		g := blas.Nrm2(grad)
		out.GradNorms = append(out.GradNorms, g)
		if k == 0 {
			grad0 = g
		}
		if g <= tol*grad0 || grad0 == 0 {
			out.Converged = true
			break
		}
		if k == maxIter {
			break
		}
		// Correction d = R⁻¹·Qᵀ·res with the float32 factors.
		for i, v := range res {
			r32[i] = float32(v)
		}
		d := DirectRGS(f, r32)
		for i := range x {
			x[i] += float64(d[i])
		}
		out.Iterations = k + 1
	}
	return out
}

// Method selects the refinement engine used by Solve.
type Method int

const (
	// MethodCGLS is Algorithm 3 — the paper's solver.
	MethodCGLS Method = iota
	// MethodLSQR swaps in preconditioned LSQR.
	MethodLSQR
	// MethodRefine uses classical residual-correction refinement.
	MethodRefine
	// MethodDirect returns the float32 direct solution without refinement
	// (the "RGSQRF direct solver" of Figure 9).
	MethodDirect
)

// String names the method as the paper does.
func (m Method) String() string {
	switch m {
	case MethodCGLS:
		return "RGSQRF+CGLS"
	case MethodLSQR:
		return "RGSQRF+LSQR"
	case MethodRefine:
		return "RGSQRF+IR"
	case MethodDirect:
		return "RGSQRF direct"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// SolveOptions configures Solve.
type SolveOptions struct {
	// QR configures the RGSQRF factorization (engine, panel, safeguards).
	QR rgs.Options
	// Method selects the refinement engine (default CGLS).
	Method Method
	// Tol is the relative refinement tolerance (default DefaultTol).
	Tol float64
	// MaxIter caps refinement iterations (default DefaultMaxIter).
	MaxIter int
	// FallbackLSQR re-solves with preconditioned LSQR when CGLS stagnates
	// or diverges before converging — the refinement rung of the hazard
	// fallback ladder.
	FallbackLSQR bool
	// Hazards, when non-nil, receives an event for every detected
	// refinement hazard (stagnation, divergence) and every fallback taken.
	Hazards *hazard.Report
}

// Solution is the result of the full RGSQRF-accelerated least squares
// pipeline.
type Solution struct {
	X          []float64
	Iterations int
	Converged  bool
	GradNorms  []float64
	// Factor is the RGSQRF factorization used (for reuse across multiple
	// right-hand sides).
	Factor *rgs.Result
}

// Solve runs the paper's full pipeline on a float64 problem: narrow A to
// float32, factor it with the TensorCore-accelerated RGSQRF, then refine
// min ‖Ax − b‖ to double precision with the selected method.
func Solve(a *dense.M64, b []float64, opts SolveOptions) (*Solution, error) {
	a32 := dense.ToF32(a)
	f, err := rgs.Factor(a32, opts.QR)
	if err != nil {
		return nil, err
	}
	return SolveWithFactor(f, a, b, opts)
}

// SolveWithFactor is Solve with a precomputed factorization (amortizing one
// QR over many right-hand sides).
func SolveWithFactor(f *rgs.Result, a *dense.M64, b []float64, opts SolveOptions) (*Solution, error) {
	if f.Q.Rows != a.Rows || f.Q.Cols != a.Cols {
		return nil, fmt.Errorf("lls: factorization is %dx%d but A is %dx%d: %w", f.Q.Rows, f.Q.Cols, a.Rows, a.Cols, hazard.ErrShape)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("lls: rhs length %d, want %d: %w", len(b), a.Rows, hazard.ErrShape)
	}
	if err := hazard.CheckVec("b", b); err != nil {
		return nil, fmt.Errorf("lls: %w", err)
	}
	switch opts.Method {
	case MethodDirect:
		b32 := make([]float32, len(b))
		for i, v := range b {
			b32[i] = float32(v)
		}
		x32 := DirectRGS(f, b32)
		x := make([]float64, len(x32))
		for i, v := range x32 {
			x[i] = float64(v)
		}
		return &Solution{X: x, Converged: true, Factor: f}, nil
	case MethodRefine:
		res := RefineQR(f, a, b, opts.Tol, opts.MaxIter)
		return fromIter(res, f), nil
	case MethodLSQR:
		res := LSQR(a, b, f.R64(), opts.Tol, opts.MaxIter)
		return fromIter(res, f), nil
	case MethodCGLS:
		res := RefineCGLS(a, b, f.R64(), opts)
		return fromIter(res, f), nil
	}
	return nil, fmt.Errorf("lls: unknown method %d", opts.Method)
}

// RefineCGLS runs the Algorithm 3 CGLS refinement with hazard detection:
// stagnation and divergence are recorded in opts.Hazards, and when
// opts.FallbackLSQR is set a hazardous non-converged CGLS run is retried
// with preconditioned LSQR (keeping whichever result reached the smaller
// final gradient norm). It is shared by the single- and multi-RHS solvers;
// r64 is the float64 preconditioner.
func RefineCGLS(a *dense.M64, b []float64, r64 *dense.M64, opts SolveOptions) *IterResult {
	res := CGLS(a, b, r64, opts.Tol, opts.MaxIter)
	if !res.Stagnated && !res.Diverged {
		return res
	}
	kind, errName := hazard.KindStagnation, "stagnated"
	if res.Diverged {
		kind, errName = hazard.KindDivergence, "diverged"
	}
	detail := fmt.Sprintf("CGLS %s after %d iterations (grad %.3g, best %.3g)",
		errName, res.Iterations, res.GradNorms[len(res.GradNorms)-1], minNorm(res.GradNorms))
	if !opts.FallbackLSQR || res.Converged {
		opts.Hazards.Record(hazard.Event{Kind: kind, Stage: "cgls", Detail: detail, Action: "keep best iterate"})
		return res
	}
	opts.Hazards.Record(hazard.Event{Kind: kind, Stage: "cgls", Detail: detail, Action: "fallback to LSQR"})
	alt := LSQR(a, b, r64, opts.Tol, opts.MaxIter)
	if alt.Converged || finalNorm(alt.GradNorms) < minNorm(res.GradNorms) {
		alt.Stagnated, alt.Diverged = res.Stagnated, res.Diverged
		return alt
	}
	// LSQR did no better; keep the CGLS best iterate.
	opts.Hazards.Record(hazard.Event{Kind: kind, Stage: "lsqr", Detail: "LSQR fallback did not improve", Action: "keep CGLS best iterate"})
	return res
}

func minNorm(norms []float64) float64 {
	best := math.Inf(1)
	for _, v := range norms {
		if v < best {
			best = v
		}
	}
	return best
}

func finalNorm(norms []float64) float64 {
	if len(norms) == 0 {
		return math.Inf(1)
	}
	return norms[len(norms)-1]
}

func fromIter(r *IterResult, f *rgs.Result) *Solution {
	return &Solution{X: r.X, Iterations: r.Iterations, Converged: r.Converged, GradNorms: r.GradNorms, Factor: f}
}
