package lls

import (
	"fmt"
	"runtime"
	"sync"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/hazard"
	"tcqr/internal/house"
	"tcqr/internal/rgs"
)

// DirectQRMulti solves min ‖A·X − B‖ column-wise with a single Householder
// factorization (the LAPACK xGELS pattern): factor once, apply Qᵀ to all
// right-hand sides, then one triangular solve with multiple RHS.
func DirectQRMulti[T dense.Float](a *dense.Matrix[T], b *dense.Matrix[T]) *dense.Matrix[T] {
	m, n := a.Rows, a.Cols
	if b.Rows != m {
		panic(fmt.Sprintf("lls: B has %d rows, want %d", b.Rows, m))
	}
	qr := house.Factor(a, 0)
	w := b.Clone()
	house.Ormqr(blas.Trans, qr.Factored, qr.Tau, w, 0)
	x := w.View(0, 0, n, b.Cols).Clone()
	blas.Trsm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, qr.Factored.View(0, 0, n, n), x)
	return x
}

// MultiSolution is the result of SolveMulti: one column of X per column of
// B, with per-column refinement metadata.
type MultiSolution struct {
	X          *dense.M64
	Iterations []int
	Converged  []bool
	Factor     *rgs.Result
}

// SolveMulti runs the paper's pipeline for many right-hand sides: one
// RGSQRF factorization amortized over all columns of B, then independent
// CGLS refinements running concurrently (each column's Krylov iteration is
// independent given the shared preconditioner R).
func SolveMulti(a *dense.M64, b *dense.M64, opts SolveOptions) (*MultiSolution, error) {
	a32 := dense.ToF32(a)
	f, err := rgs.Factor(a32, opts.QR)
	if err != nil {
		return nil, err
	}
	return SolveMultiWithFactor(f, a, b, opts)
}

// SolveMultiWithFactor is SolveMulti over a precomputed factorization (the
// entry point the public fallback ladder uses, so a recovered factorization
// can be amortized over all right-hand sides). Per-column CGLS hazards are
// recorded in opts.Hazards; the Report is safe for the concurrent columns.
func SolveMultiWithFactor(f *rgs.Result, a *dense.M64, b *dense.M64, opts SolveOptions) (*MultiSolution, error) {
	if b == nil || b.Rows != a.Rows {
		rows := -1
		if b != nil {
			rows = b.Rows
		}
		return nil, fmt.Errorf("lls: B has %d rows but A has %d: %w", rows, a.Rows, hazard.ErrShape)
	}
	if f.Q.Rows != a.Rows || f.Q.Cols != a.Cols {
		return nil, fmt.Errorf("lls: factorization is %dx%d but A is %dx%d: %w", f.Q.Rows, f.Q.Cols, a.Rows, a.Cols, hazard.ErrShape)
	}
	if err := hazard.CheckMatrix("B", b); err != nil {
		return nil, fmt.Errorf("lls: %w", err)
	}
	r64 := f.R64()

	nrhs := b.Cols
	out := &MultiSolution{
		X:          dense.New[float64](a.Cols, nrhs),
		Iterations: make([]int, nrhs),
		Converged:  make([]bool, nrhs),
		Factor:     f,
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for j := 0; j < nrhs; j++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(j int) {
			defer func() { <-sem; wg.Done() }()
			res := RefineCGLS(a, b.Col(j), r64, opts)
			copy(out.X.Col(j), res.X)
			out.Iterations[j] = res.Iterations
			out.Converged[j] = res.Converged
		}(j)
	}
	wg.Wait()
	return out, nil
}
