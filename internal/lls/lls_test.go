package lls

import (
	"math"
	"math/rand"
	"testing"

	"tcqr/internal/accuracy"
	"tcqr/internal/dense"
	"tcqr/internal/matgen"
	"tcqr/internal/rgs"
	"tcqr/internal/sparse"
	"tcqr/internal/tcsim"
)

func problem(seed int64, m, n int, cond float64, dist matgen.Dist, resNorm float64) *matgen.LLSProblem {
	rng := rand.New(rand.NewSource(seed))
	a := matgen.WithCond(rng, m, n, cond, dist)
	return matgen.NewLLSProblem(rng, a, resNorm)
}

func TestDirectQRFloat64(t *testing.T) {
	p := problem(1, 200, 50, 1e3, matgen.Geometric, 0.5)
	x := DirectQR(p.A, p.B)
	if opt := accuracy.LLSOptimality(p.A, x, p.B); opt > 1e-11 {
		t.Errorf("DGEQRF optimality ‖Aᵀ(Ax−b)‖ = %g", opt)
	}
	// Consistent system recovers xTrue.
	pc := problem(2, 100, 30, 10, matgen.Arithmetic, 0)
	xc := DirectQR(pc.A, pc.B)
	for i := range xc {
		if math.Abs(xc[i]-pc.XTrue[i]) > 1e-10 {
			t.Fatalf("x[%d] = %v, want %v", i, xc[i], pc.XTrue[i])
		}
	}
}

func TestDirectQRPrecisionOrdering(t *testing.T) {
	p := problem(3, 300, 80, 1e3, matgen.Arithmetic, 0.1)
	x64 := DirectQR(p.A, p.B)
	a32 := dense.ToF32(p.A)
	b32 := make([]float32, len(p.B))
	for i, v := range p.B {
		b32[i] = float32(v)
	}
	x32 := DirectQR(a32, b32)
	x32w := make([]float64, len(x32))
	for i, v := range x32 {
		x32w[i] = float64(v)
	}
	opt64 := accuracy.LLSOptimality(p.A, x64, p.B)
	opt32 := accuracy.LLSOptimality(p.A, x32w, p.B)
	if opt32 < 100*opt64 {
		t.Errorf("SCuSOLVE (%g) should be far less accurate than DCuSOLVE (%g)", opt32, opt64)
	}
}

// TestFigure9Ordering reproduces the Figure 9 accuracy ladder at test
// scale: RGSQRF direct ≫ SCuSOLVE > RGSQRF+CGLS ≈ DCuSOLVE.
func TestFigure9Ordering(t *testing.T) {
	p := problem(4, 512, 128, 1e3, matgen.Cluster2, 0.2)

	// RGSQRF direct (half precision factors).
	sol, err := Solve(p.A, p.B, SolveOptions{Method: MethodDirect, QR: rgs.Options{Cutoff: 32}})
	if err != nil {
		t.Fatal(err)
	}
	optRGS := accuracy.LLSOptimality(p.A, sol.X, p.B)

	// SCuSOLVE.
	a32 := dense.ToF32(p.A)
	b32 := make([]float32, len(p.B))
	for i, v := range p.B {
		b32[i] = float32(v)
	}
	x32 := DirectQR(a32, b32)
	x32w := make([]float64, len(x32))
	for i, v := range x32 {
		x32w[i] = float64(v)
	}
	optS := accuracy.LLSOptimality(p.A, x32w, p.B)

	// DCuSOLVE.
	optD := accuracy.LLSOptimality(p.A, DirectQR(p.A, p.B), p.B)

	// RGSQRF+CGLS.
	solC, err := Solve(p.A, p.B, SolveOptions{QR: rgs.Options{Cutoff: 32}})
	if err != nil {
		t.Fatal(err)
	}
	optC := accuracy.LLSOptimality(p.A, solC.X, p.B)

	if optRGS < 10*optS {
		t.Errorf("RGSQRF direct (%g) should be well below SCuSOLVE accuracy (%g)", optRGS, optS)
	}
	if optC > 100*optD {
		t.Errorf("RGSQRF+CGLS (%g) should reach DCuSOLVE accuracy (%g)", optC, optD)
	}
	if !solC.Converged {
		t.Error("CGLS did not converge")
	}
	if solC.Iterations > 50 {
		t.Errorf("CGLS took %d iterations on κ=10³", solC.Iterations)
	}
}

// TestCGLSIterationsGrowWithCond reproduces the Section 4.2 observation
// that harder spectra need more refinement iterations.
func TestCGLSIterationsGrowWithCond(t *testing.T) {
	iters := func(cond float64) int {
		p := problem(5, 512, 128, cond, matgen.Geometric, 0.1)
		sol, err := Solve(p.A, p.B, SolveOptions{QR: rgs.Options{Cutoff: 32}, Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		return sol.Iterations
	}
	easy := iters(1e1)
	hard := iters(1e5)
	if hard <= easy {
		t.Errorf("iterations should grow with cond: κ=10 → %d, κ=1e5 → %d", easy, hard)
	}
}

func TestCGLSPreconditioningHelps(t *testing.T) {
	p := problem(6, 512, 128, 1e4, matgen.Geometric, 0.1)
	a32 := dense.ToF32(p.A)
	f, err := rgs.Factor(a32, rgs.Options{Cutoff: 32})
	if err != nil {
		t.Fatal(err)
	}
	pre := CGLS(p.A, p.B, dense.ToF64(f.R), 1e-12, 500)
	plain := CGLS(p.A, p.B, nil, 1e-12, 500)
	if !pre.Converged {
		t.Fatal("preconditioned CGLS did not converge")
	}
	if plain.Converged && plain.Iterations <= pre.Iterations {
		t.Errorf("preconditioning should cut iterations: plain %d, preconditioned %d",
			plain.Iterations, pre.Iterations)
	}
}

func TestLSQRMatchesCGLS(t *testing.T) {
	p := problem(7, 400, 100, 1e3, matgen.Arithmetic, 0.3)
	a32 := dense.ToF32(p.A)
	f, err := rgs.Factor(a32, rgs.Options{Cutoff: 32})
	if err != nil {
		t.Fatal(err)
	}
	r64 := dense.ToF64(f.R)
	c := CGLS(p.A, p.B, r64, 1e-13, 200)
	l := LSQR(p.A, p.B, r64, 1e-13, 200)
	if !c.Converged || !l.Converged {
		t.Fatalf("convergence: cgls=%v lsqr=%v", c.Converged, l.Converged)
	}
	optC := accuracy.LLSOptimality(p.A, c.X, p.B)
	optL := accuracy.LLSOptimality(p.A, l.X, p.B)
	if optL > 1e3*optC && optL > 1e-9 {
		t.Errorf("LSQR (%g) far from CGLS (%g)", optL, optC)
	}
}

func TestRefineQRConverges(t *testing.T) {
	// Classical residual-correction refinement improves the solution by
	// several orders of magnitude but stalls at the accuracy floor of the
	// float32 correction solve — the limitation that motivates the paper's
	// CGLS approach. Ask for a tolerance above that floor and check both
	// the convergence and the stall.
	p := problem(8, 400, 100, 1e2, matgen.Arithmetic, 0.2)
	sol, err := Solve(p.A, p.B, SolveOptions{Method: MethodRefine, QR: rgs.Options{Cutoff: 32}, Tol: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged {
		t.Fatalf("refinement did not converge in %d iterations (grads %v)", sol.Iterations, sol.GradNorms[:min(5, len(sol.GradNorms))])
	}
	if opt := accuracy.LLSOptimality(p.A, sol.X, p.B); opt > 1e-4 {
		t.Errorf("refined optimality %g", opt)
	}
	// The stall: demanding double-precision accuracy must NOT converge,
	// while CGLS on the same problem does. This is the paper's motivation
	// for the Krylov refinement.
	stall := RefineQR(sol.Factor, p.A, p.B, 1e-12, 100)
	if stall.Converged {
		t.Error("classical refinement unexpectedly reached double precision")
	}
	cg := CGLS(p.A, p.B, dense.ToF64(sol.Factor.R), 1e-12, 100)
	if !cg.Converged {
		t.Error("CGLS should reach double precision where refinement stalls")
	}
}

func TestNormalEquations(t *testing.T) {
	// Well-conditioned: fine in float64.
	p := problem(9, 200, 40, 10, matgen.Arithmetic, 0.1)
	x, err := NormalEquations(p.A, p.B)
	if err != nil {
		t.Fatal(err)
	}
	if opt := accuracy.LLSOptimality(p.A, x, p.B); opt > 1e-10 {
		t.Errorf("normal equations optimality %g", opt)
	}
	// Ill-conditioned in float32: κ² overwhelms ε₃₂; expect failure or a
	// much less accurate result than QR (this is why the paper uses QR).
	ph := problem(10, 300, 64, 3e4, matgen.Geometric, 0.1)
	a32 := dense.ToF32(ph.A)
	b32 := make([]float32, len(ph.B))
	for i, v := range ph.B {
		b32[i] = float32(v)
	}
	xn, err := NormalEquations(a32, b32)
	if err == nil {
		xw := make([]float64, len(xn))
		for i, v := range xn {
			xw[i] = float64(v)
		}
		optNE := accuracy.LLSOptimality(ph.A, xw, ph.B)
		xq := DirectQR(a32, b32)
		xqw := make([]float64, len(xq))
		for i, v := range xq {
			xqw[i] = float64(v)
		}
		optQR := accuracy.LLSOptimality(ph.A, xqw, ph.B)
		if optNE < optQR {
			t.Errorf("normal equations (%g) should not beat QR (%g) at κ=3e4 in float32", optNE, optQR)
		}
	}
}

func TestSolveWithFactorReuse(t *testing.T) {
	p := problem(11, 300, 64, 1e2, matgen.Cluster2, 0.1)
	a32 := dense.ToF32(p.A)
	f, err := rgs.Factor(a32, rgs.Options{Cutoff: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Two different right-hand sides against one factorization.
	for seed := int64(0); seed < 2; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		b := make([]float64, 300)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		sol, err := SolveWithFactor(f, p.A, b, SolveOptions{Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		if opt := accuracy.LLSOptimality(p.A, sol.X, b); opt > 1e-9 {
			t.Errorf("rhs %d: optimality %g", seed, opt)
		}
	}
	// Shape mismatch is rejected.
	if _, err := SolveWithFactor(f, dense.New[float64](10, 5), make([]float64, 10), SolveOptions{}); err == nil {
		t.Error("shape mismatch not rejected")
	}
}

func TestSolveEngineMatters(t *testing.T) {
	// With the FP32 engine, the R factor preconditions better, so CGLS
	// should need no more iterations than with the TC engine.
	p := problem(12, 512, 128, 1e4, matgen.Geometric, 0.1)
	tcSol, err := Solve(p.A, p.B, SolveOptions{QR: rgs.Options{Cutoff: 32, Engine: &tcsim.TensorCore{}}, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	fpSol, err := Solve(p.A, p.B, SolveOptions{QR: rgs.Options{Cutoff: 32, Engine: &tcsim.FP32{}}, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if fpSol.Iterations > tcSol.Iterations {
		t.Errorf("FP32-preconditioned CGLS (%d iters) should not need more than TC (%d iters)",
			fpSol.Iterations, tcSol.Iterations)
	}
}

func TestMethodString(t *testing.T) {
	if MethodCGLS.String() != "RGSQRF+CGLS" || MethodDirect.String() != "RGSQRF direct" {
		t.Error("method names wrong")
	}
}

func TestCGLSZeroRHS(t *testing.T) {
	p := problem(13, 100, 20, 10, matgen.Arithmetic, 0)
	zero := make([]float64, 100)
	res := CGLS(p.A, zero, nil, 1e-12, 50)
	if !res.Converged || res.Iterations != 0 {
		t.Errorf("zero rhs: %+v", res)
	}
	for _, v := range res.X {
		if v != 0 {
			t.Fatal("zero rhs must give zero solution")
		}
	}
}

func TestDirectQRMulti(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	a := matgen.WithCond(rng, 200, 40, 100, matgen.Arithmetic)
	const nrhs = 5
	xTrue := matgen.Normal(rng, 40, nrhs)
	b := dense.New[float64](200, nrhs)
	blasGemmHelper(a, xTrue, b)
	x := DirectQRMulti(a, b)
	if x.Rows != 40 || x.Cols != nrhs {
		t.Fatalf("X shape %dx%d", x.Rows, x.Cols)
	}
	for i := range x.Data {
		if math.Abs(x.Data[i]-xTrue.Data[i]) > 1e-9 {
			t.Fatalf("X[%d] = %v, want %v", i, x.Data[i], xTrue.Data[i])
		}
	}
	// Column-wise agreement with the single-RHS path.
	x0 := DirectQR(a, b.Col(0))
	for i := range x0 {
		if math.Abs(x0[i]-x.At(i, 0)) > 1e-12 {
			t.Fatalf("multi vs single mismatch at %d", i)
		}
	}
}

func blasGemmHelper(a, x, b *dense.M64) {
	for j := 0; j < x.Cols; j++ {
		col := b.Col(j)
		for l := 0; l < a.Cols; l++ {
			v := x.At(l, j)
			ac := a.Col(l)
			for i := range col {
				col[i] += ac[i] * v
			}
		}
	}
}

func TestSolveMulti(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := matgen.WithCond(rng, 400, 96, 1e3, matgen.Cluster2)
	const nrhs = 7
	b := matgen.Normal(rng, 400, nrhs)
	sol, err := SolveMulti(a, b, SolveOptions{QR: rgs.Options{Cutoff: 32}, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < nrhs; j++ {
		if !sol.Converged[j] {
			t.Errorf("rhs %d did not converge (%d iters)", j, sol.Iterations[j])
		}
		if opt := accuracy.LLSOptimality(a, sol.X.Col(j), b.Col(j)); opt > 1e-9 {
			t.Errorf("rhs %d optimality %g", j, opt)
		}
	}
	// Matches the single-RHS pipeline on column 0 (same factor, same CGLS).
	single, err := SolveWithFactor(sol.Factor, a, b.Col(0), SolveOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range single.X {
		if math.Abs(single.X[i]-sol.X.At(i, 0)) > 1e-12 {
			t.Fatalf("multi vs single refined mismatch at %d", i)
		}
	}
	// Shape validation.
	if _, err := SolveMulti(a, dense.New[float64](3, 2), SolveOptions{}); err == nil {
		t.Error("row mismatch not rejected")
	}
}

func TestCGLSOperatorSparse(t *testing.T) {
	// A sparse overdetermined system solved matrix-free, checked against
	// the dense solver on the same data (Section 2.2's use case).
	rng := rand.New(rand.NewSource(50))
	rows, cols := 300, 60
	var trips []sparse.Triplet
	ad := dense.New[float64](rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < 0.1 || i == j { // diagonal band keeps full rank
				v := rng.NormFloat64()
				if i == j {
					v += 3
				}
				trips = append(trips, sparse.Triplet{Row: i, Col: j, Val: v})
				ad.Set(i, j, v)
			}
		}
	}
	sp, err := sparse.FromTriplets(rows, cols, trips)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, rows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	spRes := CGLSOperator(sp, b, nil, 1e-12, 2000)
	dRes := CGLS(ad, b, nil, 1e-12, 2000)
	if !spRes.Converged || !dRes.Converged {
		t.Fatalf("convergence: sparse=%v dense=%v", spRes.Converged, dRes.Converged)
	}
	for i := range spRes.X {
		if math.Abs(spRes.X[i]-dRes.X[i]) > 1e-8 {
			t.Fatalf("x[%d]: sparse %v vs dense %v", i, spRes.X[i], dRes.X[i])
		}
	}
	// LSQR operator path agrees too.
	lRes := LSQROperator(sp, b, nil, 1e-12, 2000)
	if !lRes.Converged {
		t.Fatal("LSQR operator did not converge")
	}
	if opt := accuracy.LLSOptimality(ad, lRes.X, b); opt > 1e-7 {
		t.Errorf("LSQR operator optimality %g", opt)
	}
}

func TestCGLSOperatorWithDensePreconditioner(t *testing.T) {
	// A sparse ill-conditioned operator preconditioned by the R factor of
	// a *densified* copy put through RGSQRF — the paper's preconditioning
	// idea transplanted to the matrix-free setting.
	rng := rand.New(rand.NewSource(51))
	rows, cols := 400, 48
	a := matgen.WithCond(rng, rows, cols, 1e4, matgen.Geometric)
	// Densified → fp16-engine QR → R.
	f, err := rgs.Factor(dense.ToF32(a), rgs.Options{Cutoff: 16})
	if err != nil {
		t.Fatal(err)
	}
	r64 := dense.ToF64(f.R)
	b := make([]float64, rows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	op := AsOperator(a)
	pre := CGLSOperator(op, b, r64, 1e-12, 200)
	plain := CGLSOperator(op, b, nil, 1e-12, 2000)
	if !pre.Converged {
		t.Fatal("preconditioned operator CGLS did not converge")
	}
	if plain.Converged && plain.Iterations <= pre.Iterations {
		t.Errorf("preconditioning should cut iterations: %d vs %d", plain.Iterations, pre.Iterations)
	}
}
