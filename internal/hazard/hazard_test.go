package hazard

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"tcqr/internal/dense"
)

func TestPolicyAndKindStrings(t *testing.T) {
	if Fail.String() != "fail" || Fallback.String() != "fallback" {
		t.Errorf("policy names: %q %q", Fail, Fallback)
	}
	if s := Policy(42).String(); s != "Policy(42)" {
		t.Errorf("unknown policy: %q", s)
	}
	want := map[Kind]string{
		KindNonFinite:     "non-finite",
		KindOverflow:      "fp16-overflow",
		KindBreakdown:     "breakdown",
		KindRankDeficient: "rank-deficient",
		KindStagnation:    "stagnation",
		KindDivergence:    "divergence",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("Kind(%d) = %q, want %q", int(k), k, name)
		}
	}
	if s := Kind(42).String(); s != "Kind(42)" {
		t.Errorf("unknown kind: %q", s)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: KindOverflow, Stage: "engine", Detail: "23 overflows", Action: "retry with column scaling"}
	if got := e.String(); got != "[fp16-overflow] engine: 23 overflows -> retry with column scaling" {
		t.Errorf("event render: %q", got)
	}
	// Detection-only events render without the arrow.
	e.Action = ""
	if got := e.String(); got != "[fp16-overflow] engine: 23 overflows" {
		t.Errorf("detection-only render: %q", got)
	}
}

func TestReportNilSafety(t *testing.T) {
	var r *Report
	r.Record(Event{Kind: KindBreakdown}) // must not panic
	if r.Any() || r.Len() != 0 || r.Events() != nil {
		t.Error("nil report should be empty")
	}
}

func TestReportRecordsInOrder(t *testing.T) {
	r := &Report{}
	r.Record(Event{Stage: "a"})
	r.Record(Event{Stage: "b"})
	ev := r.Events()
	if len(ev) != 2 || ev[0].Stage != "a" || ev[1].Stage != "b" {
		t.Fatalf("events out of order: %v", ev)
	}
	if !r.Any() || r.Len() != 2 {
		t.Error("Any/Len disagree with Events")
	}
	// Events returns a copy: mutating it must not affect the report.
	ev[0].Stage = "mutated"
	if r.Events()[0].Stage != "a" {
		t.Error("Events aliases internal storage")
	}
}

func TestReportConcurrent(t *testing.T) {
	r := &Report{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Kind: KindBreakdown, Stage: fmt.Sprintf("g%d", g)})
				_ = r.Any()
				_ = r.Len()
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Errorf("lost events: %d", r.Len())
	}
}

func TestCheckVec(t *testing.T) {
	if err := CheckVec("x", []float64{1, 2, 3}); err != nil {
		t.Errorf("finite vector rejected: %v", err)
	}
	err := CheckVec("x", []float64{1, math.NaN()})
	if !errors.Is(err, ErrNonFinite) {
		t.Errorf("NaN vector: %v", err)
	}
	if err := CheckVec("x", []float32{float32(math.Inf(-1))}); !errors.Is(err, ErrNonFinite) {
		t.Errorf("Inf vector: %v", err)
	}
	if err := CheckVec[float64]("x", nil); err != nil {
		t.Errorf("empty vector should pass: %v", err)
	}
}

func TestCheckMatrix(t *testing.T) {
	if err := CheckMatrix[float64]("A", nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("nil matrix: %v", err)
	}
	if err := CheckMatrix("A", dense.New[float64](0, 3)); !errors.Is(err, ErrEmpty) {
		t.Errorf("zero rows: %v", err)
	}
	if err := CheckMatrix("A", dense.New[float64](3, 0)); !errors.Is(err, ErrEmpty) {
		t.Errorf("zero cols: %v", err)
	}
	a := dense.New[float32](2, 2)
	if err := CheckMatrix("A", a); err != nil {
		t.Errorf("finite matrix rejected: %v", err)
	}
	a.Set(1, 0, float32(math.Inf(1)))
	err := CheckMatrix("A", a)
	if !errors.Is(err, ErrNonFinite) {
		t.Errorf("Inf matrix: %v", err)
	}
	if !MatrixFinite(dense.New[float64](0, 0)) {
		t.Error("empty matrix should count as finite")
	}
	if MatrixFinite(a) {
		t.Error("Inf matrix reported finite")
	}
}

func TestReportTimings(t *testing.T) {
	var nilRep *Report
	nilRep.RecordTiming("queue", time.Millisecond) // nil-safe no-op
	if got := nilRep.Timings(); got != nil {
		t.Fatalf("nil report returned timings %v", got)
	}

	rep := &Report{}
	rep.RecordTiming("queue", 2*time.Millisecond)
	rep.TimeStage("solve", func() { time.Sleep(time.Millisecond) })
	ts := rep.Timings()
	if len(ts) != 2 {
		t.Fatalf("got %d timings, want 2", len(ts))
	}
	if ts[0].Stage != "queue" || ts[0].D != 2*time.Millisecond {
		t.Fatalf("timing 0 = %+v", ts[0])
	}
	if ts[1].Stage != "solve" || ts[1].D <= 0 {
		t.Fatalf("timing 1 = %+v (TimeStage must measure the closure)", ts[1])
	}
	// The returned slice is a snapshot: appending more records must not
	// mutate what the caller already holds.
	rep.RecordTiming("encode", time.Microsecond)
	if len(ts) != 2 {
		t.Fatalf("snapshot grew to %d entries", len(ts))
	}
}

func TestReportTimingsConcurrent(t *testing.T) {
	rep := &Report{}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				rep.RecordTiming("stage", time.Nanosecond)
				_ = rep.Timings()
			}
		}()
	}
	wg.Wait()
	if got := len(rep.Timings()); got != 16*50 {
		t.Fatalf("got %d timings, want %d", got, 16*50)
	}
}
