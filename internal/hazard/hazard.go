// Package hazard defines the numerical-hazard vocabulary shared by every
// layer of the repository: typed sentinel errors for the failure modes the
// paper's safeguards exist for (§3.3 re-orthogonalization, §3.5 column
// scaling, Algorithm 3 refinement), the policy switch that decides whether a
// detected hazard aborts the computation or triggers the fallback ladder,
// and the Report that records what tripped, what was retried, and which path
// finally produced the result.
//
// The design rule is "no silent garbage": any code path that can produce
// NaN/Inf output, a broken factor, or a stalled iteration must either return
// one of these typed errors or append an Event to the caller's Report. The
// public tcqr package re-exports the errors and the Event type so users can
// program against them with errors.Is.
package hazard

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"tcqr/internal/dense"
)

// Sentinel errors for the hazard classes the pipeline detects. Errors
// returned by the library wrap these, so errors.Is works across the stack.
var (
	// ErrNonFinite reports a NaN or Inf in an input (or, after every
	// fallback was exhausted, in an output).
	ErrNonFinite = errors.New("non-finite value (NaN or Inf)")
	// ErrEmpty reports an input with zero rows or columns where a
	// factorization needs at least one.
	ErrEmpty = errors.New("empty input")
	// ErrShape reports dimensions the algorithm cannot accept (m < n for the
	// tall-skinny factorizations, mismatched right-hand sides, ...).
	ErrShape = errors.New("invalid shape")
	// ErrBreakdown reports a numerical breakdown inside a factorization: a
	// non-SPD Gram matrix in CholQR, a zero or linearly dependent column in
	// a Gram-Schmidt panel, a non-finite factor.
	ErrBreakdown = errors.New("numerical breakdown")
	// ErrOverflow reports fp16 overflow in the simulated engine — the §3.5
	// catastrophe that column scaling exists to prevent.
	ErrOverflow = errors.New("fp16 overflow in neural engine")
	// ErrStagnation reports a refinement iteration that stopped making
	// progress before reaching its tolerance.
	ErrStagnation = errors.New("refinement stagnated")
	// ErrDivergence reports a refinement iteration whose residual grew
	// persistently instead of shrinking.
	ErrDivergence = errors.New("refinement diverged")
	// ErrPrecisionLoss reports a factorization whose measured backward error
	// exceeded the quality gate: the computation succeeded structurally but
	// the engine's arithmetic lost more accuracy than the configuration
	// promises (a half-precision panel at its ~2⁻¹¹ error floor, against an
	// fp32-grade gate). The fallback ladder answers it by escalating to a
	// higher-precision rung — the error-corrected TensorCore before any
	// fp32 fallback.
	ErrPrecisionLoss = errors.New("precision loss beyond tolerance")
)

// Policy decides what a detected hazard does to the computation.
type Policy int

const (
	// Fail (the zero value) turns every detected hazard into a typed error:
	// the computation stops at the first breakdown, overflow, or non-finite
	// value instead of returning garbage.
	Fail Policy = iota
	// Fallback enables the recovery ladder: engine overflow retries with
	// column scaling, then a bfloat16 engine, then plain FP32; panel
	// breakdown escalates along CholQR → CholQR2 → MGS → Householder; CGLS
	// stagnation re-solves with LSQR. Every recovery is recorded in the
	// Report.
	Fallback
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Fail:
		return "fail"
	case Fallback:
		return "fallback"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Kind classifies a detected hazard.
type Kind int

const (
	// KindNonFinite: NaN/Inf encountered.
	KindNonFinite Kind = iota
	// KindOverflow: finite operands became ±Inf in the fp16 engine.
	KindOverflow
	// KindBreakdown: a panel factorizer broke down (non-SPD Gram matrix,
	// zero/dependent column, non-finite factor).
	KindBreakdown
	// KindRankDeficient: a zero diagonal in R revealed dependent columns.
	KindRankDeficient
	// KindStagnation: refinement stopped improving before its tolerance.
	KindStagnation
	// KindDivergence: refinement residuals grew past the divergence guard.
	KindDivergence
	// KindTransient: a transient internal failure in the serving layer — a
	// recovered compute panic or an injected fault — that was retried or
	// degraded around rather than surfaced as a numerical result. Recorded
	// so a request's report shows every recovery, not only numerical ones.
	KindTransient
	// KindPrecisionLoss: a structurally successful factorization failed its
	// backward-error quality gate (half-precision arithmetic at its error
	// floor) and was escalated to a higher-precision rung.
	KindPrecisionLoss
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNonFinite:
		return "non-finite"
	case KindOverflow:
		return "fp16-overflow"
	case KindBreakdown:
		return "breakdown"
	case KindRankDeficient:
		return "rank-deficient"
	case KindStagnation:
		return "stagnation"
	case KindDivergence:
		return "divergence"
	case KindTransient:
		return "transient"
	case KindPrecisionLoss:
		return "precision-loss"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds returns every defined hazard kind in declaration order. Metrics
// layers use this to pre-seed per-kind counters (so a scrape always sees the
// full label set) and to normalize untrusted kind strings to a bounded
// vocabulary.
func Kinds() []Kind {
	return []Kind{
		KindNonFinite,
		KindOverflow,
		KindBreakdown,
		KindRankDeficient,
		KindStagnation,
		KindDivergence,
		KindTransient,
		KindPrecisionLoss,
	}
}

// Event records one detected hazard and what was done about it.
type Event struct {
	// Kind classifies the hazard.
	Kind Kind
	// Stage names where it was detected ("factorize", "panel", "cgls", ...).
	Stage string
	// Detail describes the trigger ("23 fp16 overflows", "CholQR: Gram
	// matrix not SPD at column 7", ...).
	Detail string
	// Action records the response ("retry with column scaling", "escalate
	// to MGS", "fallback to LSQR", "fail"). Empty means detection only.
	Action string
}

// String renders the event for logs and CLI output.
func (e Event) String() string {
	s := fmt.Sprintf("[%s] %s: %s", e.Kind, e.Stage, e.Detail)
	if e.Action != "" {
		s += " -> " + e.Action
	}
	return s
}

// Timing is one named pipeline stage duration recorded in a Report. The
// serving layer uses these for its Server-Timing breakdown (queue wait,
// factorize, solve, encode); they ride in the same request-scoped Report
// that carries the hazard events, so there is exactly one per-request
// instrumentation object threaded through the pipeline.
type Timing struct {
	// Stage names the pipeline stage ("queue", "factorize", "solve",
	// "encode", ...).
	Stage string
	// D is the wall-clock duration the stage took.
	D time.Duration
}

// Report accumulates hazard events. The zero value is ready to use; all
// methods are safe for concurrent use (the CAQR tile tree factors panels
// from multiple goroutines) and safe on a nil receiver, so hazard-oblivious
// callers can simply pass nil.
type Report struct {
	mu      sync.Mutex
	events  []Event
	timings []Timing
}

// Record appends an event. No-op on a nil receiver.
func (r *Report) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in detection order.
func (r *Report) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Any reports whether at least one hazard was recorded.
func (r *Report) Any() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events) > 0
}

// Len returns the number of recorded events.
func (r *Report) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// RecordTiming appends a named stage duration. No-op on a nil receiver.
func (r *Report) RecordTiming(stage string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.timings = append(r.timings, Timing{Stage: stage, D: d})
	r.mu.Unlock()
}

// Timings returns a copy of the recorded stage durations in record order.
func (r *Report) Timings() []Timing {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Timing(nil), r.timings...)
}

// TimeStage runs fn and records its wall-clock duration under stage. The
// duration is recorded even when fn panics, so a request-scoped Report
// still accounts for a stage that died.
func (r *Report) TimeStage(stage string, fn func()) {
	start := time.Now()
	defer func() { r.RecordTiming(stage, time.Since(start)) }()
	fn()
}

// CheckVec returns ErrNonFinite (wrapped with the offending index) if x
// holds a NaN or Inf.
func CheckVec[T dense.Float](name string, x []T) error {
	for i, v := range x {
		if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("%s[%d] = %v: %w", name, i, v, ErrNonFinite)
		}
	}
	return nil
}

// CheckMatrix validates a factorization input: it must be non-nil, have at
// least one row and column, and contain only finite values. The returned
// errors wrap ErrEmpty / ErrNonFinite.
func CheckMatrix[T dense.Float](name string, a *dense.Matrix[T]) error {
	if a == nil || a.Rows == 0 || a.Cols == 0 {
		return fmt.Errorf("%s is empty: %w", name, ErrEmpty)
	}
	for j := 0; j < a.Cols; j++ {
		for i, v := range a.Col(j) {
			if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
				return fmt.Errorf("%s(%d,%d) = %v: %w", name, i, j, v, ErrNonFinite)
			}
		}
	}
	return nil
}

// MatrixFinite reports whether every element of a is finite. Unlike
// CheckMatrix it has no opinion on emptiness — an empty matrix is finite.
func MatrixFinite[T dense.Float](a *dense.Matrix[T]) bool {
	for j := 0; j < a.Cols; j++ {
		// v − v is exactly 0 for every finite v and NaN for ±Inf or NaN, so
		// the column scan stays branch-free; a NaN accumulator compares
		// unequal to 0. ~4× faster than per-element IsNaN/IsInf calls, and
		// this runs over full factors on every factorization and update.
		var s T
		for _, v := range a.Col(j) {
			s += v - v
		}
		if s != 0 {
			return false
		}
	}
	return true
}
