// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4). Each experiment function returns a structured
// result with a Render method that prints the same rows/series the paper
// reports; cmd/tcqr-tables drives them from the command line and the root
// bench suite wraps them in testing.B benchmarks.
//
// Two kinds of result are produced, mirroring DESIGN.md:
//
//   - accuracy experiments (Figures 3, 4, 9; Table 4; the §3.5 scaling
//     demonstration) run the real algorithms on the software neural engine
//     at a configurable scale (the paper's 32768×16384 is impractical for
//     a bit-faithful software fp16 pipeline; accuracy behaviour is governed
//     by κ and the unit roundoffs, not by absolute size);
//   - performance experiments (Tables 2-3; Figures 1, 2, 5, 6, 7, 8) come
//     from the calibrated V100 model in internal/perfmodel, composed
//     exactly as the paper's own estimate formulas compose them. Figure 8
//     combines the two: iteration counts are measured numerically, times
//     are modelled at paper scale.
package experiments

import (
	"fmt"
	"strings"
)

// Scale selects the problem sizes for the numeric (accuracy) experiments.
type Scale struct {
	// M×N is the matrix size for the QR accuracy experiments.
	M, N int
	// LLSM×LLSN is the size for least squares experiments.
	LLSM, LLSN int
	// SVDM×SVDN is the size for the QR-SVD experiment.
	SVDM, SVDN int
	// Cutoff is the RGSQRF recursion cutoff (scaled down with the sizes).
	Cutoff int
	// Seed makes every experiment deterministic.
	Seed int64
}

// QuickScale runs in a few seconds — used by tests and benchmarks.
var QuickScale = Scale{M: 512, N: 128, LLSM: 512, LLSN: 128, SVDM: 1024, SVDN: 64, Cutoff: 32, Seed: 42}

// DefaultScale is the recommended reproduction scale (about a minute).
var DefaultScale = Scale{M: 2048, N: 512, LLSM: 2048, LLSN: 512, SVDM: 8192, SVDN: 256, Cutoff: 64, Seed: 42}

// FullScale pushes the software simulator as far as is sensible.
var FullScale = Scale{M: 4096, N: 1024, LLSM: 4096, LLSN: 1024, SVDM: 16384, SVDN: 256, Cutoff: 128, Seed: 42}

// table is a small helper for aligned text rendering.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func e(x float64) string  { return fmt.Sprintf("%.2e", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func ms(sec float64) string {
	return fmt.Sprintf("%.1f", sec*1e3)
}
