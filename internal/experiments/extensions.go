package experiments

import (
	"fmt"
	"math/rand"

	"tcqr/internal/accuracy"
	"tcqr/internal/dense"
	"tcqr/internal/gram"
	"tcqr/internal/house"
	"tcqr/internal/lu"
	"tcqr/internal/matgen"
	"tcqr/internal/rgs"
	"tcqr/internal/tcsim"
)

// GrowthResult makes the §3.5 footnote executable — "once the initial
// matrix is properly scaled then all intermediate operations [of QR] will
// not overflow. Note that on the contrary, LU factorization does not
// guarantee this." Both factorizations run on the TensorCore engine over
// the Wilkinson growth matrix, whose entries are all in {−1, 0, 1} yet
// whose Gaussian elimination grows like 2^(n−1).
type GrowthResult struct {
	N int
	// LU on the TC engine.
	LUOverflows int64
	LUPoisoned  bool
	LUGrowth    float64 // measured with the FP32 engine for reference
	// RGSQRF (column-scaled) on the TC engine.
	QROverflows     int64
	QRBackwardError float64
}

// Growth runs the comparison at a size where 2^(n−1) ≫ 65504.
func Growth(sc Scale) *GrowthResult {
	n := 96
	a := dense.New[float32](n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
		a.Set(i, n-1, 1)
		for j := 0; j < i; j++ {
			a.Set(i, j, -1)
		}
	}
	out := &GrowthResult{N: n}

	// Reference growth with a full-precision engine.
	if f, err := lu.Factor(a, lu.Options{}); err == nil {
		out.LUGrowth = f.GrowthFactor(a)
	}

	// LU with the TensorCore in the trailing update.
	luEng := &tcsim.TensorCore{TrackSpecials: true}
	if f, err := lu.Factor(a, lu.Options{Engine: luEng, BlockSize: 16}); err == nil {
		out.LUPoisoned = f.LU.HasNaN()
	} else {
		out.LUPoisoned = true // breakdown on an overflowed pivot
	}
	out.LUOverflows = luEng.Stats().Overflows

	// Column-scaled RGSQRF with the TensorCore.
	qrEng := &tcsim.TensorCore{TrackSpecials: true}
	res, err := rgs.Factor(a, rgs.Options{Cutoff: 16, Engine: qrEng})
	if err != nil {
		panic(err)
	}
	out.QROverflows = qrEng.Stats().Overflows
	out.QRBackwardError = accuracy.BackwardError(a, res.Q, res.R)
	return out
}

// Render formats the growth comparison.
func (r *GrowthResult) Render() string {
	return fmt.Sprintf(`Section 3.5 extension: elimination growth vs orthogonal transforms on the neural engine
Wilkinson growth matrix, n=%d, every input element in {-1, 0, 1}:
  LU growth factor (FP32 reference) : %.3g  (~2^(n-1))
  TC-LU: %d fp16 operand overflows, result poisoned: %v
  TC-RGSQRF (scaled): %d overflows, backward error %s
conclusion: QR's intermediates stay bounded by the preserved column norms;
LU's grow past the binary16 range even from unit-size inputs — the paper's
"LU factorization does not guarantee this".
`, r.N, r.LUGrowth, r.LUOverflows, r.LUPoisoned, r.QROverflows, e(r.QRBackwardError))
}

// OrthoMethodsResult compares the loss of orthogonality of every
// orthogonalization method in the repository against κ(A), tying together
// §3.6's error-bound discussion (CGS ∝ κ², MGS ∝ κ) and the related-work
// contrast with CholeskyQR (∝ κ², breakdown at κ² ≈ 1/ε).
type OrthoMethodsResult struct {
	Scale Scale
	Conds []float64
	// Orthogonality ‖I − QᵀQ‖ per method; -1 marks a breakdown.
	SGEQRF, MGS, CGS, CholQR, CholQR2, RGSQRF, ReOrtho []float64
}

// OrthoMethods runs the sweep.
func OrthoMethods(sc Scale) *OrthoMethodsResult {
	out := &OrthoMethodsResult{Scale: sc, Conds: []float64{1e1, 1e2, 1e3, 1e4, 1e5}}
	n := min(sc.N, 64) // keep the O(mn²) sweep cheap across 7 methods
	for _, cond := range out.Conds {
		rng := rand.New(rand.NewSource(sc.Seed))
		a := dense.ToF32(matgen.WithCond(rng, sc.M, n, cond, matgen.Geometric))

		qr := house.Factor(a, 0)
		out.SGEQRF = append(out.SGEQRF, accuracy.OrthoError(qr.Q()))

		qm := a.Clone()
		rm := dense.New[float32](n, n)
		gram.MGS(qm, rm)
		out.MGS = append(out.MGS, accuracy.OrthoError(qm))

		qc := a.Clone()
		rc := dense.New[float32](n, n)
		gram.CGS(qc, rc)
		out.CGS = append(out.CGS, accuracy.OrthoError(qc))

		if q, _, err := gram.CholQR(a); err == nil {
			out.CholQR = append(out.CholQR, accuracy.OrthoError(q))
		} else {
			out.CholQR = append(out.CholQR, -1)
		}
		if q, _, err := gram.CholQR2(a); err == nil {
			out.CholQR2 = append(out.CholQR2, accuracy.OrthoError(q))
		} else {
			out.CholQR2 = append(out.CholQR2, -1)
		}

		res, err := rgs.Factor(a, rgs.Options{Cutoff: 16})
		if err != nil {
			panic(err)
		}
		out.RGSQRF = append(out.RGSQRF, accuracy.OrthoError(res.Q))

		reo, err := rgs.Factor(a, rgs.Options{Cutoff: 16, ReOrthogonalize: true})
		if err != nil {
			panic(err)
		}
		out.ReOrtho = append(out.ReOrtho, accuracy.OrthoError(reo.Q))
	}
	return out
}

// Render formats the method sweep.
func (r *OrthoMethodsResult) Render() string {
	t := &table{header: []string{"cond(A)", "SGEQRF", "MGS", "CGS", "CholQR", "CholQR2", "RGSQRF", "RGSQRF-ReOrtho"}}
	cell := func(x float64) string {
		if x < 0 {
			return "breakdown"
		}
		return e(x)
	}
	for i, c := range r.Conds {
		t.add(e(c), cell(r.SGEQRF[i]), cell(r.MGS[i]), cell(r.CGS[i]),
			cell(r.CholQR[i]), cell(r.CholQR2[i]), cell(r.RGSQRF[i]), cell(r.ReOrtho[i]))
	}
	return fmt.Sprintf(`Section 3.6 extension: loss of orthogonality ‖I−QᵀQ‖ across methods, %dx%d, geometric distribution
%sexpected slopes: SGEQRF flat; MGS, RGSQRF ∝ κ; CGS, CholQR ∝ κ² (CholQR breaks down at κ² ≈ 1/ε₃₂);
CholQR2 and RGSQRF-ReOrtho flat where they survive.
`, r.Scale.M, min(r.Scale.N, 64), t.String())
}
