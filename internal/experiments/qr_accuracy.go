package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"tcqr/internal/accuracy"
	"tcqr/internal/dense"
	"tcqr/internal/f16"
	"tcqr/internal/house"
	"tcqr/internal/matgen"
	"tcqr/internal/rgs"
	"tcqr/internal/tcsim"
)

// qrConds is the condition-number sweep of Figures 3 and 4.
var qrConds = []float64{1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7}

// Fig3Result reproduces Figure 3: QR backward error vs cond(A) for RGSQRF
// (half precision engine) and SGEQRF (single precision), SVD arithmetic
// distribution. Both curves are flat in κ, sitting at their respective
// working precisions.
type Fig3Result struct {
	Scale  Scale
	Conds  []float64
	RGSQRF []float64
	SGEQRF []float64
}

// Fig3 runs the backward error sweep at the given scale.
func Fig3(sc Scale) *Fig3Result {
	r := &Fig3Result{Scale: sc, Conds: qrConds}
	for _, cond := range qrConds {
		rng := rand.New(rand.NewSource(sc.Seed))
		a := dense.ToF32(matgen.WithCond(rng, sc.M, sc.N, cond, matgen.Arithmetic))
		res, err := rgs.Factor(a, rgs.Options{Cutoff: sc.Cutoff})
		if err != nil {
			panic(err)
		}
		r.RGSQRF = append(r.RGSQRF, accuracy.BackwardError(a, res.Q, res.R))

		qr := house.Factor(a, 0)
		r.SGEQRF = append(r.SGEQRF, accuracy.BackwardError(a, qr.Q(), qr.R()))
	}
	return r
}

// Render formats the Figure 3 series.
func (r *Fig3Result) Render() string {
	t := &table{header: []string{"cond(A)", "RGSQRF (TC)", "SGEQRF (fp32)"}}
	for i, c := range r.Conds {
		t.add(e(c), e(r.RGSQRF[i]), e(r.SGEQRF[i]))
	}
	return fmt.Sprintf("Figure 3: backward error ‖A−QR‖/‖A‖ vs cond(A), %dx%d, SVD arithmetic distribution\n%sreference: half-precision unit roundoff %.1e, single %.1e\n",
		r.Scale.M, r.Scale.N, t.String(), f16.Eps, f16.EpsF32)
}

// Fig4Result reproduces Figure 4: orthogonality ‖I−QᵀQ‖ vs cond(A) for
// SGEQRF (flat), RGSQRF (grows ∝ κ) and RGSQRF-ReOrtho (flat again).
type Fig4Result struct {
	Scale   Scale
	Conds   []float64
	SGEQRF  []float64
	RGSQRF  []float64
	ReOrtho []float64
}

// Fig4 runs the orthogonality sweep.
func Fig4(sc Scale) *Fig4Result {
	r := &Fig4Result{Scale: sc, Conds: qrConds}
	for _, cond := range qrConds {
		rng := rand.New(rand.NewSource(sc.Seed))
		a := dense.ToF32(matgen.WithCond(rng, sc.M, sc.N, cond, matgen.Arithmetic))

		res, err := rgs.Factor(a, rgs.Options{Cutoff: sc.Cutoff})
		if err != nil {
			panic(err)
		}
		r.RGSQRF = append(r.RGSQRF, accuracy.OrthoError(res.Q))

		reo, err := rgs.Factor(a, rgs.Options{Cutoff: sc.Cutoff, ReOrthogonalize: true})
		if err != nil {
			panic(err)
		}
		r.ReOrtho = append(r.ReOrtho, accuracy.OrthoError(reo.Q))

		qr := house.Factor(a, 0)
		r.SGEQRF = append(r.SGEQRF, accuracy.OrthoError(qr.Q()))
	}
	return r
}

// Render formats the Figure 4 series.
func (r *Fig4Result) Render() string {
	t := &table{header: []string{"cond(A)", "SGEQRF", "RGSQRF", "RGSQRF-ReOrtho"}}
	for i, c := range r.Conds {
		t.add(e(c), e(r.SGEQRF[i]), e(r.RGSQRF[i]), e(r.ReOrtho[i]))
	}
	return fmt.Sprintf("Figure 4: orthogonality ‖I−QᵀQ‖ vs cond(A), %dx%d, SVD arithmetic distribution\n%s", r.Scale.M, r.Scale.N, t.String())
}

// ScalingResult demonstrates the Section 3.5 safeguard on a badly scaled
// matrix.
type ScalingResult struct {
	Scale       Scale
	WithScaling struct {
		Overflows     int64
		BackwardError float64
		HasNaN        bool
	}
	WithoutScaling struct {
		Overflows     int64
		BackwardError float64
		HasNaN        bool
	}
}

// Scaling runs the overflow demonstration.
func Scaling(sc Scale) *ScalingResult {
	rng := rand.New(rand.NewSource(sc.Seed))
	a := dense.ToF32(matgen.BadlyScaled(rng, sc.M, sc.N, 7))
	r := &ScalingResult{Scale: sc}

	eng := &tcsim.TensorCore{TrackSpecials: true}
	res, err := rgs.Factor(a, rgs.Options{Cutoff: sc.Cutoff, Engine: eng})
	if err != nil {
		panic(err)
	}
	r.WithScaling.Overflows = eng.Stats().Overflows
	r.WithScaling.BackwardError = accuracy.BackwardError(a, res.Q, res.R)
	r.WithScaling.HasNaN = res.Q.HasNaN() || res.R.HasNaN()

	// Without scaling the overflow poisons the factorization; the hazard
	// layer detects that and returns a typed error instead of NaN factors,
	// so the error itself is the catastrophe being demonstrated.
	eng2 := &tcsim.TensorCore{TrackSpecials: true}
	res2, err := rgs.Factor(a, rgs.Options{Cutoff: sc.Cutoff, Engine: eng2, DisableScaling: true})
	r.WithoutScaling.Overflows = eng2.Stats().Overflows
	if err != nil {
		r.WithoutScaling.BackwardError = math.Inf(1)
		r.WithoutScaling.HasNaN = true
	} else {
		r.WithoutScaling.BackwardError = accuracy.BackwardError(a, res2.Q, res2.R)
		r.WithoutScaling.HasNaN = res2.Q.HasNaN() || res2.R.HasNaN()
	}
	return r
}

// Render formats the scaling demonstration.
func (r *ScalingResult) Render() string {
	return fmt.Sprintf(`Section 3.5: automatic column scaling on a badly scaled %dx%d matrix (column norms span ~14 decades)
                    fp16 overflows   backward error   Inf/NaN in result
with scaling        %-15d  %-15s  %v
without scaling     %-15d  %-15s  %v
`, r.Scale.M, r.Scale.N,
		r.WithScaling.Overflows, e(r.WithScaling.BackwardError), r.WithScaling.HasNaN,
		r.WithoutScaling.Overflows, e(r.WithoutScaling.BackwardError), r.WithoutScaling.HasNaN)
}
