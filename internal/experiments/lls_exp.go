package experiments

import (
	"fmt"
	"math/rand"

	"tcqr/internal/accuracy"
	"tcqr/internal/dense"
	"tcqr/internal/lls"
	"tcqr/internal/matgen"
	"tcqr/internal/perfmodel"
	"tcqr/internal/rgs"
)

// MatrixType enumerates the Figure 8 panels (Section 4.2's five matrix
// families, ill-conditioned ones at two condition numbers → 8 panels a–h).
type MatrixType struct {
	Name string
	Cond float64     // 0 for the elementwise families
	Dist matgen.Dist // valid when Cond > 0
	Kind int         // 0 = uniform(0,1), 1 = uniform(-1,1), 2 = normal, 3 = spectral
	// Stress marks the paper's hard case (Section 4.2.2): the geometric
	// distribution at large κ, where CGLS hits the iteration cap before
	// reaching double precision and the speedup evaporates. The paper
	// recommends DCuSOLVE there; the experiment reproduces the blow-up.
	Stress bool
}

// Fig8Panels lists the eight panels of Figure 8.
var Fig8Panels = []MatrixType{
	{Name: "a) uniform(0,1)", Kind: 0},
	{Name: "b) uniform(-1,1)", Kind: 1},
	{Name: "c) normal(0,1)", Kind: 2},
	{Name: "d) geometric k=1e3", Kind: 3, Cond: 1e3, Dist: matgen.Geometric},
	{Name: "e) geometric k=1e6 (stress)", Kind: 3, Cond: 1e6, Dist: matgen.Geometric, Stress: true},
	{Name: "f) arithmetic k=1e3", Kind: 3, Cond: 1e3, Dist: matgen.Arithmetic},
	{Name: "g) arithmetic k=1e6", Kind: 3, Cond: 1e6, Dist: matgen.Arithmetic},
	{Name: "h) cluster2 k=1e6", Kind: 3, Cond: 1e6, Dist: matgen.Cluster2},
}

// generate materializes a panel's matrix at the given size.
func (mt MatrixType) generate(rng *rand.Rand, m, n int) *dense.M64 {
	switch mt.Kind {
	case 0:
		return matgen.Uniform01(rng, m, n)
	case 1:
		return matgen.UniformSym(rng, m, n)
	case 2:
		return matgen.Normal(rng, m, n)
	default:
		return matgen.WithCond(rng, m, n, mt.Cond, mt.Dist)
	}
}

// Fig8Row is one panel of Figure 8: the measured CGLS iteration count (at
// the numeric scale) plugged into the V100 time model at paper scale.
type Fig8Row struct {
	Panel      MatrixType
	Iterations int
	Converged  bool
	Optimality float64
	// Modelled times (ms) at the paper-scale shape.
	RGSQRFCGLSMs, SCuSolveMs, DCuSolveMs float64
	SpeedupS, SpeedupD                   float64
}

// Fig8Result is the whole figure.
type Fig8Result struct {
	Scale          Scale
	PaperM, PaperN float64
	Rows           []Fig8Row
}

// Fig8 measures refinement iteration counts per matrix family at the
// numeric scale and composes paper-scale times from the device model.
func Fig8(sc Scale) *Fig8Result {
	out := &Fig8Result{Scale: sc, PaperM: 32768, PaperN: 16384}
	for _, p := range Fig8Panels {
		rng := rand.New(rand.NewSource(sc.Seed))
		a := p.generate(rng, sc.LLSM, sc.LLSN)
		prob := matgen.NewLLSProblem(rng, a, 0.1)
		sol, err := lls.Solve(prob.A, prob.B, lls.SolveOptions{
			QR:  rgs.Options{Cutoff: sc.Cutoff},
			Tol: 1e-12,
		})
		if err != nil {
			panic(err)
		}
		times := perfmodel.LLSTimes(out.PaperM, out.PaperN, sol.Iterations, perfmodel.PaperConfig)
		out.Rows = append(out.Rows, Fig8Row{
			Panel:        p,
			Iterations:   sol.Iterations,
			Converged:    sol.Converged,
			Optimality:   accuracy.LLSOptimality(prob.A, sol.X, prob.B),
			RGSQRFCGLSMs: times.RGSQRFCGLS * 1e3,
			SCuSolveMs:   times.SCuSolve * 1e3,
			DCuSolveMs:   times.DCuSolve * 1e3,
			SpeedupS:     times.SCuSolve / times.RGSQRFCGLS,
			SpeedupD:     times.DCuSolve / times.RGSQRFCGLS,
		})
	}
	return out
}

// Render formats Figure 8.
func (r *Fig8Result) Render() string {
	t := &table{header: []string{"matrix type", "iters", "RGSQRF+CGLS (ms)", "SCuSOLVE (ms)", "DCuSOLVE (ms)", "speedup S", "speedup D"}}
	for _, row := range r.Rows {
		t.add(row.Panel.Name, fmt.Sprintf("%d", row.Iterations),
			f1(row.RGSQRFCGLSMs), f1(row.SCuSolveMs), f1(row.DCuSolveMs),
			f1(row.SpeedupS)+"x", f1(row.SpeedupD)+"x")
	}
	return fmt.Sprintf("Figure 8: LLS solver times at %.0fx%.0f (model; CGLS iteration counts measured numerically at %dx%d)\n%s",
		r.PaperM, r.PaperN, r.Scale.LLSM, r.Scale.LLSN, t.String())
}

// fig9Conds is the condition sweep of Figure 9.
var fig9Conds = []float64{1e3, 1e4, 1e5, 1e6}

// Fig9Row is one condition-number point of Figure 9.
type Fig9Row struct {
	Cond               float64
	SCuSolve, DCuSolve float64 // ‖Aᵀ(Ax−b)‖ of the direct baselines
	RGSDirect          float64 // RGSQRF direct solve
	RGSCGLS            float64 // RGSQRF + CGLS refinement
	Iterations         int
}

// Fig9Result is the accuracy figure.
type Fig9Result struct {
	Scale Scale
	Rows  []Fig9Row
}

// Fig9 runs the four solvers on cluster2 matrices across κ.
func Fig9(sc Scale) *Fig9Result {
	out := &Fig9Result{Scale: sc}
	for _, cond := range fig9Conds {
		rng := rand.New(rand.NewSource(sc.Seed))
		a := matgen.WithCond(rng, sc.LLSM, sc.LLSN, cond, matgen.Cluster2)
		prob := matgen.NewLLSProblem(rng, a, 0.1)
		row := Fig9Row{Cond: cond}

		// SCuSOLVE.
		a32 := dense.ToF32(a)
		b32 := make([]float32, len(prob.B))
		for i, v := range prob.B {
			b32[i] = float32(v)
		}
		xs := lls.DirectQR(a32, b32)
		xsw := make([]float64, len(xs))
		for i, v := range xs {
			xsw[i] = float64(v)
		}
		row.SCuSolve = accuracy.LLSOptimality(a, xsw, prob.B)

		// DCuSOLVE.
		row.DCuSolve = accuracy.LLSOptimality(a, lls.DirectQR(a, prob.B), prob.B)

		// RGSQRF direct and refined, sharing one factorization.
		f, err := rgs.Factor(a32, rgs.Options{Cutoff: sc.Cutoff})
		if err != nil {
			panic(err)
		}
		dsol, err := lls.SolveWithFactor(f, a, prob.B, lls.SolveOptions{Method: lls.MethodDirect})
		if err != nil {
			panic(err)
		}
		row.RGSDirect = accuracy.LLSOptimality(a, dsol.X, prob.B)
		csol, err := lls.SolveWithFactor(f, a, prob.B, lls.SolveOptions{Tol: 1e-13})
		if err != nil {
			panic(err)
		}
		row.RGSCGLS = accuracy.LLSOptimality(a, csol.X, prob.B)
		row.Iterations = csol.Iterations

		out.Rows = append(out.Rows, row)
	}
	return out
}

// Render formats Figure 9.
func (r *Fig9Result) Render() string {
	t := &table{header: []string{"cond(A)", "SCuSOLVE", "DCuSOLVE", "RGSQRF direct", "RGSQRF+CGLS", "iters"}}
	for _, row := range r.Rows {
		t.add(e(row.Cond), e(row.SCuSolve), e(row.DCuSolve), e(row.RGSDirect), e(row.RGSCGLS), fmt.Sprintf("%d", row.Iterations))
	}
	return fmt.Sprintf("Figure 9: LLS accuracy ‖Aᵀ(Ax−b)‖, %dx%d, SVD cluster2 distribution\n%s", r.Scale.LLSM, r.Scale.LLSN, t.String())
}
