package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"tcqr/internal/accuracy"
	"tcqr/internal/dense"
	"tcqr/internal/gram"
	"tcqr/internal/matgen"
	"tcqr/internal/rgs"
)

// BoundsResult verifies the Section 3.6 error analysis empirically. The
// paper argues the recursive Gram-Schmidt's loss of orthogonality lies
// between the MGS bound (∝ κ) and the CGS bound (∝ κ²), and reports that
// "according to our experimental result, it is closer to ε times κ(A)".
// We fit the exponent p in ‖I−QᵀQ‖ ≈ c·κ^p by least squares on a log-log
// sweep for each method and check the slopes: MGS ≈ 1, CGS ≈ 2, RGSQRF
// close to 1.
type BoundsResult struct {
	Scale Scale
	Conds []float64
	// Orthogonality errors per method across the sweep.
	MGS, CGS, RGSQRF []float64
	// Fitted log-log slopes.
	SlopeMGS, SlopeCGS, SlopeRGSQRF float64
}

// Bounds runs the sweep. The condition range stops where the errors
// saturate at O(1) (saturated points are excluded from the fit, as the
// bound is vacuous there).
func Bounds(sc Scale) *BoundsResult {
	out := &BoundsResult{Scale: sc, Conds: []float64{1e1, 3e1, 1e2, 3e2, 1e3}}
	n := min(sc.N, 64)
	for _, cond := range out.Conds {
		rng := rand.New(rand.NewSource(sc.Seed))
		a := dense.ToF32(matgen.WithCond(rng, sc.M, n, cond, matgen.Geometric))

		qm := a.Clone()
		rm := dense.New[float32](n, n)
		gram.MGS(qm, rm)
		out.MGS = append(out.MGS, accuracy.OrthoError(qm))

		qc := a.Clone()
		rc := dense.New[float32](n, n)
		gram.CGS(qc, rc)
		out.CGS = append(out.CGS, accuracy.OrthoError(qc))

		res, err := rgs.Factor(a, rgs.Options{Cutoff: 16})
		if err != nil {
			panic(err)
		}
		out.RGSQRF = append(out.RGSQRF, accuracy.OrthoError(res.Q))
	}
	out.SlopeMGS = logLogSlope(out.Conds, out.MGS)
	out.SlopeCGS = logLogSlope(out.Conds, out.CGS)
	out.SlopeRGSQRF = logLogSlope(out.Conds, out.RGSQRF)
	return out
}

// logLogSlope fits log y = p·log x + c by least squares, excluding
// saturated points (y within a factor 3 of the O(1) ceiling).
func logLogSlope(x, y []float64) float64 {
	var sx, sy, sxx, sxy float64
	var n float64
	for i := range x {
		if y[i] <= 0 || y[i] > 0.5 {
			continue
		}
		lx, ly := math.Log(x[i]), math.Log(y[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// Render formats the bound verification.
func (r *BoundsResult) Render() string {
	t := &table{header: []string{"cond(A)", "MGS", "CGS", "RGSQRF"}}
	for i, c := range r.Conds {
		t.add(e(c), e(r.MGS[i]), e(r.CGS[i]), e(r.RGSQRF[i]))
	}
	return fmt.Sprintf(`Section 3.6 verification: fitted loss-of-orthogonality exponents, ‖I−QᵀQ‖ ≈ c·κ(A)^p, %dx%d
%sfitted slopes p:  MGS %.2f (theory 1)   CGS %.2f (theory 2)   RGSQRF %.2f
paper's claim: RGSQRF sits between the MGS and CGS bounds, "closer to ε·κ(A)".
`, r.Scale.M, min(r.Scale.N, 64), t.String(), r.SlopeMGS, r.SlopeCGS, r.SlopeRGSQRF)
}
