package experiments

import (
	"strings"
	"testing"
)

func TestTable2ReproducesShape(t *testing.T) {
	r := Table2()
	// Peak at B=64, collapse at B=768, model within 60% of paper values.
	var bestIdx int
	for i := range r.BlockSizes {
		if r.Plain[i] > r.Plain[bestIdx] {
			bestIdx = i
		}
		ratio := r.Plain[i] / r.PaperPlain[i]
		if ratio < 0.5 || ratio > 1.6 {
			t.Errorf("B=%g: model %g vs paper %g", r.BlockSizes[i], r.Plain[i], r.PaperPlain[i])
		}
	}
	if r.BlockSizes[bestIdx] != 64 {
		t.Errorf("peak at B=%g, want 64", r.BlockSizes[bestIdx])
	}
	if !strings.Contains(r.Render(), "Table 2") {
		t.Error("render missing title")
	}
}

func TestTable3EchoesCalibration(t *testing.T) {
	r := Table3()
	if r.TCGemmTN[0] != 8.45 || r.SGeqrf[7] != 6.67 {
		t.Error("calibration values drifted from the paper's Table 3")
	}
	if !strings.Contains(r.Render(), "TC-GEMM") {
		t.Error("render missing columns")
	}
}

func TestFig1Fig2(t *testing.T) {
	f1r := Fig1()
	for i := range f1r.B {
		if f1r.TC[i] < f1r.Plain[i] {
			t.Error("Figure 1: TC below plain")
		}
	}
	f2r := Fig2()
	// RGSQRF estimate with TC beats the Figure 1 estimates at B=128.
	if f2r.TC[0] < f1r.TC[0] {
		t.Errorf("Figure 2 TC estimate (%g) should beat Figure 1's (%g) at B=128", f2r.TC[0], f1r.TC[0])
	}
	if !strings.Contains(f1r.Render(), "Figure 1") || !strings.Contains(f2r.Render(), "Figure 2") {
		t.Error("render titles")
	}
}

func TestFig3BackwardErrorFlat(t *testing.T) {
	r := Fig3(QuickScale)
	for i := range r.Conds {
		// RGSQRF sits near half precision, SGEQRF near single; both flat.
		if r.RGSQRF[i] > 2e-2 || r.RGSQRF[i] < 1e-5 {
			t.Errorf("cond %g: RGSQRF error %g outside half-precision band", r.Conds[i], r.RGSQRF[i])
		}
		if r.SGEQRF[i] > 1e-5 {
			t.Errorf("cond %g: SGEQRF error %g above single-precision band", r.Conds[i], r.SGEQRF[i])
		}
		if r.RGSQRF[i] < 10*r.SGEQRF[i] {
			t.Errorf("cond %g: RGSQRF (%g) should be well above SGEQRF (%g)", r.Conds[i], r.RGSQRF[i], r.SGEQRF[i])
		}
	}
	// Flatness: last/first within two orders (the paper's curves are flat).
	if ratio := r.RGSQRF[len(r.RGSQRF)-1] / r.RGSQRF[0]; ratio > 100 || ratio < 0.01 {
		t.Errorf("RGSQRF backward error not flat: ratio %g", ratio)
	}
	if !strings.Contains(r.Render(), "Figure 3") {
		t.Error("render title")
	}
}

func TestFig4OrthogonalityShape(t *testing.T) {
	r := Fig4(QuickScale)
	n := len(r.Conds)
	// SGEQRF flat and tiny throughout.
	for i := range r.Conds {
		if r.SGEQRF[i] > 1e-3 {
			t.Errorf("SGEQRF orthogonality %g at cond %g", r.SGEQRF[i], r.Conds[i])
		}
	}
	// RGSQRF grows by orders of magnitude across the sweep.
	if r.RGSQRF[n-1] < 100*r.RGSQRF[0] {
		t.Errorf("RGSQRF orthogonality should grow with cond: %g -> %g", r.RGSQRF[0], r.RGSQRF[n-1])
	}
	// Re-orthogonalization flattens it back down.
	for i := range r.Conds {
		if r.ReOrtho[i] > 0.05 {
			t.Errorf("ReOrtho orthogonality %g at cond %g", r.ReOrtho[i], r.Conds[i])
		}
	}
	if r.RGSQRF[n-1] < 20*r.ReOrtho[n-1] {
		t.Errorf("reortho should fix the worst case: %g vs %g", r.RGSQRF[n-1], r.ReOrtho[n-1])
	}
}

func TestFig5Fig6Fig7(t *testing.T) {
	f5 := Fig5()
	for i := range f5.M {
		if f5.Speedup[i] < 2.0 {
			t.Errorf("Figure 5 speedup %g at %gx%g", f5.Speedup[i], f5.M[i], f5.N[i])
		}
	}
	f6 := Fig6()
	for i := range f6.M {
		if f6.SpeedupCAQR[i] < 2.5 {
			t.Errorf("Figure 6 speedup %g at %gx%g", f6.SpeedupCAQR[i], f6.M[i], f6.N[i])
		}
		if f6.CAQRPanel[i] < f6.SGEPanel[i] {
			t.Errorf("CAQR panel should win at %gx%g", f6.M[i], f6.N[i])
		}
	}
	// The CAQR panel matters more for skinny matrices: the ratio of the
	// two bars decreases with n at fixed m (the paper's observation).
	skinny := f6.CAQRPanel[4] / f6.SGEPanel[4] // 32768x2048
	square := f6.CAQRPanel[8] / f6.SGEPanel[8] // 32768x32768
	if skinny <= square {
		t.Errorf("CAQR panel should matter more for skinny shapes: %g vs %g", skinny, square)
	}
	f7 := Fig7()
	for i := range f7.M {
		// TC in the update never hurts and is critical for squarish
		// matrices (skinny shapes are panel-bound, so the gap narrows —
		// consistent with the paper's "especially for squarish").
		if f7.OffOn[i] < f7.OffOff[i] {
			t.Errorf("TC in update should never hurt at %gx%g", f7.M[i], f7.N[i])
		}
		if f7.N[i] >= 8192 && f7.OffOn[i] < 1.8*f7.OffOff[i] {
			t.Errorf("TC in update should be critical at %gx%g", f7.M[i], f7.N[i])
		}
		if f7.OnOn[i] > 1.2*f7.OffOn[i] {
			t.Errorf("TC in panel should buy little at %gx%g", f7.M[i], f7.N[i])
		}
	}
	for _, s := range []string{f5.Render(), f6.Render(), f7.Render()} {
		if len(s) < 100 {
			t.Error("render too short")
		}
	}
}

func TestPanelExperiment(t *testing.T) {
	p := Panel()
	if p.Speedup < 3.2 || p.Speedup > 3.4 {
		t.Errorf("panel speedup %g, paper 3.3", p.Speedup)
	}
	if p.EstimateWithCAQR < 25 || p.EstimateWithCAQR > 29 {
		t.Errorf("estimate %g, paper 27", p.EstimateWithCAQR)
	}
	if !strings.Contains(p.Render(), "3.3x") {
		t.Error("render missing paper reference")
	}
}

func TestFig8AllPanelsSolve(t *testing.T) {
	r := Fig8(QuickScale)
	if len(r.Rows) != 8 {
		t.Fatalf("%d panels, want 8", len(r.Rows))
	}
	var uniform, geoHard int
	for _, row := range r.Rows {
		if row.Panel.Stress {
			// The Section 4.2.2 stress case: CGLS hits the iteration cap
			// without reaching double precision, and the speedup is gone.
			// This is exactly the behaviour the paper reports ("beyond the
			// capability of ... RGSQRF with refinement").
			geoHard = row.Iterations
			if row.Converged && row.Iterations < 50 {
				t.Errorf("%s: stress case converged suspiciously fast (%d iters)", row.Panel.Name, row.Iterations)
			}
			// Even unconverged, CGLS still delivers better-than-single
			// precision optimality (the paper still gets ~2× at single).
			if row.Optimality > 1e-4 {
				t.Errorf("%s: stress optimality %g", row.Panel.Name, row.Optimality)
			}
			continue
		}
		if !row.Converged {
			t.Errorf("%s: CGLS did not converge (%d iters)", row.Panel.Name, row.Iterations)
		}
		if row.Optimality > 1e-8 {
			t.Errorf("%s: optimality %g", row.Panel.Name, row.Optimality)
		}
		if row.SpeedupS < 1.5 || row.SpeedupD < 3 {
			t.Errorf("%s: speedups %g/%g too small", row.Panel.Name, row.SpeedupS, row.SpeedupD)
		}
		if row.Panel.Name == "a) uniform(0,1)" {
			uniform = row.Iterations
		}
	}
	// Harder spectra take more iterations: stress geometric vs uniform.
	if geoHard <= uniform {
		t.Errorf("geometric κ=1e6 (%d iters) should need more than uniform (%d)", geoHard, uniform)
	}
	if !strings.Contains(r.Render(), "Figure 8") {
		t.Error("render title")
	}
}

func TestFig9AccuracyLadder(t *testing.T) {
	r := Fig9(QuickScale)
	for _, row := range r.Rows {
		// RGSQRF direct is the worst, by far.
		if row.RGSDirect < 10*row.SCuSolve {
			t.Errorf("cond %g: RGSQRF direct (%g) should trail SCuSOLVE (%g)", row.Cond, row.RGSDirect, row.SCuSolve)
		}
		// CGLS refinement recovers (at least) single precision accuracy
		// and tracks DCuSOLVE within a couple of orders.
		if row.RGSCGLS > row.SCuSolve {
			t.Errorf("cond %g: refined (%g) should beat SCuSOLVE (%g)", row.Cond, row.RGSCGLS, row.SCuSolve)
		}
		if row.RGSCGLS > 1e3*row.DCuSolve {
			t.Errorf("cond %g: refined (%g) too far from DCuSOLVE (%g)", row.Cond, row.RGSCGLS, row.DCuSolve)
		}
		if row.Iterations < 1 {
			t.Errorf("cond %g: no refinement iterations recorded", row.Cond)
		}
	}
	// Iterations grow with condition number across the sweep.
	if r.Rows[len(r.Rows)-1].Iterations <= r.Rows[0].Iterations {
		t.Errorf("iterations should grow with cond: %d -> %d",
			r.Rows[0].Iterations, r.Rows[len(r.Rows)-1].Iterations)
	}
}

func TestTable4QualityAndSpeed(t *testing.T) {
	r := Table4(QuickScale)
	for _, row := range r.Rows {
		// The paper's claim: identical quality between the half- and
		// single-precision pipelines (truncation dominates).
		diff := row.RGSQRFSVD - row.SGEQRFSVD
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.01*row.SGEQRFSVD+1e-6 {
			t.Errorf("rank %d: RGSQRF-SVD %g vs SGEQRF-SVD %g", row.Rank, row.RGSQRFSVD, row.SGEQRFSVD)
		}
		if row.RGSQRFSVD > row.Optimal*1.02+1e-3 {
			t.Errorf("rank %d: error %g above optimal %g", row.Rank, row.RGSQRFSVD, row.Optimal)
		}
	}
	// Monotone decreasing error with rank.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].RGSQRFSVD > r.Rows[i-1].RGSQRFSVD+1e-9 {
			t.Error("truncation error not monotone in rank")
		}
	}
	if r.Speedup < 4 || r.Speedup > 9 {
		t.Errorf("Table 4 model speedup %g, paper 6.4", r.Speedup)
	}
}

func TestScalingExperiment(t *testing.T) {
	r := Scaling(QuickScale)
	if r.WithScaling.Overflows != 0 || r.WithScaling.HasNaN {
		t.Errorf("scaling failed to protect: %+v", r.WithScaling)
	}
	if r.WithScaling.BackwardError > 1e-2 {
		t.Errorf("scaled backward error %g", r.WithScaling.BackwardError)
	}
	if r.WithoutScaling.Overflows == 0 || !r.WithoutScaling.HasNaN {
		t.Errorf("expected catastrophe without scaling: %+v", r.WithoutScaling)
	}
	if !strings.Contains(r.Render(), "Section 3.5") {
		t.Error("render title")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &table{header: []string{"a", "bbbb"}}
	tb.add("xx", "y")
	s := tb.String()
	if !strings.Contains(s, "a   bbbb") || !strings.Contains(s, "xx  y") {
		t.Errorf("table alignment wrong:\n%s", s)
	}
}

func TestFormatsTradeoff(t *testing.T) {
	r := Formats(QuickScale)
	// Precision ordering: FP32 < FP16 < BF16, with BF16 roughly the 2^-8
	// vs 2^-11 factor above FP16.
	if !(r.FP32BackwardError < r.FP16BackwardError && r.FP16BackwardError < r.BF16BackwardError) {
		t.Errorf("precision ordering violated: fp32 %g, fp16 %g, bf16 %g",
			r.FP32BackwardError, r.FP16BackwardError, r.BF16BackwardError)
	}
	ratio := r.BF16BackwardError / r.FP16BackwardError
	if ratio < 3 || ratio > 30 {
		t.Errorf("BF16/FP16 error ratio %g, expected near 8 (2^-8 vs 2^-11)", ratio)
	}
	// Range ordering: FP16 overflows and is poisoned; BF16 neither.
	if r.FP16Overflows == 0 || !r.FP16Poisoned {
		t.Errorf("FP16 should overflow on the badly scaled matrix: %+v", r)
	}
	if r.BF16Overflows != 0 || r.BF16Poisoned {
		t.Errorf("BF16 should survive the badly scaled matrix: %+v", r)
	}
	if r.BF16BadScaledBackwardError > 0.1 {
		t.Errorf("BF16 unscaled backward error %g", r.BF16BadScaledBackwardError)
	}
	if !strings.Contains(r.Render(), "bfloat16") {
		t.Error("render content")
	}
}

func TestGrowthExperiment(t *testing.T) {
	r := Growth(QuickScale)
	if r.LUGrowth < 1e25 { // 2^95 ≈ 4e28
		t.Errorf("LU growth %g, expected ~2^(n-1)", r.LUGrowth)
	}
	if r.LUOverflows == 0 || !r.LUPoisoned {
		t.Errorf("TC-LU should overflow on the growth matrix: %+v", r)
	}
	if r.QROverflows != 0 {
		t.Errorf("scaled TC-RGSQRF overflowed %d times", r.QROverflows)
	}
	if r.QRBackwardError > 1e-2 {
		t.Errorf("QR backward error %g", r.QRBackwardError)
	}
	if !strings.Contains(r.Render(), "Wilkinson") {
		t.Error("render")
	}
}

func TestOrthoMethodsExperiment(t *testing.T) {
	r := OrthoMethods(QuickScale)
	last := len(r.Conds) - 1
	// SGEQRF flat and small.
	if r.SGEQRF[last] > 1e-3 {
		t.Errorf("SGEQRF at κ=1e5: %g", r.SGEQRF[last])
	}
	// κ² methods lose much more than κ methods at moderate κ (index 1 is
	// κ=1e2, where everything still survives).
	if r.CGS[1] < 5*r.MGS[1] {
		t.Errorf("CGS (%g) should trail MGS (%g) at κ=1e2", r.CGS[1], r.MGS[1])
	}
	if r.CholQR[1] < 0 || r.CholQR[1] < 5*r.MGS[1] {
		t.Errorf("CholQR (%g) should trail MGS (%g) at κ=1e2", r.CholQR[1], r.MGS[1])
	}
	// CholQR breaks down somewhere in the sweep (κ² > 1/ε₃₂ by κ=1e5).
	if r.CholQR[last] >= 0 {
		t.Errorf("CholQR should break down at κ=1e5, got %g", r.CholQR[last])
	}
	// The fixed variants are flat where they survive.
	if r.CholQR2[1] > r.CholQR[1]/5 {
		t.Errorf("CholQR2 (%g) should fix CholQR (%g)", r.CholQR2[1], r.CholQR[1])
	}
	// Re-orthogonalization improves the worst case by a large factor; with
	// the TC engine also in the second pass, its floor at extreme κ·ε_half
	// is a few times 1e-2 rather than the fp32 level (EXPERIMENTS.md
	// note 2).
	if r.ReOrtho[last] > 0.15 || r.ReOrtho[last] > r.RGSQRF[last]/3 {
		t.Errorf("RGSQRF-ReOrtho at κ=1e5: %g (single pass %g)", r.ReOrtho[last], r.RGSQRF[last])
	}
	if !strings.Contains(r.Render(), "CholQR2") {
		t.Error("render")
	}
}

func TestBoundsSlopes(t *testing.T) {
	r := Bounds(QuickScale)
	// MGS slope near 1, CGS clearly steeper, RGSQRF between MGS and CGS
	// and nearer the κ¹ end — the §3.6 claim.
	if r.SlopeMGS < 0.5 || r.SlopeMGS > 1.6 {
		t.Errorf("MGS slope %.2f, expected ≈1", r.SlopeMGS)
	}
	if r.SlopeCGS < r.SlopeMGS+0.3 {
		t.Errorf("CGS slope %.2f should be clearly steeper than MGS %.2f", r.SlopeCGS, r.SlopeMGS)
	}
	if r.SlopeRGSQRF < 0.5 || r.SlopeRGSQRF > r.SlopeCGS+0.1 {
		t.Errorf("RGSQRF slope %.2f outside [MGS-ish, CGS] band (MGS %.2f, CGS %.2f)",
			r.SlopeRGSQRF, r.SlopeMGS, r.SlopeCGS)
	}
	if r.SlopeRGSQRF > 1.7 {
		t.Errorf("RGSQRF slope %.2f should be closer to κ¹ than κ²", r.SlopeRGSQRF)
	}
	if !strings.Contains(r.Render(), "fitted slopes") {
		t.Error("render")
	}
}

func TestErrorGrowthSlope(t *testing.T) {
	r := ErrorGrowth(QuickScale)
	// Errors grow with n...
	if r.Errors[len(r.Errors)-1] <= r.Errors[0] {
		t.Errorf("errors should grow with n: %v", r.Errors)
	}
	// ...but very slowly: far below even the probabilistic √n bound,
	// because only the O(log n) recursion depth accumulates.
	if r.Slope < 0.01 || r.Slope > 0.5 {
		t.Errorf("growth exponent %.2f, expected weak (≈0.1-0.2)", r.Slope)
	}
	if !strings.Contains(r.Render(), "fitted exponent") {
		t.Error("render")
	}
}

func TestBreakdowns(t *testing.T) {
	r := Breakdowns()
	if len(r.M) == 0 {
		t.Fatal("no shapes")
	}
	for i := range r.M {
		if r.PanelMs[i] <= 0 || r.GemmMs[i] <= 0 {
			t.Errorf("%gx%g: non-positive components", r.M[i], r.N[i])
		}
	}
	// Panel share falls as the matrix widens at fixed m.
	var skinny, square float64
	for i := range r.M {
		if r.M[i] == 32768 && r.N[i] == 2048 {
			skinny = r.PanelFraction[i]
		}
		if r.M[i] == 32768 && r.N[i] == 32768 {
			square = r.PanelFraction[i]
		}
	}
	if skinny <= square {
		t.Errorf("panel share should fall with n: skinny %g, square %g", skinny, square)
	}
	if !strings.Contains(r.Render(), "panel share") {
		t.Error("render")
	}
}
