package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"tcqr/internal/accuracy"
	"tcqr/internal/dense"
	"tcqr/internal/f16"
	"tcqr/internal/matgen"
	"tcqr/internal/rgs"
)

// ErrorGrowthResult examines how the RGSQRF backward error scales with
// problem size. The paper's Section 5 points to Higham & Mary's
// probabilistic rounding analysis because "the traditional deterministic
// analysis is too pessimistic to give any useful error bound" in half
// precision: worst-case bounds grow like n·ε_half (already >1 for
// n ≈ 2048), probabilistic ones like √n·ε_half. The measurement shows
// RGSQRF does better than either: each matrix entry passes through only
// O(log(n/B)) engine GEMMs (the recursion depth), and the FP32
// accumulation inside each GEMM absorbs the inner-dimension growth, so
// the fitted exponent comes out near 0.1–0.2 — the error is dominated by
// the one-time fp16 rounding of the operands, which is exactly why
// Figure 3's curves are flat and the method survives at 32768×16384.
type ErrorGrowthResult struct {
	Sizes  []int
	Errors []float64
	// Slope is the fitted p in error ≈ c·n^p.
	Slope float64
	// HalfEps anchors the table.
	HalfEps float64
}

// ErrorGrowth runs the size sweep (fixed aspect ratio 4:1, fixed κ).
func ErrorGrowth(sc Scale) *ErrorGrowthResult {
	out := &ErrorGrowthResult{Sizes: []int{32, 64, 128, 256}, HalfEps: f16.Eps}
	for _, n := range out.Sizes {
		rng := rand.New(rand.NewSource(sc.Seed))
		a := dense.ToF32(matgen.WithCond(rng, 4*n, n, 100, matgen.Arithmetic))
		res, err := rgs.Factor(a, rgs.Options{Cutoff: 16})
		if err != nil {
			panic(err)
		}
		out.Errors = append(out.Errors, accuracy.BackwardError(a, res.Q, res.R))
	}
	xs := make([]float64, len(out.Sizes))
	for i, n := range out.Sizes {
		xs[i] = float64(n)
	}
	out.Slope = logLogSlope(xs, out.Errors)
	return out
}

// Render formats the growth sweep.
func (r *ErrorGrowthResult) Render() string {
	t := &table{header: []string{"n (A is 4n x n)", "backward error", "error / (√n·ε_half)", "error / (n·ε_half)"}}
	for i, n := range r.Sizes {
		sq := r.Errors[i] / (r.HalfEps * math.Sqrt(float64(n)))
		lin := r.Errors[i] / (r.HalfEps * float64(n))
		t.add(fmt.Sprintf("%d", n), e(r.Errors[i]), f2(sq), f2(lin))
	}
	return fmt.Sprintf(`Section 5 verification (probabilistic rounding refs): backward error growth with size
%sfitted exponent p in error ≈ c·n^p: %.2f — far below even the probabilistic √n bound (0.5)
and the deterministic worst case (1.0): the error is dominated by the one-time fp16 operand
rounding, and accumulation only enters through the O(log n) recursion depth. This is why the
paper's Figure 3 is flat and half-precision QR is usable at 32768x16384.
`, t.String(), r.Slope)
}
