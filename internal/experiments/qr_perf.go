package experiments

import (
	"fmt"

	"tcqr/internal/perfmodel"
)

// Table2Result reproduces Table 2: MAGMA hybrid QR throughput with and
// without TensorCore in the trailing update, across block sizes.
type Table2Result struct {
	BlockSizes []float64
	Plain, TC  []float64 // modelled TFLOPS
	PaperPlain []float64 // the paper's measured values, for side-by-side
	PaperTC    []float64
}

// Table2 runs the MAGMA hybrid pipeline model at the paper's 32768×16384.
func Table2() *Table2Result {
	r := &Table2Result{
		BlockSizes: []float64{32, 64, 128, 256, 512, 768},
		PaperPlain: []float64{4.58, 6.09, 4.51, 3.36, 1.73, 0.86},
		PaperTC:    []float64{4.63, 7.02, 4.87, 3.52, 1.64, 0.86},
	}
	for _, b := range r.BlockSizes {
		r.Plain = append(r.Plain, perfmodel.MagmaHybridQRTFLOPS(32768, 16384, b, false))
		r.TC = append(r.TC, perfmodel.MagmaHybridQRTFLOPS(32768, 16384, b, true))
	}
	return r
}

// Render formats the result as the paper's Table 2.
func (r *Table2Result) Render() string {
	t := &table{header: []string{"block size", "MAGMA QR (model)", "paper", "MAGMA QR+TC (model)", "paper"}}
	for i, b := range r.BlockSizes {
		t.add(fmt.Sprintf("%.0f", b), f2(r.Plain[i]), f2(r.PaperPlain[i]), f2(r.TC[i]), f2(r.PaperTC[i]))
	}
	return "Table 2: MAGMA hybrid SGEQRF, TFLOPS on 32768x16384 (TC in trailing update)\n" + t.String()
}

// Table3Result echoes the calibration microbenchmark: the model *is*
// anchored on these numbers, so the model columns reproduce the paper's by
// construction; the table documents the calibration.
type Table3Result struct {
	K []float64
	// Columns in the paper's order.
	TCGemmTN, SGemmTN, TCGemmNN, SGemmNN, SGeqrf []float64
}

// Table3 returns the calibration table.
func Table3() *Table3Result {
	r := &Table3Result{K: perfmodel.Table3K}
	for _, k := range r.K {
		r.TCGemmTN = append(r.TCGemmTN, perfmodel.TCGemmTN.At(k))
		r.SGemmTN = append(r.SGemmTN, perfmodel.SGemmTN.At(k))
		r.TCGemmNN = append(r.TCGemmNN, perfmodel.TCGemmNN.At(k))
		r.SGemmNN = append(r.SGemmNN, perfmodel.SGemmNN.At(k))
		r.SGeqrf = append(r.SGeqrf, perfmodel.SGeqrf.At(k))
	}
	return r
}

// Render formats the calibration table.
func (r *Table3Result) Render() string {
	t := &table{header: []string{"k", "TC-GEMM (kxm*mxk)", "SGEMM", "TC-GEMM (mxk*kxk)", "SGEMM", "SGEQRF"}}
	for i, k := range r.K {
		t.add(fmt.Sprintf("%.0f", k), f2(r.TCGemmTN[i]), f2(r.SGemmTN[i]), f2(r.TCGemmNN[i]), f2(r.SGemmNN[i]), f2(r.SGeqrf[i]))
	}
	return "Table 3: device GEMM/panel throughput in TFLOPS, m=32768 (model calibration = paper's measurements)\n" + t.String()
}

// Fig1Result reproduces Figure 1: estimated blocked Householder QR
// throughput by block size via equation (4).
type Fig1Result struct {
	B         []float64
	TC, Plain []float64
	CuSolver  float64 // the >6 TFLOPS cuSOLVER reference line
}

// Fig1 evaluates equation (4) for the paper's 32768×16384 matrix.
func Fig1() *Fig1Result {
	r := &Fig1Result{B: []float64{128, 256, 512, 1024, 2048, 4096}, CuSolver: perfmodel.SGeqrf.At(16384)}
	for _, b := range r.B {
		r.TC = append(r.TC, perfmodel.HouseholderEstimate(16384, b, true))
		r.Plain = append(r.Plain, perfmodel.HouseholderEstimate(16384, b, false))
	}
	return r
}

// Render formats the Figure 1 series.
func (r *Fig1Result) Render() string {
	t := &table{header: []string{"B", "blocked Householder+TC", "no TC", "TC gain"}}
	for i, b := range r.B {
		t.add(fmt.Sprintf("%.0f", b), f2(r.TC[i]), f2(r.Plain[i]), f2(r.TC[i]/r.Plain[i]))
	}
	return fmt.Sprintf("Figure 1: estimated tiled Householder QR TFLOPS vs block size B (Eq. 4), 32768x16384\n%scuSOLVER SGEQRF reference: %.2f TFLOPS\n", t.String(), r.CuSolver)
}

// Fig2Result reproduces Figure 2: the equation (7) RGSQRF estimate by
// cutoff, with the cuSOLVER panel.
type Fig2Result struct {
	B         []float64
	TC, Plain []float64
	CuSolver  float64
}

// Fig2 evaluates the recurrence (7) for 32768×16384.
func Fig2() *Fig2Result {
	r := &Fig2Result{B: []float64{128, 256, 512, 1024, 2048, 4096}, CuSolver: perfmodel.SGeqrf.At(16384)}
	for _, b := range r.B {
		r.TC = append(r.TC, perfmodel.RGSQRFEstimate(32768, 16384, b, true, perfmodel.SGeqrfPanelRate))
		r.Plain = append(r.Plain, perfmodel.RGSQRFEstimate(32768, 16384, b, false, perfmodel.SGeqrfPanelRate))
	}
	return r
}

// Render formats the Figure 2 series.
func (r *Fig2Result) Render() string {
	t := &table{header: []string{"B", "RGSQRF+TC (Eq. 7)", "no TC", "TC gain"}}
	for i, b := range r.B {
		t.add(fmt.Sprintf("%.0f", b), f2(r.TC[i]), f2(r.Plain[i]), f2(r.TC[i]/r.Plain[i]))
	}
	return fmt.Sprintf("Figure 2: estimated RGSQRF TFLOPS vs cutoff B (Eq. 7, SGEQRF panel), 32768x16384\n%scuSOLVER SGEQRF reference: %.2f TFLOPS\n", t.String(), r.CuSolver)
}

// perfShapes are the matrix shapes swept by Figures 5, 6 and 7.
var perfShapes = []struct{ M, N float64 }{
	{16384, 2048}, {16384, 4096}, {16384, 8192}, {16384, 16384},
	{32768, 2048}, {32768, 4096}, {32768, 8192}, {32768, 16384}, {32768, 32768},
}

// Fig6Result reproduces Figure 6: RGSQRF throughput with the CAQR panel vs
// the SGEQRF panel, and the speedup over cuSOLVER.
type Fig6Result struct {
	M, N                 []float64
	CAQRPanel, SGEPanel  []float64 // TFLOPS
	CuSolver             []float64 // baseline TFLOPS
	SpeedupCAQR, Speedup []float64 // over cuSOLVER, for each panel choice
}

// Fig6 sweeps the shape set.
func Fig6() *Fig6Result {
	r := &Fig6Result{}
	for _, s := range perfShapes {
		caqr := perfmodel.RGSQRFTFLOPS(s.M, s.N, perfmodel.PaperConfig)
		sge := perfmodel.RGSQRFTFLOPS(s.M, s.N, perfmodel.QRConfig{Panel: perfmodel.PanelSGEQRF, TCUpdate: true})
		base := perfmodel.SGeqrfRate(s.N)
		r.M = append(r.M, s.M)
		r.N = append(r.N, s.N)
		r.CAQRPanel = append(r.CAQRPanel, caqr)
		r.SGEPanel = append(r.SGEPanel, sge)
		r.CuSolver = append(r.CuSolver, base)
		r.SpeedupCAQR = append(r.SpeedupCAQR, caqr/base)
		r.Speedup = append(r.Speedup, sge/base)
	}
	return r
}

// Render formats Figure 6.
func (r *Fig6Result) Render() string {
	t := &table{header: []string{"size", "RGSQRF/CAQR TF", "speedup", "RGSQRF/SGEQRF-panel TF", "speedup", "cuSOLVER TF"}}
	for i := range r.M {
		t.add(fmt.Sprintf("%.0fx%.0f", r.M[i], r.N[i]),
			f2(r.CAQRPanel[i]), f1(r.SpeedupCAQR[i])+"x",
			f2(r.SGEPanel[i]), f1(r.Speedup[i])+"x",
			f2(r.CuSolver[i]))
	}
	return "Figure 6: RGSQRF performance, CAQR panel (left bars) vs SGEQRF panel (right bars), speedup over cuSOLVER SGEQRF\n" + t.String()
}

// Fig7Result reproduces Figure 7: TensorCore on/off in panel and update.
type Fig7Result struct {
	M, N                []float64
	OnOn, OffOn, OffOff []float64 // TFLOPS for the three bars
}

// Fig7 sweeps the ablation.
func Fig7() *Fig7Result {
	r := &Fig7Result{}
	for _, s := range perfShapes {
		r.M = append(r.M, s.M)
		r.N = append(r.N, s.N)
		r.OnOn = append(r.OnOn, perfmodel.RGSQRFTFLOPS(s.M, s.N, perfmodel.QRConfig{Panel: perfmodel.PanelCAQR, TCUpdate: true, TCPanel: true}))
		r.OffOn = append(r.OffOn, perfmodel.RGSQRFTFLOPS(s.M, s.N, perfmodel.QRConfig{Panel: perfmodel.PanelCAQR, TCUpdate: true}))
		r.OffOff = append(r.OffOff, perfmodel.RGSQRFTFLOPS(s.M, s.N, perfmodel.QRConfig{Panel: perfmodel.PanelCAQR}))
	}
	return r
}

// Render formats Figure 7.
func (r *Fig7Result) Render() string {
	t := &table{header: []string{"size", "TC(panel,update)=(on,on)", "(off,on)", "(off,off)"}}
	for i := range r.M {
		t.add(fmt.Sprintf("%.0fx%.0f", r.M[i], r.N[i]), f2(r.OnOn[i]), f2(r.OffOn[i]), f2(r.OffOff[i]))
	}
	return "Figure 7: RGSQRF TFLOPS with TensorCore enabled/disabled in panel and trailing update\n" + t.String()
}

// Fig5Result reproduces Figure 5: RGSQRF-ReOrtho vs SGEQRF+SORMQR.
type Fig5Result struct {
	M, N          []float64
	ReorthoMs     []float64
	HouseholderMs []float64
	Speedup       []float64
}

// Fig5 sweeps the shapes.
func Fig5() *Fig5Result {
	r := &Fig5Result{}
	for _, s := range perfShapes {
		if s.N > s.M {
			continue
		}
		re := perfmodel.ReorthoTime(s.M, s.N, perfmodel.PaperConfig)
		hh := perfmodel.SGeqrfTime(s.M, s.N) + perfmodel.SOrmqrFormQTime(s.M, s.N)
		r.M = append(r.M, s.M)
		r.N = append(r.N, s.N)
		r.ReorthoMs = append(r.ReorthoMs, re*1e3)
		r.HouseholderMs = append(r.HouseholderMs, hh*1e3)
		r.Speedup = append(r.Speedup, hh/re)
	}
	return r
}

// Render formats Figure 5.
func (r *Fig5Result) Render() string {
	t := &table{header: []string{"size", "RGSQRF-ReOrtho (ms)", "SGEQRF+SORMQR (ms)", "speedup"}}
	for i := range r.M {
		t.add(fmt.Sprintf("%.0fx%.0f", r.M[i], r.N[i]), f1(r.ReorthoMs[i]), f1(r.HouseholderMs[i]), f1(r.Speedup[i])+"x")
	}
	return "Figure 5: orthogonalization time, RGSQRF-ReOrtho (left bars) vs cuSOLVER SGEQRF+SORMQR (right bars)\n" + t.String()
}

// PanelResult reproduces the Section 3.1.3 panel microbenchmark.
type PanelResult struct {
	CAQRTFLOPS, SGeqrfTFLOPS, Speedup float64
	EstimateWithCAQR                  float64 // Eq. 7 with the CAQR panel, 32768x16384
	PaperMeasured                     float64 // 26.2 TFLOPS
}

// Panel returns the 32768×128 panel comparison.
func Panel() *PanelResult {
	return &PanelResult{
		CAQRTFLOPS:       perfmodel.CAQRPanel(128),
		SGeqrfTFLOPS:     perfmodel.SGeqrf.At(128),
		Speedup:          perfmodel.CAQRPanel(128) / perfmodel.SGeqrf.At(128),
		EstimateWithCAQR: perfmodel.RGSQRFEstimate(32768, 16384, 128, true, perfmodel.CAQRPanelRate),
		PaperMeasured:    26.2,
	}
}

// Render formats the panel microbenchmark.
func (r *PanelResult) Render() string {
	return fmt.Sprintf(`Section 3.1.3: CAQR panel on a 32768x128 panel
CAQR panel:        %.2f TFLOPS
cuSOLVER SGEQRF:   %.2f TFLOPS
speedup:           %.1fx (paper: 3.3x)
Eq. 7 estimate for RGSQRF with CAQR panel, 32768x16384: %.1f TFLOPS (paper estimate: 27, paper measured: %.1f)
`, r.CAQRTFLOPS, r.SGeqrfTFLOPS, r.Speedup, r.EstimateWithCAQR, r.PaperMeasured)
}
