package experiments

import (
	"fmt"

	"tcqr/internal/perfmodel"
)

// BreakdownResult itemizes where the modelled RGSQRF time goes — panel vs
// engine GEMMs — across the Figure 6 shape sweep. It quantifies two of the
// paper's observations at once: "the CAQR panel contributes more when the
// matrix is skinny" (the panel share falls from ~80% at aspect 16:1 to
// ~30% at square) and the conclusion that "careful optimization of the
// non neural engine accelerated operations become more critical because
// the neural engine is simply so much faster".
type BreakdownResult struct {
	M, N          []float64
	PanelMs       []float64
	GemmMs        []float64
	PanelFraction []float64
}

// Breakdowns runs the itemization over the standard shape sweep.
func Breakdowns() *BreakdownResult {
	r := &BreakdownResult{}
	for _, s := range perfShapes {
		bd := perfmodel.TimeBreakdown(s.M, s.N, perfmodel.PaperConfig)
		r.M = append(r.M, s.M)
		r.N = append(r.N, s.N)
		r.PanelMs = append(r.PanelMs, bd.PanelSeconds*1e3)
		r.GemmMs = append(r.GemmMs, bd.GemmSeconds*1e3)
		r.PanelFraction = append(r.PanelFraction, bd.PanelFraction())
	}
	return r
}

// Render formats the breakdown.
func (r *BreakdownResult) Render() string {
	t := &table{header: []string{"size", "panel (ms)", "TC GEMM (ms)", "panel share"}}
	for i := range r.M {
		t.add(fmt.Sprintf("%.0fx%.0f", r.M[i], r.N[i]),
			f1(r.PanelMs[i]), f1(r.GemmMs[i]), fmt.Sprintf("%.0f%%", 100*r.PanelFraction[i]))
	}
	return `RGSQRF time breakdown (model): the unaccelerated panel vs the neural-engine GEMMs
` + t.String() + `the panel dominates skinny shapes — the paper's motivation for hand-writing the CAQR
panel — and the engine GEMMs take over as the matrix widens.
`
}
