package experiments

import (
	"fmt"
	"math/rand"

	"tcqr/internal/accuracy"
	"tcqr/internal/dense"
	"tcqr/internal/matgen"
	"tcqr/internal/rgs"
	"tcqr/internal/tcsim"
)

// FormatsResult is the §2.1 trade-off made executable: RGSQRF run with the
// FP16 TensorCore engine versus a TPU-style bfloat16 engine, on a
// well-scaled matrix (precision side) and a badly-scaled matrix (range
// side). The paper's framing: "bfloat16 is more robust (less prone to
// overflow and underflow) but less stable/precise (large roundoff error)".
type FormatsResult struct {
	Scale Scale
	// Well-scaled matrix: backward errors show the ~8× resolution gap.
	FP16BackwardError float64
	BF16BackwardError float64
	FP32BackwardError float64
	// Badly-scaled matrix, scaling DISABLED: fp16 overflows and poisons
	// the result; bfloat16 sails through.
	FP16Overflows              int64
	FP16Poisoned               bool
	BF16Overflows              int64
	BF16Poisoned               bool
	BF16BadScaledBackwardError float64
}

// Formats runs both engines on both matrices.
func Formats(sc Scale) *FormatsResult {
	out := &FormatsResult{Scale: sc}

	// Precision side: well-conditioned, well-scaled.
	rng := rand.New(rand.NewSource(sc.Seed))
	a := dense.ToF32(matgen.WithCond(rng, sc.M, sc.N, 100, matgen.Arithmetic))
	for _, c := range []struct {
		engine tcsim.Engine
		dst    *float64
	}{
		{&tcsim.TensorCore{}, &out.FP16BackwardError},
		{&tcsim.BFloat16{}, &out.BF16BackwardError},
		{&tcsim.FP32{}, &out.FP32BackwardError},
	} {
		res, err := rgs.Factor(a, rgs.Options{Cutoff: sc.Cutoff, Engine: c.engine})
		if err != nil {
			panic(err)
		}
		*c.dst = accuracy.BackwardError(a, res.Q, res.R)
	}

	// Range side: badly scaled, §3.5 safeguard off.
	rng = rand.New(rand.NewSource(sc.Seed))
	bad := dense.ToF32(matgen.BadlyScaled(rng, sc.M, sc.N, 7))

	// The unscaled fp16 run overflows; since the hazard layer now reports
	// the poisoned factorization as a typed breakdown error, the error IS
	// the poisoning signal.
	fp := &tcsim.TensorCore{TrackSpecials: true}
	resFP, errFP := rgs.Factor(bad, rgs.Options{Cutoff: sc.Cutoff, Engine: fp, DisableScaling: true})
	out.FP16Overflows = fp.Stats().Overflows
	out.FP16Poisoned = errFP != nil || resFP.Q.HasNaN() || resFP.R.HasNaN()

	bf := &tcsim.BFloat16{TrackSpecials: true}
	resBF, err := rgs.Factor(bad, rgs.Options{Cutoff: sc.Cutoff, Engine: bf, DisableScaling: true})
	if err != nil {
		panic(err)
	}
	out.BF16Overflows = bf.Stats().Overflows
	out.BF16Poisoned = resBF.Q.HasNaN() || resBF.R.HasNaN()
	out.BF16BadScaledBackwardError = accuracy.BackwardError(bad, resBF.Q, resBF.R)
	return out
}

// Render formats the comparison.
func (r *FormatsResult) Render() string {
	return fmt.Sprintf(`Section 2.1 extension: FP16 (TensorCore) vs bfloat16 (TPU-style) engines, %dx%d
precision (well-scaled matrix, backward error ‖A−QR‖/‖A‖):
  FP16 engine      : %s
  BF16 engine      : %s   (~%.0fx coarser, matching the 2^-11 vs 2^-8 unit roundoffs)
  FP32 engine      : %s
range (badly scaled matrix, column scaling DISABLED):
  FP16: %d operand overflows, result poisoned: %v
  BF16: %d operand overflows, result poisoned: %v, backward error %s
conclusion: bfloat16 never overflowed but pays ~10x in accuracy — the paper's
"more robust but less stable/precise"; FP16 + column scaling gets both.
`, r.Scale.M, r.Scale.N,
		e(r.FP16BackwardError), e(r.BF16BackwardError), r.BF16BackwardError/r.FP16BackwardError,
		e(r.FP32BackwardError),
		r.FP16Overflows, r.FP16Poisoned,
		r.BF16Overflows, r.BF16Poisoned, e(r.BF16BadScaledBackwardError))
}
