package experiments

import (
	"fmt"
	"math/rand"

	"tcqr/internal/dense"
	"tcqr/internal/matgen"
	"tcqr/internal/perfmodel"
	"tcqr/internal/rgs"
	"tcqr/internal/svd"
)

// Table4Row is one truncation rank of Table 4.
type Table4Row struct {
	Rank                 int
	RGSQRFSVD, SGEQRFSVD float64 // relative truncation errors
	Optimal              float64 // Eckart-Young bound from the exact spectrum
}

// Table4Result reproduces Table 4: truncated QR-SVD quality for the
// half-precision and single-precision pipelines, plus the modelled times
// at the paper's 524288×1024 shape.
type Table4Result struct {
	Scale         Scale
	Rows          []Table4Row
	RGSQRFSVDMs   float64 // model, paper scale
	SGEQRFSVDMs   float64
	Speedup       float64
	PaperRGSQRFMs float64
	PaperSGEQRFMs float64
}

// Table4 runs the truncation sweep at the numeric scale (ranks scaled in
// proportion to the paper's 16…512 out of 1024) and models the times.
func Table4(sc Scale) *Table4Result {
	rng := rand.New(rand.NewSource(sc.Seed))
	a64 := matgen.WithCond(rng, sc.SVDM, sc.SVDN, 1e6, matgen.Arithmetic)
	a := dense.ToF32(a64)

	rgsSVD, err := svd.QRSVD(a, rgs.Options{Cutoff: sc.Cutoff})
	if err != nil {
		panic(err)
	}
	houseSVD, err := svd.QRSVDHouseholder(a)
	if err != nil {
		panic(err)
	}
	sigma := matgen.SingularValues(sc.SVDN, 1e6, matgen.Arithmetic)

	out := &Table4Result{Scale: sc, PaperRGSQRFMs: 274.95, PaperSGEQRFMs: 1755.19}
	for _, frac := range []int{64, 16, 8, 4, 2} { // paper ranks 16,64,128,256,512 of n=1024
		rank := sc.SVDN / frac
		if rank < 1 {
			rank = 1
		}
		out.Rows = append(out.Rows, Table4Row{
			Rank:      rank,
			RGSQRFSVD: rgsSVD.TruncationError(a, rank),
			SGEQRFSVD: houseSVD.TruncationError(a, rank),
			Optimal:   svd.OptimalTruncationError(sigma, rank),
		})
	}
	rgsT, sgeT := perfmodel.QRSVDTimes(524288, 1024)
	out.RGSQRFSVDMs = rgsT * 1e3
	out.SGEQRFSVDMs = sgeT * 1e3
	out.Speedup = sgeT / rgsT
	return out
}

// Render formats Table 4.
func (r *Table4Result) Render() string {
	t := &table{header: []string{"rank r", "RGSQRF-SVD", "SGEQRF-SVD", "optimal (Eckart-Young)"}}
	for _, row := range r.Rows {
		t.add(fmt.Sprintf("%d", row.Rank), e(row.RGSQRFSVD), e(row.SGEQRFSVD), e(row.Optimal))
	}
	return fmt.Sprintf(`Table 4: QR-SVD optimal low rank approximation, %dx%d, arithmetic distribution, cond=1e6
%s
time model at 524288x1024: RGSQRF-SVD %.1f ms vs SGEQRF-SVD %.1f ms -> %.1fx (paper: %.2f ms vs %.2f ms -> 6.4x)
`, r.Scale.SVDM, r.Scale.SVDN, t.String(), r.RGSQRFSVDMs, r.SGEQRFSVDMs, r.Speedup, r.PaperRGSQRFMs, r.PaperSGEQRFMs)
}
